/**
 * @file
 * Fault-injection demo: fire each of the paper's three fault models
 * at a visible rate, show how detections break down by mechanism
 * (store comparison, final architectural-state check, invalid checker
 * behaviour -- figure 7), and verify the output stays exact.
 *
 *   $ ./examples/fault_injection_demo [workload]
 */

#include <cstdio>
#include <string>

#include "core/system.hh"
#include "workloads/workload.hh"

namespace
{

using namespace paradox;

void
demo(const std::string &workload, const char *label,
     const faults::FaultConfig &fc)
{
    workloads::Workload w = workloads::build(workload, 1);
    core::SystemConfig config =
        core::SystemConfig::forMode(core::Mode::ParaDox);
    core::System system(config, w.program);
    faults::FaultPlan plan;
    plan.add(fc);
    system.setFaultPlan(std::move(plan));

    core::RunLimits limits;
    limits.maxExecuted = 120'000'000;
    core::RunResult r = system.run(limits);

    bool correct = r.halted &&
                   system.memory().read(workloads::resultAddr, 8) ==
                       w.expectedResult;

    std::printf("%-28s injected %4llu  detected %4llu  "
                "(store %llu, final-state %llu, load-entry %llu, "
                "invalid %llu)\n",
                label, (unsigned long long)r.faultsInjected,
                (unsigned long long)r.errorsDetected,
                (unsigned long long)system.detectionCount(
                    core::DetectReason::StoreMismatch),
                (unsigned long long)system.detectionCount(
                    core::DetectReason::FinalStateMismatch),
                (unsigned long long)system.detectionCount(
                    core::DetectReason::LoadEntryMismatch),
                (unsigned long long)system.detectionCount(
                    core::DetectReason::InvalidBehavior));
    std::printf("%-28s   wasted %.0f ns/err, rollback %.1f ns/err, "
                "result %s\n",
                "", system.wastedExecNs().mean(),
                system.rollbackTimesNs().mean(),
                correct ? "CORRECT" : "WRONG");
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "gcc";
    std::printf("fault-injection demo on '%s' "
                "(all faults go to checker replays, as in the "
                "paper)\n\n",
                workload.c_str());

    faults::FaultConfig log_faults;
    log_faults.kind = faults::FaultKind::LogBitFlip;
    log_faults.rate = 2e-4;
    demo(workload, "memory (log bit flips)", log_faults);

    faults::FaultConfig fu_faults;
    fu_faults.kind = faults::FaultKind::FunctionalUnit;
    fu_faults.targetClass = isa::InstClass::IntAlu;
    fu_faults.rate = 2e-4;
    demo(workload, "combinational (IntAlu unit)", fu_faults);

    fu_faults.targetClass = isa::InstClass::IntMult;
    demo(workload, "combinational (IntMult unit)", fu_faults);

    for (auto [cat, name] :
         {std::pair{isa::RegCategory::Integer, "register (integer)"},
          std::pair{isa::RegCategory::Float, "register (float)"},
          std::pair{isa::RegCategory::Flags, "register (flags)"},
          std::pair{isa::RegCategory::Misc, "register (pc/misc)"}}) {
        faults::FaultConfig reg_faults;
        reg_faults.kind = faults::FaultKind::RegisterBitFlip;
        reg_faults.targetCategory = cat;
        reg_faults.rate = 2e-4;
        demo(workload, name, reg_faults);
    }

    std::printf("\nnote: injected > detected is expected -- some "
                "flips are masked\n(dead registers, unread bits), "
                "exactly as in real hardware.\n");
    return 0;
}
