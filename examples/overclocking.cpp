/**
 * @file
 * Overclocking analysis (paper section VI-E): instead of banking the
 * ParaDox power savings, spend voltage headroom on clock frequency.
 *
 * Reproduces the paper's two alternative operating points:
 *  - restore the ~4.5% slowdown with a ~0.019 V / 4.5% frequency
 *    bump (still ~15% below baseline power), and
 *  - hold baseline power and overclock ~13% to ~3.6 GHz,
 * then validates the second point by actually running the simulator
 * at the higher clock.
 *
 *   $ ./examples/overclocking [workload]
 */

#include <cstdio>
#include <string>

#include "core/system.hh"
#include "power/power_model.hh"
#include "power/undervolt_data.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace paradox;
    const std::string name = argc > 1 ? argv[1] : "bitcount";

    power::FrequencyVoltageModel fv;
    power::PowerModel pm;
    const double f0 = fv.params().fNominal;
    const double v_undervolt = power::vSafeUndervolted;  // 0.872 V

    std::printf("analytic operating points (f ~ V - Vt, P ~ V^2 f)\n");
    std::printf("-------------------------------------------------\n");

    // Point 1: restore a 4.5% ParaDox slowdown via frequency.
    double f1 = f0 * 1.045;
    double v1 = fv.voltageFor(f1) - fv.voltageFor(f0) + v_undervolt;
    double p1 = pm.corePower(v1, f1);
    std::printf("restore-performance: f = %.2f GHz (+4.5%%), "
                "V = %.3f V (+%.3f), power = %.3f of baseline\n",
                f1 / 1e9, v1, v1 - v_undervolt, p1);

    // Point 2: restore baseline power, maximize frequency.
    double best_f = f0, best_v = v_undervolt;
    for (double dv = 0.0; dv <= 0.12; dv += 0.001) {
        double v = v_undervolt + dv;
        double f = f0 * (v - fv.params().vThreshold) /
                   (v_undervolt - fv.params().vThreshold) * 1.0;
        if (pm.corePower(v, f) <= 1.0) {
            best_f = f;
            best_v = v;
        }
    }
    std::printf("restore-power:       f = %.2f GHz (+%.1f%%), "
                "V = %.3f V (+%.3f), power = %.3f of baseline\n\n",
                best_f / 1e9, (best_f / f0 - 1.0) * 100.0, best_v,
                best_v - v_undervolt, pm.corePower(best_v, best_f));

    // Validate the overclocked point in the simulator: same voltage
    // island semantics, higher clock, errors still injected/repaired.
    workloads::Workload w = workloads::build(name, 4);

    core::SystemConfig base = core::SystemConfig::forMode(
        core::Mode::Baseline);
    core::System base_sys(base, w.program);
    core::RunResult rb = base_sys.run();

    core::SystemConfig oc = core::SystemConfig::forMode(
        core::Mode::ParaDox);
    oc.mainFreqHz = best_f;
    oc.voltage.startVoltage = best_v;
    oc.voltage.vSafe = best_v;  // controller island re-anchored
    core::System oc_sys(oc, w.program);
    oc_sys.enableDvfs(power::errorModelParams(name));
    core::RunResult ro = oc_sys.run();

    bool correct = ro.halted &&
                   oc_sys.memory().read(workloads::resultAddr, 8) ==
                       w.expectedResult;

    std::printf("simulated '%s':\n", name.c_str());
    std::printf("  margined baseline @ %.1f GHz: %8.3f ms\n",
                base.mainFreqHz / 1e9, rb.seconds() * 1e3);
    std::printf("  overclocked ParaDox @ %.2f GHz: %6.3f ms "
                "(speedup %.3fx), %llu errors repaired, result %s\n",
                best_f / 1e9, ro.seconds() * 1e3,
                double(rb.time) / double(ro.time),
                (unsigned long long)ro.errorsDetected,
                correct ? "CORRECT" : "WRONG");
    return 0;
}
