/**
 * @file
 * Undervolt explorer: sweep fixed supply voltages for a workload and
 * chart the figure-3 trade-off empirically -- power falls as voltage
 * drops until recovery costs take over, exposing the sweet spot.
 *
 *   $ ./examples/undervolt_explorer [workload] [vlow] [vhigh]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/system.hh"
#include "faults/undervolt_model.hh"
#include "power/undervolt_data.hh"
#include "workloads/workload.hh"

namespace
{

using namespace paradox;

struct Point
{
    double voltage;
    double time_ms;
    double power;
    double edp;
    std::uint64_t errors;
    bool correct;
};

/** Run at one *fixed* voltage: the controller is frozen there. */
Point
runAtVoltage(const std::string &name, double volts, Tick base_time,
             double base_power)
{
    workloads::Workload w = workloads::build(name, 2);
    core::SystemConfig config =
        core::SystemConfig::forMode(core::Mode::ParaDox);
    // Freeze the controller at the chosen voltage.
    config.voltage.startVoltage = volts;
    config.voltage.vMinAllowed = volts;
    config.voltage.decreaseStep = 0.0;
    config.voltage.recoveryFactor = 1.0;  // errors do not raise it
    core::System system(config, w.program);
    system.enableDvfs(power::errorModelParams(name));

    core::RunLimits limits;
    limits.maxExecuted = 120'000'000;
    limits.maxTicks = ticksPerMs * 200;
    core::RunResult r = system.run(limits);

    Point p;
    p.voltage = volts;
    p.time_ms = r.seconds() * 1e3;
    p.power = r.avgPower;
    p.errors = r.errorsDetected;
    p.correct = r.halted &&
                system.memory().read(workloads::resultAddr, 8) ==
                    w.expectedResult;
    p.edp = r.halted ? power::edpRatio(r.avgPower, r.time, base_power,
                                       base_time)
                     : 99.0;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "bitcount";
    const double vlow = argc > 2 ? std::atof(argv[2]) : 0.80;
    const double vhigh = argc > 3 ? std::atof(argv[3]) : 0.96;

    // Margined baseline for normalization.
    workloads::Workload w = workloads::build(name, 2);
    core::SystemConfig base_config =
        core::SystemConfig::forMode(core::Mode::Baseline);
    core::System base(base_config, w.program);
    core::RunResult rb = base.run();

    std::printf("undervolt sweep: %s (baseline %.3f ms at %.3f V)\n\n",
                name.c_str(), rb.seconds() * 1e3,
                base_config.voltage.vSafe);
    std::printf("%-8s %-10s %-8s %-8s %-8s %-8s\n", "V", "time_ms",
                "power", "EDP", "errors", "result");

    Point best{};
    best.edp = 1e9;
    for (double v = vhigh; v >= vlow - 1e-9; v -= 0.01) {
        Point p = runAtVoltage(name, v, rb.time, rb.avgPower);
        std::printf("%-8.3f %-10.3f %-8.3f %-8.3f %-8llu %s\n",
                    p.voltage, p.time_ms, p.power, p.edp,
                    (unsigned long long)p.errors,
                    p.correct ? "correct" : "INCOMPLETE");
        if (p.correct && p.edp < best.edp)
            best = p;
    }
    std::printf("\nsweet spot: %.3f V (EDP %.3f of baseline, "
                "%llu errors repaired)\n",
                best.voltage, best.edp,
                (unsigned long long)best.errors);
    return 0;
}
