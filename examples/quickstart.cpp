/**
 * @file
 * Quickstart: build a ParaDox system, undervolt it with dynamic
 * voltage adaptation, run a workload, and confirm the answer is
 * exactly the fault-free one.
 *
 *   $ ./examples/quickstart [workload] [scale]
 */

#include <cstdio>
#include <string>

#include "core/system.hh"
#include "power/undervolt_data.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace paradox;

    const std::string name = argc > 1 ? argv[1] : "bitcount";
    const unsigned scale = argc > 2 ? unsigned(std::atoi(argv[2])) : 24;

    // 1. Pick a workload. Each ships with a golden checksum computed
    //    by an independent C++ reference implementation.
    workloads::Workload w = workloads::build(name, scale);
    std::printf("workload: %s (%s)\n", w.name.c_str(),
                w.description.c_str());

    // 2. Configure the full ParaDox system (Table I defaults) and
    //    enable error-seeking undervolting: the controller pushes the
    //    main core's voltage island below its margins and the
    //    exponential error model injects the resulting faults into
    //    the checker replays.
    core::SystemConfig config =
        core::SystemConfig::forMode(core::Mode::ParaDox);
    core::System system(config, w.program);
    system.enableDvfs(power::errorModelParams(name));

    // 3. Run to completion.
    core::RunResult r = system.run();

    // 4. Every injected error was detected and repaired: the stored
    //    checksum must equal the golden value.
    std::uint64_t got = system.memory().read(workloads::resultAddr, 8);
    std::printf("\nresult checksum:   0x%016llx\n",
                (unsigned long long)got);
    std::printf("expected checksum: 0x%016llx  -> %s\n",
                (unsigned long long)w.expectedResult,
                got == w.expectedResult ? "CORRECT" : "WRONG");

    std::printf("\ninstructions:     %llu (+%llu re-executed)\n",
                (unsigned long long)r.instructions,
                (unsigned long long)(r.executed - r.instructions));
    std::printf("simulated time:   %.3f ms\n", r.seconds() * 1e3);
    std::printf("checkpoints:      %llu\n",
                (unsigned long long)r.checkpoints);
    std::printf("errors repaired:  %llu (%llu faults injected)\n",
                (unsigned long long)r.errorsDetected,
                (unsigned long long)r.faultsInjected);
    std::printf("average voltage:  %.4f V (margined nominal %.3f V)\n",
                r.avgVoltage, config.voltage.vSafe);
    std::printf("average power:    %.3f of nominal\n", r.avgPower);
    std::printf("checkers awake:   %.1f of %u on average\n",
                r.avgCheckersAwake, config.checkers.count);
    return got == w.expectedResult ? 0 : 1;
}
