/**
 * @file
 * End-to-end system tests: the full ParaMedic/ParaDox pipeline on
 * real workloads, including the paper's headline invariant -- under
 * any injected fault rate and model, the run completes with exactly
 * the fault-free architectural result.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "workloads/workload.hh"

namespace
{

using namespace paradox;
using core::Mode;
using core::RunResult;
using core::System;
using core::SystemConfig;

workloads::Workload
smallWorkload(const std::string &name = "bitcount")
{
    return workloads::build(name, 1);
}

RunResult
runMode(Mode mode, const workloads::Workload &w,
        double fault_rate = 0.0, std::uint64_t seed = 7)
{
    SystemConfig config = SystemConfig::forMode(mode);
    config.seed = seed;
    System system(config, w.program);
    if (fault_rate > 0.0)
        system.setFaultPlan(faults::uniformPlan(fault_rate, seed));
    core::RunLimits limits;
    limits.maxExecuted = 80'000'000;
    limits.maxTicks = ticksPerMs * 400;
    return system.run(limits);
}

std::uint64_t
resultChecksum(System &system)
{
    return system.memory().read(workloads::resultAddr, 8);
}

TEST(SystemBaseline, RunsToCompletion)
{
    auto w = smallWorkload();
    SystemConfig config = SystemConfig::forMode(Mode::Baseline);
    System system(config, w.program);
    RunResult r = system.run();
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(resultChecksum(system), w.expectedResult);
    EXPECT_GT(r.time, 0u);
    EXPECT_EQ(r.errorsDetected, 0u);
}

TEST(SystemFaultFree, AllModesProduceCorrectResultAndNoErrors)
{
    auto w = smallWorkload();
    for (Mode mode : {Mode::Baseline, Mode::DetectionOnly,
                      Mode::ParaMedic, Mode::ParaDox}) {
        SystemConfig config = SystemConfig::forMode(mode);
        System system(config, w.program);
        RunResult r = system.run();
        EXPECT_TRUE(r.halted) << core::modeName(mode);
        EXPECT_EQ(resultChecksum(system), w.expectedResult)
            << core::modeName(mode);
        EXPECT_EQ(r.errorsDetected, 0u) << core::modeName(mode);
    }
}

TEST(SystemFaultFree, FaultToleranceCostsTime)
{
    auto w = smallWorkload();
    RunResult base = runMode(Mode::Baseline, w);
    RunResult pdox = runMode(Mode::ParaDox, w);
    EXPECT_TRUE(base.halted);
    EXPECT_TRUE(pdox.halted);
    // Checkpointing costs something but must stay moderate when
    // error-free (figure 10's overheads are < 15%).
    EXPECT_GE(pdox.time, base.time);
    EXPECT_LT(double(pdox.time), double(base.time) * 1.6);
    EXPECT_GT(pdox.checkpoints, 0u);
}

/** The headline invariant: injected faults never corrupt results. */
class FaultedRun
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>>
{
};

TEST_P(FaultedRun, ParaDoxRepairsEverything)
{
    auto [rate, seed] = GetParam();
    auto w = smallWorkload();
    SystemConfig config = SystemConfig::forMode(Mode::ParaDox);
    config.seed = seed;
    System system(config, w.program);
    system.setFaultPlan(faults::uniformPlan(rate, seed));
    core::RunLimits limits;
    limits.maxExecuted = 100'000'000;
    RunResult r = system.run(limits);
    ASSERT_TRUE(r.halted) << "rate=" << rate << " seed=" << seed;
    EXPECT_EQ(resultChecksum(system), w.expectedResult)
        << "rate=" << rate << " seed=" << seed;
    if (rate >= 1e-4) {
        EXPECT_GT(r.errorsDetected, 0u);
        EXPECT_GT(r.rollbacks, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    RateSweep, FaultedRun,
    ::testing::Combine(::testing::Values(1e-6, 1e-5, 1e-4, 1e-3),
                       ::testing::Values(1u, 2u, 3u)));

TEST(FaultedRunModes, ParaMedicAlsoRepairs)
{
    auto w = smallWorkload();
    SystemConfig config = SystemConfig::forMode(Mode::ParaMedic);
    System system(config, w.program);
    system.setFaultPlan(faults::uniformPlan(1e-4, 11));
    core::RunLimits limits;
    limits.maxExecuted = 200'000'000;
    RunResult r = system.run(limits);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(resultChecksum(system), w.expectedResult);
    EXPECT_GT(r.rollbacks, 0u);
}

TEST(FaultedRunModes, EveryFaultKindIsRepaired)
{
    auto w = smallWorkload();
    using faults::FaultConfig;
    using faults::FaultKind;

    std::vector<FaultConfig> configs;
    FaultConfig log_faults;
    log_faults.kind = FaultKind::LogBitFlip;
    log_faults.rate = 3e-4;
    configs.push_back(log_faults);

    FaultConfig fu_faults;
    fu_faults.kind = FaultKind::FunctionalUnit;
    fu_faults.targetClass = isa::InstClass::IntAlu;
    fu_faults.rate = 3e-4;
    configs.push_back(fu_faults);

    for (auto category :
         {isa::RegCategory::Integer, isa::RegCategory::Float,
          isa::RegCategory::Flags, isa::RegCategory::Misc}) {
        FaultConfig reg_faults;
        reg_faults.kind = FaultKind::RegisterBitFlip;
        reg_faults.targetCategory = category;
        reg_faults.rate = 3e-4;
        configs.push_back(reg_faults);
    }

    for (const auto &fc : configs) {
        SystemConfig config = SystemConfig::forMode(Mode::ParaDox);
        System system(config, w.program);
        faults::FaultPlan plan;
        plan.add(fc);
        system.setFaultPlan(std::move(plan));
        core::RunLimits limits;
        limits.maxExecuted = 100'000'000;
        RunResult r = system.run(limits);
        ASSERT_TRUE(r.halted) << "kind=" << int(fc.kind);
        EXPECT_EQ(resultChecksum(system), w.expectedResult)
            << "kind=" << int(fc.kind) << " cat="
            << int(fc.targetCategory);
    }
}

TEST(SystemAdaptation, ParaDoxShrinksCheckpointsUnderErrors)
{
    auto w = smallWorkload();
    RunResult clean = runMode(Mode::ParaDox, w, 0.0);
    RunResult faulty = runMode(Mode::ParaDox, w, 1e-3);
    ASSERT_TRUE(clean.halted);
    ASSERT_TRUE(faulty.halted);
    EXPECT_GT(faulty.checkpoints, clean.checkpoints);
}

TEST(SystemAdaptation, ParaDoxBeatsParaMedicAtHighErrorRates)
{
    auto w = smallWorkload();
    RunResult medic = runMode(Mode::ParaMedic, w, 2e-3);
    RunResult dox = runMode(Mode::ParaDox, w, 2e-3);
    ASSERT_TRUE(dox.halted);
    // ParaMedic may not even finish inside the execution budget
    // (livelock); if it does, ParaDox must still be faster.
    if (medic.halted) {
        EXPECT_LT(dox.time, medic.time);
    }
}

TEST(SystemMemoryState, FaultedRunLeavesExactFaultFreeMemoryImage)
{
    auto w = workloads::build("bzip2", 1);
    RunResult clean = runMode(Mode::ParaDox, w, 0.0, 5);
    RunResult faulty = runMode(Mode::ParaDox, w, 5e-4, 5);
    ASSERT_TRUE(clean.halted);
    ASSERT_TRUE(faulty.halted);
    EXPECT_GT(faulty.rollbacks, 0u);
    EXPECT_EQ(clean.memoryFingerprint, faulty.memoryFingerprint);
    EXPECT_EQ(clean.finalState, faulty.finalState);
}

TEST(SystemDvfs, UndervoltsAndRecovers)
{
    auto w = smallWorkload();
    SystemConfig config = SystemConfig::forMode(Mode::ParaDox);
    System system(config, w.program);
    system.enableDvfs(faults::UndervoltErrorModel::Params{});
    core::RunLimits limits;
    limits.maxExecuted = 100'000'000;
    RunResult r = system.run(limits);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(resultChecksum(system), w.expectedResult);
    // The controller must actually have undervolted.
    EXPECT_LT(r.avgVoltage, config.voltage.vSafe);
    EXPECT_LT(r.avgPower, 1.05);
}

TEST(SystemScheduling, ParaDoxConcentratesCheckersOnLowIds)
{
    auto w = smallWorkload();
    RunResult r = runMode(Mode::ParaDox, w);
    ASSERT_TRUE(r.halted);
    ASSERT_EQ(r.wakeRates.size(), 16u);
    // Lowest-free-ID scheduling: low IDs are the busiest (a small
    // tolerance absorbs release-timing jitter among the saturated
    // low IDs), and high-ID checkers stay nearly idle.
    for (std::size_t i = 1; i < r.wakeRates.size(); ++i)
        EXPECT_LE(r.wakeRates[i], r.wakeRates[0] + 0.05) << i;
    EXPECT_LT(r.wakeRates[15], 0.05);
    EXPECT_GT(r.wakeRates[0], r.wakeRates[15]);
}

TEST(SystemScheduling, ParaMedicUsesAllCheckersEvenly)
{
    auto w = smallWorkload();
    RunResult r = runMode(Mode::ParaMedic, w);
    ASSERT_TRUE(r.halted);
    double min_rate = 1.0, max_rate = 0.0;
    for (double rate : r.wakeRates) {
        min_rate = std::min(min_rate, rate);
        max_rate = std::max(max_rate, rate);
    }
    EXPECT_GT(min_rate, 0.0);
    EXPECT_LT(max_rate - min_rate, 0.2);
}

TEST(SystemDeterminism, SameSeedSameResult)
{
    auto w = smallWorkload();
    RunResult a = runMode(Mode::ParaDox, w, 1e-4, 42);
    RunResult b = runMode(Mode::ParaDox, w, 1e-4, 42);
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.errorsDetected, b.errorsDetected);
    EXPECT_EQ(a.executed, b.executed);
    EXPECT_EQ(a.memoryFingerprint, b.memoryFingerprint);
}

TEST(SystemStats, RecoveryCostsAreRecorded)
{
    auto w = smallWorkload();
    SystemConfig config = SystemConfig::forMode(Mode::ParaDox);
    System system(config, w.program);
    system.setFaultPlan(faults::uniformPlan(1e-4, 3));
    core::RunLimits limits;
    limits.maxExecuted = 100'000'000;
    RunResult r = system.run(limits);
    ASSERT_TRUE(r.halted);
    ASSERT_GT(r.rollbacks, 0u);
    EXPECT_EQ(system.rollbackTimesNs().count(), r.rollbacks);
    EXPECT_EQ(system.wastedExecNs().count(), r.rollbacks);
    EXPECT_GT(system.wastedExecNs().mean(), 0.0);
}

} // namespace
