/**
 * @file
 * Differential testing of the functional executor: every computational
 * opcode, over thousands of random operand pairs, against an oracle
 * written independently of the executor's switch.  Guards the single
 * most safety-critical property of the simulator -- main-core and
 * checker-core executions agree bit-for-bit exactly when the
 * architecture says they should.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>

#include "isa/builder.hh"
#include "isa/executor.hh"
#include "mem/memory.hh"
#include "sim/rng.hh"

namespace
{

using namespace paradox;
using namespace paradox::isa;

/** Run `op x3, x1, x2` once with the given operand values. */
std::uint64_t
runIntOp(Opcode op, std::uint64_t a, std::uint64_t b)
{
    Instruction inst;
    inst.op = op;
    inst.rd = 3;
    inst.rs1 = 1;
    inst.rs2 = 2;
    ProgramBuilder builder("diff");
    builder.halt();  // placeholder image; we step the raw instruction
    Program prog("diff", {inst, Instruction{Opcode::HALT, 0, 0, 0, 0}},
                 {});
    ArchState state;
    state.writeX(1, a);
    state.writeX(2, b);
    mem::SimpleMemory memory;
    ExecResult r = step(prog, state, memory);
    EXPECT_TRUE(r.valid);
    return state.readX(3);
}

/** Run `fop f3, f1, f2` once. */
double
runFpOp(Opcode op, double a, double b)
{
    Instruction inst;
    inst.op = op;
    inst.rd = 3;
    inst.rs1 = 1;
    inst.rs2 = 2;
    Program prog("diff", {inst, Instruction{Opcode::HALT, 0, 0, 0, 0}},
                 {});
    ArchState state;
    state.writeF(1, a);
    state.writeF(2, b);
    mem::SimpleMemory memory;
    ExecResult r = step(prog, state, memory);
    EXPECT_TRUE(r.valid);
    return state.readF(3);
}

/** Independent integer oracle (no shared code with the executor). */
std::uint64_t
intOracle(Opcode op, std::uint64_t a, std::uint64_t b)
{
    const auto sa = std::int64_t(a);
    const auto sb = std::int64_t(b);
    const auto int_min = std::numeric_limits<std::int64_t>::min();
    switch (op) {
      case Opcode::ADD:  return a + b;
      case Opcode::SUB:  return a - b;
      case Opcode::AND_: return a & b;
      case Opcode::OR_:  return a | b;
      case Opcode::XOR_: return a ^ b;
      case Opcode::SLL:  return a << (b % 64);
      case Opcode::SRL:  return a >> (b % 64);
      case Opcode::SRA:  return std::uint64_t(sa >> (b % 64));
      case Opcode::SLT:  return sa < sb ? 1 : 0;
      case Opcode::SLTU: return a < b ? 1 : 0;
      case Opcode::MUL:  return a * b;
      case Opcode::MULH: {
        __int128 p = __int128(sa) * __int128(sb);
        return std::uint64_t(std::uint64_t(std::int64_t(p >> 64)));
      }
      case Opcode::DIV:
        if (b == 0)
            return ~std::uint64_t(0);
        if (sa == int_min && sb == -1)
            return a;
        return std::uint64_t(sa / sb);
      case Opcode::DIVU: return b == 0 ? ~std::uint64_t(0) : a / b;
      case Opcode::REM:
        if (b == 0)
            return a;
        if (sa == int_min && sb == -1)
            return 0;
        return std::uint64_t(sa % sb);
      case Opcode::REMU: return b == 0 ? a : a % b;
      default: return 0;
    }
}

class IntOpDifferential : public ::testing::TestWithParam<Opcode>
{
};

TEST_P(IntOpDifferential, MatchesOracleOnRandomOperands)
{
    Opcode op = GetParam();
    Rng rng(0xd1ff ^ std::uint64_t(op));
    for (int trial = 0; trial < 3000; ++trial) {
        std::uint64_t a = rng.next();
        std::uint64_t b = rng.next();
        // Bias toward interesting values now and then.
        if (trial % 7 == 0)
            b = rng.nextBounded(4);
        if (trial % 11 == 0)
            a = ~std::uint64_t(0);
        if (trial % 13 == 0)
            a = std::uint64_t(
                std::numeric_limits<std::int64_t>::min());
        EXPECT_EQ(runIntOp(op, a, b), intOracle(op, a, b))
            << mnemonic(op) << " a=" << a << " b=" << b;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllIntOps, IntOpDifferential,
    ::testing::Values(Opcode::ADD, Opcode::SUB, Opcode::AND_,
                      Opcode::OR_, Opcode::XOR_, Opcode::SLL,
                      Opcode::SRL, Opcode::SRA, Opcode::SLT,
                      Opcode::SLTU, Opcode::MUL, Opcode::MULH,
                      Opcode::DIV, Opcode::DIVU, Opcode::REM,
                      Opcode::REMU),
    [](const ::testing::TestParamInfo<Opcode> &info) {
        std::string name = mnemonic(info.param);
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

/** Independent FP oracle. */
double
fpOracle(Opcode op, double a, double b)
{
    switch (op) {
      case Opcode::FADD: return a + b;
      case Opcode::FSUB: return a - b;
      case Opcode::FMUL: return a * b;
      case Opcode::FDIV: return a / b;
      case Opcode::FMIN: return std::fmin(a, b);
      case Opcode::FMAX: return std::fmax(a, b);
      default: return 0.0;
    }
}

class FpOpDifferential : public ::testing::TestWithParam<Opcode>
{
};

TEST_P(FpOpDifferential, MatchesOracleBitForBit)
{
    Opcode op = GetParam();
    Rng rng(0xf10a7 ^ std::uint64_t(op));
    for (int trial = 0; trial < 3000; ++trial) {
        double a = (rng.nextDouble() - 0.5) * 1e6;
        double b = (rng.nextDouble() - 0.5) * 1e6;
        if (trial % 9 == 0)
            b = 0.0;
        if (trial % 17 == 0)
            a = std::numeric_limits<double>::infinity();
        double got = runFpOp(op, a, b);
        double want = fpOracle(op, a, b);
        EXPECT_EQ(std::bit_cast<std::uint64_t>(got),
                  std::bit_cast<std::uint64_t>(want))
            << mnemonic(op) << " a=" << a << " b=" << b;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFpOps, FpOpDifferential,
    ::testing::Values(Opcode::FADD, Opcode::FSUB, Opcode::FMUL,
                      Opcode::FDIV, Opcode::FMIN, Opcode::FMAX),
    [](const ::testing::TestParamInfo<Opcode> &info) {
        std::string name = mnemonic(info.param);
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(MemOpDifferential, AllWidthsRoundTripThroughMemory)
{
    Rng rng(0x3333);
    mem::SimpleMemory memory;
    for (int trial = 0; trial < 2000; ++trial) {
        Addr addr = 0x1000 + rng.nextBounded(0x10000);
        std::uint64_t value = rng.next();
        for (unsigned size : {1u, 2u, 4u, 8u}) {
            std::uint64_t mask =
                size == 8 ? ~std::uint64_t(0)
                          : ((std::uint64_t(1) << (size * 8)) - 1);
            memory.write(addr, size, value);
            EXPECT_EQ(memory.read(addr, size), value & mask);
        }
    }
}

} // namespace
