/**
 * @file
 * Differential testing of the functional executor: every computational
 * opcode, over thousands of random operand pairs, against an oracle
 * written independently of the executor's switch.  Guards the single
 * most safety-critical property of the simulator -- main-core and
 * checker-core executions agree bit-for-bit exactly when the
 * architecture says they should.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>
#include <vector>

#include "isa/builder.hh"
#include "isa/decoded.hh"
#include "isa/decoded_run.hh"
#include "isa/engine.hh"
#include "isa/executor.hh"
#include "mem/memory.hh"
#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace
{

using namespace paradox;
using namespace paradox::isa;

/** Run `op x3, x1, x2` once with the given operand values. */
std::uint64_t
runIntOp(Opcode op, std::uint64_t a, std::uint64_t b)
{
    Instruction inst;
    inst.op = op;
    inst.rd = 3;
    inst.rs1 = 1;
    inst.rs2 = 2;
    ProgramBuilder builder("diff");
    builder.halt();  // placeholder image; we step the raw instruction
    Program prog("diff", {inst, Instruction{Opcode::HALT, 0, 0, 0, 0}},
                 {});
    ArchState state;
    state.writeX(1, a);
    state.writeX(2, b);
    mem::SimpleMemory memory;
    ExecResult r = step(prog, state, memory);
    EXPECT_TRUE(r.valid);
    return state.readX(3);
}

/** Run `fop f3, f1, f2` once. */
double
runFpOp(Opcode op, double a, double b)
{
    Instruction inst;
    inst.op = op;
    inst.rd = 3;
    inst.rs1 = 1;
    inst.rs2 = 2;
    Program prog("diff", {inst, Instruction{Opcode::HALT, 0, 0, 0, 0}},
                 {});
    ArchState state;
    state.writeF(1, a);
    state.writeF(2, b);
    mem::SimpleMemory memory;
    ExecResult r = step(prog, state, memory);
    EXPECT_TRUE(r.valid);
    return state.readF(3);
}

/** Independent integer oracle (no shared code with the executor). */
std::uint64_t
intOracle(Opcode op, std::uint64_t a, std::uint64_t b)
{
    const auto sa = std::int64_t(a);
    const auto sb = std::int64_t(b);
    const auto int_min = std::numeric_limits<std::int64_t>::min();
    switch (op) {
      case Opcode::ADD:  return a + b;
      case Opcode::SUB:  return a - b;
      case Opcode::AND_: return a & b;
      case Opcode::OR_:  return a | b;
      case Opcode::XOR_: return a ^ b;
      case Opcode::SLL:  return a << (b % 64);
      case Opcode::SRL:  return a >> (b % 64);
      case Opcode::SRA:  return std::uint64_t(sa >> (b % 64));
      case Opcode::SLT:  return sa < sb ? 1 : 0;
      case Opcode::SLTU: return a < b ? 1 : 0;
      case Opcode::MUL:  return a * b;
      case Opcode::MULH: {
        __int128 p = __int128(sa) * __int128(sb);
        return std::uint64_t(std::uint64_t(std::int64_t(p >> 64)));
      }
      case Opcode::DIV:
        if (b == 0)
            return ~std::uint64_t(0);
        if (sa == int_min && sb == -1)
            return a;
        return std::uint64_t(sa / sb);
      case Opcode::DIVU: return b == 0 ? ~std::uint64_t(0) : a / b;
      case Opcode::REM:
        if (b == 0)
            return a;
        if (sa == int_min && sb == -1)
            return 0;
        return std::uint64_t(sa % sb);
      case Opcode::REMU: return b == 0 ? a : a % b;
      default: return 0;
    }
}

class IntOpDifferential : public ::testing::TestWithParam<Opcode>
{
};

TEST_P(IntOpDifferential, MatchesOracleOnRandomOperands)
{
    Opcode op = GetParam();
    Rng rng(0xd1ff ^ std::uint64_t(op));
    for (int trial = 0; trial < 3000; ++trial) {
        std::uint64_t a = rng.next();
        std::uint64_t b = rng.next();
        // Bias toward interesting values now and then.
        if (trial % 7 == 0)
            b = rng.nextBounded(4);
        if (trial % 11 == 0)
            a = ~std::uint64_t(0);
        if (trial % 13 == 0)
            a = std::uint64_t(
                std::numeric_limits<std::int64_t>::min());
        EXPECT_EQ(runIntOp(op, a, b), intOracle(op, a, b))
            << mnemonic(op) << " a=" << a << " b=" << b;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllIntOps, IntOpDifferential,
    ::testing::Values(Opcode::ADD, Opcode::SUB, Opcode::AND_,
                      Opcode::OR_, Opcode::XOR_, Opcode::SLL,
                      Opcode::SRL, Opcode::SRA, Opcode::SLT,
                      Opcode::SLTU, Opcode::MUL, Opcode::MULH,
                      Opcode::DIV, Opcode::DIVU, Opcode::REM,
                      Opcode::REMU),
    [](const ::testing::TestParamInfo<Opcode> &info) {
        std::string name = mnemonic(info.param);
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

/** Independent FP oracle. */
double
fpOracle(Opcode op, double a, double b)
{
    switch (op) {
      case Opcode::FADD: return a + b;
      case Opcode::FSUB: return a - b;
      case Opcode::FMUL: return a * b;
      case Opcode::FDIV: return a / b;
      case Opcode::FMIN: return std::fmin(a, b);
      case Opcode::FMAX: return std::fmax(a, b);
      default: return 0.0;
    }
}

class FpOpDifferential : public ::testing::TestWithParam<Opcode>
{
};

TEST_P(FpOpDifferential, MatchesOracleBitForBit)
{
    Opcode op = GetParam();
    Rng rng(0xf10a7 ^ std::uint64_t(op));
    for (int trial = 0; trial < 3000; ++trial) {
        double a = (rng.nextDouble() - 0.5) * 1e6;
        double b = (rng.nextDouble() - 0.5) * 1e6;
        if (trial % 9 == 0)
            b = 0.0;
        if (trial % 17 == 0)
            a = std::numeric_limits<double>::infinity();
        double got = runFpOp(op, a, b);
        double want = fpOracle(op, a, b);
        EXPECT_EQ(std::bit_cast<std::uint64_t>(got),
                  std::bit_cast<std::uint64_t>(want))
            << mnemonic(op) << " a=" << a << " b=" << b;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFpOps, FpOpDifferential,
    ::testing::Values(Opcode::FADD, Opcode::FSUB, Opcode::FMUL,
                      Opcode::FDIV, Opcode::FMIN, Opcode::FMAX),
    [](const ::testing::TestParamInfo<Opcode> &info) {
        std::string name = mnemonic(info.param);
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

// ---------------------------------------------------------------------
// Engine lockstep: the decoded threaded-dispatch engine against the
// reference engine, asserting identical per-instruction commit
// records and architectural state.

/** Pretty commit-record mismatch context. */
std::string
describeRecord(const CommitRecord &r)
{
    std::string s = "pc=" + std::to_string(r.pc) +
                    " op=" + (r.valid ? mnemonic(r.op) : "<wild>") +
                    " nextPc=" + std::to_string(r.nextPc) +
                    " dest=" + std::to_string(r.destValue);
    if (r.isLoad || r.isStore)
        s += " mem@" + std::to_string(r.memAddr) + "/" +
             std::to_string(r.memSize);
    return s;
}

/**
 * Run @p prog on both engines in lockstep for up to @p max_steps,
 * requiring bit-identical commit records, register state and memory
 * at every instruction boundary.
 */
void
lockstepSingleStep(const Program &prog, std::uint64_t max_steps)
{
    auto ref = makeEngine(EngineKind::Reference, prog);
    auto dec = makeEngine(EngineKind::Decoded, prog);
    EXPECT_EQ(ref->kind(), EngineKind::Reference);
    EXPECT_EQ(dec->kind(), EngineKind::Decoded);

    ArchState refState, decState;
    mem::SimpleMemory refMem, decMem;
    ref->reset(refState, refMem);
    dec->reset(decState, decMem);
    EXPECT_EQ(refState, decState);

    std::uint64_t steps = 0;
    for (; steps < max_steps; ++steps) {
        const MemPeek refPeek = ref->peekMem(refState);
        const MemPeek decPeek = dec->peekMem(decState);
        EXPECT_EQ(refPeek.valid, decPeek.valid);
        EXPECT_EQ(refPeek.isLoad, decPeek.isLoad);
        EXPECT_EQ(refPeek.isStore, decPeek.isStore);
        EXPECT_EQ(refPeek.addr, decPeek.addr);
        EXPECT_EQ(refPeek.size, decPeek.size);

        const CommitRecord a = ref->step(refState, refMem);
        const CommitRecord b = dec->step(decState, decMem);
        ASSERT_TRUE(a.sameAs(b))
            << prog.name() << " step " << steps << "\n  ref: "
            << describeRecord(a) << "\n  dec: " << describeRecord(b);
        ASSERT_EQ(refState, decState)
            << prog.name() << " state diverged at step " << steps;
        // The peek must agree with what actually executed.
        if (a.valid) {
            EXPECT_EQ(refPeek.isLoad, a.isLoad);
            EXPECT_EQ(refPeek.isStore, a.isStore);
            if (a.isLoad || a.isStore) {
                EXPECT_EQ(refPeek.addr, a.memAddr);
                EXPECT_EQ(refPeek.size, a.memSize);
            }
        }
        if (!a.valid || a.halted)
            break;
    }
    EXPECT_EQ(refMem.fingerprint(), decMem.fingerprint())
        << prog.name() << " memory diverged";
}

/**
 * Run the decoded program through the *batch* threaded-dispatch loop
 * (the checker-replay fast path, which carries resolved target
 * indices between micro-ops) against the reference engine stepping
 * one instruction at a time.
 */
void
lockstepBatch(const Program &prog, std::uint64_t max_steps)
{
    auto ref = makeEngine(EngineKind::Reference, prog);
    auto dp = DecodedProgram::get(prog);
    ASSERT_EQ(dp->size(), prog.size());

    ArchState refState, decState;
    mem::SimpleMemory refMem, decMem;
    ref->reset(refState, refMem);
    isa::loadProgram(prog, decState, decMem);

    std::uint64_t steps = 0;
    bool diverged = false;
    runDecoded(*dp, decState, decMem, max_steps,
               [&](const CommitRecord &b) {
                   const CommitRecord a = ref->step(refState, refMem);
                   EXPECT_TRUE(a.sameAs(b))
                       << prog.name() << " batch step " << steps
                       << "\n  ref: " << describeRecord(a)
                       << "\n  dec: " << describeRecord(b);
                   EXPECT_EQ(refState, decState)
                       << prog.name() << " batch state diverged at step "
                       << steps;
                   ++steps;
                   diverged = !a.sameAs(b) || !(refState == decState);
                   return !diverged;
               });
    EXPECT_FALSE(diverged);
    EXPECT_EQ(refMem.fingerprint(), decMem.fingerprint())
        << prog.name() << " batch memory diverged";
}

class EngineWorkloadDifferential
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EngineWorkloadDifferential, BatchLockstepBitIdentical)
{
    workloads::Workload w = workloads::build(GetParam(), 1);
    lockstepBatch(w.program, 150000);
}

TEST_P(EngineWorkloadDifferential, SingleStepLockstepBitIdentical)
{
    workloads::Workload w = workloads::build(GetParam(), 1);
    lockstepSingleStep(w.program, 50000);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, EngineWorkloadDifferential,
    ::testing::ValuesIn(workloads::allNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(EngineDifferential, DecodedImageMatchesCode)
{
    for (const auto &name : workloads::allNames()) {
        workloads::Workload w = workloads::build(name, 1);
        auto dp = DecodedProgram::get(w.program);
        ASSERT_EQ(dp->size(), w.program.size()) << name;
        for (std::size_t i = 0; i < dp->size(); ++i) {
            const MicroOp &u = dp->at(i);
            const Instruction &inst = w.program.code()[i];
            ASSERT_EQ(u.op, inst.op) << name << " @" << i;
            ASSERT_EQ(u.inst, &inst) << name << " @" << i;
            const InstInfo &ii = inst.info();
            ASSERT_EQ(u.cls, ii.cls);
            ASSERT_EQ(u.isLoad, ii.isLoad);
            ASSERT_EQ(u.isStore, ii.isStore);
            // Superblock runs must stop at (and only at) control
            // transfers, HALT, or the image end.
            const bool endsRun = ii.isBranch || ii.isJump ||
                                 inst.op == Opcode::HALT ||
                                 i + 1 == dp->size();
            ASSERT_EQ(u.runLen == 1, endsRun) << name << " @" << i;
            if (!endsRun) {
                ASSERT_EQ(u.runLen, dp->at(i + 1).runLen + 1);
            }
        }
    }
}

TEST(EngineDifferential, DecodeIsMemoizedPerProgram)
{
    workloads::Workload w = workloads::build("bitcount", 1);
    auto a = DecodedProgram::get(w.program);
    auto b = DecodedProgram::get(w.program);
    EXPECT_EQ(a.get(), b.get());

    // A different Program object decodes separately (micro-ops point
    // into their own image).
    workloads::Workload w2 = workloads::build("bitcount", 1);
    auto c = DecodedProgram::get(w2.program);
    EXPECT_NE(a.get(), c.get());
    EXPECT_EQ(a->contentHash(), c->contentHash());
}

/** Seeded random program: terminating, mostly-sane, sometimes wild. */
Program
randomProgram(std::uint64_t seed, unsigned insts)
{
    Rng rng(seed);
    std::vector<Instruction> code;
    code.reserve(insts + 1);
    const auto numOps = std::uint64_t(Opcode::NumOpcodes);
    for (unsigned i = 0; i < insts; ++i) {
        Instruction inst;
        inst.op = Opcode(rng.nextBounded(numOps));
        if (inst.op == Opcode::HALT && i + 1 != insts)
            inst.op = Opcode::ADD;  // keep programs long enough
        inst.rd = std::uint8_t(rng.nextBounded(isa::numIntRegs));
        inst.rs1 = std::uint8_t(rng.nextBounded(isa::numIntRegs));
        inst.rs2 = std::uint8_t(rng.nextBounded(isa::numIntRegs));
        const InstInfo &ii = instInfo(inst.op);
        if (ii.isBranch || inst.op == Opcode::JAL) {
            // Mostly in-image targets, occasionally wild/misaligned.
            if (rng.nextBounded(16) == 0)
                inst.imm = std::int64_t(rng.next() & 0xffff);
            else
                inst.imm = std::int64_t(
                    rng.nextBounded(insts) * instBytes);
        } else if (ii.isLoad || ii.isStore) {
            inst.imm = std::int64_t(0x2000 + rng.nextBounded(0x4000));
            inst.rs1 = 0;  // x0 base: bounded, deterministic footprint
        } else {
            inst.imm = std::int64_t(rng.next() & 0xffff) - 0x8000;
        }
        code.push_back(inst);
    }
    code.push_back(Instruction{Opcode::HALT, 0, 0, 0, 0});
    return Program("random-" + std::to_string(seed), std::move(code),
                   {});
}

TEST(EngineDifferential, RandomProgramsLockstep)
{
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        Program prog = randomProgram(0x5eedULL * seed + seed, 96);
        lockstepSingleStep(prog, 4000);
        lockstepBatch(prog, 4000);
    }
}

TEST(EngineDifferential, WildFetchLeavesStateUntouched)
{
    // A JAL straight out of the image.
    std::vector<Instruction> code;
    code.push_back(Instruction{Opcode::JAL, 1, 0, 0, 0x100000});
    Program prog("wild", std::move(code), {});

    auto dec = makeEngine(EngineKind::Decoded, prog);
    ArchState state;
    mem::SimpleMemory memory;
    dec->reset(state, memory);

    CommitRecord jump = dec->step(state, memory);
    EXPECT_TRUE(jump.valid);
    EXPECT_TRUE(jump.isJump);
    EXPECT_EQ(state.pc(), Addr(0x100000));

    const ArchState before = state;
    CommitRecord wild = dec->step(state, memory);
    EXPECT_FALSE(wild.valid);
    EXPECT_EQ(wild.pc, Addr(0x100000));
    EXPECT_EQ(wild.nextPc, Addr(0));
    EXPECT_EQ(state, before);
    EXPECT_EQ(wild.inst, nullptr);
    EXPECT_FALSE(dec->peekMem(state).valid);
}

TEST(MemOpDifferential, AllWidthsRoundTripThroughMemory)
{
    Rng rng(0x3333);
    mem::SimpleMemory memory;
    for (int trial = 0; trial < 2000; ++trial) {
        Addr addr = 0x1000 + rng.nextBounded(0x10000);
        std::uint64_t value = rng.next();
        for (unsigned size : {1u, 2u, 4u, 8u}) {
            std::uint64_t mask =
                size == 8 ? ~std::uint64_t(0)
                          : ((std::uint64_t(1) << (size * 8)) - 1);
            memory.write(addr, size, value);
            EXPECT_EQ(memory.read(addr, size), value & mask);
        }
    }
}

} // namespace
