/**
 * @file
 * Tests for the parallel experiment runner: parallel execution must
 * be observationally identical to serial execution (per-spec results
 * bit-identical, seeds isolated between jobs), a throwing job must
 * be reported without aborting the batch, the process-isolated
 * backend must contain dying children, and the typed Cli must parse
 * and reject correctly.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/result_json.hh"
#include "exp/cli.hh"
#include "exp/runner.hh"
#include "exp/sink.hh"
#include "exp/spec.hh"

namespace
{

using namespace paradox;

exp::ExperimentSpec
faultySpec(const std::string &workload, double rate,
           std::uint64_t seed)
{
    exp::ExperimentSpec spec;
    spec.workload = workload;
    spec.mode = core::Mode::ParaDox;
    spec.faultRate = rate;
    spec.seed = seed;
    return spec;
}

/** Mixed batch covering both workload classes and fault regimes. */
std::vector<exp::ExperimentSpec>
mixedBatch()
{
    std::vector<exp::ExperimentSpec> specs;
    specs.push_back(faultySpec("bitcount", 0.0, 1));
    specs.push_back(faultySpec("bitcount", 1e-4, 2));
    specs.push_back(faultySpec("stream", 0.0, 3));
    specs.push_back(faultySpec("stream", 1e-4, 4));
    specs.push_back(faultySpec("bitcount", 1e-3, 5));
    specs.push_back(faultySpec("stream", 1e-3, 6));
    specs.push_back(faultySpec("bitcount", 1e-5, 7));
    specs.push_back(faultySpec("stream", 1e-5, 8));
    return specs;
}

std::string
fingerprint(const exp::RunOutcome &o)
{
    return core::toJson(o.result) + "|" +
           std::to_string(o.finalValue) + "|" +
           (o.correct ? "1" : "0");
}

TEST(ExpRunner, ParallelMatchesSerial)
{
    std::vector<exp::ExperimentSpec> specs = mixedBatch();

    exp::RunnerOptions serial_opt;
    serial_opt.jobs = 1;
    std::vector<exp::RunOutcome> serial =
        exp::Runner(serial_opt).run(specs);

    exp::RunnerOptions par_opt;
    par_opt.jobs = 8;
    std::vector<exp::RunOutcome> parallel =
        exp::Runner(par_opt).run(specs);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_TRUE(serial[i].ok());
        EXPECT_TRUE(parallel[i].ok());
        EXPECT_EQ(fingerprint(serial[i]), fingerprint(parallel[i]))
            << "spec " << i << " diverged between serial and "
            << "8-job parallel execution";
        EXPECT_EQ(exp::recordJson(specs[i], serial[i]),
                  exp::recordJson(specs[i], parallel[i]));
    }
}

TEST(ExpRunner, SeedsDoNotBleedAcrossJobs)
{
    // Same spec at eight different seeds, run concurrently; each
    // must match the outcome of running its seed alone in this
    // thread.  If any job's RNG stream leaked into another's, the
    // fault-injection timelines (and hence the results) would
    // differ.
    std::vector<exp::ExperimentSpec> specs;
    for (std::uint64_t seed = 100; seed < 108; ++seed)
        specs.push_back(faultySpec("bitcount", 3e-4, seed));

    exp::RunnerOptions opt;
    opt.jobs = 8;
    std::vector<exp::RunOutcome> parallel =
        exp::Runner(opt).run(specs);

    bool any_pair_differs = false;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        exp::RunOutcome alone = exp::runOne(specs[i]);
        EXPECT_EQ(fingerprint(alone), fingerprint(parallel[i]))
            << "seed " << specs[i].seed
            << " not isolated from concurrent jobs";
        if (i > 0 &&
            parallel[i].result.faultsInjected !=
                parallel[0].result.faultsInjected)
            any_pair_differs = true;
    }
    // Sanity: distinct seeds actually produce distinct timelines,
    // otherwise the isolation check above is vacuous.
    EXPECT_TRUE(any_pair_differs);
}

TEST(ExpRunner, ChipSpecsDeterministicAcrossJobCounts)
{
    // Chip-mode batch spanning chip seeds, persistence classes, and
    // both rail regimes (AIMD undervolting and a fixed supply).  The
    // emitted JSONL record -- chip fields, per-injector counters,
    // weak-cell hits and all -- must be byte-identical whether the
    // batch runs serially or 4-wide.
    std::vector<exp::ExperimentSpec> specs;
    for (std::uint64_t chip : {101ULL, 202ULL}) {
        for (faults::Persistence persistence :
             {faults::Persistence::Transient,
              faults::Persistence::Permanent}) {
            exp::ExperimentSpec spec =
                faultySpec("bitcount", 0.0, 12345);
            spec.chipSeed = chip;
            spec.persistence = persistence;
            spec.escalate = true;
            spec.supplyVoltage = 0.87;
            specs.push_back(spec);
            spec.supplyVoltage = 0.0;
            spec.dvfs = true;
            specs.push_back(spec);
        }
    }

    exp::RunnerOptions serial_opt;
    serial_opt.jobs = 1;
    std::vector<exp::RunOutcome> serial =
        exp::Runner(serial_opt).run(specs);

    exp::RunnerOptions par_opt;
    par_opt.jobs = 4;
    std::vector<exp::RunOutcome> parallel =
        exp::Runner(par_opt).run(specs);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        ASSERT_TRUE(serial[i].ok()) << serial[i].error;
        // Zero silent corruption: every chip run either finishes
        // with the golden checksum or halts detectably short.
        if (serial[i].result.halted)
            EXPECT_TRUE(serial[i].correct)
                << "silent corruption in chip spec " << i;
        EXPECT_EQ(exp::recordJson(specs[i], serial[i]),
                  exp::recordJson(specs[i], parallel[i]))
            << "chip spec " << i << " diverged across job counts";
    }
}

TEST(ExpRunner, ThrowingJobReportedWithoutAbortingBatch)
{
    std::vector<exp::ExperimentSpec> specs = {
        faultySpec("bitcount", 0.0, 1),
        faultySpec("no-such-workload", 0.0, 2),
        faultySpec("stream", 0.0, 3),
    };

    exp::RunnerOptions opt;
    opt.jobs = 3;
    std::vector<exp::RunOutcome> outcomes =
        exp::Runner(opt).run(specs);

    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_TRUE(outcomes[0].ok());
    EXPECT_TRUE(outcomes[0].correct);
    EXPECT_FALSE(outcomes[1].ok());
    EXPECT_NE(outcomes[1].error.find("no-such-workload"),
              std::string::npos);
    EXPECT_TRUE(outcomes[2].ok());
    EXPECT_TRUE(outcomes[2].correct);

    // The bad job is also representable in the JSONL schema.
    std::string record = exp::recordJson(specs[1], outcomes[1]);
    EXPECT_NE(record.find("\"error\":"), std::string::npos);
}

TEST(ExpRunner, MapRethrowsFirstJobException)
{
    exp::RunnerOptions opt;
    opt.jobs = 4;
    exp::Runner runner(opt);
    EXPECT_THROW(
        runner.map<int>(8,
                        [](std::size_t i) -> int {
                            if (i == 5)
                                throw std::runtime_error("job 5");
                            return int(i);
                        }),
        std::runtime_error);
}

TEST(ExpRunner, MapOrdersResultsByIndex)
{
    exp::RunnerOptions opt;
    opt.jobs = 8;
    exp::Runner runner(opt);
    std::vector<int> out = runner.map<int>(
        64, [](std::size_t i) { return int(i) * 7; });
    ASSERT_EQ(out.size(), 64u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], int(i) * 7);
}

TEST(ExpRunner, IsolatedBackendContainsDyingChildren)
{
    exp::RunnerOptions opt;
    opt.jobs = 2;
    std::vector<exp::IsolatedResult> results = exp::runIsolated(
        4,
        [](std::size_t i) -> std::string {
            if (i == 2)
                std::abort();  // runs in the forked child
            return "payload-" + std::to_string(i);
        },
        opt);

    ASSERT_EQ(results.size(), 4u);
    EXPECT_EQ(results[0].payload, "payload-0");
    EXPECT_EQ(results[1].payload, "payload-1");
    EXPECT_TRUE(results[2].crashed);
    EXPECT_EQ(results[3].payload, "payload-3");
    EXPECT_FALSE(results[3].crashed);
}

TEST(ExpCli, TypedParsingAndErrors)
{
    unsigned jobs = 1;
    double rate = 0.0;
    bool smoke = false;
    std::string out;
    exp::Cli cli("test", "test parser");
    cli.opt("jobs", jobs, "j");
    cli.opt("rate", rate, "r");
    cli.flag("smoke", smoke, "s");
    cli.opt("out", out, "o");

    std::string error;
    EXPECT_TRUE(cli.parseArgs(
        {"--jobs", "8", "--rate", "1e-4", "--smoke", "--out", "x.jsonl"},
        error));
    EXPECT_EQ(jobs, 8u);
    EXPECT_DOUBLE_EQ(rate, 1e-4);
    EXPECT_TRUE(smoke);
    EXPECT_EQ(out, "x.jsonl");

    EXPECT_FALSE(cli.parseArgs({"--no-such-flag"}, error));
    EXPECT_NE(error.find("unknown flag"), std::string::npos);

    EXPECT_FALSE(cli.parseArgs({"--jobs", "abc"}, error));
    EXPECT_NE(error.find("invalid value"), std::string::npos);

    EXPECT_FALSE(cli.parseArgs({"--jobs"}, error));
    EXPECT_NE(error.find("needs a value"), std::string::npos);

    EXPECT_FALSE(cli.parseArgs({"stray"}, error));
    EXPECT_NE(error.find("unexpected argument"), std::string::npos);
}

TEST(ExpSink, RecordSchemaRoundTrip)
{
    exp::ExperimentSpec spec = faultySpec("bitcount", 1e-4, 77);
    spec.label = "unit \"quoted\" label";
    exp::RunOutcome out = exp::runOne(spec);
    std::string record = exp::recordJson(spec, out);
    EXPECT_NE(record.find("\"workload\":\"bitcount\""),
              std::string::npos);
    EXPECT_NE(record.find("\\\"quoted\\\""), std::string::npos);
    EXPECT_NE(record.find("\"correct\":true"), std::string::npos);
    EXPECT_NE(record.find("\"result\":{"), std::string::npos);
    // Every record is a single line.
    EXPECT_EQ(record.find('\n'), std::string::npos);
}

} // namespace
