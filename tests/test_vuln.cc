/**
 * @file
 * Static fault-vulnerability analysis tests: golden live-bit masks on
 * hand-built programs (dead stores, partially-live shifted values,
 * interval-masked high bits), chip weak-cell and load-entry verdicts,
 * model determinism, and -- the property the whole pass exists for --
 * randomized injection into statically-dead sites across many seeds
 * must never produce an architecturally visible divergence.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/regmodel.hh"
#include "analysis/vuln.hh"
#include "faults/chip_model.hh"
#include "isa/builder.hh"
#include "isa/executor.hh"
#include "mem/memory.hh"
#include "workloads/workload.hh"

namespace
{

using namespace paradox;
using namespace paradox::isa;
using namespace paradox::analysis;

constexpr XReg r0{0}, r1{1}, r2{2}, r3{3}, r4{4}, r5{5};

constexpr std::uint64_t allBits = ~std::uint64_t{0};
constexpr Addr base = 0x1000;

// ---------------------------------------------------------------------
// Golden live-bit masks
// ---------------------------------------------------------------------

TEST(Vuln, DeadStoreRegisterHasNoLiveBits)
{
    ProgramBuilder b("t");
    b.footprint(base, 8, "out");
    b.ldi(r1, 0x123)  // idx 0: stored below -> fully live
        .ldi(r2, base)   // idx 1: store base -> fully live
        .ldi(r3, 42)     // idx 2: never used again -> dead
        .sd(r1, r2, 0)   // idx 3
        .halt();         // idx 4
    const Program prog = b.build();
    const auto va = VulnAnalysis::build(prog);

    EXPECT_EQ(va->liveOutMask(2, xslot(3)), 0u);
    for (unsigned bit : {0u, 17u, 63u})
        EXPECT_EQ(va->regBitVerdict(2, xslot(3), bit),
                  SiteVerdict::Dead);

    // The stored value and the base address must stay fully live.
    EXPECT_EQ(va->liveOutMask(0, xslot(1)), allBits);
    EXPECT_EQ(va->liveOutMask(1, xslot(2)), allBits);
    EXPECT_EQ(va->regBitVerdict(0, xslot(1), 5), SiteVerdict::Live);

    // x0 is never a live site: flips are discarded by the write port.
    EXPECT_EQ(va->regBitVerdict(0, 0, 3), SiteVerdict::Dead);

    // Registers are not architectural output at HALT: nothing is
    // live out of the exit block.
    EXPECT_EQ(va->liveOutMask(4, xslot(1)), 0u);
}

TEST(Vuln, ShiftedValueIsPartiallyLive)
{
    // Only the low byte of r1 survives the 56-bit left shift into
    // the stored double-word; bits 8..63 are provably masked.
    ProgramBuilder b("t");
    b.footprint(base, 8, "out");
    b.ldi(r1, 0xAB)        // idx 0
        .slli(r2, r1, 56)  // idx 1
        .ldi(r3, base)     // idx 2
        .sd(r2, r3, 0)     // idx 3
        .halt();
    const Program prog = b.build();
    const auto va = VulnAnalysis::build(prog);

    EXPECT_EQ(va->liveOutMask(0, xslot(1)), 0xffu);
    EXPECT_EQ(va->regBitVerdict(0, xslot(1), 7), SiteVerdict::Live);
    EXPECT_EQ(va->regBitVerdict(0, xslot(1), 8), SiteVerdict::Dead);
    EXPECT_EQ(va->regBitVerdict(0, xslot(1), 63), SiteVerdict::Dead);
    // The shifted result itself feeds the store whole.
    EXPECT_EQ(va->liveOutMask(1, xslot(2)), allBits);
}

TEST(Vuln, IntervalMaskPrunesHighBits)
{
    // r2 is provably the constant 0xff, so AND r3, r1, r2 kills
    // bits 8..63 of r1 -- but only when the interval facts are in.
    ProgramBuilder b("t");
    b.footprint(base, 8, "out");
    b.ldi(r1, 0x12345)      // idx 0
        .ldi(r2, 0xff)      // idx 1: the mask
        .and_(r3, r1, r2)   // idx 2
        .ldi(r4, base)      // idx 3
        .sd(r3, r4, 0)      // idx 4
        .halt();
    const Program prog = b.build();

    const auto with_iv = VulnAnalysis::build(prog);
    EXPECT_EQ(with_iv->liveOutMask(0, xslot(1)), 0xffu);
    EXPECT_EQ(with_iv->regBitVerdict(0, xslot(1), 32),
              SiteVerdict::Dead);
    // Soundness: the masking operand itself must stay fully live --
    // pruning both AND inputs at once would let two "dead" flips
    // conspire into a live result bit.
    EXPECT_EQ(with_iv->liveOutMask(1, xslot(2)), allBits);

    // Without interval facts the same bits are conservatively live.
    const Cfg cfg = Cfg::build(prog);
    const VulnAnalysis no_iv =
        VulnAnalysis::run(prog, cfg, cfg.reachableBlocks());
    EXPECT_EQ(no_iv.liveOutMask(0, xslot(1)), allBits);
    EXPECT_EQ(no_iv.regBitVerdict(0, xslot(1), 32),
              SiteVerdict::Live);
}

// ---------------------------------------------------------------------
// Chip-cell and load-entry verdicts
// ---------------------------------------------------------------------

TEST(Vuln, ChipCellVerdictsAreDeterministicAndLogRowsStayLive)
{
    const auto w = workloads::build("bitcount", 1);
    const std::vector<MemRegion> result = {
        {workloads::resultAddr, 8, "result"}};
    const auto va1 = VulnAnalysis::build(w.program, result);
    const auto va2 = VulnAnalysis::build(w.program, result);
    EXPECT_EQ(va1->programHash(), va2->programHash());

    faults::ChipConfig cc;
    cc.chipSeed = 7;
    const faults::ChipModel chip(cc);
    ASSERT_FALSE(chip.cells().empty());
    bool saw_log_row = false;
    for (const faults::WeakCell &cell : chip.cells()) {
        EXPECT_EQ(va1->cellVerdict(cell), va2->cellVerdict(cell));
        if (cell.kind == faults::SiteKind::LogRow) {
            saw_log_row = true;
            // Store rows always matter and load rows are judged per
            // consuming instruction at replay time, so the static
            // per-cell verdict must stay conservative.
            EXPECT_EQ(va1->cellVerdict(cell), SiteVerdict::Live);
        }
    }
    EXPECT_TRUE(saw_log_row);
}

TEST(Vuln, LoadEntryVerdictFollowsAccessWidth)
{
    ProgramBuilder b("t");
    b.footprint(base, 16, "buf");
    b.ldi(r2, base)      // idx 0
        .lb(r1, r2, 0)   // idx 1: sign-extending byte load
        .sd(r1, r2, 8)   // idx 2
        .lb(r0, r2, 1)   // idx 3: load to x0
        .halt();
    const Program prog = b.build();
    const auto va = VulnAnalysis::build(prog);
    const Instruction &lb1 = prog.code()[1];
    const Instruction &lb_x0 = prog.code()[3];

    // Bits at/above the access width are re-extended away.
    EXPECT_EQ(va->loadEntryVerdict(lb1, 1, 8), SiteVerdict::Dead);
    EXPECT_EQ(va->loadEntryVerdict(lb1, 1, 63), SiteVerdict::Dead);
    // Low bits land in a stored register.
    EXPECT_EQ(va->loadEntryVerdict(lb1, 1, 0), SiteVerdict::Live);
    // The sign bit smears across the whole destination.
    EXPECT_EQ(va->loadEntryVerdict(lb1, 1, 7), SiteVerdict::Live);
    // A load to x0 never becomes architectural.
    EXPECT_EQ(va->loadEntryVerdict(lb_x0, 3, 0), SiteVerdict::Dead);
}

// ---------------------------------------------------------------------
// The soundness property: dead sites are invisible
// ---------------------------------------------------------------------

struct CleanRun
{
    std::uint64_t fingerprint = 0;
    std::uint64_t result = 0;
    std::uint64_t executed = 0;
    std::vector<std::uint32_t> instIdx;  //!< per executed step
};

CleanRun
runClean(const workloads::Workload &w)
{
    CleanRun c;
    mem::SimpleMemory memory;
    ArchState state;
    loadProgram(w.program, state, memory);
    for (;;) {
        const ExecResult r = step(w.program, state, memory);
        EXPECT_TRUE(r.valid);
        c.instIdx.push_back(std::uint32_t(r.pc / instBytes));
        ++c.executed;
        if (r.halted)
            break;
    }
    c.fingerprint = memory.fingerprint();
    c.result = memory.read(workloads::resultAddr, 8);
    return c;
}

TEST(Vuln, DeadSiteInjectionIsArchitecturallyInvisible)
{
    const auto w = workloads::build("bitcount", 1);
    const auto va = VulnAnalysis::build(
        w.program, {{workloads::resultAddr, 8, "result"}});
    const CleanRun clean = runClean(w);
    ASSERT_GT(clean.executed, 100u);
    EXPECT_EQ(clean.result, w.expectedResult);

    std::mt19937_64 rng(0xD15EA5Eu);
    constexpr unsigned kInjections = 48;
    unsigned injected = 0;
    for (unsigned trial = 0; injected < kInjections; ++trial) {
        ASSERT_LT(trial, 100000u) << "could not find dead sites";
        const std::uint64_t at = rng() % clean.executed;
        const unsigned slot = unsigned(rng() % numRegSlots);
        const unsigned bit = unsigned(rng() % 64);
        if (va->regBitVerdict(clean.instIdx[std::size_t(at)], slot,
                              bit) != SiteVerdict::Dead)
            continue;
        ++injected;

        mem::SimpleMemory memory;
        ArchState state;
        loadProgram(w.program, state, memory);
        std::uint64_t executed = 0;
        bool halted = false;
        // Hard cap: a dead flip may never change control flow, so
        // the corrupted run retires exactly the clean count.
        for (; executed < clean.executed * 2 + 16; ++executed) {
            const ExecResult r = step(w.program, state, memory);
            ASSERT_TRUE(r.valid);
            if (executed == at) {
                // Post-commit flip at the statically-dead site.
                if (slot == 0)
                    ; // x0: nothing to corrupt
                else if (slot < numIntRegs)
                    state.writeX(slot, state.readX(slot) ^
                                           (std::uint64_t{1} << bit));
                else
                    state.writeFBits(
                        slot - numIntRegs,
                        state.readFBits(slot - numIntRegs) ^
                            (std::uint64_t{1} << bit));
            }
            if (r.halted) {
                ++executed;
                halted = true;
                break;
            }
        }
        ASSERT_TRUE(halted) << "slot " << slot << " bit " << bit
                            << " @" << at;
        EXPECT_EQ(executed, clean.executed)
            << "slot " << slot << " bit " << bit << " @" << at;
        EXPECT_EQ(memory.fingerprint(), clean.fingerprint)
            << "slot " << slot << " bit " << bit << " @" << at;
        EXPECT_EQ(memory.read(workloads::resultAddr, 8), clean.result)
            << "slot " << slot << " bit " << bit << " @" << at;
    }
}

// A live site, by contrast, can be architecturally visible -- the
// masks are not vacuously "everything is dead".
TEST(Vuln, AnalysisReportsLiveBitsToo)
{
    const auto w = workloads::build("bitcount", 1);
    const auto va = VulnAnalysis::build(
        w.program, {{workloads::resultAddr, 8, "result"}});
    const VulnAnalysis::Stats &st = va->stats();
    EXPECT_GT(st.regBitsLive, 0u);
    EXPECT_LT(st.regBitsLive, st.regBitsTotal);
    EXPECT_GT(st.liveFraction, 0.0);
    EXPECT_LT(st.liveFraction, 1.0);
}

} // namespace
