/**
 * @file
 * ISA unit tests: executor semantics per opcode family, the program
 * builder, and architectural-state operations.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "isa/builder.hh"
#include "isa/executor.hh"
#include "mem/memory.hh"

namespace
{

using namespace paradox;
using namespace paradox::isa;

constexpr XReg r1{1}, r2{2}, r3{3}, r4{4};
constexpr FReg d1{1}, d2{2}, d3{3};

/** Assemble, run to halt, return the final state. */
ArchState
runProgram(ProgramBuilder &b, mem::SimpleMemory &memory,
           std::uint64_t max_steps = 100000)
{
    Program prog = b.build();
    ArchState state;
    loadProgram(prog, state, memory);
    for (std::uint64_t i = 0; i < max_steps; ++i) {
        ExecResult r = step(prog, state, memory);
        EXPECT_TRUE(r.valid);
        if (r.halted)
            return state;
    }
    ADD_FAILURE() << "program did not halt";
    return state;
}

ArchState
runProgram(ProgramBuilder &b)
{
    mem::SimpleMemory memory;
    return runProgram(b, memory);
}

TEST(Executor, IntegerArithmetic)
{
    ProgramBuilder b("t");
    b.ldi(r1, 7).ldi(r2, 5);
    b.add(r3, r1, r2);
    b.sub(r4, r1, r2);
    b.halt();
    ArchState s = runProgram(b);
    EXPECT_EQ(s.readX(3), 12u);
    EXPECT_EQ(s.readX(4), 2u);
}

TEST(Executor, X0IsHardwiredZero)
{
    ProgramBuilder b("t");
    b.ldi(r1, 99);
    b.add(xzero, r1, r1);  // write attempt to x0
    b.add(r2, xzero, xzero);
    b.halt();
    ArchState s = runProgram(b);
    EXPECT_EQ(s.readX(0), 0u);
    EXPECT_EQ(s.readX(2), 0u);
}

TEST(Executor, ShiftsSignedAndUnsigned)
{
    ProgramBuilder b("t");
    b.ldi(r1, std::uint64_t(-16));
    b.srai(r2, r1, 2);
    b.srli(r3, r1, 2);
    b.slli(r4, r1, 1);
    b.halt();
    ArchState s = runProgram(b);
    EXPECT_EQ(std::int64_t(s.readX(2)), -4);
    EXPECT_EQ(s.readX(3), std::uint64_t(-16) >> 2);
    EXPECT_EQ(s.readX(4), std::uint64_t(-32));
}

TEST(Executor, DivisionEdgeCases)
{
    ProgramBuilder b("t");
    b.ldi(r1, std::uint64_t(std::numeric_limits<std::int64_t>::min()));
    b.ldi(r2, std::uint64_t(-1));
    b.div(r3, r1, r2);   // overflow: INT64_MIN
    b.rem(r4, r1, r2);   // overflow: 0
    b.ldi(XReg{5}, 10);
    b.div(XReg{6}, XReg{5}, xzero);   // div by zero: all ones
    b.rem(XReg{7}, XReg{5}, xzero);   // rem by zero: dividend
    b.halt();
    ArchState s = runProgram(b);
    EXPECT_EQ(std::int64_t(s.readX(3)),
              std::numeric_limits<std::int64_t>::min());
    EXPECT_EQ(s.readX(4), 0u);
    EXPECT_EQ(s.readX(6), ~std::uint64_t(0));
    EXPECT_EQ(s.readX(7), 10u);
}

TEST(Executor, MulHigh)
{
    ProgramBuilder b("t");
    b.ldi(r1, std::uint64_t(-2));
    b.ldi(r2, 3);
    b.mulh(r3, r1, r2);
    b.halt();
    ArchState s = runProgram(b);
    // -2 * 3 = -6: high 64 bits of the signed product are all ones.
    EXPECT_EQ(s.readX(3), ~std::uint64_t(0));
}

TEST(Executor, LoadSignAndZeroExtension)
{
    ProgramBuilder b("t");
    b.data64(0x1000, 0x00000000000080ffULL);  // bytes: ff 80 ...
    b.ldi(r1, 0x1000);
    b.lb(r2, r1, 0);    // 0xff -> -1
    b.lbu(r3, r1, 0);   // 0xff -> 255
    b.lh(r4, r1, 0);    // 0x80ff -> sign extended
    b.halt();
    ArchState s = runProgram(b);
    EXPECT_EQ(std::int64_t(s.readX(2)), -1);
    EXPECT_EQ(s.readX(3), 255u);
    EXPECT_EQ(std::int64_t(s.readX(4)),
              std::int64_t(std::int16_t(0x80ff)));
}

TEST(Executor, StoreReturnsOldValue)
{
    ProgramBuilder b("t");
    b.data64(0x2000, 0x1111111111111111ULL);
    b.ldi(r1, 0x2000);
    b.ldi(r2, 0x2222222222222222ULL);
    b.sd(r2, r1, 0);
    b.halt();
    Program prog = b.build();
    mem::SimpleMemory memory;
    ArchState state;
    loadProgram(prog, state, memory);
    step(prog, state, memory);  // ldi
    step(prog, state, memory);  // ldi
    ExecResult r = step(prog, state, memory);
    EXPECT_TRUE(r.isStore);
    EXPECT_EQ(r.storeOld, 0x1111111111111111ULL);
    EXPECT_EQ(r.storeValue, 0x2222222222222222ULL);
    EXPECT_EQ(memory.read(0x2000, 8), 0x2222222222222222ULL);
}

TEST(Executor, PartialStorePreservesNeighbours)
{
    ProgramBuilder b("t");
    b.data64(0x2000, 0xaaaaaaaaaaaaaaaaULL);
    b.ldi(r1, 0x2000);
    b.ldi(r2, 0x42);
    b.sb(r2, r1, 3);
    b.halt();
    mem::SimpleMemory memory;
    runProgram(b, memory);
    EXPECT_EQ(memory.read(0x2000, 8), 0xaaaaaaaa42aaaaaaULL);
}

TEST(Executor, BranchesAndLoops)
{
    ProgramBuilder b("t");
    b.ldi(r1, 10).ldi(r2, 0);
    b.label("loop");
    b.add(r2, r2, r1);
    b.addi(r1, r1, -1);
    b.bne(r1, xzero, "loop");
    b.halt();
    ArchState s = runProgram(b);
    EXPECT_EQ(s.readX(2), 55u);  // 10+9+...+1
}

TEST(Executor, JalRecordsLinkAndJalrReturns)
{
    ProgramBuilder b("t");
    b.ldi(r1, 5);
    b.jal(r3, "func");
    b.addi(r1, r1, 100);  // executed after return
    b.halt();
    b.label("func");
    b.addi(r1, r1, 1);
    b.ret(r3);
    ArchState s = runProgram(b);
    EXPECT_EQ(s.readX(1), 106u);
    EXPECT_EQ(s.readX(3), 2u * instBytes);  // return address
}

TEST(Executor, FpArithmeticAndCompares)
{
    ProgramBuilder b("t");
    b.dataF64(0x3000, 2.25);
    b.dataF64(0x3008, 4.0);
    b.ldi(r1, 0x3000);
    b.fld(d1, r1, 0);
    b.fld(d2, r1, 8);
    b.fadd(d3, d1, d2);
    b.fsd(d3, r1, 16);
    b.fsqrt(FReg{4}, d2);
    b.fsd(FReg{4}, r1, 24);
    b.flt(r2, d1, d2);
    b.fle(r3, d2, d1);
    b.halt();
    mem::SimpleMemory memory;
    ArchState s = runProgram(b, memory);
    EXPECT_EQ(std::bit_cast<double>(memory.read(0x3010, 8)), 6.25);
    EXPECT_EQ(std::bit_cast<double>(memory.read(0x3018, 8)), 2.0);
    EXPECT_EQ(s.readX(2), 1u);
    EXPECT_EQ(s.readX(3), 0u);
}

TEST(Executor, FpExceptionFlags)
{
    ProgramBuilder b("t");
    b.dataF64(0x3000, 1.0);
    b.dataF64(0x3008, 0.0);
    b.dataF64(0x3010, -4.0);
    b.ldi(r1, 0x3000);
    b.fld(d1, r1, 0);
    b.fld(d2, r1, 8);
    b.fld(d3, r1, 16);
    b.fdiv(FReg{4}, d1, d2);   // 1/0 -> divzero flag
    b.fsqrt(FReg{5}, d3);      // sqrt(-4) -> invalid flag
    b.halt();
    ArchState s = runProgram(b);
    EXPECT_TRUE(s.fflags() & ArchState::flagDivZero);
    EXPECT_TRUE(s.fflags() & ArchState::flagInvalid);
}

TEST(Executor, FcvtHandlesNaNAndClamps)
{
    ProgramBuilder b("t");
    b.dataF64(0x3000, std::nan(""));
    b.dataF64(0x3008, 1e30);
    b.dataF64(0x3010, -1e30);
    b.ldi(r1, 0x3000);
    b.fld(d1, r1, 0);
    b.fld(d2, r1, 8);
    b.fld(d3, r1, 16);
    b.fcvtLD(r2, d1);
    b.fcvtLD(r3, d2);
    b.fcvtLD(r4, d3);
    b.halt();
    ArchState s = runProgram(b);
    EXPECT_EQ(s.readX(2), 0u);
    EXPECT_EQ(std::int64_t(s.readX(3)),
              std::numeric_limits<std::int64_t>::max());
    EXPECT_EQ(std::int64_t(s.readX(4)),
              std::numeric_limits<std::int64_t>::min());
    EXPECT_TRUE(s.fflags() & ArchState::flagInvalid);
}

TEST(Executor, FmaddUsesDestinationAsAccumulator)
{
    ProgramBuilder b("t");
    b.dataF64(0x3000, 3.0);
    b.dataF64(0x3008, 4.0);
    b.dataF64(0x3010, 10.0);
    b.ldi(r1, 0x3000);
    b.fld(d1, r1, 0);
    b.fld(d2, r1, 8);
    b.fld(d3, r1, 16);
    b.fmadd(d3, d1, d2);  // d3 = 3*4 + 10
    b.fsd(d3, r1, 24);
    b.halt();
    mem::SimpleMemory memory;
    runProgram(b, memory);
    EXPECT_EQ(std::bit_cast<double>(memory.read(0x3018, 8)), 22.0);
}

TEST(Executor, SyscallIsDeterministic)
{
    auto run_once = [] {
        ProgramBuilder b("t");
        b.ldi(r1, 0x1234);
        b.syscall(r2, r1);
        b.halt();
        return runProgram(b).readX(2);
    };
    std::uint64_t a = run_once();
    std::uint64_t b = run_once();
    EXPECT_EQ(a, b);
    EXPECT_NE(a, 0u);
}

TEST(Executor, WildFetchReportsInvalid)
{
    ProgramBuilder b("t");
    b.halt();
    Program prog = b.build();
    ArchState state;
    state.reset(0x9999000);  // far outside the image
    mem::SimpleMemory memory;
    ExecResult r = step(prog, state, memory);
    EXPECT_FALSE(r.valid);
    EXPECT_EQ(state.pc(), 0x9999000u);  // state untouched
}

TEST(Builder, LabelsResolveForwardAndBackward)
{
    ProgramBuilder b("t");
    b.j("fwd");
    b.label("back");
    b.halt();
    b.label("fwd");
    b.j("back");
    Program prog = b.build();
    EXPECT_EQ(prog.code()[0].imm, std::int64_t(2 * instBytes));
    EXPECT_EQ(prog.code()[2].imm, std::int64_t(1 * instBytes));
}

TEST(Builder, FetchOutsideImageReturnsNull)
{
    ProgramBuilder b("t");
    b.halt();
    Program prog = b.build();
    EXPECT_NE(prog.fetch(0), nullptr);
    EXPECT_EQ(prog.fetch(instBytes), nullptr);
    EXPECT_EQ(prog.fetch(1), nullptr);  // misaligned
}

TEST(ArchState, FlipBitPerCategory)
{
    ArchState s;
    s.writeX(5, 0);
    ArchState before = s;

    s.flipBit(RegCategory::Integer, 4, 3);  // x5 bit 3
    EXPECT_NE(s, before);
    EXPECT_EQ(s.readX(5), 8u);

    ArchState t;
    t.flipBit(RegCategory::Float, 2, 10);
    EXPECT_EQ(t.readFBits(2), std::uint64_t(1) << 10);

    ArchState u;
    u.flipBit(RegCategory::Flags, 0, 1);
    EXPECT_EQ(u.fflags(), 2u);

    ArchState v;
    v.setPc(0x100);
    v.flipBit(RegCategory::Misc, 0, 4);
    EXPECT_EQ(v.pc(), 0x110u);
    EXPECT_EQ(v.pc() % instBytes, 0u);
}

TEST(ArchState, FlipBitNeverTouchesX0)
{
    for (unsigned idx = 0; idx < 64; ++idx) {
        ArchState s;
        s.flipBit(RegCategory::Integer, idx, 0);
        EXPECT_EQ(s.readX(0), 0u);
    }
}

TEST(ArchState, FingerprintSensitive)
{
    ArchState a, b;
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    b.writeX(31, 1);
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(Instruction, ToStringMentionsMnemonic)
{
    Instruction inst;
    inst.op = Opcode::ADD;
    inst.rd = 3;
    inst.rs1 = 1;
    inst.rs2 = 2;
    EXPECT_NE(inst.toString().find("add"), std::string::npos);
}

TEST(InstInfo, ClassesAreConsistent)
{
    EXPECT_EQ(instInfo(Opcode::LD).cls, InstClass::Load);
    EXPECT_TRUE(instInfo(Opcode::LD).isLoad);
    EXPECT_EQ(instInfo(Opcode::SD).cls, InstClass::Store);
    EXPECT_TRUE(instInfo(Opcode::SD).isStore);
    EXPECT_TRUE(instInfo(Opcode::BEQ).isBranch);
    EXPECT_TRUE(instInfo(Opcode::JAL).isJump);
    EXPECT_EQ(instInfo(Opcode::FDIV).cls, InstClass::FpDiv);
    EXPECT_EQ(instInfo(Opcode::DIV).cls, InstClass::IntDiv);
    EXPECT_TRUE(instInfo(Opcode::FADD).writesFpReg);
    EXPECT_TRUE(instInfo(Opcode::FEQ).writesIntReg);
    EXPECT_EQ(instInfo(Opcode::LW).memSize, 4u);
}

} // namespace
