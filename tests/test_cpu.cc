/**
 * @file
 * CPU timing-model unit tests: the tournament branch predictor, the
 * out-of-order main-core approximation and the checker timing model.
 */

#include <gtest/gtest.h>

#include "cpu/branch_pred.hh"
#include "cpu/checker_timing.hh"
#include "cpu/main_core.hh"
#include "isa/builder.hh"
#include "mem/hierarchy.hh"
#include "sim/rng.hh"

namespace
{

using namespace paradox;
using namespace paradox::isa;
using cpu::TournamentPredictor;

Instruction
makeBranch()
{
    Instruction inst;
    inst.op = Opcode::BNE;
    inst.rs1 = 1;
    inst.rs2 = 0;
    return inst;
}

TEST(Predictor, LearnsAlwaysTakenLoop)
{
    TournamentPredictor pred;
    Instruction br = makeBranch();
    const Addr pc = 0x40;
    const Addr target = 0x10;
    int late_miss = 0;
    for (int i = 0; i < 200; ++i) {
        pred.predict(pc, br);
        bool miss = pred.update(pc, br, true, target);
        if (i > 20 && miss)
            ++late_miss;
    }
    EXPECT_EQ(late_miss, 0);
}

TEST(Predictor, LearnsAlternatingPatternViaLocalHistory)
{
    TournamentPredictor pred;
    Instruction br = makeBranch();
    const Addr pc = 0x80;
    const Addr target = 0x20;
    int late_miss = 0;
    for (int i = 0; i < 400; ++i) {
        bool taken = i % 2 == 0;
        pred.predict(pc, br);
        bool miss = pred.update(pc, br, taken, target);
        if (i > 100 && miss)
            ++late_miss;
    }
    // Local history easily captures a period-2 pattern.
    EXPECT_LT(late_miss, 10);
}

TEST(Predictor, BtbSuppliesTargets)
{
    TournamentPredictor pred;
    Instruction jmp;
    jmp.op = Opcode::JAL;
    jmp.rd = 0;
    const Addr pc = 0x100, target = 0x400;
    auto p1 = pred.predict(pc, jmp);
    EXPECT_FALSE(p1.targetKnown);
    pred.update(pc, jmp, true, target);
    auto p2 = pred.predict(pc, jmp);
    EXPECT_TRUE(p2.targetKnown);
    EXPECT_EQ(p2.target, target);
    EXPECT_FALSE(pred.update(pc, jmp, true, target));
}

TEST(Predictor, RasPredictsReturns)
{
    TournamentPredictor pred;
    Instruction call;
    call.op = Opcode::JAL;
    call.rd = 3;  // link register: a call
    Instruction ret;
    ret.op = Opcode::JALR;
    ret.rd = 0;
    ret.rs1 = 3;

    pred.predict(0x100, call);  // pushes 0x104
    pred.update(0x100, call, true, 0x800);
    auto p = pred.predict(0x900, ret);
    EXPECT_TRUE(p.targetKnown);
    EXPECT_EQ(p.target, 0x104u);
}

TEST(Predictor, CountsMispredicts)
{
    TournamentPredictor pred;
    Instruction br = makeBranch();
    pred.predict(0x10, br);
    pred.update(0x10, br, true, 0x99);  // cold: certainly mispredicted
    EXPECT_GT(pred.mispredicts(), 0u);
    EXPECT_GT(pred.lookups(), 0u);
}

struct CoreFixture
{
    ClockDomain clock{3.2e9};
    mem::HierarchyParams hparams;
    std::unique_ptr<mem::CacheHierarchy> hier;
    std::unique_ptr<cpu::MainCore> core;

    CoreFixture()
    {
        hier = std::make_unique<mem::CacheHierarchy>(hparams, clock);
        core = std::make_unique<cpu::MainCore>(cpu::MainCoreParams{},
                                               clock, *hier);
    }

    /** Feed a non-memory instruction through the core. */
    cpu::CommitTiming
    feedAlu(Addr pc, unsigned rd, unsigned rs1, unsigned rs2)
    {
        Instruction inst;
        inst.op = Opcode::ADD;
        inst.rd = std::uint8_t(rd);
        inst.rs1 = std::uint8_t(rs1);
        inst.rs2 = std::uint8_t(rs2);
        ExecResult r;
        r.valid = true;
        r.op = inst.op;
        r.cls = InstClass::IntAlu;
        r.pc = pc;
        r.nextPc = pc + instBytes;
        r.wroteInt = rd != 0;
        r.rd = inst.rd;
        return core->advance(makeCommitRecord(inst, r), mem::noPin, 0);
    }
};

TEST(MainCore, IndependentStreamApproachesFullWidth)
{
    CoreFixture f;
    // Warm the I-cache and pipeline.
    for (unsigned i = 0; i < 64; ++i)
        f.feedAlu((i % 8) * instBytes, 1 + i % 3, 0, 0);
    Tick start = f.core->now();
    const unsigned n = 3000;
    for (unsigned i = 0; i < n; ++i)
        f.feedAlu((i % 8) * instBytes, 1 + i % 3, 0, 0);
    double cycles_per_inst =
        double(f.core->now() - start) / double(f.clock.period()) / n;
    // 3-wide core: independent ALU ops should sustain near 3 IPC.
    EXPECT_LT(cycles_per_inst, 0.45);
}

TEST(MainCore, DependentChainSerializesToOnePerCycle)
{
    CoreFixture f;
    for (unsigned i = 0; i < 64; ++i)
        f.feedAlu((i % 8) * instBytes, 1, 1, 1);
    Tick start = f.core->now();
    const unsigned n = 3000;
    for (unsigned i = 0; i < n; ++i)
        f.feedAlu((i % 8) * instBytes, 1, 1, 1);  // x1 = x1 + x1
    double cycles_per_inst =
        double(f.core->now() - start) / double(f.clock.period()) / n;
    EXPECT_GT(cycles_per_inst, 0.9);
    EXPECT_LT(cycles_per_inst, 1.3);
}

TEST(MainCore, DivIsSlowerThanAdd)
{
    CoreFixture f;
    auto run_chain = [&f](Opcode op, InstClass cls) {
        for (unsigned i = 0; i < 32; ++i)
            f.feedAlu((i % 4) * instBytes, 1, 1, 1);
        Tick start = f.core->now();
        for (unsigned i = 0; i < 500; ++i) {
            Instruction inst;
            inst.op = op;
            inst.rd = 1;
            inst.rs1 = 1;
            inst.rs2 = 2;
            ExecResult r;
            r.valid = true;
            r.op = op;
            r.cls = cls;
            r.pc = (i % 4) * instBytes;
            r.nextPc = r.pc + instBytes;
            r.wroteInt = true;
            r.rd = 1;
            f.core->advance(makeCommitRecord(inst, r), mem::noPin, 0);
        }
        return f.core->now() - start;
    };
    CoreFixture g;
    Tick div_time = run_chain(Opcode::DIV, InstClass::IntDiv);
    Tick add_time = g.feedAlu(0, 1, 1, 1).commitAt;  // placeholder
    (void)add_time;
    CoreFixture h;
    Tick add_chain = 0;
    {
        for (unsigned i = 0; i < 32; ++i)
            h.feedAlu((i % 4) * instBytes, 1, 1, 1);
        Tick start = h.core->now();
        for (unsigned i = 0; i < 500; ++i)
            h.feedAlu((i % 4) * instBytes, 1, 1, 1);
        add_chain = h.core->now() - start;
    }
    EXPECT_GT(div_time, 5 * add_chain);
}

TEST(MainCore, BlockCommitAddsCycles)
{
    CoreFixture f;
    f.feedAlu(0, 1, 0, 0);
    Tick before = f.core->now();
    f.core->blockCommit(16);
    EXPECT_EQ(f.core->now(), before + f.clock.cyclesToTicks(16));
}

TEST(MainCore, StallUntilMovesTimeForward)
{
    CoreFixture f;
    f.feedAlu(0, 1, 0, 0);
    Tick target = f.core->now() + 1'000'000;
    f.core->stallUntil(target);
    EXPECT_EQ(f.core->now(), target);
    f.core->stallUntil(target - 500);  // never goes backwards
    EXPECT_EQ(f.core->now(), target);
}

TEST(MainCore, ResetPipelineRestartsAtGivenTick)
{
    CoreFixture f;
    for (int i = 0; i < 10; ++i)
        f.feedAlu(0, 1, 1, 1);
    Tick resume = f.core->now() + 5'000'000;
    f.core->resetPipeline(resume);
    EXPECT_EQ(f.core->now(), resume);
    auto t = f.feedAlu(0, 1, 0, 0);
    EXPECT_GT(t.commitAt, resume);
}

TEST(MainCore, LoadsPayCacheLatency)
{
    CoreFixture f;
    for (unsigned i = 0; i < 32; ++i)
        f.feedAlu((i % 4) * instBytes, 1, 0, 0);

    auto feed_load = [&f](Addr addr) {
        Instruction inst;
        inst.op = Opcode::LD;
        inst.rd = 2;
        inst.rs1 = 1;
        ExecResult r;
        r.valid = true;
        r.op = inst.op;
        r.cls = InstClass::Load;
        r.pc = 0;
        r.nextPc = instBytes;
        r.isLoad = true;
        r.memAddr = addr;
        r.memSize = 8;
        r.wroteInt = true;
        r.rd = 2;
        return f.core->advance(makeCommitRecord(inst, r), mem::noPin,
                               0);
    };
    auto miss = feed_load(0x200000);
    auto hit = feed_load(0x200000);
    EXPECT_FALSE(miss.l1dHit);
    EXPECT_TRUE(hit.l1dHit);
}

TEST(CheckerTiming, OneCyclePlusLatencies)
{
    cpu::CheckerTiming timing;
    Instruction add;
    add.op = Opcode::ADD;
    Instruction div;
    div.op = Opcode::DIV;

    // Prime the L0 so fetch is a hit.
    timing.instCycles(0, 0x0, add);
    Cycles add_cycles = timing.instCycles(0, 0x0, add);
    Cycles div_cycles = timing.instCycles(0, 0x0, div);
    EXPECT_EQ(add_cycles, timing.params().intAluLat);
    EXPECT_EQ(div_cycles, timing.params().intDivLat);
}

TEST(CheckerTiming, L0MissCostsMore)
{
    cpu::CheckerTiming timing;
    Instruction add;
    add.op = Opcode::ADD;
    Cycles cold = timing.instCycles(0, 0x10000, add);
    Cycles warm = timing.instCycles(0, 0x10000, add);
    EXPECT_GT(cold, warm);
}

TEST(CheckerTiming, PowerGatingFlushesL0)
{
    cpu::CheckerTiming timing;
    Instruction add;
    add.op = Opcode::ADD;
    timing.instCycles(3, 0x40, add);
    Cycles warm = timing.instCycles(3, 0x40, add);
    timing.powerGated(3);
    Cycles after_gate = timing.instCycles(3, 0x40, add);
    EXPECT_GT(after_gate, warm);
}

TEST(CheckerTiming, CheckersHavePrivateL0s)
{
    cpu::CheckerTiming timing;
    Instruction add;
    add.op = Opcode::ADD;
    timing.instCycles(0, 0x40, add);  // warms checker 0 + shared L1
    Cycles c0 = timing.instCycles(0, 0x40, add);
    Cycles c1 = timing.instCycles(1, 0x40, add);
    // Checker 1's L0 is cold (shared L1 hit only).
    EXPECT_GT(c1, c0);
}

} // namespace

namespace
{

using namespace paradox;
using namespace paradox::isa;

TEST(Predictor, GlobalHistoryLearnsCorrelatedBranches)
{
    // Branch B is taken exactly when branch A was taken: global
    // history captures the correlation that local history cannot.
    cpu::TournamentPredictor pred;
    Instruction br;
    br.op = Opcode::BNE;
    Rng rng(42);
    int late_miss_b = 0;
    for (int i = 0; i < 3000; ++i) {
        bool a_taken = rng.chance(0.5);  // random direction
        pred.predict(0x100, br);
        pred.update(0x100, br, a_taken, 0x40);
        pred.predict(0x200, br);
        bool miss = pred.update(0x200, br, a_taken, 0x80);
        if (i > 1500 && miss)
            ++late_miss_b;
    }
    // B is perfectly predictable from history; allow a small tail.
    EXPECT_LT(late_miss_b, 150);
}

TEST(Predictor, ResetForgetsEverything)
{
    cpu::TournamentPredictor pred;
    Instruction jmp;
    jmp.op = Opcode::JAL;
    pred.predict(0x10, jmp);
    pred.update(0x10, jmp, true, 0x500);
    pred.reset();
    auto p = pred.predict(0x10, jmp);
    EXPECT_FALSE(p.targetKnown);
    EXPECT_EQ(pred.lookups(), 1u);  // stats reset too
}

TEST(MainCoreExtra, MispredictsDelayFetch)
{
    // A stream of randomly-directed branches must run slower than
    // the same number of well-predicted (always-taken-loop) ones.
    auto run_branches = [](bool random_dir) {
        ClockDomain clock(3.2e9);
        mem::CacheHierarchy hier(mem::HierarchyParams{}, clock);
        cpu::MainCore core(cpu::MainCoreParams{}, clock, hier);
        Rng rng(7);
        Instruction br;
        br.op = Opcode::BNE;
        br.rs1 = 1;
        const unsigned n = 4000;
        for (unsigned i = 0; i < n; ++i) {
            ExecResult r;
            r.valid = true;
            r.op = br.op;
            r.cls = InstClass::Branch;
            r.pc = 0x40;
            r.isBranch = true;
            r.taken = random_dir ? rng.chance(0.5) : true;
            r.nextPc = r.taken ? 0x0 : 0x44;
            core.advance(isa::makeCommitRecord(br, r), mem::noPin, 0);
        }
        return core.now();
    };
    Tick predictable = run_branches(false);
    Tick random_time = run_branches(true);
    EXPECT_GT(random_time, predictable * 2);
}

} // namespace
