/**
 * @file
 * Static-analysis tests: CFG construction, the dataflow / footprint /
 * termination passes on tiny synthetic programs (including known-bad
 * programs that must produce specific diagnostics), the hardened
 * ProgramBuilder error aggregation, the JSON report shape, and --
 * the gate the subsystem exists for -- a clean lint of all 21
 * registered workloads.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/ai.hh"
#include "analysis/cfg.hh"
#include "analysis/costmodel.hh"
#include "analysis/interval.hh"
#include "analysis/linter.hh"
#include "analysis/regmodel.hh"
#include "isa/builder.hh"
#include "isa/executor.hh"
#include "mem/memory.hh"
#include "obs/trace_reader.hh"
#include "workloads/workload.hh"

namespace
{

using namespace paradox;
using namespace paradox::isa;
using namespace paradox::analysis;

constexpr XReg r0{0}, r1{1}, r2{2}, r3{3}, r4{4};
constexpr FReg d1{1}, d2{2};

/** Count diagnostics in @p report with machine code @p code. */
std::size_t
countCode(const Report &report, const std::string &code)
{
    return std::size_t(std::count_if(
        report.diags.begin(), report.diags.end(),
        [&](const Diagnostic &d) { return d.code == code; }));
}

/** First diagnostic with @p code, or nullptr. */
const Diagnostic *
findCode(const Report &report, const std::string &code)
{
    for (const auto &d : report.diags)
        if (d.code == code)
            return &d;
    return nullptr;
}

// ---------------------------------------------------------------------
// CFG construction
// ---------------------------------------------------------------------

TEST(Cfg, StraightLineIsOneBlock)
{
    ProgramBuilder b("straight");
    b.ldi(r1, 1);
    b.addi(r1, r1, 1);
    b.halt();
    const Cfg cfg = Cfg::build(b.build());
    ASSERT_EQ(cfg.blocks().size(), 1u);
    EXPECT_EQ(cfg.blocks()[0].first, 0u);
    EXPECT_EQ(cfg.blocks()[0].last, 2u);
    EXPECT_TRUE(cfg.blocks()[0].succs.empty());
}

TEST(Cfg, LoopSplitsBlocksAndRecoverEdges)
{
    ProgramBuilder b("loop");
    b.ldi(r1, 10);              // 0            block 0
    b.label("top");
    b.addi(r1, r1, -1);         // 1            block 1
    b.bne(r1, r0, "top");       // 2
    b.halt();                   // 3            block 2
    const Cfg cfg = Cfg::build(b.build());
    ASSERT_EQ(cfg.blocks().size(), 3u);

    // block 0 -> block 1; block 1 -> {1, 2}; block 2 exits.
    EXPECT_EQ(cfg.blocks()[0].succs, (std::vector<std::size_t>{1}));
    EXPECT_EQ(cfg.blocks()[1].succs, (std::vector<std::size_t>{1, 2}));
    EXPECT_TRUE(cfg.blocks()[2].succs.empty());
    EXPECT_EQ(cfg.blockOf(2), 1u);
    // Predecessors mirror the successors.
    EXPECT_EQ(cfg.blocks()[1].preds.size(), 2u);
}

TEST(Cfg, LabelsSplitBlocksForDiagnostics)
{
    ProgramBuilder b("labels");
    b.ldi(r1, 1);
    b.label("mid");             // label alone splits the block
    b.addi(r1, r1, 1);
    b.halt();
    const Cfg cfg = Cfg::build(b.build());
    ASSERT_EQ(cfg.blocks().size(), 2u);
    EXPECT_EQ(cfg.blocks()[0].succs, (std::vector<std::size_t>{1}));
}

TEST(Cfg, FallthroughOffEndIsAnError)
{
    ProgramBuilder b("felloff");
    b.ldi(r1, 1);
    b.addi(r1, r1, 1);          // last instruction is not a halt
    std::vector<Diagnostic> diags;
    Cfg::build(b.build(), &diags);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].code, "fall-off-end");
    EXPECT_EQ(diags[0].severity, Severity::Error);
}

// ---------------------------------------------------------------------
// Reachability
// ---------------------------------------------------------------------

TEST(Reachability, UnreachableBlockIsReported)
{
    ProgramBuilder b("unreach");
    b.ldi(r1, 1);
    b.j("end");
    b.label("orphan");
    b.addi(r1, r1, 1);          // skipped by the jump, no way in
    b.label("end");
    b.halt();
    const Report report = Linter().lint(b.build());
    const Diagnostic *d = findCode(report, "unreachable-block");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Warning);
    EXPECT_EQ(d->context, "orphan");
}

TEST(Reachability, MissingHaltIsAnError)
{
    ProgramBuilder b("nohalt");
    b.label("spin");
    b.j("spin");                // spins forever, halt unreachable
    b.halt();
    const Report report = Linter().lint(b.build());
    EXPECT_NE(findCode(report, "no-halt"), nullptr);
    EXPECT_NE(findCode(report, "unreachable-block"), nullptr);
    EXPECT_NE(findCode(report, "infinite-loop"), nullptr);
    EXPECT_FALSE(report.clean());
}

// ---------------------------------------------------------------------
// Register dataflow
// ---------------------------------------------------------------------

TEST(Dataflow, DefBeforeUseIsAnError)
{
    ProgramBuilder b("defuse");
    b.add(r1, r2, r3);          // r2, r3 never written
    b.halt();
    const Report report = Linter().lint(b.build());
    EXPECT_EQ(countCode(report, "def-before-use"), 2u);
    const Diagnostic *d = findCode(report, "def-before-use");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Error);
    EXPECT_EQ(d->index, 0u);
}

TEST(Dataflow, FpRegistersAreTrackedSeparately)
{
    ProgramBuilder b("fp");
    b.ldi(r1, 1);
    b.fcvtDL(d1, r1);           // f1 defined
    b.fadd(d2, d1, d1);         // fine
    b.fsub(d1, d2, FReg{5});    // f5 never written
    b.halt();
    const Report report = Linter().lint(b.build());
    EXPECT_EQ(countCode(report, "def-before-use"), 1u);
    EXPECT_NE(findCode(report, "def-before-use")->message.find("f5"),
              std::string::npos);
}

TEST(Dataflow, ReadOfX0IsAlwaysFine)
{
    ProgramBuilder b("zero");
    b.add(r1, r0, r0);
    b.ldi(r2, 0x100);
    b.sd(r1, r2, 0);
    b.halt();
    const Report report = Linter().lint(b.build());
    EXPECT_EQ(countCode(report, "def-before-use"), 0u);
}

TEST(Dataflow, MaybeUninitOnOnePathIsAWarning)
{
    ProgramBuilder b("diamond");
    b.ldi(r1, 1);
    b.beq(r1, r0, "skip");
    b.ldi(r2, 7);               // r2 defined on fallthrough only
    b.label("skip");
    b.add(r3, r2, r1);          // r2 maybe-uninitialized here
    b.ldi(r4, 0x100);
    b.sd(r3, r4, 0);
    b.halt();
    const Report report = Linter().lint(b.build());
    EXPECT_EQ(countCode(report, "def-before-use"), 0u);
    const Diagnostic *d = findCode(report, "maybe-uninit");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Warning);
    EXPECT_NE(d->message.find("x2"), std::string::npos);
}

TEST(Dataflow, DeadStoreIsAWarning)
{
    ProgramBuilder b("dead");
    b.ldi(r1, 42);              // overwritten before any read
    b.ldi(r1, 43);
    b.ldi(r2, 0x100);
    b.sd(r1, r2, 0);
    b.halt();
    const Report report = Linter().lint(b.build());
    ASSERT_EQ(countCode(report, "dead-store"), 1u);
    EXPECT_EQ(findCode(report, "dead-store")->index, 0u);
}

TEST(Dataflow, LoopCarriedValuesAreNotDeadStores)
{
    ProgramBuilder b("induction");
    b.ldi(r1, 10);
    b.ldi(r2, 0);
    b.label("top");
    b.add(r2, r2, r1);          // read on the next iteration
    b.addi(r1, r1, -1);
    b.bne(r1, r0, "top");
    b.ldi(r3, 0x100);
    b.sd(r2, r3, 0);
    b.halt();
    const Report report = Linter().lint(b.build());
    EXPECT_EQ(countCode(report, "dead-store"), 0u);
    EXPECT_TRUE(report.clean(true));
}

// ---------------------------------------------------------------------
// Memory footprint
// ---------------------------------------------------------------------

TEST(Footprint, OutOfFootprintStoreIsAnError)
{
    ProgramBuilder b("oob");
    b.footprint(0x1000, 64, "buf");
    b.ldi(r1, 0x1000);
    b.ldi(r2, 5);
    b.sd(r2, r1, 64);           // one past the end
    b.halt();
    const Report report = Linter().lint(b.build());
    const Diagnostic *d = findCode(report, "out-of-footprint-store");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Error);
    EXPECT_NE(d->message.find("0x1040"), std::string::npos);
}

TEST(Footprint, InBoundsAccessesAreClean)
{
    ProgramBuilder b("inb");
    b.footprint(0x1000, 64, "buf");
    b.ldi(r1, 0x1000);
    b.ldi(r2, 5);
    b.sd(r2, r1, 56);           // last valid doubleword
    b.ld(r3, r1, 0);
    b.sd(r3, r1, 8);
    b.halt();
    const Report report = Linter().lint(b.build());
    EXPECT_EQ(countCode(report, "out-of-footprint-store"), 0u);
    EXPECT_EQ(countCode(report, "out-of-footprint-load"), 0u);
}

TEST(Footprint, DataImageDerivesRegions)
{
    ProgramBuilder b("derived");
    b.data64(0x2000, 1);        // contiguous cells merge into
    b.data64(0x2008, 2);        // one [0x2000, 0x2010) region
    b.ldi(r1, 0x2000);
    b.ld(r2, r1, 8);
    b.ld(r3, r1, 16);           // past the derived region
    b.add(r2, r2, r3);
    b.ldi(r4, 0x2000);
    b.sd(r2, r4, 0);
    b.halt();
    const Report report = Linter().lint(b.build());
    EXPECT_EQ(countCode(report, "out-of-footprint-load"), 1u);
    EXPECT_EQ(findCode(report, "out-of-footprint-load")->index, 2u);
}

TEST(Footprint, MisalignedConstantAccessIsAWarning)
{
    ProgramBuilder b("mis");
    b.footprint(0x1000, 64, "buf");
    b.ldi(r1, 0x1000);
    b.ld(r2, r1, 4);            // 8-byte load at +4
    b.ldi(r3, 0x1000);
    b.sd(r2, r3, 0);
    b.halt();
    const Report report = Linter().lint(b.build());
    ASSERT_EQ(countCode(report, "misaligned-access"), 1u);
    EXPECT_EQ(findCode(report, "misaligned-access")->severity,
              Severity::Warning);
}

TEST(Footprint, VaryingAddressesAreNotChecked)
{
    ProgramBuilder b("vary");
    b.footprint(0x1000, 64, "buf");
    b.ldi(r1, 0x1000);
    b.ldi(r2, 8);
    b.label("top");
    b.sd(r0, r1, 0);
    b.addi(r1, r1, 8);          // r1 varies: joins to non-constant
    b.addi(r2, r2, -1);
    b.bne(r2, r0, "top");
    b.halt();
    const Report report = Linter().lint(b.build());
    EXPECT_EQ(countCode(report, "out-of-footprint-store"), 0u);
}

// ---------------------------------------------------------------------
// Termination heuristics
// ---------------------------------------------------------------------

TEST(Termination, LoopWithNoExitIsAnError)
{
    ProgramBuilder b("infinite");
    b.ldi(r1, 1);
    b.label("spin");
    b.addi(r1, r1, 1);
    b.j("spin");
    b.halt();
    const Report report = Linter().lint(b.build());
    const Diagnostic *d = findCode(report, "infinite-loop");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Error);
}

TEST(Termination, InvariantExitConditionIsAWarning)
{
    ProgramBuilder b("noind");
    b.ldi(r1, 10);
    b.ldi(r2, 0);
    b.label("top");
    b.addi(r2, r2, 1);          // updates r2 ...
    b.bne(r1, r0, "top");       // ... but exits on r1, never written
    b.halt();
    const Report report = Linter().lint(b.build());
    const Diagnostic *d = findCode(report, "likely-infinite-loop");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Warning);
    EXPECT_NE(d->message.find("x1"), std::string::npos);
}

TEST(Termination, CountedLoopIsClean)
{
    ProgramBuilder b("counted");
    b.ldi(r1, 10);
    b.label("top");
    b.addi(r1, r1, -1);
    b.bne(r1, r0, "top");
    b.halt();
    const Report report = Linter().lint(b.build());
    EXPECT_EQ(countCode(report, "infinite-loop"), 0u);
    EXPECT_EQ(countCode(report, "likely-infinite-loop"), 0u);
}

TEST(Termination, NestedCountedLoopsAreClean)
{
    ProgramBuilder b("nested");
    b.ldi(r1, 4);               // outer count
    b.ldi(r3, 0);
    b.label("outer");
    b.ldi(r2, 4);               // inner count
    b.label("inner");
    b.addi(r3, r3, 1);
    b.addi(r2, r2, -1);
    b.bne(r2, r0, "inner");
    b.addi(r1, r1, -1);
    b.bne(r1, r0, "outer");
    b.ldi(r4, 0x100);
    b.sd(r3, r4, 0);
    b.halt();
    const Report report = Linter().lint(b.build());
    EXPECT_EQ(countCode(report, "infinite-loop"), 0u);
    EXPECT_EQ(countCode(report, "likely-infinite-loop"), 0u);
    EXPECT_TRUE(report.clean(true)) << report.toText();
}

// ---------------------------------------------------------------------
// Builder hardening
// ---------------------------------------------------------------------

TEST(Builder, AllUndefinedLabelsReportedAtOnce)
{
    ProgramBuilder b("bad");
    b.ldi(r1, 1);
    b.bne(r1, r0, "nowhere");       // instruction 1
    b.beq(r1, r0, "also_nowhere");  // instruction 2
    b.halt();
    try {
        b.build();
        FAIL() << "build() should have thrown";
    } catch (const BuildError &err) {
        ASSERT_EQ(err.messages().size(), 2u);
        EXPECT_NE(err.messages()[0].find("'nowhere'"),
                  std::string::npos);
        EXPECT_NE(err.messages()[0].find("instruction 1"),
                  std::string::npos);
        EXPECT_NE(err.messages()[1].find("'also_nowhere'"),
                  std::string::npos);
        EXPECT_NE(std::string(err.what()).find("2 error(s)"),
                  std::string::npos);
    }
}

TEST(Builder, DuplicateLabelsCollectedWithIndices)
{
    ProgramBuilder b("dup");
    b.label("here");
    b.ldi(r1, 1);
    b.label("here");            // duplicate at instruction 1
    b.halt();
    try {
        b.build();
        FAIL() << "build() should have thrown";
    } catch (const BuildError &err) {
        ASSERT_EQ(err.messages().size(), 1u);
        EXPECT_NE(err.messages()[0].find("duplicate label 'here'"),
                  std::string::npos);
        EXPECT_NE(err.messages()[0].find("redefined at instruction 1"),
                  std::string::npos);
    }
}

TEST(Builder, FootprintAndLabelsReachTheProgram)
{
    ProgramBuilder b("meta");
    b.footprint(0x4000, 128, "scratch");
    b.ldi(r1, 1);
    b.label("body");
    b.addi(r1, r1, 1);
    b.halt();
    const Program prog = b.build();
    ASSERT_EQ(prog.regions().size(), 1u);
    EXPECT_EQ(prog.regions()[0].base, 0x4000u);
    EXPECT_EQ(prog.regions()[0].size, 128u);
    EXPECT_EQ(prog.labels().at("body"), 1u);
    EXPECT_EQ(prog.labelAt(2), "body+1");
}

// ---------------------------------------------------------------------
// Report formats
// ---------------------------------------------------------------------

TEST(Report, JsonCarriesSchemaAndDiagnostics)
{
    ProgramBuilder b("jsonbad");
    b.add(r1, r2, r2);          // def-before-use of r2
    b.halt();
    const Report report = Linter().lint(b.build());
    const std::string json = report.toJson();
    EXPECT_NE(json.find("\"schema\":\"paradox-lint/1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"program\":\"jsonbad\""), std::string::npos);
    EXPECT_NE(json.find("\"code\":\"def-before-use\""),
              std::string::npos);
    EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
    EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
}

TEST(Report, TextRendersLocationAndDisassembly)
{
    ProgramBuilder b("textbad");
    b.ldi(r1, 1);
    b.label("body");
    b.add(r2, r3, r1);          // r3 undefined, inside 'body'
    b.ldi(r4, 0x100);
    b.sd(r2, r4, 0);
    b.halt();
    const Report report = Linter().lint(b.build());
    const std::string text = report.toText();
    EXPECT_NE(text.find("(body)"), std::string::npos);
    EXPECT_NE(text.find("add x2"), std::string::npos);
    EXPECT_NE(text.find("def-before-use"), std::string::npos);
}

TEST(Report, EmptyProgramIsAnError)
{
    const Report report = Linter().lint(Program("empty", {}, {}));
    EXPECT_NE(findCode(report, "empty-program"), nullptr);
    EXPECT_FALSE(report.clean());
}

// ---------------------------------------------------------------------
// Register use/def model sanity
// ---------------------------------------------------------------------

TEST(RegModel, StoresUseButDoNotDefine)
{
    Instruction st;
    st.op = Opcode::SD;
    st.rs1 = 1;
    st.rs2 = 2;
    const UseDef ud = useDef(st);
    EXPECT_EQ(ud.def, -1);
    EXPECT_EQ(ud.nUses, 2u);
}

TEST(RegModel, FmaddReadsItsDestination)
{
    Instruction fma;
    fma.op = Opcode::FMADD;
    fma.rd = 3;
    fma.rs1 = 1;
    fma.rs2 = 2;
    const UseDef ud = useDef(fma);
    EXPECT_EQ(ud.def, int(fslot(3)));
    EXPECT_EQ(ud.useMask(),
              slotBit(fslot(1)) | slotBit(fslot(2)) |
                  slotBit(fslot(3)));
}

TEST(RegModel, WritesToX0AreNotDefs)
{
    Instruction add;
    add.op = Opcode::ADD;
    add.rd = 0;
    add.rs1 = 1;
    add.rs2 = 2;
    EXPECT_EQ(useDef(add).def, -1);
}

// ---------------------------------------------------------------------
// Interval domain
// ---------------------------------------------------------------------

TEST(Interval, LatticeBasics)
{
    const Interval a{0, 10}, b{5, 20};
    EXPECT_EQ(join(a, b), (Interval{0, 20}));
    EXPECT_EQ(meet(a, b), (Interval{5, 10}));
    EXPECT_TRUE(meet(Interval{0, 4}, Interval{5, 9}).isBottom());
    EXPECT_EQ(join(Interval::bottom(), a), a);
    EXPECT_TRUE(meet(Interval::bottom(), a).isBottom());
}

TEST(Interval, WideningGoesToTheRails)
{
    // A still-moving upper bound is widened to max64; a stable lower
    // bound stays put.
    const Interval w = widen(Interval{0, 10}, Interval{0, 11});
    EXPECT_EQ(w.lo, 0);
    EXPECT_EQ(w.hi, Interval::max64);
    // Nothing moved: widening is the identity.
    EXPECT_EQ(widen(Interval{3, 7}, Interval{3, 7}), (Interval{3, 7}));
}

TEST(Interval, ArithmeticSaturatesToTopOnPossibleWrap)
{
    // max64 + 1 can wrap: the result must be top, not a lie.
    EXPECT_TRUE(intervalAdd(Interval{Interval::max64, Interval::max64},
                            Interval{1, 1})
                    .isTop());
    EXPECT_EQ(intervalAdd(Interval{1, 2}, Interval{10, 20}),
              (Interval{11, 22}));
    EXPECT_EQ(intervalMul(Interval{2, 3}, Interval{4, 5}),
              (Interval{8, 15}));
}

TEST(Interval, RefineCmpNarrowsBothSides)
{
    Interval a{0, 100}, b{50, 50};
    refineCmp(Cmp::LtS, a, b);      // assume a < 50
    EXPECT_EQ(a, (Interval{0, 49}));
    Interval c{0, 100}, d{200, 300};
    refineCmp(Cmp::GeS, c, d);      // assume c >= d: infeasible
    EXPECT_TRUE(c.isBottom() || d.isBottom());
}

// ---------------------------------------------------------------------
// Range-based diagnostics (Options::ranges)
// ---------------------------------------------------------------------

/** Lint with the interval passes enabled. */
Report
lintRanges(ProgramBuilder &b)
{
    Options opts;
    opts.ranges = true;
    return Linter(opts).lint(b.build());
}

TEST(Ranges, InductionStoreStraddlingRegionEdgeIsPossibleOob)
{
    ProgramBuilder b("straddle");
    b.footprint(0x1000, 64, "buf");     // 8 doublewords
    b.ldi(r1, 0x1000);
    b.ldi(r2, 10);                      // but 10 iterations
    b.label("top");
    b.sd(r0, r1, 0);
    b.addi(r1, r1, 8);
    b.addi(r2, r2, -1);
    b.bne(r2, r0, "top");
    b.halt();
    const Report report = lintRanges(b);
    const Diagnostic *d =
        findCode(report, "possible-out-of-footprint-store");
    ASSERT_NE(d, nullptr) << report.toText();
    EXPECT_EQ(d->severity, Severity::Warning);
    EXPECT_EQ(d->pass, "ranges");
}

TEST(Ranges, InductionLoadStraddlingRegionEdgeIsPossibleOob)
{
    ProgramBuilder b("lstraddle");
    b.footprint(0x1000, 64, "buf");
    b.ldi(r1, 0x1000);
    b.ldi(r2, 10);
    b.ldi(r3, 0);
    b.label("top");
    b.ld(r4, r1, 0);
    b.add(r3, r3, r4);
    b.addi(r1, r1, 8);
    b.addi(r2, r2, -1);
    b.bne(r2, r0, "top");
    b.ldi(r4, 0x1000);
    b.sd(r3, r4, 0);
    b.halt();
    const Report report = lintRanges(b);
    EXPECT_NE(findCode(report, "possible-out-of-footprint-load"),
              nullptr)
        << report.toText();
}

TEST(Ranges, InBoundsInductionLoopIsClean)
{
    ProgramBuilder b("fits");
    b.footprint(0x1000, 64, "buf");
    b.ldi(r1, 0x1000);
    b.ldi(r2, 8);                       // exactly fills the region
    b.label("top");
    b.sd(r0, r1, 0);
    b.addi(r1, r1, 8);
    b.addi(r2, r2, -1);
    b.bne(r2, r0, "top");
    b.halt();
    const Report report = lintRanges(b);
    EXPECT_TRUE(report.clean(/*warnAsError=*/true))
        << report.toText();
}

TEST(Ranges, InductionStoreEntirelyOutsideIsDefiniteError)
{
    ProgramBuilder b("definite");
    b.footprint(0x1000, 64, "buf");
    b.ldi(r1, 0x2000);                  // never inside any region
    b.ldi(r2, 4);
    b.label("top");
    b.sd(r0, r1, 0);
    b.addi(r1, r1, 8);
    b.addi(r2, r2, -1);
    b.bne(r2, r0, "top");
    b.halt();
    const Report report = lintRanges(b);
    // Definite violations reuse the constant pass's code (and Error
    // severity) even though the address here is a varying interval.
    const Diagnostic *d = findCode(report, "out-of-footprint-store");
    ASSERT_NE(d, nullptr) << report.toText();
    EXPECT_EQ(d->severity, Severity::Error);
}

TEST(Ranges, ProvablyConstantBranchIsDead)
{
    ProgramBuilder b("deadbr");
    b.ldi(r1, 5);
    b.beq(r1, r0, "skip");              // 5 == 0: never
    b.addi(r1, r1, 1);
    b.label("skip");
    b.ldi(r2, 0x100);
    b.sd(r1, r2, 0);
    b.halt();
    const Report report = lintRanges(b);
    const Diagnostic *d = findCode(report, "dead-branch");
    ASSERT_NE(d, nullptr) << report.toText();
    EXPECT_NE(d->message.find("never"), std::string::npos);
}

TEST(Ranges, DivisorRangeContainingZeroWarns)
{
    ProgramBuilder b("div0");
    b.ldi(r1, 100);
    b.ldi(r2, 4);
    b.ldi(r3, 0);
    b.label("top");
    b.addi(r2, r2, -1);
    b.div(r4, r1, r2);                  // r2 hits 0 on the last trip
    b.add(r3, r3, r4);
    b.bne(r2, r0, "top");
    b.ldi(r4, 0x100);
    b.sd(r3, r4, 0);
    b.halt();
    const Report report = lintRanges(b);
    EXPECT_NE(findCode(report, "possible-div-by-zero"), nullptr)
        << report.toText();
}

TEST(Ranges, ShiftAmountRangePastSixtyThreeWarns)
{
    ProgramBuilder b("bigshift");
    b.ldi(r1, 1);
    b.ldi(r2, 60);
    b.ldi(r3, 10);
    b.ldi(r4, 0);
    b.label("top");
    b.sll(r4, r1, r2);                  // r2 grows to 69
    b.addi(r2, r2, 1);
    b.addi(r3, r3, -1);
    b.bne(r3, r0, "top");
    b.ldi(r2, 0x100);
    b.sd(r4, r2, 0);
    b.halt();
    const Report report = lintRanges(b);
    EXPECT_NE(findCode(report, "shift-range"), nullptr)
        << report.toText();
}

TEST(Ranges, ConstantOobIsReportedExactlyOnce)
{
    // The constant footprint pass and the range pass both see this
    // store; identical (pass, code, pc) must collapse to one report.
    ProgramBuilder b("dedup");
    b.footprint(0x1000, 64, "buf");
    b.ldi(r1, 0x1000);
    b.ldi(r2, 5);
    b.sd(r2, r1, 64);
    b.halt();
    const Report report = lintRanges(b);
    EXPECT_EQ(countCode(report, "out-of-footprint-store"), 1u)
        << report.toText();
}

// ---------------------------------------------------------------------
// Trip-count inference
// ---------------------------------------------------------------------

/** Run the interval engine alone over a built program. */
IntervalAnalysis
runAi(ProgramBuilder &b, Cfg &cfg)
{
    const Program prog = b.build();
    cfg = Cfg::build(prog);
    return IntervalAnalysis::run(prog, cfg, cfg.reachableBlocks());
}

TEST(Trips, CountedDownLoopGetsAnExactBound)
{
    ProgramBuilder b("count10");
    b.ldi(r1, 10);
    b.label("top");
    b.addi(r1, r1, -1);
    b.bne(r1, r0, "top");
    b.halt();
    Cfg cfg;
    const IntervalAnalysis ai = runAi(b, cfg);
    EXPECT_TRUE(ai.converged());
    EXPECT_TRUE(ai.reducible());
    ASSERT_EQ(ai.loops().size(), 1u);
    EXPECT_EQ(ai.loops()[0].tripBound, 10u);
}

TEST(Trips, NestedLoopsMultiplyInTripProduct)
{
    ProgramBuilder b("nested");
    b.ldi(r1, 4);
    b.label("outer");
    b.ldi(r2, 5);
    b.label("inner");
    b.addi(r2, r2, -1);
    b.bne(r2, r0, "inner");
    b.addi(r1, r1, -1);
    b.bne(r1, r0, "outer");
    b.halt();
    Cfg cfg;
    const IntervalAnalysis ai = runAi(b, cfg);
    ASSERT_EQ(ai.loops().size(), 2u);
    for (const Loop &l : ai.loops())
        EXPECT_TRUE(l.bounded());
    // The inner body block runs at most 4 * 5 = 20 times.
    std::size_t innerBody = std::size_t(-1);
    for (const Loop &l : ai.loops())
        if (l.tripBound == 5u)
            innerBody = l.header;
    ASSERT_NE(innerBody, std::size_t(-1));
    EXPECT_EQ(ai.tripProduct(innerBody), 20u);
}

TEST(Trips, DataDependentLoopStaysUnbounded)
{
    ProgramBuilder b("datadep");
    b.data64(0x1000, 3);
    b.ldi(r1, 0x1000);
    b.ld(r1, r1, 0);                    // bound comes from memory
    b.label("top");
    b.addi(r1, r1, -1);
    b.bne(r1, r0, "top");
    b.halt();
    Cfg cfg;
    const IntervalAnalysis ai = runAi(b, cfg);
    ASSERT_EQ(ai.loops().size(), 1u);
    EXPECT_FALSE(ai.loops()[0].bounded());
}

// ---------------------------------------------------------------------
// Fixpoint convergence on randomized CFGs
// ---------------------------------------------------------------------

TEST(Fixpoint, RandomizedCfgsAlwaysConverge)
{
    // Arbitrary branch topologies -- including irreducible loops and
    // unreachable tails -- must reach a fixpoint within the sweep
    // budget.  Deterministic LCG so a failure is reproducible by seed.
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        std::uint64_t s = seed * 0x9e3779b97f4a7c15ULL + 1;
        auto rnd = [&](std::uint64_t m) {
            s = s * 6364136223846793005ULL + 1442695040888963407ULL;
            return (s >> 33) % m;
        };
        const std::size_t nb = 3 + rnd(9);
        ProgramBuilder b("rand" + std::to_string(seed));
        for (unsigned r = 1; r <= 6; ++r)
            b.ldi(XReg{std::uint8_t(r)}, std::int64_t(rnd(1000)));
        auto reg = [&] { return XReg{std::uint8_t(1 + rnd(6))}; };
        for (std::size_t i = 0; i < nb; ++i) {
            b.label("b" + std::to_string(i));
            const std::size_t ops = 1 + rnd(3);
            for (std::size_t k = 0; k < ops; ++k) {
                switch (rnd(5)) {
                case 0: b.addi(reg(), reg(),
                               std::int64_t(rnd(64)) - 32); break;
                case 1: b.add(reg(), reg(), reg()); break;
                case 2: b.mul(reg(), reg(), reg()); break;
                case 3: b.srli(reg(), reg(), unsigned(rnd(63))); break;
                default: b.xor_(reg(), reg(), reg()); break;
                }
            }
            if (i + 1 == nb) {
                b.halt();
            } else {
                const std::string t = "b" + std::to_string(rnd(nb));
                if (rnd(3) == 0)
                    b.j(t);
                else
                    b.bne(reg(), r0, t);
            }
        }
        Cfg cfg;
        const IntervalAnalysis ai = runAi(b, cfg);
        const std::size_t blocks = cfg.blocks().size();
        EXPECT_TRUE(ai.converged()) << "seed " << seed;
        EXPECT_LE(ai.sweeps(), 100 + 10 * blocks) << "seed " << seed;
    }
}

// ---------------------------------------------------------------------
// Overlapping-region detection in the builder
// ---------------------------------------------------------------------

TEST(Builder, OverlappingRegionsProduceABuildWarning)
{
    ProgramBuilder b("ovl");
    b.footprint(0x1000, 64, "a");
    b.footprint(0x1020, 64, "b");       // overlaps the tail of 'a'
    b.ldi(r1, 1);
    b.halt();
    const Program prog = b.build();
    ASSERT_EQ(prog.buildWarnings().size(), 1u);
    EXPECT_NE(prog.buildWarnings()[0].find("overlap"),
              std::string::npos);
    // The linter surfaces it as a diagnostic.
    const Report report = Linter().lint(prog);
    const Diagnostic *d = findCode(report, "overlapping-regions");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Warning);
}

TEST(Builder, AdjacentRegionsDoNotWarn)
{
    ProgramBuilder b("adj");
    b.footprint(0x1000, 64, "a");
    b.footprint(0x1040, 64, "b");       // touches, does not overlap
    b.ldi(r1, 1);
    b.halt();
    EXPECT_TRUE(b.build().buildWarnings().empty());
}

TEST(Builder, AllOverlapPairsAreAggregated)
{
    ProgramBuilder b("multi");
    b.footprint(0x1000, 0x100, "big");
    b.footprint(0x1010, 8, "in1");
    b.footprint(0x1020, 8, "in2");
    b.ldi(r1, 1);
    b.halt();
    EXPECT_EQ(b.build().buildWarnings().size(), 2u);
}

// ---------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------

TEST(CostModel, JsonLinesAreFlatAndParsable)
{
    const auto w = paradox::workloads::build("stream", 1);
    CostParams params;
    params.extraRegions.push_back(
        {paradox::workloads::resultAddr, 8, "result"});
    const WorkloadCost c = CostModel::compute(w.program, params);
    const std::string line = costJsonLine(c, 1);
    std::string v;
    ASSERT_TRUE(obs::jsonField(line, "program", v));
    EXPECT_EQ(v, "stream");
    ASSERT_TRUE(obs::jsonField(line, "min_dyn_insts", v));
    EXPECT_EQ(std::stoull(v), c.minDynInsts);
    ASSERT_TRUE(obs::jsonField(costJsonHeader(), "schema", v));
    EXPECT_EQ(v, "paradox-cost/1");
}

// ---------------------------------------------------------------------
// The gates: every registered workload must lint clean (with the
// interval passes), and the cost model's instruction bounds must
// contain real executions.
// ---------------------------------------------------------------------

TEST(Workloads, AllWorkloadsLintCleanUnderWerror)
{
    Options opts;
    opts.extraRegions.push_back(
        {paradox::workloads::resultAddr, 8, "result"});
    opts.ranges = true;
    const Linter linter(opts);
    for (const auto &name : paradox::workloads::allNames()) {
        const auto w = paradox::workloads::build(name, 1);
        const Report report = linter.lint(w.program);
        EXPECT_TRUE(report.clean(/*warnAsError=*/true))
            << report.toText();
    }
}

TEST(Workloads, CostBoundsContainFunctionalExecution)
{
    // The acceptance property behind `trace_report --cost`, without
    // the trace round trip: actually execute the program and count
    // retired instructions against the static bounds.
    CostParams params;
    params.extraRegions.push_back(
        {paradox::workloads::resultAddr, 8, "result"});
    for (const std::string name : {"stream", "mcf", "tonto"}) {
        const auto w = paradox::workloads::build(name, 1);
        const WorkloadCost c = CostModel::compute(w.program, params);
        ASSERT_TRUE(c.bounded) << name;

        mem::SimpleMemory memory;
        isa::ArchState state;
        isa::loadProgram(w.program, state, memory);
        std::uint64_t executed = 0;
        for (; executed <= c.maxDynInsts + 1; ++executed) {
            const isa::ExecResult r =
                isa::step(w.program, state, memory);
            ASSERT_TRUE(r.valid) << name;
            if (r.halted) {
                ++executed;
                break;
            }
        }
        EXPECT_GE(executed, c.minDynInsts) << name;
        EXPECT_LE(executed, c.maxDynInsts) << name;
    }
}

} // namespace
