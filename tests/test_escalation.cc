/**
 * @file
 * Fault-escalation ladder tests: persistence classes of the fault
 * injectors, per-checker health tracking and quarantine, retry
 * re-verification, panic voltage resets, the forward-progress
 * watchdog, the DUE machine-check path, and the lifted checker
 * timeout factor.
 */

#include <gtest/gtest.h>

#include "core/scheduler.hh"
#include "core/system.hh"
#include "isa/builder.hh"
#include "workloads/workload.hh"

namespace
{

using namespace paradox;
using namespace paradox::isa;

constexpr XReg r1{1}, r2{2}, r3{3};

isa::Instruction
makeInst(isa::Opcode op)
{
    isa::Instruction inst;
    inst.op = op;
    inst.rd = 1;
    return inst;
}

// ---------------------------------------------------------------- //
// Injector persistence classes.                                    //
// ---------------------------------------------------------------- //

TEST(Persistence, NamesRoundTrip)
{
    using faults::Persistence;
    for (Persistence p : {Persistence::Transient,
                          Persistence::Intermittent,
                          Persistence::Permanent}) {
        Persistence out;
        ASSERT_TRUE(
            faults::parsePersistence(faults::persistenceName(p), out));
        EXPECT_EQ(out, p);
    }
    faults::Persistence out;
    EXPECT_FALSE(faults::parsePersistence("sticky", out));
}

TEST(Persistence, PermanentLatchesAStuckSite)
{
    faults::FaultConfig fc;
    fc.kind = faults::FaultKind::RegisterBitFlip;
    fc.rate = 0.01;
    fc.persistence = faults::Persistence::Permanent;
    fc.seed = 5;
    faults::FaultInjector injector(fc);
    auto inst = makeInst(isa::Opcode::ADD);

    // Run until the first firing latches the fault.
    faults::FaultHit first;
    for (int i = 0; i < 100000 && !first.fires; ++i)
        first = injector.onInstruction(inst, true);
    ASSERT_TRUE(first.fires);
    EXPECT_TRUE(injector.latched());

    // From now on every event fires, always at the same location.
    for (int i = 0; i < 1000; ++i) {
        faults::FaultHit hit = injector.onInstruction(inst, true);
        ASSERT_TRUE(hit.fires);
        EXPECT_EQ(hit.bit, first.bit);
        EXPECT_EQ(hit.regIndex, first.regIndex);
    }
}

TEST(Persistence, IntermittentBurstsShareOneSite)
{
    faults::FaultConfig fc;
    fc.kind = faults::FaultKind::RegisterBitFlip;
    fc.rate = 0.005;
    fc.persistence = faults::Persistence::Intermittent;
    fc.burstLength = 12;
    fc.burstBias = 1.0;  // deterministic inside the burst
    fc.seed = 9;
    faults::FaultInjector injector(fc);
    auto inst = makeInst(isa::Opcode::ADD);

    faults::FaultHit first;
    for (int i = 0; i < 100000 && !first.fires; ++i)
        first = injector.onInstruction(inst, true);
    ASSERT_TRUE(first.fires);
    EXPECT_FALSE(injector.latched());

    // The next burstLength events all fire at the burst's site.
    for (unsigned i = 0; i < fc.burstLength; ++i) {
        faults::FaultHit hit = injector.onInstruction(inst, true);
        ASSERT_TRUE(hit.fires) << i;
        EXPECT_EQ(hit.bit, first.bit);
        EXPECT_EQ(hit.regIndex, first.regIndex);
    }
}

TEST(Persistence, PinnedInjectorIgnoresOtherCheckers)
{
    faults::FaultConfig fc;
    fc.kind = faults::FaultKind::RegisterBitFlip;
    fc.rate = 1.0;
    fc.targetChecker = 2;
    faults::FaultInjector injector(fc);
    auto inst = makeInst(isa::Opcode::ADD);

    injector.setActiveChecker(0);
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(injector.onInstruction(inst, true).fires);
    EXPECT_EQ(injector.fired(), 0u);

    injector.setActiveChecker(2);
    EXPECT_TRUE(injector.onInstruction(inst, true).fires);
}

// ---------------------------------------------------------------- //
// Scheduler health tracking.                                       //
// ---------------------------------------------------------------- //

TEST(SchedulerHealth, ClusteredStrikesQuarantine)
{
    core::CheckerScheduler sched(4, core::SchedPolicy::LowestFreeId,
                                 0);
    sched.setHealthParams(core::HealthParams{true, 3, 8});
    EXPECT_FALSE(sched.recordOutcome(1, true));
    EXPECT_FALSE(sched.recordOutcome(1, true));
    EXPECT_EQ(sched.strikeCount(1), 2u);
    EXPECT_TRUE(sched.recordOutcome(1, true));  // third strike
    EXPECT_TRUE(sched.quarantined(1));
    EXPECT_EQ(sched.healthyCount(), 3u);
    // A retired checker never reports quarantine again.
    EXPECT_FALSE(sched.recordOutcome(1, true));
}

TEST(SchedulerHealth, QuarantinedCheckerIsNeverAllocated)
{
    core::CheckerScheduler sched(3, core::SchedPolicy::LowestFreeId,
                                 0);
    sched.setHealthParams(core::HealthParams{true, 1, 8});
    EXPECT_TRUE(sched.recordOutcome(0, true));
    for (int round = 0; round < 4; ++round) {
        int a = sched.allocate(0);
        int b = sched.allocate(0);
        ASSERT_GE(a, 0);
        ASSERT_GE(b, 0);
        EXPECT_NE(a, 0);
        EXPECT_NE(b, 0);
        EXPECT_LT(sched.allocate(0), 0);  // pool exhausted, not 0
        sched.release(unsigned(a), 10);
        sched.release(unsigned(b), 10);
    }
}

TEST(SchedulerHealth, CleanReplaysSlideStrikesOutOfTheWindow)
{
    core::CheckerScheduler sched(4, core::SchedPolicy::RoundRobin, 0);
    sched.setHealthParams(core::HealthParams{true, 3, 4});
    // Two strikes, then enough clean replays to expire them, then two
    // more: never three in any window of four.
    for (int burst = 0; burst < 5; ++burst) {
        EXPECT_FALSE(sched.recordOutcome(2, true));
        EXPECT_FALSE(sched.recordOutcome(2, true));
        for (int i = 0; i < 4; ++i)
            EXPECT_FALSE(sched.recordOutcome(2, false));
        EXPECT_EQ(sched.strikeCount(2), 0u);
    }
    EXPECT_FALSE(sched.quarantined(2));
}

TEST(SchedulerHealth, LastHealthyCheckerIsNeverQuarantined)
{
    core::CheckerScheduler sched(2, core::SchedPolicy::LowestFreeId,
                                 0);
    sched.setHealthParams(core::HealthParams{true, 1, 8});
    EXPECT_TRUE(sched.recordOutcome(0, true));
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(sched.recordOutcome(1, true));
    EXPECT_FALSE(sched.quarantined(1));
    EXPECT_EQ(sched.healthyCount(), 1u);
    EXPECT_GE(sched.allocate(0), 0);
}

TEST(SchedulerHealth, DisabledPolicyOnlyRecords)
{
    core::CheckerScheduler sched(4, core::SchedPolicy::RoundRobin, 0);
    for (int i = 0; i < 20; ++i)
        EXPECT_FALSE(sched.recordOutcome(1, true));
    EXPECT_FALSE(sched.quarantined(1));
    EXPECT_EQ(sched.healthyCount(), 4u);
}

// ---------------------------------------------------------------- //
// Config validation / lifted timeout factor.                       //
// ---------------------------------------------------------------- //

TEST(ConfigValidation, RejectsInconsistentEscalationParams)
{
    core::SystemConfig config =
        core::SystemConfig::forMode(core::Mode::ParaDox);
    config.escalation.quarantineEnabled = true;
    config.escalation.strikesToQuarantine = 5;
    config.escalation.strikeWindow = 3;  // window < strikes
    auto w = workloads::build("bitcount", 1);
    EXPECT_EXIT({ core::System system(config, w.program); },
                ::testing::ExitedWithCode(1), "strikeWindow");
}

TEST(ConfigValidation, RejectsZeroCheckers)
{
    core::SystemConfig config =
        core::SystemConfig::forMode(core::Mode::ParaDox);
    config.checkers.count = 0;
    auto w = workloads::build("bitcount", 1);
    EXPECT_EXIT({ core::System system(config, w.program); },
                ::testing::ExitedWithCode(1), "checkers");
}

/** Cheap real path plus a wrong-path divide farm in the image. */
Program
farmProgram(unsigned iters)
{
    ProgramBuilder b("farm");
    b.ldi(r1, iters);
    b.label("loop");
    b.addi(r2, r2, 3);
    b.xor_(r3, r2, r1);
    b.addi(r1, r1, -1);
    b.bne(r1, xzero, "loop");
    b.ldi(XReg{10}, workloads::resultAddr);
    b.sd(r2, XReg{10}, 0);
    b.halt();
    b.label("divfarm");
    for (int i = 0; i < 120; ++i)
        b.fdiv(FReg{1}, FReg{2}, FReg{3});
    b.j("divfarm");
    return b.build();
}

/**
 * A checker whose pc is corrupted mid-replay can wander into the
 * divide farm and stall: the replay watchdog must convert that into a
 * Timeout detection, and the system must roll the segment back to the
 * golden image -- the run's final state is exactly the fault-free
 * one.
 */
TEST(ReplayTimeout, StuckReplayTripsWatchdogAndRollsBack)
{
    Program prog = farmProgram(4000);

    core::SystemConfig base =
        core::SystemConfig::forMode(core::Mode::Baseline);
    core::System base_sys(base, prog);
    core::RunResult golden = base_sys.run();
    ASSERT_TRUE(golden.halted);

    std::uint64_t timeouts = 0;
    for (std::uint64_t seed = 1; seed <= 6 && timeouts == 0; ++seed) {
        core::SystemConfig config =
            core::SystemConfig::forMode(core::Mode::ParaDox);
        config.seed = seed;
        core::System system(config, prog);
        faults::FaultConfig fc;
        fc.kind = faults::FaultKind::RegisterBitFlip;
        fc.targetCategory = isa::RegCategory::Misc;  // checker pc
        fc.rate = 2e-3;
        fc.seed = seed * 101 + 3;
        faults::FaultPlan plan;
        plan.add(fc);
        system.setFaultPlan(std::move(plan));

        core::RunLimits limits;
        limits.maxExecuted = 40'000'000;
        core::RunResult r = system.run(limits);
        ASSERT_TRUE(r.halted) << seed;
        EXPECT_EQ(r.finalState, golden.finalState) << seed;
        EXPECT_EQ(r.memoryFingerprint, golden.memoryFingerprint)
            << seed;
        EXPECT_GT(r.rollbacks, 0u) << seed;
        timeouts +=
            system.detectionCount(core::DetectReason::Timeout);
    }
    EXPECT_GT(timeouts, 0u)
        << "no seed produced a wandering-checker timeout";
}

TEST(ReplayTimeout, FactorZeroDisablesTheWatchdog)
{
    // With the lifted timeout factor set to 0 the watchdog budget is
    // unbounded; a legitimate run is unaffected.
    auto w = workloads::build("bitcount", 1);
    core::SystemConfig config =
        core::SystemConfig::forMode(core::Mode::ParaDox);
    config.checkerTimeoutFactor = 0;
    core::System system(config, w.program);
    core::RunResult r = system.run();
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(r.errorsDetected, 0u);
    EXPECT_EQ(system.memory().read(workloads::resultAddr, 8),
              w.expectedResult);
}

// ---------------------------------------------------------------- //
// System-level escalation behaviour.                               //
// ---------------------------------------------------------------- //

TEST(Escalation, RetryVerifySavesTransientDetections)
{
    auto w = workloads::build("bitcount", 1);

    core::SystemConfig config =
        core::SystemConfig::forMode(core::Mode::ParaDox);
    config.enableEscalation();
    config.escalation.quarantineEnabled = false;  // isolate rung 1
    core::System system(config, w.program);
    system.setFaultPlan(faults::uniformPlan(5e-4, 77));
    core::RunLimits limits;
    limits.maxExecuted = 40'000'000;
    core::RunResult r = system.run(limits);

    ASSERT_TRUE(r.halted);
    EXPECT_EQ(system.memory().read(workloads::resultAddr, 8),
              w.expectedResult);
    EXPECT_GT(r.retryVerifies, 0u);
    EXPECT_GT(r.retrySaves, 0u);
    // Transient faults do not reproduce on the second checker, so
    // saves avoid rollbacks: strictly fewer rollbacks than detections.
    EXPECT_LT(r.rollbacks, r.errorsDetected);
    EXPECT_EQ(r.rollbacks, r.errorsDetected - r.retrySaves);
}

TEST(Escalation, PermanentPinnedFaultIsQuarantined)
{
    // The acceptance scenario: a permanent fault pinned to checker 0
    // at rate 1e-3.  The ladder must retire the defective checker and
    // both workloads must complete bit-identical to golden.
    for (const char *name : {"bitcount", "stream"}) {
        auto w = workloads::build(name, 1);

        core::SystemConfig base =
            core::SystemConfig::forMode(core::Mode::ParaDox);
        core::System golden_sys(base, w.program);
        core::RunResult golden = golden_sys.run();
        ASSERT_TRUE(golden.halted) << name;

        core::SystemConfig config =
            core::SystemConfig::forMode(core::Mode::ParaDox);
        config.enableEscalation();
        core::System system(config, w.program);
        system.setFaultPlan(faults::uniformPlan(
            1e-3, 42, faults::Persistence::Permanent, 0));
        core::RunLimits limits;
        limits.maxExecuted = 80'000'000;
        core::RunResult r = system.run(limits);

        ASSERT_TRUE(r.halted) << name;
        EXPECT_EQ(r.finalState, golden.finalState) << name;
        EXPECT_EQ(r.memoryFingerprint, golden.memoryFingerprint)
            << name;
        EXPECT_EQ(system.memory().read(workloads::resultAddr, 8),
                  w.expectedResult)
            << name;
        EXPECT_GE(r.quarantines, 1u) << name;
        EXPECT_TRUE(system.checkerScheduler().quarantined(0)) << name;
        EXPECT_EQ(r.healthyCheckers,
                  config.checkers.count - unsigned(r.quarantines))
            << name;
    }
}

TEST(Escalation, DegradesGracefullyToOneChecker)
{
    // Ambient permanent fault (every checker is defective): the pool
    // shrinks but the last checker survives and the run completes
    // correctly (its detections keep forcing rollbacks until the
    // stuck sites happen not to corrupt observable state -- or the
    // retry path re-verifies on the same last checker).
    auto w = workloads::build("bitcount", 1);
    core::SystemConfig config =
        core::SystemConfig::forMode(core::Mode::ParaDox);
    config.enableEscalation();
    config.checkers.count = 4;
    core::System system(config, w.program);
    // Intermittent ambient faults: bursts strike whichever checker
    // replays during the bad window.
    system.setFaultPlan(faults::uniformPlan(
        2e-3, 11, faults::Persistence::Intermittent, -1));
    core::RunLimits limits;
    limits.maxExecuted = 80'000'000;
    core::RunResult r = system.run(limits);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(system.memory().read(workloads::resultAddr, 8),
              w.expectedResult);
    EXPECT_GE(r.healthyCheckers, 1u);
}

TEST(Escalation, DisabledLadderMatchesClassicBehaviour)
{
    // With EscalationParams at defaults the new machinery must be
    // completely inert: identical counters to the seed behaviour.
    auto w = workloads::build("bitcount", 1);
    core::SystemConfig config =
        core::SystemConfig::forMode(core::Mode::ParaDox);
    core::System system(config, w.program);
    system.setFaultPlan(faults::uniformPlan(1e-3, 7));
    core::RunLimits limits;
    limits.maxExecuted = 40'000'000;
    core::RunResult r = system.run(limits);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(r.retryVerifies, 0u);
    EXPECT_EQ(r.retrySaves, 0u);
    EXPECT_EQ(r.quarantines, 0u);
    EXPECT_EQ(r.panicResets, 0u);
    EXPECT_EQ(r.watchdogTrips, 0u);
    EXPECT_EQ(r.healthyCheckers, 16u);
    EXPECT_EQ(r.rollbacks, r.errorsDetected);
}

TEST(Escalation, DueRollbackRecoversFromUncorrectableEcc)
{
    auto w = workloads::build("stream", 1);

    core::SystemConfig base =
        core::SystemConfig::forMode(core::Mode::ParaDox);
    core::System golden_sys(base, w.program);
    core::RunResult golden = golden_sys.run();
    ASSERT_TRUE(golden.halted);

    core::SystemConfig config =
        core::SystemConfig::forMode(core::Mode::ParaDox);
    config.memoryEccDueRate = 1e-4;  // dense, for test visibility
    core::System system(config, w.program);
    core::RunLimits limits;
    limits.maxExecuted = 40'000'000;
    core::RunResult r = system.run(limits);

    ASSERT_TRUE(r.halted);
    EXPECT_GT(r.dueRollbacks, 0u);
    EXPECT_EQ(r.finalState, golden.finalState);
    EXPECT_EQ(r.memoryFingerprint, golden.memoryFingerprint);
    EXPECT_EQ(system.memory().read(workloads::resultAddr, 8),
              w.expectedResult);
}

TEST(Escalation, SustainedRollbacksEscalateToPanicResets)
{
    // Rungs 3/4 in isolation: no retry, no quarantine -- a permanent
    // fault pinned to checker 0 livelocks the island in rollback, so
    // consecutive rollbacks must cross the panic threshold and the
    // stalled verified-commit stream must trip the watchdog.
    auto w = workloads::build("bitcount", 1);
    core::SystemConfig config =
        core::SystemConfig::forMode(core::Mode::ParaDox);
    config.escalation.panicRollbackThreshold = 4;
    config.escalation.progressWatchdogUs = 2.0;
    core::System system(config, w.program);
    system.setFaultPlan(faults::uniformPlan(
        0.5, 21, faults::Persistence::Permanent, 0));
    core::RunLimits limits;
    limits.maxExecuted = 3'000'000;  // bounded: the run cannot finish
    core::RunResult r = system.run(limits);
    EXPECT_FALSE(r.halted);
    EXPECT_GT(r.panicResets, 0u);
    EXPECT_GT(r.watchdogTrips, 0u);
}

TEST(Escalation, PanicResetSnapsVoltageToSafe)
{
    core::VoltageAimdParams params;
    core::VoltageController ctrl(params);
    for (int i = 0; i < 50; ++i)
        ctrl.onCleanCheckpoint();
    ASSERT_LT(ctrl.target(), params.vSafe);
    const double undervolted = ctrl.target();
    ctrl.panicReset();
    EXPECT_EQ(ctrl.target(), params.vSafe);
    EXPECT_EQ(ctrl.panicResets(), 1u);
    // The trouble spot is remembered: descending past it is slowed.
    EXPECT_GE(ctrl.tideMark(), undervolted);
}

} // namespace
