/**
 * @file
 * Multicore tests: correctness of every core's result over the
 * shared uncore, fault repair per core, checker-pool sharing, and
 * contention sanity.
 */

#include <gtest/gtest.h>

#include "core/multicore.hh"
#include "power/undervolt_data.hh"
#include "workloads/workload.hh"

namespace
{

using namespace paradox;
using core::MulticoreParams;
using core::MulticoreResult;
using core::MulticoreSystem;

std::uint64_t
checksumOf(core::System &system)
{
    return system.memory().read(workloads::resultAddr, 8);
}

TEST(Multicore, TwoCoresBothCorrect)
{
    auto w1 = workloads::build("bitcount", 1);
    auto w2 = workloads::build("stream", 1);
    MulticoreParams params;
    params.config = core::SystemConfig::forMode(core::Mode::ParaDox);
    MulticoreSystem chip(params, {&w1.program, &w2.program});
    MulticoreResult r = chip.run();
    ASSERT_TRUE(r.allHalted);
    EXPECT_EQ(checksumOf(chip.core(0)), w1.expectedResult);
    EXPECT_EQ(checksumOf(chip.core(1)), w2.expectedResult);
}

TEST(Multicore, FourCoresUnderFaultsAllRepair)
{
    auto w1 = workloads::build("gcc", 1);
    auto w2 = workloads::build("mcf", 1);
    auto w3 = workloads::build("milc", 1);
    auto w4 = workloads::build("sjeng", 1);
    MulticoreParams params;
    params.config = core::SystemConfig::forMode(core::Mode::ParaDox);
    MulticoreSystem chip(params, {&w1.program, &w2.program,
                                  &w3.program, &w4.program});
    for (unsigned i = 0; i < 4; ++i)
        chip.setFaultPlan(i, faults::uniformPlan(2e-4, 100 + i));
    core::RunLimits limits;
    limits.maxExecuted = 80'000'000;
    MulticoreResult r = chip.run(limits);
    ASSERT_TRUE(r.allHalted);
    EXPECT_EQ(checksumOf(chip.core(0)), w1.expectedResult);
    EXPECT_EQ(checksumOf(chip.core(1)), w2.expectedResult);
    EXPECT_EQ(checksumOf(chip.core(2)), w3.expectedResult);
    EXPECT_EQ(checksumOf(chip.core(3)), w4.expectedResult);
    std::uint64_t rollbacks = 0;
    for (const auto &core : r.cores)
        rollbacks += core.rollbacks;
    EXPECT_GT(rollbacks, 0u);
}

TEST(Multicore, SharedCheckerPoolStillCorrect)
{
    auto w1 = workloads::build("bitcount", 1);
    auto w2 = workloads::build("gcc", 1);
    MulticoreParams params;
    params.config = core::SystemConfig::forMode(core::Mode::ParaDox);
    params.sharedCheckers = 16;  // two cores share one 16-pool
    MulticoreSystem chip(params, {&w1.program, &w2.program});
    chip.setFaultPlan(0, faults::uniformPlan(2e-4, 7));
    chip.setFaultPlan(1, faults::uniformPlan(2e-4, 8));
    core::RunLimits limits;
    limits.maxExecuted = 80'000'000;
    MulticoreResult r = chip.run(limits);
    ASSERT_TRUE(r.allHalted);
    EXPECT_EQ(checksumOf(chip.core(0)), w1.expectedResult);
    EXPECT_EQ(checksumOf(chip.core(1)), w2.expectedResult);
    ASSERT_NE(chip.sharedCheckers(), nullptr);
    EXPECT_EQ(chip.sharedCheckers()->count(), 16u);
}

TEST(Multicore, SharedPoolSlowerThanPrivateButBounded)
{
    // Section VI-D: halving checker hardware by sharing should not
    // affect performance much for typical demand.
    auto w1 = workloads::build("gcc", 1);
    auto w2 = workloads::build("mcf", 1);

    MulticoreParams priv;
    priv.config = core::SystemConfig::forMode(core::Mode::ParaDox);
    MulticoreSystem chip_private(priv, {&w1.program, &w2.program});
    MulticoreResult rp = chip_private.run();
    ASSERT_TRUE(rp.allHalted);

    MulticoreParams shared = priv;
    shared.sharedCheckers = 16;  // 16 for two cores vs 32 private
    MulticoreSystem chip_shared(shared, {&w1.program, &w2.program});
    MulticoreResult rs = chip_shared.run();
    ASSERT_TRUE(rs.allHalted);

    EXPECT_GE(rs.time, rp.time);
    EXPECT_LT(double(rs.time), double(rp.time) * 1.35);
}

TEST(Multicore, ContentionSlowsSharedUncore)
{
    // A latency-bound core must slow down when a second core with a
    // *disjoint* footprint competes for a small shared L2 and the
    // DRAM banks.  mcf's dependent pointer chase cannot be hidden by
    // the prefetcher, so its L2 capacity loss shows up directly.
    auto mcf = workloads::build("mcf", 1);
    auto lbm = workloads::build("lbm", 1);

    MulticoreParams params;
    params.config = core::SystemConfig::forMode(core::Mode::Baseline);
    params.config.hierarchy.l2.sizeBytes = 128 * 1024;
    params.config.hierarchy.l2.assoc = 8;

    MulticoreSystem chip_solo(params, {&mcf.program});
    Tick t_solo = chip_solo.run().cores[0].time;

    MulticoreSystem chip_duo(params, {&mcf.program, &lbm.program});
    Tick t_contended = chip_duo.run().cores[0].time;

    EXPECT_GT(t_contended, t_solo);
}

TEST(Multicore, PerCoreDvfsIslands)
{
    auto w1 = workloads::build("bitcount", 2);
    auto w2 = workloads::build("stream", 2);
    MulticoreParams params;
    params.config = core::SystemConfig::forMode(core::Mode::ParaDox);
    MulticoreSystem chip(params, {&w1.program, &w2.program});
    chip.enableDvfs(0, power::errorModelParams("bitcount"));
    chip.enableDvfs(1, power::errorModelParams("stream"));
    core::RunLimits limits;
    limits.maxExecuted = 120'000'000;
    MulticoreResult r = chip.run(limits);
    ASSERT_TRUE(r.allHalted);
    EXPECT_EQ(checksumOf(chip.core(0)), w1.expectedResult);
    EXPECT_EQ(checksumOf(chip.core(1)), w2.expectedResult);
    // Each island undervolted independently.
    EXPECT_LT(r.cores[0].avgVoltage, params.config.voltage.vSafe);
    EXPECT_LT(r.cores[1].avgVoltage, params.config.voltage.vSafe);
}

} // namespace
