/**
 * @file
 * Workload functional correctness: every PDX64 kernel must reproduce
 * the checksum computed by its independent C++ golden reference, at
 * two scales, and must be deterministic across rebuilds.
 */

#include <gtest/gtest.h>

#include "isa/executor.hh"
#include "mem/memory.hh"
#include "workloads/workload.hh"

namespace
{

using namespace paradox;

/** Run @p w functionally to completion; return the stored checksum. */
std::uint64_t
runFunctional(const workloads::Workload &w,
              std::uint64_t max_insts = 200'000'000)
{
    mem::SimpleMemory memory;
    isa::ArchState state;
    isa::loadProgram(w.program, state, memory);
    for (std::uint64_t i = 0; i < max_insts; ++i) {
        isa::ExecResult r = isa::step(w.program, state, memory);
        EXPECT_TRUE(r.valid) << w.name << ": wild fetch at pc "
                             << state.pc();
        if (!r.valid)
            return ~std::uint64_t(0);
        if (r.halted)
            return memory.read(workloads::resultAddr, 8);
    }
    ADD_FAILURE() << w.name << ": did not halt";
    return ~std::uint64_t(0);
}

class WorkloadCorrectness
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadCorrectness, MatchesGoldenReference)
{
    workloads::Workload w = workloads::build(GetParam(), 1);
    EXPECT_EQ(runFunctional(w), w.expectedResult) << w.name;
}

TEST_P(WorkloadCorrectness, MatchesGoldenReferenceAtLargerScale)
{
    workloads::Workload w = workloads::build(GetParam(), 2);
    EXPECT_EQ(runFunctional(w), w.expectedResult) << w.name;
}

TEST_P(WorkloadCorrectness, BuildIsDeterministic)
{
    workloads::Workload a = workloads::build(GetParam(), 1);
    workloads::Workload b = workloads::build(GetParam(), 1);
    EXPECT_EQ(a.expectedResult, b.expectedResult);
    ASSERT_EQ(a.program.size(), b.program.size());
    EXPECT_EQ(a.program.data().size(), b.program.data().size());
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadCorrectness,
    ::testing::ValuesIn(paradox::workloads::allNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(WorkloadRegistry, AllNamesBuild)
{
    EXPECT_EQ(workloads::allNames().size(), 21u);
    EXPECT_EQ(workloads::specNames().size(), 19u);
}

TEST(WorkloadRegistry, LargeCodeWorkloadsExceedCheckerL0)
{
    for (const auto &name : workloads::allNames()) {
        workloads::Workload w = workloads::build(name, 1);
        if (w.largeCode) {
            EXPECT_GT(w.program.codeBytes(), 8u * 1024)
                << name << " is marked largeCode";
        }
    }
}

} // namespace
