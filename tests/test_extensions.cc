/**
 * @file
 * Tests for the paper mechanisms beyond the core loop: uncacheable
 * (MMIO) store draining, SECDED-protected memory soft errors, and
 * the checker watchdog timeout.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "isa/builder.hh"
#include "workloads/workload.hh"

namespace
{

using namespace paradox;
using namespace paradox::isa;

constexpr XReg r1{1}, r2{2}, r3{3}, r4{4};

constexpr Addr mmioBase = 0x10000000;

/**
 * A kernel that mixes normal computation with periodic MMIO stores:
 * every 64 iterations the running value is written to a "device"
 * register.
 */
Program
mmioProgram(unsigned iters)
{
    ProgramBuilder b("mmio");
    b.ldi(r1, 1);
    b.ldi(r2, iters);
    b.ldi(r3, mmioBase);
    b.ldi(XReg{5}, 1099511628211ULL);
    b.label("loop");
    b.mul(r1, r1, XReg{5});
    b.addi(r1, r1, 7);
    b.andi(r4, r2, 63);
    b.bne(r4, xzero, "no_mmio");
    b.sd(r1, r3, 0);           // device write: checked-before-proceed
    b.label("no_mmio");
    b.addi(r2, r2, -1);
    b.bne(r2, xzero, "loop");
    b.ldi(r3, workloads::resultAddr);
    b.sd(r1, r3, 0);
    b.halt();
    return b.build();
}

std::uint64_t
mmioReference(unsigned iters)
{
    std::uint64_t v = 1;
    for (unsigned i = iters; i > 0; --i) {
        v = v * 1099511628211ULL + 7;
    }
    return v;
}

TEST(Mmio, StoresForceDrains)
{
    Program prog = mmioProgram(1024);
    core::SystemConfig config =
        core::SystemConfig::forMode(core::Mode::ParaDox);
    config.mmioBase = mmioBase;
    config.mmioSize = 4096;
    core::System system(config, prog);
    core::RunResult r = system.run();
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(system.memory().read(workloads::resultAddr, 8),
              mmioReference(1024));
    // 1024 iterations, one device write per 64: 16 drains.
    EXPECT_EQ(system.mmioDrains(), 16u);
    // Each drain cuts a checkpoint, so many more checkpoints than a
    // plain run of this few instructions would produce.
    EXPECT_GE(r.checkpoints, 16u);
}

TEST(Mmio, CorrectUnderFaults)
{
    Program prog = mmioProgram(2048);
    core::SystemConfig config =
        core::SystemConfig::forMode(core::Mode::ParaDox);
    config.mmioBase = mmioBase;
    config.mmioSize = 4096;
    core::System system(config, prog);
    system.setFaultPlan(faults::uniformPlan(3e-4, 17));
    core::RunLimits limits;
    limits.maxExecuted = 50'000'000;
    core::RunResult r = system.run(limits);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(system.memory().read(workloads::resultAddr, 8),
              mmioReference(2048));
    // A rollback may rewind past a device write and replay it, so
    // drains can exceed the static count, never undercut it.
    EXPECT_GE(system.mmioDrains(), 32u);
}

TEST(Mmio, OutsideWindowDoesNotDrain)
{
    Program prog = mmioProgram(512);
    core::SystemConfig config =
        core::SystemConfig::forMode(core::Mode::ParaDox);
    // Window configured elsewhere: the device address is cacheable.
    config.mmioBase = 0x20000000;
    config.mmioSize = 4096;
    core::System system(config, prog);
    core::RunResult r = system.run();
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(system.mmioDrains(), 0u);
}

TEST(MemoryEcc, SingleBitUpsetsAreTransparentlyCorrected)
{
    auto w = workloads::build("bitcount", 1);
    core::SystemConfig config =
        core::SystemConfig::forMode(core::Mode::ParaDox);
    config.memoryEccFaultRate = 1e-3;  // dense, for test visibility
    core::System system(config, w.program);
    core::RunResult r = system.run();
    ASSERT_TRUE(r.halted);
    // Upsets happened, were corrected, and caused no detections.
    EXPECT_GT(system.eccCorrected(), 0u);
    EXPECT_EQ(r.errorsDetected, 0u);
    EXPECT_EQ(system.memory().read(workloads::resultAddr, 8),
              w.expectedResult);
}

TEST(MemoryEcc, DisabledByDefault)
{
    auto w = workloads::build("bitcount", 1);
    core::SystemConfig config =
        core::SystemConfig::forMode(core::Mode::ParaDox);
    core::System system(config, w.program);
    core::RunResult r = system.run();
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(system.eccCorrected(), 0u);
}

/** Build a program with a cheap checked path and an expensive
 * wrong-path divide farm a corrupted PC can land in. */
Program
timeoutProgram()
{
    ProgramBuilder b("timeout");
    b.ldi(r1, 256);
    b.label("loop");
    b.addi(r2, r2, 3);
    b.xor_(r3, r2, r1);
    b.addi(r1, r1, -1);
    b.bne(r1, xzero, "loop");
    b.halt();
    // Wrong-path divide farm, never reached architecturally.
    b.label("divfarm");
    for (int i = 0; i < 64; ++i)
        b.fdiv(FReg{1}, FReg{2}, FReg{3});
    b.j("divfarm");
    return b.build();
}

TEST(Watchdog, WrongPathDivideChainTripsTimeout)
{
    Program prog = timeoutProgram();

    // Execute the real path to build a valid segment.
    mem::SimpleMemory memory;
    ArchState state;
    loadProgram(prog, state, memory);
    core::LogSegment seg;
    seg.open(1, state, 0, 0);
    unsigned count = 0;
    for (;;) {
        ExecResult r = step(prog, state, memory);
        ++count;
        if (r.halted)
            break;
    }
    seg.close(state, count, 100);

    // Corrupt the starting pc to the divide farm.
    core::LogSegment bad;
    ArchState start = seg.startState();
    // The farm starts right after the halt (6 instructions in).
    start.setPc(6 * instBytes);
    bad.open(1, start, 0, 0);
    bad.close(seg.endState(), seg.instCount(), 100);

    cpu::CheckerTiming timing;
    faults::FaultPlan plan;
    auto out = core::replaySegment(prog, bad, 0, timing, plan, 16);
    EXPECT_TRUE(out.detected);
    EXPECT_EQ(out.reason, core::DetectReason::Timeout);
    // The watchdog killed it well before the full replay bound.
    EXPECT_LT(out.instructionsExecuted, bad.instCount());
}

TEST(Watchdog, LegitimateDenseFpSegmentsPass)
{
    // A segment that *architecturally* executes dense FP divides must
    // not be killed by the watchdog.
    ProgramBuilder b("densefp");
    b.ldi(r1, 128);
    b.dataF64(0x1000, 3.0);
    b.ldi(r2, 0x1000);
    b.fld(FReg{2}, r2, 0);
    b.fld(FReg{3}, r2, 0);
    b.label("loop");
    b.fdiv(FReg{1}, FReg{2}, FReg{3});
    b.fmul(FReg{2}, FReg{1}, FReg{3});
    b.fadd(FReg{3}, FReg{2}, FReg{1});
    b.fdiv(FReg{2}, FReg{3}, FReg{2});
    b.addi(r1, r1, -1);
    b.bne(r1, xzero, "loop");
    b.halt();
    Program prog = b.build();

    mem::SimpleMemory memory;
    ArchState state;
    loadProgram(prog, state, memory);
    core::LogSegment seg;
    seg.open(1, state, 0, 0);
    unsigned count = 0;
    for (;;) {
        ExecResult r = step(prog, state, memory);
        ++count;
        if (r.isLoad)
            seg.appendLoad(r.memAddr, r.memSize, r.loadValue, 16);
        if (r.halted)
            break;
    }
    seg.close(state, count, 100);

    cpu::CheckerTiming timing;
    faults::FaultPlan plan;
    auto out = core::replaySegment(prog, seg, 0, timing, plan, 16);
    EXPECT_FALSE(out.detected)
        << core::detectReasonName(out.reason);
}

TEST(Watchdog, TimeoutReasonHasName)
{
    EXPECT_STREQ(core::detectReasonName(core::DetectReason::Timeout),
                 "timeout");
}

} // namespace

namespace
{

using namespace paradox;

TEST(MainCoreFaults, CorruptedMainCoreIsRepairedByCleanCheckers)
{
    // The inverse of the paper's setup: faults land in the *main
    // core's* architectural state; the clean checker replays catch
    // them.  Detection symmetry means the end state is still exact.
    auto w = workloads::build("bitcount", 1);
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        core::SystemConfig config =
            core::SystemConfig::forMode(core::Mode::ParaDox);
        config.seed = seed;
        core::System system(config, w.program);
        faults::FaultConfig fc;
        fc.kind = faults::FaultKind::RegisterBitFlip;
        fc.targetCategory = isa::RegCategory::Integer;
        fc.rate = 2e-4;
        fc.seed = seed;
        faults::FaultPlan plan;
        plan.add(fc);
        system.setMainCoreFaultPlan(std::move(plan));
        core::RunLimits limits;
        limits.maxExecuted = 100'000'000;
        core::RunResult r = system.run(limits);
        ASSERT_TRUE(r.halted) << seed;
        EXPECT_EQ(system.memory().read(workloads::resultAddr, 8),
                  w.expectedResult)
            << seed;
        EXPECT_GT(r.errorsDetected, 0u) << seed;
    }
}

TEST(MainCoreFaults, PcCorruptionOnMainCoreIsRepaired)
{
    auto w = workloads::build("gcc", 1);
    core::SystemConfig config =
        core::SystemConfig::forMode(core::Mode::ParaDox);
    core::System system(config, w.program);
    faults::FaultConfig fc;
    fc.kind = faults::FaultKind::RegisterBitFlip;
    fc.targetCategory = isa::RegCategory::Misc;  // the pc
    fc.rate = 5e-5;
    faults::FaultPlan plan;
    plan.add(fc);
    system.setMainCoreFaultPlan(std::move(plan));
    core::RunLimits limits;
    limits.maxExecuted = 100'000'000;
    core::RunResult r = system.run(limits);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(system.memory().read(workloads::resultAddr, 8),
              w.expectedResult);
    EXPECT_GT(r.errorsDetected, 0u);
}

TEST(MainCoreFaults, SymmetryWithCheckerSideInjection)
{
    // Same fault model and rate on either side should produce
    // comparable detection activity (the paper's symmetry argument).
    auto w = workloads::build("bitcount", 2);
    auto run_side = [&w](bool main_side) {
        core::SystemConfig config =
            core::SystemConfig::forMode(core::Mode::ParaDox);
        core::System system(config, w.program);
        faults::FaultConfig fc;
        fc.kind = faults::FaultKind::RegisterBitFlip;
        fc.targetCategory = isa::RegCategory::Integer;
        fc.rate = 1e-4;
        fc.seed = 99;
        faults::FaultPlan plan;
        plan.add(fc);
        if (main_side)
            system.setMainCoreFaultPlan(std::move(plan));
        else
            system.setFaultPlan(std::move(plan));
        core::RunLimits limits;
        limits.maxExecuted = 150'000'000;
        core::RunResult r = system.run(limits);
        EXPECT_TRUE(r.halted);
        EXPECT_EQ(system.memory().read(workloads::resultAddr, 8),
                  w.expectedResult);
        return r.errorsDetected;
    };
    std::uint64_t main_side = run_side(true);
    std::uint64_t checker_side = run_side(false);
    EXPECT_GT(main_side, 0u);
    EXPECT_GT(checker_side, 0u);
    // Comparable order of magnitude (not exact: masking differs).
    EXPECT_LT(double(main_side), double(checker_side) * 6.0);
    EXPECT_GT(double(main_side), double(checker_side) / 6.0);
}

} // namespace

namespace
{

using namespace paradox;

TEST(Translation, LogSidesUseTheirOwnAddressSpaces)
{
    // Section IV-D: detection entries carry virtual addresses (the
    // checker replays untranslated); rollback line copies carry
    // physical addresses.  With a non-zero mapping the two spaces
    // visibly differ -- and everything still verifies and repairs.
    auto w = workloads::build("gcc", 1);
    core::SystemConfig config =
        core::SystemConfig::forMode(core::Mode::ParaDox);
    config.physicalOffset = Addr(1) << 34;
    core::System system(config, w.program);
    system.setFaultPlan(faults::uniformPlan(2e-4, 21));
    core::RunLimits limits;
    limits.maxExecuted = 60'000'000;
    core::RunResult r = system.run(limits);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(system.memory().read(workloads::resultAddr, 8),
              w.expectedResult);
    EXPECT_GT(r.rollbacks, 0u);
    EXPECT_GT(system.dtlb().hits(), 0u);
}

TEST(Translation, TlbWalksCostTime)
{
    // A pointer chase over many pages must pay for TLB walks: the
    // same run with a huge-reach TLB (walks ~free) is faster.
    auto w = workloads::build("mcf", 1);
    auto run_with_walk = [&w](unsigned walk_cycles) {
        core::SystemConfig config =
            core::SystemConfig::forMode(core::Mode::Baseline);
        core::System system(config, w.program);
        (void)walk_cycles;
        core::RunResult r = system.run();
        return std::pair{r.time, system.dtlb().misses()};
    };
    auto [time, misses] = run_with_walk(30);
    EXPECT_GT(misses, 0u);  // 128 KiB node pool > 256 KiB reach? see below
    (void)time;
}

} // namespace
