/**
 * @file
 * Fault-injection framework tests: geometric inter-arrival behaviour,
 * per-kind event targeting, and the undervolt error-rate model.
 */

#include <gtest/gtest.h>

#include "faults/fault_model.hh"
#include "faults/undervolt_model.hh"

namespace
{

using namespace paradox;
using namespace paradox::faults;

isa::Instruction
makeInst(isa::Opcode op)
{
    isa::Instruction inst;
    inst.op = op;
    inst.rd = 1;
    return inst;
}

TEST(FaultInjector, ZeroRateNeverFires)
{
    FaultConfig fc;
    fc.kind = FaultKind::RegisterBitFlip;
    fc.rate = 0.0;
    FaultInjector injector(fc);
    auto inst = makeInst(isa::Opcode::ADD);
    for (int i = 0; i < 100000; ++i)
        EXPECT_FALSE(injector.onInstruction(inst, true).fires);
    EXPECT_EQ(injector.fired(), 0u);
}

TEST(FaultInjector, RateOneFiresEveryEvent)
{
    FaultConfig fc;
    fc.kind = FaultKind::RegisterBitFlip;
    fc.rate = 1.0;
    FaultInjector injector(fc);
    auto inst = makeInst(isa::Opcode::ADD);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(injector.onInstruction(inst, true).fires);
}

TEST(FaultInjector, ObservedRateMatchesConfigured)
{
    FaultConfig fc;
    fc.kind = FaultKind::RegisterBitFlip;
    fc.rate = 0.01;
    FaultInjector injector(fc);
    auto inst = makeInst(isa::Opcode::ADD);
    const int n = 200000;
    int fires = 0;
    for (int i = 0; i < n; ++i)
        fires += injector.onInstruction(inst, true).fires;
    EXPECT_NEAR(double(fires) / n, 0.01, 0.002);
}

TEST(FaultInjector, FunctionalUnitTargetsClassOnly)
{
    FaultConfig fc;
    fc.kind = FaultKind::FunctionalUnit;
    fc.targetClass = isa::InstClass::IntDiv;
    fc.rate = 1.0;
    FaultInjector injector(fc);
    EXPECT_FALSE(
        injector.onInstruction(makeInst(isa::Opcode::ADD), true).fires);
    EXPECT_TRUE(
        injector.onInstruction(makeInst(isa::Opcode::DIV), true).fires);
}

TEST(FaultInjector, FunctionalUnitSkipsDiscardedInstructions)
{
    FaultConfig fc;
    fc.kind = FaultKind::FunctionalUnit;
    fc.targetClass = isa::InstClass::IntAlu;
    fc.rate = 1.0;
    FaultInjector injector(fc);
    // "No error is injected if no register is touched" -- but the
    // event still consumes the gap.
    auto hit = injector.onInstruction(makeInst(isa::Opcode::ADD),
                                      /*wrote_reg=*/false);
    EXPECT_FALSE(hit.fires);
}

TEST(FaultInjector, LogInjectorIgnoresInstructions)
{
    FaultConfig fc;
    fc.kind = FaultKind::LogBitFlip;
    fc.rate = 1.0;
    FaultInjector injector(fc);
    EXPECT_FALSE(
        injector.onInstruction(makeInst(isa::Opcode::ADD), true).fires);
    EXPECT_TRUE(injector.onLogEntry(true).fires);
}

TEST(FaultInjector, LogTargetingRespectsLoadStoreSelection)
{
    FaultConfig fc;
    fc.kind = FaultKind::LogBitFlip;
    fc.rate = 1.0;
    fc.targetLoads = true;
    fc.targetStores = false;
    FaultInjector injector(fc);
    EXPECT_TRUE(injector.onLogEntry(true).fires);
    EXPECT_FALSE(injector.onLogEntry(false).fires);
}

TEST(FaultInjector, BitsCoverWholeWord)
{
    FaultConfig fc;
    fc.kind = FaultKind::LogBitFlip;
    fc.rate = 1.0;
    FaultInjector injector(fc);
    std::uint64_t seen = 0;
    for (int i = 0; i < 4000; ++i) {
        auto hit = injector.onLogEntry(true);
        ASSERT_TRUE(hit.fires);
        ASSERT_LT(hit.bit, 64u);
        seen |= std::uint64_t(1) << hit.bit;
    }
    EXPECT_EQ(seen, ~std::uint64_t(0));
}

TEST(FaultInjector, ResetReplaysIdenticalSequence)
{
    FaultConfig fc;
    fc.kind = FaultKind::RegisterBitFlip;
    fc.rate = 0.05;
    FaultInjector a(fc);
    auto inst = makeInst(isa::Opcode::ADD);
    std::vector<bool> first;
    for (int i = 0; i < 1000; ++i)
        first.push_back(a.onInstruction(inst, true).fires);
    a.reset();
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.onInstruction(inst, true).fires, first[i]) << i;
}

TEST(FaultPlan, UniformPlanHasBothSources)
{
    FaultPlan plan = uniformPlan(1e-4, 9);
    ASSERT_EQ(plan.injectors().size(), 2u);
    EXPECT_EQ(plan.injectors()[0].kind(), FaultKind::RegisterBitFlip);
    EXPECT_EQ(plan.injectors()[1].kind(), FaultKind::LogBitFlip);
}

TEST(FaultPlan, SetAllRatesRetunes)
{
    FaultPlan plan = uniformPlan(1e-4, 9);
    plan.setAllRates(0.5);
    for (const auto &injector : plan.injectors())
        EXPECT_DOUBLE_EQ(injector.rate(), 0.5);
}

TEST(UndervoltModel, MonotoneDecreasingInVoltage)
{
    UndervoltErrorModel model;
    double prev = 1.1;
    for (double v = 0.70; v <= 1.10; v += 0.01) {
        double rate = model.perInstructionRate(v);
        EXPECT_LE(rate, prev);
        prev = rate;
    }
}

TEST(UndervoltModel, FloorSaturatesAtOne)
{
    UndervoltErrorModel model;
    EXPECT_DOUBLE_EQ(model.perInstructionRate(0.70), 1.0);
    EXPECT_DOUBLE_EQ(model.perInstructionRate(0.50), 1.0);
}

TEST(UndervoltModel, NominalIsNegligible)
{
    UndervoltErrorModel model;
    EXPECT_LT(model.perInstructionRate(1.1), 1e-12);
}

TEST(UndervoltModel, InverseRoundTrips)
{
    UndervoltErrorModel model;
    for (double rate : {1e-3, 1e-5, 1e-8}) {
        double v = model.voltageForRate(rate);
        EXPECT_NEAR(model.perInstructionRate(v), rate, rate * 1e-6);
    }
}

} // namespace
