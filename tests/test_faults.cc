/**
 * @file
 * Fault-injection framework tests: geometric inter-arrival behaviour,
 * per-kind event targeting, and the undervolt error-rate model.
 */

#include <gtest/gtest.h>

#include "faults/fault_model.hh"
#include "faults/undervolt_model.hh"

namespace
{

using namespace paradox;
using namespace paradox::faults;

isa::Instruction
makeInst(isa::Opcode op)
{
    isa::Instruction inst;
    inst.op = op;
    inst.rd = 1;
    return inst;
}

TEST(FaultInjector, ZeroRateNeverFires)
{
    FaultConfig fc;
    fc.kind = FaultKind::RegisterBitFlip;
    fc.rate = 0.0;
    FaultInjector injector(fc);
    auto inst = makeInst(isa::Opcode::ADD);
    for (int i = 0; i < 100000; ++i)
        EXPECT_FALSE(injector.onInstruction(inst, true).fires);
    EXPECT_EQ(injector.fired(), 0u);
}

TEST(FaultInjector, RateOneFiresEveryEvent)
{
    FaultConfig fc;
    fc.kind = FaultKind::RegisterBitFlip;
    fc.rate = 1.0;
    FaultInjector injector(fc);
    auto inst = makeInst(isa::Opcode::ADD);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(injector.onInstruction(inst, true).fires);
}

TEST(FaultInjector, ObservedRateMatchesConfigured)
{
    FaultConfig fc;
    fc.kind = FaultKind::RegisterBitFlip;
    fc.rate = 0.01;
    FaultInjector injector(fc);
    auto inst = makeInst(isa::Opcode::ADD);
    const int n = 200000;
    int fires = 0;
    for (int i = 0; i < n; ++i)
        fires += injector.onInstruction(inst, true).fires;
    EXPECT_NEAR(double(fires) / n, 0.01, 0.002);
}

TEST(FaultInjector, FunctionalUnitTargetsClassOnly)
{
    FaultConfig fc;
    fc.kind = FaultKind::FunctionalUnit;
    fc.targetClass = isa::InstClass::IntDiv;
    fc.rate = 1.0;
    FaultInjector injector(fc);
    EXPECT_FALSE(
        injector.onInstruction(makeInst(isa::Opcode::ADD), true).fires);
    EXPECT_TRUE(
        injector.onInstruction(makeInst(isa::Opcode::DIV), true).fires);
}

TEST(FaultInjector, FunctionalUnitSkipsDiscardedInstructions)
{
    FaultConfig fc;
    fc.kind = FaultKind::FunctionalUnit;
    fc.targetClass = isa::InstClass::IntAlu;
    fc.rate = 1.0;
    FaultInjector injector(fc);
    // "No error is injected if no register is touched" -- but the
    // event still consumes the gap.
    auto hit = injector.onInstruction(makeInst(isa::Opcode::ADD),
                                      /*wrote_reg=*/false);
    EXPECT_FALSE(hit.fires);
}

TEST(FaultInjector, LogInjectorIgnoresInstructions)
{
    FaultConfig fc;
    fc.kind = FaultKind::LogBitFlip;
    fc.rate = 1.0;
    FaultInjector injector(fc);
    EXPECT_FALSE(
        injector.onInstruction(makeInst(isa::Opcode::ADD), true).fires);
    EXPECT_TRUE(injector.onLogEntry(true).fires);
}

TEST(FaultInjector, LogTargetingRespectsLoadStoreSelection)
{
    FaultConfig fc;
    fc.kind = FaultKind::LogBitFlip;
    fc.rate = 1.0;
    fc.targetLoads = true;
    fc.targetStores = false;
    FaultInjector injector(fc);
    EXPECT_TRUE(injector.onLogEntry(true).fires);
    EXPECT_FALSE(injector.onLogEntry(false).fires);
}

TEST(FaultInjector, BitsCoverWholeWord)
{
    FaultConfig fc;
    fc.kind = FaultKind::LogBitFlip;
    fc.rate = 1.0;
    FaultInjector injector(fc);
    std::uint64_t seen = 0;
    for (int i = 0; i < 4000; ++i) {
        auto hit = injector.onLogEntry(true);
        ASSERT_TRUE(hit.fires);
        ASSERT_LT(hit.bit, 64u);
        seen |= std::uint64_t(1) << hit.bit;
    }
    EXPECT_EQ(seen, ~std::uint64_t(0));
}

TEST(FaultInjector, ResetReplaysIdenticalSequence)
{
    FaultConfig fc;
    fc.kind = FaultKind::RegisterBitFlip;
    fc.rate = 0.05;
    FaultInjector a(fc);
    auto inst = makeInst(isa::Opcode::ADD);
    std::vector<bool> first;
    for (int i = 0; i < 1000; ++i)
        first.push_back(a.onInstruction(inst, true).fires);
    a.reset();
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.onInstruction(inst, true).fires, first[i]) << i;
}

TEST(FaultPlan, UniformPlanHasBothSources)
{
    FaultPlan plan = uniformPlan(1e-4, 9);
    ASSERT_EQ(plan.injectors().size(), 2u);
    EXPECT_EQ(plan.injectors()[0].kind(), FaultKind::RegisterBitFlip);
    EXPECT_EQ(plan.injectors()[1].kind(), FaultKind::LogBitFlip);
}

TEST(FaultPlan, SetAllRatesRetunes)
{
    FaultPlan plan = uniformPlan(1e-4, 9);
    plan.setAllRates(0.5);
    for (const auto &injector : plan.injectors())
        EXPECT_DOUBLE_EQ(injector.rate(), 0.5);
}

TEST(UndervoltModel, MonotoneDecreasingInVoltage)
{
    UndervoltErrorModel model;
    double prev = 1.1;
    for (double v = 0.70; v <= 1.10; v += 0.01) {
        double rate = model.perInstructionRate(v);
        EXPECT_LE(rate, prev);
        prev = rate;
    }
}

TEST(UndervoltModel, FloorSaturatesAtOne)
{
    UndervoltErrorModel model;
    EXPECT_DOUBLE_EQ(model.perInstructionRate(0.70), 1.0);
    EXPECT_DOUBLE_EQ(model.perInstructionRate(0.50), 1.0);
}

TEST(UndervoltModel, NominalIsNegligible)
{
    UndervoltErrorModel model;
    EXPECT_LT(model.perInstructionRate(1.1), 1e-12);
}

TEST(UndervoltModel, InverseRoundTrips)
{
    UndervoltErrorModel model;
    for (double rate : {1e-3, 1e-5, 1e-8}) {
        double v = model.voltageForRate(rate);
        EXPECT_NEAR(model.perInstructionRate(v), rate, rate * 1e-6);
    }
}

TEST(FaultConfig, ValidationRejectsMalformedParameters)
{
    FaultConfig good;
    EXPECT_NO_THROW(good.validate());

    FaultConfig fc = good;
    fc.rate = -0.1;
    EXPECT_THROW(fc.validate(), std::invalid_argument);
    fc.rate = 1.5;
    EXPECT_THROW(fc.validate(), std::invalid_argument);

    fc = good;
    fc.burstBias = 1.5;
    EXPECT_THROW(fc.validate(), std::invalid_argument);

    fc = good;
    fc.burstLength = 0;
    EXPECT_THROW(fc.validate(), std::invalid_argument);

    fc = good;
    fc.targetChecker = -2;
    EXPECT_THROW(fc.validate(), std::invalid_argument);

    // The injector validates at construction, so a malformed config
    // cannot even be instantiated, let alone run.
    EXPECT_THROW(FaultInjector{fc}, std::invalid_argument);
}

TEST(ChipModel, SameSeedYieldsIdenticalMap)
{
    ChipConfig cc;
    cc.chipSeed = 42;
    ChipModel a(cc), b(cc);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    EXPECT_EQ(a.toJson(), b.toJson());
    ASSERT_EQ(a.cells().size(), b.cells().size());
}

TEST(ChipModel, DifferentSeedsYieldDistinctMaps)
{
    ChipConfig cc;
    cc.chipSeed = 1;
    ChipModel a(cc);
    cc.chipSeed = 2;
    ChipModel b(cc);
    EXPECT_NE(a.fingerprint(), b.fingerprint());
    EXPECT_NE(a.toJson(), b.toJson());
}

TEST(ChipModel, MapIsWellFormed)
{
    ChipConfig cc;
    cc.chipSeed = 7;
    cc.weakCells = 96;
    ChipModel chip(cc);
    ASSERT_EQ(chip.cells().size(), cc.weakCells);

    std::size_t partitioned = 0;
    for (int core = -1; core < int(cc.checkerCount); ++core)
        for (SiteKind kind :
             {SiteKind::RegisterBit, SiteKind::LogRow,
              SiteKind::FunctionalUnit})
            partitioned += chip.cellsFor(core, kind).size();
    EXPECT_EQ(partitioned, chip.cells().size());

    for (const WeakCell &cell : chip.cells()) {
        EXPECT_GE(cell.core, -1);
        EXPECT_LT(cell.core, int(cc.checkerCount));
        EXPECT_LT(cell.bit, 64u);
        EXPECT_GE(cell.vmin, cc.shape.vFloor +
                                 chip.coreVminOffset(cell.core));
        switch (cell.kind) {
          case SiteKind::RegisterBit:
            EXPECT_LT(cell.index, cc.regCount);
            break;
          case SiteKind::LogRow:
            EXPECT_LT(cell.index, cc.logRows);
            break;
          case SiteKind::FunctionalUnit:
            EXPECT_LT(cell.index, cc.unitCount);
            break;
        }
    }
}

TEST(ChipModel, FlipProbabilityAnchorsAtCellVmin)
{
    ChipConfig cc;
    cc.chipSeed = 11;
    ChipModel chip(cc);
    const WeakCell &cell = chip.cells().front();

    EXPECT_DOUBLE_EQ(chip.flipProbability(cell, cell.vmin), 1.0);
    EXPECT_DOUBLE_EQ(chip.flipProbability(cell, cell.vmin - 0.05),
                     1.0);
    double prev = 1.0;
    for (double dv = 0.005; dv <= 0.2; dv += 0.005) {
        double p = chip.flipProbability(cell, cell.vmin + dv);
        EXPECT_LE(p, prev);
        prev = p;
    }
    EXPECT_LT(chip.flipProbability(cell, cc.shape.vNominal), 1e-12);
}

TEST(FaultInjector, ChipModeStuckAtReportsSite)
{
    ChipConfig cc;
    cc.chipSeed = 5;
    cc.weakCells = 256; // dense map: every domain draws cells
    ChipModel chip(cc);

    // Find a checker domain owning a register-file weak cell.
    int core = -1;
    for (int c = 0; c < int(cc.checkerCount); ++c)
        if (!chip.cellsFor(c, SiteKind::RegisterBit).empty()) {
            core = c;
            break;
        }
    ASSERT_GE(core, 0) << "dense map has no register cells at all";

    FaultConfig fc;
    fc.kind = FaultKind::RegisterBitFlip;
    fc.seed = 99;
    FaultInjector injector(fc);
    injector.attachChip(&chip);
    injector.setVoltage(0.60); // far below every cell's Vmin: p == 1
    injector.setActiveChecker(core);

    FaultHit hit = injector.onInstruction(makeInst(isa::Opcode::ADD),
                                          true);
    ASSERT_TRUE(hit.fires);
    EXPECT_TRUE(hit.hasStuck);
    ASSERT_GE(hit.site, 0);
    const WeakCell &cell = chip.cells()[unsigned(hit.site)];
    EXPECT_EQ(cell.core, core);
    EXPECT_EQ(cell.kind, SiteKind::RegisterBit);
    EXPECT_EQ(hit.stuckValue, cell.stuckValue);
    EXPECT_EQ(hit.bit, cell.bit);
    EXPECT_EQ(injector.weakCellHits(), 1u);
}

TEST(FaultInjector, ChipModePermanentLatchPinsSite)
{
    ChipConfig cc;
    cc.chipSeed = 5;
    cc.weakCells = 256;
    ChipModel chip(cc);

    int core = -1;
    for (int c = 0; c < int(cc.checkerCount); ++c)
        if (!chip.cellsFor(c, SiteKind::RegisterBit).empty()) {
            core = c;
            break;
        }
    ASSERT_GE(core, 0);

    FaultConfig fc;
    fc.kind = FaultKind::RegisterBitFlip;
    fc.persistence = Persistence::Permanent;
    fc.seed = 99;
    FaultInjector injector(fc);
    injector.attachChip(&chip);
    injector.setVoltage(0.60);
    injector.setActiveChecker(core);

    auto inst = makeInst(isa::Opcode::ADD);
    FaultHit first = injector.onInstruction(inst, true);
    ASSERT_TRUE(first.fires);
    for (int i = 0; i < 50; ++i) {
        FaultHit hit = injector.onInstruction(inst, true);
        ASSERT_TRUE(hit.fires);
        EXPECT_EQ(hit.site, first.site)
            << "permanent latch wandered off its pinned cell";
        EXPECT_EQ(hit.bit, first.bit);
        EXPECT_EQ(hit.stuckValue, first.stuckValue);
    }
    EXPECT_TRUE(injector.latched());

    // The latch is a Vmin violation, not physical damage: back at
    // nominal voltage the pinned site goes quiet again.
    injector.setVoltage(cc.shape.vNominal);
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(injector.onInstruction(inst, true).fires);
}

TEST(FaultInjector, ChipModeQuietAtNominalVoltage)
{
    ChipConfig cc;
    cc.chipSeed = 5;
    cc.weakCells = 256;
    ChipModel chip(cc);

    FaultConfig fc;
    fc.kind = FaultKind::RegisterBitFlip;
    fc.seed = 99;
    FaultInjector injector(fc);
    injector.attachChip(&chip);
    injector.setVoltage(cc.shape.vNominal);

    auto inst = makeInst(isa::Opcode::ADD);
    for (int core = 0; core < int(cc.checkerCount); ++core) {
        injector.setActiveChecker(core);
        for (int i = 0; i < 200; ++i)
            EXPECT_FALSE(injector.onInstruction(inst, true).fires);
    }
    EXPECT_EQ(injector.weakCellHits(), 0u);
}

} // namespace
