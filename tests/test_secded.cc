/**
 * @file
 * SECDED codec property tests: round-trip, exhaustive single-bit
 * correction, and exhaustive double-bit detection.
 */

#include <gtest/gtest.h>

#include "mem/secded.hh"
#include "sim/rng.hh"

namespace
{

using namespace paradox;
using mem::EccStatus;
using mem::EccWord;
using mem::Secded;

TEST(Secded, CleanRoundTrip)
{
    for (std::uint64_t v :
         {0ULL, ~0ULL, 0x5555555555555555ULL, 0xdeadbeefcafef00dULL}) {
        EccWord w = Secded::encode(v);
        auto d = Secded::decode(w);
        EXPECT_EQ(d.status, EccStatus::Ok);
        EXPECT_EQ(d.data, v);
    }
}

TEST(Secded, RandomRoundTrip)
{
    Rng rng(42);
    for (int i = 0; i < 2000; ++i) {
        std::uint64_t v = rng.next();
        auto d = Secded::decode(Secded::encode(v));
        EXPECT_EQ(d.status, EccStatus::Ok);
        EXPECT_EQ(d.data, v);
    }
}

/** Exhaustive single-bit sweep, parameterized over the flipped bit. */
class SecdedSingleBit : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SecdedSingleBit, CorrectsEveryPosition)
{
    const unsigned bit = GetParam();
    Rng rng(1000 + bit);
    for (int trial = 0; trial < 50; ++trial) {
        std::uint64_t v = rng.next();
        EccWord w = Secded::encode(v);
        Secded::flipBit(w, bit);
        auto d = Secded::decode(w);
        EXPECT_EQ(d.status, EccStatus::Corrected)
            << "bit " << bit << " value " << v;
        EXPECT_EQ(d.data, v) << "bit " << bit;
    }
}

INSTANTIATE_TEST_SUITE_P(AllBits, SecdedSingleBit,
                         ::testing::Range(0u, Secded::codeBits));

TEST(Secded, DetectsAllDoubleBitFlips)
{
    Rng rng(7);
    const std::uint64_t v = rng.next();
    const EccWord clean = Secded::encode(v);
    for (unsigned b1 = 0; b1 < Secded::codeBits; ++b1) {
        for (unsigned b2 = b1 + 1; b2 < Secded::codeBits; ++b2) {
            EccWord w = clean;
            Secded::flipBit(w, b1);
            Secded::flipBit(w, b2);
            auto d = Secded::decode(w);
            EXPECT_EQ(d.status, EccStatus::Uncorrectable)
                << "bits " << b1 << "," << b2;
        }
    }
}

TEST(Secded, DoubleFlipSameBitIsClean)
{
    EccWord w = Secded::encode(0x123456789abcdef0ULL);
    Secded::flipBit(w, 13);
    Secded::flipBit(w, 13);
    auto d = Secded::decode(w);
    EXPECT_EQ(d.status, EccStatus::Ok);
}

TEST(Secded, CheckBitsDifferAcrossData)
{
    // Sanity: the code is not degenerate.
    EXPECT_NE(Secded::encode(1).check, Secded::encode(2).check);
}

} // namespace
