/**
 * @file
 * Simulation-kernel unit tests: RNG distributions, the event queue,
 * clock domains and the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/clock.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

namespace
{

using namespace paradox;

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 16; ++i)
        any_diff |= a.next() != b.next();
    EXPECT_TRUE(any_diff);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(5);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, GeometricMeanMatchesRate)
{
    Rng rng(77);
    const double p = 0.01;
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += double(rng.geometric(p));
    double mean = sum / n;
    EXPECT_NEAR(mean, 1.0 / p, 0.05 / p);
}

TEST(Rng, GeometricZeroRateNeverFires)
{
    Rng rng(3);
    EXPECT_EQ(rng.geometric(0.0),
              std::numeric_limits<std::uint64_t>::max());
}

TEST(Rng, GeometricCertainFiresImmediately)
{
    Rng rng(3);
    EXPECT_EQ(rng.geometric(1.0), 1u);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(101);
    const double lambda = 4.0;
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(lambda);
    EXPECT_NEAR(sum / n, 1.0 / lambda, 0.02);
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, EqualTicksFireInInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(50, [&order, i] { order.push_back(i); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue q;
    bool fired = false;
    auto id = q.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));  // double cancel fails
    q.runAll();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue q;
    int count = 0;
    q.schedule(10, [&] { ++count; });
    q.schedule(20, [&] { ++count; });
    q.schedule(30, [&] { ++count; });
    q.runUntil(20);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(q.now(), 20u);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] {
        ++fired;
        q.scheduleIn(5, [&] { ++fired; });
    });
    q.runAll();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 15u);
}

TEST(ClockDomain, MainCoreFrequencyExact)
{
    ClockDomain clock(3.2e9);
    // 3.2 GHz divides the femtosecond tick exactly: 312500 fs.
    EXPECT_EQ(clock.period(), 312500u);
    EXPECT_EQ(clock.cyclesToTicks(3'200'000'000ULL), ticksPerSecond);
}

TEST(ClockDomain, CheckerFrequencyExact)
{
    ClockDomain clock(1e9);
    EXPECT_EQ(clock.period(), 1'000'000u);
}

TEST(ClockDomain, RetuneChangesPeriod)
{
    ClockDomain clock(3.2e9);
    Tick before = clock.period();
    clock.setFrequency(1.6e9);
    EXPECT_EQ(clock.period(), before * 2);
}

TEST(ClockDomain, TicksToCyclesRoundsUp)
{
    ClockDomain clock(1e9);
    EXPECT_EQ(clock.ticksToCycles(1), 1u);
    EXPECT_EQ(clock.ticksToCycles(1'000'000), 1u);
    EXPECT_EQ(clock.ticksToCycles(1'000'001), 2u);
}

TEST(VoltageDomain, TracksVoltage)
{
    VoltageDomain domain(0.98);
    EXPECT_DOUBLE_EQ(domain.nominal(), 0.98);
    domain.setVoltage(0.85);
    EXPECT_DOUBLE_EQ(domain.voltage(), 0.85);
    EXPECT_DOUBLE_EQ(domain.nominal(), 0.98);
}

TEST(Stats, CounterAccumulates)
{
    stats::Counter counter("c", "test");
    ++counter;
    counter += 5;
    EXPECT_EQ(counter.value(), 6u);
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(Stats, DistributionMoments)
{
    stats::Distribution dist("d", "test");
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        dist.sample(v);
    EXPECT_EQ(dist.count(), 8u);
    EXPECT_DOUBLE_EQ(dist.mean(), 5.0);
    EXPECT_DOUBLE_EQ(dist.min(), 2.0);
    EXPECT_DOUBLE_EQ(dist.max(), 9.0);
    EXPECT_NEAR(dist.stddev(), 2.138, 0.001);
}

TEST(Stats, DistributionEmpty)
{
    stats::Distribution dist("d", "test");
    EXPECT_EQ(dist.count(), 0u);
    EXPECT_EQ(dist.mean(), 0.0);
    EXPECT_EQ(dist.stddev(), 0.0);
}

TEST(Stats, TimeSeriesDecimationKeepsBound)
{
    stats::TimeSeries series("t", "test", 100);
    for (Tick i = 0; i < 100000; ++i)
        series.sample(i, double(i));
    EXPECT_LE(series.samples().size(), 100u);
    EXPECT_GE(series.samples().size(), 25u);
    // Retained samples stay time-ordered.
    for (std::size_t i = 1; i < series.samples().size(); ++i)
        EXPECT_LT(series.samples()[i - 1].first,
                  series.samples()[i].first);
}

TEST(Stats, GroupDumpContainsPrefix)
{
    stats::StatGroup group("sys");
    auto &counter = group.add<stats::Counter>("events", "event count");
    counter += 3;
    std::ostringstream os;
    group.dump(os);
    EXPECT_NE(os.str().find("sys.events 3"), std::string::npos);
    group.resetAll();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(Stats, GaugeReadsLiveCallback)
{
    std::uint64_t raw = 0;
    stats::Gauge gauge("g", "live value",
                       [&] { return double(raw); });
    EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
    raw = 42;
    EXPECT_DOUBLE_EQ(gauge.value(), 42.0);
    EXPECT_TRUE(gauge.sampleable());
    EXPECT_DOUBLE_EQ(gauge.sampleValue(), 42.0);
    // reset() must not clear the component-owned state.
    gauge.reset();
    EXPECT_DOUBLE_EQ(gauge.value(), 42.0);
}

TEST(Stats, RegistryGroupsKeepCreationOrder)
{
    stats::Registry reg;
    reg.group("b").add<stats::Counter>("x", "first");
    reg.group("a").add<stats::Counter>("y", "second");
    // group() is get-or-create: no duplicate on re-lookup.
    stats::StatGroup &b_again = reg.group("b");
    b_again.add<stats::Counter>("z", "third");
    ASSERT_EQ(reg.groups().size(), 2u);
    EXPECT_EQ(reg.groups()[0]->prefix(), "b");
    EXPECT_EQ(reg.groups()[1]->prefix(), "a");

    // Dump order follows creation order, not name order.
    std::ostringstream os;
    reg.dump(os);
    const std::string dump = os.str();
    EXPECT_LT(dump.find("b.x"), dump.find("a.y"));
    EXPECT_LT(dump.find("b.z"), dump.find("a.y"));
}

TEST(Stats, RegistryFindAndForEach)
{
    stats::Registry reg;
    auto &c = reg.group("mem.l1d").add<stats::Counter>("hits", "h");
    c += 7;
    stats::Stat *found = reg.find("mem.l1d.hits");
    ASSERT_NE(found, nullptr);
    EXPECT_DOUBLE_EQ(found->sampleValue(), 7.0);
    EXPECT_EQ(reg.find("mem.l1d.misses"), nullptr);
    EXPECT_EQ(reg.find("nope"), nullptr);

    std::vector<std::string> names;
    reg.forEach([&](const stats::Stat &s) {
        names.push_back(s.name());
    });
    ASSERT_EQ(names.size(), 1u);
    EXPECT_EQ(names[0], "mem.l1d.hits");
}

TEST(Stats, SeriesMarkingOptsIntoSampling)
{
    stats::Registry reg;
    auto &c = reg.group("g").add<stats::Counter>("n", "d");
    EXPECT_TRUE(c.series().empty());
    c.setSeries("legacy_name");
    EXPECT_EQ(c.series(), "legacy_name");
    // The series string is owned by the stat: the c_str pointer a
    // sampler probe captures stays valid for the stat's lifetime.
    const char *p = c.series().c_str();
    EXPECT_STREQ(p, "legacy_name");
}

TEST(Stats, RegistryJsonDumpIsValidFlatObject)
{
    stats::Registry reg;
    reg.group("a").add<stats::Counter>("c", "count") += 2;
    auto &s = reg.group("a").add<stats::Scalar>("s", "scalar");
    s = 1.5;
    std::ostringstream os;
    reg.dumpJson(os);
    const std::string json = os.str();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"a.c\":2"), std::string::npos);
    EXPECT_NE(json.find("\"a.s\":1.5"), std::string::npos);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

} // namespace

namespace
{

using paradox::stats::Histogram;

TEST(Stats, HistogramBucketsAndEdges)
{
    Histogram hist("h", "test", 0.0, 100.0, 10);
    for (double v : {5.0, 15.0, 15.5, 99.9, -1.0, 100.0, 250.0})
        hist.sample(v);
    EXPECT_EQ(hist.count(), 7u);
    EXPECT_EQ(hist.underflow(), 1u);
    EXPECT_EQ(hist.overflow(), 2u);
    EXPECT_EQ(hist.buckets()[0], 1u);   // 5.0
    EXPECT_EQ(hist.buckets()[1], 2u);   // 15.0, 15.5
    EXPECT_EQ(hist.buckets()[9], 1u);   // 99.9
    EXPECT_DOUBLE_EQ(hist.bucketLow(3), 30.0);
}

TEST(Stats, HistogramPercentile)
{
    Histogram hist("h", "test", 0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        hist.sample(double(i) + 0.5);
    // Median of 0.5..99.5 falls in the 49-50 region.
    EXPECT_NEAR(hist.percentile(0.5), 50.0, 1.5);
    EXPECT_NEAR(hist.percentile(0.9), 90.0, 1.5);
}

TEST(Stats, HistogramReset)
{
    Histogram hist("h", "test", 0.0, 10.0, 5);
    hist.sample(3.0);
    hist.reset();
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(hist.buckets()[1], 0u);
}

TEST(Stats, HistogramPercentileEmpty)
{
    Histogram hist("h", "test", 0.0, 100.0, 10);
    EXPECT_DOUBLE_EQ(hist.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(hist.p50(), 0.0);
    EXPECT_DOUBLE_EQ(hist.p99(), 0.0);
}

TEST(Stats, HistogramPercentileSingleSample)
{
    Histogram hist("h", "test", 0.0, 100.0, 10);
    hist.sample(42.0);
    // Every percentile lands in the one occupied bucket [40, 50).
    EXPECT_DOUBLE_EQ(hist.p50(), 50.0);
    EXPECT_DOUBLE_EQ(hist.p95(), 50.0);
    EXPECT_DOUBLE_EQ(hist.p99(), 50.0);
}

TEST(Stats, HistogramPercentileAccessors)
{
    Histogram hist("h", "test", 0.0, 1000.0, 1000);
    for (int i = 0; i < 1000; ++i)
        hist.sample(double(i) + 0.5);
    EXPECT_NEAR(hist.p50(), 500.0, 1.5);
    EXPECT_NEAR(hist.p95(), 950.0, 1.5);
    EXPECT_NEAR(hist.p99(), 990.0, 1.5);
}

TEST(Stats, HistogramPercentileAllOverflow)
{
    Histogram hist("h", "test", 0.0, 10.0, 5);
    hist.sample(100.0);
    hist.sample(200.0);
    // Both samples lie past the top edge; percentiles saturate there.
    EXPECT_DOUBLE_EQ(hist.p50(), 10.0);
    EXPECT_DOUBLE_EQ(hist.p99(), 10.0);
}

TEST(Stats, HistogramPercentileUnderflowOnly)
{
    Histogram hist("h", "test", 10.0, 20.0, 5);
    hist.sample(1.0);
    EXPECT_DOUBLE_EQ(hist.p50(), 10.0);
}

TEST(Stats, TimeSeriesEmptyAndSingle)
{
    stats::TimeSeries series("t", "test", 10);
    EXPECT_TRUE(series.samples().empty());
    series.sample(5, 1.5);
    ASSERT_EQ(series.samples().size(), 1u);
    EXPECT_EQ(series.samples()[0].first, 5u);
    EXPECT_DOUBLE_EQ(series.samples()[0].second, 1.5);
    series.reset();
    EXPECT_TRUE(series.samples().empty());
}

TEST(Stats, TimeSeriesUnboundedKeepsEverything)
{
    stats::TimeSeries series("t", "test");  // capacity 0 = unbounded
    for (Tick i = 0; i < 1000; ++i)
        series.sample(i, double(i));
    EXPECT_EQ(series.samples().size(), 1000u);
}

} // namespace

#include "core/result_json.hh"

namespace
{

TEST(ResultJson, WellFormedAndComplete)
{
    paradox::core::RunResult r;
    r.halted = true;
    r.instructions = 42;
    r.time = 1000;
    r.wakeRates = {0.5, 0.25};
    std::string json = paradox::core::toJson(r);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"halted\":true"), std::string::npos);
    EXPECT_NE(json.find("\"instructions\":42"), std::string::npos);
    EXPECT_NE(json.find("\"wake_rates\":[0.5,0.25]"),
              std::string::npos);
    // Balanced braces/brackets.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

} // namespace
