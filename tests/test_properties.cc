/**
 * @file
 * Property tests across module boundaries:
 *
 *  - differential fuzzing: randomly generated (control-flow-safe)
 *    programs, executed on the main path, must replay cleanly on the
 *    checker path with zero faults, for any segmentation;
 *  - rollback-granularity equivalence: word-by-word undo (ParaMedic)
 *    and line-copy restore (ParaDox) must produce bit-identical
 *    memory images under identical fault streams;
 *  - segmentation invariance: the functional result of a run is
 *    independent of checkpoint lengths, checker counts and modes.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "isa/builder.hh"
#include "isa/executor.hh"
#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace
{

using namespace paradox;
using namespace paradox::isa;

/**
 * Generate a random but well-formed program: straight-line blocks of
 * random ALU/FP/memory ops over a bounded data window, joined by a
 * counted loop so execution is guaranteed to terminate.
 */
Program
randomProgram(std::uint64_t seed, unsigned block_len, unsigned iters)
{
    Rng rng(seed);
    ProgramBuilder b("fuzz");
    constexpr Addr window = 0x40000;  // data window base
    constexpr unsigned window_words = 256;

    // Seed registers and a few data words.
    for (unsigned i = 1; i <= 8; ++i)
        b.ldi(XReg{i}, rng.next());
    for (unsigned i = 0; i < window_words; ++i)
        b.data64(window + i * 8, rng.next());
    b.ldi(XReg{20}, window);
    b.ldi(XReg{21}, iters);

    b.label("loop");
    for (unsigned i = 0; i < block_len; ++i) {
        XReg rd{1 + unsigned(rng.nextBounded(8))};
        XReg ra{1 + unsigned(rng.nextBounded(8))};
        XReg rb{1 + unsigned(rng.nextBounded(8))};
        switch (rng.nextBounded(12)) {
          case 0: b.add(rd, ra, rb); break;
          case 1: b.sub(rd, ra, rb); break;
          case 2: b.xor_(rd, ra, rb); break;
          case 3: b.mul(rd, ra, rb); break;
          case 4: b.div(rd, ra, rb); break;
          case 5: b.srli(rd, ra, unsigned(rng.nextBounded(63)) + 1);
            break;
          case 6: b.slt(rd, ra, rb); break;
          case 7: {
            // Bounded load: addr = window + (ra & mask)*8.
            b.andi(XReg{9}, ra, window_words - 1);
            b.slli(XReg{9}, XReg{9}, 3);
            b.add(XReg{9}, XReg{9}, XReg{20});
            b.ld(rd, XReg{9}, 0);
            break;
          }
          case 8: {
            // Bounded store.
            b.andi(XReg{9}, ra, window_words - 1);
            b.slli(XReg{9}, XReg{9}, 3);
            b.add(XReg{9}, XReg{9}, XReg{20});
            b.sd(rb, XReg{9}, 0);
            break;
          }
          case 9: {
            b.fmvDX(FReg{1}, ra);
            b.fmvDX(FReg{2}, rb);
            b.fmul(FReg{3}, FReg{1}, FReg{2});
            b.fmvXD(rd, FReg{3});
            break;
          }
          case 10: b.mulh(rd, ra, rb); break;
          default: b.remu(rd, ra, rb); break;
        }
    }
    b.addi(XReg{21}, XReg{21}, -1);
    b.bne(XReg{21}, xzero, "loop");
    // Fold registers into the result address.
    b.ldi(XReg{10}, workloads::resultAddr);
    b.ldi(XReg{11}, 0);
    for (unsigned i = 1; i <= 8; ++i)
        b.xor_(XReg{11}, XReg{11}, XReg{i});
    b.sd(XReg{11}, XReg{10}, 0);
    b.halt();
    return b.build();
}

class FuzzedProgram : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FuzzedProgram, FaultFreeCheckingNeverFalselyDetects)
{
    Program prog = randomProgram(GetParam(), 40, 200);
    core::SystemConfig config =
        core::SystemConfig::forMode(core::Mode::ParaDox);
    // Stress segmentation with a small window.
    config.checkpointAimd.initial = 64;
    config.checkpointAimd.maxLength = 256;
    core::System system(config, prog);
    core::RunResult r = system.run();
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(r.errorsDetected, 0u)
        << "false detection on fault-free fuzz seed " << GetParam();
}

TEST_P(FuzzedProgram, FaultedRunMatchesBaseline)
{
    Program prog = randomProgram(GetParam(), 40, 200);

    core::SystemConfig base =
        core::SystemConfig::forMode(core::Mode::Baseline);
    core::System base_sys(base, prog);
    core::RunResult rb = base_sys.run();
    ASSERT_TRUE(rb.halted);

    core::SystemConfig config =
        core::SystemConfig::forMode(core::Mode::ParaDox);
    config.seed = GetParam();
    core::System system(config, prog);
    system.setFaultPlan(faults::uniformPlan(1e-3, GetParam() * 7 + 1));
    core::RunLimits limits;
    limits.maxExecuted = 60'000'000;
    core::RunResult r = system.run(limits);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(r.finalState, rb.finalState);
    EXPECT_EQ(r.memoryFingerprint, rb.memoryFingerprint);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzedProgram,
                         ::testing::Range<std::uint64_t>(1, 13));

/**
 * Escalation-ladder property: a *permanent* fault pinned to a single
 * checker, at any rate and seed, must never corrupt the final state
 * -- the run ends bit-identical to the fault-free golden run -- and
 * once the fault has latched, the defective checker is eventually
 * quarantined.
 */
TEST_P(FuzzedProgram, PermanentSingleCheckerFaultIsContained)
{
    const std::uint64_t seed = GetParam();
    Program prog = randomProgram(seed, 40, 200);

    core::SystemConfig base =
        core::SystemConfig::forMode(core::Mode::Baseline);
    core::System base_sys(base, prog);
    core::RunResult golden = base_sys.run();
    ASSERT_TRUE(golden.halted);

    const double rate = seed % 2 ? 1e-3 : 1e-4;
    core::SystemConfig config =
        core::SystemConfig::forMode(core::Mode::ParaDox);
    config.seed = seed;
    config.enableEscalation();
    core::System system(config, prog);
    system.setFaultPlan(faults::uniformPlan(
        rate, seed * 13 + 5, faults::Persistence::Permanent, 0));
    core::RunLimits limits;
    limits.maxExecuted = 60'000'000;
    core::RunResult r = system.run(limits);

    ASSERT_TRUE(r.halted) << "seed " << seed;
    EXPECT_EQ(r.finalState, golden.finalState) << "seed " << seed;
    EXPECT_EQ(r.memoryFingerprint, golden.memoryFingerprint)
        << "seed " << seed;
    // If the fault ever latched, the checker must have detected at
    // least once; once detections cluster it is retired.  (At low
    // rates the fault may never latch in a short run -- containment
    // is the invariant, quarantine is conditional on detections.)
    if (r.quarantines > 0) {
        EXPECT_TRUE(system.checkerScheduler().quarantined(0))
            << "seed " << seed;
        EXPECT_EQ(r.healthyCheckers, config.checkers.count - 1)
            << "seed " << seed;
    }
    if (r.errorsDetected >= 3)
        EXPECT_GE(r.quarantines, 1u) << "seed " << seed;
}

TEST(RollbackEquivalence, WordAndLineGranularityAgree)
{
    // Same workload, same fault stream; only the rollback mechanism
    // differs.  Both must land on the exact fault-free image.
    auto w = workloads::build("gcc", 1);
    std::uint64_t fingerprints[2];
    isa::ArchState states[2];
    int idx = 0;
    for (bool line_granularity : {false, true}) {
        core::SystemConfig config =
            core::SystemConfig::forMode(core::Mode::ParaDox);
        config.lineGranularityRollback = line_granularity;
        core::System system(config, w.program);
        system.setFaultPlan(faults::uniformPlan(5e-4, 99));
        core::RunLimits limits;
        limits.maxExecuted = 60'000'000;
        core::RunResult r = system.run(limits);
        EXPECT_TRUE(r.halted);
        EXPECT_GT(r.rollbacks, 0u);
        fingerprints[idx] = r.memoryFingerprint;
        states[idx] = r.finalState;
        ++idx;
    }
    EXPECT_EQ(fingerprints[0], fingerprints[1]);
    EXPECT_EQ(states[0], states[1]);
}

TEST(SegmentationInvariance, ResultIndependentOfCheckpointLength)
{
    auto w = workloads::build("sjeng", 1);
    std::uint64_t expect = w.expectedResult;
    for (unsigned max_len : {64u, 300u, 1000u, 5000u}) {
        core::SystemConfig config =
            core::SystemConfig::forMode(core::Mode::ParaDox);
        config.checkpointAimd.initial = max_len;
        config.checkpointAimd.maxLength = max_len;
        core::System system(config, w.program);
        core::RunResult r = system.run();
        ASSERT_TRUE(r.halted) << max_len;
        EXPECT_EQ(system.memory().read(workloads::resultAddr, 8),
                  expect)
            << max_len;
        EXPECT_EQ(r.errorsDetected, 0u) << max_len;
    }
}

TEST(SegmentationInvariance, ResultIndependentOfCheckerCount)
{
    auto w = workloads::build("omnetpp", 1);
    for (unsigned checkers : {1u, 2u, 5u, 16u, 32u}) {
        core::SystemConfig config =
            core::SystemConfig::forMode(core::Mode::ParaDox);
        config.checkers.count = checkers;
        core::System system(config, w.program);
        system.setFaultPlan(faults::uniformPlan(2e-4, 55));
        core::RunLimits limits;
        limits.maxExecuted = 80'000'000;
        core::RunResult r = system.run(limits);
        ASSERT_TRUE(r.halted) << checkers;
        EXPECT_EQ(system.memory().read(workloads::resultAddr, 8),
                  w.expectedResult)
            << checkers;
    }
}

TEST(SegmentationInvariance, TinyLogSegmentsStillWork)
{
    auto w = workloads::build("stream", 1);
    core::SystemConfig config =
        core::SystemConfig::forMode(core::Mode::ParaDox);
    config.log.segmentBytes = 512;  // absurdly small log
    core::System system(config, w.program);
    core::RunResult r = system.run();
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(system.memory().read(workloads::resultAddr, 8),
              w.expectedResult);
    EXPECT_EQ(r.errorsDetected, 0u);
}

} // namespace
