/**
 * @file
 * Core-component unit tests: the load-store log, AIMD checkpoint
 * controller, voltage controller + regulator, checker scheduler and
 * segment replay.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/aimd.hh"
#include "core/checker_replay.hh"
#include "core/dvfs.hh"
#include "core/lslog.hh"
#include "core/scheduler.hh"
#include "core/system.hh"
#include "isa/builder.hh"
#include "isa/executor.hh"
#include "mem/memory.hh"
#include "workloads/workload.hh"

namespace
{

using namespace paradox;
using namespace paradox::core;

TEST(LogSegment, TracksEntriesAndBytes)
{
    LogSegment seg;
    isa::ArchState start;
    seg.open(1, start, 0, 0);
    seg.appendLoad(0x100, 8, 42, 16);
    seg.appendStore(0x108, 8, 7, 3, 24);
    EXPECT_EQ(seg.entries().size(), 2u);
    EXPECT_EQ(seg.bytesUsed(), 40u);
    EXPECT_TRUE(seg.entries()[0].isLoad);
    EXPECT_FALSE(seg.entries()[1].isLoad);
    EXPECT_EQ(seg.entries()[1].oldValue, 3u);
    EXPECT_FALSE(seg.wouldOverflow(10, 64));
    EXPECT_TRUE(seg.wouldOverflow(30, 64));
}

TEST(LogSegment, LineCopiesCarryDecodableEcc)
{
    LogSegment seg;
    isa::ArchState start;
    seg.open(2, start, 0, 0);
    std::vector<std::uint8_t> bytes(64);
    for (unsigned i = 0; i < 64; ++i)
        bytes[i] = std::uint8_t(i ^ 0xa5);
    seg.appendLineCopy(0x1000, bytes, 80);
    ASSERT_EQ(seg.lineCopies().size(), 1u);
    EXPECT_TRUE(seg.hasLineCopy(0x1000));
    EXPECT_FALSE(seg.hasLineCopy(0x1040));
    const LineCopy &copy = seg.lineCopies()[0];
    const std::vector<mem::EccWord> ecc = copy.eccWords();
    ASSERT_EQ(ecc.size(), 8u);
    for (std::size_t i = 0; i < 8; ++i) {
        auto d = mem::Secded::decode(ecc[i]);
        EXPECT_EQ(d.status, mem::EccStatus::Ok);
        std::uint64_t expect = 0;
        for (unsigned k = 0; k < 8; ++k)
            expect |= std::uint64_t(bytes[i * 8 + k]) << (8 * k);
        EXPECT_EQ(d.data, expect);
    }
}

TEST(LogSegment, ReopenClearsState)
{
    LogSegment seg;
    isa::ArchState start;
    seg.open(1, start, 0, 0);
    seg.appendLoad(0x100, 8, 1, 16);
    seg.open(2, start, 10, 100);
    EXPECT_EQ(seg.entries().size(), 0u);
    EXPECT_EQ(seg.bytesUsed(), 0u);
    EXPECT_EQ(seg.id(), 2u);
    EXPECT_EQ(seg.startInstIndex(), 10u);
}

TEST(CheckpointAimd, AdditiveIncreaseCapsAtMax)
{
    CheckpointAimdParams params;
    CheckpointLengthController ctrl(params, true);
    EXPECT_EQ(ctrl.target(), params.initial);
    for (int i = 0; i < 1000; ++i)
        ctrl.onCleanCheckpoint();
    EXPECT_EQ(ctrl.target(), params.maxLength);
}

TEST(CheckpointAimd, ReductionTakesMinOfHalfAndObserved)
{
    CheckpointAimdParams params;
    CheckpointLengthController ctrl(params, true);
    // target 1000 -> halving wins when observed is larger.
    ctrl.onReduction(5000);
    EXPECT_EQ(ctrl.target(), 500u);
    // Observed wins when smaller than half.
    ctrl.onReduction(80);
    EXPECT_EQ(ctrl.target(), 80u);
    // Never below the floor.
    for (int i = 0; i < 20; ++i)
        ctrl.onReduction(1);
    EXPECT_EQ(ctrl.target(), params.minLength);
}

TEST(CheckpointAimd, ParaMedicStaysFixed)
{
    CheckpointAimdParams params;
    CheckpointLengthController ctrl(params, false);
    EXPECT_EQ(ctrl.target(), params.maxLength);
    ctrl.onReduction(10);
    ctrl.onCleanCheckpoint();
    EXPECT_EQ(ctrl.target(), params.maxLength);
}

TEST(VoltageController, DecreasesWhenClean)
{
    VoltageAimdParams params;
    VoltageController ctrl(params);
    double v0 = ctrl.target();
    ctrl.onCleanCheckpoint();
    EXPECT_DOUBLE_EQ(ctrl.target(), v0 - params.decreaseStep);
}

TEST(VoltageController, ErrorShrinksGapByRecoveryFactor)
{
    VoltageAimdParams params;
    VoltageController ctrl(params);
    for (int i = 0; i < 100; ++i)
        ctrl.onCleanCheckpoint();
    double v = ctrl.target();
    double gap = params.vSafe - v;
    ctrl.onError(v);
    EXPECT_NEAR(params.vSafe - ctrl.target(),
                gap * params.recoveryFactor, 1e-12);
}

TEST(VoltageController, TideMarkSlowsDescent)
{
    VoltageAimdParams params;
    VoltageController ctrl(params);
    for (int i = 0; i < 40; ++i)
        ctrl.onCleanCheckpoint();
    double v_err = ctrl.target();
    ctrl.onError(v_err);
    EXPECT_DOUBLE_EQ(ctrl.tideMark(), v_err);
    // Descend back to the tide mark; below it the step shrinks 8x.
    while (ctrl.target() > v_err)
        ctrl.onCleanCheckpoint();
    double before = ctrl.target();
    ctrl.onCleanCheckpoint();
    EXPECT_NEAR(before - ctrl.target(),
                params.decreaseStep / params.tideSlowFactor, 1e-12);
}

TEST(VoltageController, ConstantModeIgnoresTideMark)
{
    VoltageAimdParams params;
    params.dynamicDecrease = false;
    VoltageController ctrl(params);
    ctrl.onError(ctrl.target());
    double before = ctrl.target();
    ctrl.onCleanCheckpoint();
    EXPECT_NEAR(before - ctrl.target(), params.decreaseStep, 1e-12);
}

TEST(VoltageController, TideResetsAfterConfiguredErrors)
{
    VoltageAimdParams params;
    params.tideResetErrors = 5;
    VoltageController ctrl(params);
    for (int i = 0; i < 4; ++i)
        ctrl.onError(0.9);
    EXPECT_GT(ctrl.tideMark(), 0.0);
    ctrl.onError(0.9);  // fifth error: reset
    EXPECT_EQ(ctrl.tideMark(), 0.0);
    EXPECT_EQ(ctrl.errorsSinceReset(), 0u);
    EXPECT_EQ(ctrl.totalErrors(), 5u);
}

TEST(VoltageController, NeverBelowFloor)
{
    VoltageAimdParams params;
    VoltageController ctrl(params);
    for (int i = 0; i < 100000; ++i)
        ctrl.onCleanCheckpoint();
    EXPECT_GE(ctrl.target(), params.vMinAllowed);
}

TEST(Regulator, SlewLimitsTracking)
{
    Regulator reg(1.0, /*slew V/us=*/0.01);
    reg.setTarget(0.9, 0);
    // After 1 us only 0.01 V of the 0.1 V step is covered.
    EXPECT_NEAR(reg.voltageAt(ticksPerUs), 0.99, 1e-9);
    // After 10 us the target is reached and holds.
    EXPECT_NEAR(reg.voltageAt(10 * ticksPerUs), 0.9, 1e-9);
    EXPECT_NEAR(reg.voltageAt(20 * ticksPerUs), 0.9, 1e-9);
}

TEST(Regulator, TracksUpward)
{
    Regulator reg(0.8, 0.01);
    reg.setTarget(0.95, 0);
    EXPECT_NEAR(reg.voltageAt(5 * ticksPerUs), 0.85, 1e-9);
    EXPECT_NEAR(reg.voltageAt(100 * ticksPerUs), 0.95, 1e-9);
}

TEST(Dvfs, CompensatedFrequencyScalesBelowTarget)
{
    // At target: nominal.  Below target: proportional to V - Vt.
    EXPECT_DOUBLE_EQ(
        compensatedFrequency(3.2e9, 0.9, 0.9, 0.45), 3.2e9);
    EXPECT_DOUBLE_EQ(
        compensatedFrequency(3.2e9, 0.95, 0.9, 0.45), 3.2e9);
    double f = compensatedFrequency(3.2e9, 0.675, 0.9, 0.45);
    EXPECT_NEAR(f, 3.2e9 * 0.5, 1e3);
}

TEST(Scheduler, LowestFreeIdConcentrates)
{
    CheckerScheduler sched(4, SchedPolicy::LowestFreeId, 0);
    EXPECT_EQ(sched.allocate(0), 0);
    EXPECT_EQ(sched.allocate(0), 1);
    sched.release(0, 10);
    EXPECT_EQ(sched.allocate(20), 0);  // reuses the lowest id
    EXPECT_EQ(sched.busyCount(), 2u);
}

TEST(Scheduler, RoundRobinWaitsForNextInOrder)
{
    CheckerScheduler sched(3, SchedPolicy::RoundRobin, 0);
    EXPECT_EQ(sched.allocate(0), 0);
    EXPECT_EQ(sched.allocate(0), 1);
    EXPECT_EQ(sched.allocate(0), 2);
    EXPECT_EQ(sched.allocate(0), -1);   // full
    sched.release(1, 5);
    // Round-robin wants index 0 next; only index 1 is free.
    EXPECT_EQ(sched.allocate(6), -1);
    sched.release(0, 7);
    EXPECT_EQ(sched.allocate(8), 0);
}

TEST(Scheduler, WakeRatesReflectBusyTime)
{
    CheckerScheduler sched(2, SchedPolicy::LowestFreeId, 0);
    sched.allocate(0);       // checker 0 from t=0
    sched.release(0, 500);
    auto rates = sched.wakeRates(1000);
    EXPECT_NEAR(rates[0], 0.5, 1e-9);
    EXPECT_NEAR(rates[1], 0.0, 1e-9);
    EXPECT_EQ(sched.wakeEvents()[0], 1u);
}

TEST(Scheduler, OpenIntervalCountsTowardWakeRate)
{
    CheckerScheduler sched(2, SchedPolicy::LowestFreeId, 0);
    sched.allocate(200);
    auto rates = sched.wakeRates(1000);
    EXPECT_NEAR(rates[0], 0.8, 1e-9);
}

TEST(Scheduler, BootRotationDerangesPhysicalIds)
{
    CheckerScheduler a(16, SchedPolicy::LowestFreeId, 0);
    CheckerScheduler b(16, SchedPolicy::LowestFreeId, 5);
    EXPECT_EQ(a.physicalId(0), 0u);
    EXPECT_EQ(b.physicalId(0), 5u);
    EXPECT_EQ(b.physicalId(15), 4u);
}

/** Build a tiny program + segment pair for replay tests. */
struct ReplayFixture
{
    isa::Program prog;
    LogSegment seg;
    cpu::CheckerTiming timing;
    faults::FaultPlan emptyPlan;

    ReplayFixture()
    {
        using namespace isa;
        ProgramBuilder b("replay");
        constexpr XReg r1{1}, r2{2};
        b.ldi(r1, 0x1000);
        b.ld(r2, r1, 0);
        b.addi(r2, r2, 5);
        b.sd(r2, r1, 8);
        b.halt();
        b.data64(0x1000, 37);
        prog = b.build();

        // Execute on the main side to fill the log + end state.
        mem::SimpleMemory memory;
        ArchState state;
        loadProgram(prog, state, memory);
        seg.open(1, state, 0, 0);
        unsigned count = 0;
        for (;;) {
            ExecResult r = step(prog, state, memory);
            ++count;
            if (r.isLoad)
                seg.appendLoad(r.memAddr, r.memSize, r.loadValue, 16);
            if (r.isStore)
                seg.appendStore(r.memAddr, r.memSize, r.storeValue,
                                r.storeOld, 24);
            if (r.halted)
                break;
        }
        seg.close(state, count, 100);
    }
};

TEST(Replay, CleanSegmentVerifies)
{
    ReplayFixture f;
    auto out = replaySegment(f.prog, f.seg, 0, f.timing, f.emptyPlan,
                             16);
    EXPECT_FALSE(out.detected);
    EXPECT_EQ(out.reason, DetectReason::None);
    EXPECT_EQ(out.instructionsExecuted, f.seg.instCount());
    EXPECT_GT(out.totalCycles, 0u);
}

TEST(Replay, CorruptedStoreEntryDetectsAtStore)
{
    ReplayFixture f;
    // Flip a bit in the logged store value.
    LogSegment bad;
    bad.open(f.seg.id(), f.seg.startState(), 0, 0);
    for (const LogEntry &e : f.seg.entries()) {
        if (e.isLoad)
            bad.appendLoad(e.addr, e.size, e.value, 16);
        else
            bad.appendStore(e.addr, e.size, e.value ^ 1, e.oldValue,
                            24);
    }
    bad.close(f.seg.endState(), f.seg.instCount(), 100);
    auto out = replaySegment(f.prog, bad, 0, f.timing, f.emptyPlan,
                             16);
    EXPECT_TRUE(out.detected);
    EXPECT_EQ(out.reason, DetectReason::StoreMismatch);
}

TEST(Replay, CorruptedStartStateDetects)
{
    ReplayFixture f;
    LogSegment bad;
    isa::ArchState start = f.seg.startState();
    // Flip x5: never rewritten by the program, so the corruption
    // survives to the final state comparison.  (A flip in a register
    // the program immediately overwrites is a *masked* fault and is
    // legitimately undetectable.)
    start.flipBit(isa::RegCategory::Integer, 4, 3);
    bad.open(f.seg.id(), start, 0, 0);
    for (const LogEntry &e : f.seg.entries()) {
        if (e.isLoad)
            bad.appendLoad(e.addr, e.size, e.value, 16);
        else
            bad.appendStore(e.addr, e.size, e.value, e.oldValue, 24);
    }
    bad.close(f.seg.endState(), f.seg.instCount(), 100);
    auto out = replaySegment(f.prog, bad, 0, f.timing, f.emptyPlan,
                             16);
    EXPECT_TRUE(out.detected);
}

TEST(Replay, CorruptedEndStateDetectsAtFinalCompare)
{
    ReplayFixture f;
    LogSegment bad;
    bad.open(f.seg.id(), f.seg.startState(), 0, 0);
    for (const LogEntry &e : f.seg.entries()) {
        if (e.isLoad)
            bad.appendLoad(e.addr, e.size, e.value, 16);
        else
            bad.appendStore(e.addr, e.size, e.value, e.oldValue, 24);
    }
    isa::ArchState end = f.seg.endState();
    end.flipBit(isa::RegCategory::Float, 0, 0);
    bad.close(end, f.seg.instCount(), 100);
    auto out = replaySegment(f.prog, bad, 0, f.timing, f.emptyPlan,
                             16);
    EXPECT_TRUE(out.detected);
    EXPECT_EQ(out.reason, DetectReason::FinalStateMismatch);
}

TEST(Replay, RegisterFaultInjectionIsDetected)
{
    ReplayFixture f;
    faults::FaultConfig fc;
    fc.kind = faults::FaultKind::RegisterBitFlip;
    fc.rate = 1.0;  // every instruction
    fc.targetCategory = isa::RegCategory::Integer;
    faults::FaultPlan plan;
    plan.add(fc);
    auto out = replaySegment(f.prog, f.seg, 0, f.timing, plan, 16);
    EXPECT_TRUE(out.detected);
    EXPECT_GT(out.faultsInjected, 0u);
}

TEST(Replay, EveryArchBitFlipInStartStateIsDetected)
{
    // Property: any single corruption of the checker's starting
    // integer register file that feeds the computation is caught.
    ReplayFixture f;
    for (unsigned bit = 0; bit < 16; ++bit) {
        LogSegment bad;
        isa::ArchState start = f.seg.startState();
        start.flipBit(isa::RegCategory::Misc, 0, bit + 2);
        bad.open(1, start, 0, 0);
        for (const LogEntry &e : f.seg.entries()) {
            if (e.isLoad)
                bad.appendLoad(e.addr, e.size, e.value, 16);
            else
                bad.appendStore(e.addr, e.size, e.value, e.oldValue,
                                24);
        }
        bad.close(f.seg.endState(), f.seg.instCount(), 100);
        auto out = replaySegment(f.prog, bad, 0, f.timing,
                                 f.emptyPlan, 16);
        EXPECT_TRUE(out.detected) << "pc bit " << bit;
    }
}

} // namespace

namespace
{

using namespace paradox;
using namespace paradox::core;

TEST(LogSegment, ContinuityIdRecordsNextChecker)
{
    LogSegment seg;
    isa::ArchState start;
    seg.open(1, start, 0, 0);
    EXPECT_EQ(seg.nextCheckerId(), -1);
    seg.setNextCheckerId(5);
    EXPECT_EQ(seg.nextCheckerId(), 5);
}

TEST(SystemStatsDump, ContainsEveryRegisteredStat)
{
    auto w = paradox::workloads::build("bitcount", 1);
    SystemConfig config = SystemConfig::forMode(Mode::ParaDox);
    System system(config, w.program);
    system.setFaultPlan(paradox::faults::uniformPlan(1e-4, 3));
    RunLimits limits;
    limits.maxExecuted = 50'000'000;
    system.run(limits);
    std::ostringstream os;
    system.dumpStats(os);
    const std::string out = os.str();
    for (const char *key :
         {"system.rollbackNs", "system.wastedExecNs",
          "system.checkpointLength", "system.checkpointLengthHist",
          "system.evictionCuts", "system.capacityCuts",
          "system.targetCuts", "system.checkerWaitStalls",
          "system.voltage"}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
}

TEST(SystemHistogram, CheckpointLengthsPopulated)
{
    auto w = paradox::workloads::build("stream", 1);
    SystemConfig config = SystemConfig::forMode(Mode::ParaDox);
    System system(config, w.program);
    system.run();
    const auto &hist = system.checkpointLengthHistogram();
    EXPECT_GT(hist.count(), 0u);
    // Stream's segments are log-capacity-bound: well under the cap.
    EXPECT_LT(hist.percentile(0.99), 5000.0);
}

} // namespace
