/**
 * @file
 * Power/energy model tests: V^2 f scaling, checker gating, energy
 * integration, EDP, frequency-voltage relation and the per-workload
 * undervolt profiles.
 */

#include <gtest/gtest.h>

#include "power/power_model.hh"
#include "power/undervolt_data.hh"
#include "workloads/workload.hh"

namespace
{

using namespace paradox;
using namespace paradox::power;

TEST(PowerModel, NominalPointIsUnity)
{
    PowerModel model;
    EXPECT_NEAR(model.corePower(model.params().vNominal,
                                model.params().fNominal),
                1.0, 1e-12);
}

TEST(PowerModel, DynamicScalesWithVSquaredF)
{
    PowerModel model;
    const auto &p = model.params();
    double half_f = model.corePower(p.vNominal, p.fNominal / 2);
    // Halving f halves only the dynamic fraction.
    EXPECT_NEAR(half_f,
                p.dynamicFraction / 2 + (1 - p.dynamicFraction),
                1e-12);
    double low_v = model.corePower(p.vNominal * 0.9, p.fNominal);
    EXPECT_NEAR(low_v,
                p.dynamicFraction * 0.81 +
                    (1 - p.dynamicFraction) * 0.9,
                1e-12);
}

TEST(PowerModel, UndervoltSavesRoughlyTwentyPercent)
{
    // The paper's operating point: ~0.87 V vs a 0.98 V margined
    // baseline should save on the order of 20% of core power.
    PowerModel model;
    double saved = 1.0 - model.corePower(0.872, model.params().fNominal);
    EXPECT_GT(saved, 0.15);
    EXPECT_LT(saved, 0.30);
}

TEST(PowerModel, CheckerComplexBoundedByFivePercent)
{
    PowerModel model;
    EXPECT_DOUBLE_EQ(model.checkerPowerAllAwake(), 0.05);
    std::vector<double> all_awake(16, 1.0);
    EXPECT_NEAR(model.checkerPower(all_awake.data(), 16), 0.05,
                1e-12);
}

TEST(PowerModel, GatedCheckersCostOnlyResidual)
{
    PowerModel model;
    std::vector<double> gated(16, 0.0);
    double p = model.checkerPower(gated.data(), 16);
    EXPECT_NEAR(p, 0.05 * model.params().gatedResidual, 1e-12);
    std::vector<double> half(16, 0.0);
    for (int i = 0; i < 8; ++i)
        half[i] = 1.0;
    double ph = model.checkerPower(half.data(), 16);
    EXPECT_GT(ph, p);
    EXPECT_LT(ph, 0.05);
}

TEST(EnergyAccumulator, IntegratesPiecewise)
{
    PowerModel model;
    EnergyAccumulator acc(model);
    const auto &p = model.params();
    acc.addInterval(ticksPerMs, p.vNominal, p.fNominal, 0.0);
    EXPECT_NEAR(acc.energy(), 1.0 * 1e-3, 1e-12);
    EXPECT_NEAR(acc.averagePower(), 1.0, 1e-9);
    EXPECT_NEAR(acc.averageVoltage(), p.vNominal, 1e-12);

    acc.addInterval(ticksPerMs, 0.8, p.fNominal, 0.0);
    EXPECT_LT(acc.averagePower(), 1.0);
    EXPECT_LT(acc.averageVoltage(), p.vNominal);
    EXPECT_EQ(acc.elapsed(), 2 * ticksPerMs);
}

TEST(Edp, RatioBehaves)
{
    // Same power, double the time: EDP x4.
    EXPECT_NEAR(edpRatio(1.0, 2 * ticksPerMs, 1.0, ticksPerMs), 4.0,
                1e-9);
    // 20% less power at 5% more time: EDP ~0.88.
    double r = edpRatio(0.8, Tick(1.05 * ticksPerMs), 1.0, ticksPerMs);
    EXPECT_NEAR(r, 0.8 * 1.05 * 1.05, 1e-9);
}

TEST(FrequencyVoltage, LinearInHeadroom)
{
    FrequencyVoltageModel model;
    const auto &p = model.params();
    EXPECT_NEAR(model.frequencyAt(p.vNominal), p.fNominal, 1.0);
    EXPECT_NEAR(model.voltageFor(p.fNominal), p.vNominal, 1e-12);
    // Paper section VI-E: a 4.5% frequency increase needs ~0.019 V
    // above 0.872 V (threshold 0.45 V).
    double v_needed =
        model.voltageFor(model.frequencyAt(0.872) * 1.045) - 0.872;
    EXPECT_NEAR(v_needed, 0.019, 0.002);
}

TEST(UndervoltData, AllWorkloadsHaveProfiles)
{
    for (const auto &name : workloads::allNames()) {
        VoltageProfile profile = voltageProfile(name);
        EXPECT_GT(profile.vFloor, 0.6) << name;
        EXPECT_LT(profile.vFloor, profile.vFirstError) << name;
        EXPECT_LT(profile.vFirstError, vNominalMargined) << name;
    }
}

TEST(UndervoltData, UnknownWorkloadGetsGenericProfile)
{
    VoltageProfile profile = voltageProfile("no-such-workload");
    EXPECT_GT(profile.vFloor, 0.6);
}

TEST(UndervoltData, FpWorkloadsErrorEarlier)
{
    // FP-heavy workloads stress longer paths: higher first-error V.
    double fp = voltageProfile("milc").vFirstError;
    double integer = voltageProfile("mcf").vFirstError;
    EXPECT_GT(fp, integer);
}

TEST(UndervoltData, ErrorModelParamsMatchProfile)
{
    auto params = errorModelParams("bitcount");
    auto profile = voltageProfile("bitcount");
    EXPECT_DOUBLE_EQ(params.vFloor, profile.vFloor);
    EXPECT_DOUBLE_EQ(params.slope, profile.slope);
    EXPECT_DOUBLE_EQ(params.vNominal, vNominalMargined);
}

} // namespace
