/**
 * @file
 * Memory-system unit tests: backing memory, caches (LRU, write-back,
 * pinning, timestamps, MSHRs), DRAM timing and the stride prefetcher.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/hierarchy.hh"
#include "mem/memory.hh"
#include "mem/prefetcher.hh"
#include "mem/tlb.hh"
#include "sim/clock.hh"
#include "sim/rng.hh"

namespace
{

using namespace paradox;
using namespace paradox::mem;

TEST(SimpleMemory, ReadWriteAllSizes)
{
    SimpleMemory memory;
    memory.write(0x100, 8, 0x1122334455667788ULL);
    EXPECT_EQ(memory.read(0x100, 8), 0x1122334455667788ULL);
    EXPECT_EQ(memory.read(0x100, 4), 0x55667788u);
    EXPECT_EQ(memory.read(0x104, 4), 0x11223344u);
    EXPECT_EQ(memory.read(0x100, 2), 0x7788u);
    EXPECT_EQ(memory.read(0x100, 1), 0x88u);
}

TEST(SimpleMemory, CrossPageAccess)
{
    SimpleMemory memory;
    Addr addr = SimpleMemory::pageBytes - 4;
    memory.write(addr, 8, 0xaabbccddeeff0011ULL);
    EXPECT_EQ(memory.read(addr, 8), 0xaabbccddeeff0011ULL);
    EXPECT_EQ(memory.pageCount(), 2u);
}

TEST(SimpleMemory, UntouchedReadsZero)
{
    SimpleMemory memory;
    EXPECT_EQ(memory.read(0xdead000, 8), 0u);
}

TEST(SimpleMemory, WriteReturnsPreviousValue)
{
    SimpleMemory memory;
    EXPECT_EQ(memory.write(0x10, 8, 5), 0u);
    EXPECT_EQ(memory.write(0x10, 8, 9), 5u);
}

TEST(SimpleMemory, FingerprintIgnoresZeroPages)
{
    SimpleMemory a, b;
    a.write(0x100, 8, 42);
    b.write(0x100, 8, 42);
    b.read(0x999000, 8);           // no page materialized by read
    b.write(0x555000, 8, 1);
    b.write(0x555000, 8, 0);       // page exists but is all-zero
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    b.write(0x100, 1, 43);
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(SimpleMemory, BlockCopyRoundTrip)
{
    SimpleMemory memory;
    std::uint8_t in[64], out[64];
    for (unsigned i = 0; i < 64; ++i)
        in[i] = std::uint8_t(i * 3);
    memory.writeBlock(0x1000, in, 64);
    memory.readBlock(0x1000, out, 64);
    EXPECT_EQ(std::memcmp(in, out, 64), 0);
}

CacheParams
tinyCache(bool pinning = false)
{
    CacheParams p;
    p.name = "tiny";
    p.sizeBytes = 1024;  // 4 sets x 4 ways x 64 B
    p.assoc = 4;
    p.lineBytes = 64;
    p.hitCycles = 2;
    p.mshrs = 2;
    p.allowPinning = pinning;
    return p;
}

TEST(Cache, HitAfterMiss)
{
    Cache cache(tinyCache());
    auto r1 = cache.access(0x1000, false, 1);
    EXPECT_EQ(r1.outcome, CacheOutcome::Miss);
    auto r2 = cache.access(0x1000, false, 2);
    EXPECT_EQ(r2.outcome, CacheOutcome::Hit);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(Cache, SameLineDifferentWordsHit)
{
    Cache cache(tinyCache());
    cache.access(0x1000, false, 1);
    EXPECT_EQ(cache.access(0x1038, false, 2).outcome,
              CacheOutcome::Hit);
}

TEST(Cache, LruEvictsOldest)
{
    Cache cache(tinyCache());
    // 4 sets: lines mapping to set 0 are multiples of 256.
    cache.access(0x0000, false, 1);
    cache.access(0x0100, false, 2);
    cache.access(0x0200, false, 3);
    cache.access(0x0300, false, 4);
    cache.access(0x0000, false, 5);  // refresh first line
    cache.access(0x0400, false, 6);  // evicts 0x0100 (oldest)
    EXPECT_TRUE(cache.contains(0x0000));
    EXPECT_FALSE(cache.contains(0x0100));
}

TEST(Cache, DirtyVictimReportsWriteback)
{
    Cache cache(tinyCache());
    cache.access(0x0000, true, 1);
    cache.access(0x0100, false, 2);
    cache.access(0x0200, false, 3);
    cache.access(0x0300, false, 4);
    auto r = cache.access(0x0400, false, 5);
    EXPECT_EQ(r.outcome, CacheOutcome::Miss);
    EXPECT_TRUE(r.writebackDirty);
    EXPECT_EQ(r.writebackAddr, 0x0000u);
}

TEST(Cache, FullyPinnedSetBlocks)
{
    Cache cache(tinyCache(true));
    for (Addr a : {0x0000, 0x0100, 0x0200, 0x0300})
        cache.access(a, true, 1, /*pin_seg=*/7);
    auto r = cache.access(0x0400, false, 2);
    EXPECT_EQ(r.outcome, CacheOutcome::BlockedPinned);
    EXPECT_EQ(cache.pinnedBlocks(), 1u);
    EXPECT_EQ(cache.pinnedLineCount(), 4u);

    cache.unpinUpTo(7);
    auto r2 = cache.access(0x0400, false, 3);
    EXPECT_EQ(r2.outcome, CacheOutcome::Miss);
}

TEST(Cache, PinnedLinesSurviveEvictionPressure)
{
    Cache cache(tinyCache(true));
    cache.access(0x0000, true, 1, 3);   // pinned by segment 3
    cache.access(0x0100, false, 2);
    cache.access(0x0200, false, 3);
    cache.access(0x0300, false, 4);
    cache.access(0x0400, false, 5);     // must evict an unpinned way
    EXPECT_TRUE(cache.contains(0x0000));
}

TEST(Cache, PinTakesYoungestWriter)
{
    Cache cache(tinyCache(true));
    cache.access(0x0000, true, 1, 3);
    cache.access(0x0000, true, 2, 5);   // re-pinned by younger seg
    cache.unpinUpTo(3);                 // seg 3 verified
    // Still pinned by 5: filling the set then missing must block.
    cache.access(0x0100, true, 3, 5);
    cache.access(0x0200, true, 4, 5);
    cache.access(0x0300, true, 5, 5);
    EXPECT_EQ(cache.access(0x0400, false, 6).outcome,
              CacheOutcome::BlockedPinned);
    cache.unpinFrom(5);                 // rollback of segment 5
    EXPECT_EQ(cache.access(0x0400, false, 7).outcome,
              CacheOutcome::Miss);
}

TEST(Cache, LineStampTracksCheckpoint)
{
    Cache cache(tinyCache(true));
    auto r1 = cache.access(0x0000, true, 1, noPin, /*stamp=*/10);
    EXPECT_FALSE(r1.lineStampMatched);
    auto r2 = cache.access(0x0000, true, 2, noPin, 10);
    EXPECT_TRUE(r2.lineStampMatched);   // same checkpoint: no copy
    auto r3 = cache.access(0x0000, true, 3, noPin, 11);
    EXPECT_FALSE(r3.lineStampMatched);  // new checkpoint: copy again
}

TEST(Cache, MshrLimitsDelayBursts)
{
    Cache cache(tinyCache());
    // Two MSHRs: the third overlapping miss must start later.
    Tick t1 = cache.reserveMshr(100, 200);
    Tick t2 = cache.reserveMshr(100, 200);
    Tick t3 = cache.reserveMshr(100, 200);
    EXPECT_EQ(t1, 100u);
    EXPECT_EQ(t2, 100u);
    EXPECT_EQ(t3, 200u);
}

TEST(Cache, FillInstallsWithoutDemandStats)
{
    Cache cache(tinyCache());
    cache.fill(0x1000, 5);
    EXPECT_TRUE(cache.contains(0x1000));
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_EQ(cache.access(0x1000, false, 6).outcome,
              CacheOutcome::Hit);
}

TEST(Dram, RowHitIsCheaperThanConflict)
{
    Dram dram;
    Tick first = dram.access(0x0, false, 0);        // row miss
    Tick hit = dram.access(0x40, false, first) - first;  // same row
    // Different row, same bank under the XOR-folded mapping:
    // row_index 72 folds to (72 ^ 9 ^ 1) % 8 == 0, like row_index 0.
    Tick start = dram.access(0x40, false, 0);
    Tick conflict =
        dram.access(Addr(72) * 8192, false, start) - start;
    EXPECT_LT(hit, conflict);
    EXPECT_GE(dram.rowHits(), 1u);
    EXPECT_GE(dram.rowConflicts(), 1u);
}

TEST(Dram, LatencyValuesMatchTimingParameters)
{
    Dram dram;
    // Row hit: tCL + burst at 800 MHz -> (11 + 4) * 1.25 ns.
    EXPECT_EQ(dram.rowHitLatency(), Tick(15 * 1250000));
    EXPECT_EQ(dram.rowConflictLatency(), Tick(37 * 1250000));
}

TEST(Dram, BankOccupancySerializes)
{
    Dram dram;
    Tick a = dram.access(0x0, false, 0);
    // Immediate second access to the same bank cannot start before
    // the first completes.
    Tick b = dram.access(0x40, false, 0);
    EXPECT_GE(b, a);
}

TEST(Prefetcher, ConfirmedStrideIssues)
{
    StridePrefetcher pf;
    Addr pc = 0x44;
    EXPECT_FALSE(pf.observe(pc, 0x1000).has_value());
    EXPECT_FALSE(pf.observe(pc, 0x1040).has_value());  // stride seen
    auto p1 = pf.observe(pc, 0x1080);
    auto p2 = pf.observe(pc, 0x10c0);
    ASSERT_TRUE(p2.has_value());
    EXPECT_EQ(*p2, 0x10c0u + 2 * 0x40u);
    (void)p1;
    EXPECT_GT(pf.issued(), 0u);
}

TEST(Prefetcher, IrregularPatternStaysQuiet)
{
    StridePrefetcher pf;
    Rng rng(5);
    for (int i = 0; i < 200; ++i)
        EXPECT_FALSE(pf.observe(0x44, rng.next() & 0xfffff)
                         .has_value());
}

TEST(Hierarchy, L1HitFastL2SlowerDramSlowest)
{
    ClockDomain clock(3.2e9);
    HierarchyParams params;
    params.prefetchEnabled = false;
    CacheHierarchy h(params, clock);

    auto miss = h.dataAccess(0x10000, 0, false, 0);
    EXPECT_FALSE(miss.l1Hit);
    auto hit = h.dataAccess(0x10000, 0, false, miss.completeAt);
    EXPECT_TRUE(hit.l1Hit);
    Tick hit_lat = hit.completeAt - miss.completeAt;
    Tick miss_lat = miss.completeAt;
    EXPECT_LT(hit_lat, miss_lat);
    EXPECT_EQ(hit_lat, clock.cyclesToTicks(2));
}

TEST(Hierarchy, SegmentVerifiedReleasesPins)
{
    ClockDomain clock(3.2e9);
    HierarchyParams params;
    // Shrink the L1D so one segment can pin a whole set.
    params.l1d.sizeBytes = 1024;
    params.l1d.assoc = 4;
    CacheHierarchy h(params, clock);

    // Pin all four ways of set 0 under segment 9.
    for (Addr a : {0x0000, 0x0100, 0x0200, 0x0300})
        h.dataAccess(a, 0, true, 0, /*pin_seg=*/9, /*stamp=*/9);
    auto blocked = h.dataAccess(0x0400, 0, true, 10, 9, 9);
    EXPECT_TRUE(blocked.blockedPinned);

    h.segmentVerified(9);
    auto ok = h.dataAccess(0x0400, 0, true, 20, 10, 10);
    EXPECT_FALSE(ok.blockedPinned);
}

TEST(Hierarchy, NeedsLineCopyOncePerCheckpoint)
{
    ClockDomain clock(3.2e9);
    CacheHierarchy h(HierarchyParams{}, clock);
    auto w1 = h.dataAccess(0x5000, 0, true, 0, 1, /*stamp=*/1);
    EXPECT_TRUE(w1.needsLineCopy);
    auto w2 = h.dataAccess(0x5008, 0, true, 1, 1, 1);
    EXPECT_FALSE(w2.needsLineCopy);   // same line, same checkpoint
    auto w3 = h.dataAccess(0x5008, 0, true, 2, 2, 2);
    EXPECT_TRUE(w3.needsLineCopy);    // next checkpoint
}

TEST(Hierarchy, InstFetchUsesL1I)
{
    ClockDomain clock(3.2e9);
    CacheHierarchy h(HierarchyParams{}, clock);
    Tick first = h.instFetch(0x0, 0);
    Tick second = h.instFetch(0x4, first) - first;
    EXPECT_LT(second, first);
    EXPECT_EQ(second, clock.cyclesToTicks(1));
}

} // namespace

namespace
{

using paradox::mem::Tlb;
using paradox::mem::TlbParams;
using paradox::mem::Translation;

TEST(TlbTest, LinearMappingAndHitAfterMiss)
{
    Tlb tlb(TlbParams{}, 0x100000000ULL);
    Translation first = tlb.translate(0x4000);
    EXPECT_EQ(first.paddr, 0x100004000ULL);
    EXPECT_FALSE(first.tlbHit);
    EXPECT_EQ(first.extraCycles, tlb.params().walkCycles);

    Translation second = tlb.translate(0x4008);  // same page
    EXPECT_TRUE(second.tlbHit);
    EXPECT_EQ(second.extraCycles, 0u);
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(TlbTest, CapacityEvictsLru)
{
    TlbParams params;
    params.entries = 8;
    params.assoc = 2;  // 4 sets
    Tlb tlb(params, 0);
    // Three pages mapping to set 0 (vpn % 4 == 0): two fit, third
    // evicts the least recently used.
    tlb.translate(0 * 4096);
    tlb.translate(4 * 4096);
    tlb.translate(0 * 4096);            // refresh page 0
    tlb.translate(8 * 4096);            // evicts page 4
    EXPECT_TRUE(tlb.translate(0 * 4096).tlbHit);
    EXPECT_FALSE(tlb.translate(4 * 4096).tlbHit);
}

TEST(TlbTest, FlushDropsEverything)
{
    Tlb tlb(TlbParams{}, 0);
    tlb.translate(0x1000);
    tlb.flush();
    EXPECT_FALSE(tlb.translate(0x1000).tlbHit);
}

TEST(TlbTest, PhysicalIsSideEffectFree)
{
    Tlb tlb(TlbParams{}, 0x5000);
    EXPECT_EQ(tlb.physical(0x1234), 0x6234u);
    EXPECT_EQ(tlb.misses(), 0u);
    EXPECT_EQ(tlb.hits(), 0u);
}

} // namespace
