/**
 * @file
 * Memory-dependence analysis and effect-summary tests: the alias
 * oracle's three verdicts on synthetic programs, golden diagnostics
 * for the "memdep" lint pass, per-run effect summaries of the
 * decoded image, the pin between the analysis-side worst-case log
 * byte bounds and the core-side exact arithmetic (core/logbytes.hh),
 * and -- the property the superblock gate's soundness rests on -- a
 * randomized sweep over all 21 registered workloads checking that
 * the bytes a fault-free decoded execution actually logs per run
 * instance never exceed the static tail bound, and that the static
 * load/store counts are exact.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/ai.hh"
#include "analysis/cfg.hh"
#include "analysis/effects.hh"
#include "analysis/linter.hh"
#include "analysis/memdep.hh"
#include "core/logbytes.hh"
#include "isa/builder.hh"
#include "isa/decoded.hh"
#include "isa/decoded_run.hh"
#include "isa/executor.hh"
#include "mem/memory.hh"
#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace
{

using namespace paradox;
using namespace paradox::isa;
using namespace paradox::analysis;

constexpr XReg r0{0}, r1{1}, r2{2}, r3{3}, r4{4};

/** Count diagnostics in @p report with machine code @p code. */
std::size_t
countCode(const Report &report, const std::string &code)
{
    return std::size_t(std::count_if(
        report.diags.begin(), report.diags.end(),
        [&](const Diagnostic &d) { return d.code == code; }));
}

/** First diagnostic with @p code, or nullptr. */
const Diagnostic *
findCode(const Report &report, const std::string &code)
{
    for (const auto &d : report.diags)
        if (d.code == code)
            return &d;
    return nullptr;
}

/** Lint with the interval and memory-dependence passes enabled. */
Report
lintMemdep(ProgramBuilder &b)
{
    Options opts;
    opts.ranges = true;
    opts.memdep = true;
    return Linter(opts).lint(b.build());
}

/** The full static pipeline under one roof, kept alive together. */
struct Pipeline
{
    Program prog;
    Cfg cfg;
    std::vector<bool> reachable;
    IntervalAnalysis ai;
    Options opts;
    MemDep md;

    explicit Pipeline(Program p)
        : prog(std::move(p)), cfg(Cfg::build(prog)),
          reachable(cfg.reachableBlocks()),
          ai(IntervalAnalysis::run(prog, cfg, reachable)),
          md(MemDep::run(Context{prog, cfg, reachable, opts}, ai))
    {
    }

    /** The access descriptor at instruction index @p idx. */
    const MemAccess &
    at(std::size_t idx) const
    {
        for (const auto &a : md.accesses())
            if (a.index == idx)
                return a;
        ADD_FAILURE() << "no access at index " << idx;
        static MemAccess none;
        return none;
    }
};

// ---------------------------------------------------------------------
// Alias oracle
// ---------------------------------------------------------------------

TEST(MemDepOracle, ConstantAddressesSeparateAndCoincide)
{
    ProgramBuilder b("const-alias");
    b.footprint(0x1000, 64, "buf");
    b.ldi(r1, 0x1000);
    b.ld(r2, r1, 0);   // 1: [0x1000, 0x1008)
    b.ld(r3, r1, 8);   // 2: [0x1008, 0x1010)
    b.ld(r4, r1, 0);   // 3: [0x1000, 0x1008)
    b.halt();
    const Pipeline p(b.build());
    ASSERT_EQ(p.md.accesses().size(), 3u);
    EXPECT_EQ(p.md.alias(p.at(1), p.at(2)), AliasKind::NoAlias);
    EXPECT_EQ(p.md.alias(p.at(1), p.at(3)), AliasKind::MustAlias);
    EXPECT_EQ(p.md.alias(p.at(2), p.at(3)), AliasKind::NoAlias);
}

TEST(MemDepOracle, SymbolicBaseUsesDisplacements)
{
    // r1 is loaded from memory, so its interval is unbounded: only
    // the block-local symbolic base (same register, same definition)
    // can prove anything about these pairs.
    ProgramBuilder b("sym-alias");
    b.footprint(0x1000, 64, "buf");
    b.ldi(r1, 0x1000);
    b.ld(r1, r1, 16);  // 1: r1 := unknown
    b.ld(r2, r1, 0);   // 2
    b.ld(r3, r1, 8);   // 3: disjoint displacement vs 2
    b.ld(r4, r1, 0);   // 4: same displacement and size as 2
    b.sb(r2, r1, 0);   // 5: 1 byte inside 2's extent
    b.halt();
    const Pipeline p(b.build());
    EXPECT_EQ(p.md.alias(p.at(2), p.at(3)), AliasKind::NoAlias);
    EXPECT_EQ(p.md.alias(p.at(2), p.at(4)), AliasKind::MustAlias);
    EXPECT_EQ(p.md.alias(p.at(2), p.at(5)), AliasKind::MustAlias);
    EXPECT_EQ(p.md.alias(p.at(3), p.at(5)), AliasKind::NoAlias);
}

TEST(MemDepOracle, RedefinedBaseDemotesToMay)
{
    // After r1 is redefined the two accesses share neither a symbolic
    // base epoch nor a bounded interval: nothing is provable.
    ProgramBuilder b("epoch-alias");
    b.footprint(0x1000, 64, "buf");
    b.ldi(r1, 0x1000);
    b.ld(r1, r1, 16);  // 1: r1 := unknown
    b.ld(r2, r1, 0);   // 2
    b.addi(r1, r1, 8); // new epoch for r1
    b.ld(r3, r1, 0);   // 4
    b.halt();
    const Pipeline p(b.build());
    EXPECT_EQ(p.md.alias(p.at(2), p.at(4)), AliasKind::MayAlias);
}

TEST(MemDepOracle, PairCountsCensusMatchesVerdicts)
{
    ProgramBuilder b("census");
    b.footprint(0x1000, 64, "buf");
    b.ldi(r1, 0x1000);
    b.ld(r2, r1, 0);
    b.ld(r3, r1, 8);
    b.ld(r4, r1, 0);
    b.halt();
    const Pipeline p(b.build());
    const MemDep::PairCounts pc = p.md.pairCounts();
    EXPECT_EQ(pc.no, 2u);
    EXPECT_EQ(pc.may, 0u);
    EXPECT_EQ(pc.must, 1u);
}

// ---------------------------------------------------------------------
// Golden lint diagnostics
// ---------------------------------------------------------------------

TEST(MemDepLint, RedundantLoadIsInfo)
{
    ProgramBuilder b("redundant");
    b.footprint(0x1000, 64, "buf");
    b.ldi(r1, 0x1000);
    b.ld(r2, r1, 0);
    b.ld(r3, r1, 0);
    b.add(r2, r2, r3);
    b.sd(r2, r1, 8);
    b.halt();
    const Report report = lintMemdep(b);
    ASSERT_EQ(countCode(report, "redundant-load"), 1u)
        << report.toText();
    const Diagnostic *d = findCode(report, "redundant-load");
    EXPECT_EQ(d->severity, Severity::Info);
    EXPECT_EQ(d->pass, "memdep");
    EXPECT_EQ(d->index, 2u);
}

TEST(MemDepLint, InterveningStoreBlocksRedundantLoad)
{
    ProgramBuilder b("not-redundant");
    b.footprint(0x1000, 64, "buf");
    b.ldi(r1, 0x1000);
    b.ld(r2, r1, 0);
    b.sd(r0, r1, 0);   // clobbers the loaded bytes
    b.ld(r3, r1, 0);
    b.add(r2, r2, r3);
    b.sd(r2, r1, 8);
    b.halt();
    const Report report = lintMemdep(b);
    EXPECT_EQ(countCode(report, "redundant-load"), 0u)
        << report.toText();
}

TEST(MemDepLint, DeadMemoryStoreIsWarning)
{
    ProgramBuilder b("dead-store");
    b.footprint(0x1000, 64, "buf");
    b.ldi(r1, 0x1000);
    b.ldi(r2, 7);
    b.sd(r2, r1, 0);   // 2: fully overwritten below, never read
    b.sd(r0, r1, 0);
    b.halt();
    const Report report = lintMemdep(b);
    ASSERT_EQ(countCode(report, "dead-memory-store"), 1u)
        << report.toText();
    const Diagnostic *d = findCode(report, "dead-memory-store");
    EXPECT_EQ(d->severity, Severity::Warning);
    EXPECT_EQ(d->pass, "memdep");
    EXPECT_EQ(d->index, 2u);
}

TEST(MemDepLint, InterveningLoadKeepsStoreLive)
{
    ProgramBuilder b("live-store");
    b.footprint(0x1000, 64, "buf");
    b.ldi(r1, 0x1000);
    b.ldi(r2, 7);
    b.sd(r2, r1, 0);
    b.ld(r3, r1, 0);   // reads the stored bytes first
    b.sd(r3, r1, 0);
    b.halt();
    const Report report = lintMemdep(b);
    EXPECT_EQ(countCode(report, "dead-memory-store"), 0u)
        << report.toText();
}

TEST(MemDepLint, MixedGranularityOverlapIsWarning)
{
    ProgramBuilder b("mixed");
    b.footprint(0x1000, 64, "buf");
    b.ldi(r1, 0x1000);
    b.ldi(r2, 7);
    b.sd(r2, r1, 0);   // 8 bytes ...
    b.sb(r2, r1, 0);   // ... then 1 byte inside them
    b.halt();
    const Report report = lintMemdep(b);
    ASSERT_EQ(countCode(report, "always-overlapping-access"), 1u)
        << report.toText();
    const Diagnostic *d =
        findCode(report, "always-overlapping-access");
    EXPECT_EQ(d->severity, Severity::Warning);
    EXPECT_EQ(d->pass, "memdep");
}

TEST(MemDepLint, AllWorkloadsStayWerrorCleanWithMemdep)
{
    // The CI gate runs `isa_lint --all --ranges --memdep --Werror`:
    // no registered workload may produce a memdep warning.
    Options opts;
    opts.ranges = true;
    opts.memdep = true;
    const Linter linter(opts);
    for (const auto &name : workloads::allNames()) {
        const workloads::Workload w = workloads::build(name, 1);
        const Report report = linter.lint(w.program);
        for (const auto &d : report.diags) {
            if (d.pass == "memdep") {
                EXPECT_EQ(d.severity, Severity::Info)
                    << name << ": " << d.toString();
            }
        }
    }
}

// ---------------------------------------------------------------------
// Effect summaries
// ---------------------------------------------------------------------

TEST(EffectSummary, StraightLineRunBounds)
{
    ProgramBuilder b("straight");
    b.footprint(0x1000, 64, "buf");
    b.ldi(r1, 0x1000);
    b.ld(r2, r1, 0);
    b.sd(r2, r1, 8);
    b.halt();
    const Program prog = b.build();
    const auto dp = DecodedProgram::get(prog);
    const EffectParams p;  // 16/16/8/80, 64-byte lines, ParaDox mode
    const EffectSummary es = EffectSummary::build(*dp, p);

    ASSERT_EQ(es.runs().size(), 1u);
    const RunSummary &rs = es.runs()[0];
    EXPECT_EQ(rs.start, 0u);
    EXPECT_EQ(rs.len, 4u);
    EXPECT_EQ(rs.loads, 1u);
    EXPECT_EQ(rs.stores, 1u);
    // load entry + (store entry + two line copies): 16 + 176.
    EXPECT_EQ(rs.logBoundBytes, 192u);
    EXPECT_EQ(es.tailBound(0), 192u);
    EXPECT_EQ(es.tailBound(1), 192u);
    EXPECT_EQ(es.tailBound(2), 176u);
    EXPECT_EQ(es.tailBound(3), 0u);
    EXPECT_EQ(es.uopBound(1), 16u);
    EXPECT_EQ(es.uopBound(2), 176u);
    EXPECT_EQ(es.maxRunBytes(), 192u);
    EXPECT_EQ(es.maxUopBytes(), 176u);
    EXPECT_EQ(es.staticLoads(), 1u);
    EXPECT_EQ(es.staticStores(), 1u);
    EXPECT_EQ(es.decodedUops(), dp->size());
    EXPECT_EQ(es.decodedHash(), dp->contentHash());
}

TEST(EffectSummary, RunsPartitionTheImage)
{
    ProgramBuilder b("loop");
    b.footprint(0x1000, 64, "buf");
    b.ldi(r1, 0x1000);
    b.ldi(r2, 4);
    b.label("top");
    b.ld(r3, r1, 0);
    b.sd(r3, r1, 8);
    b.addi(r2, r2, -1);
    b.bne(r2, r0, "top");
    b.halt();
    const Program prog = b.build();
    const auto dp = DecodedProgram::get(prog);
    const EffectSummary es = EffectSummary::build(*dp, EffectParams{});

    // Runs tile [0, size) exactly once each.
    std::uint64_t covered = 0, loads = 0, stores = 0;
    for (const RunSummary &rs : es.runs()) {
        EXPECT_EQ(rs.start, covered);
        covered += rs.len;
        loads += rs.loads;
        stores += rs.stores;
    }
    EXPECT_EQ(covered, dp->size());
    EXPECT_EQ(loads, es.staticLoads());
    EXPECT_EQ(stores, es.staticStores());
    // The mid-run tail bound is the run bound minus the prefix.
    EXPECT_EQ(es.tailBound(2), es.runs()[0].logBoundBytes);
    EXPECT_EQ(es.tailBound(3),
              es.runs()[0].logBoundBytes - es.uopBound(2));
}

// ---------------------------------------------------------------------
// Shared log-byte arithmetic (core/logbytes.hh vs analysis bounds)
// ---------------------------------------------------------------------

/** The three rollback shapes a SystemConfig can take. */
std::vector<EffectParams>
paramShapes()
{
    std::vector<EffectParams> shapes;
    EffectParams line;  // ParaDox: line-granularity rollback
    shapes.push_back(line);
    EffectParams word = line;  // word-granularity undo log
    word.lineGranularityRollback = false;
    shapes.push_back(word);
    EffectParams detect = word;  // DetectionOnly: no rollback data
    detect.rollbackSupported = false;
    shapes.push_back(detect);
    return shapes;
}

TEST(LogBytes, StaticStoreBoundIsExactWorstCaseOverAlignments)
{
    for (EffectParams p : paramShapes()) {
        for (unsigned lineBytes : {8u, 16u, 64u, 128u}) {
            p.lineBytes = lineBytes;
            for (unsigned size : {1u, 2u, 4u, 8u}) {
                std::size_t brute = 0;
                for (std::uint64_t align = 0; align < lineBytes;
                     ++align)
                    brute = std::max(
                        brute,
                        core::storeLogBytes(
                            p, 0x10000 + align, size,
                            [](std::uint64_t) { return false; }));
                // The static bound is sound AND tight: the exact
                // cost with no line copied yet reaches it at the
                // worst alignment and never exceeds it.
                EXPECT_EQ(brute, storeLogBound(size, p))
                    << "line=" << lineBytes << " size=" << size
                    << " lineGran=" << p.lineGranularityRollback
                    << " rollback=" << p.rollbackSupported;
            }
        }
    }
}

TEST(LogBytes, WorstUopBoundMatchesLegacyGateFormula)
{
    for (EffectParams p : paramShapes()) {
        for (unsigned lineBytes : {8u, 16u, 64u, 128u}) {
            p.lineBytes = lineBytes;
            // The formula the pre-effect-summary superblock gate
            // inlined: max(load entry, store entry + two line copies
            // | + old value | nothing).
            std::size_t store_worst = p.storeEntryBytes;
            if (p.lineGranularityRollback)
                store_worst += 2 * std::size_t(p.lineCopyBytes);
            else if (p.rollbackSupported)
                store_worst += p.storeOldValueBytes;
            const std::size_t legacy =
                std::max<std::size_t>(p.loadEntryBytes, store_worst);
            EXPECT_EQ(core::worstUopLogBytes(p), legacy)
                << "line=" << lineBytes;
        }
    }
}

TEST(LogBytes, EffectParamsMirrorSystemConfig)
{
    const core::SystemConfig cfg =
        core::SystemConfig::forMode(core::Mode::ParaDox);
    const EffectParams p = core::logEffectParams(cfg, 64);
    EXPECT_EQ(p.loadEntryBytes, cfg.log.loadEntryBytes);
    EXPECT_EQ(p.storeEntryBytes, cfg.log.storeEntryBytes);
    EXPECT_EQ(p.storeOldValueBytes, cfg.log.storeOldValueBytes);
    EXPECT_EQ(p.lineCopyBytes, cfg.log.lineCopyBytes);
    EXPECT_EQ(p.lineBytes, 64u);
    EXPECT_EQ(p.lineGranularityRollback, cfg.lineGranularityRollback);
    EXPECT_EQ(p.rollbackSupported, cfg.rollbackSupported);
}

// ---------------------------------------------------------------------
// Property: dynamic log bytes never exceed the static bounds
// ---------------------------------------------------------------------

/** One committed load/store of a recorded run instance. */
struct MemEv
{
    bool isStore;
    Addr addr;
    unsigned size;
};

/** One dynamic run instance: a straight-line stretch of commits. */
struct Instance
{
    std::uint32_t start = 0;      //!< first committed micro-op index
    std::uint32_t committed = 0;  //!< micro-ops committed in it
    std::vector<MemEv> mems;
};

/** Execute @p w fault-free and slice the commits into run instances. */
std::vector<Instance>
recordInstances(const workloads::Workload &w, std::uint64_t maxUops)
{
    const auto dp = DecodedProgram::get(w.program);
    ArchState state;
    mem::SimpleMemory memory;
    loadProgram(w.program, state, memory);

    std::vector<Instance> out;
    bool atStart = true;
    std::uint64_t total = 0;
    runDecoded(*dp, state, memory, maxUops,
               [&](const CommitRecord &r) {
                   const std::uint32_t idx =
                       std::uint32_t(r.pc / instBytes);
                   if (atStart) {
                       out.push_back(Instance{idx, 0, {}});
                       atStart = false;
                   }
                   Instance &cur = out.back();
                   ++cur.committed;
                   if (r.isLoad || r.isStore)
                       cur.mems.push_back(
                           MemEv{r.isStore, r.memAddr, r.memSize});
                   if (dp->at(idx).runLen == 1)
                       atStart = true;  // control transfer or HALT
                   ++total;
                   return !r.halted && total < maxUops;
               });
    return out;
}

/**
 * Check every recorded instance against the effect summary built
 * with @p p: the exact bytes the instance logs (no line copied yet
 * at instance entry -- the worst checkpoint state) never exceed the
 * static tail bound of its first micro-op, and a full execution of
 * a static run commits exactly the counted loads and stores.
 */
void
checkInstances(const std::string &name, const DecodedProgram &dp,
               const EffectParams &p,
               const std::vector<Instance> &instances)
{
    const EffectSummary es = EffectSummary::build(dp, p);
    std::map<std::uint32_t, const RunSummary *> byStart;
    for (const RunSummary &rs : es.runs())
        byStart[rs.start] = &rs;

    std::uint64_t checked = 0;
    for (const Instance &in : instances) {
        std::set<std::uint64_t> copied;
        std::uint64_t actual = 0, loads = 0, stores = 0;
        for (const MemEv &ev : in.mems) {
            if (ev.isStore) {
                actual += core::storeLogBytes(
                    p, ev.addr, ev.size, [&](std::uint64_t line) {
                        return copied.count(line) != 0;
                    });
                if (p.lineGranularityRollback) {
                    const std::uint64_t lb = p.lineBytes;
                    const std::uint64_t first = ev.addr & ~(lb - 1);
                    const std::uint64_t last =
                        (ev.addr + ev.size - 1) & ~(lb - 1);
                    for (std::uint64_t l = first; l <= last; l += lb)
                        copied.insert(l);
                }
                ++stores;
            } else {
                actual += p.loadEntryBytes;
                ++loads;
            }
        }
        const std::uint64_t bound = es.tailBound(in.start);
        if (actual > bound) {
            ADD_FAILURE()
                << name << ": instance at uop " << in.start
                << " logged " << actual << " bytes > static bound "
                << bound;
            return;
        }
        const auto it = byStart.find(in.start);
        if (it != byStart.end() && in.committed == it->second->len) {
            EXPECT_EQ(loads, it->second->loads)
                << name << ": run at " << in.start;
            EXPECT_EQ(stores, it->second->stores)
                << name << ": run at " << in.start;
        }
        ++checked;
    }
    EXPECT_GT(checked, 0u) << name;
}

TEST(MemDepProperty, DynamicBytesNeverExceedStaticBounds)
{
    // Fixed seed: the randomized part is the log geometry, drawn
    // once per workload on top of the production shape.
    Rng rng(0x3e3d3e9ULL);
    for (const auto &name : workloads::allNames()) {
        const workloads::Workload w = workloads::build(name, 1);
        const auto dp = DecodedProgram::get(w.program);
        const std::vector<Instance> instances =
            recordInstances(w, 120000);

        // Static census: the summary counts every load/store uop.
        std::uint64_t loads = 0, stores = 0;
        for (const MicroOp &u : dp->uops()) {
            loads += u.isLoad ? 1 : 0;
            stores += u.isStore ? 1 : 0;
        }
        const EffectSummary prod =
            EffectSummary::build(*dp, EffectParams{});
        EXPECT_EQ(prod.staticLoads(), loads) << name;
        EXPECT_EQ(prod.staticStores(), stores) << name;

        // Production geometry, then a randomized one.
        checkInstances(name, *dp, EffectParams{}, instances);

        EffectParams fuzz;
        fuzz.loadEntryBytes = 8 + unsigned(rng.nextBounded(25));
        fuzz.storeEntryBytes = 8 + unsigned(rng.nextBounded(25));
        fuzz.storeOldValueBytes = 4 + unsigned(rng.nextBounded(13));
        fuzz.lineCopyBytes = 16 + unsigned(rng.nextBounded(113));
        fuzz.lineBytes = 1u << (3 + rng.nextBounded(5));  // 8..128
        fuzz.lineGranularityRollback = rng.chance(0.7);
        fuzz.rollbackSupported = rng.chance(0.8);
        checkInstances(name, *dp, fuzz, instances);
    }
}

} // namespace
