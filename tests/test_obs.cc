/**
 * @file
 * Tests for the observability subsystem (src/obs): sink semantics,
 * both serializations round-tripped through the reader, the metrics
 * sampler, and end-to-end determinism of a traced system run.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <sstream>
#include <thread>

#include "core/system.hh"
#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "obs/trace.hh"
#include "obs/trace_reader.hh"
#include "obs/trace_writer.hh"
#include "sim/stats.hh"
#include "workloads/workload.hh"

namespace
{

using namespace paradox;

TEST(TraceSink, RecordsTypedEvents)
{
    obs::TraceSink sink;
    obs::TrackId t0 = sink.addTrack("main");
    obs::TrackId t1 = sink.addTrack("checker/0");
    EXPECT_EQ(t0, 0u);
    EXPECT_EQ(t1, 1u);

    sink.begin(t0, "fill", 100, 7);
    sink.end(t0, "fill", 250, 7);
    sink.complete(t1, "check", 250, 900, 7, "store-mismatch");
    sink.instant(t1, "detect", 1150);
    sink.counter(t0, "voltage", 1200, 0.98);

    ASSERT_EQ(sink.events().size(), 5u);
    EXPECT_EQ(sink.events()[0].phase, obs::Phase::Begin);
    EXPECT_EQ(sink.events()[2].dur, 900u);
    EXPECT_STREQ(sink.events()[2].detail, "store-mismatch");
    EXPECT_EQ(sink.events()[2].id, 7u);
    EXPECT_DOUBLE_EQ(sink.events()[4].value, 0.98);
    EXPECT_EQ(sink.dropped(), 0u);
}

TEST(TraceSink, DisabledSinkRecordsNothing)
{
    obs::TraceSink sink;
    obs::TrackId t = sink.addTrack("main");
    sink.setEnabled(false);
    sink.instant(t, "detect", 10);
    sink.complete(t, "check", 0, 5);
    EXPECT_TRUE(sink.events().empty());
    EXPECT_EQ(sink.dropped(), 0u);

    sink.setEnabled(true);
    sink.instant(t, "detect", 20);
    EXPECT_EQ(sink.events().size(), 1u);
}

TEST(TraceSink, OverflowCountsDroppedEvents)
{
    obs::TraceSink sink(2);
    obs::TrackId t = sink.addTrack("main");
    sink.instant(t, "a", 1);
    sink.instant(t, "b", 2);
    sink.instant(t, "c", 3);
    sink.instant(t, "d", 4);
    EXPECT_EQ(sink.events().size(), 2u);
    EXPECT_EQ(sink.dropped(), 2u);
}

TEST(TraceSink, ClearResetsEverything)
{
    obs::TraceSink sink(4);
    obs::TrackId t = sink.addTrack("main");
    for (int i = 0; i < 8; ++i)
        sink.instant(t, "e", Tick(i));
    sink.clear();
    EXPECT_TRUE(sink.events().empty());
    EXPECT_TRUE(sink.tracks().empty());
    EXPECT_EQ(sink.dropped(), 0u);
}

TEST(TraceSink, NestedSpansKeepLifoOrder)
{
    obs::TraceSink sink;
    obs::TrackId t = sink.addTrack("main");
    // outer [10, 100) wrapping inner [30, 60): Begin/End pairs nest
    // LIFO on a track, and the stable sort must preserve that order
    // even though inner-end and a same-tick outer event could tie.
    sink.begin(t, "outer", 10);
    sink.begin(t, "inner", 30);
    sink.end(t, "inner", 60);
    sink.end(t, "outer", 100);

    std::ostringstream os;
    obs::writeTraceJsonl(sink, os, "t");
    std::istringstream is(os.str());
    obs::ParsedTrace parsed;
    std::string error;
    ASSERT_TRUE(obs::readTraceJsonl(is, parsed, error)) << error;
    ASSERT_EQ(parsed.events.size(), 4u);
    EXPECT_EQ(parsed.events[0].name, "outer");
    EXPECT_EQ(parsed.events[0].phase, obs::Phase::Begin);
    EXPECT_EQ(parsed.events[1].name, "inner");
    EXPECT_EQ(parsed.events[2].name, "inner");
    EXPECT_EQ(parsed.events[2].phase, obs::Phase::End);
    EXPECT_EQ(parsed.events[3].name, "outer");
    EXPECT_EQ(parsed.events[3].phase, obs::Phase::End);
}

TEST(TracePhase, CharRoundTrip)
{
    for (obs::Phase p :
         {obs::Phase::Begin, obs::Phase::End, obs::Phase::Complete,
          obs::Phase::Instant, obs::Phase::Counter}) {
        obs::Phase back;
        ASSERT_TRUE(obs::parsePhase(obs::phaseChar(p), back));
        EXPECT_EQ(back, p);
    }
    obs::Phase dummy;
    EXPECT_FALSE(obs::parsePhase('?', dummy));
}

TEST(TraceWriter, ChromeJsonShape)
{
    obs::TraceSink sink;
    obs::TrackId t = sink.addTrack("main");
    sink.begin(t, "fill", 2 * ticksPerUs);
    sink.end(t, "fill", 3 * ticksPerUs);
    sink.complete(t, "check", 3 * ticksPerUs, ticksPerUs / 2, 9);
    sink.counter(t, "voltage", 0, 0.98);

    std::ostringstream os;
    obs::writeChromeJson(sink, os, "test");
    const std::string json = os.str();

    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    // Events are sorted by timestamp: the counter at t=0 leads.
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    // 2e9 fs = exactly 2 us.
    EXPECT_NE(json.find("\"ts\":2.000000000"), std::string::npos);
    // 0.5 us duration on the X span.
    EXPECT_NE(json.find("\"dur\":0.500000000"), std::string::npos);
    EXPECT_NE(json.find("paradox-trace/1"), std::string::npos);
}

TEST(TraceWriter, JsonlRoundTripsThroughReader)
{
    obs::TraceSink sink;
    obs::TrackId main = sink.addTrack("main");
    obs::TrackId chk = sink.addTrack("checker/0");
    sink.begin(main, "fill", 10, 3);
    sink.end(main, "fill", 40, 3);
    sink.complete(chk, "check", 40, 55, 3, "timeout");
    sink.instant(chk, "detect", 95, "timeout");
    sink.counter(main, "voltage", 100, 0.875);

    std::ostringstream os;
    obs::writeTraceJsonl(sink, os, "round\ttrip");

    std::istringstream is(os.str());
    obs::ParsedTrace parsed;
    std::string error;
    ASSERT_TRUE(obs::readTraceJsonl(is, parsed, error)) << error;

    EXPECT_EQ(parsed.tool, "round\ttrip");
    ASSERT_EQ(parsed.tracks.size(), 2u);
    EXPECT_EQ(parsed.tracks[0], "main");
    EXPECT_EQ(parsed.tracks[1], "checker/0");
    ASSERT_EQ(parsed.events.size(), 5u);

    const obs::ParsedEvent &check = parsed.events[2];
    EXPECT_EQ(check.phase, obs::Phase::Complete);
    EXPECT_EQ(check.ts, 40u);
    EXPECT_EQ(check.dur, 55u);
    EXPECT_EQ(check.name, "check");
    EXPECT_EQ(check.detail, "timeout");
    EXPECT_EQ(check.id, 3u);
    EXPECT_EQ(check.track, chk);

    EXPECT_DOUBLE_EQ(parsed.events[4].value, 0.875);
}

TEST(TraceWriter, WritersSortEventsByTimestamp)
{
    obs::TraceSink sink;
    obs::TrackId t = sink.addTrack("main");
    // Recorded out of order (the system emits future-dated checker
    // spans); the serialized stream must come out time-ordered.
    sink.instant(t, "late", 500);
    sink.instant(t, "early", 100);

    std::ostringstream os;
    obs::writeTraceJsonl(sink, os, "t");
    std::istringstream is(os.str());
    obs::ParsedTrace parsed;
    std::string error;
    ASSERT_TRUE(obs::readTraceJsonl(is, parsed, error)) << error;
    ASSERT_EQ(parsed.events.size(), 2u);
    EXPECT_EQ(parsed.events[0].name, "early");
    EXPECT_EQ(parsed.events[1].name, "late");
}

TEST(TraceReader, RejectsBadSchemaAndMissingHeader)
{
    obs::ParsedTrace parsed;
    std::string error;

    std::istringstream bad_schema(
        "{\"record\":\"header\",\"schema\":\"paradox-trace/999\"}\n");
    EXPECT_FALSE(obs::readTraceJsonl(bad_schema, parsed, error));
    EXPECT_NE(error.find("schema"), std::string::npos);

    std::istringstream no_header(
        "{\"record\":\"event\",\"ph\":\"i\",\"ts\":1,\"track\":0}\n");
    EXPECT_FALSE(obs::readTraceJsonl(no_header, parsed, error));

    std::istringstream empty("");
    EXPECT_FALSE(obs::readTraceJsonl(empty, parsed, error));
}

TEST(TraceReader, JsonFieldRejectsSubstringKeys)
{
    std::string value;
    const std::string line =
        "{\"track_id\":5,\"id\":7,\"name\":\"x\"}";
    ASSERT_TRUE(obs::jsonField(line, "id", value));
    EXPECT_EQ(value, "7");
    ASSERT_TRUE(obs::jsonField(line, "track_id", value));
    EXPECT_EQ(value, "5");
    EXPECT_FALSE(obs::jsonField(line, "rack_id", value));
}

TEST(TraceJsonlPath, DerivedFromChromePath)
{
    EXPECT_EQ(obs::traceJsonlPath("out.json"), "out.jsonl");
    EXPECT_EQ(obs::traceJsonlPath("dir/run-0001.json"),
              "dir/run-0001.jsonl");
    EXPECT_EQ(obs::traceJsonlPath("trace"), "trace.jsonl");
}

TEST(MetricsSampler, PollsAtInterval)
{
    obs::TraceSink sink;
    obs::TrackId t = sink.addTrack("main");
    obs::MetricsSampler sampler(sink, 100);
    int value = 0;
    sampler.probe(t, "committed", [&] { return double(value); });

    sampler.poll(0);  // first poll samples immediately
    value = 10;
    sampler.poll(50);  // within the interval: skipped
    sampler.poll(120);  // past it: sampled
    value = 20;
    sampler.poll(130);  // interval restarts from 120

    ASSERT_EQ(sink.events().size(), 2u);
    EXPECT_DOUBLE_EQ(sink.events()[0].value, 0.0);
    EXPECT_DOUBLE_EQ(sink.events()[1].value, 10.0);
    EXPECT_EQ(sink.events()[1].phase, obs::Phase::Counter);
}

TEST(MetricsSampler, SkipsAheadAfterStall)
{
    obs::TraceSink sink;
    obs::TrackId t = sink.addTrack("main");
    obs::MetricsSampler sampler(sink, 100);
    sampler.probe(t, "x", [] { return 1.0; });
    sampler.poll(0);
    // A long dead period must yield one catch-up sample, not many.
    sampler.poll(100000);
    sampler.poll(100050);
    EXPECT_EQ(sink.events().size(), 2u);
}

/** Run one traced system and return its JSONL serialization. */
std::string
tracedRunJsonl(double fault_rate)
{
    workloads::Workload w = workloads::build("bitcount", 1);
    core::SystemConfig config =
        core::SystemConfig::forMode(core::Mode::ParaDox);
    config.seed = 99;
    core::System system(config, w.program);
    if (fault_rate > 0.0)
        system.setFaultPlan(faults::uniformPlan(fault_rate, 99));

    obs::TraceSink sink;
    system.setTracer(&sink, ticksPerUs);
    core::RunResult r = system.run();
    EXPECT_TRUE(r.halted);

    std::ostringstream os;
    obs::writeTraceJsonl(sink, os, "test");
    return os.str();
}

TEST(SystemTracing, EmitsSegmentLifecycleSpans)
{
    if (!obs::tracingCompiledIn)
        GTEST_SKIP() << "built with PARADOX_TRACING=0";
    std::istringstream is(tracedRunJsonl(1e-4));
    obs::ParsedTrace parsed;
    std::string error;
    ASSERT_TRUE(obs::readTraceJsonl(is, parsed, error)) << error;

    std::size_t fills = 0, checks = 0, detects = 0, rollbacks = 0,
                voltage = 0;
    for (const obs::ParsedEvent &e : parsed.events) {
        if (e.name == "fill" && e.phase == obs::Phase::End)
            ++fills;
        else if (e.name == "check")
            ++checks;
        else if (e.name == "detect")
            ++detects;
        else if (e.name == "rollback")
            ++rollbacks;
        else if (e.name == "voltage")
            ++voltage;
    }
    EXPECT_GT(fills, 0u);
    EXPECT_GT(checks, 0u);
    EXPECT_GT(rollbacks, 0u);
    // Every rollback was triggered by a detection; extra detections
    // can exist (younger pending segments wiped by an older rollback
    // never get their own recovery span).
    EXPECT_GE(detects, rollbacks);
    EXPECT_GT(voltage, 0u);

    // Timestamps are non-decreasing after the writer's sort.
    for (std::size_t i = 1; i < parsed.events.size(); ++i)
        EXPECT_LE(parsed.events[i - 1].ts, parsed.events[i].ts);
}

TEST(SystemTracing, DeterministicAcrossIdenticalRuns)
{
    if (!obs::tracingCompiledIn)
        GTEST_SKIP() << "built with PARADOX_TRACING=0";
    EXPECT_EQ(tracedRunJsonl(1e-4), tracedRunJsonl(1e-4));
    EXPECT_EQ(tracedRunJsonl(0.0), tracedRunJsonl(0.0));
}

const obs::ProfPhase *
findPhase(const std::vector<obs::ProfPhase> &phases,
          const std::string &path)
{
    for (const obs::ProfPhase &p : phases)
        if (p.path == path)
            return &p;
    return nullptr;
}

TEST(Profiler, NestingBuildsTree)
{
    if (!obs::profilingCompiledIn)
        GTEST_SKIP() << "built with PARADOX_PROFILING=0";
    obs::Profiler::reset();
    obs::Profiler::setEnabled(true);
    {
        PARADOX_PROF_SCOPE("outer");
        for (int i = 0; i < 3; ++i) {
            PARADOX_PROF_SCOPE("inner");
        }
    }
    obs::Profiler::setEnabled(false);

    std::vector<obs::ProfPhase> phases = obs::Profiler::snapshot();
    const obs::ProfPhase *outer = findPhase(phases, "outer");
    const obs::ProfPhase *inner = findPhase(phases, "outer/inner");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(outer->depth, 0u);
    EXPECT_EQ(inner->depth, 1u);
    EXPECT_EQ(outer->count, 1u);
    EXPECT_EQ(inner->count, 3u);
    EXPECT_EQ(inner->name, "inner");
    // Inclusive time covers the children; self excludes them.
    EXPECT_GE(outer->totalNs, inner->totalNs);
    EXPECT_EQ(outer->selfNs, outer->totalNs - inner->totalNs);
    EXPECT_EQ(inner->selfNs, inner->totalNs);
    EXPECT_EQ(obs::Profiler::rootTotalNs(phases), outer->totalNs);
    obs::Profiler::reset();
}

TEST(Profiler, ThreadsMergeByPath)
{
    if (!obs::profilingCompiledIn)
        GTEST_SKIP() << "built with PARADOX_PROFILING=0";
    obs::Profiler::reset();
    obs::Profiler::setEnabled(true);
    auto work = [] {
        for (int i = 0; i < 5; ++i) {
            PARADOX_PROF_SCOPE("worker");
        }
    };
    std::thread a(work), b(work);
    a.join();
    b.join();
    obs::Profiler::setEnabled(false);

    // Both workers' trees survive their threads and merge by path.
    std::vector<obs::ProfPhase> phases = obs::Profiler::snapshot();
    const obs::ProfPhase *worker = findPhase(phases, "worker");
    ASSERT_NE(worker, nullptr);
    EXPECT_EQ(worker->count, 10u);
    EXPECT_GE(obs::Profiler::threadCount(), 2u);
    obs::Profiler::reset();
}

TEST(Profiler, DisabledRecordsNothing)
{
    obs::Profiler::reset();
    obs::Profiler::setEnabled(false);
    {
        PARADOX_PROF_SCOPE("ghost");
    }
    EXPECT_TRUE(obs::Profiler::snapshot().empty());
    EXPECT_EQ(obs::Profiler::rootTotalNs({}), 0u);
}

TEST(Profiler, JsonlRoundTrip)
{
    if (!obs::profilingCompiledIn)
        GTEST_SKIP() << "built with PARADOX_PROFILING=0";
    obs::Profiler::reset();
    obs::Profiler::setEnabled(true);
    {
        PARADOX_PROF_SCOPE("run");
        {
            PARADOX_PROF_SCOPE("sim");
        }
    }
    obs::Profiler::setEnabled(false);
    std::vector<obs::ProfPhase> phases = obs::Profiler::snapshot();
    ASSERT_EQ(phases.size(), 2u);

    obs::ProfMeta meta;
    meta.tool = "test_obs";
    meta.workload = "bitcount";
    meta.simInstructions = 123456;
    meta.wallNs = obs::Profiler::rootTotalNs(phases) + 1000;
    std::ostringstream os;
    ASSERT_TRUE(obs::writeProfJsonl(os, phases, meta));

    std::istringstream is(os.str());
    obs::ParsedProf parsed;
    std::string error;
    ASSERT_TRUE(obs::readProfJsonl(is, parsed, error)) << error;
    EXPECT_EQ(parsed.tool, "test_obs");
    EXPECT_EQ(parsed.workload, "bitcount");
    EXPECT_EQ(parsed.simInstructions, 123456u);
    EXPECT_EQ(parsed.wallNs, meta.wallNs);
    EXPECT_EQ(parsed.rootTotalNs,
              obs::Profiler::rootTotalNs(phases));
    ASSERT_EQ(parsed.phases.size(), 2u);
    EXPECT_EQ(parsed.phases[0].path, phases[0].path);
    EXPECT_EQ(parsed.phases[0].count, phases[0].count);
    EXPECT_EQ(parsed.phases[0].totalNs, phases[0].totalNs);
    EXPECT_EQ(parsed.phases[0].selfNs, phases[0].selfNs);
    EXPECT_EQ(parsed.phases[1].path, phases[1].path);
    EXPECT_EQ(parsed.phases[1].depth, 1u);
    obs::Profiler::reset();
}

TEST(ProfReader, RejectsBadSchemaAndMissingHeader)
{
    obs::ParsedProf parsed;
    std::string error;

    std::istringstream bad_schema(
        "{\"record\":\"header\",\"schema\":\"paradox-prof/999\"}\n");
    EXPECT_FALSE(obs::readProfJsonl(bad_schema, parsed, error));
    EXPECT_NE(error.find("schema"), std::string::npos);

    std::istringstream no_header(
        "{\"record\":\"phase\",\"path\":\"x\",\"total_ns\":1}\n");
    EXPECT_FALSE(obs::readProfJsonl(no_header, parsed, error));

    std::istringstream empty("");
    EXPECT_FALSE(obs::readProfJsonl(empty, parsed, error));
}

/** Value printed on the dump line that starts with @p name. */
double
dumpValue(const std::string &dump, const std::string &name)
{
    const std::size_t pos = dump.find(name + " ");
    if (pos == std::string::npos ||
        (pos != 0 && dump[pos - 1] != '\n'))
        return -1.0;
    return std::strtod(dump.c_str() + pos + name.size(), nullptr);
}

TEST(SystemStats, RegistryDumpKeepsLegacyLayout)
{
    workloads::Workload w = workloads::build("bitcount", 1);
    core::SystemConfig config =
        core::SystemConfig::forMode(core::Mode::ParaDox);
    core::System system(config, w.program);
    core::RunResult r = system.run();
    ASSERT_TRUE(r.halted);

    std::ostringstream os;
    system.dumpStats(os);
    const std::string dump = os.str();

    // The classic "system" lines still lead the dump, and the
    // component groups follow under their dotted prefixes.
    EXPECT_EQ(dump.rfind("system.rollbackNs", 0), 0u);
    const char *order[] = {
        "system.checkpointLength", "system.evictionCuts",
        "system.voltage",          "main.committed",
        "main.checkpoints",        "main.bpred.lookups",
        "faults.rollbacks",        "mem.l1i.hits",
        "mem.l1d.misses",          "mem.l1d.pinned_lines",
        "mem.l2.misses",           "mem.dram.row_hits",
        "mem.pf.issued",           "mem.dtlb.hits",
        "mem.itlb.hits",
    };
    std::size_t last = 0;
    for (const char *name : order) {
        const std::size_t pos = dump.find(name);
        ASSERT_NE(pos, std::string::npos) << name;
        EXPECT_GT(pos, last) << name << " out of order";
        last = pos;
    }

    // Gauges read the live component counters.
    EXPECT_EQ(dumpValue(dump, "main.committed"), double(r.executed));
    EXPECT_EQ(dumpValue(dump, "main.checkpoints"),
              double(r.checkpoints));
    EXPECT_GT(dumpValue(dump, "mem.l1i.hits"), 0.0);
}

TEST(SystemStats, RegistryJsonDumpIsFlatObject)
{
    workloads::Workload w = workloads::build("bitcount", 1);
    core::SystemConfig config =
        core::SystemConfig::forMode(core::Mode::ParaDox);
    core::System system(config, w.program);
    ASSERT_TRUE(system.run().halted);

    std::ostringstream os;
    system.registry().dumpJson(os);
    const std::string json = os.str();
    EXPECT_EQ(json.rfind("{", 0), 0u);
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"main.committed\":"), std::string::npos);
    EXPECT_NE(json.find("\"mem.l1d.misses\":"), std::string::npos);
    EXPECT_NE(json.find("\"system.evictionCuts\":"),
              std::string::npos);
}

TEST(SystemTracing, SamplerSourcesCountersFromRegistry)
{
    if (!obs::tracingCompiledIn)
        GTEST_SKIP() << "built with PARADOX_TRACING=0";
    std::istringstream is(tracedRunJsonl(0.0));
    obs::ParsedTrace parsed;
    std::string error;
    ASSERT_TRUE(obs::readTraceJsonl(is, parsed, error)) << error;

    std::set<std::string> counters;
    for (const obs::ParsedEvent &e : parsed.events)
        if (e.phase == obs::Phase::Counter)
            counters.insert(e.name);
    // Every stat marked with a series name in the System ctor must
    // show up as a counter track, under its legacy event name.
    for (const char *name :
         {"committed", "mispredicts", "checkpoints", "checkers_busy",
          "rollbacks", "detections", "faults_injected", "l1d_misses",
          "l2_misses", "pinned_lines", "pinned_blocks"})
        EXPECT_TRUE(counters.count(name)) << name;
}

TEST(SystemTracing, UntracedRunRecordsNothing)
{
    workloads::Workload w = workloads::build("bitcount", 1);
    core::SystemConfig config =
        core::SystemConfig::forMode(core::Mode::ParaDox);
    core::System system(config, w.program);
    core::RunResult r = system.run();
    EXPECT_TRUE(r.halted);
    // Percentiles are still summarized without any tracer attached.
    EXPECT_GT(r.ckptLenP50, 0.0);
    EXPECT_GE(r.ckptLenP99, r.ckptLenP50);
}

} // namespace
