file(REMOVE_RECURSE
  "CMakeFiles/test_secded.dir/test_secded.cc.o"
  "CMakeFiles/test_secded.dir/test_secded.cc.o.d"
  "test_secded"
  "test_secded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_secded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
