# Empty dependencies file for test_escalation.
# This may be replaced when dependencies are built.
