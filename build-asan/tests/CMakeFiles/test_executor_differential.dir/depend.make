# Empty dependencies file for test_executor_differential.
# This may be replaced when dependencies are built.
