file(REMOVE_RECURSE
  "CMakeFiles/test_executor_differential.dir/test_executor_differential.cc.o"
  "CMakeFiles/test_executor_differential.dir/test_executor_differential.cc.o.d"
  "test_executor_differential"
  "test_executor_differential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_executor_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
