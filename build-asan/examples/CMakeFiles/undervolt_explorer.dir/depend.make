# Empty dependencies file for undervolt_explorer.
# This may be replaced when dependencies are built.
