file(REMOVE_RECURSE
  "CMakeFiles/undervolt_explorer.dir/undervolt_explorer.cpp.o"
  "CMakeFiles/undervolt_explorer.dir/undervolt_explorer.cpp.o.d"
  "undervolt_explorer"
  "undervolt_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/undervolt_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
