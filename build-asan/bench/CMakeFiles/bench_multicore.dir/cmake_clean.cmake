file(REMOVE_RECURSE
  "CMakeFiles/bench_multicore.dir/bench_multicore.cc.o"
  "CMakeFiles/bench_multicore.dir/bench_multicore.cc.o.d"
  "bench_multicore"
  "bench_multicore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
