# Empty compiler generated dependencies file for bench_checker_undervolt.
# This may be replaced when dependencies are built.
