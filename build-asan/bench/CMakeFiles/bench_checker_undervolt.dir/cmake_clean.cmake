file(REMOVE_RECURSE
  "CMakeFiles/bench_checker_undervolt.dir/bench_checker_undervolt.cc.o"
  "CMakeFiles/bench_checker_undervolt.dir/bench_checker_undervolt.cc.o.d"
  "bench_checker_undervolt"
  "bench_checker_undervolt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_checker_undervolt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
