
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro.cc" "bench/CMakeFiles/bench_micro.dir/bench_micro.cc.o" "gcc" "bench/CMakeFiles/bench_micro.dir/bench_micro.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/core/CMakeFiles/paradox_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/workloads/CMakeFiles/paradox_workloads.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/power/CMakeFiles/paradox_power.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/faults/CMakeFiles/paradox_faults.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/cpu/CMakeFiles/paradox_cpu.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/mem/CMakeFiles/paradox_mem.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/isa/CMakeFiles/paradox_isa.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/paradox_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
