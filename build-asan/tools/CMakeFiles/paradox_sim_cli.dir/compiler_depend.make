# Empty compiler generated dependencies file for paradox_sim_cli.
# This may be replaced when dependencies are built.
