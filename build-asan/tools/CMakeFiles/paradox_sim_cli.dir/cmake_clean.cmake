file(REMOVE_RECURSE
  "CMakeFiles/paradox_sim_cli.dir/paradox_sim.cc.o"
  "CMakeFiles/paradox_sim_cli.dir/paradox_sim.cc.o.d"
  "paradox_sim"
  "paradox_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradox_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
