file(REMOVE_RECURSE
  "CMakeFiles/paradox_mem.dir/cache.cc.o"
  "CMakeFiles/paradox_mem.dir/cache.cc.o.d"
  "CMakeFiles/paradox_mem.dir/dram.cc.o"
  "CMakeFiles/paradox_mem.dir/dram.cc.o.d"
  "CMakeFiles/paradox_mem.dir/hierarchy.cc.o"
  "CMakeFiles/paradox_mem.dir/hierarchy.cc.o.d"
  "CMakeFiles/paradox_mem.dir/memory.cc.o"
  "CMakeFiles/paradox_mem.dir/memory.cc.o.d"
  "CMakeFiles/paradox_mem.dir/prefetcher.cc.o"
  "CMakeFiles/paradox_mem.dir/prefetcher.cc.o.d"
  "CMakeFiles/paradox_mem.dir/secded.cc.o"
  "CMakeFiles/paradox_mem.dir/secded.cc.o.d"
  "CMakeFiles/paradox_mem.dir/tlb.cc.o"
  "CMakeFiles/paradox_mem.dir/tlb.cc.o.d"
  "libparadox_mem.a"
  "libparadox_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradox_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
