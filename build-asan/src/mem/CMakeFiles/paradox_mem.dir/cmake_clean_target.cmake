file(REMOVE_RECURSE
  "libparadox_mem.a"
)
