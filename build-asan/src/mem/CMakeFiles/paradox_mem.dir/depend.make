# Empty dependencies file for paradox_mem.
# This may be replaced when dependencies are built.
