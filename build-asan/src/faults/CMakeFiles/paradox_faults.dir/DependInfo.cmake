
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faults/fault_model.cc" "src/faults/CMakeFiles/paradox_faults.dir/fault_model.cc.o" "gcc" "src/faults/CMakeFiles/paradox_faults.dir/fault_model.cc.o.d"
  "/root/repo/src/faults/undervolt_model.cc" "src/faults/CMakeFiles/paradox_faults.dir/undervolt_model.cc.o" "gcc" "src/faults/CMakeFiles/paradox_faults.dir/undervolt_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/sim/CMakeFiles/paradox_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/isa/CMakeFiles/paradox_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
