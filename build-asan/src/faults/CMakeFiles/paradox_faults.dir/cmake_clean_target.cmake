file(REMOVE_RECURSE
  "libparadox_faults.a"
)
