file(REMOVE_RECURSE
  "CMakeFiles/paradox_faults.dir/fault_model.cc.o"
  "CMakeFiles/paradox_faults.dir/fault_model.cc.o.d"
  "CMakeFiles/paradox_faults.dir/undervolt_model.cc.o"
  "CMakeFiles/paradox_faults.dir/undervolt_model.cc.o.d"
  "libparadox_faults.a"
  "libparadox_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradox_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
