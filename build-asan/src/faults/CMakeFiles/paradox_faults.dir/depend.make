# Empty dependencies file for paradox_faults.
# This may be replaced when dependencies are built.
