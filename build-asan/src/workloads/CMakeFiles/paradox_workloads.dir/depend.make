# Empty dependencies file for paradox_workloads.
# This may be replaced when dependencies are built.
