file(REMOVE_RECURSE
  "libparadox_workloads.a"
)
