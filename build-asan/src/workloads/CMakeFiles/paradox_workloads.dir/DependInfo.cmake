
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/GemsFDTD.cc" "src/workloads/CMakeFiles/paradox_workloads.dir/GemsFDTD.cc.o" "gcc" "src/workloads/CMakeFiles/paradox_workloads.dir/GemsFDTD.cc.o.d"
  "/root/repo/src/workloads/astar.cc" "src/workloads/CMakeFiles/paradox_workloads.dir/astar.cc.o" "gcc" "src/workloads/CMakeFiles/paradox_workloads.dir/astar.cc.o.d"
  "/root/repo/src/workloads/bitcount.cc" "src/workloads/CMakeFiles/paradox_workloads.dir/bitcount.cc.o" "gcc" "src/workloads/CMakeFiles/paradox_workloads.dir/bitcount.cc.o.d"
  "/root/repo/src/workloads/bwaves.cc" "src/workloads/CMakeFiles/paradox_workloads.dir/bwaves.cc.o" "gcc" "src/workloads/CMakeFiles/paradox_workloads.dir/bwaves.cc.o.d"
  "/root/repo/src/workloads/bzip2.cc" "src/workloads/CMakeFiles/paradox_workloads.dir/bzip2.cc.o" "gcc" "src/workloads/CMakeFiles/paradox_workloads.dir/bzip2.cc.o.d"
  "/root/repo/src/workloads/cactusADM.cc" "src/workloads/CMakeFiles/paradox_workloads.dir/cactusADM.cc.o" "gcc" "src/workloads/CMakeFiles/paradox_workloads.dir/cactusADM.cc.o.d"
  "/root/repo/src/workloads/calculix.cc" "src/workloads/CMakeFiles/paradox_workloads.dir/calculix.cc.o" "gcc" "src/workloads/CMakeFiles/paradox_workloads.dir/calculix.cc.o.d"
  "/root/repo/src/workloads/gcc.cc" "src/workloads/CMakeFiles/paradox_workloads.dir/gcc.cc.o" "gcc" "src/workloads/CMakeFiles/paradox_workloads.dir/gcc.cc.o.d"
  "/root/repo/src/workloads/gobmk.cc" "src/workloads/CMakeFiles/paradox_workloads.dir/gobmk.cc.o" "gcc" "src/workloads/CMakeFiles/paradox_workloads.dir/gobmk.cc.o.d"
  "/root/repo/src/workloads/h264ref.cc" "src/workloads/CMakeFiles/paradox_workloads.dir/h264ref.cc.o" "gcc" "src/workloads/CMakeFiles/paradox_workloads.dir/h264ref.cc.o.d"
  "/root/repo/src/workloads/lbm.cc" "src/workloads/CMakeFiles/paradox_workloads.dir/lbm.cc.o" "gcc" "src/workloads/CMakeFiles/paradox_workloads.dir/lbm.cc.o.d"
  "/root/repo/src/workloads/leslie3d.cc" "src/workloads/CMakeFiles/paradox_workloads.dir/leslie3d.cc.o" "gcc" "src/workloads/CMakeFiles/paradox_workloads.dir/leslie3d.cc.o.d"
  "/root/repo/src/workloads/mcf.cc" "src/workloads/CMakeFiles/paradox_workloads.dir/mcf.cc.o" "gcc" "src/workloads/CMakeFiles/paradox_workloads.dir/mcf.cc.o.d"
  "/root/repo/src/workloads/milc.cc" "src/workloads/CMakeFiles/paradox_workloads.dir/milc.cc.o" "gcc" "src/workloads/CMakeFiles/paradox_workloads.dir/milc.cc.o.d"
  "/root/repo/src/workloads/namd.cc" "src/workloads/CMakeFiles/paradox_workloads.dir/namd.cc.o" "gcc" "src/workloads/CMakeFiles/paradox_workloads.dir/namd.cc.o.d"
  "/root/repo/src/workloads/omnetpp.cc" "src/workloads/CMakeFiles/paradox_workloads.dir/omnetpp.cc.o" "gcc" "src/workloads/CMakeFiles/paradox_workloads.dir/omnetpp.cc.o.d"
  "/root/repo/src/workloads/povray.cc" "src/workloads/CMakeFiles/paradox_workloads.dir/povray.cc.o" "gcc" "src/workloads/CMakeFiles/paradox_workloads.dir/povray.cc.o.d"
  "/root/repo/src/workloads/sjeng.cc" "src/workloads/CMakeFiles/paradox_workloads.dir/sjeng.cc.o" "gcc" "src/workloads/CMakeFiles/paradox_workloads.dir/sjeng.cc.o.d"
  "/root/repo/src/workloads/stream.cc" "src/workloads/CMakeFiles/paradox_workloads.dir/stream.cc.o" "gcc" "src/workloads/CMakeFiles/paradox_workloads.dir/stream.cc.o.d"
  "/root/repo/src/workloads/tonto.cc" "src/workloads/CMakeFiles/paradox_workloads.dir/tonto.cc.o" "gcc" "src/workloads/CMakeFiles/paradox_workloads.dir/tonto.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/paradox_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/paradox_workloads.dir/workload.cc.o.d"
  "/root/repo/src/workloads/xalancbmk.cc" "src/workloads/CMakeFiles/paradox_workloads.dir/xalancbmk.cc.o" "gcc" "src/workloads/CMakeFiles/paradox_workloads.dir/xalancbmk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/sim/CMakeFiles/paradox_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/isa/CMakeFiles/paradox_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
