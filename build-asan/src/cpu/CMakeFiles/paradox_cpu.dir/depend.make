# Empty dependencies file for paradox_cpu.
# This may be replaced when dependencies are built.
