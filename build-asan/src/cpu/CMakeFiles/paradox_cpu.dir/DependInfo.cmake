
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/branch_pred.cc" "src/cpu/CMakeFiles/paradox_cpu.dir/branch_pred.cc.o" "gcc" "src/cpu/CMakeFiles/paradox_cpu.dir/branch_pred.cc.o.d"
  "/root/repo/src/cpu/checker_timing.cc" "src/cpu/CMakeFiles/paradox_cpu.dir/checker_timing.cc.o" "gcc" "src/cpu/CMakeFiles/paradox_cpu.dir/checker_timing.cc.o.d"
  "/root/repo/src/cpu/main_core.cc" "src/cpu/CMakeFiles/paradox_cpu.dir/main_core.cc.o" "gcc" "src/cpu/CMakeFiles/paradox_cpu.dir/main_core.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/sim/CMakeFiles/paradox_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/isa/CMakeFiles/paradox_isa.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/mem/CMakeFiles/paradox_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
