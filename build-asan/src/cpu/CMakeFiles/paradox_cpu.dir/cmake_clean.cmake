file(REMOVE_RECURSE
  "CMakeFiles/paradox_cpu.dir/branch_pred.cc.o"
  "CMakeFiles/paradox_cpu.dir/branch_pred.cc.o.d"
  "CMakeFiles/paradox_cpu.dir/checker_timing.cc.o"
  "CMakeFiles/paradox_cpu.dir/checker_timing.cc.o.d"
  "CMakeFiles/paradox_cpu.dir/main_core.cc.o"
  "CMakeFiles/paradox_cpu.dir/main_core.cc.o.d"
  "libparadox_cpu.a"
  "libparadox_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradox_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
