file(REMOVE_RECURSE
  "libparadox_cpu.a"
)
