# Empty dependencies file for paradox_sim.
# This may be replaced when dependencies are built.
