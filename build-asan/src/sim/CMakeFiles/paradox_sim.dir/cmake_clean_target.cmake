file(REMOVE_RECURSE
  "libparadox_sim.a"
)
