file(REMOVE_RECURSE
  "CMakeFiles/paradox_sim.dir/event_queue.cc.o"
  "CMakeFiles/paradox_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/paradox_sim.dir/rng.cc.o"
  "CMakeFiles/paradox_sim.dir/rng.cc.o.d"
  "CMakeFiles/paradox_sim.dir/stats.cc.o"
  "CMakeFiles/paradox_sim.dir/stats.cc.o.d"
  "libparadox_sim.a"
  "libparadox_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradox_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
