# Empty dependencies file for paradox_power.
# This may be replaced when dependencies are built.
