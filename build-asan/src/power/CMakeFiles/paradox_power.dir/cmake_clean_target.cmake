file(REMOVE_RECURSE
  "libparadox_power.a"
)
