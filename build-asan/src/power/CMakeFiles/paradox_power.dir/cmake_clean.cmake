file(REMOVE_RECURSE
  "CMakeFiles/paradox_power.dir/power_model.cc.o"
  "CMakeFiles/paradox_power.dir/power_model.cc.o.d"
  "CMakeFiles/paradox_power.dir/undervolt_data.cc.o"
  "CMakeFiles/paradox_power.dir/undervolt_data.cc.o.d"
  "libparadox_power.a"
  "libparadox_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradox_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
