# Empty dependencies file for paradox_core.
# This may be replaced when dependencies are built.
