file(REMOVE_RECURSE
  "libparadox_core.a"
)
