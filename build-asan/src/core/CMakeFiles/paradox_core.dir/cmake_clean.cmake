file(REMOVE_RECURSE
  "CMakeFiles/paradox_core.dir/checker_replay.cc.o"
  "CMakeFiles/paradox_core.dir/checker_replay.cc.o.d"
  "CMakeFiles/paradox_core.dir/config.cc.o"
  "CMakeFiles/paradox_core.dir/config.cc.o.d"
  "CMakeFiles/paradox_core.dir/dvfs.cc.o"
  "CMakeFiles/paradox_core.dir/dvfs.cc.o.d"
  "CMakeFiles/paradox_core.dir/lslog.cc.o"
  "CMakeFiles/paradox_core.dir/lslog.cc.o.d"
  "CMakeFiles/paradox_core.dir/multicore.cc.o"
  "CMakeFiles/paradox_core.dir/multicore.cc.o.d"
  "CMakeFiles/paradox_core.dir/result_json.cc.o"
  "CMakeFiles/paradox_core.dir/result_json.cc.o.d"
  "CMakeFiles/paradox_core.dir/scheduler.cc.o"
  "CMakeFiles/paradox_core.dir/scheduler.cc.o.d"
  "CMakeFiles/paradox_core.dir/system.cc.o"
  "CMakeFiles/paradox_core.dir/system.cc.o.d"
  "libparadox_core.a"
  "libparadox_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradox_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
