
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/checker_replay.cc" "src/core/CMakeFiles/paradox_core.dir/checker_replay.cc.o" "gcc" "src/core/CMakeFiles/paradox_core.dir/checker_replay.cc.o.d"
  "/root/repo/src/core/config.cc" "src/core/CMakeFiles/paradox_core.dir/config.cc.o" "gcc" "src/core/CMakeFiles/paradox_core.dir/config.cc.o.d"
  "/root/repo/src/core/dvfs.cc" "src/core/CMakeFiles/paradox_core.dir/dvfs.cc.o" "gcc" "src/core/CMakeFiles/paradox_core.dir/dvfs.cc.o.d"
  "/root/repo/src/core/lslog.cc" "src/core/CMakeFiles/paradox_core.dir/lslog.cc.o" "gcc" "src/core/CMakeFiles/paradox_core.dir/lslog.cc.o.d"
  "/root/repo/src/core/multicore.cc" "src/core/CMakeFiles/paradox_core.dir/multicore.cc.o" "gcc" "src/core/CMakeFiles/paradox_core.dir/multicore.cc.o.d"
  "/root/repo/src/core/result_json.cc" "src/core/CMakeFiles/paradox_core.dir/result_json.cc.o" "gcc" "src/core/CMakeFiles/paradox_core.dir/result_json.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/core/CMakeFiles/paradox_core.dir/scheduler.cc.o" "gcc" "src/core/CMakeFiles/paradox_core.dir/scheduler.cc.o.d"
  "/root/repo/src/core/system.cc" "src/core/CMakeFiles/paradox_core.dir/system.cc.o" "gcc" "src/core/CMakeFiles/paradox_core.dir/system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/sim/CMakeFiles/paradox_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/isa/CMakeFiles/paradox_isa.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/mem/CMakeFiles/paradox_mem.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/cpu/CMakeFiles/paradox_cpu.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/faults/CMakeFiles/paradox_faults.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/power/CMakeFiles/paradox_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
