file(REMOVE_RECURSE
  "CMakeFiles/paradox_isa.dir/arch_state.cc.o"
  "CMakeFiles/paradox_isa.dir/arch_state.cc.o.d"
  "CMakeFiles/paradox_isa.dir/builder.cc.o"
  "CMakeFiles/paradox_isa.dir/builder.cc.o.d"
  "CMakeFiles/paradox_isa.dir/executor.cc.o"
  "CMakeFiles/paradox_isa.dir/executor.cc.o.d"
  "CMakeFiles/paradox_isa.dir/instruction.cc.o"
  "CMakeFiles/paradox_isa.dir/instruction.cc.o.d"
  "CMakeFiles/paradox_isa.dir/opcode.cc.o"
  "CMakeFiles/paradox_isa.dir/opcode.cc.o.d"
  "libparadox_isa.a"
  "libparadox_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradox_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
