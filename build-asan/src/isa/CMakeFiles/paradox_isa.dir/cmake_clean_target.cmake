file(REMOVE_RECURSE
  "libparadox_isa.a"
)
