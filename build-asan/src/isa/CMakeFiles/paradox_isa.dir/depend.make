# Empty dependencies file for paradox_isa.
# This may be replaced when dependencies are built.
