/**
 * @file
 * isa_lint: static analysis of the built-in PDX64 workloads.
 *
 * Runs the analysis::Linter pass pipeline (CFG, reachability,
 * register dataflow, memory footprint, termination heuristics, and
 * optionally the interval range passes) over any subset of the
 * registered workloads:
 *
 *   isa_lint --list                 # names, one per line
 *   isa_lint --all                  # lint every workload
 *   isa_lint bitcount stream        # lint selected workloads
 *   isa_lint --all --json           # one JSON report per line
 *   isa_lint --all --Werror         # warnings fail the run
 *   isa_lint --all --scale 4        # lint at benchmark scale
 *   isa_lint --all --ranges         # interval ranges + trip bounds
 *   isa_lint --all --stats          # per-pass counts and timings
 *   isa_lint --all --ranges --cost --json   # paradox-cost/1 JSONL
 *   isa_lint --all --vuln --json            # paradox-vuln/1 JSONL
 *   isa_lint --all --vuln --chip-seed 101 --json  # + cell verdicts
 *   isa_lint --all --memdep --json          # paradox-memdep/1 JSONL
 *
 * --cost replaces the lint reports on stdout with the static
 * segment-cost model (one record per workload; JSONL under --json);
 * lint still runs and failing workloads print their report to
 * stderr, so the cost stream stays machine-parsable.  --vuln does
 * the same with the static fault-vulnerability model (live-bit/ACE
 * masks; implies --ranges so interval facts prune provably-masked
 * ranges); --chip-seed additionally emits per-weak-cell verdicts for
 * that chip's fault map.  --memdep emits the memory-dependence /
 * effect-summary model: per-run load/store counts, worst-case
 * log-byte bounds, and the alias-oracle pair census, stamped with
 * the decoded content hash so `trace_report --memdep` can reject a
 * stale model.
 *
 * Exit status: 0 when every linted program is clean, 1 when any
 * program has an error-severity diagnostic (or any warning under
 * --Werror), 2 on usage errors.  CI runs `isa_lint --all --ranges
 * --Werror`, so a malformed workload can never reach the
 * fault-injection experiments.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/costmodel.hh"
#include "analysis/linter.hh"
#include "analysis/memdep.hh"
#include "analysis/vuln.hh"
#include "core/config.hh"
#include "core/logbytes.hh"
#include "isa/decoded.hh"
#include "exp/cli.hh"
#include "faults/chip_model.hh"
#include "isa/builder.hh"
#include "power/undervolt_data.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace paradox;

    bool all = false, json = false, werror = false, list = false;
    bool ranges = false, cost = false, stats = false, vuln = false;
    bool memdep = false;
    unsigned scale = 1;
    std::uint64_t chipSeed = 0;

    exp::Cli cli("isa_lint",
                 "static analysis (CFG, dataflow, footprint, "
                 "termination) over the built-in workloads; name "
                 "workloads as positional arguments or pass --all");
    cli.flag("all", all, "lint every registered workload");
    cli.flag("list", list, "print workload names and exit");
    cli.flag("json", json, "one paradox-lint/1 JSON object per line");
    cli.flag("Werror", werror, "treat warnings as errors");
    cli.flag("ranges", ranges,
             "run the interval abstract interpretation: range-based "
             "footprint checks, dead branches, div/shift ranges, "
             "loop trip bounds");
    cli.flag("cost", cost,
             "emit the static segment-cost model instead of lint "
             "reports (implies --ranges)");
    cli.flag("stats", stats,
             "append per-pass diagnostic counts and wall-clock "
             "timings to text reports");
    cli.flag("vuln", vuln,
             "emit the static fault-vulnerability model (live-bit/ACE "
             "masks, paradox-vuln/1 JSONL under --json) instead of "
             "lint reports (implies --ranges)");
    cli.flag("memdep", memdep,
             "emit the static memory-dependence / effect-summary "
             "model (per-run log-byte bounds, alias pair census, "
             "paradox-memdep/1 JSONL under --json) instead of lint "
             "reports (implies --ranges)");
    cli.opt("scale", scale, "workload size multiplier");
    cli.opt("chip-seed", chipSeed,
            "with --vuln: also emit per-weak-cell ACE verdicts for "
            "this chip's fault map (0 = off)");

    // Split positional workload names from flags; value-taking
    // options keep their value glued to them.
    const std::vector<std::string> valueOpts = {"--scale",
                                                "--chip-seed"};
    std::vector<std::string> names;
    std::vector<char *> flagArgs = {argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (argv[i][0] != '-') {
            names.push_back(argv[i]);
            continue;
        }
        flagArgs.push_back(argv[i]);
        for (const auto &opt : valueOpts)
            if (opt == argv[i] && i + 1 < argc) {
                flagArgs.push_back(argv[++i]);
                break;
            }
    }
    if (!cli.parse(int(flagArgs.size()), flagArgs.data()))
        return 2;

    if (list) {
        for (const auto &name : workloads::allNames())
            std::printf("%s\n", name.c_str());
        return 0;
    }
    if (all)
        names = workloads::allNames();
    if (names.empty()) {
        std::fprintf(stderr,
                     "isa_lint: no workloads selected "
                     "(pass names, --all, or --list)\n");
        return 2;
    }
    if (int(vuln) + int(cost) + int(memdep) > 1) {
        std::fprintf(stderr,
                     "isa_lint: --vuln, --cost and --memdep are "
                     "mutually exclusive (one model stream per "
                     "run)\n");
        return 2;
    }
    if (cost || vuln || memdep)
        ranges = true;

    // Every workload stores its checksum to the ABI result cell,
    // which is part of the footprint but not of any one program.
    analysis::Options opts;
    opts.extraRegions.push_back({workloads::resultAddr, 8, "result"});
    opts.ranges = ranges;
    // The vulnerability and memory-dependence passes ride along with
    // the interval passes: their diagnostics land in lint reports
    // (and their counts and timings in --stats) whether or not a
    // model stream is emitted.
    opts.vuln = ranges;
    opts.memdep = ranges;
    const analysis::Linter linter(opts);

    analysis::CostParams cparams;
    cparams.extraRegions = opts.extraRegions;

    bool failed = false;
    std::size_t totalErrors = 0, totalWarnings = 0;
    if (cost && json)
        std::printf("%s\n", analysis::costJsonHeader().c_str());
    if (vuln && json)
        std::printf("%s\n", analysis::vulnJsonHeader().c_str());
    if (memdep && json)
        std::printf("%s\n", analysis::memdepJsonHeader().c_str());
    for (const auto &name : names) {
        analysis::Report report;
        bool built = false;
        workloads::Workload w;
        try {
            w = workloads::build(name, scale);
            built = true;
            report = linter.lint(w.program);
        } catch (const isa::BuildError &err) {
            // Assembly-level failures become build diagnostics so the
            // report formats stay uniform.
            report.program = name;
            for (const auto &msg : err.messages())
                report.diags.push_back(
                    {analysis::Severity::Error, "build", "build-error",
                     analysis::Diagnostic::noIndex, "", "", msg});
        }
        totalErrors += report.errors();
        totalWarnings += report.warnings();
        if (!report.clean(werror))
            failed = true;

        if (cost) {
            if (!report.clean(werror))
                std::fputs(report.toText(stats).c_str(), stderr);
            if (!built)
                continue;
            const analysis::WorkloadCost c =
                analysis::CostModel::compute(w.program, cparams);
            if (json) {
                std::printf("%s\n",
                            analysis::costJsonLine(c, scale).c_str());
            } else {
                std::printf(
                    "%s: %s, %llu loop(s) (%llu bounded), insts in "
                    "[%llu, %llu], footprint %llu B, CPI %.2f, "
                    "<=%llu segment(s), <=%llu checker cycle(s)\n",
                    c.program.c_str(),
                    c.bounded ? "bounded" : "unbounded",
                    (unsigned long long)c.loops,
                    (unsigned long long)c.boundedLoops,
                    (unsigned long long)c.minDynInsts,
                    (unsigned long long)c.maxDynInsts,
                    (unsigned long long)c.footprintBytes,
                    c.cyclesPerInst,
                    (unsigned long long)c.predictedSegments,
                    (unsigned long long)c.checkerCyclesTotal);
            }
            continue;
        }

        if (vuln) {
            if (!report.clean(werror))
                std::fputs(report.toText(stats).c_str(), stderr);
            if (!built)
                continue;
            const auto va = analysis::VulnAnalysis::build(
                w.program, opts.extraRegions);
            if (json) {
                std::printf(
                    "%s\n",
                    analysis::vulnJsonLine(*va, name, scale).c_str());
            } else {
                const analysis::VulnAnalysis::Stats &st = va->stats();
                std::printf(
                    "%s: %llu/%llu register bits live (%.1f%%), "
                    "%llu interval-pruned edge(s), "
                    "%llu/%llu footprint bytes live at entry\n",
                    name.c_str(), (unsigned long long)st.regBitsLive,
                    (unsigned long long)st.regBitsTotal,
                    100.0 * st.liveFraction,
                    (unsigned long long)st.prunedEdges,
                    (unsigned long long)st.footprintLiveAtEntry,
                    (unsigned long long)st.footprintBytes);
            }
            if (chipSeed != 0) {
                // Rebuild the chip exactly as exp::runOne samples it,
                // so the fingerprint matches chip-mode campaign runs.
                const core::SystemConfig sys =
                    core::SystemConfig::forMode(core::Mode::ParaDox);
                faults::ChipConfig cc;
                cc.chipSeed = chipSeed;
                cc.checkerCount = sys.checkers.count;
                cc.logRows = unsigned(sys.log.segmentBytes /
                                      sys.log.loadEntryBytes);
                cc.shape = power::errorModelParams(name);
                const faults::ChipModel chip(cc);
                if (json) {
                    std::printf("%s\n",
                                analysis::vulnChipJsonLine(*va, chip,
                                                           name)
                                    .c_str());
                } else {
                    unsigned dead = 0;
                    for (const auto &cell : chip.cells())
                        if (va->cellVerdict(cell) ==
                            analysis::SiteVerdict::Dead)
                            ++dead;
                    std::printf("%s: chip %llu: %u/%zu weak cell(s) "
                                "provably dead\n",
                                name.c_str(),
                                (unsigned long long)chipSeed, dead,
                                chip.cells().size());
                }
            }
            continue;
        }

        if (memdep) {
            if (!report.clean(werror))
                std::fputs(report.toText(stats).c_str(), stderr);
            if (!built)
                continue;
            const analysis::Cfg cfg = analysis::Cfg::build(w.program);
            const std::vector<bool> reachable = cfg.reachableBlocks();
            const analysis::IntervalAnalysis ai =
                analysis::IntervalAnalysis::run(w.program, cfg,
                                                reachable);
            const analysis::Context ctx{w.program, cfg, reachable,
                                        opts};
            const analysis::MemDep md = analysis::MemDep::run(ctx, ai);
            const analysis::MemDep::PairCounts pairs = md.pairCounts();
            const auto dp = isa::DecodedProgram::get(w.program);
            // The byte geometry the running system admits batches
            // under (line size from the default hierarchy).
            const core::SystemConfig sys =
                core::SystemConfig::forMode(core::Mode::ParaDox);
            const analysis::EffectSummary es =
                analysis::EffectSummary::build(
                    *dp, core::logEffectParams(
                             sys, sys.hierarchy.l1d.lineBytes));
            if (json) {
                std::printf("%s\n",
                            analysis::memdepJsonLine(
                                name, scale, es, pairs,
                                md.accesses().size())
                                .c_str());
            } else {
                std::printf(
                    "%s: %zu access(es), pairs no/may/must "
                    "%llu/%llu/%llu, %zu run(s), max run bound "
                    "%llu B, max op bound %llu B\n",
                    name.c_str(), md.accesses().size(),
                    (unsigned long long)pairs.no,
                    (unsigned long long)pairs.may,
                    (unsigned long long)pairs.must,
                    es.runs().size(),
                    (unsigned long long)es.maxRunBytes(),
                    (unsigned long long)es.maxUopBytes());
            }
            continue;
        }

        if (json)
            std::printf("%s\n", report.toJson().c_str());
        else
            std::fputs(report.toText(stats).c_str(), stdout);
    }

    if (!json && !cost && !vuln && !memdep)
        std::printf("%zu workload(s): %zu error(s), %zu warning(s)%s\n",
                    names.size(), totalErrors, totalWarnings,
                    werror ? " [-Werror]" : "");
    return failed ? 1 : 0;
}
