/**
 * @file
 * prof_report: offline analysis of paradox-prof/1 host profiles.
 *
 * Single-profile mode prints the attribution tree in preorder --
 * call count, inclusive (total) and exclusive (self) milliseconds,
 * each as a share of the attributed root time, and, when the header
 * carries sim_instructions, the per-phase simulation speed the self
 * time corresponds to -- followed by the top-N phases by self time.
 *
 * With a second (baseline) profile the report becomes a comparison:
 * phases are matched by path, per-phase self-time deltas are printed
 * for every phase above the noise floor (--min-share, percent of the
 * root total, default 1), and --fail-above PCT turns any self-time
 * regression beyond PCT percent into exit status 1 -- the CI gate
 * for "a change made phase X slower".
 *
 * --json emits the same analysis as one machine-readable JSON
 * object.  Exit status: 0 ok, 1 regression beyond --fail-above,
 * 2 usage error, 3 unreadable profile.
 *
 *   prof_report [--top N] [--min-share PCT] [--fail-above PCT]
 *               [--json] PROFILE.jsonl [BASELINE.jsonl]
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "exp/cli.hh"
#include "obs/profiler.hh"

namespace
{

using namespace paradox;

double
ms(std::uint64_t ns)
{
    return double(ns) / 1e6;
}

/** Share of @p ns in @p root, in percent (0 when root is empty). */
double
pct(std::uint64_t ns, std::uint64_t root)
{
    return root ? 100.0 * double(ns) / double(root) : 0.0;
}

/** Self-time simulation speed in Minst/s (0 = unknown). */
double
minstPerSec(const obs::ProfPhase &p, std::uint64_t simInst)
{
    if (!simInst || !p.selfNs)
        return 0.0;
    return double(simInst) / (double(p.selfNs) / 1e9) / 1e6;
}

/** One matched phase in a comparison. */
struct Delta
{
    const obs::ProfPhase *cur = nullptr;  //!< null: baseline-only
    const obs::ProfPhase *base = nullptr; //!< null: new phase
    double deltaPct = 0.0;                //!< self-time change, percent
};

void
printSingle(const obs::ParsedProf &prof, unsigned top)
{
    const std::uint64_t root = prof.rootTotalNs;
    std::printf("  %9s %11s %6s %11s %6s %9s   phase\n", "count",
                "total ms", "tot%", "self ms", "self%", "Minst/s");
    for (const obs::ProfPhase &p : prof.phases) {
        const double speed = minstPerSec(p, prof.simInstructions);
        std::string label(std::size_t(p.depth) * 2, ' ');
        label += p.name;
        std::printf("  %9llu %11.2f %5.1f%% %11.2f %5.1f%% ",
                    (unsigned long long)p.count, ms(p.totalNs),
                    pct(p.totalNs, root), ms(p.selfNs),
                    pct(p.selfNs, root));
        if (speed > 0.0)
            std::printf("%9.1f", speed);
        else
            std::printf("%9s", "-");
        std::printf("   %s\n", label.c_str());
    }

    std::vector<obs::ProfPhase> hot = prof.phases;
    std::sort(hot.begin(), hot.end(),
              [](const obs::ProfPhase &a, const obs::ProfPhase &b) {
                  return a.selfNs > b.selfNs;
              });
    if (hot.size() > top)
        hot.resize(top);
    std::printf("\n  top %zu by self time:\n", hot.size());
    for (const obs::ProfPhase &p : hot)
        std::printf("    %7.2f ms  %5.1f%%  %s\n", ms(p.selfNs),
                    pct(p.selfNs, root), p.path.c_str());
}

void
jsonEscapeInto(std::string &out, const std::string &s)
{
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    unsigned top = 10;
    double min_share = 1.0;
    double fail_above = -1.0;
    exp::Cli cli("prof_report",
                 "analyze / compare paradox-prof/1 host profiles");
    cli.flag("json", json, "emit machine-readable JSON");
    cli.opt("top", top, "hot phases to list by self time");
    cli.opt("min-share", min_share,
            "comparison noise floor: ignore phases below this "
            "percent of the root total");
    cli.opt("fail-above", fail_above,
            "exit 1 when any phase's self time regresses more than "
            "this percent vs the baseline");

    // Cli has no positional support; split them off by hand.
    std::vector<std::string> flags, files;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help") {
            cli.usage(stdout);
            std::printf("\narguments:\n"
                        "  PROFILE.jsonl           profile to report\n"
                        "  BASELINE.jsonl          optional baseline "
                        "(comparison mode)\n");
            return 0;
        }
        if (arg.rfind("-", 0) == 0) {
            flags.push_back(arg);
            if ((arg == "--top" || arg == "--min-share" ||
                 arg == "--fail-above") &&
                i + 1 < argc)
                flags.push_back(argv[++i]);
        } else {
            files.push_back(arg);
        }
    }
    std::string error;
    if (!cli.parseArgs(flags, error)) {
        std::fprintf(stderr, "prof_report: %s\n", error.c_str());
        cli.usage(stderr);
        return 2;
    }
    if (files.empty() || files.size() > 2) {
        std::fprintf(stderr,
                     "prof_report: expected PROFILE.jsonl "
                     "[BASELINE.jsonl]\n");
        return 2;
    }

    obs::ParsedProf prof;
    if (!obs::readProfJsonlFile(files[0], prof, error)) {
        std::fprintf(stderr, "prof_report: %s: %s\n",
                     files[0].c_str(), error.c_str());
        return 3;
    }
    const bool compare = files.size() == 2;
    obs::ParsedProf base;
    if (compare && !obs::readProfJsonlFile(files[1], base, error)) {
        std::fprintf(stderr, "prof_report: %s: %s\n",
                     files[1].c_str(), error.c_str());
        return 3;
    }

    // Comparison: match by path, gate on the noise floor.  A phase
    // only present on one side is reported but never gates (there is
    // no ratio to take).
    std::vector<Delta> deltas;
    unsigned regressions = 0;
    if (compare) {
        std::map<std::string, const obs::ProfPhase *> by_path;
        for (const obs::ProfPhase &p : base.phases)
            by_path[p.path] = &p;
        for (const obs::ProfPhase &p : prof.phases) {
            Delta d;
            d.cur = &p;
            auto it = by_path.find(p.path);
            if (it != by_path.end()) {
                d.base = it->second;
                by_path.erase(it);
                if (d.base->selfNs)
                    d.deltaPct = 100.0 *
                                 (double(p.selfNs) -
                                  double(d.base->selfNs)) /
                                 double(d.base->selfNs);
            }
            const bool significant =
                pct(p.selfNs, prof.rootTotalNs) >= min_share ||
                (d.base && pct(d.base->selfNs, base.rootTotalNs) >=
                               min_share);
            if (!significant)
                continue;
            deltas.push_back(d);
            if (fail_above > 0.0 && d.base &&
                d.deltaPct > fail_above)
                ++regressions;
        }
        for (const auto &kv : by_path) {
            // Baseline-only phases (disappeared from the profile).
            if (pct(kv.second->selfNs, base.rootTotalNs) < min_share)
                continue;
            Delta d;
            d.base = kv.second;
            deltas.push_back(d);
        }
        std::sort(deltas.begin(), deltas.end(),
                  [](const Delta &a, const Delta &b) {
                      return a.deltaPct > b.deltaPct;
                  });
    }

    if (json) {
        std::string out = "{\"record\":\"prof_report\",\"profile\":\"";
        jsonEscapeInto(out, files[0]);
        out += "\",\"tool\":\"";
        jsonEscapeInto(out, prof.tool);
        out += "\",\"workload\":\"";
        jsonEscapeInto(out, prof.workload);
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "\",\"threads\":%u,\"wall_ns\":%llu,"
                      "\"root_total_ns\":%llu,\"coverage\":%.4f,"
                      "\"phases\":[",
                      prof.threads,
                      (unsigned long long)prof.wallNs,
                      (unsigned long long)prof.rootTotalNs,
                      prof.wallNs ? double(prof.rootTotalNs) /
                                        double(prof.wallNs)
                                  : 0.0);
        out += buf;
        for (std::size_t i = 0; i < prof.phases.size(); ++i) {
            const obs::ProfPhase &p = prof.phases[i];
            out += i ? ",{\"path\":\"" : "{\"path\":\"";
            jsonEscapeInto(out, p.path);
            std::snprintf(buf, sizeof buf,
                          "\",\"count\":%llu,\"total_ns\":%llu,"
                          "\"self_ns\":%llu}",
                          (unsigned long long)p.count,
                          (unsigned long long)p.totalNs,
                          (unsigned long long)p.selfNs);
            out += buf;
        }
        out += "]";
        if (compare) {
            std::snprintf(buf, sizeof buf,
                          ",\"baseline_root_total_ns\":%llu,"
                          "\"deltas\":[",
                          (unsigned long long)base.rootTotalNs);
            out += buf;
            for (std::size_t i = 0; i < deltas.size(); ++i) {
                const Delta &d = deltas[i];
                out += i ? ",{\"path\":\"" : "{\"path\":\"";
                jsonEscapeInto(out, d.cur ? d.cur->path
                                          : d.base->path);
                std::snprintf(
                    buf, sizeof buf,
                    "\",\"self_ns\":%llu,\"base_self_ns\":%llu,"
                    "\"delta_pct\":%.1f}",
                    (unsigned long long)(d.cur ? d.cur->selfNs : 0),
                    (unsigned long long)(d.base ? d.base->selfNs : 0),
                    d.deltaPct);
                out += buf;
            }
            std::snprintf(buf, sizeof buf,
                          "],\"regressions\":%u", regressions);
            out += buf;
        }
        out += "}";
        std::printf("%s\n", out.c_str());
        return regressions ? 1 : 0;
    }

    std::printf("profile: %s\n", files[0].c_str());
    std::printf("  tool %s", prof.tool.c_str());
    if (!prof.workload.empty())
        std::printf("  workload %s", prof.workload.c_str());
    std::printf("  threads %u\n", prof.threads);
    if (prof.wallNs)
        std::printf("  wall %.2f ms  attributed %.1f%%\n",
                    ms(prof.wallNs),
                    pct(prof.rootTotalNs, prof.wallNs));
    if (prof.simInstructions && prof.wallNs)
        std::printf("  sim %.1f Minst/s (%llu instructions)\n",
                    double(prof.simInstructions) /
                        (double(prof.wallNs) / 1e9) / 1e6,
                    (unsigned long long)prof.simInstructions);
    std::printf("\n");
    printSingle(prof, top);

    if (compare) {
        std::printf("\nbaseline: %s\n", files[1].c_str());
        std::printf("  root total %.2f ms -> %.2f ms (%+.1f%%)\n",
                    ms(base.rootTotalNs), ms(prof.rootTotalNs),
                    base.rootTotalNs
                        ? 100.0 * (double(prof.rootTotalNs) -
                                   double(base.rootTotalNs)) /
                              double(base.rootTotalNs)
                        : 0.0);
        std::printf("\n  self-time deltas (>= %.1f%% of root):\n",
                    min_share);
        for (const Delta &d : deltas) {
            const char *path =
                d.cur ? d.cur->path.c_str() : d.base->path.c_str();
            if (!d.base)
                std::printf("    %8.2f ms       new      %s\n",
                            ms(d.cur->selfNs), path);
            else if (!d.cur)
                std::printf("    %8.2f ms       gone     %s\n",
                            ms(d.base->selfNs), path);
            else
                std::printf("    %8.2f ms  %+7.1f%%     %s\n",
                            ms(d.cur->selfNs), d.deltaPct, path);
        }
        if (fail_above > 0.0) {
            if (regressions)
                std::printf("\n  %u phase(s) regressed more than "
                            "%.1f%% -- FAIL\n",
                            regressions, fail_above);
            else
                std::printf("\n  no phase regressed more than "
                            "%.1f%% -- ok\n",
                            fail_above);
        }
    }
    return regressions ? 1 : 0;
}
