/**
 * @file
 * trace_report: offline analysis of paradox-trace/1 JSONL traces.
 *
 * Reads the .jsonl twin that every traced run writes next to its
 * Chrome JSON (obs::writeTraceJsonl) and prints, per trace:
 *
 *   - per-track event summaries (spans / instants / counter samples)
 *   - segment-latency percentiles (exact, over the recorded "fill"
 *     and "check" span durations)
 *   - a rollback timeline (every recovery span, with its cause)
 *   - a time-in-voltage-level histogram (step-function weighting of
 *     the "voltage" counter track -- the figure 11 view)
 *   - error bursts: clusters of detection instants closer together
 *     than --burst-gap-us, the signature of an intermittent or
 *     latched fault source
 *
 * --cost COST.jsonl additionally cross-validates each trace against
 * the static segment-cost model (`isa_lint --ranges --cost --json`):
 * the summed "seg-insts" instants of a complete fault-free run must
 * land inside the model's [min_dyn_insts, max_dyn_insts] bounds.
 * Traces containing fault or recovery events are skipped (replayed
 * instructions would be double-counted); a bound violation makes the
 * exit status non-zero -- either the workload changed without
 * re-emitting the model, or the abstract interpretation is unsound.
 *
 * --memdep MEMDEP.jsonl cross-validates each fault-free trace
 * against the static memory-dependence model (`isa_lint --memdep
 * --json`): every segment's actual logged bytes ("seg-log-bytes")
 * must stay within the static bound the superblock gate admitted it
 * under ("seg-bound-bytes") and within committed-insts times the
 * model's per-op worst case.  The decoded-hash staleness gate is
 * shared with --cost.
 *
 * --json emits the same analysis as a single machine-readable JSON
 * object instead.  Exit status 0 iff every input parsed and no
 * static cost/memdep bound was violated; 1 on a violation or
 * unreadable trace; 2 on usage errors; 3 when a --cost/--memdep
 * model itself is unreadable or garbled (distinct so CI can tell
 * "the model is wrong" from "the model could not be loaded").
 *
 * --jobs N analyzes the input traces on N worker threads.  Results
 * are buffered and emitted in input order, so the report is
 * byte-identical at any job count (CI cmp-gates this).
 *
 *   trace_report [--json] [--burst-gap-us N] [--cost COST.jsonl]
 *                [--memdep MEMDEP.jsonl] [--jobs N] FILE.jsonl ...
 */

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/cli.hh"
#include "isa/decoded.hh"
#include "obs/trace.hh"
#include "obs/trace_reader.hh"
#include "sim/types.hh"
#include "workloads/workload.hh"

namespace
{

using namespace paradox;

/** Exact percentile over a sorted sample vector (nearest-rank). */
double
pctile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double rank = p * double(sorted.size() - 1);
    const std::size_t lo = std::size_t(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - double(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double
usOf(Tick t)
{
    return double(t) / double(ticksPerUs);
}

/** AIMD voltage steps are ~0.1 mV; bin to 5 mV for the histogram. */
double
voltageBin(double v)
{
    return std::round(v / 0.005) * 0.005;
}

struct TrackSummary
{
    std::uint64_t spans = 0;
    std::uint64_t instants = 0;
    std::uint64_t counters = 0;
    Tick busy = 0;  //!< summed span duration
};

struct SpanStats
{
    std::vector<double> durUs;  //!< sorted after collection

    void
    add(Tick dur)
    {
        durUs.push_back(usOf(dur));
    }
};

struct Burst
{
    Tick start = 0;
    Tick end = 0;
    std::size_t count = 0;
};

struct Analysis
{
    std::string path;
    obs::ParsedTrace trace;
    std::map<obs::TrackId, TrackSummary> perTrack;
    std::map<std::string, SpanStats> spans;  //!< by event name
    std::vector<const obs::ParsedEvent *> rollbacks;
    /** (voltage level binned to 5 mV, time spent at it). */
    std::map<double, Tick> voltageTime;
    std::vector<Burst> bursts;
    Tick span = 0;  //!< last event timestamp

    /** @{ Static-cost cross-validation inputs. */
    std::uint64_t segInsts = 0;   //!< summed "seg-insts" values
    std::uint64_t segments = 0;   //!< number of "seg-insts" instants
    bool faulty = false;          //!< any fault/recovery event seen
    /** @} */

    /** @{ Memdep cross-validation inputs, in segment order. */
    std::vector<std::uint64_t> segInstsVec;   //!< "seg-insts"
    std::vector<std::uint64_t> segLogBytes;   //!< "seg-log-bytes"
    std::vector<std::uint64_t> segBoundBytes; //!< "seg-bound-bytes"
    /** @} */
};

/** One paradox-cost/1 record, keyed by program name. */
struct CostRec
{
    std::uint64_t minDyn = 0;
    std::uint64_t maxDyn = 0;
    bool bounded = false;
    std::uint64_t scale = 1;
    /** @{ Decoded-image identity the model's mix was counted over
     *  (0 when the record predates decoded_uops/decoded_hash). */
    std::uint64_t decodedUops = 0;
    std::uint64_t decodedHash = 0;
    /** @} */
};

/** Outcome of checking one trace against the cost model. */
struct CostCheck
{
    bool attempted = false;  //!< a matching cost record existed
    bool skipped = false;    //!< trace had faults or no seg-insts
    std::string skipReason;
    bool ok = true;          //!< bounds held (when not skipped)
    /** @{ Decoded-image verification: the record's decoded identity
     *  vs a fresh decode of the workload at the record's scale. */
    bool decodedChecked = false;
    bool decodedOk = true;
    std::string decodedNote;
    /** @} */
    CostRec rec;
};

bool
loadCostModel(const std::string &path,
              std::map<std::string, CostRec> &out, std::string &error)
{
    std::ifstream is(path);
    if (!is) {
        error = "cannot open " + path;
        return false;
    }
    std::string line, v;
    bool sawHeader = false;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        if (obs::jsonField(line, "schema", v)) {
            if (v != "paradox-cost/1") {
                error = path + ": unsupported schema '" + v + "'";
                return false;
            }
            sawHeader = true;
            continue;
        }
        if (!obs::jsonField(line, "record", v) || v != "cost")
            continue;
        std::string prog;
        if (!obs::jsonField(line, "program", prog) || prog.empty()) {
            error = path + ": cost record without a program name";
            return false;
        }
        CostRec rec;
        // A record that lost its bound fields (truncated write,
        // hand-edited file) must fail loudly: silently defaulting
        // the bounds to zero would turn every trace into a
        // "violation" of a model that was never computed.
        if (!obs::jsonField(line, "min_dyn_insts", v)) {
            error = path + ": garbled cost record for '" + prog +
                    "' (missing min_dyn_insts)";
            return false;
        }
        rec.minDyn = std::strtoull(v.c_str(), nullptr, 10);
        if (!obs::jsonField(line, "max_dyn_insts", v)) {
            error = path + ": garbled cost record for '" + prog +
                    "' (missing max_dyn_insts)";
            return false;
        }
        rec.maxDyn = std::strtoull(v.c_str(), nullptr, 10);
        if (rec.maxDyn < rec.minDyn) {
            error = path + ": garbled cost record for '" + prog +
                    "' (max_dyn_insts < min_dyn_insts)";
            return false;
        }
        if (obs::jsonField(line, "bounded", v))
            rec.bounded = v == "1" || v == "true";
        if (obs::jsonField(line, "scale", v))
            rec.scale = std::strtoull(v.c_str(), nullptr, 10);
        if (obs::jsonField(line, "decoded_uops", v))
            rec.decodedUops = std::strtoull(v.c_str(), nullptr, 10);
        if (obs::jsonField(line, "decoded_hash", v))
            rec.decodedHash = std::strtoull(v.c_str(), nullptr, 10);
        out[prog] = rec;
    }
    if (!sawHeader || out.empty()) {
        error = path + ": no paradox-cost/1 records "
                "(expected `isa_lint --ranges --cost --json` output)";
        return false;
    }
    return true;
}

/**
 * Check one analyzed trace against the model.  Only complete
 * fault-free runs are comparable: any injection, detection, retry,
 * rollback, or watchdog event means instructions were re-executed
 * (or the run was cut short), so the seg-insts sum no longer counts
 * each committed instruction exactly once.
 */
CostCheck
checkCost(const Analysis &a,
          const std::map<std::string, CostRec> &model)
{
    CostCheck c;
    auto it = model.find(a.trace.tool);
    if (it == model.end())
        return c;
    c.attempted = true;
    c.rec = it->second;

    // Verify the decoded-image identity the cost record was counted
    // over against a fresh decode of the same workload at the
    // record's scale: a stale cost file (the workload changed after
    // `isa_lint --cost` ran) must fail loudly, not slip a wrong
    // bound past the seg-insts comparison below.
    if (c.rec.decodedUops != 0) {
        c.decodedChecked = true;
        try {
            const workloads::Workload w =
                workloads::build(a.trace.tool,
                                 unsigned(c.rec.scale));
            const auto dp = isa::DecodedProgram::get(w.program);
            if (dp->size() != c.rec.decodedUops ||
                dp->contentHash() != c.rec.decodedHash) {
                c.decodedOk = false;
                c.ok = false;
                c.decodedNote =
                    "cost record decode (" +
                    std::to_string(c.rec.decodedUops) +
                    " uops) does not match the current workload (" +
                    std::to_string(dp->size()) +
                    " uops) -- stale cost file?";
            }
        } catch (const std::exception &e) {
            // Not a registered workload (custom tool name): nothing
            // to re-decode against.
            c.decodedChecked = false;
        }
    }

    if (a.faulty) {
        c.skipped = true;
        c.skipReason = "trace contains fault/recovery events";
        return c;
    }
    if (a.segments == 0) {
        c.skipped = true;
        c.skipReason = "trace has no seg-insts events";
        return c;
    }
    if (a.segInsts < c.rec.minDyn)
        c.ok = false;
    if (c.rec.bounded && a.segInsts > c.rec.maxDyn)
        c.ok = false;
    return c;
}

/** One paradox-memdep/1 record, keyed by program name. */
struct MemdepRec
{
    std::uint64_t scale = 1;
    std::uint64_t decodedUops = 0;
    std::uint64_t decodedHash = 0;
    std::uint64_t maxRunBytes = 0;  //!< worst per-run log bound
    std::uint64_t maxUopBytes = 0;  //!< worst per-op log bound
};

/** Outcome of checking one trace against the memdep model. */
struct MemdepCheck
{
    bool attempted = false;  //!< a matching memdep record existed
    bool skipped = false;    //!< trace had faults or no byte events
    std::string skipReason;
    bool ok = true;          //!< all per-segment bounds held
    std::size_t segsChecked = 0;
    std::size_t violations = 0;
    /** @{ Decoded-image staleness gate (same pattern as --cost). */
    bool decodedChecked = false;
    bool decodedOk = true;
    std::string decodedNote;
    /** @} */
    MemdepRec rec;
};

bool
loadMemdepModel(const std::string &path,
                std::map<std::string, MemdepRec> &out,
                std::string &error)
{
    std::ifstream is(path);
    if (!is) {
        error = "cannot open " + path;
        return false;
    }
    std::string line, v;
    bool sawHeader = false;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        if (obs::jsonField(line, "schema", v)) {
            if (v != "paradox-memdep/1") {
                error = path + ": unsupported schema '" + v + "'";
                return false;
            }
            sawHeader = true;
            continue;
        }
        if (!obs::jsonField(line, "record", v) || v != "memdep")
            continue;
        std::string prog;
        if (!obs::jsonField(line, "program", prog) || prog.empty()) {
            error = path + ": memdep record without a program name";
            return false;
        }
        MemdepRec rec;
        // Records that lost their bound fields must fail loudly: a
        // defaulted zero bound would flag every segment.
        if (!obs::jsonField(line, "max_run_log_bytes", v)) {
            error = path + ": garbled memdep record for '" + prog +
                    "' (missing max_run_log_bytes)";
            return false;
        }
        rec.maxRunBytes = std::strtoull(v.c_str(), nullptr, 10);
        if (!obs::jsonField(line, "max_uop_log_bytes", v)) {
            error = path + ": garbled memdep record for '" + prog +
                    "' (missing max_uop_log_bytes)";
            return false;
        }
        rec.maxUopBytes = std::strtoull(v.c_str(), nullptr, 10);
        if (obs::jsonField(line, "scale", v))
            rec.scale = std::strtoull(v.c_str(), nullptr, 10);
        if (obs::jsonField(line, "decoded_uops", v))
            rec.decodedUops = std::strtoull(v.c_str(), nullptr, 10);
        if (obs::jsonField(line, "decoded_hash", v))
            rec.decodedHash = std::strtoull(v.c_str(), nullptr, 10);
        out[prog] = rec;
    }
    if (!sawHeader || out.empty()) {
        error = path + ": no paradox-memdep/1 records (expected "
                "`isa_lint --memdep --json` output)";
        return false;
    }
    return true;
}

/**
 * Check one analyzed trace against the memdep model.  Only
 * fault-free runs are comparable (a rolled-back segment's byte
 * instants describe work that was undone).  Two invariants, both
 * per segment:
 *
 *  - actual log bytes <= the admitted static bound the gate charged
 *    ("seg-bound-bytes"), the effect-summary soundness contract;
 *  - actual log bytes <= committed insts * max per-op bound, the
 *    per-op byte model validated independently of the gate.
 */
MemdepCheck
checkMemdep(const Analysis &a,
            const std::map<std::string, MemdepRec> &model)
{
    MemdepCheck c;
    auto it = model.find(a.trace.tool);
    if (it == model.end())
        return c;
    c.attempted = true;
    c.rec = it->second;

    // Staleness gate: the model must describe the decoded image the
    // traced run actually executed.
    if (c.rec.decodedUops != 0) {
        c.decodedChecked = true;
        try {
            const workloads::Workload w = workloads::build(
                a.trace.tool, unsigned(c.rec.scale));
            const auto dp = isa::DecodedProgram::get(w.program);
            if (dp->size() != c.rec.decodedUops ||
                dp->contentHash() != c.rec.decodedHash) {
                c.decodedOk = false;
                c.ok = false;
                c.decodedNote =
                    "memdep record decode (" +
                    std::to_string(c.rec.decodedUops) +
                    " uops) does not match the current workload (" +
                    std::to_string(dp->size()) +
                    " uops) -- stale memdep file?";
            }
        } catch (const std::exception &) {
            c.decodedChecked = false;
        }
    }

    if (a.faulty) {
        c.skipped = true;
        c.skipReason = "trace contains fault/recovery events";
        return c;
    }
    if (a.segLogBytes.empty()) {
        c.skipped = true;
        c.skipReason = "trace has no seg-log-bytes events";
        return c;
    }
    for (std::size_t i = 0; i < a.segLogBytes.size(); ++i) {
        ++c.segsChecked;
        bool bad = false;
        if (i < a.segBoundBytes.size() &&
            a.segLogBytes[i] > a.segBoundBytes[i])
            bad = true;
        if (i < a.segInstsVec.size() &&
            a.segLogBytes[i] >
                a.segInstsVec[i] * c.rec.maxUopBytes)
            bad = true;
        if (bad)
            ++c.violations;
    }
    if (c.violations > 0)
        c.ok = false;
    return c;
}

bool
isFaultEvent(const std::string &name)
{
    return name == "inject" || name == "detect" ||
           name == "main-fault" || name == "retry-save" ||
           name == "watchdog-trip" || name == "ecc-due" ||
           name == "rollback" || name == "due-rollback" ||
           name == "panic-reset";
}

bool
isRollback(const std::string &name)
{
    return name == "rollback" || name == "due-rollback";
}

bool
isDetect(const std::string &name)
{
    return name == "detect" || name == "main-fault" ||
           name == "watchdog-trip";
}

void
analyze(Analysis &a, Tick burst_gap)
{
    std::vector<Tick> detects;
    const obs::ParsedEvent *last_voltage = nullptr;

    for (const obs::ParsedEvent &e : a.trace.events) {
        TrackSummary &t = a.perTrack[e.track];
        a.span = std::max(a.span, e.ts + e.dur);
        switch (e.phase) {
          case obs::Phase::Complete:
            ++t.spans;
            t.busy += e.dur;
            a.spans[e.name].add(e.dur);
            if (isRollback(e.name))
                a.rollbacks.push_back(&e);
            if (isFaultEvent(e.name))
                a.faulty = true;
            break;
          case obs::Phase::Begin:
            // Begin/End pairs are rendered as one span; accumulate
            // on End so unterminated pairs don't count.
            break;
          case obs::Phase::End:
            break;
          case obs::Phase::Instant:
            ++t.instants;
            if (isDetect(e.name))
                detects.push_back(e.ts);
            if (e.name == "seg-insts") {
                a.segInsts += std::uint64_t(e.value);
                ++a.segments;
                a.segInstsVec.push_back(std::uint64_t(e.value));
            }
            if (e.name == "seg-log-bytes")
                a.segLogBytes.push_back(std::uint64_t(e.value));
            if (e.name == "seg-bound-bytes")
                a.segBoundBytes.push_back(std::uint64_t(e.value));
            if (isFaultEvent(e.name))
                a.faulty = true;
            break;
          case obs::Phase::Counter:
            ++t.counters;
            if (e.name == "voltage") {
                if (last_voltage)
                    a.voltageTime[voltageBin(last_voltage->value)] +=
                        e.ts - last_voltage->ts;
                last_voltage = &e;
            }
            break;
        }
    }

    // Pair Begin/End spans (per track, LIFO nesting).
    std::map<obs::TrackId, std::vector<const obs::ParsedEvent *>> open;
    for (const obs::ParsedEvent &e : a.trace.events) {
        if (e.phase == obs::Phase::Begin) {
            open[e.track].push_back(&e);
        } else if (e.phase == obs::Phase::End) {
            auto &stack = open[e.track];
            if (stack.empty())
                continue;
            const obs::ParsedEvent *b = stack.back();
            stack.pop_back();
            TrackSummary &t = a.perTrack[e.track];
            ++t.spans;
            t.busy += e.ts - b->ts;
            a.spans[b->name.empty() ? e.name : b->name].add(e.ts -
                                                           b->ts);
        }
    }

    // Close the final voltage level at the end of the trace.
    if (last_voltage && a.span > last_voltage->ts)
        a.voltageTime[voltageBin(last_voltage->value)] +=
            a.span - last_voltage->ts;

    for (auto &kv : a.spans)
        std::sort(kv.second.durUs.begin(), kv.second.durUs.end());

    // Error bursts: runs of detection instants with gaps < burst_gap.
    std::sort(detects.begin(), detects.end());
    for (std::size_t i = 0; i < detects.size();) {
        std::size_t j = i + 1;
        while (j < detects.size() &&
               detects[j] - detects[j - 1] < burst_gap)
            ++j;
        if (j - i >= 2)
            a.bursts.push_back({detects[i], detects[j - 1], j - i});
        i = j;
    }

    std::sort(a.rollbacks.begin(), a.rollbacks.end(),
              [](const obs::ParsedEvent *x, const obs::ParsedEvent *y) {
                  return x->ts < y->ts;
              });
}

void
printCostText(const Analysis &a, const CostCheck &c)
{
    std::printf("\ncost cross-validation:\n");
    if (!c.attempted) {
        std::printf("  no cost record for tool '%s'\n",
                    a.trace.tool.c_str());
        return;
    }
    if (c.decodedChecked)
        std::printf("  decoded image: %llu uop(s), %s\n",
                    (unsigned long long)c.rec.decodedUops,
                    c.decodedOk ? "matches current decode"
                                : c.decodedNote.c_str());
    if (c.skipped) {
        std::printf("  skipped: %s\n", c.skipReason.c_str());
        return;
    }
    std::printf("  %llu committed insts over %llu segment(s); "
                "static bounds [%llu, %s]: %s\n",
                (unsigned long long)a.segInsts,
                (unsigned long long)a.segments,
                (unsigned long long)c.rec.minDyn,
                c.rec.bounded
                    ? std::to_string(c.rec.maxDyn).c_str()
                    : "unbounded",
                c.ok ? "OK" : "VIOLATED");
}

void
printMemdepText(const Analysis &a, const MemdepCheck &c)
{
    std::printf("\nmemdep cross-validation:\n");
    if (!c.attempted) {
        std::printf("  no memdep record for tool '%s'\n",
                    a.trace.tool.c_str());
        return;
    }
    if (c.decodedChecked)
        std::printf("  decoded image: %llu uop(s), %s\n",
                    (unsigned long long)c.rec.decodedUops,
                    c.decodedOk ? "matches current decode"
                                : c.decodedNote.c_str());
    if (c.skipped) {
        std::printf("  skipped: %s\n", c.skipReason.c_str());
        return;
    }
    std::printf("  %zu segment(s) checked against per-run bounds "
                "(max run %llu B, max op %llu B): %zu violation(s) "
                "-- %s\n",
                c.segsChecked,
                (unsigned long long)c.rec.maxRunBytes,
                (unsigned long long)c.rec.maxUopBytes, c.violations,
                c.ok ? "OK" : "VIOLATED");
}

void
printText(const Analysis &a, const CostCheck *cost,
          const MemdepCheck *memdep)
{
    std::printf("== %s ==\n", a.path.c_str());
    std::printf("tool %s, %zu tracks, %zu events, %.3f ms spanned",
                a.trace.tool.empty() ? "?" : a.trace.tool.c_str(),
                a.trace.tracks.size(), a.trace.events.size(),
                usOf(a.span) / 1e3);
    if (a.trace.dropped)
        std::printf(" (%llu DROPPED)",
                    (unsigned long long)a.trace.dropped);
    std::printf("\n\ntracks:\n");
    for (const auto &kv : a.perTrack) {
        const TrackSummary &t = kv.second;
        std::printf("  %-14s %6llu spans %6llu instants "
                    "%6llu samples  busy %.3f ms\n",
                    a.trace.trackName(kv.first).c_str(),
                    (unsigned long long)t.spans,
                    (unsigned long long)t.instants,
                    (unsigned long long)t.counters,
                    usOf(t.busy) / 1e3);
    }

    std::printf("\nlatency percentiles (us):\n");
    std::printf("  %-14s %8s %8s %8s %8s %8s %8s\n", "span", "count",
                "p50", "p90", "p95", "p99", "max");
    for (const auto &kv : a.spans) {
        const std::vector<double> &d = kv.second.durUs;
        std::printf("  %-14s %8zu %8.2f %8.2f %8.2f %8.2f %8.2f\n",
                    kv.first.c_str(), d.size(), pctile(d, 0.50),
                    pctile(d, 0.90), pctile(d, 0.95), pctile(d, 0.99),
                    d.empty() ? 0.0 : d.back());
    }

    if (!a.rollbacks.empty()) {
        std::printf("\nrollback timeline:\n");
        for (const obs::ParsedEvent *e : a.rollbacks)
            std::printf("  %12.3f us  %-12s %6.2f us%s%s\n",
                        usOf(e->ts), e->name.c_str(), usOf(e->dur),
                        e->detail.empty() ? "" : "  cause=",
                        e->detail.c_str());
    }

    if (!a.voltageTime.empty()) {
        Tick total = 0;
        for (const auto &kv : a.voltageTime)
            total += kv.second;
        std::printf("\ntime in voltage level:\n");
        for (const auto &kv : a.voltageTime)
            std::printf("  %.4f V  %10.3f ms  %5.1f%%\n", kv.first,
                        usOf(kv.second) / 1e3,
                        total ? 100.0 * double(kv.second) /
                                    double(total)
                              : 0.0);
    }

    if (!a.bursts.empty()) {
        std::printf("\nerror bursts:\n");
        for (const Burst &b : a.bursts)
            std::printf("  %12.3f us  %zu detections in %.2f us\n",
                        usOf(b.start), b.count, usOf(b.end - b.start));
    }
    if (cost)
        printCostText(a, *cost);
    if (memdep)
        printMemdepText(a, *memdep);
    std::printf("\n");
}

void
jsonEscapeTo(std::ostringstream &os, const std::string &s)
{
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
}

std::string
toJson(const Analysis &a, const CostCheck *cost,
       const MemdepCheck *memdep)
{
    std::ostringstream os;
    os << "{\"file\":\"";
    jsonEscapeTo(os, a.path);
    os << "\",\"tool\":\"";
    jsonEscapeTo(os, a.trace.tool);
    os << "\",\"events\":" << a.trace.events.size()
       << ",\"dropped\":" << a.trace.dropped
       << ",\"span_us\":" << usOf(a.span);
    os << ",\"tracks\":{";
    bool first = true;
    for (const auto &kv : a.perTrack) {
        if (!first)
            os << ",";
        first = false;
        os << "\"";
        jsonEscapeTo(os, a.trace.trackName(kv.first));
        os << "\":{\"spans\":" << kv.second.spans
           << ",\"instants\":" << kv.second.instants
           << ",\"samples\":" << kv.second.counters
           << ",\"busy_us\":" << usOf(kv.second.busy) << "}";
    }
    os << "},\"latency_us\":{";
    first = true;
    for (const auto &kv : a.spans) {
        if (!first)
            os << ",";
        first = false;
        const std::vector<double> &d = kv.second.durUs;
        os << "\"";
        jsonEscapeTo(os, kv.first);
        os << "\":{\"count\":" << d.size()
           << ",\"p50\":" << pctile(d, 0.50)
           << ",\"p90\":" << pctile(d, 0.90)
           << ",\"p95\":" << pctile(d, 0.95)
           << ",\"p99\":" << pctile(d, 0.99)
           << ",\"max\":" << (d.empty() ? 0.0 : d.back()) << "}";
    }
    os << "},\"rollbacks\":[";
    first = true;
    for (const obs::ParsedEvent *e : a.rollbacks) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"ts_us\":" << usOf(e->ts)
           << ",\"dur_us\":" << usOf(e->dur) << ",\"kind\":\"";
        jsonEscapeTo(os, e->name);
        os << "\",\"cause\":\"";
        jsonEscapeTo(os, e->detail);
        os << "\"}";
    }
    os << "],\"voltage_time_ms\":{";
    first = true;
    for (const auto &kv : a.voltageTime) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << kv.first << "\":" << usOf(kv.second) / 1e3;
    }
    os << "},\"bursts\":[";
    first = true;
    for (const Burst &b : a.bursts) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"start_us\":" << usOf(b.start)
           << ",\"span_us\":" << usOf(b.end - b.start)
           << ",\"detections\":" << b.count << "}";
    }
    os << "]";
    if (cost) {
        os << ",\"cost\":{\"attempted\":"
           << (cost->attempted ? "true" : "false");
        if (cost->attempted) {
            if (cost->decodedChecked) {
                os << ",\"decoded_uops\":" << cost->rec.decodedUops
                   << ",\"decoded_ok\":"
                   << (cost->decodedOk ? "true" : "false");
            }
            os << ",\"skipped\":" << (cost->skipped ? "true" : "false");
            if (cost->skipped) {
                os << ",\"skip_reason\":\"";
                jsonEscapeTo(os, cost->skipReason);
                os << "\"";
            } else {
                os << ",\"seg_insts\":" << a.segInsts
                   << ",\"segments\":" << a.segments
                   << ",\"min_dyn_insts\":" << cost->rec.minDyn
                   << ",\"bounded\":"
                   << (cost->rec.bounded ? "true" : "false");
                if (cost->rec.bounded)
                    os << ",\"max_dyn_insts\":" << cost->rec.maxDyn;
                os << ",\"ok\":" << (cost->ok ? "true" : "false");
            }
        }
        os << "}";
    }
    if (memdep) {
        os << ",\"memdep\":{\"attempted\":"
           << (memdep->attempted ? "true" : "false");
        if (memdep->attempted) {
            if (memdep->decodedChecked) {
                os << ",\"decoded_uops\":" << memdep->rec.decodedUops
                   << ",\"decoded_ok\":"
                   << (memdep->decodedOk ? "true" : "false");
            }
            os << ",\"skipped\":"
               << (memdep->skipped ? "true" : "false");
            if (memdep->skipped) {
                os << ",\"skip_reason\":\"";
                jsonEscapeTo(os, memdep->skipReason);
                os << "\"";
            } else {
                os << ",\"segments\":" << memdep->segsChecked
                   << ",\"max_run_log_bytes\":"
                   << memdep->rec.maxRunBytes
                   << ",\"max_uop_log_bytes\":"
                   << memdep->rec.maxUopBytes
                   << ",\"violations\":" << memdep->violations
                   << ",\"ok\":" << (memdep->ok ? "true" : "false");
            }
        }
        os << "}";
    }
    os << "}";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    unsigned burst_gap_us = 50;
    std::string costPath;
    std::string memdepPath;
    exp::Cli cli("trace_report",
                 "summarize paradox-trace/1 execution traces");
    cli.flag("json", json, "emit machine-readable JSON");
    cli.opt("burst-gap-us", burst_gap_us,
            "max gap between detections in one burst");
    cli.opt("cost", costPath,
            "paradox-cost/1 JSONL to cross-validate traces against");
    cli.opt("memdep", memdepPath,
            "paradox-memdep/1 JSONL to cross-validate per-segment "
            "log bytes against");
    unsigned jobsOpt = 1;
    cli.opt("jobs", jobsOpt,
            "worker threads analyzing traces (output stays in "
            "input order)");

    // Cli has no positional support; split them off by hand.
    std::vector<std::string> flags, files;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help") {
            cli.usage(stdout);
            std::printf("\narguments:\n  FILE.jsonl ...        "
                        "traces to analyze\n");
            return 0;
        }
        if (arg.rfind("-", 0) == 0) {
            flags.push_back(arg);
            if ((arg == "--burst-gap-us" || arg == "--cost" ||
                 arg == "--memdep" || arg == "--jobs") &&
                i + 1 < argc)
                flags.push_back(argv[++i]);
        } else {
            files.push_back(arg);
        }
    }
    std::string error;
    if (!cli.parseArgs(flags, error)) {
        std::fprintf(stderr, "trace_report: %s\n", error.c_str());
        cli.usage(stderr);
        return 2;
    }
    if (files.empty()) {
        std::fprintf(stderr,
                     "trace_report: no input traces (expected "
                     "FILE.jsonl ...)\n");
        return 2;
    }

    std::map<std::string, CostRec> costModel;
    const bool haveCost = !costPath.empty();
    if (haveCost && !loadCostModel(costPath, costModel, error)) {
        // Exit 3, distinct from both a bound violation (1) and a
        // usage error (2): the model could not be used at all, so
        // nothing was cross-validated.
        std::fprintf(stderr,
                     "trace_report: cost model unusable: %s (no "
                     "traces were checked; this is not a bound "
                     "violation)\n",
                     error.c_str());
        return 3;
    }
    std::map<std::string, MemdepRec> memdepModel;
    const bool haveMemdep = !memdepPath.empty();
    if (haveMemdep &&
        !loadMemdepModel(memdepPath, memdepModel, error)) {
        std::fprintf(stderr,
                     "trace_report: memdep model unusable: %s (no "
                     "traces were checked; this is not a bound "
                     "violation)\n",
                     error.c_str());
        return 3;
    }

    // Per-file analysis is independent: read, analyze and
    // cross-validate on worker threads (the loaded models are
    // read-only), then aggregate and print serially in input order
    // so the report is byte-identical at any --jobs.
    struct FileJob
    {
        bool readOk = false;
        std::string readError;
        Analysis a;
        CostCheck check;
        MemdepCheck mdCheck;
    };
    std::vector<FileJob> results(files.size());
    {
        const unsigned jobs = std::max(
            1u, std::min<unsigned>(jobsOpt,
                                   unsigned(files.size())));
        std::atomic<std::size_t> cursor{0};
        auto worker = [&] {
            for (std::size_t i;
                 (i = cursor.fetch_add(1)) < files.size();) {
                FileJob &job = results[i];
                job.a.path = files[i];
                job.readOk = obs::readTraceJsonlFile(
                    files[i], job.a.trace, job.readError);
                if (!job.readOk)
                    continue;
                analyze(job.a, Tick(burst_gap_us) * ticksPerUs);
                if (haveCost)
                    job.check = checkCost(job.a, costModel);
                if (haveMemdep)
                    job.mdCheck = checkMemdep(job.a, memdepModel);
            }
        };
        if (jobs == 1) {
            worker();
        } else {
            std::vector<std::thread> pool;
            for (unsigned t = 0; t < jobs; ++t)
                pool.emplace_back(worker);
            for (std::thread &t : pool)
                t.join();
        }
    }

    bool all_ok = true;
    bool first = true;
    std::size_t costChecked = 0, costViolated = 0;
    std::size_t memdepChecked = 0, memdepViolated = 0;
    if (json)
        std::printf("[");
    for (FileJob &job : results) {
        if (!job.readOk) {
            std::fprintf(stderr, "trace_report: %s: %s\n",
                         job.a.path.c_str(), job.readError.c_str());
            all_ok = false;
            continue;
        }
        const Analysis &a = job.a;
        if (haveCost) {
            const CostCheck &check = job.check;
            if (check.attempted && check.decodedChecked &&
                !check.decodedOk)
                all_ok = false;
            if (check.attempted && !check.skipped) {
                ++costChecked;
                if (!check.ok) {
                    ++costViolated;
                    all_ok = false;
                }
            }
        }
        if (haveMemdep) {
            const MemdepCheck &mdCheck = job.mdCheck;
            if (mdCheck.attempted && mdCheck.decodedChecked &&
                !mdCheck.decodedOk)
                all_ok = false;
            if (mdCheck.attempted && !mdCheck.skipped) {
                ++memdepChecked;
                if (!mdCheck.ok) {
                    ++memdepViolated;
                    all_ok = false;
                }
            }
        }
        if (json) {
            std::printf("%s%s", first ? "" : ",\n",
                        toJson(a, haveCost ? &job.check : nullptr,
                               haveMemdep ? &job.mdCheck : nullptr)
                            .c_str());
            first = false;
        } else {
            printText(a, haveCost ? &job.check : nullptr,
                      haveMemdep ? &job.mdCheck : nullptr);
        }
    }
    if (json)
        std::printf("]\n");
    if (haveCost)
        std::fprintf(stderr,
                     "trace_report: cost model: %zu trace(s) checked, "
                     "%zu violation(s)\n", costChecked, costViolated);
    if (haveMemdep)
        std::fprintf(stderr,
                     "trace_report: memdep model: %zu trace(s) "
                     "checked, %zu violation(s)\n",
                     memdepChecked, memdepViolated);
    return all_ok ? 0 : 1;
}
