/**
 * @file
 * trace_report: offline analysis of paradox-trace/1 JSONL traces.
 *
 * Reads the .jsonl twin that every traced run writes next to its
 * Chrome JSON (obs::writeTraceJsonl) and prints, per trace:
 *
 *   - per-track event summaries (spans / instants / counter samples)
 *   - segment-latency percentiles (exact, over the recorded "fill"
 *     and "check" span durations)
 *   - a rollback timeline (every recovery span, with its cause)
 *   - a time-in-voltage-level histogram (step-function weighting of
 *     the "voltage" counter track -- the figure 11 view)
 *   - error bursts: clusters of detection instants closer together
 *     than --burst-gap-us, the signature of an intermittent or
 *     latched fault source
 *
 * --json emits the same analysis as a single machine-readable JSON
 * object instead.  Exit status 0 iff every input parsed.
 *
 *   trace_report [--json] [--burst-gap-us N] FILE.jsonl ...
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "exp/cli.hh"
#include "obs/trace.hh"
#include "obs/trace_reader.hh"
#include "sim/types.hh"

namespace
{

using namespace paradox;

/** Exact percentile over a sorted sample vector (nearest-rank). */
double
pctile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double rank = p * double(sorted.size() - 1);
    const std::size_t lo = std::size_t(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - double(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double
usOf(Tick t)
{
    return double(t) / double(ticksPerUs);
}

/** AIMD voltage steps are ~0.1 mV; bin to 5 mV for the histogram. */
double
voltageBin(double v)
{
    return std::round(v / 0.005) * 0.005;
}

struct TrackSummary
{
    std::uint64_t spans = 0;
    std::uint64_t instants = 0;
    std::uint64_t counters = 0;
    Tick busy = 0;  //!< summed span duration
};

struct SpanStats
{
    std::vector<double> durUs;  //!< sorted after collection

    void
    add(Tick dur)
    {
        durUs.push_back(usOf(dur));
    }
};

struct Burst
{
    Tick start = 0;
    Tick end = 0;
    std::size_t count = 0;
};

struct Analysis
{
    std::string path;
    obs::ParsedTrace trace;
    std::map<obs::TrackId, TrackSummary> perTrack;
    std::map<std::string, SpanStats> spans;  //!< by event name
    std::vector<const obs::ParsedEvent *> rollbacks;
    /** (voltage level binned to 5 mV, time spent at it). */
    std::map<double, Tick> voltageTime;
    std::vector<Burst> bursts;
    Tick span = 0;  //!< last event timestamp
};

bool
isRollback(const std::string &name)
{
    return name == "rollback" || name == "due-rollback";
}

bool
isDetect(const std::string &name)
{
    return name == "detect" || name == "main-fault" ||
           name == "watchdog-trip";
}

void
analyze(Analysis &a, Tick burst_gap)
{
    std::vector<Tick> detects;
    const obs::ParsedEvent *last_voltage = nullptr;

    for (const obs::ParsedEvent &e : a.trace.events) {
        TrackSummary &t = a.perTrack[e.track];
        a.span = std::max(a.span, e.ts + e.dur);
        switch (e.phase) {
          case obs::Phase::Complete:
            ++t.spans;
            t.busy += e.dur;
            a.spans[e.name].add(e.dur);
            if (isRollback(e.name))
                a.rollbacks.push_back(&e);
            break;
          case obs::Phase::Begin:
            // Begin/End pairs are rendered as one span; accumulate
            // on End so unterminated pairs don't count.
            break;
          case obs::Phase::End:
            break;
          case obs::Phase::Instant:
            ++t.instants;
            if (isDetect(e.name))
                detects.push_back(e.ts);
            break;
          case obs::Phase::Counter:
            ++t.counters;
            if (e.name == "voltage") {
                if (last_voltage)
                    a.voltageTime[voltageBin(last_voltage->value)] +=
                        e.ts - last_voltage->ts;
                last_voltage = &e;
            }
            break;
        }
    }

    // Pair Begin/End spans (per track, LIFO nesting).
    std::map<obs::TrackId, std::vector<const obs::ParsedEvent *>> open;
    for (const obs::ParsedEvent &e : a.trace.events) {
        if (e.phase == obs::Phase::Begin) {
            open[e.track].push_back(&e);
        } else if (e.phase == obs::Phase::End) {
            auto &stack = open[e.track];
            if (stack.empty())
                continue;
            const obs::ParsedEvent *b = stack.back();
            stack.pop_back();
            TrackSummary &t = a.perTrack[e.track];
            ++t.spans;
            t.busy += e.ts - b->ts;
            a.spans[b->name.empty() ? e.name : b->name].add(e.ts -
                                                           b->ts);
        }
    }

    // Close the final voltage level at the end of the trace.
    if (last_voltage && a.span > last_voltage->ts)
        a.voltageTime[voltageBin(last_voltage->value)] +=
            a.span - last_voltage->ts;

    for (auto &kv : a.spans)
        std::sort(kv.second.durUs.begin(), kv.second.durUs.end());

    // Error bursts: runs of detection instants with gaps < burst_gap.
    std::sort(detects.begin(), detects.end());
    for (std::size_t i = 0; i < detects.size();) {
        std::size_t j = i + 1;
        while (j < detects.size() &&
               detects[j] - detects[j - 1] < burst_gap)
            ++j;
        if (j - i >= 2)
            a.bursts.push_back({detects[i], detects[j - 1], j - i});
        i = j;
    }

    std::sort(a.rollbacks.begin(), a.rollbacks.end(),
              [](const obs::ParsedEvent *x, const obs::ParsedEvent *y) {
                  return x->ts < y->ts;
              });
}

void
printText(const Analysis &a)
{
    std::printf("== %s ==\n", a.path.c_str());
    std::printf("tool %s, %zu tracks, %zu events, %.3f ms spanned",
                a.trace.tool.empty() ? "?" : a.trace.tool.c_str(),
                a.trace.tracks.size(), a.trace.events.size(),
                usOf(a.span) / 1e3);
    if (a.trace.dropped)
        std::printf(" (%llu DROPPED)",
                    (unsigned long long)a.trace.dropped);
    std::printf("\n\ntracks:\n");
    for (const auto &kv : a.perTrack) {
        const TrackSummary &t = kv.second;
        std::printf("  %-14s %6llu spans %6llu instants "
                    "%6llu samples  busy %.3f ms\n",
                    a.trace.trackName(kv.first).c_str(),
                    (unsigned long long)t.spans,
                    (unsigned long long)t.instants,
                    (unsigned long long)t.counters,
                    usOf(t.busy) / 1e3);
    }

    std::printf("\nlatency percentiles (us):\n");
    std::printf("  %-14s %8s %8s %8s %8s %8s %8s\n", "span", "count",
                "p50", "p90", "p95", "p99", "max");
    for (const auto &kv : a.spans) {
        const std::vector<double> &d = kv.second.durUs;
        std::printf("  %-14s %8zu %8.2f %8.2f %8.2f %8.2f %8.2f\n",
                    kv.first.c_str(), d.size(), pctile(d, 0.50),
                    pctile(d, 0.90), pctile(d, 0.95), pctile(d, 0.99),
                    d.empty() ? 0.0 : d.back());
    }

    if (!a.rollbacks.empty()) {
        std::printf("\nrollback timeline:\n");
        for (const obs::ParsedEvent *e : a.rollbacks)
            std::printf("  %12.3f us  %-12s %6.2f us%s%s\n",
                        usOf(e->ts), e->name.c_str(), usOf(e->dur),
                        e->detail.empty() ? "" : "  cause=",
                        e->detail.c_str());
    }

    if (!a.voltageTime.empty()) {
        Tick total = 0;
        for (const auto &kv : a.voltageTime)
            total += kv.second;
        std::printf("\ntime in voltage level:\n");
        for (const auto &kv : a.voltageTime)
            std::printf("  %.4f V  %10.3f ms  %5.1f%%\n", kv.first,
                        usOf(kv.second) / 1e3,
                        total ? 100.0 * double(kv.second) /
                                    double(total)
                              : 0.0);
    }

    if (!a.bursts.empty()) {
        std::printf("\nerror bursts:\n");
        for (const Burst &b : a.bursts)
            std::printf("  %12.3f us  %zu detections in %.2f us\n",
                        usOf(b.start), b.count, usOf(b.end - b.start));
    }
    std::printf("\n");
}

void
jsonEscapeTo(std::ostringstream &os, const std::string &s)
{
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
}

std::string
toJson(const Analysis &a)
{
    std::ostringstream os;
    os << "{\"file\":\"";
    jsonEscapeTo(os, a.path);
    os << "\",\"tool\":\"";
    jsonEscapeTo(os, a.trace.tool);
    os << "\",\"events\":" << a.trace.events.size()
       << ",\"dropped\":" << a.trace.dropped
       << ",\"span_us\":" << usOf(a.span);
    os << ",\"tracks\":{";
    bool first = true;
    for (const auto &kv : a.perTrack) {
        if (!first)
            os << ",";
        first = false;
        os << "\"";
        jsonEscapeTo(os, a.trace.trackName(kv.first));
        os << "\":{\"spans\":" << kv.second.spans
           << ",\"instants\":" << kv.second.instants
           << ",\"samples\":" << kv.second.counters
           << ",\"busy_us\":" << usOf(kv.second.busy) << "}";
    }
    os << "},\"latency_us\":{";
    first = true;
    for (const auto &kv : a.spans) {
        if (!first)
            os << ",";
        first = false;
        const std::vector<double> &d = kv.second.durUs;
        os << "\"";
        jsonEscapeTo(os, kv.first);
        os << "\":{\"count\":" << d.size()
           << ",\"p50\":" << pctile(d, 0.50)
           << ",\"p90\":" << pctile(d, 0.90)
           << ",\"p95\":" << pctile(d, 0.95)
           << ",\"p99\":" << pctile(d, 0.99)
           << ",\"max\":" << (d.empty() ? 0.0 : d.back()) << "}";
    }
    os << "},\"rollbacks\":[";
    first = true;
    for (const obs::ParsedEvent *e : a.rollbacks) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"ts_us\":" << usOf(e->ts)
           << ",\"dur_us\":" << usOf(e->dur) << ",\"kind\":\"";
        jsonEscapeTo(os, e->name);
        os << "\",\"cause\":\"";
        jsonEscapeTo(os, e->detail);
        os << "\"}";
    }
    os << "],\"voltage_time_ms\":{";
    first = true;
    for (const auto &kv : a.voltageTime) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << kv.first << "\":" << usOf(kv.second) / 1e3;
    }
    os << "},\"bursts\":[";
    first = true;
    for (const Burst &b : a.bursts) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"start_us\":" << usOf(b.start)
           << ",\"span_us\":" << usOf(b.end - b.start)
           << ",\"detections\":" << b.count << "}";
    }
    os << "]}";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    unsigned burst_gap_us = 50;
    exp::Cli cli("trace_report",
                 "summarize paradox-trace/1 execution traces");
    cli.flag("json", json, "emit machine-readable JSON");
    cli.opt("burst-gap-us", burst_gap_us,
            "max gap between detections in one burst");

    // Cli has no positional support; split them off by hand.
    std::vector<std::string> flags, files;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help") {
            cli.usage(stdout);
            std::printf("\narguments:\n  FILE.jsonl ...        "
                        "traces to analyze\n");
            return 0;
        }
        if (arg.rfind("-", 0) == 0) {
            flags.push_back(arg);
            if (arg == "--burst-gap-us" && i + 1 < argc)
                flags.push_back(argv[++i]);
        } else {
            files.push_back(arg);
        }
    }
    std::string error;
    if (!cli.parseArgs(flags, error)) {
        std::fprintf(stderr, "trace_report: %s\n", error.c_str());
        cli.usage(stderr);
        return 2;
    }
    if (files.empty()) {
        std::fprintf(stderr,
                     "trace_report: no input traces (expected "
                     "FILE.jsonl ...)\n");
        return 2;
    }

    bool all_ok = true;
    bool first = true;
    if (json)
        std::printf("[");
    for (const std::string &path : files) {
        Analysis a;
        a.path = path;
        if (!obs::readTraceJsonlFile(path, a.trace, error)) {
            std::fprintf(stderr, "trace_report: %s: %s\n",
                         path.c_str(), error.c_str());
            all_ok = false;
            continue;
        }
        analyze(a, Tick(burst_gap_us) * ticksPerUs);
        if (json) {
            std::printf("%s%s", first ? "" : ",\n",
                        toJson(a).c_str());
            first = false;
        } else {
            printText(a);
        }
    }
    if (json)
        std::printf("]\n");
    return all_ok ? 0 : 1;
}
