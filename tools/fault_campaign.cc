/**
 * @file
 * fault_campaign: differential fault-injection campaign driver.
 *
 * Sweeps seeds x fault persistence x rates x escalation configs over
 * a set of workloads.  Every run is described by an
 * exp::ExperimentSpec and executes in a forked child via
 * exp::runIsolated -- a crashing simulator is contained and
 * classified, never takes the campaign down, and up to --jobs
 * children run concurrently.  Each run is differentially checked
 * against a golden fault-free run of the same configuration:
 *
 *   ok                completed, bit-identical to golden, no faults
 *                     needed handling
 *   detected_ok       completed bit-identical; detections/rollbacks
 *                     (or quarantines, panics...) occurred en route
 *   incomplete        hit the execution/time bound (e.g. a permanent
 *                     fault livelocking the classic config)
 *   silent_corruption completed but final memory or checksum differs
 *                     from golden -- the one outcome that must never
 *                     happen
 *   crash             the child exited abnormally
 *
 * The report is schema'd JSONL on stdout (or --out FILE): a header
 * line, one record per run in spec order (so reports are
 * byte-identical across --jobs values), and a summary line.  Exit
 * status is 0 iff the sweep saw no silent corruption and no crash.
 *
 *   fault_campaign [--smoke] [--correlated] [--scale N] [--seeds N]
 *                  [--jobs N] [--out FILE] [--trace-dir DIR]
 *                  [--vuln MODEL.jsonl] [--timings]
 *
 * --timings stamps every run record with the parent-measured
 * job_wall_ms (fork to reap) and job_queue_ms (campaign start to
 * fork).  It is opt-in because host timing varies run to run and the
 * default report must stay byte-identical across --jobs values.
 *
 * --vuln MODEL closes the static/dynamic loop: MODEL is the
 * paradox-vuln/1 JSONL emitted by `isa_lint --all --vuln --json`
 * (validated against freshly built per-workload program hashes --
 * a stale or garbled model aborts with exit 2).  Every run then
 * stamps each injected fault with the model's live/dead verdict for
 * its site, the per-run records carry the verdict tallies, the
 * chip summaries report the fraction of rollbacks spent on
 * provably-masked faults, and the campaign gains a soundness gate:
 * any statically-dead injection that produces a silent corruption or
 * a non-final-state detection divergence counts as a
 * vuln_violation and fails the sweep (exit 1).
 *
 * With --trace-dir DIR every faulty run writes an execution trace to
 * DIR/run-NNNN.json (NNNN = spec index, so names are deterministic
 * across --jobs values) and its report record carries the filename
 * in a "trace" field.
 *
 * --correlated switches from i.i.d. geometric injection to the
 * chip-map model (faults::ChipModel): the sweep crosses chip seeds x
 * persistence classes x operating points (two fixed undervolted
 * rails plus the AIMD controller), always with the escalation
 * ladder, and the report adds one "chip_summary" record per chip
 * seed with its SDC/DUE/recovery breakdown.  AIMD runs carry an
 * "aimd_converged" field: the controller settled below v_safe while
 * ending bit-identical to golden.
 */

#include <sys/stat.h>
#include <sys/wait.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/vuln.hh"
#include "core/result_json.hh"
#include "exp/cli.hh"
#include "exp/runner.hh"
#include "exp/sink.hh"
#include "exp/spec.hh"
#include "power/undervolt_data.hh"
#include "sim/logging.hh"
#include "workloads/workload.hh"

namespace
{

using namespace paradox;

struct Golden
{
    std::uint64_t fingerprint = 0;
    std::uint64_t result = 0;
    std::uint64_t executed = 0;
    Tick time = 0;
};

/** Fault-free reference for one workload (run in-process: trusted). */
Golden
goldenRun(const std::string &workload, unsigned scale)
{
    exp::ExperimentSpec clean;
    clean.workload = workload;
    clean.scale = scale;
    clean.seed = 1;
    clean.limits = core::RunLimits{};
    exp::RunOutcome out = exp::runOne(clean);
    if (!out.correct) {
        std::fprintf(stderr,
                     "fault_campaign: golden run of %s failed\n",
                     workload.c_str());
        std::exit(2);
    }
    Golden g;
    g.fingerprint = out.result.memoryFingerprint;
    g.result = out.finalValue;
    g.executed = out.result.executed;
    g.time = out.result.time;
    return g;
}

/** Correlated-mode metadata for one spec. */
struct SpecMeta
{
    std::string configName; //!< fixed_hi | fixed_lo | aimd
};

/**
 * Execute one faulty run (inside the forked child) and return its
 * classified JSON record.  @p meta non-null = correlated mode.
 */
std::string
childRun(const exp::ExperimentSpec &spec, const Golden &golden,
         const SpecMeta *meta = nullptr)
{
    exp::RunOutcome out = exp::runOne(spec);
    const core::RunResult &r = out.result;

    const bool identical =
        r.memoryFingerprint == golden.fingerprint &&
        out.finalValue == golden.result;

    const char *cls;
    if (!r.halted)
        cls = "incomplete";
    else if (!identical)
        cls = "silent_corruption";
    else if (r.errorsDetected > 0 || r.dueRollbacks > 0)
        cls = "detected_ok";
    else
        cls = "ok";

    std::ostringstream os;
    os << "{\"record\":\"run\",\"workload\":\"" << spec.workload
       << "\",\"seed\":" << spec.seed << ",\"persistence\":\""
       << faults::persistenceName(spec.persistence)
       << "\",\"rate\":" << spec.faultRate << ",\"config\":\""
       << (meta ? meta->configName
                : (spec.escalate ? "ladder" : "classic"))
       << "\",\"pin_checker\":" << spec.pinChecker;
    if (spec.chipSeed != 0) {
        os << ",\"chip_seed\":" << spec.chipSeed;
        if (spec.supplyVoltage > 0.0)
            os << ",\"supply\":" << spec.supplyVoltage;
        if (spec.dvfs) {
            // Converged: the controller settled the rail below the
            // margined v_safe point and the run still ended
            // bit-identical to golden.
            const bool converged = r.halted && identical &&
                                   r.avgVoltage > 0.0 &&
                                   r.avgVoltage < 0.95;
            os << ",\"aimd_converged\":"
               << (converged ? "true" : "false");
        }
    }
    os << ",\"class\":\"" << cls << "\"";
    if (!out.tracePath.empty())
        os << ",\"trace\":\"" << out.tracePath << "\"";
    os << ",\"result\":" << core::toJson(r) << "}";
    return os.str();
}

std::string
crashRecord(const exp::ExperimentSpec &spec, int status)
{
    std::ostringstream os;
    os << "{\"record\":\"run\",\"workload\":\"" << spec.workload
       << "\",\"seed\":" << spec.seed << ",\"persistence\":\""
       << faults::persistenceName(spec.persistence)
       << "\",\"rate\":" << spec.faultRate << ",\"config\":\""
       << (spec.escalate ? "ladder" : "classic") << "\"";
    if (spec.chipSeed != 0)
        os << ",\"chip_seed\":" << spec.chipSeed;
    os << ",\"class\":\"crash\",\"status\":" << status << "}";
    return os.str();
}

/** First integer following @p key in @p payload (0 if absent). */
std::uint64_t
extractU64(const std::string &payload, const char *key)
{
    const std::size_t pos = payload.find(key);
    if (pos == std::string::npos)
        return 0;
    return std::strtoull(
        payload.c_str() + pos + std::strlen(key), nullptr, 10);
}

/** Hex value following @p key (expects "key":"0x..."; 0 if absent). */
std::uint64_t
extractHex(const std::string &payload, const char *key)
{
    const std::size_t pos = payload.find(key);
    if (pos == std::string::npos)
        return 0;
    const char *p = payload.c_str() + pos + std::strlen(key);
    while (*p == '"' || *p == ' ')
        ++p;
    return std::strtoull(p, nullptr, 16);
}

/**
 * Validate a paradox-vuln/1 model file against the campaign's own
 * workload set: the schema header must be present and every
 * workload must have a "vuln" record at the campaign scale whose
 * program_hash matches a freshly built analysis.  Returns false
 * with a diagnostic in @p error; "unusable" means the file itself
 * is unreadable or garbled, "stale" that it describes different
 * programs.
 */
bool
validateVulnModel(const std::string &path,
                  const std::vector<std::string> &names, unsigned scale,
                  std::string &error)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f) {
        error = "vuln model unusable: cannot open '" + path + "'";
        return false;
    }
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    if (text.find("\"schema\":\"paradox-vuln/1\"") ==
        std::string::npos) {
        error = "vuln model unusable: '" + path +
                "' has no paradox-vuln/1 schema header (regenerate "
                "with isa_lint --all --vuln --json)";
        return false;
    }
    for (const std::string &name : names) {
        const std::string key = "\"record\":\"vuln\",\"program\":\"" +
                                name + "\"";
        const std::size_t pos = text.find(key);
        if (pos == std::string::npos) {
            error = "stale vuln model: no record for workload '" +
                    name + "' in '" + path + "'";
            return false;
        }
        const std::size_t eol = text.find('\n', pos);
        const std::string line = text.substr(
            pos, eol == std::string::npos ? std::string::npos
                                          : eol - pos);
        const std::uint64_t rec_scale =
            extractU64(line, "\"scale\":");
        const std::uint64_t rec_hash =
            extractHex(line, "\"program_hash\":");
        if (rec_scale == 0 || rec_hash == 0) {
            error = "vuln model unusable: garbled record for "
                    "workload '" + name + "' in '" + path + "'";
            return false;
        }
        if (rec_scale != scale) {
            error = "stale vuln model: '" + name + "' was analyzed "
                    "at scale " + std::to_string(rec_scale) +
                    ", campaign runs at scale " +
                    std::to_string(scale);
            return false;
        }
        const workloads::Workload w = workloads::build(name, scale);
        const auto va = analysis::VulnAnalysis::build(
            w.program, {{workloads::resultAddr, 8, "result"}});
        if (rec_hash != va->programHash()) {
            error = "stale vuln model: program_hash mismatch for '" +
                    name + "' (model was built for a different "
                    "program; regenerate with isa_lint)";
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool correlated = false;
    bool quiet = false;
    bool timings = false;
    unsigned scale = 2;
    unsigned seeds = 2;
    unsigned jobs = 1;
    std::string out_path;
    std::string trace_dir;
    std::string vuln_path;
    exp::Cli cli("fault_campaign",
                 "differential fault-injection campaign driver");
    cli.flag("smoke", smoke, "tiny sweep for CI");
    cli.flag("correlated", correlated,
             "chip-map sweep: chip seeds x persistence x operating "
             "points (spatially correlated errors)");
    cli.opt("scale", scale, "workload size multiplier");
    cli.opt("seeds", seeds, "seeds per configuration");
    cli.opt("jobs", jobs, "concurrent forked runs (0 = all cores)");
    cli.opt("out", out_path, "write the JSONL report to FILE");
    cli.opt("trace-dir", trace_dir,
            "write one execution trace per run into DIR");
    cli.opt("vuln", vuln_path,
            "paradox-vuln/1 model (isa_lint --vuln --json): stamp "
            "every fault with its static verdict and gate on zero "
            "dead-site divergences");
    cli.flag("timings", timings,
             "stamp each run record with host job_wall_ms / "
             "job_queue_ms (report is then no longer byte-identical "
             "across --jobs values)");
    cli.flag("quiet", quiet, "suppress warn/info/progress output");
    cli.alias("q", "quiet");
    if (!cli.parse(argc, argv))
        return 2;
    if (quiet)
        setLogLevel(0);

    if (!trace_dir.empty() && mkdir(trace_dir.c_str(), 0777) != 0 &&
        errno != EEXIST) {
        std::perror(trace_dir.c_str());
        return 2;
    }

    std::vector<std::string> names = {"bitcount", "stream"};
    std::vector<double> rates = {1e-6, 1e-5, 1e-4, 1e-3};
    if (smoke) {
        names = {"bitcount"};
        rates = {1e-4};
        seeds = 1;
    }
    std::vector<faults::Persistence> kinds = {
        faults::Persistence::Transient,
        faults::Persistence::Intermittent,
        faults::Persistence::Permanent,
    };

    // Correlated mode: the grid crosses physical chips (distinct
    // weak-cell maps) with operating points instead of rates.  Two
    // fixed undervolted rails bracket the weak-cell Vmin band (the
    // margin above each workload's p==1 floor), and the AIMD
    // configuration lets the controller find the chip's own safe
    // point -- with an accelerated decrease step so equilibrium is
    // reached within campaign-scale runs.
    struct OpPoint
    {
        const char *name;
        double marginAboveFloor; //!< fixed rail: vFloor + this
        bool aimd;
    };
    std::vector<std::uint64_t> chip_seeds = {101, 202, 303, 404};
    std::vector<OpPoint> points = {
        {"fixed_hi", 0.060, false},
        {"fixed_lo", 0.045, false},
        {"aimd", 0.0, true},
    };
    if (correlated && smoke) {
        chip_seeds = {101, 202};
        kinds = {faults::Persistence::Transient,
                 faults::Persistence::Permanent};
        points = {{"fixed_lo", 0.045, false}, {"aimd", 0.0, true}};
    }

    const bool vuln = !vuln_path.empty();
    if (vuln) {
        std::string error;
        if (!validateVulnModel(vuln_path, names, scale, error)) {
            std::fprintf(stderr, "fault_campaign: %s\n",
                         error.c_str());
            return 2;
        }
    }

    FILE *report = stdout;
    if (!out_path.empty()) {
        report = std::fopen(out_path.c_str(), "w");
        if (!report) {
            std::perror(out_path.c_str());
            return 2;
        }
    }

    // The sweep, in fixed nested order; reports are reproducible
    // across job counts because records are emitted in spec order.
    std::vector<exp::ExperimentSpec> specs;
    std::vector<SpecMeta> metas;         // parallel (correlated mode)
    std::vector<std::size_t> golden_of;  // spec index -> golden index
    std::vector<Golden> goldens;
    if (correlated) {
        for (const std::string &name : names) {
            goldens.push_back(goldenRun(name, scale));
            const Golden &g = goldens.back();
            const double floor_v =
                power::errorModelParams(name).vFloor;
            for (std::uint64_t chip : chip_seeds) {
                for (faults::Persistence kind : kinds) {
                    for (const OpPoint &pt : points) {
                        exp::ExperimentSpec spec;
                        spec.workload = name;
                        spec.scale = scale;
                        spec.seed = 12345;
                        spec.persistence = kind;
                        spec.escalate = true;
                        spec.chipSeed = chip;
                        if (pt.aimd) {
                            spec.dvfs = true;
                            spec.configure =
                                [](core::SystemConfig &cfg) {
                                    cfg.voltage.decreaseStep = 0.002;
                                };
                        } else {
                            spec.supplyVoltage =
                                floor_v + pt.marginAboveFloor;
                        }
                        // Chip-correlated faults can livelock harder
                        // than ambient ones (a latched main-core
                        // defect re-detects every segment); the
                        // floor keeps AIMD runs long enough to reach
                        // equilibrium.
                        spec.limits.maxExecuted =
                            std::max<std::uint64_t>(
                                g.executed * 64 + 200000, 4'000'000);
                        spec.limits.maxTicks =
                            g.time * 256 + ticksPerMs;
                        if (!trace_dir.empty())
                            spec.traceFile = exp::tracePathForJob(
                                trace_dir, specs.size());
                        golden_of.push_back(goldens.size() - 1);
                        metas.push_back(SpecMeta{pt.name});
                        specs.push_back(std::move(spec));
                    }
                }
            }
        }
    } else {
    for (const std::string &name : names) {
        goldens.push_back(goldenRun(name, scale));
        for (unsigned s = 0; s < seeds; ++s) {
            for (faults::Persistence kind : kinds) {
                for (double rate : rates) {
                    for (int ladder = 0; ladder <= 1; ++ladder) {
                        exp::ExperimentSpec spec;
                        spec.workload = name;
                        spec.scale = scale;
                        spec.seed = 12345 + s * 7919;
                        spec.persistence = kind;
                        spec.faultRate = rate;
                        spec.escalate = ladder != 0;
                        // A non-transient source models a defect in
                        // one physical core: pin it to checker 0
                        // (the acceptance scenario).  Transients
                        // stay ambient.
                        spec.pinChecker =
                            kind == faults::Persistence::Transient
                                ? -1
                                : 0;
                        // Bound livelocks (e.g. a latched permanent
                        // fault on the classic config re-dispatching
                        // to the same checker forever) in terms of
                        // the golden run's cost rather than
                        // wall-clock guesses.
                        const Golden &g = goldens.back();
                        spec.limits.maxExecuted =
                            g.executed * 64 + 200000;
                        spec.limits.maxTicks =
                            g.time * 256 + ticksPerMs;
                        if (!trace_dir.empty())
                            spec.traceFile = exp::tracePathForJob(
                                trace_dir, specs.size());
                        golden_of.push_back(goldens.size() - 1);
                        specs.push_back(std::move(spec));
                    }
                }
            }
        }
    }
    }
    if (vuln)
        for (exp::ExperimentSpec &spec : specs)
            spec.vuln = true;

    exp::RunnerOptions opt;
    opt.jobs = jobs;
    opt.progress = true;
    opt.label = "fault_campaign";
    opt.childTimeoutSec = 300;  // hard per-run wall bound
    std::vector<exp::IsolatedResult> results = exp::runIsolated(
        specs.size(),
        [&](std::size_t i) {
            return childRun(specs[i], goldens[golden_of[i]],
                            correlated ? &metas[i] : nullptr);
        },
        opt);

    exp::JsonlSink sink(report, "fault_campaign");
    {
        // The job count is deliberately not recorded: reports must
        // be byte-identical across --jobs values.
        std::ostringstream extra;
        extra << "\"scale\":" << scale << ",\"seeds\":" << seeds
              << ",\"smoke\":" << (smoke ? "true" : "false");
        if (correlated)
            extra << ",\"correlated\":true";
        if (vuln)
            extra << ",\"vuln\":true";
        if (timings)
            extra << ",\"timings\":true";
        sink.header(extra.str());
    }

    // --timings: host timing is owned by the parent (fork-to-reap),
    // not the child, so it is spliced into each record after the
    // fact; crash records carry it too.
    auto stamp = [&](std::string rec,
                     const exp::IsolatedResult &res) -> std::string {
        if (!timings || res.wallMs < 0.0 || rec.empty() ||
            rec.back() != '}')
            return rec;
        char buf[80];
        std::snprintf(buf, sizeof buf,
                      ",\"job_wall_ms\":%.3f,\"job_queue_ms\":%.3f}",
                      res.wallMs,
                      res.queueMs >= 0.0 ? res.queueMs : 0.0);
        rec.pop_back();
        rec += buf;
        return rec;
    };

    unsigned total = 0, n_ok = 0, n_detected = 0, n_incomplete = 0,
             n_silent = 0, n_crash = 0;
    // Soundness gate (--vuln): a statically-dead fault must be
    // invisible -- a run falsifies the model when it diverges from a
    // dead-only fault population (SDC) or reports a non-final-state
    // detection attributed entirely to dead sites (dead_divergences,
    // counted inside core::System with per-segment attribution).
    unsigned vuln_violations = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const exp::IsolatedResult &res = results[i];
        ++total;
        if (res.crashed) {
            ++n_crash;
            sink.writeLine(stamp(crashRecord(specs[i], res.status),
                                 res));
            continue;
        }
        sink.writeLine(stamp(res.payload, res));
        const std::string &p = res.payload;
        const bool silent =
            p.find("\"class\":\"silent_corruption\"") !=
            std::string::npos;
        if (p.find("\"class\":\"ok\"") != std::string::npos)
            ++n_ok;
        else if (p.find("\"class\":\"detected_ok\"") !=
                 std::string::npos)
            ++n_detected;
        else if (p.find("\"class\":\"incomplete\"") !=
                 std::string::npos)
            ++n_incomplete;
        else
            ++n_silent;
        if (vuln) {
            const std::uint64_t divergences =
                extractU64(p, "\"vuln_dead_divergences\":");
            const std::uint64_t dead =
                extractU64(p, "\"vuln_dead_fired\":");
            const std::uint64_t live =
                extractU64(p, "\"vuln_live_fired\":");
            const std::uint64_t unknown =
                extractU64(p, "\"vuln_unknown_fired\":");
            const bool dead_sdc =
                silent && dead > 0 && live == 0 && unknown == 0;
            if (divergences > 0 || dead_sdc) {
                ++vuln_violations;
                std::fprintf(
                    stderr,
                    "fault_campaign: static-verdict violation in "
                    "run %zu (%s): %llu dead-site divergence(s)%s\n",
                    i, specs[i].workload.c_str(),
                    (unsigned long long)divergences,
                    dead_sdc ? ", SDC from dead-only faults" : "");
            }
        }
    }

    // Correlated mode: one breakdown per physical chip, in seed
    // order (deterministic across --jobs), so campaigns can tell a
    // weak chip's behaviour from a healthy one's at a glance.
    if (correlated) {
        for (std::uint64_t chip : chip_seeds) {
            unsigned runs = 0, c_ok = 0, c_det = 0, c_inc = 0,
                     c_silent = 0, c_crash = 0, aimd_runs = 0,
                     aimd_conv = 0;
            std::uint64_t due = 0, rollbacks = 0, quarantines = 0,
                          weak_hits = 0, masked_rb = 0, v_dead = 0,
                          v_live = 0, v_divg = 0;
            for (std::size_t i = 0; i < specs.size(); ++i) {
                if (specs[i].chipSeed != chip)
                    continue;
                ++runs;
                if (results[i].crashed) {
                    ++c_crash;
                    continue;
                }
                const std::string &p = results[i].payload;
                if (p.find("\"class\":\"ok\"") != std::string::npos)
                    ++c_ok;
                else if (p.find("\"class\":\"detected_ok\"") !=
                         std::string::npos)
                    ++c_det;
                else if (p.find("\"class\":\"incomplete\"") !=
                         std::string::npos)
                    ++c_inc;
                else
                    ++c_silent;
                due += extractU64(p, "\"due_rollbacks\":");
                rollbacks += extractU64(p, "\"rollbacks\":");
                quarantines += extractU64(p, "\"quarantines\":");
                weak_hits += extractU64(p, "\"weak_cell_hits\":");
                masked_rb += extractU64(p, "\"masked_rollbacks\":");
                v_dead += extractU64(p, "\"vuln_dead_fired\":");
                v_live += extractU64(p, "\"vuln_live_fired\":");
                v_divg +=
                    extractU64(p, "\"vuln_dead_divergences\":");
                if (specs[i].dvfs) {
                    ++aimd_runs;
                    if (p.find("\"aimd_converged\":true") !=
                        std::string::npos)
                        ++aimd_conv;
                }
            }
            std::ostringstream cs;
            cs << "{\"record\":\"chip_summary\",\"chip_seed\":"
               << chip << ",\"runs\":" << runs << ",\"ok\":" << c_ok
               << ",\"detected_ok\":" << c_det
               << ",\"incomplete\":" << c_inc
               << ",\"silent_corruption\":" << c_silent
               << ",\"crash\":" << c_crash
               << ",\"rollbacks\":" << rollbacks
               << ",\"due_rollbacks\":" << due
               << ",\"quarantines\":" << quarantines
               << ",\"weak_cell_hits\":" << weak_hits
               << ",\"aimd_runs\":" << aimd_runs
               << ",\"aimd_converged\":" << aimd_conv;
            if (vuln)
                cs << ",\"masked_rollbacks\":" << masked_rb
                   << ",\"vuln_dead_fired\":" << v_dead
                   << ",\"vuln_live_fired\":" << v_live
                   << ",\"vuln_dead_divergences\":" << v_divg;
            cs << "}";
            sink.writeLine(cs.str());
            if (vuln)
                // The headline of the static/dynamic loop: how much
                // of this chip's recovery effort went to faults the
                // analysis had already proven harmless.
                std::fprintf(stderr,
                             "fault_campaign: chip %llu: %llu/%llu "
                             "rollback(s) on provably-masked faults "
                             "(%.1f%%), %llu dead-site "
                             "divergence(s)\n",
                             (unsigned long long)chip,
                             (unsigned long long)masked_rb,
                             (unsigned long long)rollbacks,
                             rollbacks ? 100.0 * double(masked_rb) /
                                             double(rollbacks)
                                       : 0.0,
                             (unsigned long long)v_divg);
        }
    }

    std::ostringstream summary;
    summary << "{\"record\":\"summary\",\"total\":" << total
            << ",\"ok\":" << n_ok << ",\"detected_ok\":" << n_detected
            << ",\"incomplete\":" << n_incomplete
            << ",\"silent_corruption\":" << n_silent
            << ",\"crash\":" << n_crash;
    if (vuln)
        summary << ",\"vuln_violations\":" << vuln_violations;
    summary << "}";
    sink.writeLine(summary.str());
    if (report != stdout)
        std::fclose(report);

    std::fprintf(stderr,
                 "fault_campaign: %u runs: %u ok, %u detected-ok, "
                 "%u incomplete, %u silent, %u crash\n",
                 total, n_ok, n_detected, n_incomplete, n_silent,
                 n_crash);
    if (vuln && vuln_violations > 0)
        std::fprintf(stderr,
                     "fault_campaign: %u static-verdict "
                     "violation(s) -- the vulnerability model is "
                     "unsound for this sweep\n",
                     vuln_violations);
    return (n_silent == 0 && n_crash == 0 && vuln_violations == 0)
               ? 0
               : 1;
}
