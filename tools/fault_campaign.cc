/**
 * @file
 * fault_campaign: differential fault-injection campaign driver.
 *
 * Sweeps seeds x fault persistence x rates x escalation configs over
 * a set of workloads.  Every run executes in a forked child (a
 * crashing simulator is contained and classified, never takes the
 * campaign down) and is differentially checked against a golden
 * fault-free run of the same configuration:
 *
 *   ok                completed, bit-identical to golden, no faults
 *                     needed handling
 *   detected_ok       completed bit-identical; detections/rollbacks
 *                     (or quarantines, panics...) occurred en route
 *   incomplete        hit the execution/time bound (e.g. a permanent
 *                     fault livelocking the classic config)
 *   silent_corruption completed but final memory or checksum differs
 *                     from golden -- the one outcome that must never
 *                     happen
 *   crash             the child exited abnormally
 *
 * The report is a single JSON document on stdout (or --out FILE).
 * Exit status is 0 iff the sweep saw no silent corruption and no
 * crash.
 *
 *   fault_campaign [--smoke] [--scale N] [--seeds N] [--out FILE]
 */

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/result_json.hh"
#include "core/system.hh"
#include "workloads/workload.hh"

namespace
{

using namespace paradox;

struct RunSpec
{
    std::string workload;
    std::uint64_t seed = 0;
    faults::Persistence persistence = faults::Persistence::Transient;
    double rate = 0.0;
    bool ladder = false;   //!< escalation ladder vs classic config
    int pinChecker = -1;
};

struct Golden
{
    std::uint64_t fingerprint = 0;
    std::uint64_t result = 0;
    std::uint64_t executed = 0;
    Tick time = 0;
};

core::SystemConfig
configFor(const RunSpec &spec, unsigned scale)
{
    (void)scale;
    core::SystemConfig config =
        core::SystemConfig::forMode(core::Mode::ParaDox);
    config.seed = spec.seed;
    if (spec.ladder)
        config.enableEscalation();
    return config;
}

/** Fault-free reference for one workload (run in-process: trusted). */
Golden
goldenRun(const workloads::Workload &w, unsigned scale)
{
    (void)scale;
    RunSpec clean;
    clean.seed = 1;
    core::SystemConfig config = configFor(clean, scale);
    core::System system(config, w.program);
    core::RunResult r = system.run();
    std::uint64_t got =
        system.memory().read(workloads::resultAddr, 8);
    if (!r.halted || got != w.expectedResult) {
        std::fprintf(stderr,
                     "fault_campaign: golden run of %s failed\n",
                     w.name.c_str());
        std::exit(2);
    }
    Golden g;
    g.fingerprint = r.memoryFingerprint;
    g.result = got;
    g.executed = r.executed;
    g.time = r.time;
    return g;
}

/**
 * Execute one faulty run (called inside the forked child) and print
 * its classified JSON record to @p out.
 */
int
childRun(const RunSpec &spec, const workloads::Workload &w,
         const Golden &golden, unsigned scale, FILE *out)
{
    core::SystemConfig config = configFor(spec, scale);
    core::System system(config, w.program);
    system.setFaultPlan(faults::uniformPlan(
        spec.rate, spec.seed, spec.persistence, spec.pinChecker));

    // Bound livelocks (e.g. a latched permanent fault on the classic
    // config re-dispatching to the same checker forever) in terms of
    // the golden run's cost rather than wall-clock guesses.
    core::RunLimits limits;
    limits.maxExecuted = golden.executed * 64 + 200000;
    limits.maxTicks = golden.time * 256 + ticksPerMs;
    core::RunResult r = system.run(limits);

    std::uint64_t got =
        system.memory().read(workloads::resultAddr, 8);
    const bool identical = r.memoryFingerprint == golden.fingerprint &&
                           got == golden.result;

    const char *cls;
    if (!r.halted)
        cls = "incomplete";
    else if (!identical)
        cls = "silent_corruption";
    else if (r.errorsDetected > 0 || r.dueRollbacks > 0)
        cls = "detected_ok";
    else
        cls = "ok";

    std::fprintf(out,
                 "{\"workload\":\"%s\",\"seed\":%llu,"
                 "\"persistence\":\"%s\",\"rate\":%g,"
                 "\"config\":\"%s\",\"pin_checker\":%d,"
                 "\"class\":\"%s\",\"result\":%s}",
                 spec.workload.c_str(),
                 (unsigned long long)spec.seed,
                 faults::persistenceName(spec.persistence), spec.rate,
                 spec.ladder ? "ladder" : "classic", spec.pinChecker,
                 cls, core::toJson(r).c_str());
    std::fflush(out);
    return std::strcmp(cls, "silent_corruption") == 0 ? 3 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    unsigned scale = 2;
    unsigned seeds = 2;
    const char *out_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;
        else if (!std::strcmp(argv[i], "--scale") && i + 1 < argc)
            scale = unsigned(std::atoi(argv[++i]));
        else if (!std::strcmp(argv[i], "--seeds") && i + 1 < argc)
            seeds = unsigned(std::atoi(argv[++i]));
        else if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
            out_path = argv[++i];
        else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--scale N] [--seeds N]"
                         " [--out FILE]\n",
                         argv[0]);
            return 2;
        }
    }

    std::vector<std::string> names = {"bitcount", "stream"};
    std::vector<double> rates = {1e-6, 1e-5, 1e-4, 1e-3};
    if (smoke) {
        names = {"bitcount"};
        rates = {1e-4};
        seeds = 1;
    }
    const faults::Persistence kinds[] = {
        faults::Persistence::Transient,
        faults::Persistence::Intermittent,
        faults::Persistence::Permanent,
    };

    FILE *report = stdout;
    if (out_path) {
        report = std::fopen(out_path, "w");
        if (!report) {
            std::perror(out_path);
            return 2;
        }
    }

    std::fprintf(report, "{\"campaign\":{\"scale\":%u,\"seeds\":%u,"
                         "\"smoke\":%s},\"runs\":[",
                 scale, seeds, smoke ? "true" : "false");

    unsigned total = 0, n_ok = 0, n_detected = 0, n_incomplete = 0,
             n_silent = 0, n_crash = 0;
    bool first = true;

    for (const std::string &name : names) {
        workloads::Workload w = workloads::build(name, scale);
        Golden golden = goldenRun(w, scale);
        for (unsigned s = 0; s < seeds; ++s) {
            for (faults::Persistence kind : kinds) {
                for (double rate : rates) {
                    for (int ladder = 0; ladder <= 1; ++ladder) {
                        RunSpec spec;
                        spec.workload = name;
                        spec.seed = 12345 + s * 7919;
                        spec.persistence = kind;
                        spec.rate = rate;
                        spec.ladder = ladder != 0;
                        // A non-transient source models a defect in
                        // one physical core: pin it to checker 0 (the
                        // acceptance scenario).  Transients stay
                        // ambient.
                        spec.pinChecker =
                            kind == faults::Persistence::Transient
                                ? -1
                                : 0;

                        int fds[2];
                        if (pipe(fds) != 0) {
                            std::perror("pipe");
                            return 2;
                        }
                        pid_t pid = fork();
                        if (pid < 0) {
                            std::perror("fork");
                            return 2;
                        }
                        if (pid == 0) {
                            close(fds[0]);
                            FILE *sink = fdopen(fds[1], "w");
                            if (!sink)
                                _exit(4);
                            alarm(300);  // hard per-run wall bound
                            int rc = childRun(spec, w, golden, scale,
                                              sink);
                            std::fflush(sink);
                            _exit(rc);
                        }
                        close(fds[1]);
                        std::string record;
                        char buf[4096];
                        ssize_t n;
                        while ((n = read(fds[0], buf, sizeof buf)) > 0)
                            record.append(buf, std::size_t(n));
                        close(fds[0]);
                        int status = 0;
                        waitpid(pid, &status, 0);

                        ++total;
                        if (!first)
                            std::fputc(',', report);
                        first = false;
                        const bool clean_exit =
                            WIFEXITED(status) && !record.empty();
                        if (!clean_exit) {
                            ++n_crash;
                            std::fprintf(
                                report,
                                "{\"workload\":\"%s\",\"seed\":%llu,"
                                "\"persistence\":\"%s\",\"rate\":%g,"
                                "\"config\":\"%s\","
                                "\"class\":\"crash\",\"status\":%d}",
                                spec.workload.c_str(),
                                (unsigned long long)spec.seed,
                                faults::persistenceName(
                                    spec.persistence),
                                spec.rate,
                                spec.ladder ? "ladder" : "classic",
                                status);
                            continue;
                        }
                        std::fputs(record.c_str(), report);
                        if (record.find("\"class\":\"ok\"") !=
                            std::string::npos)
                            ++n_ok;
                        else if (record.find(
                                     "\"class\":\"detected_ok\"") !=
                                 std::string::npos)
                            ++n_detected;
                        else if (record.find(
                                     "\"class\":\"incomplete\"") !=
                                 std::string::npos)
                            ++n_incomplete;
                        else
                            ++n_silent;
                    }
                }
            }
        }
    }

    std::fprintf(report,
                 "],\"summary\":{\"total\":%u,\"ok\":%u,"
                 "\"detected_ok\":%u,\"incomplete\":%u,"
                 "\"silent_corruption\":%u,\"crash\":%u}}\n",
                 total, n_ok, n_detected, n_incomplete, n_silent,
                 n_crash);
    if (report != stdout)
        std::fclose(report);

    std::fprintf(stderr,
                 "fault_campaign: %u runs: %u ok, %u detected-ok, "
                 "%u incomplete, %u silent, %u crash\n",
                 total, n_ok, n_detected, n_incomplete, n_silent,
                 n_crash);
    return (n_silent == 0 && n_crash == 0) ? 0 : 1;
}
