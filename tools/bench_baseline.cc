/**
 * @file
 * bench_baseline: wall-clock throughput baseline for the simulator.
 *
 * Runs a small fixed set of workloads fault-free through the full
 * ParaDox pipeline (main core + checkers + load-store log) and
 * reports simulated instructions per wall-clock second.  The output
 * is a single schema'd JSON document ("paradox-bench/1") meant to be
 * checked in as BENCH_baseline.json so perf regressions show up as
 * a diff in review rather than as a surprise months later.
 *
 * Each workload runs --reps times (default 3) and the *best* wall
 * time is kept: the minimum is the least noisy estimator for a
 * deterministic CPU-bound job on a shared machine.
 *
 * Exit status 0 iff every run completed with the golden checksum.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exp/cli.hh"
#include "exp/spec.hh"
#include "sim/logging.hh"

namespace
{

struct BenchResult
{
    std::string name;
    std::uint64_t simInstructions = 0;
    std::uint64_t executed = 0;
    double wallMs = 0.0;
    double instPerSec = 0.0;
    bool correct = false;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace paradox;
    using Clock = std::chrono::steady_clock;

    std::string workloads_arg = "bitcount,stream,mcf";
    std::string out_path;
    std::string engine_arg = "decoded";
    unsigned scale = 2;
    unsigned reps = 3;
    bool quiet = false;

    exp::Cli cli("bench_baseline",
                 "wall-clock simulator throughput baseline");
    cli.opt("workloads", workloads_arg,
            "comma-separated workload list");
    cli.opt("scale", scale, "workload size multiplier");
    cli.opt("reps", reps, "repetitions per workload (best kept)");
    cli.opt("out", out_path, "write the JSON report here");
    cli.opt("engine", engine_arg,
            "execution engine: decoded (default) or reference");
    cli.flag("quiet", quiet, "suppress progress output");
    cli.alias("q", "quiet");
    if (!cli.parse(argc, argv))
        return 2;
    isa::EngineKind engine;
    if (!isa::parseEngineKind(engine_arg, engine)) {
        std::fprintf(stderr, "bench_baseline: unknown engine '%s'\n",
                     engine_arg.c_str());
        return 2;
    }
    if (quiet)
        setLogLevel(0);
    if (reps == 0)
        reps = 1;

    std::vector<std::string> names;
    std::string cur;
    for (char c : workloads_arg + ",") {
        if (c == ',') {
            if (!cur.empty())
                names.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }

    std::vector<BenchResult> results;
    bool all_correct = true;
    for (const auto &name : names) {
        exp::ExperimentSpec spec;
        spec.workload = name;
        spec.scale = scale;
        spec.mode = core::Mode::ParaDox;
        spec.engine = engine;
        spec.checkers = 16;
        spec.maxCheckpoint = 5000;
        spec.limits.maxExecuted = 2'000'000'000ULL;
        spec.limits.maxTicks = ticksPerMs * 30000;

        BenchResult best;
        best.name = name;
        for (unsigned rep = 0; rep < reps; ++rep) {
            exp::RunOutcome out;
            const auto t0 = Clock::now();
            try {
                out = exp::runOne(spec);
            } catch (const std::exception &e) {
                std::fprintf(stderr, "bench_baseline: %s: %s\n",
                             name.c_str(), e.what());
                return 2;
            }
            const auto t1 = Clock::now();
            const double ms =
                std::chrono::duration<double, std::milli>(t1 - t0)
                    .count();
            if (rep == 0 || ms < best.wallMs) {
                best.wallMs = ms;
                best.simInstructions = out.result.instructions;
                best.executed = out.result.executed;
                best.correct = out.correct;
            }
            if (!out.correct)
                best.correct = false;
            if (!quiet)
                std::fprintf(stderr,
                             "bench_baseline: %-10s rep %u/%u: "
                             "%.1f ms%s\n",
                             name.c_str(), rep + 1, reps, ms,
                             out.correct ? "" : "  [WRONG RESULT]");
        }
        best.instPerSec =
            best.wallMs > 0.0
                ? double(best.executed) / (best.wallMs / 1e3)
                : 0.0;
        all_correct = all_correct && best.correct;
        results.push_back(best);
    }

    std::string json = "{\"schema\":\"paradox-bench/1\","
                       "\"tool\":\"bench_baseline\",";
    json += "\"engine\":\"" +
            std::string(isa::engineKindName(engine)) + "\",";
    json += "\"scale\":" + std::to_string(scale) +
            ",\"reps\":" + std::to_string(reps) + ",\"workloads\":[";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const BenchResult &r = results[i];
        char buf[512];
        std::snprintf(buf, sizeof buf,
                      "%s{\"name\":\"%s\",\"sim_instructions\":%llu,"
                      "\"executed\":%llu,\"wall_ms\":%.1f,"
                      "\"inst_per_sec\":%.0f,\"correct\":%s}",
                      i ? "," : "", r.name.c_str(),
                      (unsigned long long)r.simInstructions,
                      (unsigned long long)r.executed, r.wallMs,
                      r.instPerSec, r.correct ? "true" : "false");
        json += buf;
    }
    json += "]}";

    if (out_path.empty()) {
        std::printf("%s\n", json.c_str());
    } else {
        std::FILE *f = std::fopen(out_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "bench_baseline: cannot write %s\n",
                         out_path.c_str());
            return 2;
        }
        std::fprintf(f, "%s\n", json.c_str());
        std::fclose(f);
    }

    for (const BenchResult &r : results)
        std::fprintf(stderr,
                     "bench_baseline: %-10s %8.1f ms  "
                     "%11.0f sim-inst/s%s\n",
                     r.name.c_str(), r.wallMs, r.instPerSec,
                     r.correct ? "" : "  [WRONG RESULT]");
    return all_correct ? 0 : 1;
}
