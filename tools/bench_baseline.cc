/**
 * @file
 * bench_baseline: wall-clock throughput baseline for the simulator.
 *
 * Runs a small fixed set of workloads fault-free through the full
 * ParaDox pipeline (main core + checkers + load-store log) and
 * reports simulated instructions per wall-clock second.  The output
 * is a single schema'd JSON document ("paradox-bench/1") meant to be
 * checked in as BENCH_baseline.json so perf regressions show up as
 * a diff in review rather than as a surprise months later.
 *
 * Each workload runs --reps times (default 3) and the *best* wall
 * time is kept: the minimum is the least noisy estimator for a
 * deterministic CPU-bound job on a shared machine.
 *
 * The report header carries the host/build provenance (CPU model,
 * cores, compiler, flags, git SHA): throughput is only comparable
 * within one box and build, and the provenance makes a cross-box
 * re-measurement visible in review.
 *
 * --profile adds one extra *profiled* repetition per workload (the
 * timed reps stay unperturbed), writes its paradox-prof/1 attribution
 * to PREFIX-<workload>.prof.jsonl (--profile-out PREFIX, default
 * "bench") and embeds a "prof" object -- attributed-coverage fraction
 * and the top self-time phases -- in the workload's record.
 *
 * Exit status 0 iff every run completed with the golden checksum.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exp/cli.hh"
#include "exp/spec.hh"
#include "obs/hostinfo.hh"
#include "obs/profiler.hh"
#include "sim/logging.hh"

namespace
{

struct BenchResult
{
    std::string name;
    std::uint64_t simInstructions = 0;
    std::uint64_t executed = 0;
    double wallMs = 0.0;
    double instPerSec = 0.0;
    bool correct = false;
    /** @{ --profile extras (profFile empty = not profiled). */
    std::string profFile;
    std::uint64_t profWallNs = 0;
    double profCoverage = 0.0;
    std::vector<paradox::obs::ProfPhase> hot; //!< top phases by self
    /** @} */
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace paradox;
    using Clock = std::chrono::steady_clock;

    std::string workloads_arg = "bitcount,stream,mcf";
    std::string out_path;
    std::string engine_arg = "decoded";
    unsigned scale = 2;
    unsigned reps = 3;
    bool quiet = false;
    bool profile = false;
    std::string profile_out = "bench";

    exp::Cli cli("bench_baseline",
                 "wall-clock simulator throughput baseline");
    cli.opt("workloads", workloads_arg,
            "comma-separated workload list");
    cli.opt("scale", scale, "workload size multiplier");
    cli.opt("reps", reps, "repetitions per workload (best kept)");
    cli.opt("out", out_path, "write the JSON report here");
    cli.opt("engine", engine_arg,
            "execution engine: decoded (default) or reference");
    cli.flag("profile", profile,
             "run one extra profiled rep per workload and report "
             "host-time attribution (paradox-prof/1)");
    cli.opt("profile-out", profile_out,
            "profile filename prefix (PREFIX-<workload>.prof.jsonl)");
    cli.flag("quiet", quiet, "suppress progress output");
    cli.alias("q", "quiet");
    if (!cli.parse(argc, argv))
        return 2;
    isa::EngineKind engine;
    if (!isa::parseEngineKind(engine_arg, engine)) {
        std::fprintf(stderr, "bench_baseline: unknown engine '%s'\n",
                     engine_arg.c_str());
        return 2;
    }
    if (quiet)
        setLogLevel(0);
    if (reps == 0)
        reps = 1;
    if (profile && !obs::profilingCompiledIn) {
        warn("--profile requested but the profiler is compiled out "
             "(PARADOX_PROFILING=0); skipping attribution");
        profile = false;
    }

    std::vector<std::string> names;
    std::string cur;
    for (char c : workloads_arg + ",") {
        if (c == ',') {
            if (!cur.empty())
                names.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }

    std::vector<BenchResult> results;
    bool all_correct = true;
    for (const auto &name : names) {
        exp::ExperimentSpec spec;
        spec.workload = name;
        spec.scale = scale;
        spec.mode = core::Mode::ParaDox;
        spec.engine = engine;
        spec.checkers = 16;
        spec.maxCheckpoint = 5000;
        spec.limits.maxExecuted = 2'000'000'000ULL;
        spec.limits.maxTicks = ticksPerMs * 30000;

        BenchResult best;
        best.name = name;
        for (unsigned rep = 0; rep < reps; ++rep) {
            exp::RunOutcome out;
            const auto t0 = Clock::now();
            try {
                out = exp::runOne(spec);
            } catch (const std::exception &e) {
                std::fprintf(stderr, "bench_baseline: %s: %s\n",
                             name.c_str(), e.what());
                return 2;
            }
            const auto t1 = Clock::now();
            const double ms =
                std::chrono::duration<double, std::milli>(t1 - t0)
                    .count();
            if (rep == 0 || ms < best.wallMs) {
                best.wallMs = ms;
                best.simInstructions = out.result.instructions;
                best.executed = out.result.executed;
                best.correct = out.correct;
            }
            if (!out.correct)
                best.correct = false;
            if (!quiet)
                std::fprintf(stderr,
                             "bench_baseline: %-10s rep %u/%u: "
                             "%.1f ms%s\n",
                             name.c_str(), rep + 1, reps, ms,
                             out.correct ? "" : "  [WRONG RESULT]");
        }
        best.instPerSec =
            best.wallMs > 0.0
                ? double(best.executed) / (best.wallMs / 1e3)
                : 0.0;

        // The profiled rep is separate from (and after) the timed
        // reps, so enabling attribution never perturbs the published
        // throughput numbers.
        if (profile) {
            obs::Profiler::reset();
            obs::Profiler::setEnabled(true);
            exp::RunOutcome out;
            const auto t0 = Clock::now();
            try {
                out = exp::runOne(spec);
            } catch (const std::exception &e) {
                obs::Profiler::setEnabled(false);
                std::fprintf(stderr, "bench_baseline: %s: %s\n",
                             name.c_str(), e.what());
                return 2;
            }
            const auto t1 = Clock::now();
            obs::Profiler::setEnabled(false);

            best.profWallNs = std::uint64_t(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    t1 - t0)
                    .count());
            std::vector<obs::ProfPhase> phases =
                obs::Profiler::snapshot();
            best.profCoverage =
                best.profWallNs
                    ? double(obs::Profiler::rootTotalNs(phases)) /
                          double(best.profWallNs)
                    : 0.0;

            obs::ProfMeta meta;
            meta.tool = "bench_baseline";
            meta.workload = name;
            meta.simInstructions = out.result.executed;
            meta.wallNs = best.profWallNs;
            best.profFile =
                profile_out + "-" + name + ".prof.jsonl";
            if (!obs::writeProfJsonlFile(best.profFile, phases,
                                         meta)) {
                std::fprintf(stderr,
                             "bench_baseline: cannot write %s\n",
                             best.profFile.c_str());
                return 2;
            }

            best.hot = phases;
            std::sort(best.hot.begin(), best.hot.end(),
                      [](const obs::ProfPhase &a,
                         const obs::ProfPhase &b) {
                          return a.selfNs > b.selfNs;
                      });
            if (best.hot.size() > 5)
                best.hot.resize(5);
            if (!quiet)
                std::fprintf(stderr,
                             "bench_baseline: %-10s profiled: "
                             "%.1f ms, %.1f%% attributed -> %s\n",
                             name.c_str(),
                             double(best.profWallNs) / 1e6,
                             100.0 * best.profCoverage,
                             best.profFile.c_str());
        }

        all_correct = all_correct && best.correct;
        results.push_back(best);
    }

    std::string json = "{\"schema\":\"paradox-bench/1\","
                       "\"tool\":\"bench_baseline\",";
    json += "\"host\":{" + obs::hostJsonFields() + "},";
    json += "\"engine\":\"" +
            std::string(isa::engineKindName(engine)) + "\",";
    json += "\"scale\":" + std::to_string(scale) +
            ",\"reps\":" + std::to_string(reps) + ",\"workloads\":[";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const BenchResult &r = results[i];
        char buf[512];
        std::snprintf(buf, sizeof buf,
                      "%s{\"name\":\"%s\",\"sim_instructions\":%llu,"
                      "\"executed\":%llu,\"wall_ms\":%.1f,"
                      "\"inst_per_sec\":%.0f,\"correct\":%s",
                      i ? "," : "", r.name.c_str(),
                      (unsigned long long)r.simInstructions,
                      (unsigned long long)r.executed, r.wallMs,
                      r.instPerSec, r.correct ? "true" : "false");
        json += buf;
        if (!r.profFile.empty()) {
            std::snprintf(buf, sizeof buf,
                          ",\"prof\":{\"wall_ns\":%llu,"
                          "\"coverage\":%.4f,\"file\":\"%s\","
                          "\"hot\":[",
                          (unsigned long long)r.profWallNs,
                          r.profCoverage, r.profFile.c_str());
            json += buf;
            for (std::size_t h = 0; h < r.hot.size(); ++h) {
                const obs::ProfPhase &p = r.hot[h];
                std::snprintf(
                    buf, sizeof buf,
                    "%s{\"path\":\"%s\",\"self_ns\":%llu,"
                    "\"self_pct\":%.1f}",
                    h ? "," : "", p.path.c_str(),
                    (unsigned long long)p.selfNs,
                    r.profWallNs ? 100.0 * double(p.selfNs) /
                                       double(r.profWallNs)
                                 : 0.0);
                json += buf;
            }
            json += "]}";
        }
        json += "}";
    }
    json += "]}";

    if (out_path.empty()) {
        std::printf("%s\n", json.c_str());
    } else {
        std::FILE *f = std::fopen(out_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "bench_baseline: cannot write %s\n",
                         out_path.c_str());
            return 2;
        }
        std::fprintf(f, "%s\n", json.c_str());
        std::fclose(f);
    }

    for (const BenchResult &r : results)
        std::fprintf(stderr,
                     "bench_baseline: %-10s %8.1f ms  "
                     "%11.0f sim-inst/s%s\n",
                     r.name.c_str(), r.wallMs, r.instPerSec,
                     r.correct ? "" : "  [WRONG RESULT]");
    return all_correct ? 0 : 1;
}
