/**
 * @file
 * paradox_sim: command-line driver for the full system.
 *
 * One exp::ExperimentSpec is populated from typed exp::Cli flags and
 * executed through exp::runOne() -- the same API every figure
 * harness and the campaign driver use -- then pretty-printed (or
 * emitted as a schema'd JSONL record with --json).
 *
 * Exit status 0 iff the run completed with the golden checksum.
 * Run with --help for the flag reference.
 */

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "core/result_json.hh"
#include "exp/cli.hh"
#include "exp/sink.hh"
#include "exp/spec.hh"
#include "obs/trace_writer.hh"
#include "sim/logging.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace paradox;

    exp::ExperimentSpec spec;
    spec.scale = 4;
    spec.checkers = 16;
    spec.maxCheckpoint = 5000;
    spec.timeoutFactor = 24;
    spec.limits.maxExecuted = 2'000'000'000ULL;
    spec.limits.maxTicks = ticksPerMs * 30000;

    std::string mode_name = "paradox";
    std::string persistence_name = "transient";
    bool stats = false, json = false, list = false;
    bool quiet = false, verbose_flag = false;

    exp::Cli cli("paradox_sim",
                 "single-run driver for the modelled system");
    cli.opt("workload", spec.workload,
            "one of the 21 built-in kernels");
    cli.opt("scale", spec.scale, "workload size multiplier");
    cli.opt("mode", mode_name,
            "baseline | detect | paramedic | paradox");
    cli.opt("rate", spec.faultRate,
            "fixed per-event fault rate on the checkers");
    cli.opt("persistence", persistence_name,
            "transient | intermittent | permanent");
    cli.opt("pin-checker", spec.pinChecker,
            "restrict the injector to checker N");
    cli.opt("main-rate", spec.mainCoreRate,
            "fault rate on the *main core* itself");
    cli.opt("chip-seed", spec.chipSeed,
            "per-chip weak-cell fault map (0 = off)");
    cli.opt("weak-cells", spec.weakCells,
            "weak cells sampled over the chip");
    cli.opt("vmin-sigma", spec.vminSigma,
            "per-core Vmin spread in volts");
    cli.opt("supply", spec.supplyVoltage,
            "fixed undervolted rail (chip mode, no --dvfs)");
    cli.flag("dvfs", spec.dvfs,
             "error-seeking undervolting (per-workload model)");
    cli.flag("escalate", spec.escalate,
             "enable the fault-escalation ladder");
    cli.opt("timeout-factor", spec.timeoutFactor,
            "checker watchdog budget multiplier");
    cli.opt("checkers", spec.checkers, "checker-core count");
    cli.opt("max-ckpt", spec.maxCheckpoint,
            "AIMD cap / fixed window");
    cli.opt("seed", spec.seed, "RNG seed");
    cli.opt("ecc-rate", spec.eccRate,
            "SECDED-corrected memory upsets per load");
    cli.flag("stats", stats, "dump the full statistics group");
    cli.flag("json", json, "emit a schema'd JSONL record");
    cli.flag("list", list, "list workloads and exit");
    cli.opt("trace", spec.traceFile,
            "write a Chrome-JSON execution trace (+ .jsonl twin)");
    cli.opt("trace-metrics-us", spec.traceMetricsUs,
            "metrics-counter sampling interval (simulated us)");
    cli.flag("quiet", quiet, "suppress warn/info/progress output");
    cli.flag("verbose", verbose_flag, "show debug-level messages");
    cli.alias("q", "quiet");
    cli.alias("v", "verbose");
    if (!cli.parse(argc, argv))
        return 2;
    if (quiet)
        setLogLevel(0);
    else if (verbose_flag)
        setLogLevel(2);

    if (list) {
        for (const auto &name : workloads::allNames())
            std::printf("%s\n", name.c_str());
        return 0;
    }
    if (!exp::parseMode(mode_name, spec.mode)) {
        std::fprintf(stderr, "unknown mode '%s'\n",
                     mode_name.c_str());
        return 2;
    }
    if (!faults::parsePersistence(persistence_name,
                                  spec.persistence)) {
        std::fprintf(stderr, "unknown persistence '%s'\n",
                     persistence_name.c_str());
        return 2;
    }

    std::string stats_text;
    if (stats)
        spec.observe = [&stats_text](core::System &system,
                                     exp::RunOutcome &) {
            std::ostringstream os;
            system.dumpStats(os);
            stats_text = os.str();
        };

    exp::RunOutcome out;
    try {
        out = exp::runOne(spec);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "paradox_sim: %s\n", e.what());
        return 2;
    }
    const core::RunResult &r = out.result;

    if (json) {
        exp::JsonlSink sink(stdout, "paradox_sim");
        sink.header();
        sink.write(spec, out);
        return out.correct ? 0 : 1;
    }

    std::printf("workload       %s (scale %u, %s)\n",
                spec.workload.c_str(), spec.scale,
                core::modeName(spec.mode));
    std::printf("result         %s\n",
                out.correct ? "CORRECT"
                            : (r.halted ? "WRONG" : "DID NOT FINISH"));
    std::printf("instructions   %llu net, %llu executed\n",
                (unsigned long long)r.instructions,
                (unsigned long long)r.executed);
    std::printf("time           %.3f ms simulated\n",
                r.seconds() * 1e3);
    std::printf("checkpoints    %llu\n",
                (unsigned long long)r.checkpoints);
    std::printf("errors         %llu detected, %llu faults injected\n",
                (unsigned long long)r.errorsDetected,
                (unsigned long long)r.faultsInjected);
    if (spec.chipSeed != 0)
        std::printf("chip           seed %llu, %u weak cells, "
                    "%llu weak-cell hits\n",
                    (unsigned long long)spec.chipSeed, spec.weakCells,
                    (unsigned long long)r.weakCellHits);
    if (spec.supplyVoltage > 0.0)
        std::printf("supply         %.4f V fixed\n",
                    spec.supplyVoltage);
    if (spec.dvfs) {
        std::printf("voltage        %.4f V average\n", r.avgVoltage);
        std::printf("power          %.3f of nominal\n", r.avgPower);
    }
    if (spec.eccRate > 0.0)
        std::printf("ecc corrected  %llu memory upsets\n",
                    (unsigned long long)out.eccCorrected);
    std::printf("checkers awake %.2f of %u average\n",
                r.avgCheckersAwake, spec.checkers);
    if (spec.escalate)
        std::printf("escalation     %llu retries (%llu saved), "
                    "%llu quarantines, %llu panics, %llu watchdog, "
                    "%u healthy left\n",
                    (unsigned long long)r.retryVerifies,
                    (unsigned long long)r.retrySaves,
                    (unsigned long long)r.quarantines,
                    (unsigned long long)r.panicResets,
                    (unsigned long long)r.watchdogTrips,
                    r.healthyCheckers);

    if (!out.tracePath.empty())
        std::printf("trace          %s (+ %s)\n",
                    out.tracePath.c_str(),
                    obs::traceJsonlPath(out.tracePath).c_str());

    if (stats)
        std::fputs(stats_text.c_str(), stdout);
    return out.correct ? 0 : 1;
}
