/**
 * @file
 * paradox_sim: command-line driver for the full system.
 *
 *   paradox_sim [options]
 *     --workload NAME     one of the 21 built-in kernels (bitcount)
 *     --scale N           workload size multiplier (4)
 *     --mode M            baseline | detect | paramedic | paradox
 *     --rate P            fixed per-event fault rate on the checkers
 *     --persistence K     transient | intermittent | permanent
 *     --pin-checker N     restrict the injector to checker N
 *     --main-rate P       fault rate on the *main core* itself
 *     --escalate          enable the fault-escalation ladder
 *     --timeout-factor N  checker watchdog budget multiplier (24)
 *     --dvfs              error-seeking undervolting (per-workload
 *                         exponential model)
 *     --checkers N        checker-core count (16)
 *     --max-ckpt N        AIMD cap / fixed window (5000)
 *     --seed S            RNG seed (12345)
 *     --ecc-rate P        SECDED-corrected memory upsets per load
 *     --stats             dump the full statistics group
 *     --list              list workloads and exit
 *
 * Exit status 0 iff the run completed with the golden checksum.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "core/result_json.hh"
#include "core/system.hh"
#include "power/undervolt_data.hh"
#include "workloads/workload.hh"

namespace
{

using namespace paradox;

struct Options
{
    std::string workload = "bitcount";
    unsigned scale = 4;
    core::Mode mode = core::Mode::ParaDox;
    double rate = 0.0;
    faults::Persistence persistence = faults::Persistence::Transient;
    int pinChecker = -1;
    double mainRate = 0.0;
    bool dvfs = false;
    bool escalate = false;
    unsigned timeoutFactor = 24;
    unsigned checkers = 16;
    unsigned maxCkpt = 5000;
    std::uint64_t seed = 12345;
    double eccRate = 0.0;
    bool stats = false;
    bool json = false;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--workload NAME] [--scale N] [--mode M]\n"
                 "          [--rate P] [--persistence K] [--pin-checker N]\n"
                 "          [--main-rate P] [--dvfs] [--escalate]\n"
                 "          [--timeout-factor N] [--checkers N]\n"
                 "          [--max-ckpt N] [--seed S] [--ecc-rate P]\n"
                 "          [--stats] [--list]\n",
                 argv0);
    std::exit(2);
}

core::Mode
parseMode(const std::string &name)
{
    if (name == "baseline")
        return core::Mode::Baseline;
    if (name == "detect")
        return core::Mode::DetectionOnly;
    if (name == "paramedic")
        return core::Mode::ParaMedic;
    if (name == "paradox")
        return core::Mode::ParaDox;
    std::fprintf(stderr, "unknown mode '%s'\n", name.c_str());
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                usage(argv[0]);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--workload"))
            opt.workload = need("--workload");
        else if (!std::strcmp(argv[i], "--scale"))
            opt.scale = unsigned(std::atoi(need("--scale")));
        else if (!std::strcmp(argv[i], "--mode"))
            opt.mode = parseMode(need("--mode"));
        else if (!std::strcmp(argv[i], "--rate"))
            opt.rate = std::atof(need("--rate"));
        else if (!std::strcmp(argv[i], "--persistence")) {
            const char *name = need("--persistence");
            if (!faults::parsePersistence(name, opt.persistence)) {
                std::fprintf(stderr, "unknown persistence '%s'\n",
                             name);
                usage(argv[0]);
            }
        } else if (!std::strcmp(argv[i], "--pin-checker"))
            opt.pinChecker = std::atoi(need("--pin-checker"));
        else if (!std::strcmp(argv[i], "--escalate"))
            opt.escalate = true;
        else if (!std::strcmp(argv[i], "--timeout-factor"))
            opt.timeoutFactor =
                unsigned(std::atoi(need("--timeout-factor")));
        else if (!std::strcmp(argv[i], "--main-rate"))
            opt.mainRate = std::atof(need("--main-rate"));
        else if (!std::strcmp(argv[i], "--dvfs"))
            opt.dvfs = true;
        else if (!std::strcmp(argv[i], "--checkers"))
            opt.checkers = unsigned(std::atoi(need("--checkers")));
        else if (!std::strcmp(argv[i], "--max-ckpt"))
            opt.maxCkpt = unsigned(std::atoi(need("--max-ckpt")));
        else if (!std::strcmp(argv[i], "--seed"))
            opt.seed = std::strtoull(need("--seed"), nullptr, 0);
        else if (!std::strcmp(argv[i], "--ecc-rate"))
            opt.eccRate = std::atof(need("--ecc-rate"));
        else if (!std::strcmp(argv[i], "--stats"))
            opt.stats = true;
        else if (!std::strcmp(argv[i], "--json"))
            opt.json = true;
        else if (!std::strcmp(argv[i], "--list")) {
            for (const auto &name : workloads::allNames())
                std::printf("%s\n", name.c_str());
            return 0;
        } else {
            usage(argv[0]);
        }
    }

    if (opt.pinChecker >= int(opt.checkers)) {
        std::fprintf(stderr,
                     "--pin-checker %d out of range (only %u checkers)\n",
                     opt.pinChecker, opt.checkers);
        return 2;
    }

    workloads::Workload w = workloads::build(opt.workload, opt.scale);

    core::SystemConfig config = core::SystemConfig::forMode(opt.mode);
    config.seed = opt.seed;
    config.checkers.count = opt.checkers;
    config.checkpointAimd.maxLength = opt.maxCkpt;
    config.checkpointAimd.initial =
        std::min(config.checkpointAimd.initial, opt.maxCkpt);
    config.memoryEccFaultRate = opt.eccRate;
    config.checkerTimeoutFactor = opt.timeoutFactor;
    if (opt.escalate)
        config.enableEscalation();

    core::System system(config, w.program);
    if (opt.dvfs)
        system.enableDvfs(power::errorModelParams(opt.workload));
    else if (opt.rate > 0.0)
        system.setFaultPlan(faults::uniformPlan(
            opt.rate, opt.seed, opt.persistence, opt.pinChecker));
    if (opt.mainRate > 0.0) {
        faults::FaultConfig fc;
        fc.kind = faults::FaultKind::RegisterBitFlip;
        fc.rate = opt.mainRate;
        fc.seed = opt.seed * 31 + 7;
        faults::FaultPlan plan;
        plan.add(fc);
        system.setMainCoreFaultPlan(std::move(plan));
    }

    core::RunLimits limits;
    limits.maxExecuted = 2'000'000'000ULL;
    limits.maxTicks = ticksPerMs * 30000;
    core::RunResult r = system.run(limits);

    std::uint64_t got = system.memory().read(workloads::resultAddr, 8);
    bool correct = r.halted && got == w.expectedResult;

    if (opt.json) {
        std::printf("%s\n", core::toJson(r).c_str());
        return correct ? 0 : 1;
    }

    std::printf("workload       %s (scale %u, %s)\n", w.name.c_str(),
                opt.scale, core::modeName(opt.mode));
    std::printf("result         %s\n",
                correct ? "CORRECT"
                        : (r.halted ? "WRONG" : "DID NOT FINISH"));
    std::printf("instructions   %llu net, %llu executed\n",
                (unsigned long long)r.instructions,
                (unsigned long long)r.executed);
    std::printf("time           %.3f ms simulated\n",
                r.seconds() * 1e3);
    std::printf("checkpoints    %llu\n",
                (unsigned long long)r.checkpoints);
    std::printf("errors         %llu detected, %llu faults injected\n",
                (unsigned long long)r.errorsDetected,
                (unsigned long long)r.faultsInjected);
    if (opt.dvfs) {
        std::printf("voltage        %.4f V average\n", r.avgVoltage);
        std::printf("power          %.3f of nominal\n", r.avgPower);
    }
    if (opt.eccRate > 0.0)
        std::printf("ecc corrected  %llu memory upsets\n",
                    (unsigned long long)system.eccCorrected());
    std::printf("checkers awake %.2f of %u average\n",
                r.avgCheckersAwake, opt.checkers);
    if (opt.escalate)
        std::printf("escalation     %llu retries (%llu saved), "
                    "%llu quarantines, %llu panics, %llu watchdog, "
                    "%u healthy left\n",
                    (unsigned long long)r.retryVerifies,
                    (unsigned long long)r.retrySaves,
                    (unsigned long long)r.quarantines,
                    (unsigned long long)r.panicResets,
                    (unsigned long long)r.watchdogTrips,
                    r.healthyCheckers);

    if (opt.stats) {
        std::ostringstream os;
        system.dumpStats(os);
        std::fputs(os.str().c_str(), stdout);
    }
    return correct ? 0 : 1;
}
