/**
 * @file
 * Table I — core and memory experimental setup.
 *
 * Prints the modelled configuration in the paper's table layout so a
 * reader can diff it against Table I directly.  Everything shown is
 * read back from the live default SystemConfig (not re-typed), so
 * this output cannot drift from what the simulator actually runs.
 */

#include <cstdio>

#include "core/config.hh"

int
main()
{
    using namespace paradox;
    core::SystemConfig c = core::SystemConfig::forMode(
        core::Mode::ParaDox);

    std::printf("Table I: Core and memory experimental setup\n");
    std::printf("-------------------------------------------\n");
    std::printf("Main Cores\n");
    std::printf("  Core           %u-wide, out-of-order, %.1f GHz\n",
                c.mainCore.width, c.mainFreqHz / 1e9);
    std::printf("  Pipeline       %u-entry ROB, %u-entry IQ, "
                "%u-entry LQ, %u-entry SQ,\n"
                "                 %u Int ALUs, %u FP ALUs, "
                "%u Mult/Div ALU\n",
                c.mainCore.robEntries, c.mainCore.iqEntries,
                c.mainCore.lqEntries, c.mainCore.sqEntries,
                c.mainCore.intAlus, c.mainCore.fpAlus,
                c.mainCore.multDivAlus);
    std::printf("  Tournament BP  %u-entry local, %u-entry global, "
                "%u-entry chooser,\n"
                "                 %u-entry BTB, %u-entry RAS\n",
                c.mainCore.predictor.localEntries,
                c.mainCore.predictor.globalEntries,
                c.mainCore.predictor.chooserEntries,
                c.mainCore.predictor.btbEntries,
                c.mainCore.predictor.rasEntries);
    std::printf("  Reg checkpoint %u cycles latency\n",
                c.regCheckpointCycles);

    std::printf("Memory\n");
    std::printf("  L1 ICache      %zu KiB, %u-way, %u-cycle hit, "
                "%u MSHRs\n",
                c.hierarchy.l1i.sizeBytes / 1024, c.hierarchy.l1i.assoc,
                c.hierarchy.l1i.hitCycles, c.hierarchy.l1i.mshrs);
    std::printf("  L1 DCache      %zu KiB, %u-way, %u-cycle hit, "
                "%u MSHRs\n",
                c.hierarchy.l1d.sizeBytes / 1024, c.hierarchy.l1d.assoc,
                c.hierarchy.l1d.hitCycles, c.hierarchy.l1d.mshrs);
    std::printf("  L2 Cache       %zu MiB shared, %u-way, "
                "%u-cycle hit, %u MSHRs, stride prefetcher\n",
                c.hierarchy.l2.sizeBytes / (1024 * 1024),
                c.hierarchy.l2.assoc, c.hierarchy.l2.hitCycles,
                c.hierarchy.l2.mshrs);
    std::printf("  Memory         DDR3-1600 %u-%u-%u-%u, %.0f MHz\n",
                c.hierarchy.dram.tCL, c.hierarchy.dram.tRCD,
                c.hierarchy.dram.tRP, c.hierarchy.dram.tRAS,
                c.hierarchy.dram.clockHz / 1e6);

    std::printf("Checker Cores\n");
    std::printf("  Cores          %ux in-order, 4-stage pipeline, "
                "%.0f GHz\n",
                c.checkers.count, c.checkers.freqHz / 1e9);
    std::printf("  Log size       %zu KiB per core, %u inst. max "
                "length\n",
                c.log.segmentBytes / 1024,
                c.checkpointAimd.maxLength);
    std::printf("  Cache          %u KiB L0 ICache per core, "
                "%u KiB shared L1\n",
                c.checkers.l0Bytes / 1024,
                c.checkers.sharedL1Bytes / 1024);
    return 0;
}
