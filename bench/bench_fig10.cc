/**
 * @file
 * Figure 10 — normalized slowdown across SPEC CPU2006 proxies:
 * error-free passive detection [DSN'18], error-free ParaMedic
 * [DSN'19], and ParaDox with dynamic voltage scaling (errors from
 * the per-workload exponential undervolt model), all relative to a
 * fault-intolerant baseline.
 *
 * Expected shape (paper): slowdowns stay within ~1.15x; ordering is
 * detection-only <= ParaMedic <= ParaDox(DVS); gobmk/povray/h264ref/
 * omnetpp/xalancbmk pay for checker L0 I-cache misses even in
 * detection-only mode.
 */

#include <cstdio>
#include <vector>

#include "common.hh"

int
main()
{
    using namespace paradox;
    using namespace paradox::bench;

    banner("Figure 10: normalized slowdown "
           "(detection-only / ParaMedic / ParaDox+DVS)");
    std::printf("%-11s %-12s %-12s %-12s\n", "workload", "detect",
                "paramedic", "paradox-dvs");

    std::vector<double> detect, medic, dox;
    for (const std::string &name : workloads::specNames()) {
        RunSpec base;
        base.mode = core::Mode::Baseline;
        base.workload = name;
        base.scale = 16;  // long enough for DVS steady state
        core::RunResult rb = runSpec(base);
        const double t0 = double(rb.time);

        RunSpec d = base;
        d.mode = core::Mode::DetectionOnly;
        core::RunResult rd = runSpec(d);

        RunSpec m = base;
        m.mode = core::Mode::ParaMedic;
        core::RunResult rm = runSpec(m);

        RunSpec p = base;
        p.mode = core::Mode::ParaDox;
        p.dvfs = true;
        core::RunResult rp = runSpec(p);

        double sd = double(rd.time) / t0;
        double sm = double(rm.time) / t0;
        double sp = double(rp.time) / t0;
        detect.push_back(sd);
        medic.push_back(sm);
        dox.push_back(sp);
        std::printf("%-11s %-12.3f %-12.3f %-12.3f\n", name.c_str(),
                    sd, sm, sp);
    }
    std::printf("%-11s %-12.3f %-12.3f %-12.3f\n", "gmean",
                geomean(detect), geomean(medic), geomean(dox));
    return 0;
}
