/**
 * @file
 * Figure 10 — normalized slowdown across SPEC CPU2006 proxies:
 * error-free passive detection [DSN'18], error-free ParaMedic
 * [DSN'19], and ParaDox with dynamic voltage scaling (errors from
 * the per-workload exponential undervolt model), all relative to a
 * fault-intolerant baseline.
 *
 * Expected shape (paper): slowdowns stay within ~1.15x; ordering is
 * detection-only <= ParaMedic <= ParaDox(DVS); gobmk/povray/h264ref/
 * omnetpp/xalancbmk pay for checker L0 I-cache misses even in
 * detection-only mode.
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace paradox;
    using namespace paradox::bench;

    exp::Runner runner = benchRunner("bench_fig10", argc, argv);

    banner("Figure 10: normalized slowdown "
           "(detection-only / ParaMedic / ParaDox+DVS)");
    std::printf("%-11s %-12s %-12s %-12s\n", "workload", "detect",
                "paramedic", "paradox-dvs");

    // Four runs per workload: baseline, detect, paramedic, dox+dvs.
    const std::vector<std::string> &names = workloads::specNames();
    std::vector<exp::ExperimentSpec> specs;
    for (const std::string &name : names) {
        exp::ExperimentSpec base;
        base.mode = core::Mode::Baseline;
        base.workload = name;
        base.scale = 16;  // long enough for DVS steady state
        specs.push_back(base);

        exp::ExperimentSpec d = base;
        d.mode = core::Mode::DetectionOnly;
        specs.push_back(d);

        exp::ExperimentSpec m = base;
        m.mode = core::Mode::ParaMedic;
        specs.push_back(m);

        exp::ExperimentSpec p = base;
        p.mode = core::Mode::ParaDox;
        p.dvfs = true;
        specs.push_back(p);
    }

    std::vector<exp::RunOutcome> outcomes = runner.run(specs);

    std::vector<double> detect, medic, dox;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const double t0 = double(outcomes[4 * i].result.time);
        const double sd = double(outcomes[4 * i + 1].result.time) / t0;
        const double sm = double(outcomes[4 * i + 2].result.time) / t0;
        const double sp = double(outcomes[4 * i + 3].result.time) / t0;
        detect.push_back(sd);
        medic.push_back(sm);
        dox.push_back(sp);
        std::printf("%-11s %-12.3f %-12.3f %-12.3f\n",
                    names[i].c_str(), sd, sm, sp);
    }
    std::printf("%-11s %-12.3f %-12.3f %-12.3f\n", "gmean",
                geomean(detect), geomean(medic), geomean(dox));
    return 0;
}
