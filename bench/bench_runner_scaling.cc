/**
 * @file
 * Runner scaling: demonstrates that exp::Runner gives near-linear
 * wall-clock speedup over the serial sweep while producing
 * bitwise-identical aggregated results at every job count.
 *
 * A fixed batch of independent simulations is executed serially
 * (--jobs 1) to establish both the reference wall-clock and the
 * reference records, then re-executed at increasing job counts.  At
 * each point, every record (spec + full RunResult JSON) must match
 * the serial run byte for byte; the speedup curve is printed last.
 * Exit status is non-zero if any record diverges.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hh"
#include "exp/sink.hh"

namespace
{

using namespace paradox;
using namespace paradox::bench;

/** The sweep: workloads x rates x seeds, all independent. */
std::vector<exp::ExperimentSpec>
makeBatch(unsigned runs_per_point, unsigned scale)
{
    std::vector<exp::ExperimentSpec> specs;
    for (const char *workload : {"bitcount", "stream"}) {
        for (double rate : {0.0, 1e-5, 1e-4}) {
            for (unsigned s = 0; s < runs_per_point; ++s) {
                exp::ExperimentSpec spec;
                spec.workload = workload;
                spec.scale = scale;
                spec.mode = core::Mode::ParaDox;
                spec.faultRate = rate;
                spec.seed = 12345 + s * 7919;
                specs.push_back(spec);
            }
        }
    }
    return specs;
}

std::vector<std::string>
records(const std::vector<exp::ExperimentSpec> &specs,
        const std::vector<exp::RunOutcome> &outcomes)
{
    std::vector<std::string> out;
    out.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        out.push_back(exp::recordJson(specs[i], outcomes[i]));
    return out;
}

double
timedRun(const std::vector<exp::ExperimentSpec> &specs, unsigned jobs,
         std::vector<std::string> &out)
{
    exp::RunnerOptions opt;
    opt.jobs = jobs;
    opt.progress = false;
    exp::Runner runner(opt);
    const auto start = std::chrono::steady_clock::now();
    std::vector<exp::RunOutcome> outcomes = runner.run(specs);
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    out = records(specs, outcomes);
    return secs;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned max_jobs = exp::defaultJobs();
    unsigned runs = 4;
    unsigned scale = 4;
    exp::Cli cli("bench_runner_scaling",
                 "serial-vs-parallel runner speedup curve");
    cli.opt("jobs", max_jobs, "largest job count to measure");
    cli.opt("runs", runs, "seeds per (workload, rate) point");
    cli.opt("scale", scale, "workload size multiplier");
    if (!cli.parse(argc, argv))
        return 2;

    std::vector<exp::ExperimentSpec> specs = makeBatch(runs, scale);
    banner("Runner scaling: identical results, near-linear speedup");
    std::printf("batch: %zu runs, max jobs %u\n\n", specs.size(),
                max_jobs);

    std::vector<std::string> reference;
    const double t_serial = timedRun(specs, 1, reference);

    std::printf("%-8s %-12s %-10s %-12s %-10s\n", "jobs", "wall (s)",
                "speedup", "efficiency", "identical");
    std::printf("%-8u %-12.3f %-10.2f %-12.2f %-10s\n", 1u, t_serial,
                1.0, 1.0, "ref");

    bool all_identical = true;
    for (unsigned jobs = 2; jobs <= max_jobs; jobs *= 2) {
        std::vector<std::string> got;
        const double t = timedRun(specs, jobs, got);
        const bool identical = got == reference;
        all_identical = all_identical && identical;
        std::printf("%-8u %-12.3f %-10.2f %-12.2f %-10s\n", jobs, t,
                    t_serial / t, t_serial / t / jobs,
                    identical ? "yes" : "NO");
        if (!identical) {
            for (std::size_t i = 0; i < got.size(); ++i) {
                if (got[i] != reference[i]) {
                    std::fprintf(stderr,
                                 "first divergence at record %zu:\n"
                                 "  serial:   %s\n  parallel: %s\n",
                                 i, reference[i].c_str(),
                                 got[i].c_str());
                    break;
                }
            }
        }
    }

    if (!all_identical) {
        std::printf("\nFAIL: parallel records diverged from serial\n");
        return 1;
    }
    std::printf("\nall job counts reproduced the serial records "
                "bit for bit\n");
    return 0;
}
