/**
 * @file
 * Figure 11 — supply voltage over time for ParaDox running bitcount,
 * comparing the default *dynamic* decrease (slowed 8x below the
 * highest-voltage-error tide mark) against a *constant* decrease
 * rate.
 *
 * Expected shape (paper): the dynamic policy reaches a lower average
 * steady-state voltage with far fewer errors than the constant
 * policy, and both averages sit well below the highest voltage at
 * which any error was observed.
 */

#include <cstdio>
#include <string>

#include "common.hh"

namespace
{

using namespace paradox;
using namespace paradox::bench;

struct TraceResult
{
    core::RunResult run;
    std::vector<std::pair<Tick, double>> trace;
    double highestError;
    double steadyAverage;
};

TraceResult
runPolicy(bool dynamic_decrease)
{
    workloads::Workload w = workloads::build("bitcount", 96);
    core::SystemConfig config =
        core::SystemConfig::forMode(core::Mode::ParaDox);
    config.voltage.dynamicDecrease = dynamic_decrease;
    core::System system(config, w.program);
    system.enableDvfs(power::errorModelParams("bitcount"));
    core::RunLimits limits;
    limits.maxExecuted = 400'000'000;
    limits.maxTicks = ticksPerMs * 40;

    TraceResult out{system.run(limits), {}, 0.0, 0.0};
    out.trace = system.voltageTrace().samples();
    out.highestError =
        system.voltageController().highestErrorVoltage();
    // Steady state: time-ordered second half of the trace.
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = out.trace.size() / 2; i < out.trace.size();
         ++i) {
        sum += out.trace[i].second;
        ++n;
    }
    out.steadyAverage = n ? sum / double(n) : 0.0;
    return out;
}

void
printDecimated(const char *label, const TraceResult &t)
{
    std::printf("\n# %s voltage trace (time_ms voltage_v), "
                "%zu samples decimated to <=40 rows\n",
                label, t.trace.size());
    const std::size_t step =
        t.trace.size() > 40 ? t.trace.size() / 40 : 1;
    for (std::size_t i = 0; i < t.trace.size(); i += step) {
        std::printf("%8.3f  %6.4f\n",
                    double(t.trace[i].first) / double(ticksPerMs),
                    t.trace[i].second);
    }
}

} // namespace

int
main()
{
    banner("Figure 11: voltage over time on ParaDox running bitcount");

    TraceResult dynamic = runPolicy(true);
    TraceResult constant = runPolicy(false);

    std::printf("%-22s %-14s %-14s\n", "metric", "dynamic", "constant");
    std::printf("%-22s %-14.4f %-14.4f\n", "steady-state avg V",
                dynamic.steadyAverage, constant.steadyAverage);
    std::printf("%-22s %-14.4f %-14.4f\n", "highest error V",
                dynamic.highestError, constant.highestError);
    std::printf("%-22s %-14llu %-14llu\n", "errors",
                (unsigned long long)dynamic.run.errorsDetected,
                (unsigned long long)constant.run.errorsDetected);
    std::printf("%-22s %-14.3f %-14.3f\n", "simulated time (ms)",
                dynamic.run.seconds() * 1e3,
                constant.run.seconds() * 1e3);
    std::printf("%-22s %-14.4f %-14.4f\n", "avg voltage (whole run)",
                dynamic.run.avgVoltage, constant.run.avgVoltage);

    printDecimated("dynamic-decrease", dynamic);
    printDecimated("constant-decrease", constant);
    return 0;
}
