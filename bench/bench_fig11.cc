/**
 * @file
 * Figure 11 — supply voltage over time for ParaDox running bitcount,
 * comparing the default *dynamic* decrease (slowed 8x below the
 * highest-voltage-error tide mark) against a *constant* decrease
 * rate.
 *
 * Expected shape (paper): the dynamic policy reaches a lower average
 * steady-state voltage with far fewer errors than the constant
 * policy, and both averages sit well below the highest voltage at
 * which any error was observed.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common.hh"

namespace
{

using namespace paradox;
using namespace paradox::bench;

struct Trace
{
    std::vector<std::pair<Tick, double>> samples;
    double highestError = 0.0;

    double
    steadyAverage() const
    {
        // Steady state: time-ordered second half of the trace.
        double sum = 0.0;
        std::size_t n = 0;
        for (std::size_t i = samples.size() / 2; i < samples.size();
             ++i) {
            sum += samples[i].second;
            ++n;
        }
        return n ? sum / double(n) : 0.0;
    }
};

exp::ExperimentSpec
policySpec(bool dynamic_decrease, Trace &out)
{
    exp::ExperimentSpec spec;
    spec.workload = "bitcount";
    spec.scale = 96;
    spec.mode = core::Mode::ParaDox;
    spec.dvfs = true;
    spec.limits.maxExecuted = 400'000'000;
    spec.limits.maxTicks = ticksPerMs * 40;
    spec.configure = [dynamic_decrease](core::SystemConfig &c) {
        c.voltage.dynamicDecrease = dynamic_decrease;
    };
    spec.observe = [&out](core::System &system, exp::RunOutcome &) {
        out.samples = system.voltageTrace().samples();
        out.highestError =
            system.voltageController().highestErrorVoltage();
    };
    return spec;
}

void
printDecimated(const char *label, const Trace &t)
{
    std::printf("\n# %s voltage trace (time_ms voltage_v), "
                "%zu samples decimated to <=40 rows\n",
                label, t.samples.size());
    const std::size_t step =
        t.samples.size() > 40 ? t.samples.size() / 40 : 1;
    for (std::size_t i = 0; i < t.samples.size(); i += step) {
        std::printf("%8.3f  %6.4f\n",
                    double(t.samples[i].first) / double(ticksPerMs),
                    t.samples[i].second);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    exp::Runner runner = benchRunner("bench_fig11", argc, argv);

    banner("Figure 11: voltage over time on ParaDox running bitcount");

    Trace dynamic, constant;
    std::vector<exp::ExperimentSpec> specs = {
        policySpec(true, dynamic),
        policySpec(false, constant),
    };
    std::vector<exp::RunOutcome> outcomes = runner.run(specs);
    const core::RunResult &rd = outcomes[0].result;
    const core::RunResult &rc = outcomes[1].result;

    std::printf("%-22s %-14s %-14s\n", "metric", "dynamic",
                "constant");
    std::printf("%-22s %-14.4f %-14.4f\n", "steady-state avg V",
                dynamic.steadyAverage(), constant.steadyAverage());
    std::printf("%-22s %-14.4f %-14.4f\n", "highest error V",
                dynamic.highestError, constant.highestError);
    std::printf("%-22s %-14llu %-14llu\n", "errors",
                (unsigned long long)rd.errorsDetected,
                (unsigned long long)rc.errorsDetected);
    std::printf("%-22s %-14.3f %-14.3f\n", "simulated time (ms)",
                rd.seconds() * 1e3, rc.seconds() * 1e3);
    std::printf("%-22s %-14.4f %-14.4f\n", "avg voltage (whole run)",
                rd.avgVoltage, rc.avgVoltage);

    printDecimated("dynamic-decrease", dynamic);
    printDecimated("constant-decrease", constant);
    return 0;
}
