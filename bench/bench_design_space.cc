/**
 * @file
 * Design-space exploration (paper section V uses bitcount and stream
 * for exactly this): how the maximum checkpoint length and the number
 * of checker cores shape performance.
 *
 * Expected shapes: longer checkpoint caps help error-free runs
 * (fewer register checkpoints) but hurt under errors (more wasted
 * re-execution) -- the tension AIMD resolves; stream is insensitive
 * to the cap because log capacity cuts its segments first.  Fewer
 * checkers starve the main core (checker-wait stalls); Table I's 16
 * sit at the knee.
 */

#include <cstdio>

#include "common.hh"

namespace
{

using namespace paradox;
using namespace paradox::bench;

core::RunResult
runWith(const char *workload, unsigned max_ckpt, unsigned checkers,
        double rate, bool adaptive = true)
{
    workloads::Workload w = workloads::build(workload, 2);
    core::SystemConfig config =
        core::SystemConfig::forMode(core::Mode::ParaDox);
    config.checkpointAimd.maxLength = max_ckpt;
    config.checkpointAimd.initial = std::min(1000u, max_ckpt);
    config.adaptiveCheckpoints = adaptive;
    config.checkers.count = checkers;
    core::System system(config, w.program);
    if (rate > 0.0)
        system.setFaultPlan(faults::uniformPlan(rate, 31));
    core::RunLimits limits = defaultLimits();
    return system.run(limits);
}

} // namespace

int
main()
{
    banner("Design space A: fixed checkpoint length, no AIMD "
           "(16 checkers) -- the tension AIMD resolves");
    std::printf("%-9s %-9s %-14s %-14s %-14s\n", "workload", "length",
                "t(ms) rate=0", "t(ms) 1e-4", "t(ms) 1e-3");
    for (const char *workload : {"bitcount", "stream"}) {
        for (unsigned len : {100u, 500u, 1000u, 2000u, 5000u,
                             10000u}) {
            auto clean = runWith(workload, len, 16, 0.0, false);
            auto mid = runWith(workload, len, 16, 1e-4, false);
            auto high = runWith(workload, len, 16, 1e-3, false);
            std::printf("%-9s %-9u %-14.3f %-14.3f %-14.3f\n",
                        workload, len, clean.seconds() * 1e3,
                        mid.seconds() * 1e3, high.seconds() * 1e3);
        }
        std::printf("\n");
    }
    std::printf("(AIMD reference: adaptive lengths give "
                "t(0)=%.3f / t(1e-4)=%.3f / t(1e-3)=%.3f ms "
                "on bitcount)\n\n",
                runWith("bitcount", 5000, 16, 0.0).seconds() * 1e3,
                runWith("bitcount", 5000, 16, 1e-4).seconds() * 1e3,
                runWith("bitcount", 5000, 16, 1e-3).seconds() * 1e3);

    banner("Design space B: checker-core count (5000-inst cap, "
           "error-free)");
    std::printf("%-9s %-9s %-10s %-14s\n", "workload", "checkers",
                "t(ms)", "avg awake");
    for (const char *workload : {"bitcount", "stream"}) {
        for (unsigned n : {4u, 8u, 12u, 16u, 24u, 32u}) {
            auto r = runWith(workload, 5000, n, 0.0);
            std::printf("%-9s %-9u %-10.3f %-14.2f\n", workload, n,
                        r.seconds() * 1e3, r.avgCheckersAwake);
        }
        std::printf("\n");
    }
    return 0;
}
