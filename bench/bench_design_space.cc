/**
 * @file
 * Design-space exploration (paper section V uses bitcount and stream
 * for exactly this): how the maximum checkpoint length and the number
 * of checker cores shape performance.
 *
 * Expected shapes: longer checkpoint caps help error-free runs
 * (fewer register checkpoints) but hurt under errors (more wasted
 * re-execution) -- the tension AIMD resolves; stream is insensitive
 * to the cap because log capacity cuts its segments first.  Fewer
 * checkers starve the main core (checker-wait stalls); Table I's 16
 * sit at the knee.
 */

#include <cstdio>
#include <vector>

#include "common.hh"

namespace
{

using namespace paradox;
using namespace paradox::bench;

exp::ExperimentSpec
pointSpec(const char *workload, unsigned max_ckpt, unsigned checkers,
          double rate, bool adaptive = true)
{
    exp::ExperimentSpec spec;
    spec.workload = workload;
    spec.scale = 2;
    spec.mode = core::Mode::ParaDox;
    spec.maxCheckpoint = max_ckpt;
    spec.checkers = checkers;
    spec.faultRate = rate;
    spec.seed = 31;
    if (!adaptive)
        spec.configure = [](core::SystemConfig &c) {
            c.adaptiveCheckpoints = false;
        };
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    exp::Runner runner = benchRunner("bench_design_space", argc, argv);

    const unsigned lengths[] = {100, 500, 1000, 2000, 5000, 10000};
    const unsigned counts[] = {4, 8, 12, 16, 24, 32};
    const double rates[] = {0.0, 1e-4, 1e-3};

    // One flat batch: sweep A (fixed lengths), the AIMD reference
    // points, then sweep B (checker counts).
    std::vector<exp::ExperimentSpec> specs;
    for (const char *workload : {"bitcount", "stream"})
        for (unsigned len : lengths)
            for (double rate : rates)
                specs.push_back(
                    pointSpec(workload, len, 16, rate, false));
    const std::size_t aimd_base = specs.size();
    for (double rate : rates)
        specs.push_back(pointSpec("bitcount", 5000, 16, rate));
    const std::size_t count_base = specs.size();
    for (const char *workload : {"bitcount", "stream"})
        for (unsigned n : counts)
            specs.push_back(pointSpec(workload, 5000, n, 0.0));

    std::vector<exp::RunOutcome> outcomes = runner.run(specs);

    banner("Design space A: fixed checkpoint length, no AIMD "
           "(16 checkers) -- the tension AIMD resolves");
    std::printf("%-9s %-9s %-14s %-14s %-14s\n", "workload", "length",
                "t(ms) rate=0", "t(ms) 1e-4", "t(ms) 1e-3");
    std::size_t idx = 0;
    for (const char *workload : {"bitcount", "stream"}) {
        for (unsigned len : lengths) {
            const double t0 =
                outcomes[idx++].result.seconds() * 1e3;
            const double t1 =
                outcomes[idx++].result.seconds() * 1e3;
            const double t2 =
                outcomes[idx++].result.seconds() * 1e3;
            std::printf("%-9s %-9u %-14.3f %-14.3f %-14.3f\n",
                        workload, len, t0, t1, t2);
        }
        std::printf("\n");
    }
    std::printf("(AIMD reference: adaptive lengths give "
                "t(0)=%.3f / t(1e-4)=%.3f / t(1e-3)=%.3f ms "
                "on bitcount)\n\n",
                outcomes[aimd_base].result.seconds() * 1e3,
                outcomes[aimd_base + 1].result.seconds() * 1e3,
                outcomes[aimd_base + 2].result.seconds() * 1e3);

    banner("Design space B: checker-core count (5000-inst cap, "
           "error-free)");
    std::printf("%-9s %-9s %-10s %-14s\n", "workload", "checkers",
                "t(ms)", "avg awake");
    idx = count_base;
    for (const char *workload : {"bitcount", "stream"}) {
        for (unsigned n : counts) {
            const core::RunResult &r = outcomes[idx++].result;
            std::printf("%-9s %-9u %-10.3f %-14.2f\n", workload, n,
                        r.seconds() * 1e3, r.avgCheckersAwake);
        }
        std::printf("\n");
    }
    return 0;
}
