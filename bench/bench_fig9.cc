/**
 * @file
 * Figure 9 — average overheads of re-execution (wasted execution)
 * and memory rollback at low and high error rates, for bitcount
 * (compute-bound) and stream (memory-bound).
 *
 * Expected shape (paper): wasted execution dominates rollback by one
 * to two orders of magnitude; ParaDox's rollback is ~10x cheaper than
 * ParaMedic's (line- vs word-granularity); at high rates ParaDox also
 * wastes far less execution because its checkpoints shrink.  Stream's
 * checkpoints are short regardless (log fills quickly), so its gap is
 * smaller.
 */

#include <cstdio>
#include <vector>

#include "common.hh"

namespace
{

using namespace paradox;
using namespace paradox::bench;

void
reportPoint(const char *workload, core::Mode mode, double rate)
{
    // Longer runs at lower rates, so each point observes errors.
    unsigned scale = 1;
    if (rate <= 1e-7)
        scale = 96;
    else if (rate <= 1e-6)
        scale = 24;
    else if (rate <= 1e-5)
        scale = 6;
    workloads::Workload w = workloads::build(workload, scale);
    core::SystemConfig config = core::SystemConfig::forMode(mode);
    core::System system(config, w.program);
    system.setFaultPlan(faults::uniformPlan(rate, 1234));
    core::RunLimits limits = defaultLimits();
    limits.maxExecuted = 300'000'000;
    limits.maxTicks = ticksPerMs * 2000;
    core::RunResult r = system.run(limits);

    const auto &rollback = system.rollbackTimesNs();
    const auto &wasted = system.wastedExecNs();
    std::printf("%-9s %-10s %-8.0e %7llu  "
                "%10.1f [%8.1f,%10.1f]  %10.1f [%8.1f,%10.1f]\n",
                workload, core::modeName(mode), rate,
                static_cast<unsigned long long>(r.rollbacks),
                rollback.mean(), rollback.min(), rollback.max(),
                wasted.mean(), wasted.min(), wasted.max());
}

} // namespace

int
main()
{
    banner("Figure 9: mean recovery overheads (ns), with ranges");
    std::printf("%-9s %-10s %-8s %7s  %-34s %-34s\n", "workload",
                "system", "rate", "rolls",
                "rollback ns mean [min,max]",
                "wasted-exec ns mean [min,max]");

    for (const char *workload : {"bitcount", "stream"}) {
        for (double rate : {1e-7, 1e-6, 1e-5, 1e-4}) {
            for (core::Mode mode :
                 {core::Mode::ParaMedic, core::Mode::ParaDox}) {
                reportPoint(workload, mode, rate);
            }
        }
        std::printf("\n");
    }
    return 0;
}
