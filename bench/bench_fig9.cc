/**
 * @file
 * Figure 9 — average overheads of re-execution (wasted execution)
 * and memory rollback at low and high error rates, for bitcount
 * (compute-bound) and stream (memory-bound).
 *
 * Expected shape (paper): wasted execution dominates rollback by one
 * to two orders of magnitude; ParaDox's rollback is ~10x cheaper than
 * ParaMedic's (line- vs word-granularity); at high rates ParaDox also
 * wastes far less execution because its checkpoints shrink.  Stream's
 * checkpoints are short regardless (log fills quickly), so its gap is
 * smaller.
 */

#include <cstdio>
#include <vector>

#include "common.hh"

namespace
{

using namespace paradox;
using namespace paradox::bench;

exp::ExperimentSpec
pointSpec(const char *workload, core::Mode mode, double rate)
{
    exp::ExperimentSpec spec;
    spec.workload = workload;
    spec.mode = mode;
    spec.faultRate = rate;
    spec.seed = 1234;
    // Longer runs at lower rates, so each point observes errors.
    spec.scale = 1;
    if (rate <= 1e-7)
        spec.scale = 96;
    else if (rate <= 1e-6)
        spec.scale = 24;
    else if (rate <= 1e-5)
        spec.scale = 6;
    spec.limits.maxExecuted = 300'000'000;
    spec.limits.maxTicks = ticksPerMs * 2000;
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    exp::Runner runner = benchRunner("bench_fig9", argc, argv);

    banner("Figure 9: mean recovery overheads (ns), with ranges");
    std::printf("%-9s %-10s %-8s %7s  %-34s %-34s\n", "workload",
                "system", "rate", "rolls",
                "rollback ns mean [min,max]",
                "wasted-exec ns mean [min,max]");

    std::vector<exp::ExperimentSpec> specs;
    for (const char *workload : {"bitcount", "stream"})
        for (double rate : {1e-7, 1e-6, 1e-5, 1e-4})
            for (core::Mode mode :
                 {core::Mode::ParaMedic, core::Mode::ParaDox})
                specs.push_back(pointSpec(workload, mode, rate));

    std::vector<exp::RunOutcome> outcomes = runner.run(specs);

    for (std::size_t i = 0; i < specs.size(); ++i) {
        const exp::ExperimentSpec &spec = specs[i];
        const exp::RunOutcome &o = outcomes[i];
        std::printf("%-9s %-10s %-8.0e %7llu  "
                    "%10.1f [%8.1f,%10.1f]  %10.1f [%8.1f,%10.1f]\n",
                    spec.workload.c_str(), core::modeName(spec.mode),
                    spec.faultRate,
                    static_cast<unsigned long long>(o.result.rollbacks),
                    o.rollbackNs.mean, o.rollbackNs.min,
                    o.rollbackNs.max, o.wastedNs.mean, o.wastedNs.min,
                    o.wastedNs.max);
        if (i % 8 == 7)
            std::printf("\n");
    }
    return 0;
}
