/**
 * @file
 * Figure 3 — error-resilient undervolting in theory: total energy
 * versus supply voltage, showing the sweet spot between
 * recovery-dominated (left) and margin-dominated (right) regions.
 *
 * The paper draws this schematically; here the curve is produced
 * from the actual models: core power from the V^2 f power model, and
 * recovery overhead from the exponential undervolt error model with
 * the measured per-error recovery cost.
 */

#include <cstdio>

#include "faults/undervolt_model.hh"
#include "power/power_model.hh"

int
main()
{
    using namespace paradox;

    std::printf("Figure 3: modelled total energy vs supply voltage\n");
    std::printf("%-8s %-12s %-12s %-12s\n", "V", "corePower",
                "recovMult", "energy");

    power::PowerModel power_model;
    faults::UndervoltErrorModel error_model(
        faults::UndervoltErrorModel::Params{0.980, 0.820, 290.0});

    // Mean recovery: half a checkpoint of wasted work per error at
    // ~1000-instruction checkpoints (measured, figure 9 regime).
    const double wasted_insts_per_error = 500.0;

    double best_v = 0.0, best_e = 1e99;
    for (double v = 0.76; v <= 1.081; v += 0.01) {
        double p = power_model.corePower(v, power_model.params().fNominal);
        double rate = error_model.perInstructionRate(v);
        // Work multiplier: each instruction is re-executed
        // wasted_insts_per_error * rate extra times on average.
        double recovery = 1.0 + rate * wasted_insts_per_error;
        if (recovery > 100.0)
            recovery = 100.0;  // livelock region
        double energy = p * recovery;
        std::printf("%-8.3f %-12.4f %-12.4f %-12.4f\n", v, p,
                    recovery, energy);
        if (energy < best_e) {
            best_e = energy;
            best_v = v;
        }
    }
    std::printf("\nsweet spot: %.3f V (energy %.4f of nominal)\n",
                best_v, best_e);
    return 0;
}
