/**
 * @file
 * Checker-core undervolting (paper section IV-E): "We could go
 * further, and deliberately increase error rates on the checker cores
 * through undervolting ... However, as the checker cores are already
 * low energy, this is likely to result in significantly smaller
 * savings than undervolting main cores."
 *
 * This harness quantifies that judgement.  The checker island's
 * voltage is swept; checker-side error rates follow the same
 * exponential model (checker-side injection is exactly what the
 * fault framework does), while the power model converts the island's
 * voltage into complex-level savings.  Because the whole complex is
 * bounded at ~5% of core power, even aggressive checker undervolting
 * can recoup at most ~1.5% of system power -- while the induced
 * errors cost real recovery time.  The paper's choice (margined
 * checkers) falls out of the numbers.
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "power/power_model.hh"

int
main(int argc, char **argv)
{
    using namespace paradox;
    using namespace paradox::bench;

    exp::Runner runner =
        benchRunner("bench_checker_undervolt", argc, argv);

    banner("Checker-island undervolting (section IV-E analysis)");

    // Main core fixed at its own undervolted operating point; the
    // checker island sweeps.  Checker-side errors are injected at
    // the rate the exponential model gives for the island voltage.
    faults::UndervoltErrorModel checker_model(
        faults::UndervoltErrorModel::Params{0.980, 0.805, 282.0});
    power::PowerModel pm;

    std::vector<double> volts;
    for (double v = 0.98; v >= 0.829; v -= 0.015)
        volts.push_back(v);

    // Spec 0 is the clean reference run; one spec per island voltage
    // after it.
    std::vector<exp::ExperimentSpec> specs;
    exp::ExperimentSpec base;
    base.workload = "bitcount";
    base.scale = 4;
    base.mode = core::Mode::ParaDox;
    specs.push_back(base);
    for (double v : volts) {
        exp::ExperimentSpec spec = base;
        spec.faultRate = checker_model.perInstructionRate(v);
        spec.seed = 4242;
        specs.push_back(spec);
    }

    std::vector<exp::RunOutcome> outcomes = runner.run(specs);
    const double base_ms = outcomes[0].result.seconds() * 1e3;

    std::printf("%-10s %-12s %-14s %-12s %-12s %-10s\n", "Vchk",
                "chk rate", "time (ms)", "errors", "chk power",
                "net gain");
    const double full_complex = pm.params().checkerComplexFraction;

    for (std::size_t i = 0; i < volts.size(); ++i) {
        const double v = volts[i];
        const core::RunResult &r = outcomes[i + 1].result;

        // Checker-complex power scales like the core model, weighted
        // by its ~5% share and the measured wake rates.
        double island_scale =
            pm.corePower(v, pm.params().fNominal) /
            pm.corePower(pm.params().vNominal, pm.params().fNominal);
        double awake_fraction = r.avgCheckersAwake / 16.0;
        double chk_power =
            full_complex * awake_fraction * island_scale;
        double chk_saving =
            full_complex * awake_fraction * (1.0 - island_scale);
        // Net gain: checker power saved minus the time overhead
        // (time costs whole-system energy ~ 1.0 x slowdown).
        double slow = (r.seconds() * 1e3) / base_ms;
        double net = chk_saving - (slow - 1.0);

        std::printf(
            "%-10.3f %-12.2e %-14.3f %-12llu %-12.4f %+-10.4f\n", v,
            specs[i + 1].faultRate, r.seconds() * 1e3,
            (unsigned long long)r.errorsDetected, chk_power, net);
    }
    std::printf("\n(net gain never exceeds ~0.7%% and goes sharply "
                "negative once errors are dense --\n the paper's "
                "margined-checkers choice.)\n");
    return 0;
}
