/**
 * @file
 * Substrate micro-benchmarks (google-benchmark): the hot primitives
 * of the simulator itself -- functional execution, cache lookups,
 * SECDED coding, branch prediction, DRAM timing, RNG, and the
 * experiment-runner fan-out overhead.
 */

#include <benchmark/benchmark.h>

#include "cpu/branch_pred.hh"
#include "exp/runner.hh"
#include "exp/sink.hh"
#include "isa/builder.hh"
#include "isa/executor.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/memory.hh"
#include "mem/secded.hh"
#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace
{

using namespace paradox;

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void
BM_RngGeometric(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.geometric(1e-4));
}
BENCHMARK(BM_RngGeometric);

void
BM_SecdedEncode(benchmark::State &state)
{
    std::uint64_t v = 0xdeadbeefcafef00dULL;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mem::Secded::encode(v));
        ++v;
    }
}
BENCHMARK(BM_SecdedEncode);

void
BM_SecdedDecodeClean(benchmark::State &state)
{
    auto w = mem::Secded::encode(0x123456789abcdef0ULL);
    for (auto _ : state)
        benchmark::DoNotOptimize(mem::Secded::decode(w));
}
BENCHMARK(BM_SecdedDecodeClean);

void
BM_CacheHit(benchmark::State &state)
{
    mem::CacheParams params;
    mem::Cache cache(params);
    cache.access(0x1000, false, 0);
    Tick now = 1;
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.access(0x1000, false, ++now));
}
BENCHMARK(BM_CacheHit);

void
BM_CacheMissStream(benchmark::State &state)
{
    mem::CacheParams params;
    mem::Cache cache(params);
    Addr addr = 0;
    Tick now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr, false, ++now));
        addr += 64 * 1024;  // always a fresh set/tag
    }
}
BENCHMARK(BM_CacheMissStream);

void
BM_DramAccess(benchmark::State &state)
{
    mem::Dram dram;
    Addr addr = 0;
    Tick now = 0;
    for (auto _ : state) {
        now = dram.access(addr, false, now);
        addr += 4096;
        benchmark::DoNotOptimize(now);
    }
}
BENCHMARK(BM_DramAccess);

void
BM_PredictorLookup(benchmark::State &state)
{
    cpu::TournamentPredictor pred;
    isa::Instruction br;
    br.op = isa::Opcode::BNE;
    Addr pc = 0;
    for (auto _ : state) {
        pred.predict(pc, br);
        benchmark::DoNotOptimize(
            pred.update(pc, br, (pc & 4) != 0, pc + 16));
        pc = (pc + 4) & 0xffff;
    }
}
BENCHMARK(BM_PredictorLookup);

void
BM_FunctionalExecution(benchmark::State &state)
{
    workloads::Workload w = workloads::build("bitcount", 1);
    mem::SimpleMemory memory;
    isa::ArchState arch;
    isa::loadProgram(w.program, arch, memory);
    std::uint64_t executed = 0;
    for (auto _ : state) {
        isa::ExecResult r = isa::step(w.program, arch, memory);
        ++executed;
        if (r.halted)
            isa::loadProgram(w.program, arch, memory);
        benchmark::DoNotOptimize(r.destValue);
    }
    state.SetItemsProcessed(std::int64_t(executed));
}
BENCHMARK(BM_FunctionalExecution);

void
BM_MemoryWrite(benchmark::State &state)
{
    mem::SimpleMemory memory;
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(memory.write(addr, 8, addr));
        addr = (addr + 8) & 0xfffff;
    }
}
BENCHMARK(BM_MemoryWrite);

void
BM_RunnerFanout(benchmark::State &state)
{
    // Pool setup + ordered-result plumbing for trivial jobs: the
    // fixed overhead a sweep pays on top of its simulations.
    exp::RunnerOptions opt;
    opt.jobs = unsigned(state.range(0));
    exp::Runner runner(opt);
    for (auto _ : state) {
        std::vector<int> out = runner.map<int>(
            64, [](std::size_t i) { return int(i) * 3; });
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) * 64);
}
BENCHMARK(BM_RunnerFanout)->Arg(1)->Arg(4)->Arg(8);

void
BM_RunOneSmallest(benchmark::State &state)
{
    // A whole ExperimentSpec round trip on the smallest workload:
    // the per-job floor of any campaign.
    exp::ExperimentSpec spec;
    spec.workload = "bitcount";
    spec.scale = 1;
    for (auto _ : state) {
        exp::RunOutcome out = exp::runOne(spec);
        benchmark::DoNotOptimize(out.result.time);
    }
}
BENCHMARK(BM_RunOneSmallest);

void
BM_RecordJson(benchmark::State &state)
{
    exp::ExperimentSpec spec;
    exp::RunOutcome out = exp::runOne(spec);
    for (auto _ : state)
        benchmark::DoNotOptimize(exp::recordJson(spec, out));
}
BENCHMARK(BM_RecordJson);

} // namespace

BENCHMARK_MAIN();
