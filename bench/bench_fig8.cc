/**
 * @file
 * Figure 8 — performance of bitcount under increasing error
 * probabilities, relative to ParaMedic with fault-free execution.
 *
 * Expected shape (paper): both systems are fine at realistic rates;
 * ParaMedic collapses (livelock-like, ~16x) once ~1 in 5,000
 * operations faults, while ParaDox's adaptive checkpoint lengths
 * sustain comparable performance at error rates about two orders of
 * magnitude higher (8x slowdown only near 1e-2).
 */

#include <cstdio>
#include <vector>

#include "common.hh"

int
main()
{
    using namespace paradox;
    using namespace paradox::bench;

    banner("Figure 8: bitcount slowdown vs error rate "
           "(relative to fault-free ParaMedic)");

    RunSpec base;
    base.mode = core::Mode::ParaMedic;
    base.workload = "bitcount";
    core::RunResult reference = runSpec(base);
    if (!reference.halted) {
        std::printf("baseline did not complete\n");
        return 1;
    }
    const double t0 = double(reference.time);

    const std::vector<double> rates = {1e-7, 3e-7, 1e-6, 3e-6, 1e-5,
                                       3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
                                       1e-2};

    std::printf("%-10s %-22s %-22s\n", "rate",
                "ParaMedic slowdown", "ParaDox slowdown");
    for (double rate : rates) {
        double slow[2];
        int idx = 0;
        for (core::Mode mode :
             {core::Mode::ParaMedic, core::Mode::ParaDox}) {
            RunSpec spec;
            spec.mode = mode;
            spec.workload = "bitcount";
            spec.faultRate = rate;
            core::RunResult r = runSpec(spec);
            if (r.halted) {
                slow[idx] = double(r.time) / t0;
            } else {
                // Did not complete within the execution budget:
                // report a lower bound on the slowdown (livelock).
                slow[idx] = double(r.time) / t0;
            }
            ++idx;
        }
        std::printf("%-10.0e %-22.2f %-22.2f\n", rate, slow[0],
                    slow[1]);
    }
    return 0;
}
