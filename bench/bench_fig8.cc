/**
 * @file
 * Figure 8 — performance of bitcount under increasing error
 * probabilities, relative to ParaMedic with fault-free execution.
 *
 * Expected shape (paper): both systems are fine at realistic rates;
 * ParaMedic collapses (livelock-like, ~16x) once ~1 in 5,000
 * operations faults, while ParaDox's adaptive checkpoint lengths
 * sustain comparable performance at error rates about two orders of
 * magnitude higher (8x slowdown only near 1e-2).
 */

#include <cstdio>
#include <vector>

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace paradox;
    using namespace paradox::bench;

    exp::Runner runner = benchRunner("bench_fig8", argc, argv);

    banner("Figure 8: bitcount slowdown vs error rate "
           "(relative to fault-free ParaMedic)");

    const std::vector<double> rates = {1e-7, 3e-7, 1e-6, 3e-6, 1e-5,
                                       3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
                                       1e-2};

    // Spec 0 is the fault-free reference; then one pair per rate.
    std::vector<exp::ExperimentSpec> specs;
    exp::ExperimentSpec base;
    base.mode = core::Mode::ParaMedic;
    base.workload = "bitcount";
    specs.push_back(base);
    for (double rate : rates) {
        for (core::Mode mode :
             {core::Mode::ParaMedic, core::Mode::ParaDox}) {
            exp::ExperimentSpec spec = base;
            spec.mode = mode;
            spec.faultRate = rate;
            specs.push_back(spec);
        }
    }

    std::vector<exp::RunOutcome> outcomes = runner.run(specs);
    if (!outcomes[0].result.halted) {
        std::printf("baseline did not complete\n");
        return 1;
    }
    const double t0 = double(outcomes[0].result.time);

    std::printf("%-10s %-22s %-22s\n", "rate",
                "ParaMedic slowdown", "ParaDox slowdown");
    for (std::size_t i = 0; i < rates.size(); ++i) {
        // An unfinished run still reports a lower bound on the
        // slowdown (livelock).
        const double medic =
            double(outcomes[1 + 2 * i].result.time) / t0;
        const double dox =
            double(outcomes[2 + 2 * i].result.time) / t0;
        std::printf("%-10.0e %-22.2f %-22.2f\n", rates[i], medic,
                    dox);
    }
    return 0;
}
