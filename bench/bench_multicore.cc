/**
 * @file
 * Checker-core sharing (paper section VI-D): "no workload uses more
 * than eight checker cores aggregated across the entire execution ...
 * this suggests that this could be reduced by half through sharing
 * checker cores between multiple main cores, without affecting
 * performance."
 *
 * Two main cores run a multiprogrammed pair over a shared uncore,
 * comparing private 16-checker complexes (32 checkers of silicon)
 * against one shared 16-checker pool (half the hardware).  The
 * paper's prediction: per-core slowdown from sharing stays small.
 *
 * Multicore runs don't fit the single-system ExperimentSpec, so this
 * harness drives exp::Runner's typed map() directly: each
 * (pair, rate, sharing) combination is one independent job.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hh"
#include "core/multicore.hh"
#include "workloads/workload.hh"

namespace
{

using namespace paradox;
using namespace paradox::bench;

struct PairJob
{
    std::string a, b;
    double rate = 0.0;
    unsigned sharedCheckers = 0;
};

struct PairResult
{
    double t0_ms = 0.0, t1_ms = 0.0;
};

PairResult
runPair(const PairJob &job)
{
    auto w0 = workloads::build(job.a, 1);
    auto w1 = workloads::build(job.b, 1);
    core::MulticoreParams params;
    params.config = core::SystemConfig::forMode(core::Mode::ParaDox);
    params.sharedCheckers = job.sharedCheckers;
    core::MulticoreSystem chip(params, {&w0.program, &w1.program});
    if (job.rate > 0.0) {
        chip.setFaultPlan(0, faults::uniformPlan(job.rate, 5));
        chip.setFaultPlan(1, faults::uniformPlan(job.rate, 6));
    }
    core::RunLimits limits = defaultLimits();
    auto r = chip.run(limits);
    return {r.cores[0].seconds() * 1e3, r.cores[1].seconds() * 1e3};
}

} // namespace

int
main(int argc, char **argv)
{
    exp::Runner runner = benchRunner("bench_multicore", argc, argv);

    banner("Checker sharing between main cores (section VI-D)");
    std::printf("%-22s %-10s %-24s %-24s %-10s\n", "pair", "rate",
                "private 2x16 (ms,ms)", "shared 1x16 (ms,ms)",
                "worst dT");

    const std::vector<std::pair<std::string, std::string>> pairs = {
        {"bitcount", "stream"},
        {"gcc", "mcf"},
        {"milc", "sjeng"},
        {"gobmk", "lbm"},
    };

    // Private/shared jobs interleave: job 2k is private, 2k+1 shared.
    std::vector<PairJob> jobs;
    for (double rate : {0.0, 2e-4}) {
        for (const auto &[a, b] : pairs) {
            jobs.push_back({a, b, rate, 0});
            jobs.push_back({a, b, rate, 16});
        }
    }

    std::vector<PairResult> results = runner.map<PairResult>(
        jobs.size(),
        [&](std::size_t i) { return runPair(jobs[i]); });

    for (std::size_t k = 0; k < jobs.size(); k += 2) {
        const PairJob &job = jobs[k];
        const PairResult &priv = results[k];
        const PairResult &shared = results[k + 1];
        double d0 = shared.t0_ms / priv.t0_ms;
        double d1 = shared.t1_ms / priv.t1_ms;
        std::printf("%-22s %-10.0e (%7.3f, %7.3f)       "
                    "(%7.3f, %7.3f)       %-10.3f\n",
                    (job.a + "+" + job.b).c_str(), job.rate,
                    priv.t0_ms, priv.t1_ms, shared.t0_ms,
                    shared.t1_ms, std::max(d0, d1));
    }
    std::printf("\n(worst dT near 1.0 confirms the paper's halved-"
                "hardware suggestion)\n");
    return 0;
}
