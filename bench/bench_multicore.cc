/**
 * @file
 * Checker-core sharing (paper section VI-D): "no workload uses more
 * than eight checker cores aggregated across the entire execution ...
 * this suggests that this could be reduced by half through sharing
 * checker cores between multiple main cores, without affecting
 * performance."
 *
 * Two main cores run a multiprogrammed pair over a shared uncore,
 * comparing private 16-checker complexes (32 checkers of silicon)
 * against one shared 16-checker pool (half the hardware).  The
 * paper's prediction: per-core slowdown from sharing stays small.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common.hh"
#include "core/multicore.hh"

namespace
{

using namespace paradox;
using namespace paradox::bench;

struct PairResult
{
    double t0_ms, t1_ms;
};

PairResult
runPair(const workloads::Workload &w0, const workloads::Workload &w1,
        unsigned shared_checkers, double rate)
{
    core::MulticoreParams params;
    params.config = core::SystemConfig::forMode(core::Mode::ParaDox);
    params.sharedCheckers = shared_checkers;
    core::MulticoreSystem chip(params, {&w0.program, &w1.program});
    if (rate > 0.0) {
        chip.setFaultPlan(0, faults::uniformPlan(rate, 5));
        chip.setFaultPlan(1, faults::uniformPlan(rate, 6));
    }
    core::RunLimits limits = defaultLimits();
    auto r = chip.run(limits);
    return {r.cores[0].seconds() * 1e3, r.cores[1].seconds() * 1e3};
}

} // namespace

int
main()
{
    banner("Checker sharing between main cores (section VI-D)");
    std::printf("%-22s %-10s %-24s %-24s %-10s\n", "pair", "rate",
                "private 2x16 (ms,ms)", "shared 1x16 (ms,ms)",
                "worst dT");

    const std::vector<std::pair<std::string, std::string>> pairs = {
        {"bitcount", "stream"},
        {"gcc", "mcf"},
        {"milc", "sjeng"},
        {"gobmk", "lbm"},
    };

    for (double rate : {0.0, 2e-4}) {
        for (const auto &[a, b] : pairs) {
            auto w0 = workloads::build(a, 1);
            auto w1 = workloads::build(b, 1);
            PairResult priv = runPair(w0, w1, 0, rate);
            PairResult shared = runPair(w0, w1, 16, rate);
            double d0 = shared.t0_ms / priv.t0_ms;
            double d1 = shared.t1_ms / priv.t1_ms;
            std::printf("%-22s %-10.0e (%7.3f, %7.3f)       "
                        "(%7.3f, %7.3f)       %-10.3f\n",
                        (a + "+" + b).c_str(), rate, priv.t0_ms,
                        priv.t1_ms, shared.t0_ms, shared.t1_ms,
                        std::max(d0, d1));
        }
    }
    std::printf("\n(worst dT near 1.0 confirms the paper's halved-"
                "hardware suggestion)\n");
    return 0;
}
