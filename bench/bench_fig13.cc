/**
 * @file
 * Figure 13 — power consumption, slowdown and energy-delay product
 * on an undervolted system with reliability restored via ParaDox,
 * normalized to the voltage-margined fault-intolerant baseline.
 *
 * Expected shape (paper): ~22% mean power reduction, ~4.5% typical
 * slowdown, ~15% mean EDP reduction; astar is the EDP outlier
 * (conflict misses in buffered L1 writes); checker-core power adds
 * at most ~5%.
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "power/power_model.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace paradox;
    using namespace paradox::bench;

    exp::Runner runner = benchRunner("bench_fig13", argc, argv);

    banner("Figure 13: power / slowdown / EDP, undervolted ParaDox "
           "vs margined baseline");
    std::printf("%-11s %-10s %-10s %-10s %-10s\n", "workload",
                "power", "slowdown", "EDP", "avgV");

    const std::vector<std::string> &names = workloads::specNames();
    std::vector<exp::ExperimentSpec> specs;
    for (const std::string &name : names) {
        exp::ExperimentSpec base;
        base.mode = core::Mode::Baseline;
        base.workload = name;
        base.scale = 24;  // long enough for DVS steady state
        specs.push_back(base);

        exp::ExperimentSpec p = base;
        p.mode = core::Mode::ParaDox;
        p.dvfs = true;
        specs.push_back(p);
    }

    std::vector<exp::RunOutcome> outcomes = runner.run(specs);

    std::vector<double> powers, slows, edps;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const core::RunResult &rb = outcomes[2 * i].result;
        const core::RunResult &rp = outcomes[2 * i + 1].result;
        double power = rp.avgPower / rb.avgPower;
        double slow = double(rp.time) / double(rb.time);
        double edp = power::edpRatio(rp.avgPower, rp.time, rb.avgPower,
                                     rb.time);
        powers.push_back(power);
        slows.push_back(slow);
        edps.push_back(edp);
        std::printf("%-11s %-10.3f %-10.3f %-10.3f %-10.4f\n",
                    names[i].c_str(), power, slow, edp,
                    rp.avgVoltage);
    }
    std::printf("%-11s %-10.3f %-10.3f %-10.3f\n", "gmean",
                geomean(powers), geomean(slows), geomean(edps));
    std::printf("\npaper anchors: power ~0.78, slowdown ~1.045, "
                "EDP ~0.85\n");
    return 0;
}
