/**
 * @file
 * Ablation study — which ParaDox mechanism buys what (DESIGN.md's
 * design-choice index).  Each ParaDox feature is disabled in turn at
 * a fixed moderate error rate, on a compute-bound and a memory-bound
 * workload:
 *
 *  - adaptive checkpoints off  -> fixed 5,000-inst windows (the
 *    ParaMedic failure mode of figure 8)
 *  - line-granularity rollback off -> word-by-word reverse walks
 *    (the rollback-cost gap of figure 9)
 *  - lowest-ID scheduling off  -> round-robin, no gating benefit
 *    (the figure 12 mechanism)
 */

#include <cstdio>
#include <vector>

#include "common.hh"

namespace
{

using namespace paradox;
using namespace paradox::bench;

struct Variant
{
    const char *name;
    void (*tweak)(core::SystemConfig &);
};

} // namespace

int
main(int argc, char **argv)
{
    exp::Runner runner = benchRunner("bench_ablation", argc, argv);

    banner("Ablation: ParaDox mechanisms at error rate 3e-4");

    const Variant variants[] = {
        {"full-paradox", [](core::SystemConfig &) {}},
        {"no-adapt-ckpt",
         [](core::SystemConfig &c) { c.adaptiveCheckpoints = false; }},
        {"word-rollback",
         [](core::SystemConfig &c) {
             c.lineGranularityRollback = false;
         }},
        {"round-robin",
         [](core::SystemConfig &c) { c.lowestIdScheduling = false; }},
    };

    std::vector<exp::ExperimentSpec> specs;
    for (const char *workload : {"bitcount", "stream"}) {
        for (const Variant &variant : variants) {
            exp::ExperimentSpec spec;
            spec.label = variant.name;
            spec.workload = workload;
            spec.mode = core::Mode::ParaDox;
            spec.faultRate = 3e-4;
            spec.seed = 99;
            spec.configure = variant.tweak;
            specs.push_back(spec);
        }
    }

    std::vector<exp::RunOutcome> outcomes = runner.run(specs);

    for (std::size_t i = 0; i < specs.size(); ++i) {
        const exp::RunOutcome &o = outcomes[i];
        std::printf("%-9s %-18s %9.3f ms  rolls %5llu  "
                    "rollback %8.1f ns  ckptlen %7.0f\n",
                    specs[i].workload.c_str(),
                    specs[i].label.c_str(),
                    o.result.seconds() * 1e3,
                    (unsigned long long)o.result.rollbacks,
                    o.rollbackNs.mean, o.ckptLen.mean);
        if (i % 4 == 3)
            std::printf("\n");
    }
    return 0;
}
