/**
 * @file
 * Ablation study — which ParaDox mechanism buys what (DESIGN.md's
 * design-choice index).  Each ParaDox feature is disabled in turn at
 * a fixed moderate error rate, on a compute-bound and a memory-bound
 * workload:
 *
 *  - adaptive checkpoints off  -> fixed 5,000-inst windows (the
 *    ParaMedic failure mode of figure 8)
 *  - line-granularity rollback off -> word-by-word reverse walks
 *    (the rollback-cost gap of figure 9)
 *  - lowest-ID scheduling off  -> round-robin, no gating benefit
 *    (the figure 12 mechanism)
 */

#include <cstdio>

#include "common.hh"

namespace
{

using namespace paradox;
using namespace paradox::bench;

struct Variant
{
    const char *name;
    void (*tweak)(core::SystemConfig &);
};

void
reportVariant(const char *workload, const Variant &variant,
              double rate)
{
    workloads::Workload w = workloads::build(workload, 1);
    core::SystemConfig config =
        core::SystemConfig::forMode(core::Mode::ParaDox);
    variant.tweak(config);
    core::System system(config, w.program);
    system.setFaultPlan(faults::uniformPlan(rate, 99));
    core::RunResult r = system.run(defaultLimits());

    std::printf("%-9s %-18s %9.3f ms  rolls %5llu  "
                "rollback %8.1f ns  ckptlen %7.0f\n",
                workload, variant.name, r.seconds() * 1e3,
                (unsigned long long)r.rollbacks,
                system.rollbackTimesNs().mean(),
                system.checkpointLengths().mean());
}

} // namespace

int
main()
{
    banner("Ablation: ParaDox mechanisms at error rate 3e-4");

    const Variant variants[] = {
        {"full-paradox", [](core::SystemConfig &) {}},
        {"no-adapt-ckpt",
         [](core::SystemConfig &c) { c.adaptiveCheckpoints = false; }},
        {"word-rollback",
         [](core::SystemConfig &c) {
             c.lineGranularityRollback = false;
         }},
        {"round-robin",
         [](core::SystemConfig &c) { c.lowestIdScheduling = false; }},
    };

    for (const char *workload : {"bitcount", "stream"}) {
        for (const Variant &variant : variants)
            reportVariant(workload, variant, 3e-4);
        std::printf("\n");
    }
    return 0;
}
