/**
 * @file
 * Figure 12 — proportion of time each of the 16 checker cores is
 * awake, with ParaDox's aggressive checker gating (lowest-free-ID
 * scheduling), across the SPEC proxies.
 *
 * Expected shape (paper): usage concentrates on low IDs; a few
 * workloads (gobmk, sjeng, h264ref) touch many checkers at peaks,
 * but no workload keeps more than ~8 busy on average, which is the
 * basis for the paper's checker-sharing observation.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace paradox;
    using namespace paradox::bench;

    exp::Runner runner = benchRunner("bench_fig12", argc, argv);

    banner("Figure 12: per-checker wake rates under aggressive "
           "gating");
    std::printf("%-11s", "workload");
    for (int i = 0; i < 16; ++i)
        std::printf(" c%02d ", i);
    std::printf("  avg-awake\n");

    const std::vector<std::string> &names = workloads::specNames();
    std::vector<exp::ExperimentSpec> specs;
    for (const std::string &name : names) {
        exp::ExperimentSpec spec;
        spec.mode = core::Mode::ParaDox;
        spec.workload = name;
        specs.push_back(spec);
    }

    std::vector<exp::RunOutcome> outcomes = runner.run(specs);

    double worst_avg = 0.0;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const core::RunResult &r = outcomes[i].result;
        std::printf("%-11s", names[i].c_str());
        for (double rate : r.wakeRates)
            std::printf(" %4.2f", rate);
        std::printf("  %6.2f\n", r.avgCheckersAwake);
        worst_avg = std::max(worst_avg, r.avgCheckersAwake);
    }
    std::printf("\nmax average checkers awake across workloads: "
                "%.2f of 16\n",
                worst_avg);
    return 0;
}
