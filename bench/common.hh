/**
 * @file
 * Shared helpers for the figure-regeneration harnesses: table
 * printing that matches the paper's rows/series.  The harnesses
 * build exp::ExperimentSpec batches and sweep them through
 * exp::Runner.
 */

#ifndef PARADOX_BENCH_COMMON_HH
#define PARADOX_BENCH_COMMON_HH

#include <cmath>
#include <cstdio>
#include <string>

#include "exp/cli.hh"
#include "exp/runner.hh"
#include "exp/spec.hh"

namespace paradox
{
namespace bench
{

/** Default per-run bounds: generous but livelock-safe. */
inline core::RunLimits
defaultLimits()
{
    return exp::defaultLimits();
}

/**
 * Parse the one flag every harness shares: --jobs N (0 = all
 * cores).  Returns a Runner over that many workers with progress
 * reporting on stderr.
 */
inline exp::Runner
benchRunner(const char *name, int argc, char **argv)
{
    unsigned jobs = 0;
    exp::Cli cli(name, "figure-regeneration harness");
    cli.opt("jobs", jobs, "parallel simulations (0 = all cores)");
    if (!cli.parse(argc, argv))
        std::exit(2);
    exp::RunnerOptions opt;
    opt.jobs = jobs;
    opt.progress = true;
    opt.label = name;
    return exp::Runner(opt);
}

/** Geometric mean of a container of positive values. */
template <typename C>
double
geomean(const C &values)
{
    double log_sum = 0.0;
    std::size_t n = 0;
    for (double v : values) {
        log_sum += std::log(v);
        ++n;
    }
    return n ? std::exp(log_sum / double(n)) : 0.0;
}

/** Print a banner line for a figure harness. */
inline void
banner(const char *what)
{
    std::printf("================================================="
                "=====\n%s\n"
                "================================================="
                "=====\n",
                what);
}

} // namespace bench
} // namespace paradox

#endif // PARADOX_BENCH_COMMON_HH
