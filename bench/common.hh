/**
 * @file
 * Shared helpers for the figure-regeneration harnesses: configured
 * runs of the full system per mode, and table printing that matches
 * the paper's rows/series.
 */

#ifndef PARADOX_BENCH_COMMON_HH
#define PARADOX_BENCH_COMMON_HH

#include <cmath>
#include <cstdio>
#include <string>

#include "core/system.hh"
#include "power/undervolt_data.hh"
#include "workloads/workload.hh"

namespace paradox
{
namespace bench
{

/** Default per-run bounds: generous but livelock-safe. */
inline core::RunLimits
defaultLimits()
{
    core::RunLimits limits;
    limits.maxExecuted = 60'000'000;
    limits.maxTicks = ticksPerMs * 500;
    return limits;
}

/** One configured system run on a named workload. */
struct RunSpec
{
    core::Mode mode = core::Mode::ParaDox;
    std::string workload = "bitcount";
    unsigned scale = 1;
    double faultRate = 0.0;        //!< fixed-rate injection if > 0
    bool dvfs = false;             //!< voltage-driven injection
    std::uint64_t seed = 12345;
    core::RunLimits limits = defaultLimits();
};

/** Execute @p spec; returns the run summary. */
inline core::RunResult
runSpec(const RunSpec &spec)
{
    workloads::Workload w = workloads::build(spec.workload, spec.scale);
    core::SystemConfig config = core::SystemConfig::forMode(spec.mode);
    config.seed = spec.seed;
    core::System system(config, w.program);
    if (spec.dvfs)
        system.enableDvfs(power::errorModelParams(spec.workload));
    else if (spec.faultRate > 0.0)
        system.setFaultPlan(
            faults::uniformPlan(spec.faultRate, spec.seed));
    return system.run(spec.limits);
}

/** Geometric mean of a container of positive values. */
template <typename C>
double
geomean(const C &values)
{
    double log_sum = 0.0;
    std::size_t n = 0;
    for (double v : values) {
        log_sum += std::log(v);
        ++n;
    }
    return n ? std::exp(log_sum / double(n)) : 0.0;
}

/** Print a banner line for a figure harness. */
inline void
banner(const char *what)
{
    std::printf("================================================="
                "=====\n%s\n"
                "================================================="
                "=====\n",
                what);
}

} // namespace bench
} // namespace paradox

#endif // PARADOX_BENCH_COMMON_HH
