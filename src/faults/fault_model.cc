#include "faults/fault_model.hh"

#include <limits>

namespace paradox
{
namespace faults
{

const char *
persistenceName(Persistence persistence)
{
    switch (persistence) {
      case Persistence::Transient:    return "transient";
      case Persistence::Intermittent: return "intermittent";
      case Persistence::Permanent:    return "permanent";
    }
    return "unknown";
}

bool
parsePersistence(const std::string &name, Persistence &out)
{
    if (name == "transient") {
        out = Persistence::Transient;
    } else if (name == "intermittent") {
        out = Persistence::Intermittent;
    } else if (name == "permanent") {
        out = Persistence::Permanent;
    } else {
        return false;
    }
    return true;
}

FaultInjector::FaultInjector(const FaultConfig &config)
    : config_(config), rng_(config.seed)
{
    resample();
}

void
FaultInjector::resample()
{
    gap_ = rng_.geometric(config_.rate);
}

void
FaultInjector::setRate(double rate)
{
    if (rate == config_.rate)
        return;
    config_.rate = rate;
    resample();
}

void
FaultInjector::reset()
{
    rng_.seed(config_.seed);
    fired_ = 0;
    latched_ = false;
    burstLeft_ = 0;
    siteChosen_ = false;
    resample();
}

bool
FaultInjector::consumeEvent()
{
    // A pinned fault is physical to one checker: events replayed on
    // any other core neither fire nor advance the temporal state.
    if (config_.targetChecker >= 0 &&
        activeChecker_ != config_.targetChecker)
        return false;

    if (config_.persistence == Persistence::Permanent && latched_) {
        ++fired_;
        return true;
    }
    if (config_.persistence == Persistence::Intermittent &&
        burstLeft_ > 0) {
        --burstLeft_;
        if (!rng_.chance(config_.burstBias))
            return false;
        ++fired_;
        return true;
    }

    if (gap_ == std::numeric_limits<std::uint64_t>::max())
        return false;
    if (--gap_ > 0)
        return false;

    ++fired_;
    switch (config_.persistence) {
      case Persistence::Permanent:
        latched_ = true;  // stuck from here on; gap never re-arms
        break;
      case Persistence::Intermittent:
        // This event opens (and is part of) a burst at a fresh site.
        burstLeft_ = config_.burstLength;
        siteChosen_ = false;
        resample();
        break;
      case Persistence::Transient:
        resample();
        break;
    }
    return true;
}

void
FaultInjector::chooseSite(unsigned reg_bound)
{
    if (!siteChosen_) {
        siteBit_ = unsigned(rng_.nextBounded(64));
        siteReg_ = unsigned(rng_.nextBounded(reg_bound));
        siteChosen_ = true;
    }
}

FaultHit
FaultInjector::onLogEntry(bool is_load)
{
    FaultHit hit;
    if (config_.kind != FaultKind::LogBitFlip)
        return hit;
    if (is_load ? !config_.targetLoads : !config_.targetStores)
        return hit;
    if (!consumeEvent())
        return hit;
    hit.fires = true;
    if (config_.persistence == Persistence::Transient) {
        hit.bit = unsigned(rng_.nextBounded(64));
    } else {
        chooseSite(1);
        hit.bit = siteBit_;
    }
    return hit;
}

FaultHit
FaultInjector::onInstruction(const isa::Instruction &inst, bool wrote_reg)
{
    FaultHit hit;
    switch (config_.kind) {
      case FaultKind::FunctionalUnit:
        if (inst.info().cls != config_.targetClass)
            return hit;
        if (!consumeEvent())
            return hit;
        // "An instruction that has no effect is indistinguishable
        // from a discarded instruction: no error is injected if no
        // register is touched."
        if (!wrote_reg)
            return hit;
        hit.fires = true;
        if (config_.persistence == Persistence::Transient) {
            hit.bit = unsigned(rng_.nextBounded(64));
        } else {
            chooseSite(1);
            hit.bit = siteBit_;
        }
        return hit;

      case FaultKind::RegisterBitFlip:
        if (!consumeEvent())
            return hit;
        hit.fires = true;
        if (config_.persistence == Persistence::Transient) {
            hit.bit = unsigned(rng_.nextBounded(64));
            hit.regIndex = unsigned(rng_.nextBounded(isa::numIntRegs));
        } else {
            chooseSite(isa::numIntRegs);
            hit.bit = siteBit_;
            hit.regIndex = siteReg_;
        }
        return hit;

      default:
        return hit;
    }
}

std::size_t
FaultPlan::add(const FaultConfig &config)
{
    injectors_.emplace_back(config);
    return injectors_.size() - 1;
}

void
FaultPlan::setAllRates(double rate)
{
    for (auto &injector : injectors_)
        injector.setRate(rate);
}

void
FaultPlan::setActiveChecker(int id)
{
    for (auto &injector : injectors_)
        injector.setActiveChecker(id);
}

std::uint64_t
FaultPlan::totalFired() const
{
    std::uint64_t total = 0;
    for (const auto &injector : injectors_)
        total += injector.fired();
    return total;
}

void
FaultPlan::reset()
{
    for (auto &injector : injectors_)
        injector.reset();
}

FaultPlan
uniformPlan(double rate, std::uint64_t seed)
{
    return uniformPlan(rate, seed, Persistence::Transient, -1);
}

FaultPlan
uniformPlan(double rate, std::uint64_t seed, Persistence persistence,
            int target_checker)
{
    FaultPlan plan;
    FaultConfig reg;
    reg.kind = FaultKind::RegisterBitFlip;
    reg.rate = rate;
    reg.targetCategory = isa::RegCategory::Integer;
    reg.seed = seed;
    reg.persistence = persistence;
    reg.targetChecker = target_checker;
    plan.add(reg);

    FaultConfig log;
    log.kind = FaultKind::LogBitFlip;
    log.rate = rate;
    log.seed = seed ^ 0xabcdef0123456789ULL;
    log.persistence = persistence;
    log.targetChecker = target_checker;
    plan.add(log);
    return plan;
}

} // namespace faults
} // namespace paradox
