#include "faults/fault_model.hh"

#include <limits>

namespace paradox
{
namespace faults
{

FaultInjector::FaultInjector(const FaultConfig &config)
    : config_(config), rng_(config.seed)
{
    resample();
}

void
FaultInjector::resample()
{
    gap_ = rng_.geometric(config_.rate);
}

void
FaultInjector::setRate(double rate)
{
    if (rate == config_.rate)
        return;
    config_.rate = rate;
    resample();
}

void
FaultInjector::reset()
{
    rng_.seed(config_.seed);
    fired_ = 0;
    resample();
}

bool
FaultInjector::consumeEvent()
{
    if (gap_ == std::numeric_limits<std::uint64_t>::max())
        return false;
    if (--gap_ > 0)
        return false;
    ++fired_;
    resample();
    return true;
}

FaultHit
FaultInjector::onLogEntry(bool is_load)
{
    FaultHit hit;
    if (config_.kind != FaultKind::LogBitFlip)
        return hit;
    if (is_load ? !config_.targetLoads : !config_.targetStores)
        return hit;
    if (!consumeEvent())
        return hit;
    hit.fires = true;
    hit.bit = unsigned(rng_.nextBounded(64));
    return hit;
}

FaultHit
FaultInjector::onInstruction(const isa::Instruction &inst, bool wrote_reg)
{
    FaultHit hit;
    switch (config_.kind) {
      case FaultKind::FunctionalUnit:
        if (inst.info().cls != config_.targetClass)
            return hit;
        if (!consumeEvent())
            return hit;
        // "An instruction that has no effect is indistinguishable
        // from a discarded instruction: no error is injected if no
        // register is touched."
        if (!wrote_reg)
            return hit;
        hit.fires = true;
        hit.bit = unsigned(rng_.nextBounded(64));
        return hit;

      case FaultKind::RegisterBitFlip:
        if (!consumeEvent())
            return hit;
        hit.fires = true;
        hit.bit = unsigned(rng_.nextBounded(64));
        hit.regIndex = unsigned(rng_.nextBounded(isa::numIntRegs));
        return hit;

      default:
        return hit;
    }
}

std::size_t
FaultPlan::add(const FaultConfig &config)
{
    injectors_.emplace_back(config);
    return injectors_.size() - 1;
}

void
FaultPlan::setAllRates(double rate)
{
    for (auto &injector : injectors_)
        injector.setRate(rate);
}

std::uint64_t
FaultPlan::totalFired() const
{
    std::uint64_t total = 0;
    for (const auto &injector : injectors_)
        total += injector.fired();
    return total;
}

void
FaultPlan::reset()
{
    for (auto &injector : injectors_)
        injector.reset();
}

FaultPlan
uniformPlan(double rate, std::uint64_t seed)
{
    FaultPlan plan;
    FaultConfig reg;
    reg.kind = FaultKind::RegisterBitFlip;
    reg.rate = rate;
    reg.targetCategory = isa::RegCategory::Integer;
    reg.seed = seed;
    plan.add(reg);

    FaultConfig log;
    log.kind = FaultKind::LogBitFlip;
    log.rate = rate;
    log.seed = seed ^ 0xabcdef0123456789ULL;
    plan.add(log);
    return plan;
}

} // namespace faults
} // namespace paradox
