#include "faults/fault_model.hh"

#include <limits>
#include <sstream>
#include <stdexcept>

namespace paradox
{
namespace faults
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::LogBitFlip:      return "log_bit_flip";
      case FaultKind::FunctionalUnit:  return "functional_unit";
      case FaultKind::RegisterBitFlip: return "register_bit_flip";
    }
    return "unknown";
}

const char *
persistenceName(Persistence persistence)
{
    switch (persistence) {
      case Persistence::Transient:    return "transient";
      case Persistence::Intermittent: return "intermittent";
      case Persistence::Permanent:    return "permanent";
    }
    return "unknown";
}

bool
parsePersistence(const std::string &name, Persistence &out)
{
    if (name == "transient") {
        out = Persistence::Transient;
    } else if (name == "intermittent") {
        out = Persistence::Intermittent;
    } else if (name == "permanent") {
        out = Persistence::Permanent;
    } else {
        return false;
    }
    return true;
}

void
FaultConfig::validate() const
{
    if (!(rate >= 0.0 && rate <= 1.0))
        throw std::invalid_argument(
            "FaultConfig: rate must be in [0, 1]");
    if (!(burstBias >= 0.0 && burstBias <= 1.0))
        throw std::invalid_argument(
            "FaultConfig: burstBias must be in [0, 1]");
    if (burstLength == 0)
        throw std::invalid_argument(
            "FaultConfig: burstLength must be >= 1");
    if (targetChecker < -1)
        throw std::invalid_argument(
            "FaultConfig: targetChecker must be -1 (ambient) or a "
            "checker index");
}

FaultInjector::FaultInjector(const FaultConfig &config)
    : config_(config), rng_(config.seed)
{
    config_.validate();
    resample();
}

void
FaultInjector::attachChip(const ChipModel *chip)
{
    chip_ = chip;
    latched_ = false;
    burstLeft_ = 0;
    chipCell_ = 0;
    if (chip_ == nullptr) {
        cellProb_.clear();
        return;
    }
    if (voltage_ <= 0.0)
        voltage_ = chip_->config().shape.vNominal;
    setVoltage(voltage_);
}

void
FaultInjector::setVoltage(double v)
{
    voltage_ = v;
    if (chip_ == nullptr)
        return;
    cellProb_.resize(chip_->cells().size());
    for (std::size_t i = 0; i < cellProb_.size(); ++i)
        cellProb_[i] =
            chip_->flipProbability(chip_->cells()[i], voltage_);
}

void
FaultInjector::resample()
{
    gap_ = rng_.geometric(config_.rate);
}

void
FaultInjector::setRate(double rate)
{
    if (rate == config_.rate)
        return;
    config_.rate = rate;
    resample();
}

void
FaultInjector::reset()
{
    rng_.seed(config_.seed);
    fired_ = 0;
    latched_ = false;
    burstLeft_ = 0;
    siteChosen_ = false;
    chipCell_ = 0;
    weakCellHits_ = 0;
    resample();
}

bool
FaultInjector::consumeEvent()
{
    // A pinned fault is physical to one checker: events replayed on
    // any other core neither fire nor advance the temporal state.
    if (config_.targetChecker >= 0 &&
        activeChecker_ != config_.targetChecker)
        return false;

    if (config_.persistence == Persistence::Permanent && latched_) {
        ++fired_;
        return true;
    }
    if (config_.persistence == Persistence::Intermittent &&
        burstLeft_ > 0) {
        --burstLeft_;
        if (!rng_.chance(config_.burstBias))
            return false;
        ++fired_;
        return true;
    }

    if (gap_ == std::numeric_limits<std::uint64_t>::max())
        return false;
    if (--gap_ > 0)
        return false;

    ++fired_;
    switch (config_.persistence) {
      case Persistence::Permanent:
        latched_ = true;  // stuck from here on; gap never re-arms
        break;
      case Persistence::Intermittent:
        // This event opens (and is part of) a burst at a fresh site.
        burstLeft_ = config_.burstLength;
        siteChosen_ = false;
        resample();
        break;
      case Persistence::Transient:
        resample();
        break;
    }
    return true;
}

void
FaultInjector::chooseSite(unsigned reg_bound)
{
    if (!siteChosen_) {
        siteBit_ = unsigned(rng_.nextBounded(64));
        siteReg_ = unsigned(rng_.nextBounded(reg_bound));
        siteChosen_ = true;
    }
}

FaultHit
FaultInjector::chipHit(std::uint32_t cell_index)
{
    const WeakCell &cell = chip_->cells()[cell_index];
    FaultHit hit;
    hit.fires = true;
    hit.bit = cell.bit;
    hit.regIndex = cell.index;
    hit.site = int(cell_index);
    hit.hasStuck = true;
    hit.stuckValue = cell.stuckValue;
    ++fired_;
    ++weakCellHits_;
    return hit;
}

FaultHit
FaultInjector::chipEvent(SiteKind kind, unsigned match,
                         bool constrained)
{
    FaultHit hit;
    // A pinned source still only speaks for one physical core.
    if (config_.targetChecker >= 0 &&
        activeChecker_ != config_.targetChecker)
        return hit;

    const auto siteMatches = [&](const WeakCell &cell) {
        return cell.core == activeChecker_ && cell.kind == kind &&
               (!constrained || cell.index == match);
    };

    // A latched permanent defect recurs at its fixed physical site,
    // but firing stays voltage-gated: chip-mode permanence is a
    // Vmin violation, not physical damage, so restoring the margin
    // (panic reset, AIMD backoff) quiets the cell.  Under deep
    // undervolt p(cell) ~= 1 and the site corrupts every touch.
    if (latched_) {
        if (siteMatches(chip_->cells()[chipCell_]) &&
            rng_.chance(cellProb_[chipCell_]))
            return chipHit(chipCell_);
        return hit;
    }
    // An open intermittent burst fires probabilistically, but only
    // when the marginal cell's own site is the one being exercised.
    if (burstLeft_ > 0) {
        if (siteMatches(chip_->cells()[chipCell_])) {
            --burstLeft_;
            if (rng_.chance(config_.burstBias))
                return chipHit(chipCell_);
        }
        return hit;
    }

    for (std::uint32_t ci : chip_->cellsFor(activeChecker_, kind)) {
        const WeakCell &cell = chip_->cells()[ci];
        if (constrained && cell.index != match)
            continue;
        if (!rng_.chance(cellProb_[ci]))
            continue;
        if (config_.persistence == Persistence::Permanent) {
            latched_ = true;
            chipCell_ = ci;
        } else if (config_.persistence == Persistence::Intermittent) {
            burstLeft_ = config_.burstLength;
            chipCell_ = ci;
        }
        return chipHit(ci);
    }
    return hit;
}

FaultHit
FaultInjector::onLogEntry(bool is_load, std::uint64_t entry_index)
{
    FaultHit hit;
    if (config_.kind != FaultKind::LogBitFlip)
        return hit;
    if (is_load ? !config_.targetLoads : !config_.targetStores)
        return hit;
    if (chip_ != nullptr) {
        // The log is a circular SRAM: successive entries walk the
        // physical rows, so a weak row is re-visited every logRows
        // entries.
        return chipEvent(
            SiteKind::LogRow,
            unsigned(entry_index % chip_->config().logRows), true);
    }
    if (!consumeEvent())
        return hit;
    hit.fires = true;
    if (config_.persistence == Persistence::Transient) {
        hit.bit = unsigned(rng_.nextBounded(64));
    } else {
        chooseSite(1);
        hit.bit = siteBit_;
    }
    return hit;
}

FaultHit
FaultInjector::onInstruction(const isa::Instruction &inst, bool wrote_reg)
{
    FaultHit hit;
    switch (config_.kind) {
      case FaultKind::FunctionalUnit:
        if (chip_ != nullptr) {
            // Chip mode: the defective unit is the weak cell's own
            // class, not the configured one; an instruction that
            // writes no register latches nothing.
            if (!wrote_reg)
                return hit;
            return chipEvent(SiteKind::FunctionalUnit,
                             unsigned(inst.info().cls), true);
        }
        if (inst.info().cls != config_.targetClass)
            return hit;
        if (!consumeEvent())
            return hit;
        // "An instruction that has no effect is indistinguishable
        // from a discarded instruction: no error is injected if no
        // register is touched."
        if (!wrote_reg)
            return hit;
        hit.fires = true;
        if (config_.persistence == Persistence::Transient) {
            hit.bit = unsigned(rng_.nextBounded(64));
        } else {
            chooseSite(1);
            hit.bit = siteBit_;
        }
        return hit;

      case FaultKind::RegisterBitFlip:
        if (chip_ != nullptr)
            return chipEvent(SiteKind::RegisterBit, 0, false);
        if (!consumeEvent())
            return hit;
        hit.fires = true;
        if (config_.persistence == Persistence::Transient) {
            hit.bit = unsigned(rng_.nextBounded(64));
            hit.regIndex = unsigned(rng_.nextBounded(isa::numIntRegs));
        } else {
            chooseSite(isa::numIntRegs);
            hit.bit = siteBit_;
            hit.regIndex = siteReg_;
        }
        return hit;

      default:
        return hit;
    }
}

std::size_t
FaultPlan::add(const FaultConfig &config)
{
    injectors_.emplace_back(config);
    return injectors_.size() - 1;
}

void
FaultPlan::setAllRates(double rate)
{
    for (auto &injector : injectors_)
        injector.setRate(rate);
}

void
FaultPlan::attachChip(const ChipModel *chip)
{
    for (auto &injector : injectors_)
        injector.attachChip(chip);
}

void
FaultPlan::setVoltage(double v)
{
    for (auto &injector : injectors_)
        injector.setVoltage(v);
}

void
FaultPlan::setActiveChecker(int id)
{
    for (auto &injector : injectors_)
        injector.setActiveChecker(id);
}

void
FaultPlan::validate(unsigned checker_count) const
{
    for (const auto &injector : injectors_) {
        const int target = injector.config().targetChecker;
        if (target >= int(checker_count)) {
            std::ostringstream os;
            os << "FaultConfig: targetChecker " << target
               << " out of range (" << checker_count << " checkers)";
            throw std::invalid_argument(os.str());
        }
    }
}

std::uint64_t
FaultPlan::totalFired() const
{
    std::uint64_t total = 0;
    for (const auto &injector : injectors_)
        total += injector.fired();
    return total;
}

std::uint64_t
FaultPlan::totalWeakCellHits() const
{
    std::uint64_t total = 0;
    for (const auto &injector : injectors_)
        total += injector.weakCellHits();
    return total;
}

void
FaultPlan::reset()
{
    for (auto &injector : injectors_)
        injector.reset();
}

FaultPlan
uniformPlan(double rate, std::uint64_t seed)
{
    return uniformPlan(rate, seed, Persistence::Transient, -1);
}

FaultPlan
uniformPlan(double rate, std::uint64_t seed, Persistence persistence,
            int target_checker)
{
    FaultPlan plan;
    FaultConfig reg;
    reg.kind = FaultKind::RegisterBitFlip;
    reg.rate = rate;
    reg.targetCategory = isa::RegCategory::Integer;
    reg.seed = seed;
    reg.persistence = persistence;
    reg.targetChecker = target_checker;
    plan.add(reg);

    FaultConfig log;
    log.kind = FaultKind::LogBitFlip;
    log.rate = rate;
    log.seed = seed ^ 0xabcdef0123456789ULL;
    log.persistence = persistence;
    log.targetChecker = target_checker;
    plan.add(log);
    return plan;
}

FaultPlan
chipPlan(std::uint64_t seed, Persistence persistence,
         int target_checker)
{
    FaultPlan plan;
    FaultConfig reg;
    reg.kind = FaultKind::RegisterBitFlip;
    reg.targetCategory = isa::RegCategory::Integer;
    reg.seed = seed;
    reg.persistence = persistence;
    reg.targetChecker = target_checker;
    plan.add(reg);

    FaultConfig log;
    log.kind = FaultKind::LogBitFlip;
    log.seed = seed ^ 0xabcdef0123456789ULL;
    log.persistence = persistence;
    log.targetChecker = target_checker;
    plan.add(log);

    FaultConfig unit;
    unit.kind = FaultKind::FunctionalUnit;
    unit.seed = seed ^ 0x5ca1ab1e0ddba11ULL;
    unit.persistence = persistence;
    unit.targetChecker = target_checker;
    plan.add(unit);
    return plan;
}

} // namespace faults
} // namespace paradox
