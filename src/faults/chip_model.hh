/**
 * @file
 * Per-chip silicon fault map (ROADMAP item 4: fault-model realism).
 *
 * The baseline injectors model memoryless geometric errors, but real
 * undervolted silicon misbehaves differently: Soyturk et al. observe
 * that SRAM faults recur at *fixed physical locations* and depend on
 * the *data stored*, and Papadimitriou et al. observe that Vmin
 * varies chip-to-chip and core-to-core.  ChipModel captures all
 * three effects as a persistent, seed-derived description of one
 * physical chip:
 *
 *  - Weak-cell population.  A fixed set of physical sites -- register
 *    file bits, load-store-log rows, checker functional units -- is
 *    sampled once from the chip seed.  The same seed always yields
 *    the same defect geography, across runs, voltages, and job
 *    counts.
 *
 *  - Data-dependent flips.  Each weak cell has a preferred stuck
 *    value: it only corrupts data holding the *opposite* bit (a cell
 *    that decays towards 1 cannot disturb a stored 1).  Injection is
 *    therefore a masked stuck-at write, not an unconditional XOR.
 *
 *  - Per-core Vmin variation.  Every checker domain and the main
 *    core draw a Gaussian Vmin offset; each cell's own Vmin adds a
 *    half-normal elevation above its domain.  Flip probability
 *    follows the existing UndervoltErrorModel exponential shape but
 *    anchored at the *cell's* Vmin, so undervolting hits cores
 *    asymmetrically and quarantine pressure concentrates on the
 *    weakest checkers.
 *
 * FaultInjector consults an attached ChipModel instead of uniform
 * site sampling (see fault_model.hh); everything here is pure
 * deterministic data with no simulation-time state.
 */

#ifndef PARADOX_FAULTS_CHIP_MODEL_HH
#define PARADOX_FAULTS_CHIP_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "faults/undervolt_model.hh"

namespace paradox
{
namespace faults
{

/** Physical site class a weak cell lives in. */
enum class SiteKind : std::uint8_t
{
    RegisterBit,    //!< one bit of one architectural register
    LogRow,         //!< one bit of one load-store-log SRAM row
    FunctionalUnit, //!< output stage of one functional-unit class
};

/** Human-readable site-kind name. */
const char *siteKindName(SiteKind kind);

/** Chip-level sampling parameters. */
struct ChipConfig
{
    /** Identity of the physical chip; same seed => same map. */
    std::uint64_t chipSeed = 1;
    /** Weak cells sampled over the whole chip. */
    unsigned weakCells = 48;
    /** Checker-core count (domains = checkers + main core). */
    unsigned checkerCount = 16;
    /** Load-store-log rows per checker (segmentBytes / entryBytes). */
    unsigned logRows = 384;
    /** Std-dev of the per-core Vmin offset (volts). */
    double vminSigma = 0.008;
    /** Scale of the per-cell half-normal Vmin elevation (volts). */
    double cellSigma = 0.015;
    /** Architectural registers a RegisterBit site may land in. */
    unsigned regCount = 32;
    /** Functional-unit classes a FunctionalUnit site may land in. */
    unsigned unitCount = 6;
    /** Voltage->probability shape shared with the ambient model. */
    UndervoltErrorModel::Params shape;

    /** Throws std::invalid_argument on out-of-range parameters. */
    void validate() const;
};

/** One persistent physical defect site. */
struct WeakCell
{
    SiteKind kind = SiteKind::RegisterBit;
    /** Owning voltage domain: -1 = main core, 0..N-1 = checker. */
    int core = -1;
    /** Register index / log row / InstClass ordinal, per kind. */
    unsigned index = 0;
    /** Bit position within the 64-bit site. */
    unsigned bit = 0;
    /** Preferred decay value: flips only data holding !stuckValue. */
    bool stuckValue = false;
    /** The cell's own minimum reliable voltage (volts). */
    double vmin = 0.0;
};

/**
 * Immutable fault map of one chip, fully determined by ChipConfig.
 * Thread-safe to share (const) across concurrently replaying
 * checkers and forked campaign children.
 */
class ChipModel
{
  public:
    explicit ChipModel(const ChipConfig &config);

    const ChipConfig &config() const { return config_; }
    const std::vector<WeakCell> &cells() const { return cells_; }

    /** Vmin offset of domain @p core (-1 = main core), volts. */
    double coreVminOffset(int core) const;

    /**
     * Indices (into cells()) of the weak cells of @p kind owned by
     * domain @p core; precomputed, empty if the domain drew none.
     */
    const std::vector<std::uint32_t> &cellsFor(int core,
                                               SiteKind kind) const;

    /**
     * Probability that cell @p cell corrupts a targeted event at
     * supply voltage @p v: 1 at or below the cell's Vmin, decaying
     * with the configured exponential slope above it.
     */
    double flipProbability(const WeakCell &cell, double v) const;

    /** Order-sensitive FNV hash of the quantized map (tests). */
    std::uint64_t fingerprint() const;

    /**
     * JSON description of the map.  Voltages are quantized to
     * integer microvolts so the text is byte-identical everywhere.
     */
    std::string toJson() const;

  private:
    ChipConfig config_;
    std::vector<WeakCell> cells_;
    std::vector<double> coreOffsets_; //!< [0] = main, [1+i] = checker i
    /** [domain][kind] -> cell indices; domain 0 = main core. */
    std::vector<std::vector<std::uint32_t>> byDomainKind_;
};

} // namespace faults
} // namespace paradox

#endif // PARADOX_FAULTS_CHIP_MODEL_HH
