/**
 * @file
 * Error-injection framework (paper section V-A, figure 7).
 *
 * Faults are injected into checker cores only, as in the paper:
 * detection is symmetric (a mismatch never says which side erred), so
 * restricting injection to one side leaves recovery behaviour
 * unchanged while giving the simulation a trustworthy oracle.
 *
 * Three fault models approximate the variety of hardware faults:
 *
 *  - LogBitFlip: "memory faults" -- one bit of the data carried by a
 *    load-store-log entry flips; the geometric gap counts targeted
 *    memory operations (loads or stores).
 *
 *  - FunctionalUnit: "combinational faults from a defect in a
 *    particular functional unit" -- when an instruction of the
 *    targeted class writes a register, the written value is
 *    corrupted; instructions that touch no register are skipped.
 *
 *  - RegisterBitFlip: "combinational faults of unknown origin" --
 *    a single bit flips in a register chosen at random within a
 *    category (integer, float, flags, misc); the gap counts executed
 *    instructions.
 *
 * Inter-arrival gaps are geometric, modelling independent errors.
 */

#ifndef PARADOX_FAULTS_FAULT_MODEL_HH
#define PARADOX_FAULTS_FAULT_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/arch_state.hh"
#include "isa/instruction.hh"
#include "sim/rng.hh"

namespace paradox
{
namespace faults
{

/** The three injected fault families. */
enum class FaultKind : std::uint8_t
{
    LogBitFlip,
    FunctionalUnit,
    RegisterBitFlip,
};

/** Configuration of one injector. */
struct FaultConfig
{
    FaultKind kind = FaultKind::RegisterBitFlip;
    /** Per-targeted-event probability (geometric gap parameter). */
    double rate = 0.0;
    /** LogBitFlip: target loads, stores, or both. */
    bool targetLoads = true;
    bool targetStores = true;
    /** FunctionalUnit: the defective unit. */
    isa::InstClass targetClass = isa::InstClass::IntAlu;
    /** RegisterBitFlip: the targeted register category. */
    isa::RegCategory targetCategory = isa::RegCategory::Integer;
    std::uint64_t seed = 1;
};

/** A decision returned by an injector when it fires. */
struct FaultHit
{
    bool fires = false;
    unsigned bit = 0;      //!< bit position to flip
    unsigned regIndex = 0; //!< target register (RegisterBitFlip)
};

/**
 * One geometric-gap fault source.
 *
 * The owner calls the event hook matching the injector's kind; other
 * hooks return no-fire immediately.  Rates may be retuned at run time
 * (the dynamic-voltage path drives rate from the undervolt model);
 * retuning resamples the gap.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultConfig &config);

    /** Change the per-event probability (resamples the gap). */
    void setRate(double rate);

    double rate() const { return config_.rate; }
    FaultKind kind() const { return config_.kind; }
    const FaultConfig &config() const { return config_; }

    /** A checker consumed a load-store-log data value. */
    FaultHit onLogEntry(bool is_load);

    /**
     * A checker executed @p inst, writing a register iff @p wrote_reg.
     * Fires for FunctionalUnit (matching class, register written) and
     * RegisterBitFlip (any instruction).
     */
    FaultHit onInstruction(const isa::Instruction &inst, bool wrote_reg);

    /** Total number of faults this injector has fired. */
    std::uint64_t fired() const { return fired_; }

    /** Restart the gap sequence (between independent runs). */
    void reset();

  private:
    bool consumeEvent();
    void resample();

    FaultConfig config_;
    Rng rng_;
    std::uint64_t gap_ = 0;
    std::uint64_t fired_ = 0;
};

/** A set of concurrently active injectors. */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /** Add an injector; returns its index. */
    std::size_t add(const FaultConfig &config);

    /** Retune every injector to @p rate (voltage-driven operation). */
    void setAllRates(double rate);

    std::vector<FaultInjector> &injectors() { return injectors_; }
    const std::vector<FaultInjector> &injectors() const
    {
        return injectors_;
    }

    bool empty() const { return injectors_.empty(); }

    std::uint64_t totalFired() const;

    void reset();

  private:
    std::vector<FaultInjector> injectors_;
};

/**
 * Convenience: the "uniform" plan used for the figure 8/9 sweeps --
 * one RegisterBitFlip source over all instructions and one LogBitFlip
 * source over all memory operations, both at @p rate.
 */
FaultPlan uniformPlan(double rate, std::uint64_t seed);

} // namespace faults
} // namespace paradox

#endif // PARADOX_FAULTS_FAULT_MODEL_HH
