/**
 * @file
 * Error-injection framework (paper section V-A, figure 7).
 *
 * Faults are injected into checker cores only, as in the paper:
 * detection is symmetric (a mismatch never says which side erred), so
 * restricting injection to one side leaves recovery behaviour
 * unchanged while giving the simulation a trustworthy oracle.
 *
 * Three fault models approximate the variety of hardware faults:
 *
 *  - LogBitFlip: "memory faults" -- one bit of the data carried by a
 *    load-store-log entry flips; the geometric gap counts targeted
 *    memory operations (loads or stores).
 *
 *  - FunctionalUnit: "combinational faults from a defect in a
 *    particular functional unit" -- when an instruction of the
 *    targeted class writes a register, the written value is
 *    corrupted; instructions that touch no register are skipped.
 *
 *  - RegisterBitFlip: "combinational faults of unknown origin" --
 *    a single bit flips in a register chosen at random within a
 *    category (integer, float, flags, misc); the gap counts executed
 *    instructions.
 *
 * Orthogonally to *what* is corrupted, each injector has a temporal
 * *persistence* class (undervolted silicon exhibits all three;
 * Papadimitriou et al. report workload- and core-dependent clustered
 * rates, Soyturk et al. report faults recurring at fixed locations):
 *
 *  - Transient: independent errors, geometric inter-arrival gaps
 *    (the original model).
 *
 *  - Intermittent: the geometric gap opens a *burst* -- a marginal
 *    circuit goes bad for a while.  For the next burstLength targeted
 *    events the fault fires with probability burstBias, always at the
 *    same (per-burst) bit position, then the injector re-arms.
 *
 *  - Permanent: the first firing latches the fault.  From then on
 *    *every* targeted event fires at the same stuck location --
 *    a hard defect, recurring at a fixed site.
 *
 * An injector may additionally be pinned to a single checker core
 * (targetChecker >= 0): events observed while any other checker is
 * replaying do not touch it, modelling a physical defect in one
 * core rather than an ambient error process.
 */

#ifndef PARADOX_FAULTS_FAULT_MODEL_HH
#define PARADOX_FAULTS_FAULT_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "faults/chip_model.hh"
#include "isa/arch_state.hh"
#include "isa/instruction.hh"
#include "sim/rng.hh"

namespace paradox
{
namespace faults
{

/** The three injected fault families. */
enum class FaultKind : std::uint8_t
{
    LogBitFlip,
    FunctionalUnit,
    RegisterBitFlip,
};

/** Temporal behaviour of a fault source. */
enum class Persistence : std::uint8_t
{
    Transient,    //!< independent, geometric inter-arrival
    Intermittent, //!< bursty recurrence at a fixed per-burst site
    Permanent,    //!< sticky: first firing latches a stuck location
};

/** Human-readable fault-family name. */
const char *faultKindName(FaultKind kind);

/** Human-readable persistence name. */
const char *persistenceName(Persistence persistence);

/** Parse a persistence name; returns false on an unknown string. */
bool parsePersistence(const std::string &name, Persistence &out);

/** Configuration of one injector. */
struct FaultConfig
{
    FaultKind kind = FaultKind::RegisterBitFlip;
    /** Per-targeted-event probability (geometric gap parameter). */
    double rate = 0.0;
    /** LogBitFlip: target loads, stores, or both. */
    bool targetLoads = true;
    bool targetStores = true;
    /** FunctionalUnit: the defective unit. */
    isa::InstClass targetClass = isa::InstClass::IntAlu;
    /** RegisterBitFlip: the targeted register category. */
    isa::RegCategory targetCategory = isa::RegCategory::Integer;
    std::uint64_t seed = 1;

    /** Temporal class (see file comment). */
    Persistence persistence = Persistence::Transient;
    /** Intermittent: targeted events per burst window. */
    unsigned burstLength = 16;
    /** Intermittent: per-event firing probability inside a burst. */
    double burstBias = 0.5;
    /**
     * Pin the fault to one checker core (-1 = ambient, affects every
     * checker).  Pinned injectors ignore events replayed on other
     * checkers entirely: their gap does not advance.
     */
    int targetChecker = -1;

    /**
     * Reject malformed parameters (rate/burstBias outside [0,1],
     * zero burstLength, targetChecker below -1) with
     * std::invalid_argument.  The checker-count upper bound is
     * enforced later by FaultPlan::validate (the plan does not know
     * the pool size).  Called by the FaultInjector constructor.
     */
    void validate() const;
};

/** A decision returned by an injector when it fires. */
struct FaultHit
{
    bool fires = false;
    unsigned bit = 0;      //!< bit position to flip
    unsigned regIndex = 0; //!< target register (RegisterBitFlip)
    /** Chip mode: index of the weak cell in the chip map, else -1. */
    int site = -1;
    /** Chip mode: apply stuck-at @ref stuckValue, not an XOR. */
    bool hasStuck = false;
    bool stuckValue = false;
    /**
     * Static ACE verdict for the hit site, stamped by the consumer
     * when a vulnerability model (analysis::VulnAnalysis) is
     * installed: 0 = unknown/no model, 1 = live, 2 = provably dead
     * (raw so this layer stays analysis-free; values mirror
     * analysis::SiteVerdict).
     */
    std::uint8_t verdict = 0;
};

/**
 * One geometric-gap fault source.
 *
 * The owner calls the event hook matching the injector's kind; other
 * hooks return no-fire immediately.  Rates may be retuned at run time
 * (the dynamic-voltage path drives rate from the undervolt model);
 * retuning resamples the gap.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultConfig &config);

    /** Change the per-event probability (resamples the gap). */
    void setRate(double rate);

    double rate() const { return config_.rate; }
    FaultKind kind() const { return config_.kind; }
    const FaultConfig &config() const { return config_; }

    /**
     * Select which checker core subsequent events belong to (-1 =
     * unattributed, e.g. main-core events).  Pinned injectors skip
     * events from non-matching checkers.
     */
    void setActiveChecker(int id) { activeChecker_ = id; }

    /**
     * Switch to chip-map mode: instead of geometric gaps over
     * uniform-random sites, every targeted event consults @p chip's
     * weak cells for the active domain.  A matching cell fires with
     * its voltage-dependent probability and returns a stuck-at hit
     * (FaultHit::hasStuck).  Persistence applies per cell: a
     * Permanent source latches the first firing cell, an
     * Intermittent one bursts at it.  nullptr detaches.  @p chip
     * must outlive the injector.
     */
    void attachChip(const ChipModel *chip);

    /** Chip mode: supply voltage driving per-cell probabilities. */
    void setVoltage(double v);

    bool chipMode() const { return chip_ != nullptr; }

    /** A checker consumed a load-store-log data value.  Chip mode
     *  maps @p entry_index onto a physical log row. */
    FaultHit onLogEntry(bool is_load, std::uint64_t entry_index = 0);

    /**
     * A checker executed @p inst, writing a register iff @p wrote_reg.
     * Fires for FunctionalUnit (matching class, register written) and
     * RegisterBitFlip (any instruction).
     */
    FaultHit onInstruction(const isa::Instruction &inst, bool wrote_reg);

    /** Total number of faults this injector has fired. */
    std::uint64_t fired() const { return fired_; }

    /** Fires attributed to chip weak cells (== fired in chip mode). */
    std::uint64_t weakCellHits() const { return weakCellHits_; }

    /** A permanent fault has latched its stuck location. */
    bool latched() const { return latched_; }

    /** Restart the gap sequence (between independent runs). */
    void reset();

  private:
    bool consumeEvent();
    void resample();
    /** Choose (or reuse) the fault site for a firing event. */
    void chooseSite(unsigned reg_bound);
    /** Chip mode: one targeted event against the weak-cell map. */
    FaultHit chipEvent(SiteKind kind, unsigned match, bool constrained);
    /** Build the firing hit for weak cell @p cell_index. */
    FaultHit chipHit(std::uint32_t cell_index);

    FaultConfig config_;
    Rng rng_;
    std::uint64_t gap_ = 0;
    std::uint64_t fired_ = 0;
    int activeChecker_ = -1;

    // Persistence state: the latched/stuck site (Permanent) or the
    // current burst's site and remaining budget (Intermittent).
    bool latched_ = false;
    unsigned burstLeft_ = 0;
    bool siteChosen_ = false;
    unsigned siteBit_ = 0;
    unsigned siteReg_ = 0;

    // Chip-map mode (attachChip): per-cell probabilities cached at
    // the current voltage; chipCell_ is the latched/bursting cell.
    const ChipModel *chip_ = nullptr;
    double voltage_ = 0.0;
    std::vector<double> cellProb_;
    std::uint32_t chipCell_ = 0;
    std::uint64_t weakCellHits_ = 0;
};

/** A set of concurrently active injectors. */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /** Add an injector; returns its index. */
    std::size_t add(const FaultConfig &config);

    /** Retune every injector to @p rate (voltage-driven operation). */
    void setAllRates(double rate);

    /** Attach the chip fault map to every injector (nullptr off). */
    void attachChip(const ChipModel *chip);

    /** Chip mode: propagate the supply voltage to every injector. */
    void setVoltage(double v);

    /** Attribute subsequent events to checker @p id (-1 = none). */
    void setActiveChecker(int id);

    /**
     * Enforce the bounds FaultConfig::validate cannot: every pinned
     * injector must target a checker below @p checker_count.  Throws
     * std::invalid_argument.
     */
    void validate(unsigned checker_count) const;

    std::vector<FaultInjector> &injectors() { return injectors_; }
    const std::vector<FaultInjector> &injectors() const
    {
        return injectors_;
    }

    bool empty() const { return injectors_.empty(); }

    std::uint64_t totalFired() const;

    /** Sum of per-injector weak-cell fires (0 outside chip mode). */
    std::uint64_t totalWeakCellHits() const;

    void reset();

  private:
    std::vector<FaultInjector> injectors_;
};

/**
 * Convenience: the "uniform" plan used for the figure 8/9 sweeps --
 * one RegisterBitFlip source over all instructions and one LogBitFlip
 * source over all memory operations, both at @p rate.
 */
FaultPlan uniformPlan(double rate, std::uint64_t seed);

/**
 * The uniform pair with an explicit temporal class, optionally pinned
 * to checker @p target_checker (campaign sweeps, robustness tests).
 */
FaultPlan uniformPlan(double rate, std::uint64_t seed,
                      Persistence persistence, int target_checker);

/**
 * The chip-mode plan: one injector per site class (register file,
 * load-store log, functional units) so every weak cell in an
 * attached ChipModel is reachable.  Rates are zero -- chip mode
 * fires from per-cell probabilities, not geometric gaps.
 */
FaultPlan chipPlan(std::uint64_t seed, Persistence persistence,
                   int target_checker);

} // namespace faults
} // namespace paradox

#endif // PARADOX_FAULTS_FAULT_MODEL_HH
