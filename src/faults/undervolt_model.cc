#include "faults/undervolt_model.hh"

#include <algorithm>
#include <cmath>

namespace paradox
{
namespace faults
{

double
UndervoltErrorModel::perInstructionRate(double v) const
{
    if (v <= params_.vFloor)
        return 1.0;
    double p = std::exp(-params_.slope * (v - params_.vFloor));
    return std::min(p, 1.0);
}

double
UndervoltErrorModel::voltageForRate(double rate) const
{
    if (rate >= 1.0)
        return params_.vFloor;
    if (rate <= 0.0)
        return params_.vNominal;
    return params_.vFloor - std::log(rate) / params_.slope;
}

} // namespace faults
} // namespace paradox
