#include "faults/chip_model.hh"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "sim/rng.hh"

namespace paradox
{
namespace faults
{

namespace
{

/** Microvolt quantization: keeps fingerprints/JSON byte-stable. */
long
microvolts(double v)
{
    return std::lround(v * 1e6);
}

} // namespace

const char *
siteKindName(SiteKind kind)
{
    switch (kind) {
      case SiteKind::RegisterBit:    return "register_bit";
      case SiteKind::LogRow:         return "log_row";
      case SiteKind::FunctionalUnit: return "functional_unit";
    }
    return "unknown";
}

void
ChipConfig::validate() const
{
    if (checkerCount == 0)
        throw std::invalid_argument("ChipConfig: checkerCount == 0");
    if (logRows == 0)
        throw std::invalid_argument("ChipConfig: logRows == 0");
    if (regCount == 0 || unitCount == 0)
        throw std::invalid_argument(
            "ChipConfig: regCount/unitCount == 0");
    if (!(vminSigma >= 0.0) || !(cellSigma >= 0.0))
        throw std::invalid_argument(
            "ChipConfig: negative vminSigma/cellSigma");
    if (!(shape.slope > 0.0))
        throw std::invalid_argument("ChipConfig: slope <= 0");
}

ChipModel::ChipModel(const ChipConfig &config) : config_(config)
{
    config_.validate();
    Rng rng(config_.chipSeed);

    // Domain Vmin offsets first (fixed draw order keeps the map
    // stable when only weakCells changes): [0] = main core.
    coreOffsets_.resize(config_.checkerCount + 1);
    for (auto &offset : coreOffsets_)
        offset = rng.gaussian() * config_.vminSigma;

    cells_.reserve(config_.weakCells);
    for (unsigned i = 0; i < config_.weakCells; ++i) {
        WeakCell cell;
        const std::uint64_t domain =
            rng.nextBounded(config_.checkerCount + 1);
        cell.core = int(domain) - 1; // 0 => main core (-1)

        // Site-class mix: register file and the log SRAM dominate;
        // a minority of defects sit in combinational logic.
        const std::uint64_t roll = rng.nextBounded(100);
        if (roll < 50) {
            cell.kind = SiteKind::RegisterBit;
            cell.index = unsigned(rng.nextBounded(config_.regCount));
        } else if (roll < 85) {
            cell.kind = SiteKind::LogRow;
            cell.index = unsigned(rng.nextBounded(config_.logRows));
        } else {
            cell.kind = SiteKind::FunctionalUnit;
            cell.index = unsigned(rng.nextBounded(config_.unitCount));
        }
        cell.bit = unsigned(rng.nextBounded(64));
        cell.stuckValue = (rng.next() & 1) != 0;
        cell.vmin = config_.shape.vFloor +
                    coreOffsets_[domain] +
                    std::fabs(rng.gaussian()) * config_.cellSigma;
        cells_.push_back(cell);
    }

    byDomainKind_.resize((config_.checkerCount + 1) * 3);
    for (std::uint32_t i = 0; i < cells_.size(); ++i) {
        const WeakCell &cell = cells_[i];
        const std::size_t domain = std::size_t(cell.core + 1);
        byDomainKind_[domain * 3 + std::size_t(cell.kind)]
            .push_back(i);
    }
}

double
ChipModel::coreVminOffset(int core) const
{
    const std::size_t domain = std::size_t(core + 1);
    if (domain >= coreOffsets_.size())
        return 0.0;
    return coreOffsets_[domain];
}

const std::vector<std::uint32_t> &
ChipModel::cellsFor(int core, SiteKind kind) const
{
    static const std::vector<std::uint32_t> none;
    const std::size_t domain = std::size_t(core + 1);
    if (domain > config_.checkerCount)
        return none;
    return byDomainKind_[domain * 3 + std::size_t(kind)];
}

double
ChipModel::flipProbability(const WeakCell &cell, double v) const
{
    if (v <= cell.vmin)
        return 1.0;
    const double p =
        std::exp(-config_.shape.slope * (v - cell.vmin));
    return std::min(p, 1.0);
}

std::uint64_t
ChipModel::fingerprint() const
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    mix(config_.chipSeed);
    mix(cells_.size());
    for (const WeakCell &cell : cells_) {
        mix(std::uint64_t(cell.kind));
        mix(std::uint64_t(std::int64_t(cell.core)));
        mix(cell.index);
        mix(cell.bit);
        mix(cell.stuckValue ? 1 : 0);
        mix(std::uint64_t(std::int64_t(microvolts(cell.vmin))));
    }
    for (double offset : coreOffsets_)
        mix(std::uint64_t(std::int64_t(microvolts(offset))));
    return h;
}

std::string
ChipModel::toJson() const
{
    std::ostringstream os;
    os << "{\"chip_seed\":" << config_.chipSeed
       << ",\"weak_cells\":" << cells_.size()
       << ",\"vmin_sigma_uv\":" << microvolts(config_.vminSigma)
       << ",\"core_offsets_uv\":[";
    for (std::size_t i = 0; i < coreOffsets_.size(); ++i)
        os << (i ? "," : "") << microvolts(coreOffsets_[i]);
    os << "],\"cells\":[";
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        const WeakCell &cell = cells_[i];
        os << (i ? "," : "") << "{\"kind\":\""
           << siteKindName(cell.kind) << "\",\"core\":" << cell.core
           << ",\"index\":" << cell.index << ",\"bit\":" << cell.bit
           << ",\"stuck\":" << (cell.stuckValue ? 1 : 0)
           << ",\"vmin_uv\":" << microvolts(cell.vmin) << "}";
    }
    os << "]}";
    return os.str();
}

} // namespace faults
} // namespace paradox
