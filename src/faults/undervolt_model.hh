/**
 * @file
 * Exponential undervolting error-rate model (Tan et al., IPDPS'15).
 *
 * The paper generates undervolting-induced errors "using an
 * exponential model following the formula from Tan et al.", with
 * parameters for the Intel Itanium II 9560 (nominal 1.1 V), chosen
 * because no equivalent error-rate-vs-voltage study exists for Arm
 * parts.  Only the exponential *shape* matters: the per-instruction
 * error probability rises exponentially as supply voltage drops
 * below the safe margin,
 *
 *     p(V) = clamp(exp(-slope * (V - vFloor)), 1)
 *
 * with p(vFloor) = 1 (every instruction faults) and p(vNominal)
 * negligible.  Error onset under
 * undervolting is a sharp cliff (orders of magnitude within tens of
 * millivolts), so the slope is steep: first observable errors appear
 * around 0.87-0.89 V and rates become heavy below 0.85 V, matching
 * the operating region of figure 11.
 */

#ifndef PARADOX_FAULTS_UNDERVOLT_MODEL_HH
#define PARADOX_FAULTS_UNDERVOLT_MODEL_HH

namespace paradox
{
namespace faults
{

/** Voltage -> per-instruction error probability. */
class UndervoltErrorModel
{
  public:
    struct Params
    {
        double vNominal = 1.1;  //!< margined supply (Itanium II 9560)
        double vFloor = 0.82;   //!< p == 1 at and below this voltage
        double slope = 290.0;   //!< exponential steepness, 1/volt
    };

    UndervoltErrorModel() : UndervoltErrorModel(Params{}) {}
    explicit UndervoltErrorModel(const Params &params) : params_(params)
    {}

    /** Per-instruction error probability at supply voltage @p v. */
    double perInstructionRate(double v) const;

    /**
     * Voltage at which the per-instruction rate equals @p rate
     * (inverse of perInstructionRate; useful for calibration).
     */
    double voltageForRate(double rate) const;

    const Params &params() const { return params_; }

  private:
    Params params_;
};

} // namespace faults
} // namespace paradox

#endif // PARADOX_FAULTS_UNDERVOLT_MODEL_HH
