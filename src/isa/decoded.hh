/**
 * @file
 * Pre-decoded micro-op image of a Program, and the production engine
 * that executes it.
 *
 * Decode happens once, at DecodedProgram construction: every
 * Instruction becomes one flat MicroOp with its operand roles,
 * load/store/branch classification, sign-extension behaviour and
 * memory width pre-extracted, branch/jump targets resolved to
 * micro-op *indices*, and a superblock run length (the number of
 * guaranteed straight-line micro-ops from each point to the next
 * control transfer or HALT).  The inner loop (decoded_run.hh) then
 * dispatches on the pre-classified opcode -- computed-goto threaded
 * dispatch where the compiler supports it -- without touching the
 * instruction word, the InstInfo table, or the fetch bounds check on
 * straight-line paths.
 *
 * Superblock run lengths are derived from the same control-transfer
 * boundaries the CFG in src/analysis/ computes; isa_lint
 * cross-checks the two so decoded execution cannot drift from the
 * static paradox-cost/1 bounds.
 */

#ifndef PARADOX_ISA_DECODED_HH
#define PARADOX_ISA_DECODED_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/engine.hh"

namespace paradox
{
namespace isa
{

/** One pre-decoded instruction. */
struct MicroOp
{
    Opcode op = Opcode::NOP;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    InstClass cls = InstClass::Other;
    std::uint8_t memSize = 0;    //!< access bytes (0 if not memory)

    /** Encoded sources (engine.hh), as the scoreboard consumes them. */
    std::uint8_t srcA = srcNone;
    std::uint8_t srcB = srcNone;
    std::uint8_t srcC = srcNone;

    /** @{ Pre-classified behaviour flags (from InstInfo + opcode). */
    bool isLoad = false;
    bool isStore = false;
    bool isBranch = false;
    bool isJump = false;
    bool loadSignExtend = false;  //!< LB/LH/LW sign-extend
    bool loadToFp = false;        //!< FLD writes the FP file
    bool storeFromFp = false;     //!< FSD sources the FP file
    bool writesInt = false;
    bool writesFp = false;
    /** @} */

    /**
     * Resolved control-transfer target as a micro-op index: the
     * branch/JAL destination when taken.  badTarget when the encoded
     * destination is misaligned or outside the image (a wild jump
     * surfacing as a failed fetch on the next step), or when the
     * target is dynamic (JALR) or the op transfers no control.
     */
    std::uint32_t target = 0;

    /**
     * Superblock run length: the number of micro-ops from this one
     * (inclusive) through the next control transfer, HALT, or image
     * end.  Straight-line execution can retire runLen - 1 micro-ops
     * with nothing but an index increment.
     */
    std::uint32_t runLen = 1;

    std::int64_t imm = 0;
    const Instruction *inst = nullptr;  //!< backing instruction word
};

/**
 * The flat, dense decoded image of one Program.
 *
 * Micro-op i corresponds 1:1 to prog.code()[i] (byte address
 * i * instBytes).  Instances are immutable and shared: get() memoizes
 * the decode per Program so the commit loop, the checker replay and
 * the analysis tooling decode each image once.
 */
class DecodedProgram
{
  public:
    /** Sentinel index for "no / wild / dynamic target". */
    static constexpr std::uint32_t badTarget = 0xffffffffu;

    explicit DecodedProgram(const Program &prog);

    /**
     * The shared decode of @p prog.  Thread-safe; entries are keyed
     * by program identity and verified against a content hash so a
     * rebuilt Program at a recycled address re-decodes.
     */
    static std::shared_ptr<const DecodedProgram> get(const Program &prog);

    const Program &program() const { return prog_; }

    std::size_t size() const { return uops_.size(); }
    const std::vector<MicroOp> &uops() const { return uops_; }
    const MicroOp &at(std::size_t idx) const { return uops_[idx]; }

    /** FNV-1a hash of the instruction words (cache validation). */
    std::uint64_t contentHash() const { return hash_; }

    /** Dynamic instruction classes, counted over the decoded image. */
    std::vector<std::uint64_t> classCounts() const;

  private:
    const Program &prog_;
    std::vector<MicroOp> uops_;
    std::uint64_t hash_ = 0;
};

/**
 * The production engine: executes the pre-decoded micro-op image
 * with a threaded-dispatch inner loop.  Differentially tested
 * against ReferenceEngine (tests/test_executor_differential.cc) to
 * produce bit-identical commit records and architectural state.
 */
class DecodedEngine final : public Engine
{
  public:
    explicit DecodedEngine(const Program &prog)
        : Engine(prog), dp_(DecodedProgram::get(prog))
    {}

    EngineKind kind() const override { return EngineKind::Decoded; }
    MemPeek peekMem(const ArchState &state) const override;
    CommitRecord step(ArchState &state, MemIf &mem) override;

    /** The decoded image (shared with replay fast paths). */
    const DecodedProgram &decoded() const { return *dp_; }
    std::shared_ptr<const DecodedProgram> decodedPtr() const
    { return dp_; }

  private:
    std::shared_ptr<const DecodedProgram> dp_;
};

} // namespace isa
} // namespace paradox

#endif // PARADOX_ISA_DECODED_HH
