#include "isa/opcode.hh"

#include "sim/logging.hh"

namespace paradox
{
namespace isa
{

namespace
{

const char *classNames[static_cast<unsigned>(InstClass::NumClasses)] = {
    "IntAlu", "IntMult", "IntDiv", "FpAlu", "FpMult", "FpDiv",
    "Load", "Store", "Branch", "Jump", "Other",
};

} // namespace

namespace detail
{

void
instInfoOutOfRange()
{
    panic("instInfo: opcode out of range");
}

} // namespace detail

const char *
mnemonic(Opcode op)
{
    return instInfo(op).mnemonic;
}

const char *
className(InstClass cls)
{
    auto idx = static_cast<unsigned>(cls);
    if (idx >= static_cast<unsigned>(InstClass::NumClasses))
        panic("className: class out of range");
    return classNames[idx];
}

} // namespace isa
} // namespace paradox
