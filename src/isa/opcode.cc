#include "isa/opcode.hh"

#include "sim/logging.hh"

namespace paradox
{
namespace isa
{

namespace
{

constexpr InstInfo
info(const char *mnem, InstClass cls, bool wi, bool wf, bool rf,
     bool ld, bool st, bool br, bool jp, std::uint8_t sz)
{
    return InstInfo{mnem, cls, wi, wf, rf, ld, st, br, jp, sz};
}

// Shorthand rows. Columns: mnemonic, class, writesInt, writesFp,
// readsFp, isLoad, isStore, isBranch, isJump, memSize.
const InstInfo infoTable[static_cast<unsigned>(Opcode::NumOpcodes)] = {
    info("add",  InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    info("sub",  InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    info("and",  InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    info("or",   InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    info("xor",  InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    info("sll",  InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    info("srl",  InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    info("sra",  InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    info("slt",  InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    info("sltu", InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    info("mul",  InstClass::IntMult,1,0,0, 0,0,0,0, 0),
    info("mulh", InstClass::IntMult,1,0,0, 0,0,0,0, 0),
    info("div",  InstClass::IntDiv, 1,0,0, 0,0,0,0, 0),
    info("divu", InstClass::IntDiv, 1,0,0, 0,0,0,0, 0),
    info("rem",  InstClass::IntDiv, 1,0,0, 0,0,0,0, 0),
    info("remu", InstClass::IntDiv, 1,0,0, 0,0,0,0, 0),
    info("addi", InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    info("andi", InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    info("ori",  InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    info("xori", InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    info("slli", InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    info("srli", InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    info("srai", InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    info("slti", InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    info("ldi",  InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    info("lb",   InstClass::Load,  1,0,0, 1,0,0,0, 1),
    info("lbu",  InstClass::Load,  1,0,0, 1,0,0,0, 1),
    info("lh",   InstClass::Load,  1,0,0, 1,0,0,0, 2),
    info("lhu",  InstClass::Load,  1,0,0, 1,0,0,0, 2),
    info("lw",   InstClass::Load,  1,0,0, 1,0,0,0, 4),
    info("lwu",  InstClass::Load,  1,0,0, 1,0,0,0, 4),
    info("ld",   InstClass::Load,  1,0,0, 1,0,0,0, 8),
    info("sb",   InstClass::Store, 0,0,0, 0,1,0,0, 1),
    info("sh",   InstClass::Store, 0,0,0, 0,1,0,0, 2),
    info("sw",   InstClass::Store, 0,0,0, 0,1,0,0, 4),
    info("sd",   InstClass::Store, 0,0,0, 0,1,0,0, 8),
    info("fld",  InstClass::Load,  0,1,0, 1,0,0,0, 8),
    info("fsd",  InstClass::Store, 0,0,1, 0,1,0,0, 8),
    info("beq",  InstClass::Branch,0,0,0, 0,0,1,0, 0),
    info("bne",  InstClass::Branch,0,0,0, 0,0,1,0, 0),
    info("blt",  InstClass::Branch,0,0,0, 0,0,1,0, 0),
    info("bge",  InstClass::Branch,0,0,0, 0,0,1,0, 0),
    info("bltu", InstClass::Branch,0,0,0, 0,0,1,0, 0),
    info("bgeu", InstClass::Branch,0,0,0, 0,0,1,0, 0),
    info("jal",  InstClass::Jump,  1,0,0, 0,0,0,1, 0),
    info("jalr", InstClass::Jump,  1,0,0, 0,0,0,1, 0),
    info("fadd", InstClass::FpAlu, 0,1,1, 0,0,0,0, 0),
    info("fsub", InstClass::FpAlu, 0,1,1, 0,0,0,0, 0),
    info("fmul", InstClass::FpMult,0,1,1, 0,0,0,0, 0),
    info("fdiv", InstClass::FpDiv, 0,1,1, 0,0,0,0, 0),
    info("fsqrt",InstClass::FpDiv, 0,1,1, 0,0,0,0, 0),
    info("fmin", InstClass::FpAlu, 0,1,1, 0,0,0,0, 0),
    info("fmax", InstClass::FpAlu, 0,1,1, 0,0,0,0, 0),
    info("fneg", InstClass::FpAlu, 0,1,1, 0,0,0,0, 0),
    info("fabs", InstClass::FpAlu, 0,1,1, 0,0,0,0, 0),
    info("fmadd",InstClass::FpMult,0,1,1, 0,0,0,0, 0),
    info("fcvt.d.l", InstClass::FpAlu, 0,1,0, 0,0,0,0, 0),
    info("fcvt.l.d", InstClass::FpAlu, 1,0,1, 0,0,0,0, 0),
    info("fmv.x.d",  InstClass::FpAlu, 1,0,1, 0,0,0,0, 0),
    info("fmv.d.x",  InstClass::FpAlu, 0,1,0, 0,0,0,0, 0),
    info("feq",  InstClass::FpAlu, 1,0,1, 0,0,0,0, 0),
    info("flt",  InstClass::FpAlu, 1,0,1, 0,0,0,0, 0),
    info("fle",  InstClass::FpAlu, 1,0,1, 0,0,0,0, 0),
    info("nop",  InstClass::Other, 0,0,0, 0,0,0,0, 0),
    info("syscall", InstClass::Other, 1,0,0, 0,0,0,0, 0),
    info("halt", InstClass::Other, 0,0,0, 0,0,0,0, 0),
};

const char *classNames[static_cast<unsigned>(InstClass::NumClasses)] = {
    "IntAlu", "IntMult", "IntDiv", "FpAlu", "FpMult", "FpDiv",
    "Load", "Store", "Branch", "Jump", "Other",
};

} // namespace

const InstInfo &
instInfo(Opcode op)
{
    auto idx = static_cast<unsigned>(op);
    if (idx >= static_cast<unsigned>(Opcode::NumOpcodes))
        panic("instInfo: opcode out of range");
    return infoTable[idx];
}

const char *
mnemonic(Opcode op)
{
    return instInfo(op).mnemonic;
}

const char *
className(InstClass cls)
{
    auto idx = static_cast<unsigned>(cls);
    if (idx >= static_cast<unsigned>(InstClass::NumClasses))
        panic("className: class out of range");
    return classNames[idx];
}

} // namespace isa
} // namespace paradox
