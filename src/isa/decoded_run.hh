/**
 * @file
 * The threaded-dispatch inner loop over a DecodedProgram.
 *
 * runDecoded() is a template so each caller instantiates it against
 * a *concrete* memory type: the checker-replay fast path runs it
 * devirtualized over its log-replay adapter, the engine's generic
 * step() over plain MemIf.  Dispatch is a computed goto on GNU-
 * compatible compilers (one indirect branch per micro-op, no bounds
 * check); the portable fallback is a dense switch, which compilers
 * lower to the same jump table a function-pointer dispatch would
 * use.
 *
 * Semantics are a line-for-line mirror of the reference executor
 * (executor.cc); tests/test_executor_differential.cc holds the two
 * to bit-identical commit records and architectural state across
 * every workload and seeded random programs.
 */

#ifndef PARADOX_ISA_DECODED_RUN_HH
#define PARADOX_ISA_DECODED_RUN_HH

#include <cmath>
#include <limits>
#include <utility>

#include "isa/decoded.hh"

#if defined(__GNUC__) || defined(__clang__)
#define PARADOX_THREADED_DISPATCH 1
#else
#define PARADOX_THREADED_DISPATCH 0
#endif

namespace paradox
{
namespace isa
{

/** Why runDecoded() returned. */
enum class RunStop : std::uint8_t
{
    MaxUops,    //!< executed the requested number of micro-ops
    SinkStop,   //!< the sink asked to stop
    Halted,     //!< HALT committed (its record was delivered)
    WildFetch,  //!< fetch left the image (invalid record delivered)
    MemNext,    //!< the mem gate refused the next load/store (not run)
};

namespace rundetail
{

/** Default memory gate: every load/store may execute. */
struct NoMemGate
{
    constexpr bool operator()(std::uint64_t /* idx */) const
    { return true; }
};

inline std::int64_t
asSigned(std::uint64_t v)
{
    return static_cast<std::int64_t>(v);
}

inline std::uint64_t
sext(std::uint64_t v, unsigned bytes)
{
    const unsigned bits = bytes * 8;
    if (bits >= 64)
        return v;
    const std::uint64_t sign = std::uint64_t(1) << (bits - 1);
    const std::uint64_t mask = (std::uint64_t(1) << bits) - 1;
    v &= mask;
    return (v ^ sign) - sign;
}

inline std::uint64_t
zext(std::uint64_t v, unsigned bytes)
{
    const unsigned bits = bytes * 8;
    if (bits >= 64)
        return v;
    return v & ((std::uint64_t(1) << bits) - 1);
}

inline std::uint64_t
mulHigh(std::uint64_t a, std::uint64_t b)
{
    __int128 prod = static_cast<__int128>(asSigned(a)) *
                    static_cast<__int128>(asSigned(b));
    return static_cast<std::uint64_t>(prod >> 64);
}

} // namespace rundetail

/**
 * Execute up to @p max_uops micro-ops of @p dp starting at
 * state.pc(), delivering one CommitRecord per retired micro-op to
 * @p sink (a callable returning true to continue).  The state is
 * updated exactly as the reference executor would: pc advances per
 * instruction, a wild fetch delivers an invalid record and leaves
 * the state untouched.
 *
 * @p mem_gate is consulted *before* executing any load/store
 * micro-op and receives the micro-op's index, so the gate can
 * consult per-op static facts (the effect-summary byte bounds);
 * returning false stops the run with RunStop::MemNext and the state
 * positioned exactly at that instruction (pc unchanged, nothing
 * committed).  The commit loop uses it to break a superblock batch
 * when the open log segment is not guaranteed to have headroom, so
 * the exact peeked capacity cut can run before the access.
 */
template <typename Mem, typename Sink, typename MemGate>
RunStop
runDecoded(const DecodedProgram &dp, ArchState &state, Mem &mem,
           std::uint64_t max_uops, Sink &&sink, MemGate &&mem_gate)
{
    using rundetail::asSigned;
    using rundetail::mulHigh;
    using rundetail::sext;
    using rundetail::zext;

    const MicroOp *const uops = dp.uops().data();
    const std::uint64_t n = dp.size();

    if (max_uops == 0)
        return RunStop::MaxUops;

    std::uint64_t executed = 0;
    Addr pc = state.pc();
    std::uint64_t idx =
        pc % instBytes == 0 ? pc / instBytes : DecodedProgram::badTarget;

    // Locals shared by the handlers; declared before the dispatch
    // label so gotos never cross an initialization.
    const MicroOp *u = nullptr;
    CommitRecord r;
    Addr next_pc = 0;
    std::uint64_t next_idx = 0;
    std::uint64_t a = 0, b = 0, raw = 0, sv = 0, old = 0;
    double fa = 0.0, fb = 0.0;
    Addr addr = 0;

#if PARADOX_THREADED_DISPATCH
#define U_LABEL(name) L_##name:
#define U_DISPATCH() goto *dispatch_table[unsigned(u->op)]
#define U_NEXT() goto commit
    static const void *const dispatch_table[unsigned(
        Opcode::NumOpcodes)] = {
        &&L_ADD,  &&L_SUB,  &&L_AND_, &&L_OR_,  &&L_XOR_, &&L_SLL,
        &&L_SRL,  &&L_SRA,  &&L_SLT,  &&L_SLTU, &&L_MUL,  &&L_MULH,
        &&L_DIV,  &&L_DIVU, &&L_REM,  &&L_REMU, &&L_ADDI, &&L_ANDI,
        &&L_ORI,  &&L_XORI, &&L_SLLI, &&L_SRLI, &&L_SRAI, &&L_SLTI,
        &&L_LDI,  &&L_LB,   &&L_LBU,  &&L_LH,   &&L_LHU,  &&L_LW,
        &&L_LWU,  &&L_LD,   &&L_SB,   &&L_SH,   &&L_SW,   &&L_SD,
        &&L_FLD,  &&L_FSD,  &&L_BEQ,  &&L_BNE,  &&L_BLT,  &&L_BGE,
        &&L_BLTU, &&L_BGEU, &&L_JAL,  &&L_JALR, &&L_FADD, &&L_FSUB,
        &&L_FMUL, &&L_FDIV, &&L_FSQRT, &&L_FMIN, &&L_FMAX, &&L_FNEG,
        &&L_FABS, &&L_FMADD, &&L_FCVT_D_L, &&L_FCVT_L_D, &&L_FMV_X_D,
        &&L_FMV_D_X, &&L_FEQ, &&L_FLT_, &&L_FLE, &&L_NOP, &&L_SYSCALL,
        &&L_HALT,
    };
#else
#define U_LABEL(name) case Opcode::name:
#define U_NEXT() break
#endif

    // Shared per-micro-op semantic actions, mirroring executor.cc.
#define U_WRITE_X(value)                                                \
    do {                                                                \
        const std::uint64_t v__ = (value);                              \
        state.writeX(u->rd, v__);                                       \
        r.wroteInt = u->rd != 0;                                        \
        r.destValue = v__;                                              \
    } while (0)
#define U_WRITE_F(value)                                                \
    do {                                                                \
        const double vd__ = (value);                                    \
        state.writeF(u->rd, vd__);                                      \
        r.wroteFp = true;                                               \
        r.destValue = state.readFBits(u->rd);                           \
        if (std::isinf(vd__) && !std::isinf(fa) && !std::isinf(fb))     \
            state.orFflags(ArchState::flagOverflow);                    \
    } while (0)
#define U_LOAD(size, sign_extend, to_fp)                                \
    do {                                                                \
        a = state.readX(u->rs1);                                        \
        addr = a + std::uint64_t(u->imm);                               \
        raw = mem.read(addr, (size));                                   \
        const std::uint64_t lv__ =                                      \
            (sign_extend) ? sext(raw, (size)) : zext(raw, (size));      \
        r.isLoad = true;                                                \
        r.memAddr = addr;                                               \
        r.memSize = (size);                                             \
        r.loadValue = raw;                                              \
        if (to_fp) {                                                    \
            state.writeFBits(u->rd, lv__);                              \
            r.wroteFp = true;                                           \
            r.destValue = lv__;                                         \
        } else {                                                        \
            U_WRITE_X(lv__);                                            \
        }                                                               \
    } while (0)
#define U_STORE(size, from_fp)                                          \
    do {                                                                \
        a = state.readX(u->rs1);                                        \
        addr = a + std::uint64_t(u->imm);                               \
        sv = (from_fp) ? state.readFBits(u->rs2)                        \
                       : state.readX(u->rs2);                           \
        sv = zext(sv, (size));                                          \
        old = mem.write(addr, (size), sv);                              \
        r.isStore = true;                                               \
        r.memAddr = addr;                                               \
        r.memSize = (size);                                             \
        r.storeValue = sv;                                              \
        r.storeOld = old;                                               \
    } while (0)
#define U_BRANCH(cond)                                                  \
    do {                                                                \
        a = state.readX(u->rs1);                                        \
        b = state.readX(u->rs2);                                        \
        r.isBranch = true;                                              \
        const bool take__ = (cond);                                     \
        r.taken = take__;                                               \
        if (take__) {                                                   \
            next_pc = static_cast<Addr>(u->imm);                        \
            next_idx = u->target;                                       \
        }                                                               \
    } while (0)
#define U_READ_AB()                                                     \
    do {                                                                \
        a = state.readX(u->rs1);                                        \
        b = state.readX(u->rs2);                                        \
    } while (0)
#define U_READ_FAB()                                                    \
    do {                                                                \
        fa = state.readF(u->rs1);                                       \
        fb = state.readF(u->rs2);                                       \
    } while (0)

dispatch:
    if (idx >= n) {
        // Wild fetch: an invalid record with the state untouched,
        // exactly as the reference executor reports it.
        r = CommitRecord{};
        r.pc = pc;
        sink(static_cast<const CommitRecord &>(r));
        return RunStop::WildFetch;
    }
    u = &uops[idx];
    if ((u->isLoad || u->isStore) && !mem_gate(idx))
        return RunStop::MemNext;
    r = CommitRecord{};
    r.valid = true;
    r.op = u->op;
    r.cls = u->cls;
    r.pc = pc;
    r.rd = u->rd;
    r.inst = u->inst;
    r.srcA = u->srcA;
    r.srcB = u->srcB;
    r.srcC = u->srcC;
    next_pc = pc + instBytes;
    next_idx = idx + 1;
#if PARADOX_THREADED_DISPATCH
    U_DISPATCH();
#else
    switch (u->op) {
#endif

    U_LABEL(ADD)  U_READ_AB(); U_WRITE_X(a + b); U_NEXT();
    U_LABEL(SUB)  U_READ_AB(); U_WRITE_X(a - b); U_NEXT();
    U_LABEL(AND_) U_READ_AB(); U_WRITE_X(a & b); U_NEXT();
    U_LABEL(OR_)  U_READ_AB(); U_WRITE_X(a | b); U_NEXT();
    U_LABEL(XOR_) U_READ_AB(); U_WRITE_X(a ^ b); U_NEXT();
    U_LABEL(SLL)  U_READ_AB(); U_WRITE_X(a << (b & 63)); U_NEXT();
    U_LABEL(SRL)  U_READ_AB(); U_WRITE_X(a >> (b & 63)); U_NEXT();
    U_LABEL(SRA)
        U_READ_AB();
        U_WRITE_X(std::uint64_t(asSigned(a) >> (b & 63)));
        U_NEXT();
    U_LABEL(SLT)
        U_READ_AB();
        U_WRITE_X(asSigned(a) < asSigned(b) ? 1 : 0);
        U_NEXT();
    U_LABEL(SLTU) U_READ_AB(); U_WRITE_X(a < b ? 1 : 0); U_NEXT();
    U_LABEL(MUL)  U_READ_AB(); U_WRITE_X(a * b); U_NEXT();
    U_LABEL(MULH) U_READ_AB(); U_WRITE_X(mulHigh(a, b)); U_NEXT();
    U_LABEL(DIV)
        U_READ_AB();
        if (b == 0) {
            U_WRITE_X(~std::uint64_t(0));
        } else if (asSigned(a) ==
                       std::numeric_limits<std::int64_t>::min() &&
                   asSigned(b) == -1) {
            U_WRITE_X(a);  // overflow: result is INT64_MIN
        } else {
            U_WRITE_X(std::uint64_t(asSigned(a) / asSigned(b)));
        }
        U_NEXT();
    U_LABEL(DIVU)
        U_READ_AB();
        U_WRITE_X(b == 0 ? ~std::uint64_t(0) : a / b);
        U_NEXT();
    U_LABEL(REM)
        U_READ_AB();
        if (b == 0) {
            U_WRITE_X(a);
        } else if (asSigned(a) ==
                       std::numeric_limits<std::int64_t>::min() &&
                   asSigned(b) == -1) {
            U_WRITE_X(0);
        } else {
            U_WRITE_X(std::uint64_t(asSigned(a) % asSigned(b)));
        }
        U_NEXT();
    U_LABEL(REMU)
        U_READ_AB();
        U_WRITE_X(b == 0 ? a : a % b);
        U_NEXT();

    U_LABEL(ADDI)
        a = state.readX(u->rs1);
        U_WRITE_X(a + std::uint64_t(u->imm));
        U_NEXT();
    U_LABEL(ANDI)
        a = state.readX(u->rs1);
        U_WRITE_X(a & std::uint64_t(u->imm));
        U_NEXT();
    U_LABEL(ORI)
        a = state.readX(u->rs1);
        U_WRITE_X(a | std::uint64_t(u->imm));
        U_NEXT();
    U_LABEL(XORI)
        a = state.readX(u->rs1);
        U_WRITE_X(a ^ std::uint64_t(u->imm));
        U_NEXT();
    U_LABEL(SLLI)
        a = state.readX(u->rs1);
        U_WRITE_X(a << (u->imm & 63));
        U_NEXT();
    U_LABEL(SRLI)
        a = state.readX(u->rs1);
        U_WRITE_X(a >> (u->imm & 63));
        U_NEXT();
    U_LABEL(SRAI)
        a = state.readX(u->rs1);
        U_WRITE_X(std::uint64_t(asSigned(a) >> (u->imm & 63)));
        U_NEXT();
    U_LABEL(SLTI)
        a = state.readX(u->rs1);
        U_WRITE_X(asSigned(a) < u->imm ? 1 : 0);
        U_NEXT();
    U_LABEL(LDI) U_WRITE_X(std::uint64_t(u->imm)); U_NEXT();

    U_LABEL(LB)  U_LOAD(1, true, false); U_NEXT();
    U_LABEL(LBU) U_LOAD(1, false, false); U_NEXT();
    U_LABEL(LH)  U_LOAD(2, true, false); U_NEXT();
    U_LABEL(LHU) U_LOAD(2, false, false); U_NEXT();
    U_LABEL(LW)  U_LOAD(4, true, false); U_NEXT();
    U_LABEL(LWU) U_LOAD(4, false, false); U_NEXT();
    U_LABEL(LD)  U_LOAD(8, false, false); U_NEXT();
    U_LABEL(FLD) U_LOAD(8, false, true); U_NEXT();

    U_LABEL(SB)  U_STORE(1, false); U_NEXT();
    U_LABEL(SH)  U_STORE(2, false); U_NEXT();
    U_LABEL(SW)  U_STORE(4, false); U_NEXT();
    U_LABEL(SD)  U_STORE(8, false); U_NEXT();
    U_LABEL(FSD) U_STORE(8, true); U_NEXT();

    U_LABEL(BEQ)  U_BRANCH(a == b); U_NEXT();
    U_LABEL(BNE)  U_BRANCH(a != b); U_NEXT();
    U_LABEL(BLT)  U_BRANCH(asSigned(a) < asSigned(b)); U_NEXT();
    U_LABEL(BGE)  U_BRANCH(asSigned(a) >= asSigned(b)); U_NEXT();
    U_LABEL(BLTU) U_BRANCH(a < b); U_NEXT();
    U_LABEL(BGEU) U_BRANCH(a >= b); U_NEXT();

    U_LABEL(JAL)
        U_WRITE_X(pc + instBytes);
        r.isJump = true;
        r.taken = true;
        next_pc = static_cast<Addr>(u->imm);
        next_idx = u->target;
        U_NEXT();
    U_LABEL(JALR)
        a = state.readX(u->rs1);
        U_WRITE_X(pc + instBytes);
        r.isJump = true;
        r.taken = true;
        next_pc = (a + std::uint64_t(u->imm)) & ~Addr(instBytes - 1);
        next_idx = next_pc / instBytes;  // aligned by construction
        U_NEXT();

    U_LABEL(FADD) U_READ_FAB(); U_WRITE_F(fa + fb); U_NEXT();
    U_LABEL(FSUB) U_READ_FAB(); U_WRITE_F(fa - fb); U_NEXT();
    U_LABEL(FMUL) U_READ_FAB(); U_WRITE_F(fa * fb); U_NEXT();
    U_LABEL(FDIV)
        U_READ_FAB();
        if (fb == 0.0)
            state.orFflags(ArchState::flagDivZero);
        U_WRITE_F(fa / fb);
        U_NEXT();
    U_LABEL(FSQRT)
        U_READ_FAB();
        if (fa < 0.0)
            state.orFflags(ArchState::flagInvalid);
        U_WRITE_F(std::sqrt(fa));
        U_NEXT();
    U_LABEL(FMIN) U_READ_FAB(); U_WRITE_F(std::fmin(fa, fb)); U_NEXT();
    U_LABEL(FMAX) U_READ_FAB(); U_WRITE_F(std::fmax(fa, fb)); U_NEXT();
    U_LABEL(FNEG) U_READ_FAB(); U_WRITE_F(-fa); U_NEXT();
    U_LABEL(FABS) U_READ_FAB(); U_WRITE_F(std::fabs(fa)); U_NEXT();
    U_LABEL(FMADD)
        // rd <- rs1 * rs2 + rd (rd doubles as accumulator source).
        U_READ_FAB();
        U_WRITE_F(fa * fb + state.readF(u->rd));
        U_NEXT();
    U_LABEL(FCVT_D_L)
        U_READ_FAB();
        a = state.readX(u->rs1);
        U_WRITE_F(static_cast<double>(asSigned(a)));
        U_NEXT();
    U_LABEL(FCVT_L_D)
        fa = state.readF(u->rs1);
        if (std::isnan(fa)) {
            state.orFflags(ArchState::flagInvalid);
            U_WRITE_X(0);
        } else if (fa >= 9.2233720368547758e18) {
            U_WRITE_X(
                std::uint64_t(std::numeric_limits<std::int64_t>::max()));
        } else if (fa <= -9.2233720368547758e18) {
            U_WRITE_X(
                std::uint64_t(std::numeric_limits<std::int64_t>::min()));
        } else {
            U_WRITE_X(std::uint64_t(static_cast<std::int64_t>(fa)));
        }
        U_NEXT();
    U_LABEL(FMV_X_D)
        U_WRITE_X(state.readFBits(u->rs1));
        U_NEXT();
    U_LABEL(FMV_D_X)
        a = state.readX(u->rs1);
        state.writeFBits(u->rd, a);
        r.wroteFp = true;
        r.destValue = a;
        U_NEXT();
    U_LABEL(FEQ)
        U_READ_FAB();
        U_WRITE_X(fa == fb ? 1 : 0);
        U_NEXT();
    U_LABEL(FLT_)
        U_READ_FAB();
        U_WRITE_X(fa < fb ? 1 : 0);
        U_NEXT();
    U_LABEL(FLE)
        U_READ_FAB();
        U_WRITE_X(fa <= fb ? 1 : 0);
        U_NEXT();

    U_LABEL(NOP) U_NEXT();
    U_LABEL(SYSCALL)
        // Deterministic stand-in for a rollback-able syscall: the
        // "kernel" hashes the argument register into the result.
        a = state.readX(u->rs1);
        U_WRITE_X((a ^ 0x53594e4353595343ULL) * 0x9e3779b97f4a7c15ULL);
        U_NEXT();
    U_LABEL(HALT)
        r.halted = true;
        U_NEXT();

#if !PARADOX_THREADED_DISPATCH
      default:
        break;
    }
#endif

commit:
    r.nextPc = next_pc;
    state.setPc(next_pc);
    ++executed;
    if (!sink(static_cast<const CommitRecord &>(r)))
        return RunStop::SinkStop;
    if (r.halted)
        return RunStop::Halted;
    pc = next_pc;
    idx = next_idx;
    if (executed >= max_uops)
        return RunStop::MaxUops;
    goto dispatch;

#undef U_LABEL
#undef U_DISPATCH
#undef U_NEXT
#undef U_WRITE_X
#undef U_WRITE_F
#undef U_LOAD
#undef U_STORE
#undef U_BRANCH
#undef U_READ_AB
#undef U_READ_FAB
}

/** runDecoded() with an always-open memory gate. */
template <typename Mem, typename Sink>
RunStop
runDecoded(const DecodedProgram &dp, ArchState &state, Mem &mem,
           std::uint64_t max_uops, Sink &&sink)
{
    return runDecoded(dp, state, mem, max_uops,
                      std::forward<Sink>(sink), rundetail::NoMemGate{});
}

} // namespace isa
} // namespace paradox

#endif // PARADOX_ISA_DECODED_RUN_HH
