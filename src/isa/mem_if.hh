/**
 * @file
 * The data-memory interface the functional executor runs against.
 *
 * The main core implements it with real backing memory (through the
 * cache hierarchy for timing); the checker core implements it with a
 * load-store-log replay adapter, which is exactly how ParaMedic
 * separates the two cores' data paths (paper section II-B).
 */

#ifndef PARADOX_ISA_MEM_IF_HH
#define PARADOX_ISA_MEM_IF_HH

#include <cstdint>

#include "sim/types.hh"

namespace paradox
{
namespace isa
{

/** Abstract byte-addressed data memory. */
class MemIf
{
  public:
    virtual ~MemIf() = default;

    /** Read @p size bytes (1/2/4/8) at @p addr, zero-extended. */
    virtual std::uint64_t read(Addr addr, unsigned size) = 0;

    /**
     * Write the low @p size bytes of @p value at @p addr.
     * @return the previous value of those bytes (zero-extended); the
     *         load-store log records this for rollback.
     */
    virtual std::uint64_t write(Addr addr, unsigned size,
                                std::uint64_t value) = 0;
};

} // namespace isa
} // namespace paradox

#endif // PARADOX_ISA_MEM_IF_HH
