/**
 * @file
 * Architectural state of a PDX64 core.
 *
 * This is the state ParaMedic checkpoints at segment boundaries and
 * compares between main and checker cores at segment ends, and the
 * state the fault injector flips bits in (integer, float, flags and
 * miscellaneous categories, paper section V-A).
 */

#ifndef PARADOX_ISA_ARCH_STATE_HH
#define PARADOX_ISA_ARCH_STATE_HH

#include <array>
#include <cstdint>

#include "isa/instruction.hh"
#include "sim/types.hh"

namespace paradox
{
namespace isa
{

/** Register category targeted by architectural-state fault injection. */
enum class RegCategory : std::uint8_t
{
    Integer,    //!< x1..x31
    Float,      //!< f0..f31
    Flags,      //!< sticky FP exception flags
    Misc,       //!< program counter
    NumCategories
};

/** Complete architectural state. */
class ArchState
{
  public:
    /** Reset to all-zero state with @p entry_pc. */
    void reset(Addr entry_pc = 0);

    /** @{ Integer register file access; x0 reads as zero. */
    std::uint64_t
    readX(unsigned idx) const
    {
        return idx == 0 ? 0 : x_[idx];
    }

    void
    writeX(unsigned idx, std::uint64_t value)
    {
        if (idx != 0)
            x_[idx] = value;
    }
    /** @} */

    /** @{ FP register file access (raw 64-bit patterns). */
    std::uint64_t readFBits(unsigned idx) const { return f_[idx]; }
    void writeFBits(unsigned idx, std::uint64_t bits) { f_[idx] = bits; }
    double readF(unsigned idx) const;
    void writeF(unsigned idx, double value);
    /** @} */

    /** @{ Program counter. */
    Addr pc() const { return pc_; }
    void setPc(Addr pc) { pc_ = pc; }
    /** @} */

    /** @{ Sticky FP exception flags (invalid, divzero, overflow...). */
    std::uint64_t fflags() const { return fflags_; }
    void setFflags(std::uint64_t flags) { fflags_ = flags; }
    void orFflags(std::uint64_t bits) { fflags_ |= bits; }
    /** @} */

    /** Exact equality of every architectural component. */
    bool operator==(const ArchState &other) const = default;

    /**
     * 64-bit fingerprint of the whole state; used by tests and by the
     * final-state comparison fast path.
     */
    std::uint64_t fingerprint() const;

    /**
     * Flip bit @p bit of element @p idx within @p cat.  Entry point
     * for the fault injector.  Out-of-range indices wrap.
     */
    void flipBit(RegCategory cat, unsigned idx, unsigned bit);

    /**
     * Force bit @p bit of element @p idx within @p cat to @p value
     * -- the stuck-at form of flipBit for data-dependent weak-cell
     * faults (a no-op when the stored bit already equals @p value).
     * Same site mapping and wrapping rules as flipBit.
     */
    void writeBit(RegCategory cat, unsigned idx, unsigned bit,
                  bool value);

    /** FP flag bit positions. */
    static constexpr std::uint64_t flagInvalid = 1;
    static constexpr std::uint64_t flagDivZero = 2;
    static constexpr std::uint64_t flagOverflow = 4;

  private:
    std::array<std::uint64_t, numIntRegs> x_{};
    std::array<std::uint64_t, numFpRegs> f_{};
    Addr pc_ = 0;
    std::uint64_t fflags_ = 0;
};

} // namespace isa
} // namespace paradox

#endif // PARADOX_ISA_ARCH_STATE_HH
