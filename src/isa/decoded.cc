#include "isa/decoded.hh"

#include <mutex>
#include <unordered_map>

#include "isa/decoded_run.hh"

namespace paradox
{
namespace isa
{

namespace
{

std::uint64_t
hashCode(const Program &prog)
{
    // FNV-1a over the instruction words.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    for (const Instruction &inst : prog.code()) {
        mix(std::uint64_t(std::uint8_t(inst.op)) |
            (std::uint64_t(inst.rd) << 8) |
            (std::uint64_t(inst.rs1) << 16) |
            (std::uint64_t(inst.rs2) << 24));
        mix(std::uint64_t(inst.imm));
    }
    mix(prog.code().size());
    return h;
}

} // namespace

DecodedProgram::DecodedProgram(const Program &prog)
    : prog_(prog), hash_(hashCode(prog))
{
    const std::vector<Instruction> &code = prog.code();
    uops_.resize(code.size());

    for (std::size_t i = 0; i < code.size(); ++i) {
        const Instruction &inst = code[i];
        const InstInfo &ii = instInfo(inst.op);
        MicroOp &u = uops_[i];

        u.op = inst.op;
        u.rd = inst.rd;
        u.rs1 = inst.rs1;
        u.rs2 = inst.rs2;
        u.cls = ii.cls;
        u.memSize = ii.memSize;
        u.isLoad = ii.isLoad;
        u.isStore = ii.isStore;
        u.isBranch = ii.isBranch;
        u.isJump = ii.isJump;
        u.writesInt = ii.writesIntReg;
        u.writesFp = ii.writesFpReg;
        u.loadSignExtend = inst.op == Opcode::LB ||
                           inst.op == Opcode::LH || inst.op == Opcode::LW;
        u.loadToFp = inst.op == Opcode::FLD;
        u.storeFromFp = inst.op == Opcode::FSD;
        u.imm = inst.imm;
        u.inst = &inst;

        const SourceRegs s = decodeSources(inst);
        u.srcA = s.a;
        u.srcB = s.b;
        u.srcC = s.c;

        // Resolve static control-transfer targets to micro-op
        // indices.  Branch/JAL destinations are absolute byte
        // addresses; anything misaligned or outside the image is a
        // wild jump and keeps the badTarget sentinel, surfacing as a
        // failed fetch on the following step exactly as the
        // reference executor behaves.  JALR targets are dynamic.
        u.target = badTarget;
        if (ii.isBranch || inst.op == Opcode::JAL) {
            const Addr t = static_cast<Addr>(inst.imm);
            if (t % instBytes == 0 && t / instBytes < code.size())
                u.target = std::uint32_t(t / instBytes);
        }
    }

    // Superblock run lengths: backward scan to the next control
    // transfer or HALT.  These boundaries are exactly where the CFG
    // in src/analysis/ ends a basic block on an outgoing transfer;
    // isa_lint cross-checks the two representations.
    for (std::size_t i = uops_.size(); i-- > 0;) {
        MicroOp &u = uops_[i];
        const bool ends_run =
            u.isBranch || u.isJump || u.op == Opcode::HALT;
        if (ends_run || i + 1 == uops_.size())
            u.runLen = 1;
        else
            u.runLen = uops_[i + 1].runLen + 1;
    }
}

std::vector<std::uint64_t>
DecodedProgram::classCounts() const
{
    std::vector<std::uint64_t> counts(
        unsigned(InstClass::NumClasses), 0);
    for (const MicroOp &u : uops_)
        ++counts[unsigned(u.cls)];
    return counts;
}

std::shared_ptr<const DecodedProgram>
DecodedProgram::get(const Program &prog)
{
    // Decode memo, keyed by program identity and validated by a
    // content hash so a different Program recycled at the same
    // address re-decodes.  Guarded for the parallel experiment
    // runner; entries are weak so the cache never outlives its
    // users.
    static std::mutex mu;
    static std::unordered_map<const Program *,
                              std::weak_ptr<const DecodedProgram>>
        cache;

    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(&prog);
    if (it != cache.end()) {
        if (auto dp = it->second.lock()) {
            if (dp->contentHash() == hashCode(prog))
                return dp;
        }
    }
    auto dp = std::make_shared<const DecodedProgram>(prog);
    cache[&prog] = dp;
    // Opportunistically drop expired entries so the map stays small
    // across long campaign runs.
    if (cache.size() > 64) {
        for (auto e = cache.begin(); e != cache.end();) {
            if (e->second.expired())
                e = cache.erase(e);
            else
                ++e;
        }
    }
    return dp;
}

MemPeek
DecodedEngine::peekMem(const ArchState &state) const
{
    MemPeek p;
    const Addr pc = state.pc();
    const std::size_t idx = pc / instBytes;
    if (pc % instBytes != 0 || idx >= dp_->size())
        return p;
    const MicroOp &u = dp_->at(idx);
    p.valid = true;
    if (u.isLoad || u.isStore) {
        p.isLoad = u.isLoad;
        p.isStore = u.isStore;
        p.addr = state.readX(u.rs1) + std::uint64_t(u.imm);
        p.size = u.memSize;
    }
    return p;
}

CommitRecord
DecodedEngine::step(ArchState &state, MemIf &mem)
{
    CommitRecord out;
    runDecoded(*dp_, state, mem, 1,
               [&out](const CommitRecord &r) {
                   out = r;
                   return true;
               });
    return out;
}

} // namespace isa
} // namespace paradox
