#include "isa/arch_state.hh"

#include <bit>
#include <cstring>

namespace paradox
{
namespace isa
{

void
ArchState::reset(Addr entry_pc)
{
    x_.fill(0);
    f_.fill(0);
    pc_ = entry_pc;
    fflags_ = 0;
}

double
ArchState::readF(unsigned idx) const
{
    return std::bit_cast<double>(f_[idx]);
}

void
ArchState::writeF(unsigned idx, double value)
{
    f_[idx] = std::bit_cast<std::uint64_t>(value);
}

std::uint64_t
ArchState::fingerprint() const
{
    // FNV-1a over every component; collision resistance is ample for
    // test oracles (real detection compares full state).
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    for (auto v : x_)
        mix(v);
    for (auto v : f_)
        mix(v);
    mix(pc_);
    mix(fflags_);
    return h;
}

void
ArchState::flipBit(RegCategory cat, unsigned idx, unsigned bit)
{
    const std::uint64_t mask = std::uint64_t(1) << (bit & 63);
    switch (cat) {
      case RegCategory::Integer:
        // Never flip x0: it is hard-wired, not a latch.
        x_[1 + idx % (numIntRegs - 1)] ^= mask;
        break;
      case RegCategory::Float:
        f_[idx % numFpRegs] ^= mask;
        break;
      case RegCategory::Flags:
        fflags_ ^= mask & 0x7;  // only the three defined flag bits
        break;
      case RegCategory::Misc:
        // PC corruption: keep it word-aligned so the checker fetches
        // *some* instruction, as a wild-jump fault would.
        pc_ ^= mask & ~Addr(instBytes - 1);
        break;
      default:
        break;
    }
}

void
ArchState::writeBit(RegCategory cat, unsigned idx, unsigned bit,
                    bool value)
{
    const std::uint64_t mask = std::uint64_t(1) << (bit & 63);
    switch (cat) {
      case RegCategory::Integer: {
        // Same mapping as flipBit: x0 is hard-wired, not a latch.
        std::uint64_t &reg = x_[1 + idx % (numIntRegs - 1)];
        reg = value ? reg | mask : reg & ~mask;
        break;
      }
      case RegCategory::Float: {
        std::uint64_t &reg = f_[idx % numFpRegs];
        reg = value ? reg | mask : reg & ~mask;
        break;
      }
      case RegCategory::Flags: {
        const std::uint64_t m = mask & 0x7;
        fflags_ = value ? fflags_ | m : fflags_ & ~m;
        break;
      }
      case RegCategory::Misc: {
        const Addr m = mask & ~Addr(instBytes - 1);
        pc_ = value ? pc_ | m : pc_ & ~m;
        break;
      }
      default:
        break;
    }
}

} // namespace isa
} // namespace paradox
