/**
 * @file
 * Opcodes and instruction classes for the PDX64 ISA.
 *
 * PDX64 is a 64-bit RISC-style ISA, deliberately close to a subset of
 * ARMv8/RISC-V in spirit: 31 general integer registers plus a
 * hard-wired zero, 32 double-precision FP registers, byte-addressed
 * loads/stores of 1/2/4/8 bytes, and compare-and-branch control flow.
 * The paper's evaluation ran ARMv8 binaries under gem5; PDX64 plays
 * the same role here as the architectural substrate that workloads
 * are written in and that both main and checker cores execute.
 */

#ifndef PARADOX_ISA_OPCODE_HH
#define PARADOX_ISA_OPCODE_HH

#include <cstdint>

namespace paradox
{
namespace isa
{

/** Every PDX64 operation. */
enum class Opcode : std::uint8_t
{
    // Integer register-register.
    ADD, SUB, AND_, OR_, XOR_, SLL, SRL, SRA, SLT, SLTU,
    MUL, MULH, DIV, DIVU, REM, REMU,
    // Integer register-immediate.
    ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI,
    // 64-bit immediate load (simulator-level pseudo-op).
    LDI,
    // Loads (sign- and zero-extending) and stores.
    LB, LBU, LH, LHU, LW, LWU, LD,
    SB, SH, SW, SD,
    FLD, FSD,
    // Control flow.
    BEQ, BNE, BLT, BGE, BLTU, BGEU,
    JAL, JALR,
    // Double-precision floating point.
    FADD, FSUB, FMUL, FDIV, FSQRT, FMIN, FMAX,
    FNEG, FABS, FMADD,
    FCVT_D_L,   //!< int64 -> double
    FCVT_L_D,   //!< double -> int64 (truncating)
    FMV_X_D,    //!< move raw bits fp -> int
    FMV_D_X,    //!< move raw bits int -> fp
    FEQ, FLT_, FLE,  //!< FP compares writing an integer register
    // Miscellaneous.
    NOP,
    SYSCALL,    //!< modelled as a rollback-able internal operation
    HALT,

    NumOpcodes
};

/**
 * Functional-unit / timing class of an instruction.  The main core
 * maps classes to its FU pool (3 int ALUs, 2 FP ALUs, 1 mult/div,
 * Table I); the checker core maps them to its in-order pipe; the
 * fault injector uses them to target specific units (section V-A,
 * combinational faults).
 */
enum class InstClass : std::uint8_t
{
    IntAlu,
    IntMult,
    IntDiv,
    FpAlu,
    FpMult,
    FpDiv,
    Load,
    Store,
    Branch,
    Jump,
    Other,

    NumClasses
};

/** Static properties of one opcode. */
struct InstInfo
{
    const char *mnemonic;
    InstClass cls;
    bool writesIntReg;   //!< destination is an integer register
    bool writesFpReg;    //!< destination is an FP register
    bool readsFp;        //!< sources include FP registers
    bool isLoad;
    bool isStore;
    bool isBranch;       //!< conditional control flow
    bool isJump;         //!< unconditional control flow
    std::uint8_t memSize; //!< access width in bytes (0 if not memory)
};

/** Look up the static properties of @p op. */
const InstInfo &instInfo(Opcode op);

/** Human-readable mnemonic of @p op. */
const char *mnemonic(Opcode op);

/** Human-readable name of an instruction class. */
const char *className(InstClass cls);

} // namespace isa
} // namespace paradox

#endif // PARADOX_ISA_OPCODE_HH
