/**
 * @file
 * Opcodes and instruction classes for the PDX64 ISA.
 *
 * PDX64 is a 64-bit RISC-style ISA, deliberately close to a subset of
 * ARMv8/RISC-V in spirit: 31 general integer registers plus a
 * hard-wired zero, 32 double-precision FP registers, byte-addressed
 * loads/stores of 1/2/4/8 bytes, and compare-and-branch control flow.
 * The paper's evaluation ran ARMv8 binaries under gem5; PDX64 plays
 * the same role here as the architectural substrate that workloads
 * are written in and that both main and checker cores execute.
 */

#ifndef PARADOX_ISA_OPCODE_HH
#define PARADOX_ISA_OPCODE_HH

#include <cstdint>

namespace paradox
{
namespace isa
{

/** Every PDX64 operation. */
enum class Opcode : std::uint8_t
{
    // Integer register-register.
    ADD, SUB, AND_, OR_, XOR_, SLL, SRL, SRA, SLT, SLTU,
    MUL, MULH, DIV, DIVU, REM, REMU,
    // Integer register-immediate.
    ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI,
    // 64-bit immediate load (simulator-level pseudo-op).
    LDI,
    // Loads (sign- and zero-extending) and stores.
    LB, LBU, LH, LHU, LW, LWU, LD,
    SB, SH, SW, SD,
    FLD, FSD,
    // Control flow.
    BEQ, BNE, BLT, BGE, BLTU, BGEU,
    JAL, JALR,
    // Double-precision floating point.
    FADD, FSUB, FMUL, FDIV, FSQRT, FMIN, FMAX,
    FNEG, FABS, FMADD,
    FCVT_D_L,   //!< int64 -> double
    FCVT_L_D,   //!< double -> int64 (truncating)
    FMV_X_D,    //!< move raw bits fp -> int
    FMV_D_X,    //!< move raw bits int -> fp
    FEQ, FLT_, FLE,  //!< FP compares writing an integer register
    // Miscellaneous.
    NOP,
    SYSCALL,    //!< modelled as a rollback-able internal operation
    HALT,

    NumOpcodes
};

/**
 * Functional-unit / timing class of an instruction.  The main core
 * maps classes to its FU pool (3 int ALUs, 2 FP ALUs, 1 mult/div,
 * Table I); the checker core maps them to its in-order pipe; the
 * fault injector uses them to target specific units (section V-A,
 * combinational faults).
 */
enum class InstClass : std::uint8_t
{
    IntAlu,
    IntMult,
    IntDiv,
    FpAlu,
    FpMult,
    FpDiv,
    Load,
    Store,
    Branch,
    Jump,
    Other,

    NumClasses
};

/** Static properties of one opcode. */
struct InstInfo
{
    const char *mnemonic;
    InstClass cls;
    bool writesIntReg;   //!< destination is an integer register
    bool writesFpReg;    //!< destination is an FP register
    bool readsFp;        //!< sources include FP registers
    bool isLoad;
    bool isStore;
    bool isBranch;       //!< conditional control flow
    bool isJump;         //!< unconditional control flow
    std::uint8_t memSize; //!< access width in bytes (0 if not memory)
};

namespace detail
{

/** Abort on a corrupt opcode (out-of-line: keeps instInfo tiny). */
[[noreturn]] void instInfoOutOfRange();

// Shorthand rows. Columns: mnemonic, class, writesInt, writesFp,
// readsFp, isLoad, isStore, isBranch, isJump, memSize.
constexpr InstInfo
infoRow(const char *mnem, InstClass cls, bool wi, bool wf, bool rf,
        bool ld, bool st, bool br, bool jp, std::uint8_t sz)
{
    return InstInfo{mnem, cls, wi, wf, rf, ld, st, br, jp, sz};
}

inline constexpr InstInfo
    infoTable[static_cast<unsigned>(Opcode::NumOpcodes)] = {
    infoRow("add",  InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    infoRow("sub",  InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    infoRow("and",  InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    infoRow("or",   InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    infoRow("xor",  InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    infoRow("sll",  InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    infoRow("srl",  InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    infoRow("sra",  InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    infoRow("slt",  InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    infoRow("sltu", InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    infoRow("mul",  InstClass::IntMult,1,0,0, 0,0,0,0, 0),
    infoRow("mulh", InstClass::IntMult,1,0,0, 0,0,0,0, 0),
    infoRow("div",  InstClass::IntDiv, 1,0,0, 0,0,0,0, 0),
    infoRow("divu", InstClass::IntDiv, 1,0,0, 0,0,0,0, 0),
    infoRow("rem",  InstClass::IntDiv, 1,0,0, 0,0,0,0, 0),
    infoRow("remu", InstClass::IntDiv, 1,0,0, 0,0,0,0, 0),
    infoRow("addi", InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    infoRow("andi", InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    infoRow("ori",  InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    infoRow("xori", InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    infoRow("slli", InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    infoRow("srli", InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    infoRow("srai", InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    infoRow("slti", InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    infoRow("ldi",  InstClass::IntAlu, 1,0,0, 0,0,0,0, 0),
    infoRow("lb",   InstClass::Load,  1,0,0, 1,0,0,0, 1),
    infoRow("lbu",  InstClass::Load,  1,0,0, 1,0,0,0, 1),
    infoRow("lh",   InstClass::Load,  1,0,0, 1,0,0,0, 2),
    infoRow("lhu",  InstClass::Load,  1,0,0, 1,0,0,0, 2),
    infoRow("lw",   InstClass::Load,  1,0,0, 1,0,0,0, 4),
    infoRow("lwu",  InstClass::Load,  1,0,0, 1,0,0,0, 4),
    infoRow("ld",   InstClass::Load,  1,0,0, 1,0,0,0, 8),
    infoRow("sb",   InstClass::Store, 0,0,0, 0,1,0,0, 1),
    infoRow("sh",   InstClass::Store, 0,0,0, 0,1,0,0, 2),
    infoRow("sw",   InstClass::Store, 0,0,0, 0,1,0,0, 4),
    infoRow("sd",   InstClass::Store, 0,0,0, 0,1,0,0, 8),
    infoRow("fld",  InstClass::Load,  0,1,0, 1,0,0,0, 8),
    infoRow("fsd",  InstClass::Store, 0,0,1, 0,1,0,0, 8),
    infoRow("beq",  InstClass::Branch,0,0,0, 0,0,1,0, 0),
    infoRow("bne",  InstClass::Branch,0,0,0, 0,0,1,0, 0),
    infoRow("blt",  InstClass::Branch,0,0,0, 0,0,1,0, 0),
    infoRow("bge",  InstClass::Branch,0,0,0, 0,0,1,0, 0),
    infoRow("bltu", InstClass::Branch,0,0,0, 0,0,1,0, 0),
    infoRow("bgeu", InstClass::Branch,0,0,0, 0,0,1,0, 0),
    infoRow("jal",  InstClass::Jump,  1,0,0, 0,0,0,1, 0),
    infoRow("jalr", InstClass::Jump,  1,0,0, 0,0,0,1, 0),
    infoRow("fadd", InstClass::FpAlu, 0,1,1, 0,0,0,0, 0),
    infoRow("fsub", InstClass::FpAlu, 0,1,1, 0,0,0,0, 0),
    infoRow("fmul", InstClass::FpMult,0,1,1, 0,0,0,0, 0),
    infoRow("fdiv", InstClass::FpDiv, 0,1,1, 0,0,0,0, 0),
    infoRow("fsqrt",InstClass::FpDiv, 0,1,1, 0,0,0,0, 0),
    infoRow("fmin", InstClass::FpAlu, 0,1,1, 0,0,0,0, 0),
    infoRow("fmax", InstClass::FpAlu, 0,1,1, 0,0,0,0, 0),
    infoRow("fneg", InstClass::FpAlu, 0,1,1, 0,0,0,0, 0),
    infoRow("fabs", InstClass::FpAlu, 0,1,1, 0,0,0,0, 0),
    infoRow("fmadd",InstClass::FpMult,0,1,1, 0,0,0,0, 0),
    infoRow("fcvt.d.l", InstClass::FpAlu, 0,1,0, 0,0,0,0, 0),
    infoRow("fcvt.l.d", InstClass::FpAlu, 1,0,1, 0,0,0,0, 0),
    infoRow("fmv.x.d",  InstClass::FpAlu, 1,0,1, 0,0,0,0, 0),
    infoRow("fmv.d.x",  InstClass::FpAlu, 0,1,0, 0,0,0,0, 0),
    infoRow("feq",  InstClass::FpAlu, 1,0,1, 0,0,0,0, 0),
    infoRow("flt",  InstClass::FpAlu, 1,0,1, 0,0,0,0, 0),
    infoRow("fle",  InstClass::FpAlu, 1,0,1, 0,0,0,0, 0),
    infoRow("nop",  InstClass::Other, 0,0,0, 0,0,0,0, 0),
    infoRow("syscall", InstClass::Other, 1,0,0, 0,0,0,0, 0),
    infoRow("halt", InstClass::Other, 0,0,0, 0,0,0,0, 0),
};

} // namespace detail

/**
 * Look up the static properties of @p op.  Inline: this sits on the
 * per-instruction hot paths (decode, timing, replay).
 */
inline const InstInfo &
instInfo(Opcode op)
{
    const auto idx = static_cast<unsigned>(op);
    if (idx >= static_cast<unsigned>(Opcode::NumOpcodes))
        detail::instInfoOutOfRange();
    return detail::infoTable[idx];
}

/** Human-readable mnemonic of @p op. */
const char *mnemonic(Opcode op);

/** Human-readable name of an instruction class. */
const char *className(InstClass cls);

} // namespace isa
} // namespace paradox

#endif // PARADOX_ISA_OPCODE_HH
