/**
 * @file
 * Single-step functional execution of PDX64 instructions.
 *
 * Both core types share this executor: the main core steps it against
 * real memory, the checker core against a load-store-log replay
 * adapter.  Keeping a single functional-semantics implementation and
 * differing only in the MemIf mirrors ParaMedic's property that the
 * two cores re-execute the same committed instruction stream along
 * different data paths.
 */

#ifndef PARADOX_ISA_EXECUTOR_HH
#define PARADOX_ISA_EXECUTOR_HH

#include <cstdint>

#include "isa/arch_state.hh"
#include "isa/instruction.hh"
#include "isa/mem_if.hh"
#include "isa/program.hh"

namespace paradox
{
namespace isa
{

/** Everything observable about one executed instruction. */
struct ExecResult
{
    bool valid = false;      //!< fetch succeeded (pc inside image)
    bool halted = false;     //!< HALT executed
    Opcode op = Opcode::NOP;
    InstClass cls = InstClass::Other;
    Addr pc = 0;             //!< pc of the executed instruction
    Addr nextPc = 0;         //!< pc after execution

    bool isLoad = false;
    bool isStore = false;
    Addr memAddr = 0;
    unsigned memSize = 0;
    std::uint64_t loadValue = 0;   //!< value a load observed
    std::uint64_t storeValue = 0;  //!< value a store wrote
    std::uint64_t storeOld = 0;    //!< value a store overwrote

    bool isBranch = false;
    bool isJump = false;
    bool taken = false;

    bool wroteInt = false;
    bool wroteFp = false;
    std::uint8_t rd = 0;           //!< destination register index
    std::uint64_t destValue = 0;   //!< raw value written to rd
};

/**
 * Execute one instruction at @p state.pc() of @p prog against @p mem,
 * updating @p state (including its pc).
 *
 * A fetch outside the code image returns ExecResult::valid == false
 * with the state unchanged; on a checker core this constitutes
 * "invalid checker core behavior" and is reported as a detection
 * (paper figure 7).
 */
ExecResult step(const Program &prog, ArchState &state, MemIf &mem);

/**
 * Apply @p prog's initial data image to @p mem, and zero-initialize
 * @p state with the program entry point.
 */
void loadProgram(const Program &prog, ArchState &state, MemIf &mem);

} // namespace isa
} // namespace paradox

#endif // PARADOX_ISA_EXECUTOR_HH
