/**
 * @file
 * ProgramBuilder: an in-process assembler for PDX64.
 *
 * Workloads are written against this fluent API; labels are resolved
 * to absolute byte targets at build() time.  The builder is the only
 * producer of Program images, so it also performs the static checks
 * (defined labels, register ranges) that a real assembler would.
 */

#ifndef PARADOX_ISA_BUILDER_HH
#define PARADOX_ISA_BUILDER_HH

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "isa/instruction.hh"
#include "isa/program.hh"

namespace paradox
{
namespace isa
{

/**
 * Aggregated assembly errors thrown by ProgramBuilder::build().
 *
 * Unlike the old fatal()-on-first-problem behaviour, the builder
 * accumulates every duplicate label definition and every undefined
 * label reference (with the offending instruction index) and reports
 * them all at once, so a workload author sees the complete damage in
 * a single build.
 */
class BuildError : public std::runtime_error
{
  public:
    explicit BuildError(std::vector<std::string> messages);

    /** One message per individual assembly problem. */
    const std::vector<std::string> &messages() const
    { return messages_; }

  private:
    static std::string join(const std::vector<std::string> &messages);

    std::vector<std::string> messages_;
};

/** Assembler-style builder of Program images. */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name) : name_(std::move(name)) {}

    /** Define @p name at the current code position. */
    ProgramBuilder &label(const std::string &name);

    /** @{ Integer register-register ALU operations. */
    ProgramBuilder &add(XReg rd, XReg a, XReg b);
    ProgramBuilder &sub(XReg rd, XReg a, XReg b);
    ProgramBuilder &and_(XReg rd, XReg a, XReg b);
    ProgramBuilder &or_(XReg rd, XReg a, XReg b);
    ProgramBuilder &xor_(XReg rd, XReg a, XReg b);
    ProgramBuilder &sll(XReg rd, XReg a, XReg b);
    ProgramBuilder &srl(XReg rd, XReg a, XReg b);
    ProgramBuilder &sra(XReg rd, XReg a, XReg b);
    ProgramBuilder &slt(XReg rd, XReg a, XReg b);
    ProgramBuilder &sltu(XReg rd, XReg a, XReg b);
    ProgramBuilder &mul(XReg rd, XReg a, XReg b);
    ProgramBuilder &mulh(XReg rd, XReg a, XReg b);
    ProgramBuilder &div(XReg rd, XReg a, XReg b);
    ProgramBuilder &divu(XReg rd, XReg a, XReg b);
    ProgramBuilder &rem(XReg rd, XReg a, XReg b);
    ProgramBuilder &remu(XReg rd, XReg a, XReg b);
    /** @} */

    /** @{ Integer register-immediate ALU operations. */
    ProgramBuilder &addi(XReg rd, XReg a, std::int64_t imm);
    ProgramBuilder &andi(XReg rd, XReg a, std::int64_t imm);
    ProgramBuilder &ori(XReg rd, XReg a, std::int64_t imm);
    ProgramBuilder &xori(XReg rd, XReg a, std::int64_t imm);
    ProgramBuilder &slli(XReg rd, XReg a, unsigned sh);
    ProgramBuilder &srli(XReg rd, XReg a, unsigned sh);
    ProgramBuilder &srai(XReg rd, XReg a, unsigned sh);
    ProgramBuilder &slti(XReg rd, XReg a, std::int64_t imm);
    /** @} */

    /** Load a full 64-bit immediate. */
    ProgramBuilder &ldi(XReg rd, std::uint64_t imm);
    /** Copy a register (pseudo-op: addi rd, rs, 0). */
    ProgramBuilder &mv(XReg rd, XReg rs);

    /** @{ Loads and stores: address is x[base] + offset. */
    ProgramBuilder &lb(XReg rd, XReg base, std::int64_t off);
    ProgramBuilder &lbu(XReg rd, XReg base, std::int64_t off);
    ProgramBuilder &lh(XReg rd, XReg base, std::int64_t off);
    ProgramBuilder &lhu(XReg rd, XReg base, std::int64_t off);
    ProgramBuilder &lw(XReg rd, XReg base, std::int64_t off);
    ProgramBuilder &lwu(XReg rd, XReg base, std::int64_t off);
    ProgramBuilder &ld(XReg rd, XReg base, std::int64_t off);
    ProgramBuilder &sb(XReg src, XReg base, std::int64_t off);
    ProgramBuilder &sh(XReg src, XReg base, std::int64_t off);
    ProgramBuilder &sw(XReg src, XReg base, std::int64_t off);
    ProgramBuilder &sd(XReg src, XReg base, std::int64_t off);
    ProgramBuilder &fld(FReg rd, XReg base, std::int64_t off);
    ProgramBuilder &fsd(FReg src, XReg base, std::int64_t off);
    /** @} */

    /** @{ Conditional branches to a label. */
    ProgramBuilder &beq(XReg a, XReg b, const std::string &target);
    ProgramBuilder &bne(XReg a, XReg b, const std::string &target);
    ProgramBuilder &blt(XReg a, XReg b, const std::string &target);
    ProgramBuilder &bge(XReg a, XReg b, const std::string &target);
    ProgramBuilder &bltu(XReg a, XReg b, const std::string &target);
    ProgramBuilder &bgeu(XReg a, XReg b, const std::string &target);
    /** @} */

    /** @{ Unconditional control flow. */
    ProgramBuilder &jal(XReg rd, const std::string &target);
    ProgramBuilder &j(const std::string &target);  //!< jal x0, target
    ProgramBuilder &jalr(XReg rd, XReg base, std::int64_t off);
    ProgramBuilder &ret(XReg link);                //!< jalr x0, link, 0
    /** @} */

    /** @{ Double-precision floating point. */
    ProgramBuilder &fadd(FReg rd, FReg a, FReg b);
    ProgramBuilder &fsub(FReg rd, FReg a, FReg b);
    ProgramBuilder &fmul(FReg rd, FReg a, FReg b);
    ProgramBuilder &fdiv(FReg rd, FReg a, FReg b);
    ProgramBuilder &fsqrt(FReg rd, FReg a);
    ProgramBuilder &fmin(FReg rd, FReg a, FReg b);
    ProgramBuilder &fmax(FReg rd, FReg a, FReg b);
    ProgramBuilder &fneg(FReg rd, FReg a);
    ProgramBuilder &fabs_(FReg rd, FReg a);
    /** rd <- a * b + rd. */
    ProgramBuilder &fmadd(FReg rd, FReg a, FReg b);
    ProgramBuilder &fcvtDL(FReg rd, XReg a);   //!< int -> double
    ProgramBuilder &fcvtLD(XReg rd, FReg a);   //!< double -> int
    ProgramBuilder &fmvXD(XReg rd, FReg a);    //!< raw bits fp -> int
    ProgramBuilder &fmvDX(FReg rd, XReg a);    //!< raw bits int -> fp
    ProgramBuilder &feq(XReg rd, FReg a, FReg b);
    ProgramBuilder &flt(XReg rd, FReg a, FReg b);
    ProgramBuilder &fle(XReg rd, FReg a, FReg b);
    /** @} */

    /** @{ Miscellaneous. */
    ProgramBuilder &nop();
    ProgramBuilder &syscall(XReg rd, XReg arg);
    ProgramBuilder &halt();
    /** @} */

    /** @{ Initial data image. */
    ProgramBuilder &data64(Addr addr, std::uint64_t value);
    ProgramBuilder &dataF64(Addr addr, double value);
    /** @} */

    /**
     * Declare a data region [base, base+bytes) as part of the
     * workload's static memory footprint.  Initialized data emitted
     * via data64()/dataF64() is derived automatically by the
     * analyses; footprint() is for uninitialized scratch and output
     * regions the program writes at runtime.
     */
    ProgramBuilder &footprint(Addr base, std::uint64_t bytes,
                              const std::string &name = "");

    /** Current instruction count (for code-size shaping). */
    std::size_t codeSize() const { return code_.size(); }

    /**
     * Resolve all label references and produce the immutable image.
     * Throws BuildError listing every duplicate label definition and
     * every undefined label reference (with instruction indices).
     */
    Program build();

  private:
    ProgramBuilder &emit(Opcode op, unsigned rd, unsigned rs1,
                         unsigned rs2, std::int64_t imm);
    ProgramBuilder &emitBranch(Opcode op, unsigned rs1, unsigned rs2,
                               const std::string &target);

    struct Fixup
    {
        std::size_t index;
        std::string target;
    };

    std::string name_;
    std::vector<Instruction> code_;
    std::vector<DataInit> data_;
    std::map<std::string, std::size_t> labels_;
    std::vector<Fixup> fixups_;
    std::vector<MemRegion> regions_;
    std::vector<std::string> errors_;
};

} // namespace isa
} // namespace paradox

#endif // PARADOX_ISA_BUILDER_HH
