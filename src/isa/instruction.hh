/**
 * @file
 * The PDX64 instruction word and typed register handles.
 */

#ifndef PARADOX_ISA_INSTRUCTION_HH
#define PARADOX_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "isa/opcode.hh"

namespace paradox
{
namespace isa
{

/** Number of integer registers (x0 is hard-wired to zero). */
constexpr unsigned numIntRegs = 32;

/** Number of double-precision FP registers. */
constexpr unsigned numFpRegs = 32;

/** Bytes occupied by one encoded instruction (for I-cache modelling). */
constexpr unsigned instBytes = 4;

/** Typed handle for an integer register, for builder type safety. */
struct XReg
{
    std::uint8_t idx;
    constexpr explicit XReg(unsigned i = 0) : idx(std::uint8_t(i)) {}
    constexpr bool operator==(const XReg &) const = default;
};

/** Typed handle for a floating-point register. */
struct FReg
{
    std::uint8_t idx;
    constexpr explicit FReg(unsigned i = 0) : idx(std::uint8_t(i)) {}
    constexpr bool operator==(const FReg &) const = default;
};

/** The always-zero integer register. */
constexpr XReg xzero{0};

/**
 * One decoded instruction.
 *
 * Register fields index either the integer or the FP file depending
 * on the opcode's semantics; @c imm carries immediates, shift
 * amounts, and branch displacements (in instructions).
 */
struct Instruction
{
    Opcode op = Opcode::NOP;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::int64_t imm = 0;

    /** Static properties of this instruction's opcode. */
    const InstInfo &info() const { return instInfo(op); }

    /** Render for diagnostics, e.g. "add x3, x1, x2". */
    std::string toString() const;
};

} // namespace isa
} // namespace paradox

#endif // PARADOX_ISA_INSTRUCTION_HH
