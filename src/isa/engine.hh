/**
 * @file
 * The redesigned execution API: an Engine owns decode, fetch and
 * single-instruction step for one Program, and returns a compact
 * CommitRecord that every consumer (out-of-order main-core timing,
 * checker replay, the system commit loop) interprets through one
 * shared vocabulary instead of re-deriving operand roles from raw
 * opcodes.
 *
 * Two engines implement the interface:
 *
 *  - ReferenceEngine wraps the legacy single-step isa::step().  It
 *    re-decodes every instruction on every step and exists as the
 *    semantic oracle for differential testing.
 *  - DecodedEngine (decoded.hh) executes a pre-decoded micro-op
 *    image with a threaded-dispatch inner loop.  It is the default
 *    production engine.
 *
 * Both are parameterized only by MemIf, mirroring how ParaMedic's
 * main and checker cores execute the same committed instruction
 * stream along different data paths.
 */

#ifndef PARADOX_ISA_ENGINE_HH
#define PARADOX_ISA_ENGINE_HH

#include <memory>
#include <string>

#include "isa/executor.hh"

namespace paradox
{
namespace isa
{

/**
 * @{
 * Encoded source-register operands.
 *
 * One byte per source: srcNone when the operand slot is unused,
 * otherwise the register index with srcFpBit set when the index
 * names the FP file.  The encoding is produced once at decode time
 * (decodeSources) so timing models can walk a commit record's
 * sources with a uniform loop instead of re-deriving per-opcode
 * operand roles (the logic previously duplicated across
 * main_core.cc and checker_replay.cc).
 */
constexpr std::uint8_t srcNone = 0xff;
constexpr std::uint8_t srcFpBit = 0x80;
constexpr std::uint8_t srcIdxMask = 0x7f;

constexpr bool srcIsFp(std::uint8_t s) { return (s & srcFpBit) != 0; }
constexpr unsigned srcIdx(std::uint8_t s) { return s & srcIdxMask; }
/** @} */

/** The three encoded source operands of one instruction. */
struct SourceRegs
{
    std::uint8_t a = srcNone;  //!< first source
    std::uint8_t b = srcNone;  //!< second source
    std::uint8_t c = srcNone;  //!< third source (FMADD accumulator)
};

/**
 * Operand roles of @p inst, exactly as the register-dependency
 * scoreboard consumes them.  This is decode-time metadata: the
 * DecodedEngine bakes it into its micro-ops, the ReferenceEngine
 * computes it per step.
 */
SourceRegs decodeSources(const Instruction &inst);

/**
 * One committed instruction, as reported by an Engine.
 *
 * The functional-outcome fields are inherited from ExecResult (the
 * reference executor's output) so the two engines are comparable
 * field-for-field; the extensions carry decode-time metadata that
 * timing models previously re-derived from the raw instruction.
 */
struct CommitRecord : ExecResult
{
    const Instruction *inst = nullptr;  //!< fetched word; null if !valid

    /** Encoded source registers (see decodeSources). */
    std::uint8_t srcA = srcNone;
    std::uint8_t srcB = srcNone;
    std::uint8_t srcC = srcNone;

    /** Field-wise equality of the functional outcome + metadata. */
    bool
    sameAs(const CommitRecord &o) const
    {
        return valid == o.valid && halted == o.halted && op == o.op &&
               cls == o.cls && pc == o.pc && nextPc == o.nextPc &&
               isLoad == o.isLoad && isStore == o.isStore &&
               memAddr == o.memAddr && memSize == o.memSize &&
               loadValue == o.loadValue && storeValue == o.storeValue &&
               storeOld == o.storeOld && isBranch == o.isBranch &&
               isJump == o.isJump && taken == o.taken &&
               wroteInt == o.wroteInt && wroteFp == o.wroteFp &&
               rd == o.rd && destValue == o.destValue &&
               srcA == o.srcA && srcB == o.srcB && srcC == o.srcC;
    }
};

/**
 * Wrap a legacy (instruction, ExecResult) pair as a CommitRecord,
 * deriving the decode-time metadata.  Bridge for callers that build
 * results by hand (unit tests, microbenchmarks).
 */
CommitRecord makeCommitRecord(const Instruction &inst,
                              const ExecResult &r);

/**
 * What the *next* step would do to memory, computed without
 * executing it.  The commit loop uses this to decide segment cuts
 * (would the load-store log overflow?) before execution, replacing
 * the old execute/undo/re-execute dance.
 */
struct MemPeek
{
    bool valid = false;    //!< fetch at state.pc() would succeed
    bool isLoad = false;
    bool isStore = false;
    Addr addr = 0;         //!< effective address (when isLoad/isStore)
    unsigned size = 0;     //!< access bytes (when isLoad/isStore)
};

/** Which execution engine implementation to use. */
enum class EngineKind : std::uint8_t
{
    Reference,  //!< legacy per-step decode (semantic oracle)
    Decoded,    //!< pre-decoded micro-ops, threaded dispatch (default)
};

/** Stable name of @p kind ("reference" / "decoded"). */
const char *engineKindName(EngineKind kind);

/** Parse an engine name; returns false on unknown names. */
bool parseEngineKind(const std::string &name, EngineKind &out);

/**
 * Execution engine for one Program.
 *
 * The engine owns fetch and decode; callers own the architectural
 * state and the memory, so one engine can serve several state/memory
 * pairs (the commit loop and the differential tests both rely on
 * this).  step() executes the instruction at state.pc() and returns
 * the commit record; a wild fetch returns valid == false with the
 * state unchanged.
 */
class Engine
{
  public:
    virtual ~Engine() = default;

    virtual EngineKind kind() const = 0;

    /** The program this engine executes. */
    const Program &program() const { return prog_; }

    /**
     * Apply the program's initial data image to @p mem and
     * zero-initialize @p state at the entry point.
     */
    void reset(ArchState &state, MemIf &mem) const;

    /** Memory behaviour of the instruction at state.pc(). */
    virtual MemPeek peekMem(const ArchState &state) const = 0;

    /** Execute one instruction, updating @p state (including pc). */
    virtual CommitRecord step(ArchState &state, MemIf &mem) = 0;

  protected:
    explicit Engine(const Program &prog) : prog_(prog) {}

    const Program &prog_;
};

/** Construct an engine of @p kind over @p prog. */
std::unique_ptr<Engine> makeEngine(EngineKind kind, const Program &prog);

/**
 * The legacy single-step executor behind the Engine interface.
 * Re-decodes on every step; kept as the reference semantics for
 * differential testing against DecodedEngine.
 */
class ReferenceEngine final : public Engine
{
  public:
    explicit ReferenceEngine(const Program &prog) : Engine(prog) {}

    EngineKind kind() const override { return EngineKind::Reference; }
    MemPeek peekMem(const ArchState &state) const override;
    CommitRecord step(ArchState &state, MemIf &mem) override;
};

} // namespace isa
} // namespace paradox

#endif // PARADOX_ISA_ENGINE_HH
