#include "isa/instruction.hh"

#include <sstream>

namespace paradox
{
namespace isa
{

std::string
Instruction::toString() const
{
    const InstInfo &ii = info();
    std::ostringstream os;
    os << ii.mnemonic;
    const char *dpfx = ii.writesFpReg ? " f" : " x";
    const char *spfx = ii.readsFp ? " f" : " x";
    if (ii.writesIntReg || ii.writesFpReg)
        os << dpfx << unsigned(rd) << ",";
    if (ii.isLoad || ii.isStore) {
        if (ii.isStore)
            os << spfx << unsigned(rs2) << ",";
        os << " " << imm << "(x" << unsigned(rs1) << ")";
    } else if (ii.isBranch) {
        os << " x" << unsigned(rs1) << ", x" << unsigned(rs2)
           << ", @" << imm;
    } else if (ii.isJump) {
        os << " @" << imm;
    } else {
        os << spfx << unsigned(rs1) << "," << spfx << unsigned(rs2)
           << ", " << imm;
    }
    return os.str();
}

} // namespace isa
} // namespace paradox
