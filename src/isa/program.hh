/**
 * @file
 * A loaded PDX64 program: code image plus initial data image.
 */

#ifndef PARADOX_ISA_PROGRAM_HH
#define PARADOX_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"
#include "sim/types.hh"

namespace paradox
{
namespace isa
{

/** A (address, 64-bit value) initial-data cell. */
struct DataInit
{
    Addr addr;
    std::uint64_t value;
};

/**
 * An immutable program image.
 *
 * Code lives at byte address 0 upward, @c instBytes per instruction;
 * data initializers are applied to the simulated memory before the
 * run.  Programs are produced by ProgramBuilder.
 */
class Program
{
  public:
    Program() = default;
    Program(std::string name, std::vector<Instruction> code,
            std::vector<DataInit> data)
        : name_(std::move(name)), code_(std::move(code)),
          data_(std::move(data))
    {}

    const std::string &name() const { return name_; }

    /** Number of instructions in the image. */
    std::size_t size() const { return code_.size(); }

    /** Code footprint in bytes (drives I-cache behaviour). */
    std::size_t codeBytes() const { return code_.size() * instBytes; }

    /**
     * Fetch the instruction at byte address @p pc.
     * @return nullptr when @p pc is outside the image (a wild jump).
     */
    const Instruction *
    fetch(Addr pc) const
    {
        std::size_t idx = pc / instBytes;
        if (pc % instBytes != 0 || idx >= code_.size())
            return nullptr;
        return &code_[idx];
    }

    /** All instructions, for static analyses and I-cache warm-up. */
    const std::vector<Instruction> &code() const { return code_; }

    /** Initial data image. */
    const std::vector<DataInit> &data() const { return data_; }

  private:
    std::string name_;
    std::vector<Instruction> code_;
    std::vector<DataInit> data_;
};

} // namespace isa
} // namespace paradox

#endif // PARADOX_ISA_PROGRAM_HH
