/**
 * @file
 * A loaded PDX64 program: code image plus initial data image.
 */

#ifndef PARADOX_ISA_PROGRAM_HH
#define PARADOX_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/instruction.hh"
#include "sim/types.hh"

namespace paradox
{
namespace isa
{

/** A (address, 64-bit value) initial-data cell. */
struct DataInit
{
    Addr addr;
    std::uint64_t value;
};

/**
 * A declared data region: [base, base + size) bytes.
 *
 * Workloads declare their static memory footprint (input arrays,
 * scratch tables, output cells) so static analysis can verify that
 * every constant-addressable access lands inside it.
 */
struct MemRegion
{
    Addr base;
    std::uint64_t size;
    std::string name;

    bool contains(Addr addr, unsigned bytes) const
    {
        return addr >= base && bytes <= size &&
               addr - base <= size - bytes;
    }
};

/**
 * An immutable program image.
 *
 * Code lives at byte address 0 upward, @c instBytes per instruction;
 * data initializers are applied to the simulated memory before the
 * run.  Programs are produced by ProgramBuilder, which also records
 * assembly-level metadata (label positions, declared footprint) for
 * diagnostics and static analysis.
 */
class Program
{
  public:
    Program() = default;
    Program(std::string name, std::vector<Instruction> code,
            std::vector<DataInit> data,
            std::map<std::string, std::size_t> labels = {},
            std::vector<MemRegion> regions = {},
            std::vector<std::string> buildWarnings = {})
        : name_(std::move(name)), code_(std::move(code)),
          data_(std::move(data)), labels_(std::move(labels)),
          regions_(std::move(regions)),
          buildWarnings_(std::move(buildWarnings))
    {}

    const std::string &name() const { return name_; }

    /** Number of instructions in the image. */
    std::size_t size() const { return code_.size(); }

    /** Code footprint in bytes (drives I-cache behaviour). */
    std::size_t codeBytes() const { return code_.size() * instBytes; }

    /**
     * Fetch the instruction at byte address @p pc.
     * @return nullptr when @p pc is outside the image (a wild jump).
     */
    const Instruction *
    fetch(Addr pc) const
    {
        std::size_t idx = pc / instBytes;
        if (pc % instBytes != 0 || idx >= code_.size())
            return nullptr;
        return &code_[idx];
    }

    /** All instructions, for static analyses and I-cache warm-up. */
    const std::vector<Instruction> &code() const { return code_; }

    /** Initial data image. */
    const std::vector<DataInit> &data() const { return data_; }

    /** Label name -> instruction index, as written in the builder. */
    const std::map<std::string, std::size_t> &labels() const
    { return labels_; }

    /** Declared data regions (may be empty for legacy programs). */
    const std::vector<MemRegion> &regions() const { return regions_; }

    /**
     * Suspicious-but-legal conditions the builder noticed (e.g.
     * overlapping declared footprint regions).  Unlike BuildError
     * these do not reject the program; the linter surfaces them as
     * warnings.
     */
    const std::vector<std::string> &buildWarnings() const
    { return buildWarnings_; }

    /**
     * The nearest label at or before instruction @p idx, for
     * source-located diagnostics ("in 'kern_done'+2").  Empty string
     * when no label precedes @p idx.
     */
    std::string
    labelAt(std::size_t idx) const
    {
        std::string best;
        std::size_t bestPos = 0;
        bool found = false;
        for (const auto &[name, pos] : labels_) {
            if (pos <= idx && (!found || pos >= bestPos)) {
                best = name;
                bestPos = pos;
                found = true;
            }
        }
        if (!found)
            return "";
        std::size_t delta = idx - bestPos;
        return delta == 0 ? best : best + "+" + std::to_string(delta);
    }

  private:
    std::string name_;
    std::vector<Instruction> code_;
    std::vector<DataInit> data_;
    std::map<std::string, std::size_t> labels_;
    std::vector<MemRegion> regions_;
    std::vector<std::string> buildWarnings_;
};

} // namespace isa
} // namespace paradox

#endif // PARADOX_ISA_PROGRAM_HH
