#include "isa/engine.hh"

#include "isa/decoded.hh"

namespace paradox
{
namespace isa
{

SourceRegs
decodeSources(const Instruction &inst)
{
    SourceRegs s;
    const InstInfo &ii = instInfo(inst.op);
    if (inst.op == Opcode::FSD) {
        // FP store: integer base address + FP data source.
        s.a = inst.rs1;
        s.b = std::uint8_t(inst.rs2 | srcFpBit);
    } else if (ii.readsFp) {
        s.a = std::uint8_t(inst.rs1 | srcFpBit);
        if (inst.op != Opcode::FSQRT && inst.op != Opcode::FNEG &&
            inst.op != Opcode::FABS && inst.op != Opcode::FCVT_L_D &&
            inst.op != Opcode::FMV_X_D)
            s.b = std::uint8_t(inst.rs2 | srcFpBit);
        if (inst.op == Opcode::FMADD)
            s.c = std::uint8_t(inst.rd | srcFpBit);
    } else {
        // Integer ops (including loads, stores, branches and the
        // int->FP moves) source the integer file; unused rs fields
        // are 0 and x0 is always ready, so keeping them preserves
        // the scoreboard behaviour exactly.
        s.a = inst.rs1;
        s.b = inst.rs2;
    }
    return s;
}

CommitRecord
makeCommitRecord(const Instruction &inst, const ExecResult &r)
{
    CommitRecord rec;
    static_cast<ExecResult &>(rec) = r;
    rec.inst = &inst;
    const SourceRegs s = decodeSources(inst);
    rec.srcA = s.a;
    rec.srcB = s.b;
    rec.srcC = s.c;
    return rec;
}

const char *
engineKindName(EngineKind kind)
{
    switch (kind) {
      case EngineKind::Reference: return "reference";
      case EngineKind::Decoded: return "decoded";
    }
    return "?";
}

bool
parseEngineKind(const std::string &name, EngineKind &out)
{
    if (name == "reference") {
        out = EngineKind::Reference;
    } else if (name == "decoded") {
        out = EngineKind::Decoded;
    } else {
        return false;
    }
    return true;
}

void
Engine::reset(ArchState &state, MemIf &mem) const
{
    loadProgram(prog_, state, mem);
}

MemPeek
ReferenceEngine::peekMem(const ArchState &state) const
{
    MemPeek p;
    const Instruction *inst = prog_.fetch(state.pc());
    if (!inst)
        return p;
    p.valid = true;
    const InstInfo &ii = inst->info();
    if (ii.isLoad || ii.isStore) {
        p.isLoad = ii.isLoad;
        p.isStore = ii.isStore;
        p.addr = state.readX(inst->rs1) + std::uint64_t(inst->imm);
        p.size = ii.memSize;
    }
    return p;
}

CommitRecord
ReferenceEngine::step(ArchState &state, MemIf &mem)
{
    const Addr pc = state.pc();
    CommitRecord r;
    static_cast<ExecResult &>(r) = isa::step(prog_, state, mem);
    if (!r.valid)
        return r;
    r.inst = prog_.fetch(pc);
    const SourceRegs s = decodeSources(*r.inst);
    r.srcA = s.a;
    r.srcB = s.b;
    r.srcC = s.c;
    return r;
}

std::unique_ptr<Engine>
makeEngine(EngineKind kind, const Program &prog)
{
    if (kind == EngineKind::Reference)
        return std::make_unique<ReferenceEngine>(prog);
    return std::make_unique<DecodedEngine>(prog);
}

} // namespace isa
} // namespace paradox
