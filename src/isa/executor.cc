#include "isa/executor.hh"

#include <bit>
#include <cmath>
#include <limits>

#include "sim/logging.hh"

namespace paradox
{
namespace isa
{

namespace
{

std::int64_t
asSigned(std::uint64_t v)
{
    return static_cast<std::int64_t>(v);
}

std::uint64_t
signExtend(std::uint64_t v, unsigned bytes)
{
    const unsigned bits = bytes * 8;
    if (bits >= 64)
        return v;
    const std::uint64_t sign = std::uint64_t(1) << (bits - 1);
    const std::uint64_t mask = (std::uint64_t(1) << bits) - 1;
    v &= mask;
    return (v ^ sign) - sign;
}

std::uint64_t
zeroExtend(std::uint64_t v, unsigned bytes)
{
    const unsigned bits = bytes * 8;
    if (bits >= 64)
        return v;
    return v & ((std::uint64_t(1) << bits) - 1);
}

/** Signed 128-bit high multiply via __int128. */
std::uint64_t
mulHigh(std::uint64_t a, std::uint64_t b)
{
    __int128 prod = static_cast<__int128>(asSigned(a)) *
                    static_cast<__int128>(asSigned(b));
    return static_cast<std::uint64_t>(prod >> 64);
}

} // namespace

void
loadProgram(const Program &prog, ArchState &state, MemIf &mem)
{
    state.reset(0);
    for (const auto &cell : prog.data())
        mem.write(cell.addr, 8, cell.value);
}

ExecResult
step(const Program &prog, ArchState &state, MemIf &mem)
{
    ExecResult r;
    r.pc = state.pc();

    const Instruction *inst = prog.fetch(state.pc());
    if (!inst)
        return r;  // valid stays false: wild fetch

    const InstInfo &ii = inst->info();
    r.valid = true;
    r.op = inst->op;
    r.cls = ii.cls;
    r.rd = inst->rd;

    Addr next_pc = state.pc() + instBytes;

    const std::uint64_t a = state.readX(inst->rs1);
    const std::uint64_t b = state.readX(inst->rs2);
    const double fa = state.readF(inst->rs1);
    const double fb = state.readF(inst->rs2);
    const std::int64_t imm = inst->imm;

    auto writeX = [&](std::uint64_t v) {
        state.writeX(inst->rd, v);
        r.wroteInt = inst->rd != 0;
        r.destValue = v;
    };
    auto writeF = [&](double v) {
        state.writeF(inst->rd, v);
        r.wroteFp = true;
        r.destValue = state.readFBits(inst->rd);
        if (std::isinf(v) && !std::isinf(fa) && !std::isinf(fb))
            state.orFflags(ArchState::flagOverflow);
    };

    auto doLoad = [&](unsigned size, bool sign_extend, bool to_fp) {
        Addr addr = a + imm;
        std::uint64_t raw = mem.read(addr, size);
        std::uint64_t v =
            sign_extend ? signExtend(raw, size) : zeroExtend(raw, size);
        r.isLoad = true;
        r.memAddr = addr;
        r.memSize = size;
        r.loadValue = raw;
        if (to_fp) {
            state.writeFBits(inst->rd, v);
            r.wroteFp = true;
            r.destValue = v;
        } else {
            writeX(v);
        }
    };

    auto doStore = [&](unsigned size, bool from_fp) {
        Addr addr = a + imm;
        std::uint64_t v = from_fp ? state.readFBits(inst->rs2) : b;
        v = zeroExtend(v, size);
        std::uint64_t old = mem.write(addr, size, v);
        r.isStore = true;
        r.memAddr = addr;
        r.memSize = size;
        r.storeValue = v;
        r.storeOld = old;
    };

    auto doBranch = [&](bool take) {
        r.isBranch = true;
        r.taken = take;
        if (take)
            next_pc = static_cast<Addr>(imm);
    };

    switch (inst->op) {
      case Opcode::ADD:  writeX(a + b); break;
      case Opcode::SUB:  writeX(a - b); break;
      case Opcode::AND_: writeX(a & b); break;
      case Opcode::OR_:  writeX(a | b); break;
      case Opcode::XOR_: writeX(a ^ b); break;
      case Opcode::SLL:  writeX(a << (b & 63)); break;
      case Opcode::SRL:  writeX(a >> (b & 63)); break;
      case Opcode::SRA:  writeX(std::uint64_t(asSigned(a) >> (b & 63)));
        break;
      case Opcode::SLT:  writeX(asSigned(a) < asSigned(b) ? 1 : 0); break;
      case Opcode::SLTU: writeX(a < b ? 1 : 0); break;
      case Opcode::MUL:  writeX(a * b); break;
      case Opcode::MULH: writeX(mulHigh(a, b)); break;
      case Opcode::DIV:
        if (b == 0) {
            writeX(~std::uint64_t(0));
        } else if (asSigned(a) == std::numeric_limits<std::int64_t>::min()
                   && asSigned(b) == -1) {
            writeX(a);  // overflow: result is INT64_MIN
        } else {
            writeX(std::uint64_t(asSigned(a) / asSigned(b)));
        }
        break;
      case Opcode::DIVU: writeX(b == 0 ? ~std::uint64_t(0) : a / b); break;
      case Opcode::REM:
        if (b == 0) {
            writeX(a);
        } else if (asSigned(a) == std::numeric_limits<std::int64_t>::min()
                   && asSigned(b) == -1) {
            writeX(0);
        } else {
            writeX(std::uint64_t(asSigned(a) % asSigned(b)));
        }
        break;
      case Opcode::REMU: writeX(b == 0 ? a : a % b); break;

      case Opcode::ADDI: writeX(a + std::uint64_t(imm)); break;
      case Opcode::ANDI: writeX(a & std::uint64_t(imm)); break;
      case Opcode::ORI:  writeX(a | std::uint64_t(imm)); break;
      case Opcode::XORI: writeX(a ^ std::uint64_t(imm)); break;
      case Opcode::SLLI: writeX(a << (imm & 63)); break;
      case Opcode::SRLI: writeX(a >> (imm & 63)); break;
      case Opcode::SRAI: writeX(std::uint64_t(asSigned(a) >> (imm & 63)));
        break;
      case Opcode::SLTI: writeX(asSigned(a) < imm ? 1 : 0); break;
      case Opcode::LDI:  writeX(std::uint64_t(imm)); break;

      case Opcode::LB:  doLoad(1, true, false); break;
      case Opcode::LBU: doLoad(1, false, false); break;
      case Opcode::LH:  doLoad(2, true, false); break;
      case Opcode::LHU: doLoad(2, false, false); break;
      case Opcode::LW:  doLoad(4, true, false); break;
      case Opcode::LWU: doLoad(4, false, false); break;
      case Opcode::LD:  doLoad(8, false, false); break;
      case Opcode::FLD: doLoad(8, false, true); break;

      case Opcode::SB: doStore(1, false); break;
      case Opcode::SH: doStore(2, false); break;
      case Opcode::SW: doStore(4, false); break;
      case Opcode::SD: doStore(8, false); break;
      case Opcode::FSD: doStore(8, true); break;

      case Opcode::BEQ:  doBranch(a == b); break;
      case Opcode::BNE:  doBranch(a != b); break;
      case Opcode::BLT:  doBranch(asSigned(a) < asSigned(b)); break;
      case Opcode::BGE:  doBranch(asSigned(a) >= asSigned(b)); break;
      case Opcode::BLTU: doBranch(a < b); break;
      case Opcode::BGEU: doBranch(a >= b); break;

      case Opcode::JAL:
        writeX(state.pc() + instBytes);
        r.isJump = true;
        r.taken = true;
        next_pc = static_cast<Addr>(imm);
        break;
      case Opcode::JALR:
        writeX(state.pc() + instBytes);
        r.isJump = true;
        r.taken = true;
        next_pc = (a + std::uint64_t(imm)) & ~Addr(instBytes - 1);
        break;

      case Opcode::FADD: writeF(fa + fb); break;
      case Opcode::FSUB: writeF(fa - fb); break;
      case Opcode::FMUL: writeF(fa * fb); break;
      case Opcode::FDIV:
        if (fb == 0.0)
            state.orFflags(ArchState::flagDivZero);
        writeF(fa / fb);
        break;
      case Opcode::FSQRT:
        if (fa < 0.0)
            state.orFflags(ArchState::flagInvalid);
        writeF(std::sqrt(fa));
        break;
      case Opcode::FMIN: writeF(std::fmin(fa, fb)); break;
      case Opcode::FMAX: writeF(std::fmax(fa, fb)); break;
      case Opcode::FNEG: writeF(-fa); break;
      case Opcode::FABS: writeF(std::fabs(fa)); break;
      case Opcode::FMADD:
        // rd <- rs1 * rs2 + rd (rd doubles as accumulator source).
        writeF(fa * fb + state.readF(inst->rd));
        break;
      case Opcode::FCVT_D_L:
        writeF(static_cast<double>(asSigned(a)));
        break;
      case Opcode::FCVT_L_D:
        if (std::isnan(fa)) {
            state.orFflags(ArchState::flagInvalid);
            writeX(0);
        } else if (fa >= 9.2233720368547758e18) {
            writeX(std::uint64_t(std::numeric_limits<std::int64_t>::max()));
        } else if (fa <= -9.2233720368547758e18) {
            writeX(std::uint64_t(std::numeric_limits<std::int64_t>::min()));
        } else {
            writeX(std::uint64_t(static_cast<std::int64_t>(fa)));
        }
        break;
      case Opcode::FMV_X_D: writeX(state.readFBits(inst->rs1)); break;
      case Opcode::FMV_D_X:
        state.writeFBits(inst->rd, a);
        r.wroteFp = true;
        r.destValue = a;
        break;
      case Opcode::FEQ:  writeX(fa == fb ? 1 : 0); break;
      case Opcode::FLT_: writeX(fa < fb ? 1 : 0); break;
      case Opcode::FLE:  writeX(fa <= fb ? 1 : 0); break;

      case Opcode::NOP: break;
      case Opcode::SYSCALL:
        // Deterministic stand-in for a rollback-able syscall: the
        // "kernel" hashes the argument register into the result.
        writeX((a ^ 0x53594e4353595343ULL) * 0x9e3779b97f4a7c15ULL);
        break;
      case Opcode::HALT:
        r.halted = true;
        break;

      default:
        panic("executor: unhandled opcode");
    }

    r.nextPc = next_pc;
    state.setPc(next_pc);
    return r;
}

} // namespace isa
} // namespace paradox
