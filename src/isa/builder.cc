#include "isa/builder.hh"

#include <algorithm>
#include <bit>
#include <sstream>

#include "sim/logging.hh"

namespace paradox
{
namespace isa
{

std::string
BuildError::join(const std::vector<std::string> &messages)
{
    std::string all = "ProgramBuilder: " +
                      std::to_string(messages.size()) + " error(s)";
    for (const auto &msg : messages)
        all += "\n  " + msg;
    return all;
}

BuildError::BuildError(std::vector<std::string> messages)
    : std::runtime_error(join(messages)), messages_(std::move(messages))
{
}

ProgramBuilder &
ProgramBuilder::emit(Opcode op, unsigned rd, unsigned rs1, unsigned rs2,
                     std::int64_t imm)
{
    if (rd >= numIntRegs || rs1 >= numIntRegs || rs2 >= numIntRegs)
        fatal("ProgramBuilder: register index out of range");
    Instruction inst;
    inst.op = op;
    inst.rd = std::uint8_t(rd);
    inst.rs1 = std::uint8_t(rs1);
    inst.rs2 = std::uint8_t(rs2);
    inst.imm = imm;
    code_.push_back(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::emitBranch(Opcode op, unsigned rs1, unsigned rs2,
                           const std::string &target)
{
    fixups_.push_back({code_.size(), target});
    return emit(op, 0, rs1, rs2, 0);
}

ProgramBuilder &
ProgramBuilder::label(const std::string &name)
{
    auto it = labels_.find(name);
    if (it != labels_.end()) {
        errors_.push_back("duplicate label '" + name +
                          "': first defined at instruction " +
                          std::to_string(it->second) +
                          ", redefined at instruction " +
                          std::to_string(code_.size()));
        return *this;  // keep the first definition
    }
    labels_[name] = code_.size();
    return *this;
}

// Integer register-register.
ProgramBuilder &ProgramBuilder::add(XReg rd, XReg a, XReg b)
{ return emit(Opcode::ADD, rd.idx, a.idx, b.idx, 0); }
ProgramBuilder &ProgramBuilder::sub(XReg rd, XReg a, XReg b)
{ return emit(Opcode::SUB, rd.idx, a.idx, b.idx, 0); }
ProgramBuilder &ProgramBuilder::and_(XReg rd, XReg a, XReg b)
{ return emit(Opcode::AND_, rd.idx, a.idx, b.idx, 0); }
ProgramBuilder &ProgramBuilder::or_(XReg rd, XReg a, XReg b)
{ return emit(Opcode::OR_, rd.idx, a.idx, b.idx, 0); }
ProgramBuilder &ProgramBuilder::xor_(XReg rd, XReg a, XReg b)
{ return emit(Opcode::XOR_, rd.idx, a.idx, b.idx, 0); }
ProgramBuilder &ProgramBuilder::sll(XReg rd, XReg a, XReg b)
{ return emit(Opcode::SLL, rd.idx, a.idx, b.idx, 0); }
ProgramBuilder &ProgramBuilder::srl(XReg rd, XReg a, XReg b)
{ return emit(Opcode::SRL, rd.idx, a.idx, b.idx, 0); }
ProgramBuilder &ProgramBuilder::sra(XReg rd, XReg a, XReg b)
{ return emit(Opcode::SRA, rd.idx, a.idx, b.idx, 0); }
ProgramBuilder &ProgramBuilder::slt(XReg rd, XReg a, XReg b)
{ return emit(Opcode::SLT, rd.idx, a.idx, b.idx, 0); }
ProgramBuilder &ProgramBuilder::sltu(XReg rd, XReg a, XReg b)
{ return emit(Opcode::SLTU, rd.idx, a.idx, b.idx, 0); }
ProgramBuilder &ProgramBuilder::mul(XReg rd, XReg a, XReg b)
{ return emit(Opcode::MUL, rd.idx, a.idx, b.idx, 0); }
ProgramBuilder &ProgramBuilder::mulh(XReg rd, XReg a, XReg b)
{ return emit(Opcode::MULH, rd.idx, a.idx, b.idx, 0); }
ProgramBuilder &ProgramBuilder::div(XReg rd, XReg a, XReg b)
{ return emit(Opcode::DIV, rd.idx, a.idx, b.idx, 0); }
ProgramBuilder &ProgramBuilder::divu(XReg rd, XReg a, XReg b)
{ return emit(Opcode::DIVU, rd.idx, a.idx, b.idx, 0); }
ProgramBuilder &ProgramBuilder::rem(XReg rd, XReg a, XReg b)
{ return emit(Opcode::REM, rd.idx, a.idx, b.idx, 0); }
ProgramBuilder &ProgramBuilder::remu(XReg rd, XReg a, XReg b)
{ return emit(Opcode::REMU, rd.idx, a.idx, b.idx, 0); }

// Integer register-immediate.
ProgramBuilder &ProgramBuilder::addi(XReg rd, XReg a, std::int64_t imm)
{ return emit(Opcode::ADDI, rd.idx, a.idx, 0, imm); }
ProgramBuilder &ProgramBuilder::andi(XReg rd, XReg a, std::int64_t imm)
{ return emit(Opcode::ANDI, rd.idx, a.idx, 0, imm); }
ProgramBuilder &ProgramBuilder::ori(XReg rd, XReg a, std::int64_t imm)
{ return emit(Opcode::ORI, rd.idx, a.idx, 0, imm); }
ProgramBuilder &ProgramBuilder::xori(XReg rd, XReg a, std::int64_t imm)
{ return emit(Opcode::XORI, rd.idx, a.idx, 0, imm); }
ProgramBuilder &ProgramBuilder::slli(XReg rd, XReg a, unsigned sh)
{ return emit(Opcode::SLLI, rd.idx, a.idx, 0, std::int64_t(sh & 63)); }
ProgramBuilder &ProgramBuilder::srli(XReg rd, XReg a, unsigned sh)
{ return emit(Opcode::SRLI, rd.idx, a.idx, 0, std::int64_t(sh & 63)); }
ProgramBuilder &ProgramBuilder::srai(XReg rd, XReg a, unsigned sh)
{ return emit(Opcode::SRAI, rd.idx, a.idx, 0, std::int64_t(sh & 63)); }
ProgramBuilder &ProgramBuilder::slti(XReg rd, XReg a, std::int64_t imm)
{ return emit(Opcode::SLTI, rd.idx, a.idx, 0, imm); }

ProgramBuilder &ProgramBuilder::ldi(XReg rd, std::uint64_t imm)
{ return emit(Opcode::LDI, rd.idx, 0, 0, std::int64_t(imm)); }
ProgramBuilder &ProgramBuilder::mv(XReg rd, XReg rs)
{ return addi(rd, rs, 0); }

// Loads and stores.
ProgramBuilder &ProgramBuilder::lb(XReg rd, XReg base, std::int64_t off)
{ return emit(Opcode::LB, rd.idx, base.idx, 0, off); }
ProgramBuilder &ProgramBuilder::lbu(XReg rd, XReg base, std::int64_t off)
{ return emit(Opcode::LBU, rd.idx, base.idx, 0, off); }
ProgramBuilder &ProgramBuilder::lh(XReg rd, XReg base, std::int64_t off)
{ return emit(Opcode::LH, rd.idx, base.idx, 0, off); }
ProgramBuilder &ProgramBuilder::lhu(XReg rd, XReg base, std::int64_t off)
{ return emit(Opcode::LHU, rd.idx, base.idx, 0, off); }
ProgramBuilder &ProgramBuilder::lw(XReg rd, XReg base, std::int64_t off)
{ return emit(Opcode::LW, rd.idx, base.idx, 0, off); }
ProgramBuilder &ProgramBuilder::lwu(XReg rd, XReg base, std::int64_t off)
{ return emit(Opcode::LWU, rd.idx, base.idx, 0, off); }
ProgramBuilder &ProgramBuilder::ld(XReg rd, XReg base, std::int64_t off)
{ return emit(Opcode::LD, rd.idx, base.idx, 0, off); }
ProgramBuilder &ProgramBuilder::sb(XReg src, XReg base, std::int64_t off)
{ return emit(Opcode::SB, 0, base.idx, src.idx, off); }
ProgramBuilder &ProgramBuilder::sh(XReg src, XReg base, std::int64_t off)
{ return emit(Opcode::SH, 0, base.idx, src.idx, off); }
ProgramBuilder &ProgramBuilder::sw(XReg src, XReg base, std::int64_t off)
{ return emit(Opcode::SW, 0, base.idx, src.idx, off); }
ProgramBuilder &ProgramBuilder::sd(XReg src, XReg base, std::int64_t off)
{ return emit(Opcode::SD, 0, base.idx, src.idx, off); }
ProgramBuilder &ProgramBuilder::fld(FReg rd, XReg base, std::int64_t off)
{ return emit(Opcode::FLD, rd.idx, base.idx, 0, off); }
ProgramBuilder &ProgramBuilder::fsd(FReg src, XReg base, std::int64_t off)
{ return emit(Opcode::FSD, 0, base.idx, src.idx, off); }

// Branches.
ProgramBuilder &ProgramBuilder::beq(XReg a, XReg b, const std::string &t)
{ return emitBranch(Opcode::BEQ, a.idx, b.idx, t); }
ProgramBuilder &ProgramBuilder::bne(XReg a, XReg b, const std::string &t)
{ return emitBranch(Opcode::BNE, a.idx, b.idx, t); }
ProgramBuilder &ProgramBuilder::blt(XReg a, XReg b, const std::string &t)
{ return emitBranch(Opcode::BLT, a.idx, b.idx, t); }
ProgramBuilder &ProgramBuilder::bge(XReg a, XReg b, const std::string &t)
{ return emitBranch(Opcode::BGE, a.idx, b.idx, t); }
ProgramBuilder &ProgramBuilder::bltu(XReg a, XReg b, const std::string &t)
{ return emitBranch(Opcode::BLTU, a.idx, b.idx, t); }
ProgramBuilder &ProgramBuilder::bgeu(XReg a, XReg b, const std::string &t)
{ return emitBranch(Opcode::BGEU, a.idx, b.idx, t); }

ProgramBuilder &
ProgramBuilder::jal(XReg rd, const std::string &target)
{
    fixups_.push_back({code_.size(), target});
    return emit(Opcode::JAL, rd.idx, 0, 0, 0);
}

ProgramBuilder &ProgramBuilder::j(const std::string &target)
{ return jal(xzero, target); }
ProgramBuilder &ProgramBuilder::jalr(XReg rd, XReg base, std::int64_t off)
{ return emit(Opcode::JALR, rd.idx, base.idx, 0, off); }
ProgramBuilder &ProgramBuilder::ret(XReg link)
{ return jalr(xzero, link, 0); }

// Floating point.
ProgramBuilder &ProgramBuilder::fadd(FReg rd, FReg a, FReg b)
{ return emit(Opcode::FADD, rd.idx, a.idx, b.idx, 0); }
ProgramBuilder &ProgramBuilder::fsub(FReg rd, FReg a, FReg b)
{ return emit(Opcode::FSUB, rd.idx, a.idx, b.idx, 0); }
ProgramBuilder &ProgramBuilder::fmul(FReg rd, FReg a, FReg b)
{ return emit(Opcode::FMUL, rd.idx, a.idx, b.idx, 0); }
ProgramBuilder &ProgramBuilder::fdiv(FReg rd, FReg a, FReg b)
{ return emit(Opcode::FDIV, rd.idx, a.idx, b.idx, 0); }
ProgramBuilder &ProgramBuilder::fsqrt(FReg rd, FReg a)
{ return emit(Opcode::FSQRT, rd.idx, a.idx, 0, 0); }
ProgramBuilder &ProgramBuilder::fmin(FReg rd, FReg a, FReg b)
{ return emit(Opcode::FMIN, rd.idx, a.idx, b.idx, 0); }
ProgramBuilder &ProgramBuilder::fmax(FReg rd, FReg a, FReg b)
{ return emit(Opcode::FMAX, rd.idx, a.idx, b.idx, 0); }
ProgramBuilder &ProgramBuilder::fneg(FReg rd, FReg a)
{ return emit(Opcode::FNEG, rd.idx, a.idx, 0, 0); }
ProgramBuilder &ProgramBuilder::fabs_(FReg rd, FReg a)
{ return emit(Opcode::FABS, rd.idx, a.idx, 0, 0); }
ProgramBuilder &ProgramBuilder::fmadd(FReg rd, FReg a, FReg b)
{ return emit(Opcode::FMADD, rd.idx, a.idx, b.idx, 0); }
ProgramBuilder &ProgramBuilder::fcvtDL(FReg rd, XReg a)
{ return emit(Opcode::FCVT_D_L, rd.idx, a.idx, 0, 0); }
ProgramBuilder &ProgramBuilder::fcvtLD(XReg rd, FReg a)
{ return emit(Opcode::FCVT_L_D, rd.idx, a.idx, 0, 0); }
ProgramBuilder &ProgramBuilder::fmvXD(XReg rd, FReg a)
{ return emit(Opcode::FMV_X_D, rd.idx, a.idx, 0, 0); }
ProgramBuilder &ProgramBuilder::fmvDX(FReg rd, XReg a)
{ return emit(Opcode::FMV_D_X, rd.idx, a.idx, 0, 0); }
ProgramBuilder &ProgramBuilder::feq(XReg rd, FReg a, FReg b)
{ return emit(Opcode::FEQ, rd.idx, a.idx, b.idx, 0); }
ProgramBuilder &ProgramBuilder::flt(XReg rd, FReg a, FReg b)
{ return emit(Opcode::FLT_, rd.idx, a.idx, b.idx, 0); }
ProgramBuilder &ProgramBuilder::fle(XReg rd, FReg a, FReg b)
{ return emit(Opcode::FLE, rd.idx, a.idx, b.idx, 0); }

// Miscellaneous.
ProgramBuilder &ProgramBuilder::nop()
{ return emit(Opcode::NOP, 0, 0, 0, 0); }
ProgramBuilder &ProgramBuilder::syscall(XReg rd, XReg arg)
{ return emit(Opcode::SYSCALL, rd.idx, arg.idx, 0, 0); }
ProgramBuilder &ProgramBuilder::halt()
{ return emit(Opcode::HALT, 0, 0, 0, 0); }

ProgramBuilder &
ProgramBuilder::data64(Addr addr, std::uint64_t value)
{
    data_.push_back({addr, value});
    return *this;
}

ProgramBuilder &
ProgramBuilder::dataF64(Addr addr, double value)
{
    return data64(addr, std::bit_cast<std::uint64_t>(value));
}

ProgramBuilder &
ProgramBuilder::footprint(Addr base, std::uint64_t bytes,
                          const std::string &name)
{
    regions_.push_back({base, bytes, name});
    return *this;
}

Program
ProgramBuilder::build()
{
    std::vector<std::string> errors = errors_;
    for (const auto &fixup : fixups_) {
        auto it = labels_.find(fixup.target);
        if (it == labels_.end()) {
            errors.push_back("undefined label '" + fixup.target +
                             "' referenced by instruction " +
                             std::to_string(fixup.index) + " in " +
                             name_);
            continue;
        }
        code_[fixup.index].imm =
            std::int64_t(it->second * instBytes);
    }
    if (!errors.empty())
        throw BuildError(std::move(errors));
    fixups_.clear();

    // Overlapping declared regions are legal (a workload may alias a
    // scratch window over an input array on purpose) but usually a
    // copy-paste mistake, so they are recorded as warnings rather
    // than rejected.  Sort a copy by base; any region starting before
    // its predecessor ends overlaps it.
    std::vector<std::string> warnings;
    std::vector<MemRegion> sorted = regions_;
    std::sort(sorted.begin(), sorted.end(),
              [](const MemRegion &a, const MemRegion &b) {
                  return a.base != b.base ? a.base < b.base
                                          : a.size > b.size;
              });
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
        const MemRegion &a = sorted[i];
        if (a.size == 0)
            continue;
        for (std::size_t j = i + 1; j < sorted.size(); ++j) {
            const MemRegion &b = sorted[j];
            if (b.base >= a.base + a.size)
                break;
            if (b.size == 0)
                continue;
            std::ostringstream os;
            os << "declared regions '" << a.name << "' [0x" << std::hex
               << a.base << ", 0x" << a.base + a.size << ") and '"
               << b.name << "' [0x" << b.base << ", 0x"
               << b.base + b.size << ") overlap in " << name_;
            warnings.push_back(os.str());
        }
    }
    return Program(name_, code_, data_, labels_, regions_,
                   std::move(warnings));
}

} // namespace isa
} // namespace paradox
