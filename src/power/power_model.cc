#include "power/power_model.hh"

#include "sim/logging.hh"

namespace paradox
{
namespace power
{

double
FrequencyVoltageModel::frequencyAt(double v) const
{
    double headroom = v - params_.vThreshold;
    if (headroom <= 0.0)
        return 0.0;
    return params_.fNominal * headroom /
           (params_.vNominal - params_.vThreshold);
}

double
FrequencyVoltageModel::voltageFor(double f) const
{
    return params_.vThreshold +
           (f / params_.fNominal) *
               (params_.vNominal - params_.vThreshold);
}

double
PowerModel::corePower(double v, double f) const
{
    const double vr = v / params_.vNominal;
    const double fr = f / params_.fNominal;
    const double dynamic = params_.dynamicFraction * vr * vr * fr;
    const double leakage = (1.0 - params_.dynamicFraction) * vr;
    return dynamic + leakage;
}

double
PowerModel::checkerPower(const double *wake_rates, unsigned n) const
{
    if (n == 0)
        return 0.0;
    const double per_core =
        params_.checkerComplexFraction / params_.checkerCount;
    double total = 0.0;
    for (unsigned i = 0; i < n; ++i) {
        double wake = wake_rates[i];
        total += per_core *
                 (wake + (1.0 - wake) * params_.gatedResidual);
    }
    return total;
}

double
PowerModel::checkerPowerAllAwake() const
{
    return params_.checkerComplexFraction;
}

void
EnergyAccumulator::addInterval(Tick dt, double v, double f,
                               double checker_power)
{
    const double seconds = ticksToSeconds(dt);
    energy_ += (model_.corePower(v, f) + checker_power) * seconds;
    voltSeconds_ += v * seconds;
    elapsed_ += dt;
}

double
EnergyAccumulator::averagePower() const
{
    const double seconds = ticksToSeconds(elapsed_);
    return seconds > 0.0 ? energy_ / seconds : 0.0;
}

double
EnergyAccumulator::averageVoltage() const
{
    const double seconds = ticksToSeconds(elapsed_);
    return seconds > 0.0 ? voltSeconds_ / seconds : 0.0;
}

void
EnergyAccumulator::reset()
{
    energy_ = 0.0;
    voltSeconds_ = 0.0;
    elapsed_ = 0;
}

double
edp(double average_power, Tick elapsed)
{
    const double t = ticksToSeconds(elapsed);
    return average_power * t * t;
}

double
edpRatio(double p, Tick t, double p0, Tick t0)
{
    if (p0 <= 0.0 || t0 == 0)
        panic("edpRatio: invalid baseline");
    return edp(p, t) / edp(p0, t0);
}

} // namespace power
} // namespace paradox
