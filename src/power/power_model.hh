/**
 * @file
 * Power, energy and EDP models (paper sections VI-E, figure 13).
 *
 * Conventions follow the paper's own analysis: dynamic power is
 * proportional to V^2 f, attainable frequency is proportional to
 * V - Vt (Borkar & Chien), and the checker-core complex costs at most
 * ~5% of main-core power when fully awake (16 RISC-V-rocket-class
 * cores scaled to the X-Gene 3's 16 nm process).  All powers are
 * normalized to the main core's margined nominal operating point, so
 * figure 13's "Normalized Ratios" fall out directly.
 */

#ifndef PARADOX_POWER_POWER_MODEL_HH
#define PARADOX_POWER_POWER_MODEL_HH

#include <cstdint>

#include "sim/types.hh"

namespace paradox
{
namespace power
{

/** f proportional to (V - Vt) frequency/voltage relation. */
class FrequencyVoltageModel
{
  public:
    struct Params
    {
        double fNominal = 3.2e9;  //!< Hz at the nominal voltage
        double vNominal = 0.980;  //!< margined supply, volts
        double vThreshold = 0.45; //!< transistor threshold, volts
    };

    FrequencyVoltageModel() : FrequencyVoltageModel(Params{}) {}
    explicit FrequencyVoltageModel(const Params &params)
        : params_(params)
    {}

    /** Highest safe frequency at supply @p v. */
    double frequencyAt(double v) const;

    /** Voltage needed to sustain frequency @p f. */
    double voltageFor(double f) const;

    const Params &params() const { return params_; }

  private:
    Params params_;
};

/** Main-core + checker-complex power model, normalized units. */
class PowerModel
{
  public:
    struct Params
    {
        double vNominal = 0.980;    //!< margined supply, volts
        double fNominal = 3.2e9;    //!< nominal clock, Hz
        /** Dynamic share of nominal core power; server-class cores
         * running flat out are strongly dynamic-dominated. */
        double dynamicFraction = 0.85;
        /**
         * Whole checker complex (16 cores + logs + I-caches), fully
         * awake, as a fraction of nominal main-core power ("never
         * more than 5%").
         */
        double checkerComplexFraction = 0.05;
        unsigned checkerCount = 16;
        /** Residual power of a power-gated checker (leakage). */
        double gatedResidual = 0.02;
    };

    PowerModel() : PowerModel(Params{}) {}
    explicit PowerModel(const Params &params) : params_(params) {}

    /**
     * Main-core power at (@p v, @p f), as a fraction of its nominal
     * power: dynamic V^2 f scaling plus V-proportional leakage.
     */
    double corePower(double v, double f) const;

    /**
     * Checker-complex power given each core's duty cycle.
     * @param wake_rates per-core fraction of time awake (size
     *        checkerCount); gated time costs only leakage.
     */
    double checkerPower(const double *wake_rates, unsigned n) const;

    /** Checker-complex power with every core always awake. */
    double checkerPowerAllAwake() const;

    const Params &params() const { return params_; }

  private:
    Params params_;
};

/**
 * Time-integrated energy over a run with piecewise-constant
 * voltage/frequency intervals.
 */
class EnergyAccumulator
{
  public:
    explicit EnergyAccumulator(const PowerModel &model) : model_(model)
    {}

    /** Account @p dt ticks at supply @p v, clock @p f, plus
     * @p checker_power (normalized). */
    void addInterval(Tick dt, double v, double f, double checker_power);

    /** Total normalized energy (power x seconds). */
    double energy() const { return energy_; }

    /** Time-weighted average normalized power. */
    double averagePower() const;

    /** Time-weighted average voltage. */
    double averageVoltage() const;

    Tick elapsed() const { return elapsed_; }

    void reset();

  private:
    const PowerModel &model_;
    double energy_ = 0.0;
    double voltSeconds_ = 0.0;
    Tick elapsed_ = 0;
};

/** Energy-delay product of a run: averagePower x time^2, normalized
 * against a baseline via edpRatio(). */
double edp(double average_power, Tick elapsed);

/** EDP of (p, t) relative to a baseline (p0, t0). */
double edpRatio(double p, Tick t, double p0, Tick t0);

} // namespace power
} // namespace paradox

#endif // PARADOX_POWER_POWER_MODEL_HH
