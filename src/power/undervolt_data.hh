/**
 * @file
 * Per-workload undervolting profiles.
 *
 * The paper's figure 13 combines *measured* X-Gene 3 undervolting
 * power data (Papadimitriou et al., HPCA'19) with simulated
 * slowdowns.  Those raw measurements are not redistributable, so this
 * table is a documented synthetic substitution (see DESIGN.md): each
 * workload gets a voltage floor (where errors become dense -- the
 * paper notes different workloads stress different units and so hit
 * timing limits at different voltages, section IV-B) and a
 * first-error voltage.  The values are synthesized to reproduce the
 * published aggregates: a ~22% mean power reduction from undervolting
 * at ~0.87 V against a 0.98 V margined baseline, with FP-heavy
 * workloads erroring slightly earlier than integer-heavy ones.
 */

#ifndef PARADOX_POWER_UNDERVOLT_DATA_HH
#define PARADOX_POWER_UNDERVOLT_DATA_HH

#include <string>

#include "faults/undervolt_model.hh"

namespace paradox
{
namespace power
{

/** Undervolting character of one workload. */
struct VoltageProfile
{
    /** Voltage below which errors are dense (model floor). */
    double vFloor;
    /** Highest voltage at which any error appears in practice. */
    double vFirstError;
    /** Exponential steepness between the two, 1/volt. */
    double slope;
};

/**
 * Look up the profile for @p workload (falls back to a generic
 * profile for unknown names, so user workloads still run).
 */
VoltageProfile voltageProfile(const std::string &workload);

/** Build the per-workload undervolt error model from its profile. */
faults::UndervoltErrorModel::Params
errorModelParams(const std::string &workload);

/** The margined nominal supply voltage of the modelled system. */
constexpr double vNominalMargined = 0.980;

/** Safe undervolted supply at nominal frequency (paper: 0.872 V). */
constexpr double vSafeUndervolted = 0.872;

} // namespace power
} // namespace paradox

#endif // PARADOX_POWER_UNDERVOLT_DATA_HH
