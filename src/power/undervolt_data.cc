#include "power/undervolt_data.hh"

#include <cmath>
#include <map>

namespace paradox
{
namespace power
{

namespace
{

// Synthetic per-workload profiles (see file comment and DESIGN.md).
// Undervolting error onset is a sharp cliff: published sweeps show
// error rates climbing orders of magnitude within tens of mV, so the
// exponential slopes are steep (~270-295 /V) and the floors sit just
// below the X-Gene 3's measured 0.872 V safe-undervolt point: at
// vFirstError = floor + 0.071 the per-instruction rate is ~1e-9
// (about one error per simulated second), i.e. the first observable
// error appears just under the measured error-free undervolt level.
// FP-heavy workloads stress longer timing paths and error a little
// earlier (higher vFirstError / floor).
const std::map<std::string, VoltageProfile> profiles = {
    // SPEC CPU2006 integer.
    {"bzip2",      {0.798, 0.869, 290.0}},
    {"gcc",        {0.800, 0.871, 288.0}},
    {"mcf",        {0.792, 0.863, 295.0}},
    {"gobmk",      {0.802, 0.873, 285.0}},
    {"sjeng",      {0.803, 0.874, 284.0}},
    {"h264ref",    {0.804, 0.875, 282.0}},
    {"omnetpp",    {0.796, 0.867, 292.0}},
    {"astar",      {0.794, 0.865, 294.0}},
    {"xalancbmk",  {0.799, 0.870, 289.0}},
    // SPEC CPU2006 floating point.
    {"bwaves",     {0.812, 0.883, 275.0}},
    {"milc",       {0.815, 0.886, 272.0}},
    {"cactusADM",  {0.816, 0.887, 271.0}},
    {"leslie3d",   {0.813, 0.884, 274.0}},
    {"namd",       {0.811, 0.882, 276.0}},
    {"povray",     {0.808, 0.879, 278.0}},
    {"calculix",   {0.817, 0.888, 270.0}},
    {"GemsFDTD",   {0.818, 0.889, 269.0}},
    {"tonto",      {0.810, 0.881, 277.0}},
    {"lbm",        {0.807, 0.878, 279.0}},
    // Design-space-exploration workloads.
    {"bitcount",   {0.798, 0.869, 290.0}},
    {"stream",     {0.811, 0.882, 276.0}},
};

const VoltageProfile genericProfile{0.805, 0.876, 282.0};

} // namespace

VoltageProfile
voltageProfile(const std::string &workload)
{
    auto it = profiles.find(workload);
    return it == profiles.end() ? genericProfile : it->second;
}

faults::UndervoltErrorModel::Params
errorModelParams(const std::string &workload)
{
    const VoltageProfile profile = voltageProfile(workload);
    faults::UndervoltErrorModel::Params params;
    params.vNominal = vNominalMargined;
    params.vFloor = profile.vFloor;
    params.slope = profile.slope;
    return params;
}

} // namespace power
} // namespace paradox
