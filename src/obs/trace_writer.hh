/**
 * @file
 * Trace serialization: Chrome/Perfetto trace-event JSON (openable
 * directly in ui.perfetto.dev or chrome://tracing) and the versioned
 * `paradox-trace/1` JSONL that trace_report and CI consume.
 *
 * Both writers sort a copy of the events by timestamp (stable, so
 * same-tick begin/end pairs keep their recording order) and emit each
 * track as one named thread of a single process.  Writing happens
 * once, after the run -- nothing here is on the simulation hot path.
 */

#ifndef PARADOX_OBS_TRACE_WRITER_HH
#define PARADOX_OBS_TRACE_WRITER_HH

#include <ostream>
#include <string>

#include "obs/trace.hh"

namespace paradox
{
namespace obs
{

/** Schema identifier in every paradox-trace JSONL header record. */
constexpr const char *traceSchema = "paradox-trace/1";

/**
 * Emit @p sink as Chrome trace-event JSON ("traceEvents" object
 * form).  Timestamps become microseconds (the format's unit) at
 * femtosecond precision; tracks become threads of pid 0 with
 * thread_name metadata.
 */
void writeChromeJson(const TraceSink &sink, std::ostream &os,
                     const std::string &tool);

/**
 * Emit @p sink as paradox-trace/1 JSONL: a header record, one record
 * per track, then one record per event in timestamp order, with
 * timestamps kept in integer femtoseconds.
 */
void writeTraceJsonl(const TraceSink &sink, std::ostream &os,
                     const std::string &tool);

/** @{ Write either serialization to @p path; false on I/O failure. */
bool writeChromeJsonFile(const TraceSink &sink, const std::string &path,
                         const std::string &tool);
bool writeTraceJsonlFile(const TraceSink &sink, const std::string &path,
                         const std::string &tool);
/** @} */

/**
 * The JSONL sibling of a Chrome-trace path: "out.json" ->
 * "out.jsonl", anything else gets ".jsonl" appended.
 */
std::string traceJsonlPath(const std::string &chrome_path);

/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &s);

} // namespace obs
} // namespace paradox

#endif // PARADOX_OBS_TRACE_WRITER_HH
