/**
 * @file
 * Periodic runtime-metrics sampling onto trace counter tracks.
 *
 * Model components own plain counters (cache hits/misses, pinned
 * lines, committed instructions, rollbacks...); a MetricsSampler
 * polls a registered set of probes at a configurable simulated-time
 * interval and records each as a Counter event, turning end-of-run
 * aggregates into time-resolved series a Perfetto timeline (or
 * trace_report) can show next to the span tracks.
 *
 * poll() is called from existing per-checkpoint housekeeping, so the
 * common case (interval not yet elapsed) is a single comparison.
 */

#ifndef PARADOX_OBS_METRICS_HH
#define PARADOX_OBS_METRICS_HH

#include <functional>
#include <vector>

#include "obs/trace.hh"
#include "sim/stats.hh"

namespace paradox
{
namespace obs
{

/** Periodic sampler of value probes onto counter tracks. */
class MetricsSampler
{
  public:
    /** Sample every @p interval_ticks of simulated time. */
    MetricsSampler(TraceSink &sink, Tick interval_ticks)
        : sink_(sink),
          interval_(interval_ticks ? interval_ticks : ticksPerUs)
    {
    }

    /** Register one probe; @p name must be a string literal. */
    void
    probe(TrackId track, const char *name,
          std::function<double()> read)
    {
        probes_.push_back({track, name, std::move(read)});
    }

    /**
     * Register a probe for every sampleable stat in @p reg that has
     * been marked for export with Stat::setSeries().  The series name
     * (not the hierarchical stat name) becomes the counter-track
     * event name, so legacy track names stay stable across stats
     * reorganisations.  @p route maps each stat to the track it
     * belongs on.  The registry must outlive this sampler: probes
     * keep pointers into it.
     */
    void
    probeRegistry(const stats::Registry &reg,
                  const std::function<TrackId(const stats::Stat &)> &route)
    {
        reg.forEach([&](const stats::Stat &s) {
            if (!s.sampleable() || s.series().empty())
                return;
            probes_.push_back({route(s), s.series().c_str(),
                               [&s] { return s.sampleValue(); }});
        });
    }

    /** Sample every probe if the interval has elapsed since last. */
    void
    poll(Tick now)
    {
        if (now < nextSample_)
            return;
        sampleAll(now);
        // Skip ahead past any dead time so a long stall does not
        // produce a burst of catch-up samples.
        nextSample_ = now + interval_;
    }

    /** Unconditional sample (run start / final state). */
    void
    sampleAll(Tick now)
    {
        for (const Probe &p : probes_)
            sink_.counter(p.track, p.name, now, p.read());
    }

    Tick interval() const { return interval_; }
    std::size_t probeCount() const { return probes_.size(); }

  private:
    struct Probe
    {
        TrackId track;
        const char *name;
        std::function<double()> read;
    };

    TraceSink &sink_;
    Tick interval_;
    Tick nextSample_ = 0;
    std::vector<Probe> probes_;
};

} // namespace obs
} // namespace paradox

#endif // PARADOX_OBS_METRICS_HH
