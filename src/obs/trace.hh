/**
 * @file
 * Structured execution tracing (the observability backbone).
 *
 * A TraceSink records typed events -- begin/end and complete spans,
 * instants, and counter samples -- stamped with simulated time and a
 * track id (main core, each checker, the DVFS domain, the fault
 * injector...).  Model code appends into a preallocated vector with
 * no formatting or allocation on the hot path; two writers serialize
 * a finished trace afterwards (Chrome/Perfetto trace-event JSON and
 * the versioned `paradox-trace/1` JSONL consumed by trace_report and
 * the tests).
 *
 * Two off-switches keep the simulator's hot loop clean:
 *
 *  - compile time: building with -DPARADOX_TRACING=0 turns
 *    tracingCompiledIn into a constant false, so every instrumented
 *    `if (tracing())` block folds away;
 *
 *  - run time: no sink installed (the default) or a disabled sink
 *    means the hooks reduce to one pointer test.
 *
 * Event names and details are interned `const char *` pointers to
 * string literals: recording never copies or hashes a string.  The
 * sink is single-threaded by design -- one System owns one sink; a
 * parallel sweep gives each job its own (see exp::tracePathForJob).
 */

#ifndef PARADOX_OBS_TRACE_HH
#define PARADOX_OBS_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

#ifndef PARADOX_TRACING
#define PARADOX_TRACING 1
#endif

namespace paradox
{
namespace obs
{

/** True when the tracing hooks were compiled in. */
constexpr bool tracingCompiledIn = PARADOX_TRACING != 0;

/** Index into the sink's track table. */
using TrackId = std::uint16_t;

/** Event phases, matching the trace-event format's vocabulary. */
enum class Phase : std::uint8_t
{
    Begin,    //!< span opens ("B"); closed by a later End
    End,      //!< span closes ("E")
    Complete, //!< span with a known duration ("X")
    Instant,  //!< point event ("i")
    Counter,  //!< one sample of a named counter series ("C")
};

/** Single character used for a phase in both serialized formats. */
char phaseChar(Phase phase);

/** Parse a phase character; returns false on an unknown one. */
bool parsePhase(char c, Phase &out);

/** One recorded event (POD; names/details are interned literals). */
struct TraceEvent
{
    Tick ts = 0;                //!< simulated time (fs)
    Tick dur = 0;               //!< Complete spans: duration (fs)
    const char *name = nullptr; //!< event/series name (literal)
    const char *detail = nullptr; //!< optional annotation (literal)
    double value = 0.0;         //!< Counter sample / instant payload
    std::uint64_t id = 0;       //!< correlation id (e.g. segment id)
    TrackId track = 0;
    Phase phase = Phase::Instant;
};

/** Bounded, preallocated event buffer with a track registry. */
class TraceSink
{
  public:
    /** @p capacity bounds the event count (overflow is counted). */
    explicit TraceSink(std::size_t capacity = defaultCapacity);

    /** Register a track; returns its id (also its sort order). */
    TrackId addTrack(const std::string &name);

    /** @{ Runtime switch; recording while disabled is a no-op. */
    bool enabled() const { return enabled_; }
    void setEnabled(bool on) { enabled_ = on; }
    /** @} */

    /** @{ Record one event (names must be string literals). */
    void
    begin(TrackId track, const char *name, Tick ts,
          std::uint64_t id = 0)
    {
        push({ts, 0, name, nullptr, 0.0, id, track, Phase::Begin});
    }

    void
    end(TrackId track, const char *name, Tick ts, std::uint64_t id = 0)
    {
        push({ts, 0, name, nullptr, 0.0, id, track, Phase::End});
    }

    void
    complete(TrackId track, const char *name, Tick start, Tick dur,
             std::uint64_t id = 0, const char *detail = nullptr)
    {
        push({start, dur, name, detail, 0.0, id, track,
              Phase::Complete});
    }

    void
    instant(TrackId track, const char *name, Tick ts,
            const char *detail = nullptr, double value = 0.0,
            std::uint64_t id = 0)
    {
        push({ts, 0, name, detail, value, id, track, Phase::Instant});
    }

    void
    counter(TrackId track, const char *name, Tick ts, double value)
    {
        push({ts, 0, name, nullptr, value, 0, track, Phase::Counter});
    }
    /** @} */

    /** @{ Introspection for the writers and tests. */
    const std::vector<TraceEvent> &events() const { return events_; }
    const std::vector<std::string> &tracks() const { return tracks_; }
    std::size_t capacity() const { return capacity_; }
    /** Events discarded because the buffer was full. */
    std::uint64_t dropped() const { return dropped_; }
    /** @} */

    /** Drop all recorded events and tracks. */
    void clear();

    static constexpr std::size_t defaultCapacity = 1u << 20;

  private:
    void
    push(const TraceEvent &e)
    {
        if (!enabled_)
            return;
        if (events_.size() >= capacity_) {
            ++dropped_;
            return;
        }
        events_.push_back(e);
    }

    std::vector<TraceEvent> events_;
    std::vector<std::string> tracks_;
    std::size_t capacity_;
    std::uint64_t dropped_ = 0;
    bool enabled_ = true;
};

} // namespace obs
} // namespace paradox

#endif // PARADOX_OBS_TRACE_HH
