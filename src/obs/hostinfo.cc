#include "obs/hostinfo.hh"

#include <fstream>
#include <thread>

// Stamped by the build system (src/obs/CMakeLists.txt); the
// fallbacks keep non-CMake compiles working.
#ifndef PARADOX_GIT_SHA
#define PARADOX_GIT_SHA "unknown"
#endif
#ifndef PARADOX_BUILD_FLAGS
#define PARADOX_BUILD_FLAGS "unknown"
#endif

namespace paradox
{
namespace obs
{

namespace
{

std::string
detectCpuModel()
{
    std::ifstream is("/proc/cpuinfo");
    std::string line;
    while (std::getline(is, line)) {
        const auto key = line.find("model name");
        if (key != 0)
            continue;
        const auto colon = line.find(':');
        if (colon == std::string::npos)
            break;
        auto start = line.find_first_not_of(" \t", colon + 1);
        if (start == std::string::npos)
            break;
        return line.substr(start);
    }
    return "unknown";
}

std::string
detectCompiler()
{
#if defined(__clang__)
    return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
    return std::string("g++ ") + __VERSION__;
#else
    return "unknown";
#endif
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out += ' ';
        } else {
            out += c;
        }
    }
    return out;
}

} // namespace

const HostInfo &
hostInfo()
{
    static const HostInfo info = [] {
        HostInfo h;
        h.cpuModel = detectCpuModel();
        h.cores = std::thread::hardware_concurrency();
        h.compiler = detectCompiler();
        h.flags = PARADOX_BUILD_FLAGS;
        h.gitSha = PARADOX_GIT_SHA;
        return h;
    }();
    return info;
}

std::string
hostJsonFields()
{
    const HostInfo &h = hostInfo();
    std::string out = "\"cpu\":\"" + jsonEscape(h.cpuModel) + "\"";
    out += ",\"cores\":" + std::to_string(h.cores);
    out += ",\"compiler\":\"" + jsonEscape(h.compiler) + "\"";
    out += ",\"flags\":\"" + jsonEscape(h.flags) + "\"";
    out += ",\"git\":\"" + jsonEscape(h.gitSha) + "\"";
    return out;
}

} // namespace obs
} // namespace paradox
