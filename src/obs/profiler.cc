#include "obs/profiler.hh"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <sstream>

#include "obs/hostinfo.hh"
#include "obs/trace_reader.hh"

namespace paradox
{
namespace obs
{

namespace
{

using Clock = std::chrono::steady_clock;

/** One phase node in a thread's tree; node 0 is the synthetic root. */
struct Node
{
    const char *name = nullptr;
    std::uint32_t parent = 0;
    std::vector<std::uint32_t> children;
    std::uint64_t count = 0;
    std::uint64_t totalNs = 0;
};

struct Frame
{
    std::uint32_t node = 0;
    Clock::time_point start{};
};

/**
 * A thread's accumulation state.  Registered globally as a
 * shared_ptr so the tree outlives the thread (Runner workers exit
 * before the harness snapshots).
 */
struct ThreadProfile
{
    std::vector<Node> nodes;
    std::vector<Frame> stack;

    ThreadProfile()
    {
        nodes.emplace_back();
        stack.push_back({0, {}});
    }
};

std::mutex &
registryMutex()
{
    static std::mutex m;
    return m;
}

std::vector<std::shared_ptr<ThreadProfile>> &
profileRegistry()
{
    static std::vector<std::shared_ptr<ThreadProfile>> v;
    return v;
}

ThreadProfile &
localProfile()
{
    thread_local std::shared_ptr<ThreadProfile> tls;
    if (!tls) {
        tls = std::make_shared<ThreadProfile>();
        std::lock_guard<std::mutex> lock(registryMutex());
        profileRegistry().push_back(tls);
    }
    return *tls;
}

/** Merged (cross-thread) tree node, built during snapshot(). */
struct MergedNode
{
    std::string name;
    std::vector<std::uint32_t> children;
    std::uint64_t count = 0;
    std::uint64_t totalNs = 0;
};

void
mergeInto(std::vector<MergedNode> &merged, std::uint32_t mparent,
          const ThreadProfile &profile, std::uint32_t node)
{
    const Node &n = profile.nodes[node];
    std::uint32_t target = 0;
    for (std::uint32_t c : merged[mparent].children) {
        if (merged[c].name == n.name) {
            target = c;
            break;
        }
    }
    if (target == 0) {
        target = std::uint32_t(merged.size());
        merged.push_back({n.name, {}, 0, 0});
        merged[mparent].children.push_back(target);
    }
    merged[target].count += n.count;
    merged[target].totalNs += n.totalNs;
    for (std::uint32_t c : n.children)
        mergeInto(merged, target, profile, c);
}

void
emitPreorder(const std::vector<MergedNode> &merged, std::uint32_t node,
             const std::string &parent_path, unsigned depth,
             std::vector<ProfPhase> &out)
{
    const MergedNode &n = merged[node];
    ProfPhase phase;
    phase.name = n.name;
    phase.path = parent_path.empty() ? n.name : parent_path + "/" + n.name;
    phase.depth = depth;
    phase.count = n.count;
    phase.totalNs = n.totalNs;
    std::uint64_t child_total = 0;
    for (std::uint32_t c : n.children)
        child_total += merged[c].totalNs;
    phase.selfNs =
        n.totalNs > child_total ? n.totalNs - child_total : 0;
    // Copied, not referenced: the recursive push_backs can
    // reallocate `out` while the children still need this path.
    const std::string path = phase.path;
    out.push_back(std::move(phase));
    for (std::uint32_t c : n.children)
        emitPreorder(merged, c, path, depth + 1, out);
}

/** Minimal JSON string escaping for header fields. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out += ' ';
        } else {
            out += c;
        }
    }
    return out;
}

bool
parseU64(const std::string &raw, std::uint64_t &out)
{
    try {
        out = std::stoull(raw);
    } catch (...) {
        return false;
    }
    return true;
}

} // namespace

void
Profiler::pushPhase(const char *name)
{
    ThreadProfile &p = localProfile();
    const std::uint32_t parent = p.stack.back().node;
    std::uint32_t idx = 0;
    for (std::uint32_t c : p.nodes[parent].children) {
        // Pointer equality first: names are interned literals, so
        // the strcmp fallback only matters across translation units.
        if (p.nodes[c].name == name ||
            std::strcmp(p.nodes[c].name, name) == 0) {
            idx = c;
            break;
        }
    }
    if (idx == 0) {
        idx = std::uint32_t(p.nodes.size());
        Node n;
        n.name = name;
        n.parent = parent;
        p.nodes.push_back(std::move(n));
        p.nodes[parent].children.push_back(idx);
    }
    p.stack.push_back({idx, Clock::now()});
}

void
Profiler::popPhase()
{
    ThreadProfile &p = localProfile();
    if (p.stack.size() <= 1)
        return; // unbalanced pop; drop rather than corrupt the root
    const Frame f = p.stack.back();
    p.stack.pop_back();
    Node &n = p.nodes[f.node];
    ++n.count;
    n.totalNs += std::uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - f.start)
            .count());
}

void
Profiler::reset()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    for (auto &p : profileRegistry()) {
        p->nodes.clear();
        p->nodes.emplace_back();
        p->stack.clear();
        p->stack.push_back({0, {}});
    }
}

std::vector<ProfPhase>
Profiler::snapshot()
{
    std::vector<MergedNode> merged;
    merged.push_back({"", {}, 0, 0});
    {
        std::lock_guard<std::mutex> lock(registryMutex());
        for (const auto &p : profileRegistry())
            for (std::uint32_t c : p->nodes[0].children)
                mergeInto(merged, 0, *p, c);
    }
    std::vector<ProfPhase> out;
    for (std::uint32_t c : merged[0].children)
        emitPreorder(merged, c, "", 0, out);
    return out;
}

std::uint64_t
Profiler::rootTotalNs(const std::vector<ProfPhase> &phases)
{
    std::uint64_t total = 0;
    for (const ProfPhase &p : phases)
        if (p.depth == 0)
            total += p.totalNs;
    return total;
}

unsigned
Profiler::threadCount()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    unsigned n = 0;
    for (const auto &p : profileRegistry())
        if (p->nodes.size() > 1)
            ++n;
    return n;
}

bool
writeProfJsonl(std::ostream &os, const std::vector<ProfPhase> &phases,
               const ProfMeta &meta)
{
    os << "{\"record\":\"header\",\"schema\":\"paradox-prof/1\","
       << "\"tool\":\"" << jsonEscape(meta.tool) << "\"";
    if (!meta.workload.empty())
        os << ",\"workload\":\"" << jsonEscape(meta.workload) << "\"";
    os << ",\"threads\":" << Profiler::threadCount() << ","
       << hostJsonFields();
    if (meta.simInstructions)
        os << ",\"sim_instructions\":" << meta.simInstructions;
    if (meta.wallNs)
        os << ",\"wall_ns\":" << meta.wallNs;
    os << "}\n";

    for (const ProfPhase &p : phases) {
        os << "{\"record\":\"phase\",\"path\":\"" << jsonEscape(p.path)
           << "\",\"name\":\"" << jsonEscape(p.name)
           << "\",\"depth\":" << p.depth << ",\"count\":" << p.count
           << ",\"total_ns\":" << p.totalNs
           << ",\"self_ns\":" << p.selfNs;
        if (meta.simInstructions && p.selfNs > 0) {
            const double ips = double(meta.simInstructions) /
                               (double(p.selfNs) * 1e-9);
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.0f", ips);
            os << ",\"self_inst_per_sec\":" << buf;
        }
        os << "}\n";
    }

    os << "{\"record\":\"summary\",\"phases\":" << phases.size()
       << ",\"root_total_ns\":" << Profiler::rootTotalNs(phases)
       << "}\n";
    return bool(os);
}

bool
writeProfJsonlFile(const std::string &path,
                   const std::vector<ProfPhase> &phases,
                   const ProfMeta &meta)
{
    std::ofstream os(path);
    if (!os)
        return false;
    return writeProfJsonl(os, phases, meta);
}

bool
readProfJsonl(std::istream &is, ParsedProf &out, std::string &error)
{
    std::string line;
    bool saw_header = false;
    std::size_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty())
            continue;
        std::string record;
        if (!jsonField(line, "record", record)) {
            error = "line " + std::to_string(line_no) +
                    ": missing 'record' field";
            return false;
        }
        if (record == "header") {
            std::string schema;
            if (!jsonField(line, "schema", schema) ||
                schema != "paradox-prof/1") {
                error = "line " + std::to_string(line_no) +
                        ": bad schema (want paradox-prof/1)";
                return false;
            }
            saw_header = true;
            jsonField(line, "tool", out.tool);
            jsonField(line, "workload", out.workload);
            std::string raw;
            std::uint64_t v = 0;
            if (jsonField(line, "threads", raw) && parseU64(raw, v))
                out.threads = unsigned(v);
            if (jsonField(line, "sim_instructions", raw) &&
                parseU64(raw, v))
                out.simInstructions = v;
            if (jsonField(line, "wall_ns", raw) && parseU64(raw, v))
                out.wallNs = v;
        } else if (record == "phase") {
            if (!saw_header) {
                error = "line " + std::to_string(line_no) +
                        ": phase before header";
                return false;
            }
            ProfPhase p;
            std::string raw;
            std::uint64_t v = 0;
            if (!jsonField(line, "path", p.path) ||
                !jsonField(line, "name", p.name)) {
                error = "line " + std::to_string(line_no) +
                        ": phase record missing path/name";
                return false;
            }
            if (jsonField(line, "depth", raw) && parseU64(raw, v))
                p.depth = unsigned(v);
            if (!jsonField(line, "count", raw) || !parseU64(raw, p.count) ||
                !jsonField(line, "total_ns", raw) ||
                !parseU64(raw, p.totalNs) ||
                !jsonField(line, "self_ns", raw) ||
                !parseU64(raw, p.selfNs)) {
                error = "line " + std::to_string(line_no) +
                        ": phase record missing count/total_ns/self_ns";
                return false;
            }
            out.phases.push_back(std::move(p));
        } else if (record == "summary") {
            std::string raw;
            if (jsonField(line, "root_total_ns", raw))
                parseU64(raw, out.rootTotalNs);
        } else {
            error = "line " + std::to_string(line_no) +
                    ": unknown record '" + record + "'";
            return false;
        }
    }
    if (!saw_header) {
        error = "empty stream (no header record)";
        return false;
    }
    return true;
}

bool
readProfJsonlFile(const std::string &path, ParsedProf &out,
                  std::string &error)
{
    std::ifstream is(path);
    if (!is) {
        error = "cannot open '" + path + "'";
        return false;
    }
    return readProfJsonl(is, out, error);
}

} // namespace obs
} // namespace paradox
