/**
 * @file
 * Host-side self-profiler: low-overhead scoped phase timers over
 * steady_clock, accumulated into a per-thread phase tree and merged
 * on snapshot.
 *
 * The simulator's observability so far (trace.hh, metrics.hh) covers
 * *simulated* time; this covers where the simulator's own host
 * wall-clock goes -- the measurement ROADMAP item 5 (per-component
 * tick domains) will be designed from.  Instrumented code brackets a
 * phase with PARADOX_PROF_SCOPE("name"); nesting forms the tree
 * (system tick -> main-core step -> decoded-engine dispatch / memory
 * hierarchy / branch predictor / checker replay / ...).
 *
 * Three cost regimes, mirroring trace.hh:
 *
 *  - compile time: -DPARADOX_PROFILING=0 turns profilingCompiledIn
 *    into a constant false and every scope folds away entirely;
 *
 *  - runtime disabled (the default): one relaxed atomic load per
 *    scope site;
 *
 *  - enabled: two clock reads plus a child-pointer walk per scope.
 *    Accumulation is thread-local, so exp::Runner jobs never contend
 *    on shared profiler state; a worker's tree outlives the worker
 *    and is merged by phase path at snapshot time.
 *
 * snapshot()/reset()/writeProfJsonl() require quiescence: no thread
 * may be inside an enabled scope while they run (in practice they are
 * called between runs, after workers joined).
 *
 * Serialized form is the versioned `paradox-prof/1` JSONL: a header
 * record (host metadata, optional workload / sim-instruction /
 * wall-clock context), one "phase" record per merged node with
 * self/total nanoseconds, call count and -- when the header carries
 * sim_instructions -- per-phase sim-instructions-per-host-second,
 * and a trailing summary record.  tools/prof_report consumes it.
 */

#ifndef PARADOX_OBS_PROFILER_HH
#define PARADOX_OBS_PROFILER_HH

#include <atomic>
#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#ifndef PARADOX_PROFILING
#define PARADOX_PROFILING 1
#endif

namespace paradox
{
namespace obs
{

/** True when the profiling hooks were compiled in. */
constexpr bool profilingCompiledIn = PARADOX_PROFILING != 0;

namespace detail
{
/** Global runtime switch (relaxed: a scope missing one toggle by a
 * few instructions is harmless). */
inline std::atomic<bool> profilingEnabled{false};
} // namespace detail

/** One merged phase in a profile snapshot (tree preorder). */
struct ProfPhase
{
    std::string path;        //!< "run/sim/step" ('/'-joined names)
    std::string name;        //!< leaf name ("step")
    unsigned depth = 0;      //!< root phases are depth 0
    std::uint64_t count = 0; //!< scope entries
    std::uint64_t totalNs = 0; //!< inclusive wall time
    std::uint64_t selfNs = 0;  //!< total minus children's totals
};

/**
 * Process-wide profiler facade.  All state lives in thread-local
 * trees registered on first use; the static API controls the runtime
 * switch and merges/serializes the trees.
 */
class Profiler
{
  public:
    /** Runtime switch; scopes entered while disabled record nothing. */
    static void setEnabled(bool on)
    {
        detail::profilingEnabled.store(on, std::memory_order_relaxed);
    }

    static bool
    enabled()
    {
        return profilingCompiledIn &&
               detail::profilingEnabled.load(std::memory_order_relaxed);
    }

    /** Discard every thread's recorded tree (requires quiescence). */
    static void reset();

    /**
     * Merge all threads' trees by phase path and return the merged
     * tree in preorder (requires quiescence).
     */
    static std::vector<ProfPhase> snapshot();

    /** Sum of the depth-0 totals of @p phases (attributed wall). */
    static std::uint64_t rootTotalNs(const std::vector<ProfPhase> &phases);

    /** Threads that recorded at least one phase. */
    static unsigned threadCount();

    /** @{ Scope entry/exit; prefer ScopedPhase / PARADOX_PROF_SCOPE.
     * @p name must be a string literal (interned; never copied on
     * the hot path).  Calls must nest LIFO per thread. */
    static void pushPhase(const char *name);
    static void popPhase();
    /** @} */
};

/** RAII phase scope; see PARADOX_PROF_SCOPE. */
class ScopedPhase
{
  public:
    explicit ScopedPhase(const char *name)
    {
        if (Profiler::enabled()) {
            live_ = true;
            Profiler::pushPhase(name);
        }
    }

    ~ScopedPhase()
    {
        if (live_)
            Profiler::popPhase();
    }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    bool live_ = false;
};

/** Context stamped into a profile's header record. */
struct ProfMeta
{
    std::string tool;            //!< producing tool name
    std::string workload;        //!< optional workload tag
    std::uint64_t simInstructions = 0; //!< 0 = unknown
    std::uint64_t wallNs = 0;    //!< externally measured wall (0 = unknown)
};

/** @{ Serialize a snapshot as paradox-prof/1 JSONL. */
bool writeProfJsonl(std::ostream &os,
                    const std::vector<ProfPhase> &phases,
                    const ProfMeta &meta);
bool writeProfJsonlFile(const std::string &path,
                        const std::vector<ProfPhase> &phases,
                        const ProfMeta &meta);
/** @} */

/** A fully parsed paradox-prof/1 stream. */
struct ParsedProf
{
    std::string tool;
    std::string workload;
    unsigned threads = 0;
    std::uint64_t simInstructions = 0;
    std::uint64_t wallNs = 0;
    std::uint64_t rootTotalNs = 0; //!< from the summary record
    std::vector<ProfPhase> phases; //!< in stream (preorder) order
};

/** @{ Parse paradox-prof/1; false + @p error on a malformed stream. */
bool readProfJsonl(std::istream &is, ParsedProf &out,
                   std::string &error);
bool readProfJsonlFile(const std::string &path, ParsedProf &out,
                       std::string &error);
/** @} */

} // namespace obs
} // namespace paradox

#define PARADOX_PROF_CONCAT2(a, b) a##b
#define PARADOX_PROF_CONCAT(a, b) PARADOX_PROF_CONCAT2(a, b)

/** Profile the enclosing scope as phase @p name (a string literal). */
#define PARADOX_PROF_SCOPE(name)                                       \
    ::paradox::obs::ScopedPhase PARADOX_PROF_CONCAT(                   \
        paradoxProfScope_, __LINE__)(name)

#endif // PARADOX_OBS_PROFILER_HH
