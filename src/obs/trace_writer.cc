#include "obs/trace_writer.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <vector>

namespace paradox
{
namespace obs
{

namespace
{

/** Events in timestamp order (stable: recording order breaks ties). */
std::vector<TraceEvent>
sorted(const TraceSink &sink)
{
    std::vector<TraceEvent> events = sink.events();
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.ts < b.ts;
                     });
    return events;
}

/** Femtoseconds as decimal microseconds without float rounding. */
std::string
fsToUs(Tick fs)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%llu.%09llu",
                  (unsigned long long)(fs / 1'000'000'000ULL),
                  (unsigned long long)(fs % 1'000'000'000ULL));
    return buf;
}

/** Compact double rendering for counter values. */
std::string
num(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeChromeJson(const TraceSink &sink, std::ostream &os,
                const std::string &tool)
{
    os << "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"tool\":\""
       << jsonEscape(tool) << "\",\"schema\":\"" << traceSchema
       << "\",\"time_unit\":\"us\",\"dropped_events\":"
       << sink.dropped() << "},\"traceEvents\":[";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
    };
    for (std::size_t t = 0; t < sink.tracks().size(); ++t) {
        sep();
        os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << t
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
           << jsonEscape(sink.tracks()[t]) << "\"}}";
        sep();
        os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << t
           << ",\"name\":\"thread_sort_index\",\"args\":{"
              "\"sort_index\":"
           << t << "}}";
    }
    for (const TraceEvent &e : sorted(sink)) {
        sep();
        os << "{\"ph\":\"" << phaseChar(e.phase) << "\",\"pid\":0,"
           << "\"tid\":" << e.track << ",\"ts\":" << fsToUs(e.ts);
        if (e.phase == Phase::Complete)
            os << ",\"dur\":" << fsToUs(e.dur);
        if (e.phase == Phase::Instant)
            os << ",\"s\":\"t\"";
        if (e.name)
            os << ",\"name\":\"" << jsonEscape(e.name) << "\"";
        // Counters carry their sample as the single series value;
        // everything else gets its correlation id / annotation.
        if (e.phase == Phase::Counter) {
            os << ",\"args\":{\"value\":" << num(e.value) << "}";
        } else {
            os << ",\"args\":{\"id\":" << e.id;
            if (e.detail)
                os << ",\"detail\":\"" << jsonEscape(e.detail) << "\"";
            if (e.value != 0.0)
                os << ",\"value\":" << num(e.value);
            os << "}";
        }
        os << "}";
    }
    os << "\n]}\n";
}

void
writeTraceJsonl(const TraceSink &sink, std::ostream &os,
                const std::string &tool)
{
    os << "{\"record\":\"header\",\"schema\":\"" << traceSchema
       << "\",\"tool\":\"" << jsonEscape(tool)
       << "\",\"time_unit\":\"fs\",\"tracks\":" << sink.tracks().size()
       << ",\"events\":" << sink.events().size()
       << ",\"dropped\":" << sink.dropped() << "}\n";
    for (std::size_t t = 0; t < sink.tracks().size(); ++t) {
        os << "{\"record\":\"track\",\"id\":" << t << ",\"name\":\""
           << jsonEscape(sink.tracks()[t]) << "\"}\n";
    }
    for (const TraceEvent &e : sorted(sink)) {
        os << "{\"record\":\"event\",\"ph\":\"" << phaseChar(e.phase)
           << "\",\"track\":" << e.track << ",\"ts\":" << e.ts;
        if (e.phase == Phase::Complete)
            os << ",\"dur\":" << e.dur;
        if (e.name)
            os << ",\"name\":\"" << jsonEscape(e.name) << "\"";
        if (e.detail)
            os << ",\"detail\":\"" << jsonEscape(e.detail) << "\"";
        if (e.phase == Phase::Counter || e.value != 0.0)
            os << ",\"value\":" << num(e.value);
        if (e.id != 0)
            os << ",\"id\":" << e.id;
        os << "}\n";
    }
}

namespace
{

bool
writeFile(const TraceSink &sink, const std::string &path,
          const std::string &tool,
          void (*writer)(const TraceSink &, std::ostream &,
                         const std::string &))
{
    std::ofstream os(path);
    if (!os)
        return false;
    writer(sink, os, tool);
    os.flush();
    return bool(os);
}

} // namespace

bool
writeChromeJsonFile(const TraceSink &sink, const std::string &path,
                    const std::string &tool)
{
    return writeFile(sink, path, tool, writeChromeJson);
}

bool
writeTraceJsonlFile(const TraceSink &sink, const std::string &path,
                    const std::string &tool)
{
    return writeFile(sink, path, tool, writeTraceJsonl);
}

std::string
traceJsonlPath(const std::string &chrome_path)
{
    const std::string suffix = ".json";
    if (chrome_path.size() > suffix.size() &&
        chrome_path.compare(chrome_path.size() - suffix.size(),
                            suffix.size(), suffix) == 0)
        return chrome_path.substr(0, chrome_path.size() -
                                         suffix.size()) +
               ".jsonl";
    return chrome_path + ".jsonl";
}

} // namespace obs
} // namespace paradox
