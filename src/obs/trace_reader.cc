#include "obs/trace_reader.hh"

#include <cstdlib>
#include <fstream>

#include "obs/trace_writer.hh"

namespace paradox
{
namespace obs
{

namespace
{

/** Unescape the body of a JSON string literal (\\uXXXX -> ASCII). */
std::string
unescape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\' || i + 1 >= s.size()) {
            out += s[i];
            continue;
        }
        ++i;
        switch (s[i]) {
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'u':
            if (i + 4 < s.size()) {
                out += char(std::strtoul(
                    s.substr(i + 1, 4).c_str(), nullptr, 16));
                i += 4;
            }
            break;
          default:
            out += s[i];
        }
    }
    return out;
}

std::uint64_t
toU64(const std::string &raw)
{
    return std::strtoull(raw.c_str(), nullptr, 10);
}

} // namespace

bool
jsonField(const std::string &line, const std::string &key,
          std::string &value)
{
    const std::string needle = "\"" + key + "\":";
    std::size_t pos = 0;
    for (;;) {
        pos = line.find(needle, pos);
        if (pos == std::string::npos)
            return false;
        // Reject a match inside a longer key ("id" in "track_id").
        if (pos > 0 && line[pos - 1] != '{' && line[pos - 1] != ',') {
            pos += needle.size();
            continue;
        }
        break;
    }
    std::size_t at = pos + needle.size();
    if (at >= line.size())
        return false;
    if (line[at] == '"') {
        std::size_t end = at + 1;
        while (end < line.size() &&
               (line[end] != '"' || line[end - 1] == '\\'))
            ++end;
        if (end >= line.size())
            return false;
        value = unescape(line.substr(at + 1, end - at - 1));
        return true;
    }
    std::size_t end = at;
    while (end < line.size() && line[end] != ',' && line[end] != '}')
        ++end;
    value = line.substr(at, end - at);
    return true;
}

std::string
ParsedTrace::trackName(TrackId id) const
{
    if (id < tracks.size())
        return tracks[id];
    return "track" + std::to_string(id);
}

bool
readTraceJsonl(std::istream &is, ParsedTrace &out, std::string &error)
{
    out = ParsedTrace{};
    std::string line;
    std::size_t lineno = 0;
    bool saw_header = false;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        std::string record;
        if (!jsonField(line, "record", record)) {
            error = "line " + std::to_string(lineno) +
                    ": missing \"record\" field";
            return false;
        }
        if (record == "header") {
            std::string schema;
            if (!jsonField(line, "schema", schema) ||
                schema != traceSchema) {
                error = "line " + std::to_string(lineno) +
                        ": expected schema " +
                        std::string(traceSchema) + ", got '" + schema +
                        "'";
                return false;
            }
            std::string raw;
            if (jsonField(line, "tool", raw))
                out.tool = raw;
            if (jsonField(line, "dropped", raw))
                out.dropped = toU64(raw);
            saw_header = true;
            continue;
        }
        if (!saw_header) {
            error = "line " + std::to_string(lineno) +
                    ": first record must be the header";
            return false;
        }
        if (record == "track") {
            std::string id_raw, name;
            if (!jsonField(line, "id", id_raw) ||
                !jsonField(line, "name", name)) {
                error = "line " + std::to_string(lineno) +
                        ": track record needs id and name";
                return false;
            }
            const std::size_t id = std::size_t(toU64(id_raw));
            if (out.tracks.size() <= id)
                out.tracks.resize(id + 1);
            out.tracks[id] = name;
            continue;
        }
        if (record != "event") {
            error = "line " + std::to_string(lineno) +
                    ": unknown record type '" + record + "'";
            return false;
        }
        ParsedEvent e;
        std::string raw;
        if (!jsonField(line, "ph", raw) || raw.size() != 1 ||
            !parsePhase(raw[0], e.phase)) {
            error = "line " + std::to_string(lineno) +
                    ": bad or missing event phase";
            return false;
        }
        if (!jsonField(line, "ts", raw)) {
            error = "line " + std::to_string(lineno) +
                    ": event without a timestamp";
            return false;
        }
        e.ts = toU64(raw);
        if (!jsonField(line, "track", raw)) {
            error = "line " + std::to_string(lineno) +
                    ": event without a track";
            return false;
        }
        e.track = TrackId(toU64(raw));
        if (jsonField(line, "dur", raw))
            e.dur = toU64(raw);
        if (jsonField(line, "name", raw))
            e.name = raw;
        if (jsonField(line, "detail", raw))
            e.detail = raw;
        if (jsonField(line, "value", raw))
            e.value = std::strtod(raw.c_str(), nullptr);
        if (jsonField(line, "id", raw))
            e.id = toU64(raw);
        out.events.push_back(std::move(e));
    }
    if (!saw_header) {
        error = "empty stream (no header record)";
        return false;
    }
    return true;
}

bool
readTraceJsonlFile(const std::string &path, ParsedTrace &out,
                   std::string &error)
{
    std::ifstream is(path);
    if (!is) {
        error = "cannot open '" + path + "'";
        return false;
    }
    return readTraceJsonl(is, out, error);
}

} // namespace obs
} // namespace paradox
