/**
 * @file
 * Reader for paradox-trace/1 JSONL streams.
 *
 * The schema is deliberately flat -- every line is one JSON object
 * whose values are strings or numbers -- so the reader is a small,
 * dependency-free field scanner rather than a general JSON parser.
 * trace_report, the CI smoke check, and the round-trip tests all go
 * through this one implementation.
 */

#ifndef PARADOX_OBS_TRACE_READER_HH
#define PARADOX_OBS_TRACE_READER_HH

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

#include "obs/trace.hh"

namespace paradox
{
namespace obs
{

/**
 * Scan one flat JSON object for field @p key.
 * @return true and the raw (unescaped, unquoted) value on success.
 * Nested objects/arrays are not supported (the schema has none).
 */
bool jsonField(const std::string &line, const std::string &key,
               std::string &value);

/** One parsed event; names are owned strings, times in fs. */
struct ParsedEvent
{
    Tick ts = 0;
    Tick dur = 0;
    std::string name;
    std::string detail;
    double value = 0.0;
    std::uint64_t id = 0;
    TrackId track = 0;
    Phase phase = Phase::Instant;
};

/** A fully parsed paradox-trace/1 stream. */
struct ParsedTrace
{
    std::string tool;
    std::uint64_t dropped = 0;
    std::vector<std::string> tracks;
    std::vector<ParsedEvent> events;  //!< in stream (timestamp) order

    /** Track name for @p id ("track<N>" if the table is short). */
    std::string trackName(TrackId id) const;
};

/**
 * Parse a paradox-trace/1 stream.
 * @return true on success; on failure @p error names the offending
 * line and problem (schema mismatch, missing field, bad phase...).
 */
bool readTraceJsonl(std::istream &is, ParsedTrace &out,
                    std::string &error);

/** File form of readTraceJsonl. */
bool readTraceJsonlFile(const std::string &path, ParsedTrace &out,
                        std::string &error);

} // namespace obs
} // namespace paradox

#endif // PARADOX_OBS_TRACE_READER_HH
