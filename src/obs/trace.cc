#include "obs/trace.hh"

#include "sim/logging.hh"

namespace paradox
{
namespace obs
{

char
phaseChar(Phase phase)
{
    switch (phase) {
      case Phase::Begin:
        return 'B';
      case Phase::End:
        return 'E';
      case Phase::Complete:
        return 'X';
      case Phase::Instant:
        return 'i';
      case Phase::Counter:
        return 'C';
    }
    return '?';
}

bool
parsePhase(char c, Phase &out)
{
    switch (c) {
      case 'B':
        out = Phase::Begin;
        return true;
      case 'E':
        out = Phase::End;
        return true;
      case 'X':
        out = Phase::Complete;
        return true;
      case 'i':
        out = Phase::Instant;
        return true;
      case 'C':
        out = Phase::Counter;
        return true;
      default:
        return false;
    }
}

TraceSink::TraceSink(std::size_t capacity)
    : capacity_(capacity ? capacity : defaultCapacity)
{
    events_.reserve(capacity_);
}

TrackId
TraceSink::addTrack(const std::string &name)
{
    simAssert(tracks_.size() < 0xffff, "TraceSink: track table full");
    tracks_.push_back(name);
    return TrackId(tracks_.size() - 1);
}

void
TraceSink::clear()
{
    events_.clear();
    tracks_.clear();
    dropped_ = 0;
}

} // namespace obs
} // namespace paradox
