/**
 * @file
 * Host metadata for performance artifacts.
 *
 * Throughput numbers (BENCH_*.json) and host-side profiles
 * (paradox-prof/1) are only comparable within one box and build;
 * stamping CPU model, core count, compiler, flags and git SHA into
 * their headers makes cross-box or cross-build re-measurements
 * distinguishable instead of silently misleading.
 */

#ifndef PARADOX_OBS_HOSTINFO_HH
#define PARADOX_OBS_HOSTINFO_HH

#include <string>

namespace paradox
{
namespace obs
{

/** Static facts about the executing host and this build. */
struct HostInfo
{
    std::string cpuModel;  //!< /proc/cpuinfo "model name" (or "unknown")
    unsigned cores = 0;    //!< hardware_concurrency
    std::string compiler;  //!< e.g. "g++ 13.2.0"
    std::string flags;     //!< build type + CXX flags (from CMake)
    std::string gitSha;    //!< short HEAD SHA at configure time
};

/** Gather once, cached for the process. */
const HostInfo &hostInfo();

/**
 * The host fields as a JSON fragment (no surrounding braces):
 * `"cpu":"...","cores":N,"compiler":"...","flags":"...","git":"..."`
 * -- spliced into paradox-bench/1 and paradox-prof/1 headers.
 */
std::string hostJsonFields();

} // namespace obs
} // namespace paradox

#endif // PARADOX_OBS_HOSTINFO_HH
