#include "analysis/vuln.hh"

#include <cstdio>
#include <sstream>

#include "analysis/ai.hh"
#include "analysis/diagnostic.hh"
#include "analysis/passes.hh"
#include "isa/opcode.hh"

namespace paradox
{
namespace analysis
{

namespace
{

using SlotMasks = VulnAnalysis::SlotMasks;

constexpr std::uint64_t allBits = ~std::uint64_t(0);
constexpr std::uint64_t signBit = std::uint64_t(1) << 63;

/** Bits 0..highest-set-bit of @p m (carry propagates upward). */
std::uint64_t
smearDown(std::uint64_t m)
{
    return m ? (allBits >> __builtin_clzll(m)) : 0;
}

/** Bits lowest-set-bit..63 of @p m (right shifts move downward). */
std::uint64_t
smearUp(std::uint64_t m)
{
    return m ? (allBits << __builtin_ctzll(m)) : 0;
}

std::uint64_t
lowMask(unsigned bits)
{
    return bits >= 64 ? allBits : ((std::uint64_t(1) << bits) - 1);
}

/** Bits that could be 1 in some value of the box. */
std::uint64_t
possibleOnes(const Interval &iv)
{
    if (iv.isBottom())
        return 0;
    if (iv.isConstant())
        return std::uint64_t(iv.lo);
    if (iv.lo >= 0)
        return smearDown(std::uint64_t(iv.hi));
    return allBits;  // negative values have high bits set
}

/** Bits that are 1 in every value of the box. */
std::uint64_t
forcedOnes(const Interval &iv)
{
    return iv.isConstant() ? std::uint64_t(iv.lo) : 0;
}

/**
 * Backward gen step for one instruction.  @p M is the live-out mask
 * of the destination *before* the kill; @p iv is the interval state
 * on entry to the instruction (null when unavailable).
 *
 * Everything here must stay value independent: a bit is added to a
 * source's mask whenever *any* runtime value could propagate it into
 * @p M or into the segment log.  Interval-based pruning drops a bit
 * of one operand only when another operand that *remains live* (and
 * is therefore uncorrupted under the dead-site contract) provably
 * masks it.
 */
void
genUses(SlotMasks &live, const isa::Instruction &inst, std::uint64_t M,
        const RegState *iv)
{
    using isa::Opcode;
    // x0 always reads zero; corrupting it is architecturally
    // impossible (ArchState::flipBit never maps onto it), so slot 0
    // never accumulates liveness.
    const auto g = [&live](unsigned slot, std::uint64_t m) {
        if (slot != 0)
            live[slot] |= m;
    };
    const unsigned x1 = xslot(inst.rs1), x2 = xslot(inst.rs2);
    const unsigned f1 = fslot(inst.rs1), f2 = fslot(inst.rs2);

    switch (inst.op) {
      // Carry chains: source bit b reaches result bits >= b only.
      case Opcode::ADD:
      case Opcode::SUB:
      case Opcode::MUL:
        g(x1, smearDown(M));
        g(x2, smearDown(M));
        break;
      case Opcode::ADDI:
        g(x1, smearDown(M));
        break;

      // No useful per-bit structure: any source bit can reach any
      // result bit.
      case Opcode::MULH:
      case Opcode::DIV:
      case Opcode::DIVU:
      case Opcode::REM:
      case Opcode::REMU:
        if (M) {
            g(x1, allBits);
            g(x2, allBits);
        }
        break;

      case Opcode::AND_: {
        std::uint64_t m1 = M, m2 = M;
        if (iv) {
            // Prune at most ONE side: the masking operand must keep
            // its zero bits live (uncorrupted), or two simultaneous
            // "dead" flips could conspire to flip a live result bit.
            const std::uint64_t ones2 = possibleOnes(iv->regs[inst.rs2]);
            const std::uint64_t ones1 = possibleOnes(iv->regs[inst.rs1]);
            if ((M & ~ones2) != 0)
                m1 &= ones2;
            else if ((M & ~ones1) != 0)
                m2 &= ones1;
        }
        g(x1, m1);
        g(x2, m2);
        break;
      }
      case Opcode::OR_: {
        std::uint64_t m1 = M, m2 = M;
        if (iv) {
            const std::uint64_t one2 = forcedOnes(iv->regs[inst.rs2]);
            const std::uint64_t one1 = forcedOnes(iv->regs[inst.rs1]);
            if ((M & one2) != 0)
                m1 &= ~one2;
            else if ((M & one1) != 0)
                m2 &= ~one1;
        }
        g(x1, m1);
        g(x2, m2);
        break;
      }
      case Opcode::XOR_:
        g(x1, M);
        g(x2, M);
        break;

      // Immediates are encoded in the program image and cannot be
      // corrupted, so they prune unconditionally.
      case Opcode::ANDI:
        g(x1, M & std::uint64_t(inst.imm));
        break;
      case Opcode::ORI:
        g(x1, M & ~std::uint64_t(inst.imm));
        break;
      case Opcode::XORI:
        g(x1, M);
        break;

      case Opcode::SLLI:
        g(x1, M >> (unsigned(inst.imm) & 63));
        break;
      case Opcode::SRLI:
        g(x1, M << (unsigned(inst.imm) & 63));
        break;
      case Opcode::SRAI: {
        const unsigned sh = unsigned(inst.imm) & 63;
        std::uint64_t m = M << sh;
        // Result bits whose source index exceeds 63 replicate the
        // sign bit.
        if (sh && (M >> (64 - sh)) != 0)
            m |= signBit;
        g(x1, m);
        break;
      }

      // Variable shifts: the amount is unknown, so smear toward the
      // direction bits can travel from; the low 6 amount bits steer.
      case Opcode::SLL:
        g(x1, smearDown(M));
        if (M)
            g(x2, 0x3f);
        break;
      case Opcode::SRL:
      case Opcode::SRA:
        g(x1, smearUp(M));
        if (M)
            g(x2, 0x3f);
        break;

      // Comparisons collapse to bit 0.
      case Opcode::SLT:
      case Opcode::SLTU:
        if (M & 1) {
            g(x1, allBits);
            g(x2, allBits);
        }
        break;
      case Opcode::SLTI:
        if (M & 1)
            g(x1, allBits);
        break;

      case Opcode::LDI:
      case Opcode::NOP:
      case Opcode::HALT:
      case Opcode::JAL:  // link value is pc+4: incorruptible
        break;

      // Loads: the base register addresses the segment log; any flip
      // is a LoadEntryMismatch in the checker or a wrong access on
      // the main core, so it is live regardless of the destination.
      case Opcode::LB:
      case Opcode::LBU:
      case Opcode::LH:
      case Opcode::LHU:
      case Opcode::LW:
      case Opcode::LWU:
      case Opcode::LD:
      case Opcode::FLD:
        g(x1, allBits);
        break;

      // Stores: base as above; the value is compared (and written)
      // to the access width only -- the executor masks it first.
      case Opcode::SB:
      case Opcode::SH:
      case Opcode::SW:
      case Opcode::SD:
        g(x1, allBits);
        g(x2, lowMask(unsigned(inst.info().memSize) * 8));
        break;
      case Opcode::FSD:
        g(x1, allBits);
        g(f2, allBits);
        break;

      // Branch operands steer control flow (entry counts, watchdog
      // budget): always fully live, which is also what licenses the
      // infeasible-edge pruning in the fixpoint.
      case Opcode::BEQ:
      case Opcode::BNE:
      case Opcode::BLT:
      case Opcode::BGE:
      case Opcode::BLTU:
      case Opcode::BGEU:
        g(x1, allBits);
        g(x2, allBits);
        break;
      case Opcode::JALR:
        // The executor aligns the target with & ~3: bits 0-1 of the
        // base never reach the pc.
        g(x1, allBits & ~std::uint64_t(3));
        break;

      // FP arithmetic: rounding couples every source bit to every
      // result bit.  fflags side effects only reach the final-state
      // compare, so a fully dead destination generates nothing.
      case Opcode::FADD:
      case Opcode::FSUB:
      case Opcode::FMUL:
      case Opcode::FDIV:
      case Opcode::FMIN:
      case Opcode::FMAX:
        if (M) {
            g(f1, allBits);
            g(f2, allBits);
        }
        break;
      case Opcode::FSQRT:
        if (M)
            g(f1, allBits);
        break;
      case Opcode::FNEG:
        g(f1, M);  // pure sign-bit flip: bit-transparent
        break;
      case Opcode::FABS:
        g(f1, M & ~signBit);
        break;
      case Opcode::FMADD:
        if (M) {
            g(f1, allBits);
            g(f2, allBits);
            g(fslot(inst.rd), allBits);  // accumulator is a source
        }
        break;
      case Opcode::FCVT_D_L:
        if (M)
            g(x1, allBits);
        break;
      case Opcode::FCVT_L_D:
        if (M)
            g(f1, allBits);
        break;
      case Opcode::FMV_X_D:
        g(f1, M);
        break;
      case Opcode::FMV_D_X:
        g(x1, M);
        break;
      case Opcode::FEQ:
      case Opcode::FLT_:
      case Opcode::FLE:
        if (M & 1) {
            g(f1, allBits);
            g(f2, allBits);
        }
        break;

      case Opcode::SYSCALL:
        // (a ^ C) * odd-C': xor is bit-transparent, the multiply
        // propagates upward only.
        g(x1, smearDown(M));
        break;

      default:
        break;
    }
}

} // namespace

const char *
toString(SiteVerdict v)
{
    switch (v) {
      case SiteVerdict::Live: return "live";
      case SiteVerdict::Dead: return "dead";
      case SiteVerdict::Unknown: break;
    }
    return "unknown";
}

VulnAnalysis
VulnAnalysis::run(const isa::Program &prog, const Cfg &cfg,
                  const std::vector<bool> &reachable,
                  const VulnOptions &opts)
{
    VulnAnalysis va;
    const auto &code = prog.code();
    const std::size_t n = code.size();
    const std::size_t nb = cfg.blocks().size();
    va.liveOut_.assign(n, SlotMasks{});

    // FNV-1a over the instruction stream: the staleness key for
    // paradox-vuln/1 consumers.
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    for (const isa::Instruction &inst : code) {
        mix(std::uint64_t(inst.op) | (std::uint64_t(inst.rd) << 8) |
            (std::uint64_t(inst.rs1) << 16) |
            (std::uint64_t(inst.rs2) << 24));
        mix(std::uint64_t(inst.imm));
    }
    va.hash_ = h;

    const IntervalAnalysis *ai = opts.intervals;
    if (ai && !ai->converged())
        ai = nullptr;  // unconverged boxes prove nothing
    va.stats_.intervalsUsed = ai != nullptr;

    // Interval in-state per instruction, forward-walked from block
    // entries: feeds the AND/OR masking prunes and resolves
    // load/store addresses for the byte pass.
    std::vector<RegState> ivIn;
    if (ai) {
        ivIn.assign(n, RegState{});
        for (std::size_t b = 0; b < nb; ++b) {
            if (!reachable[b])
                continue;
            RegState s = ai->blockIn(b);
            const BasicBlock &blk = cfg.blocks()[b];
            for (std::size_t i = blk.first; i <= blk.last; ++i) {
                ivIn[i] = s;
                IntervalAnalysis::transfer(code[i], i, s);
            }
        }
    }

    std::vector<SlotMasks> blockLiveIn(nb, SlotMasks{});

    const auto transferBlock = [&](std::size_t b, SlotMasks live,
                                   bool record) {
        const BasicBlock &blk = cfg.blocks()[b];
        for (std::size_t i = blk.last + 1; i-- > blk.first;) {
            if (record)
                va.liveOut_[i] = live;
            const isa::Instruction &inst = code[i];
            const UseDef ud = useDef(inst);
            const std::uint64_t M =
                ud.def >= 0 ? live[unsigned(ud.def)] : 0;
            if (ud.def >= 0)
                live[unsigned(ud.def)] = 0;
            genUses(live, inst, M,
                    ai && ivIn[i].feasible ? &ivIn[i] : nullptr);
        }
        return live;
    };

    const auto blockOut = [&](std::size_t b) {
        const BasicBlock &blk = cfg.blocks()[b];
        SlotMasks out{};
        if (blk.indirect || blk.fallsOffEnd) {
            out.fill(allBits);  // unknown continuation: everything live
            return out;
        }
        for (std::size_t s : blk.succs) {
            // An interval-infeasible successor never executes, and
            // because branch operands are always fully live a dead
            // fault cannot steer execution into it either.
            if (ai && !ai->blockIn(s).feasible)
                continue;
            for (unsigned k = 0; k < numRegSlots; ++k)
                out[k] |= blockLiveIn[s][k];
        }
        // No successors (a halt block): registers are NOT
        // architectural output -- the final-state compare may still
        // see a dead flip, but only as a FinalStateMismatch.
        return out;
    };

    // The transfer is monotone over a finite lattice, so the
    // reverse-order sweep converges; no cap needed.
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b = nb; b-- > 0;) {
            if (!reachable[b])
                continue;
            SlotMasks in = transferBlock(b, blockOut(b), false);
            if (in != blockLiveIn[b]) {
                blockLiveIn[b] = in;
                changed = true;
            }
        }
    }

    // Record per-instruction masks and the aggregate statistics.
    std::uint64_t totalLive = 0, totalBits = 0;
    va.stats_.blockLiveFraction.assign(nb, 0.0);
    for (std::size_t b = 0; b < nb; ++b) {
        if (!reachable[b])
            continue;
        transferBlock(b, blockOut(b), true);
        const BasicBlock &blk = cfg.blocks()[b];
        std::uint64_t blive = 0;
        for (std::size_t i = blk.first; i <= blk.last; ++i) {
            const UseDef ud = useDef(code[i]);
            for (unsigned k = 0; k < numRegSlots; ++k)
                va.everLive_[k] |= va.liveOut_[i][k];
            if (ud.def > 0)
                va.classDestLive_[std::size_t(code[i].info().cls)] |=
                    va.liveOut_[i][unsigned(ud.def)];
            for (unsigned k = 0; k < numRegSlots; ++k)
                blive += std::uint64_t(
                    __builtin_popcountll(va.liveOut_[i][k]));
        }
        const std::uint64_t bbits =
            std::uint64_t(blk.size()) * numRegSlots * 64;
        va.stats_.blockLiveFraction[b] =
            bbits ? double(blive) / double(bbits) : 0.0;
        totalLive += blive;
        totalBits += bbits;
        if (ai && !blk.indirect && !blk.fallsOffEnd)
            for (std::size_t s : blk.succs)
                if (!ai->blockIn(s).feasible)
                    ++va.stats_.prunedEdges;
    }
    va.stats_.regBitsTotal = totalBits;
    va.stats_.regBitsLive = totalLive;
    va.stats_.liveFraction =
        totalBits ? double(totalLive) / double(totalBits) : 0.0;

    // ----------------------------------------------------------------
    // Byte-granular footprint liveness (informational: register
    // soundness never depends on it because store values and
    // addresses are always live).  Final memory is the campaign's
    // fingerprinted output, so every byte is live at exit; constant
    // -address stores kill, loads whose destination still matters
    // gen, unknown-address loads gen everything.
    // ----------------------------------------------------------------
    const std::vector<isa::MemRegion> regions =
        mergeRegions(footprintRegions(prog, opts.extraRegions));
    std::uint64_t totalBytes = 0;
    for (const isa::MemRegion &r : regions)
        totalBytes += r.size;
    va.stats_.footprintBytes = totalBytes;
    if (n == 0 || totalBytes == 0 ||
        totalBytes > opts.footprintByteCap)
        return va;
    va.stats_.footprintAnalyzed = true;

    const auto byteIndex = [&regions](Addr addr) -> std::int64_t {
        std::uint64_t off = 0;
        for (const isa::MemRegion &r : regions) {
            if (addr >= r.base && addr - r.base < r.size)
                return std::int64_t(off + (addr - r.base));
            off += r.size;
        }
        return -1;
    };
    const std::size_t nw = std::size_t((totalBytes + 63) / 64);
    using ByteSet = std::vector<std::uint64_t>;
    const auto setBit = [](ByteSet &s, std::int64_t i) {
        if (i >= 0)
            s[std::size_t(i) / 64] |= std::uint64_t(1) << (i % 64);
    };
    const auto clearBit = [](ByteSet &s, std::int64_t i) {
        if (i >= 0)
            s[std::size_t(i) / 64] &= ~(std::uint64_t(1) << (i % 64));
    };
    ByteSet allLive(nw, allBits);
    if (totalBytes % 64)
        allLive[nw - 1] = lowMask(unsigned(totalBytes % 64));
    std::vector<ByteSet> memIn(nb, ByteSet(nw, 0));

    // Constant access address of instruction i, or -1.
    const auto constAddr = [&](std::size_t i) -> std::int64_t {
        if (!ai || !ivIn[i].feasible)
            return -1;
        const Interval a = intervalAdd(ivIn[i].regs[code[i].rs1],
                                       Interval::constant(code[i].imm));
        return a.isConstant() && a.lo >= 0 ? a.lo : -1;
    };

    const auto memTransfer = [&](std::size_t b, ByteSet live) {
        const BasicBlock &blk = cfg.blocks()[b];
        for (std::size_t i = blk.last + 1; i-- > blk.first;) {
            const isa::Instruction &inst = code[i];
            const isa::InstInfo &info = inst.info();
            if (info.isStore) {
                const std::int64_t a = constAddr(i);
                if (a < 0)
                    continue;  // unknown target: kills nothing
                for (unsigned j = 0; j < info.memSize; ++j)
                    clearBit(live, byteIndex(Addr(a) + j));
            } else if (info.isLoad) {
                const unsigned slot = info.writesFpReg
                                          ? fslot(inst.rd)
                                          : xslot(inst.rd);
                if (slot == 0 || va.liveOut_[i][slot] == 0)
                    continue;  // the loaded value goes nowhere
                const std::int64_t a = constAddr(i);
                if (a < 0) {
                    live = allLive;  // could read any byte
                    continue;
                }
                for (unsigned j = 0; j < info.memSize; ++j)
                    setBit(live, byteIndex(Addr(a) + j));
            }
        }
        return live;
    };

    changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b = nb; b-- > 0;) {
            if (!reachable[b])
                continue;
            const BasicBlock &blk = cfg.blocks()[b];
            ByteSet out(nw, 0);
            if (blk.indirect || blk.fallsOffEnd || blk.succs.empty()) {
                out = allLive;  // final memory is the output
            } else {
                for (std::size_t s : blk.succs) {
                    if (ai && !ai->blockIn(s).feasible)
                        continue;
                    for (std::size_t w = 0; w < nw; ++w)
                        out[w] |= memIn[s][w];
                }
            }
            ByteSet in = memTransfer(b, std::move(out));
            if (in != memIn[b]) {
                memIn[b] = std::move(in);
                changed = true;
            }
        }
    }
    std::uint64_t liveEntry = 0;
    for (std::uint64_t w : memIn[cfg.entry()])
        liveEntry += std::uint64_t(__builtin_popcountll(w));
    // Words past totalBytes were never set (no byte maps there).
    va.stats_.footprintLiveAtEntry = liveEntry;
    return va;
}

std::shared_ptr<const VulnAnalysis>
VulnAnalysis::build(const isa::Program &prog,
                    const std::vector<isa::MemRegion> &extraRegions)
{
    const Cfg cfg = Cfg::build(prog);
    const std::vector<bool> reachable = cfg.reachableBlocks();
    const IntervalAnalysis ai =
        IntervalAnalysis::run(prog, cfg, reachable);
    VulnOptions opts;
    opts.extraRegions = extraRegions;
    opts.intervals = &ai;  // run() ignores it unless converged
    return std::make_shared<const VulnAnalysis>(
        run(prog, cfg, reachable, opts));
}

std::uint64_t
VulnAnalysis::liveOutMask(std::size_t instIdx, unsigned slot) const
{
    if (instIdx >= liveOut_.size() || slot >= numRegSlots)
        return allBits;  // out of range: claim nothing
    return liveOut_[instIdx][slot];
}

SiteVerdict
VulnAnalysis::regBitVerdict(std::size_t instIdx, unsigned slot,
                            unsigned bit) const
{
    if (slot == 0)
        return SiteVerdict::Dead;  // x0 is architecturally immutable
    if (instIdx >= liveOut_.size() || slot >= numRegSlots)
        return SiteVerdict::Unknown;
    return ((liveOut_[instIdx][slot] >> (bit & 63)) & 1)
               ? SiteVerdict::Live
               : SiteVerdict::Dead;
}

SiteVerdict
VulnAnalysis::cellVerdict(const faults::WeakCell &cell) const
{
    switch (cell.kind) {
      case faults::SiteKind::LogRow:
        // Store rows always matter; load rows depend on the consuming
        // instruction and are judged per hit (loadEntryVerdict).
        return SiteVerdict::Live;
      case faults::SiteKind::RegisterBit: {
        // FaultInjector applies register cells through
        // ArchState::writeBit(Integer, index, bit): the index wraps
        // onto x1..x31 (x0 stays zero), the bit wraps mod 64.
        const unsigned slot =
            1 + unsigned(cell.index) % (isa::numIntRegs - 1);
        return ((everLive_[slot] >> (cell.bit & 63)) & 1)
                   ? SiteVerdict::Live
                   : SiteVerdict::Dead;
      }
      case faults::SiteKind::FunctionalUnit: {
        // The cell's index IS the instruction class whose results it
        // corrupts (constrained chipEvent match).
        const std::size_t cls =
            std::size_t(cell.index) %
            std::size_t(isa::InstClass::NumClasses);
        return ((classDestLive_[cls] >> (cell.bit & 63)) & 1)
                   ? SiteVerdict::Live
                   : SiteVerdict::Dead;
      }
    }
    return SiteVerdict::Unknown;
}

SiteVerdict
VulnAnalysis::loadEntryVerdict(const isa::Instruction &inst,
                               std::size_t instIdx,
                               unsigned bit) const
{
    const isa::InstInfo &info = inst.info();
    if (!info.isLoad)
        return SiteVerdict::Live;  // store values are always compared
    bit &= 63;
    const unsigned width = unsigned(info.memSize) * 8;
    if (bit >= width)
        return SiteVerdict::Dead;  // executor re-extends low bytes
    const unsigned slot =
        info.writesFpReg ? fslot(inst.rd) : xslot(inst.rd);
    if (slot == 0)
        return SiteVerdict::Dead;  // load to x0: value discarded
    if (instIdx >= liveOut_.size())
        return SiteVerdict::Unknown;
    const bool signExt = inst.op == isa::Opcode::LB ||
                         inst.op == isa::Opcode::LH ||
                         inst.op == isa::Opcode::LW;
    const std::uint64_t influence = (signExt && bit == width - 1)
                                        ? (allBits << bit)
                                        : (std::uint64_t(1) << bit);
    return (influence & liveOut_[instIdx][slot])
               ? SiteVerdict::Live
               : SiteVerdict::Dead;
}

std::string
vulnJsonHeader()
{
    return "{\"schema\":\"paradox-vuln/1\"}";
}

namespace
{

std::string
frac(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6f", v);
    return buf;
}

} // namespace

std::string
vulnJsonLine(const VulnAnalysis &va, const std::string &program,
             unsigned scale)
{
    const VulnAnalysis::Stats &st = va.stats();
    std::ostringstream os;
    char hash[32];
    std::snprintf(hash, sizeof hash, "0x%016llx",
                  static_cast<unsigned long long>(va.programHash()));
    os << "{\"record\":\"vuln\",\"program\":\"" << jsonEscape(program)
       << "\",\"scale\":" << scale
       << ",\"program_hash\":\"" << hash << "\""
       << ",\"instructions\":" << va.instructionCount()
       << ",\"reg_bits_total\":" << st.regBitsTotal
       << ",\"reg_bits_live\":" << st.regBitsLive
       << ",\"live_fraction\":" << frac(st.liveFraction)
       << ",\"pruned_edges\":" << st.prunedEdges
       << ",\"intervals_used\":" << (st.intervalsUsed ? 1 : 0)
       << ",\"footprint_bytes\":" << st.footprintBytes
       << ",\"footprint_analyzed\":" << (st.footprintAnalyzed ? 1 : 0)
       << ",\"footprint_live_entry\":" << st.footprintLiveAtEntry
       << ",\"block_live_fraction\":[";
    for (std::size_t b = 0; b < st.blockLiveFraction.size(); ++b) {
        if (b)
            os << ",";
        os << frac(st.blockLiveFraction[b]);
    }
    os << "]}";
    return os.str();
}

std::string
vulnChipJsonLine(const VulnAnalysis &va, const faults::ChipModel &chip,
                 const std::string &program)
{
    std::ostringstream os;
    char fp[32];
    std::snprintf(fp, sizeof fp, "0x%016llx",
                  static_cast<unsigned long long>(chip.fingerprint()));
    std::size_t dead = 0, live = 0;
    std::ostringstream cells;
    for (std::size_t i = 0; i < chip.cells().size(); ++i) {
        const faults::WeakCell &c = chip.cells()[i];
        const SiteVerdict v = va.cellVerdict(c);
        (v == SiteVerdict::Dead ? dead : live) += 1;
        if (i)
            cells << ",";
        cells << "{\"kind\":\"" << faults::siteKindName(c.kind)
              << "\",\"core\":" << c.core << ",\"index\":" << c.index
              << ",\"bit\":" << c.bit << ",\"verdict\":\""
              << toString(v) << "\"}";
    }
    os << "{\"record\":\"chip_verdicts\",\"program\":\""
       << jsonEscape(program)
       << "\",\"chip_seed\":" << chip.config().chipSeed
       << ",\"fingerprint\":\"" << fp << "\""
       << ",\"dead_cells\":" << dead << ",\"live_cells\":" << live
       << ",\"cells\":[" << cells.str() << "]}";
    return os.str();
}

} // namespace analysis
} // namespace paradox
