#include "analysis/memdep.hh"

#include <array>
#include <cstdio>
#include <set>
#include <string>

#include "analysis/regmodel.hh"

namespace paradox
{
namespace analysis
{

namespace
{

using I128 = __int128;

/** Inclusive byte extent [first, last] of an access. */
struct Extent
{
    I128 first;
    I128 last;
};

bool
disjoint(const Extent &a, const Extent &b)
{
    return a.last < b.first || b.last < a.first;
}

/** Do @p a and @p b provably share their base value? */
bool
sameSymbolicBase(const MemAccess &a, const MemAccess &b)
{
    return a.block == b.block && a.baseReg == b.baseReg &&
           a.baseEpoch == b.baseEpoch;
}

/** Provably the exact same bytes on every execution. */
bool
mustSameExtent(const MemAccess &a, const MemAccess &b)
{
    if (a.size != b.size)
        return false;
    if (sameSymbolicBase(a, b) && a.offset == b.offset)
        return true;
    return a.addr.isConstant() && b.addr.isConstant() &&
           a.addr.lo == b.addr.lo;
}

/** Does @p outer provably overwrite every byte of @p inner? */
bool
mustCover(const MemAccess &outer, const MemAccess &inner)
{
    if (sameSymbolicBase(outer, inner) &&
        outer.offset <= inner.offset &&
        I128(outer.offset) + outer.size >=
            I128(inner.offset) + inner.size)
        return true;
    return outer.addr.isConstant() && inner.addr.isConstant() &&
           outer.addr.lo <= inner.addr.lo &&
           I128(outer.addr.lo) + outer.size >=
               I128(inner.addr.lo) + inner.size;
}

std::string
accessStr(const MemAccess &a)
{
    return std::string(a.isStore ? "store" : "load") + " at #" +
           std::to_string(a.index) + " (" + std::to_string(a.size) +
           " bytes off x" + std::to_string(a.baseReg) +
           (a.offset >= 0 ? "+" : "") + std::to_string(a.offset) + ")";
}

} // namespace

const char *
aliasKindName(AliasKind k)
{
    switch (k) {
      case AliasKind::NoAlias: return "no";
      case AliasKind::MayAlias: return "may";
      case AliasKind::MustAlias: return "must";
    }
    return "?";
}

MemDep
MemDep::run(const Context &ctx, const IntervalAnalysis &ai)
{
    MemDep md;
    const auto &blocks = ctx.cfg.blocks();
    const auto &code = ctx.prog.code();
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        if (!ctx.reachable[b])
            continue;
        RegState s = ai.blockIn(b);
        if (!s.feasible)
            continue;
        std::array<std::uint32_t, isa::numIntRegs> epoch{};
        for (std::size_t i = blocks[b].first; i <= blocks[b].last;
             ++i) {
            const auto &inst = code[i];
            const auto &ii = inst.info();
            if (ii.memSize != 0) {
                MemAccess a;
                a.index = i;
                a.block = b;
                a.isStore = ii.isStore;
                a.size = ii.memSize;
                a.baseReg = inst.rs1;
                a.baseEpoch = epoch[inst.rs1];
                a.offset = inst.imm;
                a.addr = intervalAdd(s.regs[inst.rs1],
                                     Interval::constant(inst.imm));
                md.accesses_.push_back(a);
            }
            IntervalAnalysis::transfer(inst, i, s);
            const UseDef ud = useDef(inst);
            if (ud.def >= 0 && unsigned(ud.def) < isa::numIntRegs)
                ++epoch[ud.def];
        }
    }
    return md;
}

AliasKind
MemDep::alias(const MemAccess &a, const MemAccess &b) const
{
    // Value-set separation works across arbitrary program points.
    if (!a.addr.isBottom() && !b.addr.isBottom()) {
        const Extent ea{a.addr.lo, I128(a.addr.hi) + a.size - 1};
        const Extent eb{b.addr.lo, I128(b.addr.hi) + b.size - 1};
        if (disjoint(ea, eb))
            return AliasKind::NoAlias;
        // Exact addresses on both sides: the overlap is certain.
        if (a.addr.isConstant() && b.addr.isConstant())
            return AliasKind::MustAlias;
    }
    // Same unmodified base register in one block: the displacement
    // comparison is exact even when the base interval is wide.
    if (sameSymbolicBase(a, b)) {
        const Extent ea{a.offset, I128(a.offset) + a.size - 1};
        const Extent eb{b.offset, I128(b.offset) + b.size - 1};
        if (disjoint(ea, eb))
            return AliasKind::NoAlias;
        return AliasKind::MustAlias;
    }
    return AliasKind::MayAlias;
}

MemDep::PairCounts
MemDep::pairCounts() const
{
    PairCounts pc;
    for (std::size_t i = 0; i < accesses_.size(); ++i) {
        for (std::size_t j = i + 1; j < accesses_.size(); ++j) {
            switch (alias(accesses_[i], accesses_[j])) {
              case AliasKind::NoAlias: ++pc.no; break;
              case AliasKind::MayAlias: ++pc.may; break;
              case AliasKind::MustAlias: ++pc.must; break;
            }
        }
    }
    return pc;
}

void
checkMemDep(const Context &ctx, const IntervalAnalysis &ai,
            std::vector<Diagnostic> &diags)
{
    const MemDep md = MemDep::run(ctx, ai);
    const auto &acc = md.accesses();

    // Accesses grouped per block (already in block-major order).
    std::size_t lo = 0;
    while (lo < acc.size()) {
        std::size_t hi = lo;
        while (hi < acc.size() && acc[hi].block == acc[lo].block)
            ++hi;

        for (std::size_t j = lo; j < hi; ++j) {
            if (acc[j].isStore)
                continue;
            // redundant-load: an earlier load of exactly these bytes
            // with no possibly-overlapping store in between.
            for (std::size_t i = lo; i < j; ++i) {
                if (acc[i].isStore || !mustSameExtent(acc[i], acc[j]))
                    continue;
                bool clobbered = false;
                for (std::size_t k = i + 1; k < j && !clobbered; ++k)
                    if (acc[k].isStore &&
                        md.alias(acc[k], acc[j]) != AliasKind::NoAlias)
                        clobbered = true;
                if (clobbered)
                    continue;
                diags.push_back(
                    {Severity::Info, "memdep", "redundant-load",
                     acc[j].index, "", "",
                     "load re-reads the exact bytes of the " +
                         accessStr(acc[i]) +
                         " with no intervening store that may "
                         "overlap them"});
                break;
            }
        }

        for (std::size_t i = lo; i < hi; ++i) {
            if (!acc[i].isStore)
                continue;
            // dead-memory-store: fully overwritten in the same block
            // before any possibly-overlapping load.
            for (std::size_t j = i + 1; j < hi; ++j) {
                if (acc[j].isStore && mustCover(acc[j], acc[i])) {
                    bool readFirst = false;
                    for (std::size_t k = i + 1; k < j && !readFirst;
                         ++k)
                        if (!acc[k].isStore &&
                            md.alias(acc[k], acc[i]) !=
                                AliasKind::NoAlias)
                            readFirst = true;
                    if (!readFirst)
                        diags.push_back(
                            {Severity::Warning, "memdep",
                             "dead-memory-store", acc[i].index, "",
                             "",
                             "stored bytes are fully overwritten "
                             "by the " +
                                 accessStr(acc[j]) +
                                 " before any possibly-overlapping "
                                 "load"});
                    break;
                }
            }
        }
        lo = hi;
    }

    // always-overlapping-access: certain overlap, different extents
    // (mixed-granularity traffic to the same memory).  One report
    // per later access.
    std::set<std::size_t> reported;
    for (std::size_t i = 0; i < acc.size(); ++i) {
        for (std::size_t j = i + 1; j < acc.size(); ++j) {
            if (md.alias(acc[i], acc[j]) != AliasKind::MustAlias ||
                mustSameExtent(acc[i], acc[j]))
                continue;
            const std::size_t at =
                std::max(acc[i].index, acc[j].index);
            if (!reported.insert(at).second)
                continue;
            diags.push_back(
                {Severity::Warning, "memdep",
                 "always-overlapping-access", at, "", "",
                 accessStr(acc[i]) + " and " + accessStr(acc[j]) +
                     " always overlap but cover different bytes"});
        }
    }
}

std::string
memdepJsonHeader()
{
    // Compact form (no space after ':' or ','): obs::jsonField only
    // recognizes keys immediately preceded by '{' or ','.
    return "{\"record\":\"header\",\"schema\":\"paradox-memdep/1\"}";
}

std::string
memdepJsonLine(const std::string &workload, unsigned scale,
               const EffectSummary &es,
               const MemDep::PairCounts &pairs,
               std::size_t staticAccesses)
{
    std::string s = "{\"record\":\"memdep\",\"program\":\"" +
                    jsonEscape(workload) + "\"";
    auto num = [&](const char *key, std::uint64_t v) {
        s += ",\"" + std::string(key) + "\":" + std::to_string(v);
    };
    num("scale", scale);
    num("decoded_uops", es.decodedUops());
    num("decoded_hash", es.decodedHash());
    num("runs", es.runs().size());
    num("static_loads", es.staticLoads());
    num("static_stores", es.staticStores());
    num("static_accesses", staticAccesses);
    num("max_run_log_bytes", es.maxRunBytes());
    num("max_uop_log_bytes", es.maxUopBytes());
    const EffectParams &p = es.params();
    num("load_entry_bytes", p.loadEntryBytes);
    num("store_entry_bytes", p.storeEntryBytes);
    num("store_old_value_bytes", p.storeOldValueBytes);
    num("line_copy_bytes", p.lineCopyBytes);
    num("line_bytes", p.lineBytes);
    num("line_granularity", p.lineGranularityRollback ? 1 : 0);
    num("rollback", p.rollbackSupported ? 1 : 0);
    num("pairs_no", pairs.no);
    num("pairs_may", pairs.may);
    num("pairs_must", pairs.must);
    s += "}";
    return s;
}

} // namespace analysis
} // namespace paradox
