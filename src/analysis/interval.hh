/**
 * @file
 * Signed-interval abstract value domain for the PDX64 analyses.
 *
 * An Interval over-approximates the set of 64-bit values a register
 * can hold, interpreted as signed two's complement: [lo, hi] with
 * lo <= hi, plus an explicit empty (bottom) element.  The executor's
 * arithmetic wraps; every transfer here therefore computes candidate
 * bounds in 128 bits and returns top() whenever any value in the
 * input boxes could wrap, which keeps the domain sound without a
 * wrapped-interval representation.
 *
 * The domain deliberately has infinite ascending chains; the fixpoint
 * engine (ai.cc) applies widen() at loop heads to terminate and a
 * short narrowing phase to recover precision.
 */

#ifndef PARADOX_ANALYSIS_INTERVAL_HH
#define PARADOX_ANALYSIS_INTERVAL_HH

#include <cstdint>
#include <limits>
#include <string>

namespace paradox
{
namespace analysis
{

/** A signed 64-bit interval, or the empty set. */
struct Interval
{
    static constexpr std::int64_t min64 =
        std::numeric_limits<std::int64_t>::min();
    static constexpr std::int64_t max64 =
        std::numeric_limits<std::int64_t>::max();

    std::int64_t lo = 0;
    std::int64_t hi = -1;  //!< lo > hi encodes bottom (canonical 0,-1)

    static constexpr Interval bottom() { return {0, -1}; }
    static constexpr Interval top() { return {min64, max64}; }
    static constexpr Interval constant(std::int64_t v) { return {v, v}; }

    /** [a, b] clipped to canonical bottom when a > b. */
    static constexpr Interval
    range(std::int64_t a, std::int64_t b)
    {
        return a > b ? bottom() : Interval{a, b};
    }

    bool isBottom() const { return lo > hi; }
    bool isTop() const { return lo == min64 && hi == max64; }
    bool isConstant() const { return lo == hi; }
    /** Both endpoints are finite (not pushed to the 64-bit rails). */
    bool isBounded() const
    { return !isBottom() && lo != min64 && hi != max64; }

    bool contains(std::int64_t v) const { return lo <= v && v <= hi; }
    bool
    containsInterval(const Interval &o) const
    {
        return o.isBottom() || (!isBottom() && lo <= o.lo && o.hi <= hi);
    }

    /** Number of values, saturated at uint64 max. */
    std::uint64_t width() const;

    bool operator==(const Interval &) const = default;

    std::string toString() const;  //!< "[lo, hi]", "bot", "top"
};

/** @{ Lattice operations. */
Interval join(const Interval &a, const Interval &b);
Interval meet(const Interval &a, const Interval &b);
/** Classic endpoint widening: bounds still moving go to the rails. */
Interval widen(const Interval &prev, const Interval &next);
/** @} */

/** @{ Transfer functions (sound over wrapping 64-bit semantics). */
Interval intervalAdd(const Interval &a, const Interval &b);
Interval intervalSub(const Interval &a, const Interval &b);
Interval intervalMul(const Interval &a, const Interval &b);
Interval intervalNeg(const Interval &a);
/** rd for MULH: the high 64 bits of the signed 128-bit product. */
Interval intervalMulHigh(const Interval &a, const Interval &b);
/** Signed division truncating toward zero (RISC-V DIV, no trap). */
Interval intervalDiv(const Interval &a, const Interval &b);
Interval intervalRem(const Interval &a, const Interval &b);
Interval intervalDivU(const Interval &a, const Interval &b);
Interval intervalRemU(const Interval &a, const Interval &b);
Interval intervalShl(const Interval &a, unsigned sh);
Interval intervalShrLogical(const Interval &a, unsigned sh);
Interval intervalShrArith(const Interval &a, unsigned sh);
Interval intervalAnd(const Interval &a, const Interval &b);
Interval intervalOr(const Interval &a, const Interval &b);
Interval intervalXor(const Interval &a, const Interval &b);
/** @} */

/** Three-valued predicate verdict over intervals. */
enum class Tri : std::uint8_t
{
    False,   //!< holds for no value pair
    True,    //!< holds for every value pair
    Unknown,
};

/** The six PDX64 branch predicates, as relations on (a, b). */
enum class Cmp : std::uint8_t
{
    Eq, Ne, LtS, GeS, LtU, GeU,
};

/** Negation (the fallthrough edge of a branch on @p c). */
Cmp negate(Cmp c);

/** Evaluate `a <cmp> b` over the boxes. */
Tri evalCmp(Cmp cmp, const Interval &a, const Interval &b);

/**
 * Refine @p a and @p b under the assumption `a <cmp> b` holds.
 * Either result may become bottom: the guarded edge is infeasible.
 */
void refineCmp(Cmp cmp, Interval &a, Interval &b);

} // namespace analysis
} // namespace paradox

#endif // PARADOX_ANALYSIS_INTERVAL_HH
