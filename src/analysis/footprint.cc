/**
 * @file
 * Static memory-footprint analysis.
 *
 * A light constant propagation over the integer registers resolves
 * every load/store whose address is statically computable (LDI bases
 * plus ALU arithmetic on constants).  Each resolved access is checked
 * for natural alignment against its width, and for membership in the
 * program's footprint: regions declared via
 * ProgramBuilder::footprint(), regions derived from the initial data
 * image, and caller-supplied extras (e.g. the ABI result cell).
 * Accesses whose address depends on runtime values (loop-carried
 * induction, loaded pointers) are outside the scope of a static
 * check and are left alone.
 */

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <vector>

#include "analysis/ai.hh"
#include "analysis/interval.hh"
#include "analysis/passes.hh"
#include "analysis/regmodel.hh"

namespace paradox
{
namespace analysis
{

namespace
{

/** Constant-propagation lattice value for one integer register. */
struct CVal
{
    enum Kind : std::uint8_t
    {
        Bottom,  //!< no path seen yet
        Const,   //!< known constant on every path
        Top,     //!< varies or unknown
    };

    Kind kind = Bottom;
    std::uint64_t v = 0;

    static CVal constant(std::uint64_t v) { return {Const, v}; }
    static CVal top() { return {Top, 0}; }

    bool operator==(const CVal &) const = default;
};

CVal
join(const CVal &a, const CVal &b)
{
    if (a.kind == CVal::Bottom)
        return b;
    if (b.kind == CVal::Bottom)
        return a;
    if (a.kind == CVal::Const && b.kind == CVal::Const && a.v == b.v)
        return a;
    return CVal::top();
}

using State = std::vector<CVal>;  // one CVal per integer register

std::string
hex(std::uint64_t v)
{
    std::ostringstream os;
    os << "0x" << std::hex << v;
    return os.str();
}

/** Apply one instruction's effect on the integer-constant state. */
void
transfer(const isa::Instruction &inst, State &s)
{
    using isa::Opcode;

    auto setRd = [&](const CVal &v) {
        if (inst.rd != 0)
            s[inst.rd] = v;
    };
    auto binop = [&](auto fn) {
        const CVal &a = s[inst.rs1], &b = s[inst.rs2];
        if (a.kind == CVal::Const && b.kind == CVal::Const)
            setRd(CVal::constant(fn(a.v, b.v)));
        else
            setRd(CVal::top());
    };
    auto immop = [&](auto fn) {
        const CVal &a = s[inst.rs1];
        if (a.kind == CVal::Const)
            setRd(CVal::constant(fn(a.v)));
        else
            setRd(CVal::top());
    };
    const std::uint64_t imm = std::uint64_t(inst.imm);

    switch (inst.op) {
      case Opcode::LDI:
        setRd(CVal::constant(imm));
        break;
      case Opcode::ADDI:
        immop([&](std::uint64_t a) { return a + imm; });
        break;
      case Opcode::ANDI:
        immop([&](std::uint64_t a) { return a & imm; });
        break;
      case Opcode::ORI:
        immop([&](std::uint64_t a) { return a | imm; });
        break;
      case Opcode::XORI:
        immop([&](std::uint64_t a) { return a ^ imm; });
        break;
      case Opcode::SLLI:
        immop([&](std::uint64_t a) { return a << (imm & 63); });
        break;
      case Opcode::SRLI:
        immop([&](std::uint64_t a) { return a >> (imm & 63); });
        break;
      case Opcode::ADD:
        binop([](std::uint64_t a, std::uint64_t b) { return a + b; });
        break;
      case Opcode::SUB:
        binop([](std::uint64_t a, std::uint64_t b) { return a - b; });
        break;
      case Opcode::AND_:
        binop([](std::uint64_t a, std::uint64_t b) { return a & b; });
        break;
      case Opcode::OR_:
        binop([](std::uint64_t a, std::uint64_t b) { return a | b; });
        break;
      case Opcode::XOR_:
        binop([](std::uint64_t a, std::uint64_t b) { return a ^ b; });
        break;
      case Opcode::MUL:
        binop([](std::uint64_t a, std::uint64_t b) { return a * b; });
        break;
      default: {
        // Any other integer def loses constness.
        const UseDef ud = useDef(inst);
        if (ud.def >= 0 && unsigned(ud.def) < isa::numIntRegs)
            s[unsigned(ud.def)] = CVal::top();
        break;
      }
    }
    s[0] = CVal::constant(0);  // x0 is hard-wired
}

} // namespace

std::vector<isa::MemRegion>
footprintRegions(const isa::Program &prog,
                 const std::vector<isa::MemRegion> &extras)
{
    std::vector<isa::MemRegion> regions = prog.regions();
    for (const auto &r : extras)
        regions.push_back(r);

    // Merge the 8-byte initial-data cells into contiguous runs.
    auto cells = prog.data();
    std::sort(cells.begin(), cells.end(),
              [](const isa::DataInit &a, const isa::DataInit &b) {
                  return a.addr < b.addr;
              });
    for (std::size_t i = 0; i < cells.size();) {
        Addr base = cells[i].addr;
        Addr end = base + 8;
        std::size_t j = i + 1;
        while (j < cells.size() && cells[j].addr <= end) {
            end = std::max(end, cells[j].addr + 8);
            ++j;
        }
        regions.push_back({base, end - base, "data@" + hex(base)});
        i = j;
    }
    return regions;
}

std::vector<isa::MemRegion>
mergeRegions(std::vector<isa::MemRegion> regions)
{
    regions.erase(std::remove_if(regions.begin(), regions.end(),
                                 [](const isa::MemRegion &r) {
                                     return r.size == 0;
                                 }),
                  regions.end());
    std::sort(regions.begin(), regions.end(),
              [](const isa::MemRegion &a, const isa::MemRegion &b) {
                  return a.base < b.base;
              });
    std::vector<isa::MemRegion> runs;
    for (const auto &r : regions) {
        if (!runs.empty() &&
            r.base <= runs.back().base + runs.back().size) {
            auto &prev = runs.back();
            const Addr end =
                std::max(prev.base + prev.size, r.base + r.size);
            if (r.base + r.size > prev.base + prev.size)
                prev.name += "+" + r.name;
            prev.size = end - prev.base;
        } else {
            runs.push_back(r);
        }
    }
    return runs;
}

void
checkFootprint(const Context &ctx, std::vector<Diagnostic> &diags)
{
    const auto &blocks = ctx.cfg.blocks();
    const auto &code = ctx.prog.code();
    const std::size_t nb = blocks.size();
    if (nb == 0)
        return;

    const auto regions =
        footprintRegions(ctx.prog, ctx.opts.extraRegions);

    // Forward constant-propagation fixpoint.
    State bottom(isa::numIntRegs);
    std::vector<State> in(nb, bottom), out(nb, bottom);

    auto joinIn = [&](std::size_t b) {
        State s(isa::numIntRegs);
        if (b == ctx.cfg.entry() || blocks[b].callReturnPoint) {
            for (auto &v : s)
                v = CVal::top();
        }
        for (std::size_t p : blocks[b].preds) {
            if (!ctx.reachable[p])
                continue;
            for (unsigned r = 0; r < isa::numIntRegs; ++r)
                s[r] = join(s[r], out[p][r]);
        }
        s[0] = CVal::constant(0);
        return s;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b = 0; b < nb; ++b) {
            if (!ctx.reachable[b])
                continue;
            State s = joinIn(b);
            in[b] = s;
            for (std::size_t i = blocks[b].first; i <= blocks[b].last;
                 ++i)
                transfer(code[i], s);
            if (s != out[b]) {
                out[b] = std::move(s);
                changed = true;
            }
        }
    }

    // Check every constant-addressable access.
    for (std::size_t b = 0; b < nb; ++b) {
        if (!ctx.reachable[b])
            continue;
        State s = in[b];
        for (std::size_t i = blocks[b].first; i <= blocks[b].last;
             ++i) {
            const auto &inst = code[i];
            const auto &ii = inst.info();
            if (ii.memSize != 0 &&
                s[inst.rs1].kind == CVal::Const) {
                const unsigned size = ii.memSize;
                const std::uint64_t addr =
                    s[inst.rs1].v + std::uint64_t(inst.imm);
                if (addr % size != 0)
                    diags.push_back(
                        {Severity::Warning, "footprint",
                         "misaligned-access", i, "", "",
                         std::to_string(size) + "-byte access at " +
                             hex(addr) + " is not naturally aligned"});
                if (!regions.empty()) {
                    bool inside = false;
                    for (const auto &r : regions)
                        if (r.contains(addr, size)) {
                            inside = true;
                            break;
                        }
                    if (!inside) {
                        const bool store = ii.isStore;
                        diags.push_back(
                            {store ? Severity::Error
                                   : Severity::Warning,
                             "footprint",
                             store ? "out-of-footprint-store"
                                   : "out-of-footprint-load",
                             i, "", "",
                             std::string(store ? "store to "
                                               : "load from ") +
                                 hex(addr) + " (" +
                                 std::to_string(size) +
                                 " bytes) is outside every declared "
                                 "or data-derived region"});
                    }
                }
            }
            transfer(inst, s);
        }
    }

    if (regions.empty())
        diags.push_back({Severity::Info, "footprint", "no-footprint",
                         Diagnostic::noIndex, "", "",
                         "program declares no footprint and has no "
                         "initial data; bounds were not checked"});
}

namespace
{

using I128 = __int128;

/** "[0x100000, 0x10ffff]" (hex when non-negative), or one value. */
std::string
ivStr(const Interval &iv)
{
    auto one = [](std::int64_t v) {
        return v >= 0 ? hex(std::uint64_t(v)) : std::to_string(v);
    };
    if (iv.isConstant())
        return one(iv.lo);
    return "[" + one(iv.lo) + ", " + one(iv.hi) + "]";
}

} // namespace

void
checkRanges(const Context &ctx, const IntervalAnalysis &ai,
            std::vector<Diagnostic> &diags)
{
    using isa::Opcode;
    const auto &blocks = ctx.cfg.blocks();
    const auto &code = ctx.prog.code();
    const std::size_t nb = blocks.size();
    if (nb == 0)
        return;

    const auto runs = mergeRegions(
        footprintRegions(ctx.prog, ctx.opts.extraRegions));
    // Negative "addresses" are huge unsigned values; they can only
    // hit the footprint if some run reaches the upper half.
    bool runsHigh = false;
    for (const auto &r : runs)
        if (I128(r.base) + r.size > I128(1) << 63)
            runsHigh = true;

    // Does [lo, hi] (signed, inclusive) touch any run at all?
    auto overlapsAny = [&](I128 lo, I128 hi) {
        if (lo < 0 && runsHigh)
            return true;
        for (const auto &r : runs)
            if (hi >= I128(r.base) && lo < I128(r.base) + r.size)
                return true;
        return false;
    };
    // Is [lo, hi] entirely inside one merged run?  (Runs are maximal
    // and disjoint, so gap-free coverage means a single run.)
    auto containedInRun = [&](I128 lo, I128 hi) {
        if (lo < 0)
            return false;
        for (const auto &r : runs)
            if (lo >= I128(r.base) && hi < I128(r.base) + r.size)
                return true;
        return false;
    };

    for (std::size_t b = 0; b < nb; ++b) {
        if (!ctx.reachable[b])
            continue;
        RegState s = ai.blockIn(b);
        if (!s.feasible)
            continue;
        for (std::size_t i = blocks[b].first; i <= blocks[b].last;
             ++i) {
            const auto &inst = code[i];
            const auto &ii = inst.info();

            if (ii.memSize != 0) {
                const Interval addr = intervalAdd(
                    s.regs[inst.rs1], Interval::constant(inst.imm));
                const unsigned size = ii.memSize;
                const bool store = ii.isStore;
                if (!addr.isBottom() && !runs.empty()) {
                    const I128 first = addr.lo;
                    const I128 last = I128(addr.hi) + size - 1;
                    if (!overlapsAny(first, last)) {
                        // Same pass/code as the constant path so the
                        // two never double-report one access.
                        diags.push_back(
                            {store ? Severity::Error
                                   : Severity::Warning,
                             "footprint",
                             store ? "out-of-footprint-store"
                                   : "out-of-footprint-load",
                             i, "", "",
                             std::string(store ? "store to "
                                               : "load from ") +
                                 ivStr(addr) + " (" +
                                 std::to_string(size) +
                                 " bytes) is entirely outside every "
                                 "declared or data-derived region"});
                    } else if (addr.isBounded() &&
                               !containedInRun(first, last)) {
                        diags.push_back(
                            {Severity::Warning, "ranges",
                             store ? "possible-out-of-footprint-store"
                                   : "possible-out-of-footprint-load",
                             i, "", "",
                             std::string(store ? "store to "
                                               : "load from ") +
                                 ivStr(addr) + " (" +
                                 std::to_string(size) +
                                 " bytes) may fall outside the "
                                 "declared footprint"});
                    }
                }
                if (addr.isConstant() &&
                    std::uint64_t(addr.lo) % size != 0)
                    diags.push_back(
                        {Severity::Warning, "footprint",
                         "misaligned-access", i, "", "",
                         std::to_string(size) + "-byte access at " +
                             hex(std::uint64_t(addr.lo)) +
                             " is not naturally aligned"});
            }

            switch (inst.op) {
            case Opcode::DIV:
            case Opcode::DIVU:
            case Opcode::REM:
            case Opcode::REMU: {
                const Interval &d = s.regs[inst.rs2];
                if (!d.isBottom() && !d.isTop() && d.contains(0))
                    diags.push_back(
                        {Severity::Warning, "ranges",
                         "possible-div-by-zero", i, "", "",
                         std::string(d.isConstant()
                                         ? "divisor is always zero"
                                         : "divisor range " +
                                               ivStr(d) +
                                               " includes zero") +
                             " (defined but almost surely a bug)"});
                break;
            }
            case Opcode::SLL:
            case Opcode::SRL:
            case Opcode::SRA: {
                const Interval &amt = s.regs[inst.rs2];
                if (!amt.isBottom() && !amt.isTop() &&
                    !Interval{0, 63}.containsInterval(amt))
                    diags.push_back(
                        {Severity::Warning, "ranges", "shift-range",
                         i, "", "",
                         "shift amount range " + ivStr(amt) +
                             " exceeds [0, 63]; hardware masks it "
                             "to 6 bits"});
                break;
            }
            case Opcode::SLLI:
            case Opcode::SRLI:
            case Opcode::SRAI:
                if (inst.imm < 0 || inst.imm > 63)
                    diags.push_back(
                        {Severity::Warning, "ranges", "shift-range",
                         i, "", "",
                         "immediate shift amount " +
                             std::to_string(inst.imm) +
                             " is masked to " +
                             std::to_string(inst.imm & 63)});
                break;
            default:
                break;
            }

            if (i == blocks[b].last) {
                Cmp cmp;
                if (branchCmp(inst, cmp)) {
                    const Tri v = evalCmp(cmp, s.regs[inst.rs1],
                                          s.regs[inst.rs2]);
                    if (v != Tri::Unknown &&
                        blocks[b].succs.size() > 1)
                        diags.push_back(
                            {Severity::Warning, "ranges",
                             "dead-branch", i, "", "",
                             std::string("branch is ") +
                                 (v == Tri::True ? "always"
                                                 : "never") +
                                 " taken; one successor is "
                                 "statically dead"});
                }
            }

            IntervalAnalysis::transfer(inst, i, s);
        }
    }
}

} // namespace analysis
} // namespace paradox
