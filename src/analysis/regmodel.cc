#include "analysis/regmodel.hh"

#include "sim/logging.hh"

namespace paradox
{
namespace analysis
{

std::string
slotName(unsigned slot)
{
    if (slot < isa::numIntRegs)
        return "x" + std::to_string(slot);
    return "f" + std::to_string(slot - isa::numIntRegs);
}

namespace
{

void
addUse(UseDef &ud, unsigned slot)
{
    ud.uses[ud.nUses++] = std::uint8_t(slot);
}

void
setIntDef(UseDef &ud, unsigned rd)
{
    if (rd != 0)  // x0 writes are discarded, never a def
        ud.def = int(xslot(rd));
}

} // namespace

UseDef
useDef(const isa::Instruction &inst)
{
    using isa::Opcode;
    UseDef ud;
    const unsigned rd = inst.rd, rs1 = inst.rs1, rs2 = inst.rs2;

    switch (inst.op) {
      // Integer register-register.
      case Opcode::ADD: case Opcode::SUB: case Opcode::AND_:
      case Opcode::OR_: case Opcode::XOR_: case Opcode::SLL:
      case Opcode::SRL: case Opcode::SRA: case Opcode::SLT:
      case Opcode::SLTU: case Opcode::MUL: case Opcode::MULH:
      case Opcode::DIV: case Opcode::DIVU: case Opcode::REM:
      case Opcode::REMU:
        addUse(ud, xslot(rs1));
        addUse(ud, xslot(rs2));
        setIntDef(ud, rd);
        break;

      // Integer register-immediate.
      case Opcode::ADDI: case Opcode::ANDI: case Opcode::ORI:
      case Opcode::XORI: case Opcode::SLLI: case Opcode::SRLI:
      case Opcode::SRAI: case Opcode::SLTI:
        addUse(ud, xslot(rs1));
        setIntDef(ud, rd);
        break;

      case Opcode::LDI:
        setIntDef(ud, rd);
        break;

      // Loads: base register, integer or FP destination.
      case Opcode::LB: case Opcode::LBU: case Opcode::LH:
      case Opcode::LHU: case Opcode::LW: case Opcode::LWU:
      case Opcode::LD:
        addUse(ud, xslot(rs1));
        setIntDef(ud, rd);
        break;
      case Opcode::FLD:
        addUse(ud, xslot(rs1));
        ud.def = int(fslot(rd));
        break;

      // Stores: base in rs1, source in rs2.
      case Opcode::SB: case Opcode::SH: case Opcode::SW:
      case Opcode::SD:
        addUse(ud, xslot(rs1));
        addUse(ud, xslot(rs2));
        break;
      case Opcode::FSD:
        addUse(ud, xslot(rs1));
        addUse(ud, fslot(rs2));
        break;

      // Branches compare two integer registers.
      case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
      case Opcode::BGE: case Opcode::BLTU: case Opcode::BGEU:
        addUse(ud, xslot(rs1));
        addUse(ud, xslot(rs2));
        break;

      case Opcode::JAL:
        setIntDef(ud, rd);
        break;
      case Opcode::JALR:
        addUse(ud, xslot(rs1));
        setIntDef(ud, rd);
        break;

      // FP two-source arithmetic.
      case Opcode::FADD: case Opcode::FSUB: case Opcode::FMUL:
      case Opcode::FDIV: case Opcode::FMIN: case Opcode::FMAX:
        addUse(ud, fslot(rs1));
        addUse(ud, fslot(rs2));
        ud.def = int(fslot(rd));
        break;

      // FP single-source arithmetic.
      case Opcode::FSQRT: case Opcode::FNEG: case Opcode::FABS:
        addUse(ud, fslot(rs1));
        ud.def = int(fslot(rd));
        break;

      // rd <- rs1 * rs2 + rd: the destination doubles as a source.
      case Opcode::FMADD:
        addUse(ud, fslot(rs1));
        addUse(ud, fslot(rs2));
        addUse(ud, fslot(rd));
        ud.def = int(fslot(rd));
        break;

      case Opcode::FCVT_D_L:
        addUse(ud, xslot(rs1));
        ud.def = int(fslot(rd));
        break;
      case Opcode::FCVT_L_D:
        addUse(ud, fslot(rs1));
        setIntDef(ud, rd);
        break;
      case Opcode::FMV_X_D:
        addUse(ud, fslot(rs1));
        setIntDef(ud, rd);
        break;
      case Opcode::FMV_D_X:
        addUse(ud, xslot(rs1));
        ud.def = int(fslot(rd));
        break;

      // FP compares write an integer register.
      case Opcode::FEQ: case Opcode::FLT_: case Opcode::FLE:
        addUse(ud, fslot(rs1));
        addUse(ud, fslot(rs2));
        setIntDef(ud, rd);
        break;

      case Opcode::NOP:
      case Opcode::HALT:
        break;
      case Opcode::SYSCALL:
        addUse(ud, xslot(rs1));
        setIntDef(ud, rd);
        break;

      default:
        panic("useDef: unhandled opcode");
    }
    return ud;
}

} // namespace analysis
} // namespace paradox
