#include "analysis/diagnostic.hh"

#include <sstream>

namespace paradox
{
namespace analysis
{

const char *
severityName(Severity sev)
{
    switch (sev) {
      case Severity::Info:    return "info";
      case Severity::Warning: return "warning";
      case Severity::Error:   return "error";
    }
    return "unknown";
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
Diagnostic::toString() const
{
    std::ostringstream os;
    os << "[" << severityName(severity) << "] " << pass << "/" << code;
    if (index != noIndex) {
        os << " @" << index;
        if (!context.empty())
            os << " (" << context << ")";
        if (!inst.empty())
            os << " `" << inst << "`";
    }
    os << ": " << message;
    return os.str();
}

std::string
Diagnostic::toJson() const
{
    std::ostringstream os;
    os << "{\"severity\":\"" << severityName(severity) << "\""
       << ",\"pass\":\"" << jsonEscape(pass) << "\""
       << ",\"code\":\"" << jsonEscape(code) << "\"";
    if (index != noIndex)
        os << ",\"index\":" << index;
    if (!context.empty())
        os << ",\"label\":\"" << jsonEscape(context) << "\"";
    if (!inst.empty())
        os << ",\"inst\":\"" << jsonEscape(inst) << "\"";
    os << ",\"message\":\"" << jsonEscape(message) << "\"}";
    return os.str();
}

std::size_t
countSeverity(const std::vector<Diagnostic> &diags, Severity sev)
{
    std::size_t n = 0;
    for (const auto &d : diags)
        if (d.severity == sev)
            ++n;
    return n;
}

} // namespace analysis
} // namespace paradox
