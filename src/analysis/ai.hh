/**
 * @file
 * Interval abstract interpretation over the CFG.
 *
 * A forward fixpoint propagates one Interval per integer register
 * through every reachable block.  Loop heads (DFS back-edge targets)
 * are widened after a short delay so the ascending chain terminates,
 * then a bounded narrowing phase recovers precision lost to widening.
 *
 * On top of the plain fixpoint the engine infers *trip bounds* for
 * natural loops whose exit test compares a single-step induction
 * register against a loop-invariant bound, and feeds them back as
 * *induction clamps*: on a back edge, a register known to step by a
 * constant c at most once per iteration is bounded by its preheader
 * box stretched by c * (trips - 1).  This is what lets pure pointer
 * registers (which the workloads never compare against anything) get
 * finite ranges: the counter register bounds the loop, the clamp
 * transfers that bound to every other induction register.
 *
 * Everything here is an over-approximation of the executor's wrapping
 * semantics; an execution escaping a derived bound is a bug in this
 * file, and the trace cross-validation in trace_report exists to
 * catch exactly that.
 */

#ifndef PARADOX_ANALYSIS_AI_HH
#define PARADOX_ANALYSIS_AI_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/interval.hh"
#include "isa/program.hh"

namespace paradox
{
namespace analysis
{

/** Sentinel trip bound: the loop could iterate forever. */
constexpr std::uint64_t unboundedTrips = ~std::uint64_t(0);

/**
 * One natural loop, merged by header (all back edges into the same
 * header share body and bound).
 */
struct Loop
{
    std::size_t header = 0;
    std::vector<std::size_t> latches;  //!< back-edge source blocks
    std::vector<bool> inBody;          //!< per block id
    std::vector<std::size_t> bodyBlocks;  //!< sorted body block ids

    /** Upper bound on body executions per loop entry. */
    std::uint64_t tripBound = unboundedTrips;
    /** Exit-branch instruction the bound was derived from. */
    std::size_t boundExit = std::size_t(-1);

    bool bounded() const { return tripBound != unboundedTrips; }
};

/**
 * Natural loops of the reachable CFG, one per header, discovered
 * from DFS back edges (shared by the termination pass and the
 * interval engine).  Trip fields are left at their defaults.
 */
std::vector<Loop> findLoops(const Cfg &cfg,
                            const std::vector<bool> &reachable);

/**
 * Dominator sets as one bitset per block (bit p of @c doms[b] set
 * iff p dominates b).  Entry and call-return roots dominate only
 * themselves; unreachable blocks get empty sets.
 */
class Dominators
{
  public:
    static Dominators compute(const Cfg &cfg,
                              const std::vector<bool> &reachable);

    bool dominates(std::size_t a, std::size_t b) const
    { return (bits_[b][a / 64] >> (a % 64)) & 1; }

  private:
    std::vector<std::vector<std::uint64_t>> bits_;
};

/** Interval state of the 32 integer registers at one program point. */
struct RegState
{
    /** False while no feasible path to the point has been seen. */
    bool feasible = false;
    std::array<Interval, isa::numIntRegs> regs{};  //!< default bottom

    bool operator==(const RegState &) const = default;
};

/** Map a conditional branch opcode to its predicate. */
bool branchCmp(const isa::Instruction &inst, Cmp &cmp);

/** The interval fixpoint plus everything derived from it. */
class IntervalAnalysis
{
  public:
    static IntervalAnalysis run(const isa::Program &prog,
                                const Cfg &cfg,
                                const std::vector<bool> &reachable);

    /** State on entry to block @p b (bottom if unreachable). */
    const RegState &blockIn(std::size_t b) const { return in_[b]; }

    const std::vector<Loop> &loops() const { return loops_; }
    const Dominators &dominators() const { return doms_; }

    /** False only if the sweep cap was hit (widening failed). */
    bool converged() const { return converged_; }
    /** Full RPO sweeps executed across all fixpoint rounds. */
    std::size_t sweeps() const { return sweeps_; }

    /**
     * Product of the trip bounds of every loop containing @p block,
     * i.e. an upper bound on the block's executions -- valid only
     * when the CFG is reducible(); unboundedTrips if any containing
     * loop is unbounded.  Saturates below overflow.
     */
    std::uint64_t tripProduct(std::size_t block) const;

    /**
     * True when every back edge's header dominates its tail.  The
     * multiplicative per-block execution bound (tripProduct) is only
     * sound for such CFGs; irreducible graphs get no dynamic bound.
     */
    bool reducible() const { return reducible_; }

    /**
     * Apply instruction @p inst (at index @p instIdx, needed for the
     * jal/jalr link value) to @p s.
     */
    static void transfer(const isa::Instruction &inst,
                         std::size_t instIdx, RegState &s);

  private:
    std::vector<RegState> in_;
    std::vector<Loop> loops_;
    Dominators doms_;
    bool converged_ = true;
    bool reducible_ = true;
    std::size_t sweeps_ = 0;
};

} // namespace analysis
} // namespace paradox

#endif // PARADOX_ANALYSIS_AI_HH
