/**
 * @file
 * Severity-classed, source-located diagnostics for the static
 * analysis passes.
 *
 * A Diagnostic pins a finding to an instruction index and carries the
 * nearest preceding label ("kern_done+2") plus the disassembled
 * instruction, so a workload author can find the offending line in
 * the ProgramBuilder source without counting emits.  Each diagnostic
 * also has a stable machine-readable @c code ("def-before-use",
 * "dead-store", ...) that tests and the JSON report key off.
 */

#ifndef PARADOX_ANALYSIS_DIAGNOSTIC_HH
#define PARADOX_ANALYSIS_DIAGNOSTIC_HH

#include <cstddef>
#include <string>
#include <vector>

namespace paradox
{
namespace analysis
{

/** How bad a finding is. */
enum class Severity
{
    Info,     //!< advisory; never affects exit status
    Warning,  //!< suspicious; fails under --Werror
    Error,    //!< the program is malformed
};

/** Human-readable name: "info", "warning", "error". */
const char *severityName(Severity sev);

/** One finding from one pass. */
struct Diagnostic
{
    /** Index value for program-level findings with no instruction. */
    static constexpr std::size_t noIndex = static_cast<std::size_t>(-1);

    Severity severity = Severity::Info;
    std::string pass;     //!< producing pass ("cfg", "dataflow", ...)
    std::string code;     //!< stable finding id ("def-before-use", ...)
    std::size_t index = noIndex;  //!< instruction index, or noIndex
    std::string context;  //!< nearest preceding label, may be empty
    std::string inst;     //!< disassembly of the instruction, may be empty
    std::string message;  //!< human-readable explanation

    /** Render as one human-readable line. */
    std::string toString() const;

    /** Render as one JSON object. */
    std::string toJson() const;
};

/** Escape @p s for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** Count diagnostics in @p diags at exactly @p sev. */
std::size_t countSeverity(const std::vector<Diagnostic> &diags,
                          Severity sev);

} // namespace analysis
} // namespace paradox

#endif // PARADOX_ANALYSIS_DIAGNOSTIC_HH
