#include "analysis/ai.hh"

#include <algorithm>
#include <cstdint>

#include "analysis/regmodel.hh"
#include "isa/opcode.hh"

namespace paradox
{
namespace analysis
{

namespace
{

using I128 = __int128;

constexpr std::int64_t kMin = Interval::min64;
constexpr std::int64_t kMax = Interval::max64;

/** Trip bounds saturate here so cost products cannot overflow. */
constexpr std::uint64_t kTripCap = std::uint64_t(1) << 62;

/** Same decoding as Cfg::build: resolved byte target -> inst index. */
bool
decodeTarget(const isa::Instruction &inst, std::size_t codeSize,
             std::size_t &target)
{
    if (inst.imm < 0)
        return false;
    const auto byte = static_cast<std::uint64_t>(inst.imm);
    if (byte % isa::instBytes != 0)
        return false;
    target = byte / isa::instBytes;
    return target < codeSize;
}

/** DFS back-edge detection (same traversal as the termination pass). */
std::vector<std::pair<std::size_t, std::size_t>>
findBackEdges(const Cfg &cfg, const std::vector<bool> &reachable)
{
    enum class Mark : std::uint8_t { White, Grey, Black };
    const auto &blocks = cfg.blocks();
    std::vector<Mark> mark(blocks.size(), Mark::White);
    std::vector<std::pair<std::size_t, std::size_t>> backEdges;

    std::vector<std::pair<std::size_t, std::size_t>> stack;
    auto visit = [&](std::size_t root) {
        if (mark[root] != Mark::White)
            return;
        mark[root] = Mark::Grey;
        stack.push_back({root, 0});
        while (!stack.empty()) {
            auto &[b, next] = stack.back();
            if (next < blocks[b].succs.size()) {
                std::size_t s = blocks[b].succs[next++];
                if (mark[s] == Mark::Grey)
                    backEdges.push_back({b, s});
                else if (mark[s] == Mark::White) {
                    mark[s] = Mark::Grey;
                    stack.push_back({s, 0});
                }
            } else {
                mark[b] = Mark::Black;
                stack.pop_back();
            }
        }
    };

    for (std::size_t b = 0; b < blocks.size(); ++b)
        if (reachable[b])
            visit(b);
    return backEdges;
}

} // namespace

std::vector<Loop>
findLoops(const Cfg &cfg, const std::vector<bool> &reachable)
{
    const auto &blocks = cfg.blocks();
    const std::size_t nb = blocks.size();
    std::vector<Loop> loops;

    for (const auto &[tail, header] : findBackEdges(cfg, reachable)) {
        Loop *loop = nullptr;
        for (auto &l : loops)
            if (l.header == header)
                loop = &l;
        if (!loop) {
            loops.push_back({});
            loop = &loops.back();
            loop->header = header;
            loop->inBody.assign(nb, false);
            loop->inBody[header] = true;
        }
        loop->latches.push_back(tail);

        // Natural loop of the back edge, merged into the body.
        std::vector<std::size_t> work;
        if (!loop->inBody[tail]) {
            loop->inBody[tail] = true;
            work.push_back(tail);
        }
        while (!work.empty()) {
            std::size_t b = work.back();
            work.pop_back();
            for (std::size_t p : blocks[b].preds)
                if (reachable[p] && !loop->inBody[p]) {
                    loop->inBody[p] = true;
                    work.push_back(p);
                }
        }
    }

    for (auto &l : loops) {
        std::sort(l.latches.begin(), l.latches.end());
        l.latches.erase(
            std::unique(l.latches.begin(), l.latches.end()),
            l.latches.end());
        for (std::size_t b = 0; b < nb; ++b)
            if (l.inBody[b])
                l.bodyBlocks.push_back(b);
    }
    return loops;
}

Dominators
Dominators::compute(const Cfg &cfg, const std::vector<bool> &reachable)
{
    Dominators d;
    const auto &blocks = cfg.blocks();
    const std::size_t nb = blocks.size();
    const std::size_t words = (nb + 63) / 64;
    d.bits_.assign(nb, std::vector<std::uint64_t>(words, 0));
    if (nb == 0)
        return d;

    auto isRoot = [&](std::size_t b) {
        return b == cfg.entry() || blocks[b].callReturnPoint;
    };

    std::vector<std::uint64_t> all(words, ~std::uint64_t(0));
    if (nb % 64)
        all.back() = (std::uint64_t(1) << (nb % 64)) - 1;

    for (std::size_t b = 0; b < nb; ++b) {
        if (!reachable[b])
            continue;  // empty set: dominates() is never queried
        if (isRoot(b))
            d.bits_[b][b / 64] |= std::uint64_t(1) << (b % 64);
        else
            d.bits_[b] = all;
    }

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b = 0; b < nb; ++b) {
            if (!reachable[b] || isRoot(b))
                continue;
            std::vector<std::uint64_t> meet = all;
            bool any = false;
            for (std::size_t p : blocks[b].preds) {
                if (!reachable[p])
                    continue;
                any = true;
                for (std::size_t w = 0; w < words; ++w)
                    meet[w] &= d.bits_[p][w];
            }
            if (!any)
                meet.assign(words, 0);
            meet[b / 64] |= std::uint64_t(1) << (b % 64);
            if (meet != d.bits_[b]) {
                d.bits_[b] = std::move(meet);
                changed = true;
            }
        }
    }
    return d;
}

bool
branchCmp(const isa::Instruction &inst, Cmp &cmp)
{
    using isa::Opcode;
    switch (inst.op) {
    case Opcode::BEQ: cmp = Cmp::Eq; return true;
    case Opcode::BNE: cmp = Cmp::Ne; return true;
    case Opcode::BLT: cmp = Cmp::LtS; return true;
    case Opcode::BGE: cmp = Cmp::GeS; return true;
    case Opcode::BLTU: cmp = Cmp::LtU; return true;
    case Opcode::BGEU: cmp = Cmp::GeU; return true;
    default: return false;
    }
}

void
IntervalAnalysis::transfer(const isa::Instruction &inst,
                           std::size_t instIdx, RegState &s)
{
    using isa::Opcode;

    auto setRd = [&](const Interval &v) {
        if (inst.rd != 0)
            s.regs[inst.rd] = v;
    };
    const Interval a = s.regs[inst.rs1];
    const Interval b = s.regs[inst.rs2];
    const Interval immI = Interval::constant(inst.imm);
    auto boolIv = [](Tri t) {
        if (t == Tri::True)
            return Interval::constant(1);
        if (t == Tri::False)
            return Interval::constant(0);
        return Interval{0, 1};
    };

    switch (inst.op) {
    case Opcode::LDI:
        setRd(immI);
        break;
    case Opcode::ADDI:
        setRd(intervalAdd(a, immI));
        break;
    case Opcode::ANDI:
        setRd(intervalAnd(a, immI));
        break;
    case Opcode::ORI:
        setRd(intervalOr(a, immI));
        break;
    case Opcode::XORI:
        setRd(intervalXor(a, immI));
        break;
    case Opcode::SLLI:
        setRd(intervalShl(a, unsigned(inst.imm) & 63));
        break;
    case Opcode::SRLI:
        setRd(intervalShrLogical(a, unsigned(inst.imm) & 63));
        break;
    case Opcode::SRAI:
        setRd(intervalShrArith(a, unsigned(inst.imm) & 63));
        break;
    case Opcode::SLTI:
        setRd(boolIv(evalCmp(Cmp::LtS, a, immI)));
        break;
    case Opcode::ADD:
        setRd(intervalAdd(a, b));
        break;
    case Opcode::SUB:
        setRd(intervalSub(a, b));
        break;
    case Opcode::AND_:
        setRd(intervalAnd(a, b));
        break;
    case Opcode::OR_:
        setRd(intervalOr(a, b));
        break;
    case Opcode::XOR_:
        setRd(intervalXor(a, b));
        break;
    case Opcode::MUL:
        setRd(intervalMul(a, b));
        break;
    case Opcode::MULH:
        setRd(intervalMulHigh(a, b));
        break;
    case Opcode::DIV:
        setRd(intervalDiv(a, b));
        break;
    case Opcode::DIVU:
        setRd(intervalDivU(a, b));
        break;
    case Opcode::REM:
        setRd(intervalRem(a, b));
        break;
    case Opcode::REMU:
        setRd(intervalRemU(a, b));
        break;
    case Opcode::SLT:
        setRd(boolIv(evalCmp(Cmp::LtS, a, b)));
        break;
    case Opcode::SLTU:
        setRd(boolIv(evalCmp(Cmp::LtU, a, b)));
        break;
    case Opcode::SLL:
        if (b.isConstant())
            setRd(intervalShl(a, unsigned(b.lo) & 63));
        else
            setRd(Interval::top());
        break;
    case Opcode::SRL:
        if (b.isConstant())
            setRd(intervalShrLogical(a, unsigned(b.lo) & 63));
        else if (!a.isBottom() && a.lo >= 0)
            setRd({0, a.hi});  // any shift only shrinks it
        else
            setRd(Interval::top());
        break;
    case Opcode::SRA:
        if (b.isConstant()) {
            setRd(intervalShrArith(a, unsigned(b.lo) & 63));
        } else if (!a.isBottom()) {
            // Hull of the sh = 0 and sh = 63 extremes covers every
            // amount in between (a >> sh is monotone in sh).
            setRd(join(a, {a.lo >> 63, a.hi >> 63}));
        } else {
            setRd(Interval::bottom());
        }
        break;
    case Opcode::LB:
        setRd({-128, 127});
        break;
    case Opcode::LBU:
        setRd({0, 255});
        break;
    case Opcode::LH:
        setRd({-32768, 32767});
        break;
    case Opcode::LHU:
        setRd({0, 65535});
        break;
    case Opcode::LW:
        setRd({std::int64_t(-2147483648LL), 2147483647});
        break;
    case Opcode::LWU:
        setRd({0, 4294967295LL});
        break;
    case Opcode::JAL:
    case Opcode::JALR:
        // The link value is the resolved return address.
        setRd(Interval::constant(
            std::int64_t((instIdx + 1) * isa::instBytes)));
        break;
    case Opcode::FEQ:
    case Opcode::FLT_:
    case Opcode::FLE:
        setRd({0, 1});
        break;
    default: {
        // LD, FP conversions/moves, SYSCALL...: any integer def is
        // unknown; FP defs are outside this domain.
        const UseDef ud = useDef(inst);
        if (ud.def > 0 && unsigned(ud.def) < isa::numIntRegs)
            s.regs[unsigned(ud.def)] = Interval::top();
        break;
    }
    }
    s.regs[0] = Interval::constant(0);
}

namespace
{

/** All-Top state with x0 pinned, for entry and call-return roots. */
RegState
rootState()
{
    RegState s;
    s.feasible = true;
    for (auto &r : s.regs)
        r = Interval::top();
    s.regs[0] = Interval::constant(0);
    return s;
}

/** One per-loop clamp list: (register, back-edge bound). */
using ClampList = std::vector<std::pair<unsigned, Interval>>;

/** Normalized continue-predicate relations (`r REL bound`). */
enum class Rel : std::uint8_t
{
    Lt, Le, Gt, Ge, Ne,      //!< signed
    LtU, LeU, GtU, GeU,      //!< unsigned (extra preconditions)
};

/**
 * Upper-bound the iterations of a loop that continues while
 * `r REL bound` holds, where r steps by @p c exactly once per
 * iteration, r's entry box is @p I and the loop-invariant bound's
 * box is @p B.
 *
 * With J = the largest step count whose value still passes the test,
 * the k-th test sees r0 + k*c when the step runs before the test
 * (@p defFirst) and r0 + (k-1)*c otherwise, so the bound is J+1
 * iterations in the first case and J+2 in the second.  The Ne cases
 * demand the tested values *strictly* approach the bound: when
 * defFirst and r0 == bound, the stepped value skips the only equal
 * value and the loop never exits.
 *
 * @return false when the shape guarantees nothing (wrong step sign,
 * possible wraparound, gap-jumping or degenerate NE...).
 */
bool
tripFromRel(Rel rel, std::int64_t c, const Interval &I,
            const Interval &B, bool defFirst, std::uint64_t &tripsOut)
{
    const int slack = defFirst ? 1 : 2;
    if (I.isBottom() || B.isBottom())
        return false;

    const bool unsignedRel = rel == Rel::LtU || rel == Rel::LeU ||
                             rel == Rel::GtU || rel == Rel::GeU;
    if (unsignedRel) {
        // Within the non-negative half, unsigned order is signed
        // order; for down-counting relations the underflow guard
        // below keeps r from wrapping to a huge unsigned value.
        if (I.lo < 0 || B.lo < 0)
            return false;
        if ((rel == Rel::GeU || rel == Rel::GtU) &&
            I128(B.lo) + (rel == Rel::GtU ? 1 : 0) < -I128(c))
            return false;
        rel = rel == Rel::LtU   ? Rel::Lt
              : rel == Rel::LeU ? Rel::Le
              : rel == Rel::GtU ? Rel::Gt
                                : Rel::Ge;
    }

    I128 trips = 0;
    switch (rel) {
    case Rel::Lt:
    case Rel::Le: {
        if (c <= 0)
            return false;
        const I128 bEff = I128(B.hi) - (rel == Rel::Lt ? 1 : 0);
        // Signed compare: continuing values must not overflow when
        // stepped, or the wrapped value would keep the loop alive.
        if (!unsignedRel && bEff + c > I128(kMax))
            return false;
        trips = bEff >= I128(I.lo) ? (bEff - I.lo) / c + slack : 1;
        break;
    }
    case Rel::Gt:
    case Rel::Ge: {
        if (c >= 0)
            return false;
        const I128 bEff = I128(B.lo) + (rel == Rel::Gt ? 1 : 0);
        if (!unsignedRel && bEff + c < I128(kMin))
            return false;
        trips = I128(I.hi) >= bEff ? (I.hi - bEff) / -I128(c) + slack
                                   : 1;
        break;
    }
    case Rel::Ne:
        // The step must be unable to jump over the bound, and r must
        // start strictly on one side of it (see above).  The exiting
        // test is the one that lands exactly on the bound, so the
        // slack here is one less than for the ordered relations.
        if (c == 1 && I.hi < B.lo)
            trips = I128(B.hi) - I.lo + slack - 1;
        else if (c == -1 && I.lo > B.hi)
            trips = I128(I.hi) - B.lo + slack - 1;
        else if (I.isConstant() && B.isConstant() && c != 0 &&
                 (I128(B.lo) - I.lo) % c == 0 &&
                 (I128(B.lo) - I.lo) / c >= 1)
            trips = (I128(B.lo) - I.lo) / c + slack - 1;
        else
            return false;
        break;
    default:
        return false;
    }

    if (trips < 1)
        trips = 1;
    tripsOut = trips > I128(kTripCap) ? kTripCap
                                      : std::uint64_t(trips);
    return true;
}

} // namespace

IntervalAnalysis
IntervalAnalysis::run(const isa::Program &prog, const Cfg &cfg,
                      const std::vector<bool> &reachable)
{
    IntervalAnalysis ai;
    const auto &blocks = cfg.blocks();
    const auto &code = prog.code();
    const std::size_t nb = blocks.size();
    const std::size_t n = code.size();
    ai.in_.assign(nb, RegState{});
    ai.loops_ = findLoops(cfg, reachable);
    ai.doms_ = Dominators::compute(cfg, reachable);
    if (nb == 0)
        return ai;

    for (const auto &l : ai.loops_)
        for (std::size_t t : l.latches)
            if (!ai.doms_.dominates(l.header, t))
                ai.reducible_ = false;

    // Reverse postorder of the reachable blocks.
    std::vector<std::size_t> rpo;
    {
        std::vector<bool> seen(nb, false);
        std::vector<std::pair<std::size_t, std::size_t>> stack;
        auto visit = [&](std::size_t root) {
            if (seen[root])
                return;
            seen[root] = true;
            stack.push_back({root, 0});
            while (!stack.empty()) {
                auto &[b, next] = stack.back();
                if (next < blocks[b].succs.size()) {
                    std::size_t s = blocks[b].succs[next++];
                    if (!seen[s]) {
                        seen[s] = true;
                        stack.push_back({s, 0});
                    }
                } else {
                    rpo.push_back(b);
                    stack.pop_back();
                }
            }
        };
        visit(cfg.entry());
        for (std::size_t b = 0; b < nb; ++b)
            if (reachable[b] && blocks[b].callReturnPoint)
                visit(b);
        std::reverse(rpo.begin(), rpo.end());
    }

    std::vector<std::size_t> loopOfHeader(nb, std::size_t(-1));
    for (std::size_t l = 0; l < ai.loops_.size(); ++l)
        loopOfHeader[ai.loops_[l].header] = l;

    std::vector<RegState> out(nb);

    auto isRoot = [&](std::size_t b) {
        return b == cfg.entry() || blocks[b].callReturnPoint;
    };

    // In-state of @p b from its predecessors' out-states, with
    // branch-edge refinement and (on back edges) induction clamps.
    std::vector<ClampList> clamps(ai.loops_.size());
    auto joinIn = [&](std::size_t b) {
        RegState s;
        if (isRoot(b))
            s = rootState();
        const std::size_t loopIdx = loopOfHeader[b];
        for (std::size_t p : blocks[b].preds) {
            if (!reachable[p] || !out[p].feasible)
                continue;
            RegState e = out[p];
            bool feasibleEdge = true;

            const auto &binst = code[blocks[p].last];
            Cmp cmp;
            if (branchCmp(binst, cmp)) {
                std::size_t target;
                const std::size_t takenB =
                    decodeTarget(binst, n, target)
                        ? cfg.blockOf(target)
                        : std::size_t(-1);
                const std::size_t fallB =
                    blocks[p].last + 1 < n
                        ? cfg.blockOf(blocks[p].last + 1)
                        : std::size_t(-1);
                if (takenB != fallB && (b == takenB || b == fallB)) {
                    Interval va = e.regs[binst.rs1];
                    Interval vb = e.regs[binst.rs2];
                    refineCmp(b == takenB ? cmp : negate(cmp), va, vb);
                    if (va.isBottom() || vb.isBottom()) {
                        feasibleEdge = false;
                    } else {
                        if (binst.rs1 != 0)
                            e.regs[binst.rs1] = va;
                        if (binst.rs2 != 0)
                            e.regs[binst.rs2] = vb;
                    }
                }
            }

            if (feasibleEdge && loopIdx != std::size_t(-1)) {
                const Loop &l = ai.loops_[loopIdx];
                if (std::binary_search(l.latches.begin(),
                                       l.latches.end(), p)) {
                    for (const auto &[reg, iv] : clamps[loopIdx]) {
                        e.regs[reg] = meet(e.regs[reg], iv);
                        if (e.regs[reg].isBottom())
                            feasibleEdge = false;
                    }
                }
            }
            if (!feasibleEdge)
                continue;

            if (!s.feasible) {
                s = e;
                s.feasible = true;
            } else {
                for (unsigned r = 0; r < isa::numIntRegs; ++r)
                    s.regs[r] = join(s.regs[r], e.regs[r]);
            }
        }
        if (s.feasible)
            s.regs[0] = Interval::constant(0);
        return s;
    };

    /*
     * Meet a header's joined state with its loop's clamps.  The
     * clamp interval contains the preheader box by construction
     * (zero steps taken) as well as every back-edge value, so all
     * concrete values of the register at the header lie inside it --
     * the meet is sound on the entry path too.  Applying it after
     * widening turns the clamp into a widening threshold: without
     * this, widening rails the induction register for a sweep and
     * the railed value survives forever in any inner loop that
     * carries it around an identity cycle, where narrowing cannot
     * shrink it.
     */
    auto applyHeaderClamps = [&](std::size_t b, RegState &s) {
        const std::size_t loopIdx = loopOfHeader[b];
        if (!s.feasible || loopIdx == std::size_t(-1))
            return;
        for (const auto &[reg, iv] : clamps[loopIdx]) {
            s.regs[reg] = meet(s.regs[reg], iv);
            if (s.regs[reg].isBottom()) {
                s = RegState{};  // header unreachable this round
                return;
            }
        }
    };

    auto transferBlock = [&](std::size_t b, RegState s) {
        if (s.feasible)
            for (std::size_t i = blocks[b].first;
                 i <= blocks[b].last; ++i)
                transfer(code[i], i, s);
        return s;
    };

    // Registers actually defined inside each loop's body.  Only
    // those need widening at the header: an invariant register's
    // back-edge value is the header value itself, so its chain grows
    // only when the loop entry grows and stabilizes without help --
    // while widening it would smash it to a rail that narrowing can
    // never undo (the stale value feeds itself around the back
    // edge).  Restricting by body is only sound when every cycle is
    // covered by the natural loop of its header, i.e. the CFG is
    // reducible; otherwise widen everything.
    std::vector<std::uint64_t> loopDefMask(ai.loops_.size(), ~0ull);
    if (ai.reducible_)
        for (std::size_t li = 0; li < ai.loops_.size(); ++li) {
            std::uint64_t mask = 0;
            for (std::size_t b : ai.loops_[li].bodyBlocks)
                for (std::size_t i = blocks[b].first;
                     i <= blocks[b].last; ++i) {
                    const UseDef ud = useDef(code[i]);
                    if (ud.def > 0 &&
                        unsigned(ud.def) < isa::numIntRegs)
                        mask |= 1ull << unsigned(ud.def);
                }
            loopDefMask[li] = mask;
        }

    // Widening fixpoint followed by a short narrowing phase.
    constexpr unsigned kWidenDelay = 2;
    constexpr unsigned kNarrowSweeps = 2;
    const std::size_t sweepCap = 100 + 10 * nb;
    auto runFixpoint = [&]() {
        for (std::size_t b = 0; b < nb; ++b)
            ai.in_[b] = out[b] = RegState{};
        std::vector<unsigned> visits(nb, 0);
        bool changed = true;
        std::size_t local = 0;
        while (changed && local < sweepCap) {
            changed = false;
            ++local;
            for (std::size_t b : rpo) {
                RegState s = joinIn(b);
                if (loopOfHeader[b] != std::size_t(-1) &&
                    visits[b] >= kWidenDelay && ai.in_[b].feasible &&
                    s.feasible) {
                    const std::uint64_t wmask =
                        loopDefMask[loopOfHeader[b]];
                    for (unsigned r = 0; r < isa::numIntRegs; ++r)
                        if (wmask >> r & 1)
                            s.regs[r] =
                                widen(ai.in_[b].regs[r], s.regs[r]);
                    applyHeaderClamps(b, s);
                }
                ++visits[b];
                ai.in_[b] = s;
                RegState o = transferBlock(b, std::move(s));
                if (!(o == out[b])) {
                    out[b] = std::move(o);
                    changed = true;
                }
            }
        }
        ai.sweeps_ += local;
        if (changed)
            ai.converged_ = false;
        for (unsigned k = 0; k < kNarrowSweeps; ++k) {
            for (std::size_t b : rpo) {
                RegState s = joinIn(b);
                applyHeaderClamps(b, s);
                ai.in_[b] = s;
                out[b] = transferBlock(b, ai.in_[b]);
            }
            ++ai.sweeps_;
        }
    };

    // Interval box of register @p r joined over entries to the loop.
    auto preheaderState = [&](const Loop &l) {
        RegState pre;
        if (isRoot(l.header))
            pre = rootState();
        for (std::size_t p : blocks[l.header].preds) {
            if (!reachable[p] || l.inBody[p] || !out[p].feasible)
                continue;
            if (!pre.feasible) {
                pre = out[p];
            } else {
                for (unsigned r = 0; r < isa::numIntRegs; ++r)
                    pre.regs[r] = join(pre.regs[r], out[p].regs[r]);
            }
        }
        if (pre.feasible)
            pre.regs[0] = Interval::constant(0);
        return pre;
    };

    /*
     * Induction candidates of a loop: integer registers with exactly
     * one def in the body, and that def is `addi r, r, c` sitting
     * outside every nested loop (so it runs at most once per
     * iteration of this loop).  everyIter additionally requires the
     * def block to dominate every latch: the step then runs exactly
     * once per completed iteration, which the trip formulas need.
     */
    struct Cand
    {
        unsigned reg;
        std::int64_t step;
        bool everyIter;
        std::size_t defIdx;   //!< instruction index of the step
        std::size_t defBlock; //!< block holding the step
    };
    auto inductionCands = [&](const Loop &l) {
        std::array<unsigned, isa::numIntRegs> defCount{};
        std::array<std::size_t, isa::numIntRegs> defSite{};
        for (std::size_t b : l.bodyBlocks)
            for (std::size_t i = blocks[b].first;
                 i <= blocks[b].last; ++i) {
                const UseDef ud = useDef(code[i]);
                if (ud.def > 0 && unsigned(ud.def) < isa::numIntRegs) {
                    ++defCount[unsigned(ud.def)];
                    defSite[unsigned(ud.def)] = i;
                }
            }
        std::vector<Cand> cands;
        for (unsigned r = 1; r < isa::numIntRegs; ++r) {
            if (defCount[r] != 1)
                continue;
            const auto &d = code[defSite[r]];
            if (d.op != isa::Opcode::ADDI || d.rd != r ||
                d.rs1 != r || d.imm == 0)
                continue;
            const std::size_t db = cfg.blockOf(defSite[r]);
            bool nested = false;
            for (const Loop &m : ai.loops_)
                if (m.header != l.header && l.inBody[m.header] &&
                    m.inBody[db])
                    nested = true;
            if (nested)
                continue;
            bool everyIter = true;
            for (std::size_t t : l.latches)
                if (!ai.doms_.dominates(db, t))
                    everyIter = false;
            cands.push_back({r, d.imm, everyIter, defSite[r], db});
        }
        return cands;
    };

    auto inferTrips = [&]() {
        for (Loop &l : ai.loops_) {
            const RegState pre = preheaderState(l);
            if (!pre.feasible)
                continue;
            const auto cands = inductionCands(l);

            std::array<bool, isa::numIntRegs> invariant;
            {
                std::array<unsigned, isa::numIntRegs> defCount{};
                for (std::size_t b : l.bodyBlocks)
                    for (std::size_t i = blocks[b].first;
                         i <= blocks[b].last; ++i) {
                        const UseDef ud = useDef(code[i]);
                        if (ud.def >= 0 &&
                            unsigned(ud.def) < isa::numIntRegs)
                            ++defCount[unsigned(ud.def)];
                    }
                for (unsigned r = 0; r < isa::numIntRegs; ++r)
                    invariant[r] = defCount[r] == 0;
                invariant[0] = true;
            }

            for (std::size_t b : l.bodyBlocks) {
                const std::size_t bi = blocks[b].last;
                const auto &binst = code[bi];
                Cmp cmp;
                if (!branchCmp(binst, cmp))
                    continue;
                std::size_t target;
                if (!decodeTarget(binst, n, target))
                    continue;
                const std::size_t takenB = cfg.blockOf(target);
                if (blocks[b].last + 1 >= n)
                    continue;
                const std::size_t fallB = cfg.blockOf(bi + 1);
                if (takenB == fallB ||
                    l.inBody[takenB] == l.inBody[fallB])
                    continue;  // not a two-way exit test
                bool domsAll = true;
                for (std::size_t t : l.latches)
                    if (!ai.doms_.dominates(b, t))
                        domsAll = false;
                if (!domsAll)
                    continue;

                const Cmp cont =
                    l.inBody[takenB] ? cmp : negate(cmp);

                // Normalize to `r REL bound` for each operand order.
                auto tryOrder = [&](unsigned r, unsigned q,
                                    bool mirrored) {
                    Rel rel = Rel::Ne;
                    switch (cont) {
                    case Cmp::Eq: return;
                    case Cmp::Ne: rel = Rel::Ne; break;
                    case Cmp::LtS:
                        rel = mirrored ? Rel::Gt : Rel::Lt;
                        break;
                    case Cmp::GeS:
                        rel = mirrored ? Rel::Le : Rel::Ge;
                        break;
                    case Cmp::LtU:
                        rel = mirrored ? Rel::GtU : Rel::LtU;
                        break;
                    case Cmp::GeU:
                        rel = mirrored ? Rel::LeU : Rel::GeU;
                        break;
                    }
                    if (!invariant[q])
                        return;
                    for (const Cand &c : cands) {
                        if (c.reg != r || !c.everyIter)
                            continue;
                        // Does the step run before the exit test on
                        // every path of an iteration?  In a reducible
                        // loop a body block dominating the test block
                        // cannot be bypassed within the iteration
                        // (reaching it again would pass the header
                        // first); same-block order is just index
                        // order.
                        const bool defFirst =
                            c.defBlock == b
                                ? c.defIdx < bi
                                : ai.doms_.dominates(c.defBlock, b);
                        std::uint64_t trips;
                        if (tripFromRel(rel, c.step, pre.regs[r],
                                        pre.regs[q], defFirst,
                                        trips) &&
                            trips < l.tripBound) {
                            l.tripBound = trips;
                            l.boundExit = bi;
                        }
                    }
                };
                tryOrder(binst.rs1, binst.rs2, false);
                tryOrder(binst.rs2, binst.rs1, true);
            }
        }
    };

    auto computeClamps = [&]() {
        std::vector<ClampList> cl(ai.loops_.size());
        for (std::size_t li = 0; li < ai.loops_.size(); ++li) {
            const Loop &l = ai.loops_[li];
            if (!l.bounded())
                continue;
            const RegState pre = preheaderState(l);
            if (!pre.feasible)
                continue;
            const I128 steps = I128(l.tripBound) - 1;
            for (const Cand &c : inductionCands(l)) {
                const Interval &iv = pre.regs[c.reg];
                if (iv.isBottom())
                    continue;
                // At a back edge r has stepped at most tripBound - 1
                // times past its entry box, and never backwards.
                I128 lo = iv.lo, hi = iv.hi;
                if (c.step > 0)
                    hi += I128(c.step) * steps;
                else
                    lo += I128(c.step) * steps;
                const Interval clamp{
                    lo < I128(kMin) ? kMin : std::int64_t(lo),
                    hi > I128(kMax) ? kMax : std::int64_t(hi)};
                if (!clamp.isTop())
                    cl[li].push_back({c.reg, clamp});
            }
        }
        return cl;
    };

    runFixpoint();
    if (ai.reducible_) {
        for (int round = 0; round < 2; ++round) {
            inferTrips();
            auto next = computeClamps();
            if (next == clamps)
                break;
            clamps = std::move(next);
            runFixpoint();
        }
        inferTrips();
    }
    return ai;
}

std::uint64_t
IntervalAnalysis::tripProduct(std::size_t block) const
{
    I128 product = 1;
    for (const Loop &l : loops_) {
        if (block >= l.inBody.size() || !l.inBody[block])
            continue;
        if (!l.bounded())
            return unboundedTrips;
        product *= I128(l.tripBound);
        if (product > I128(kTripCap))
            product = I128(kTripCap);
    }
    return std::uint64_t(product);
}

} // namespace analysis
} // namespace paradox
