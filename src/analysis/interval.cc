#include "analysis/interval.hh"

#include <algorithm>

namespace paradox
{
namespace analysis
{

namespace
{

using I128 = __int128;

constexpr std::int64_t kMin = Interval::min64;
constexpr std::int64_t kMax = Interval::max64;

/**
 * Box [lo, hi] computed in 128 bits.  If it fits in int64 it maps to
 * the exact interval; otherwise some concrete value could have
 * wrapped, and the only sound 64-bit box is top.
 */
Interval
clamp128(I128 lo, I128 hi)
{
    if (lo < I128(kMin) || hi > I128(kMax))
        return Interval::top();
    return {std::int64_t(lo), std::int64_t(hi)};
}

} // namespace

std::uint64_t
Interval::width() const
{
    if (isBottom())
        return 0;
    if (isTop())
        return ~std::uint64_t(0);
    return std::uint64_t(hi) - std::uint64_t(lo) + 1;
}

std::string
Interval::toString() const
{
    if (isBottom())
        return "bot";
    if (isTop())
        return "top";
    return "[" + std::to_string(lo) + ", " + std::to_string(hi) + "]";
}

Interval
join(const Interval &a, const Interval &b)
{
    if (a.isBottom())
        return b;
    if (b.isBottom())
        return a;
    return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval
meet(const Interval &a, const Interval &b)
{
    if (a.isBottom() || b.isBottom())
        return Interval::bottom();
    return Interval::range(std::max(a.lo, b.lo), std::min(a.hi, b.hi));
}

Interval
widen(const Interval &prev, const Interval &next)
{
    if (prev.isBottom())
        return next;
    if (next.isBottom())
        return prev;
    return {next.lo < prev.lo ? kMin : prev.lo,
            next.hi > prev.hi ? kMax : prev.hi};
}

Interval
intervalAdd(const Interval &a, const Interval &b)
{
    if (a.isBottom() || b.isBottom())
        return Interval::bottom();
    return clamp128(I128(a.lo) + b.lo, I128(a.hi) + b.hi);
}

Interval
intervalSub(const Interval &a, const Interval &b)
{
    if (a.isBottom() || b.isBottom())
        return Interval::bottom();
    return clamp128(I128(a.lo) - b.hi, I128(a.hi) - b.lo);
}

Interval
intervalNeg(const Interval &a)
{
    return intervalSub(Interval::constant(0), a);
}

Interval
intervalMul(const Interval &a, const Interval &b)
{
    if (a.isBottom() || b.isBottom())
        return Interval::bottom();
    const I128 c[4] = {I128(a.lo) * b.lo, I128(a.lo) * b.hi,
                       I128(a.hi) * b.lo, I128(a.hi) * b.hi};
    return clamp128(*std::min_element(c, c + 4),
                    *std::max_element(c, c + 4));
}

Interval
intervalMulHigh(const Interval &a, const Interval &b)
{
    if (a.isBottom() || b.isBottom())
        return Interval::bottom();
    // The full product fits in 127 bits, so the high word is exact.
    const I128 c[4] = {I128(a.lo) * b.lo, I128(a.lo) * b.hi,
                       I128(a.hi) * b.lo, I128(a.hi) * b.hi};
    const I128 lo = *std::min_element(c, c + 4) >> 64;
    const I128 hi = *std::max_element(c, c + 4) >> 64;
    return clamp128(lo, hi);
}

Interval
intervalDiv(const Interval &a, const Interval &b)
{
    if (a.isBottom() || b.isBottom())
        return Interval::bottom();
    // Divisor 0 yields -1 (RISC-V); INT64_MIN / -1 wraps to itself.
    Interval out = Interval::bottom();
    if (b.contains(0))
        out = join(out, Interval::constant(-1));
    if (a.contains(kMin) && b.contains(-1))
        out = join(out, Interval::constant(kMin));
    // Remaining cases: quotient magnitude never exceeds |dividend|.
    const Interval bneg = meet(b, {kMin, -1});
    const Interval bpos = meet(b, {1, kMax});
    for (const Interval &d : {bneg, bpos}) {
        if (d.isBottom())
            continue;
        const I128 c[4] = {I128(a.lo) / d.lo, I128(a.lo) / d.hi,
                           I128(a.hi) / d.lo, I128(a.hi) / d.hi};
        out = join(out, clamp128(*std::min_element(c, c + 4),
                                 *std::max_element(c, c + 4)));
    }
    return out;
}

Interval
intervalRem(const Interval &a, const Interval &b)
{
    if (a.isBottom() || b.isBottom())
        return Interval::bottom();
    // Divisor 0 yields the dividend, so that case adds nothing new.
    // Otherwise |result| < |divisor| and the sign follows the
    // dividend (truncating division).
    // |result| <= |dividend| always, and < |divisor| when it is
    // nonzero; the sign follows the dividend.
    I128 mag = std::max(I128(a.hi), -I128(a.lo));
    if (!b.contains(0))
        mag = std::min(mag, std::max(I128(b.hi), -I128(b.lo)) - 1);
    const I128 lo = a.lo < 0 ? -mag : 0;
    const I128 hi = a.hi > 0 ? mag : 0;
    return clamp128(lo, hi);
}

Interval
intervalDivU(const Interval &a, const Interval &b)
{
    if (a.isBottom() || b.isBottom())
        return Interval::bottom();
    // Precise only when both boxes are non-negative (where signed and
    // unsigned agree); divisor 0 yields all-ones = -1.
    if (a.lo < 0 || b.lo < 0)
        return Interval::top();
    Interval out = Interval::bottom();
    if (b.contains(0))
        out = join(out, Interval::constant(-1));
    const Interval d = meet(b, {1, kMax});
    if (!d.isBottom())
        out = join(out, Interval{a.lo / d.hi, a.hi / d.lo});
    return out;
}

Interval
intervalRemU(const Interval &a, const Interval &b)
{
    if (a.isBottom() || b.isBottom())
        return Interval::bottom();
    if (a.lo < 0 || b.lo < 0)
        return Interval::top();
    // Unsigned remainder with a non-negative dividend: bounded by
    // both the dividend and divisor-1 (divisor 0 yields dividend).
    std::int64_t hi = a.hi;
    if (!b.contains(0) && b.hi - 1 < hi)
        hi = b.hi - 1;
    return {0, hi};
}

Interval
intervalShl(const Interval &a, unsigned sh)
{
    if (a.isBottom())
        return Interval::bottom();
    sh &= 63;  // the executor masks register shift amounts
    return clamp128(I128(a.lo) << sh, I128(a.hi) << sh);
}

Interval
intervalShrLogical(const Interval &a, unsigned sh)
{
    if (a.isBottom())
        return Interval::bottom();
    sh &= 63;
    if (sh == 0)
        return a;
    if (a.lo < 0) {
        // Negative inputs become huge unsigned values; the result is
        // non-negative for sh >= 1 but not otherwise representable.
        return {0, kMax};
    }
    return {a.lo >> sh, a.hi >> sh};
}

Interval
intervalShrArith(const Interval &a, unsigned sh)
{
    if (a.isBottom())
        return Interval::bottom();
    sh &= 63;
    return {a.lo >> sh, a.hi >> sh};
}

namespace
{

/** Smallest power-of-two mask covering every value in @p v. */
std::int64_t
coverMask(std::int64_t v)
{
    std::int64_t m = 0;
    while (m < v)
        m = m * 2 + 1;
    return m;
}

} // namespace

Interval
intervalAnd(const Interval &a, const Interval &b)
{
    if (a.isBottom() || b.isBottom())
        return Interval::bottom();
    if (a.isConstant() && b.isConstant())
        return Interval::constant(a.lo & b.lo);
    // Non-negative & anything non-negative-capped stays within the
    // smaller operand's bit budget.
    if (a.lo >= 0 && b.lo >= 0)
        return {0, std::min(a.hi, b.hi)};
    if (a.lo >= 0)
        return {0, a.hi};
    if (b.lo >= 0)
        return {0, b.hi};
    return Interval::top();
}

Interval
intervalOr(const Interval &a, const Interval &b)
{
    if (a.isBottom() || b.isBottom())
        return Interval::bottom();
    if (a.isConstant() && b.isConstant())
        return Interval::constant(a.lo | b.lo);
    if (a.lo >= 0 && b.lo >= 0) {
        // OR never clears bits and never exceeds the union of the
        // operands' bit masks.
        const std::int64_t m = coverMask(a.hi) | coverMask(b.hi);
        return {std::max(a.lo, b.lo), m};
    }
    return Interval::top();
}

Interval
intervalXor(const Interval &a, const Interval &b)
{
    if (a.isBottom() || b.isBottom())
        return Interval::bottom();
    if (a.isConstant() && b.isConstant())
        return Interval::constant(a.lo ^ b.lo);
    if (a.lo >= 0 && b.lo >= 0)
        return {0, coverMask(a.hi) | coverMask(b.hi)};
    return Interval::top();
}

Cmp
negate(Cmp c)
{
    switch (c) {
    case Cmp::Eq: return Cmp::Ne;
    case Cmp::Ne: return Cmp::Eq;
    case Cmp::LtS: return Cmp::GeS;
    case Cmp::GeS: return Cmp::LtS;
    case Cmp::LtU: return Cmp::GeU;
    case Cmp::GeU: return Cmp::LtU;
    }
    return Cmp::Eq;
}

namespace
{

/**
 * Unsigned comparisons can be decided/refined with signed arithmetic
 * only when both boxes sit on one side of the sign boundary (within
 * either half the unsigned order matches the signed order, and all
 * negatives compare above all non-negatives).
 */
bool
sameUnsignedHalf(const Interval &a, const Interval &b)
{
    return (a.lo >= 0 && b.lo >= 0) || (a.hi < 0 && b.hi < 0);
}

Tri
evalLtS(const Interval &a, const Interval &b)
{
    if (a.hi < b.lo)
        return Tri::True;
    if (a.lo >= b.hi)
        return Tri::False;
    return Tri::Unknown;
}

} // namespace

Tri
evalCmp(Cmp cmp, const Interval &a, const Interval &b)
{
    if (a.isBottom() || b.isBottom())
        return Tri::Unknown;
    switch (cmp) {
    case Cmp::Eq:
        if (a.isConstant() && b.isConstant() && a.lo == b.lo)
            return Tri::True;
        if (meet(a, b).isBottom())
            return Tri::False;
        return Tri::Unknown;
    case Cmp::Ne: {
        const Tri eq = evalCmp(Cmp::Eq, a, b);
        if (eq == Tri::True)
            return Tri::False;
        if (eq == Tri::False)
            return Tri::True;
        return Tri::Unknown;
    }
    case Cmp::LtS:
        return evalLtS(a, b);
    case Cmp::GeS: {
        const Tri lt = evalLtS(a, b);
        if (lt == Tri::True)
            return Tri::False;
        if (lt == Tri::False)
            return Tri::True;
        return Tri::Unknown;
    }
    case Cmp::LtU:
        if (sameUnsignedHalf(a, b))
            return evalLtS(a, b);
        // All negatives (huge unsigned) exceed all non-negatives.
        if (a.hi < 0 && b.lo >= 0)
            return Tri::False;
        if (a.lo >= 0 && b.hi < 0)
            return Tri::True;
        return Tri::Unknown;
    case Cmp::GeU: {
        const Tri lt = evalCmp(Cmp::LtU, a, b);
        if (lt == Tri::True)
            return Tri::False;
        if (lt == Tri::False)
            return Tri::True;
        return Tri::Unknown;
    }
    }
    return Tri::Unknown;
}

void
refineCmp(Cmp cmp, Interval &a, Interval &b)
{
    if (a.isBottom() || b.isBottom()) {
        a = b = Interval::bottom();
        return;
    }
    switch (cmp) {
    case Cmp::Eq: {
        const Interval m = meet(a, b);
        a = b = m;
        break;
    }
    case Cmp::Ne:
        // Only endpoint-constant facts survive in a box domain.
        if (b.isConstant()) {
            if (a.lo == b.lo)
                a = Interval::range(a.lo + 1, a.hi);
            if (!a.isBottom() && a.hi == b.lo)
                a = Interval::range(a.lo, a.hi - 1);
        }
        if (a.isConstant()) {
            if (b.lo == a.lo)
                b = Interval::range(b.lo + 1, b.hi);
            if (!b.isBottom() && b.hi == a.lo)
                b = Interval::range(b.lo, b.hi - 1);
        }
        break;
    case Cmp::LtS: {
        const Interval na = b.hi == kMin
                                ? Interval::bottom()
                                : meet(a, {kMin, b.hi - 1});
        const Interval nb = a.lo == kMax
                                ? Interval::bottom()
                                : meet(b, {a.lo + 1, kMax});
        a = na;
        b = nb;
        break;
    }
    case Cmp::GeS: {
        const Interval na = meet(a, {b.lo, kMax});
        const Interval nb = meet(b, {kMin, a.hi});
        a = na;
        b = nb;
        break;
    }
    case Cmp::LtU:
    case Cmp::GeU:
        if (sameUnsignedHalf(a, b))
            refineCmp(cmp == Cmp::LtU ? Cmp::LtS : Cmp::GeS, a, b);
        break;
    }
    if (a.isBottom() || b.isBottom())
        a = b = Interval::bottom();
}

} // namespace analysis
} // namespace paradox
