/**
 * @file
 * Register dataflow: forward may/must-initialized analysis and
 * backward liveness, both as iterative bitmask fixpoints over the
 * CFG (64 register slots fit one std::uint64_t per set).
 *
 * Conservative choices keep the pass quiet on correct code: blocks
 * entered through a statically-unknown edge (call-return points) are
 * assumed fully initialized, and a block ending in an indirect jump
 * is assumed to leak every register (all live), so neither can
 * produce false def-before-use or dead-store reports.
 */

#include <cstdint>
#include <vector>

#include "analysis/passes.hh"
#include "analysis/regmodel.hh"

namespace paradox
{
namespace analysis
{

namespace
{

constexpr std::uint64_t allRegs = ~std::uint64_t(0);
constexpr std::uint64_t zeroReg = slotBit(0);  // x0, always initialized

struct InitState
{
    std::uint64_t may = 0;
    std::uint64_t must = 0;
};

/** Apply one instruction's def to an init state. */
void
applyDef(const UseDef &ud, InitState &s)
{
    if (ud.def >= 0) {
        s.may |= slotBit(unsigned(ud.def));
        s.must |= slotBit(unsigned(ud.def));
    }
}

void
checkInitialized(const Context &ctx, std::vector<Diagnostic> &diags)
{
    const auto &blocks = ctx.cfg.blocks();
    const auto &code = ctx.prog.code();
    const std::size_t nb = blocks.size();

    std::vector<InitState> in(nb), out(nb);
    for (auto &s : out) {
        s.may = 0;
        s.must = allRegs;  // top, refined by iteration
    }

    auto joinIn = [&](std::size_t b) {
        InitState s;
        bool external = b == ctx.cfg.entry() || blocks[b].callReturnPoint;
        if (external) {
            // Entry: only x0 holds a defined value.  Call-return
            // points arrive through a statically-unknown edge;
            // assume everything initialized to stay quiet.
            s.may = b == ctx.cfg.entry() ? zeroReg : allRegs;
            s.must = s.may;
        } else {
            s.must = allRegs;
        }
        for (std::size_t p : blocks[b].preds) {
            if (!ctx.reachable[p])
                continue;
            s.may |= out[p].may;
            s.must &= out[p].must;
        }
        s.may |= zeroReg;
        s.must &= s.may;  // must ⊆ may
        s.must |= zeroReg;
        return s;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b = 0; b < nb; ++b) {
            if (!ctx.reachable[b])
                continue;
            InitState s = joinIn(b);
            in[b] = s;
            for (std::size_t i = blocks[b].first; i <= blocks[b].last;
                 ++i)
                applyDef(useDef(code[i]), s);
            if (s.may != out[b].may || s.must != out[b].must) {
                out[b] = s;
                changed = true;
            }
        }
    }

    for (std::size_t b = 0; b < nb; ++b) {
        if (!ctx.reachable[b])
            continue;
        InitState s = in[b];
        for (std::size_t i = blocks[b].first; i <= blocks[b].last;
             ++i) {
            const UseDef ud = useDef(code[i]);
            std::uint64_t reported = 0;  // one report per slot per inst
            for (unsigned u = 0; u < ud.nUses; ++u) {
                const unsigned slot = ud.uses[u];
                if (slot == 0 || (reported & slotBit(slot)))
                    continue;
                reported |= slotBit(slot);
                if (!(s.may & slotBit(slot))) {
                    diags.push_back(
                        {Severity::Error, "dataflow", "def-before-use",
                         i, "", "",
                         "reads " + slotName(slot) +
                             ", which is never written on any path "
                             "to this instruction"});
                } else if (!(s.must & slotBit(slot)) &&
                           ctx.opts.warnMaybeUninit) {
                    diags.push_back(
                        {Severity::Warning, "dataflow", "maybe-uninit",
                         i, "", "",
                         "reads " + slotName(slot) +
                             ", which is uninitialized on some "
                             "paths to this instruction"});
                }
            }
            applyDef(ud, s);
        }
    }
}

void
checkDeadStores(const Context &ctx, std::vector<Diagnostic> &diags)
{
    const auto &blocks = ctx.cfg.blocks();
    const auto &code = ctx.prog.code();
    const std::size_t nb = blocks.size();

    std::vector<std::uint64_t> liveIn(nb, 0), liveOut(nb, 0);

    auto blockOut = [&](std::size_t b) {
        if (blocks[b].indirect)
            return allRegs;  // continuation unknown: everything live
        std::uint64_t live = 0;
        for (std::size_t s : blocks[b].succs)
            live |= liveIn[s];
        return live;
    };
    auto transfer = [&](std::size_t b, std::uint64_t live) {
        for (std::size_t i = blocks[b].last + 1; i-- > blocks[b].first;) {
            const UseDef ud = useDef(code[i]);
            if (ud.def >= 0)
                live &= ~slotBit(unsigned(ud.def));
            live |= ud.useMask();
        }
        return live;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b = nb; b-- > 0;) {
            liveOut[b] = blockOut(b);
            std::uint64_t live = transfer(b, liveOut[b]);
            if (live != liveIn[b]) {
                liveIn[b] = live;
                changed = true;
            }
        }
    }

    for (std::size_t b = 0; b < nb; ++b) {
        if (!ctx.reachable[b])
            continue;
        // Walk backward so each instruction sees liveness just after
        // itself.
        std::uint64_t live = liveOut[b];
        std::vector<std::pair<std::size_t, unsigned>> dead;
        for (std::size_t i = blocks[b].last + 1; i-- > blocks[b].first;) {
            const UseDef ud = useDef(code[i]);
            if (ud.def >= 0 && !(live & slotBit(unsigned(ud.def))))
                dead.push_back({i, unsigned(ud.def)});
            if (ud.def >= 0)
                live &= ~slotBit(unsigned(ud.def));
            live |= ud.useMask();
        }
        for (auto it = dead.rbegin(); it != dead.rend(); ++it)
            diags.push_back(
                {Severity::Warning, "dataflow", "dead-store",
                 it->first, "", "",
                 "value written to " + slotName(it->second) +
                     " is never read"});
    }
}

} // namespace

void
checkDataflow(const Context &ctx, std::vector<Diagnostic> &diags)
{
    if (ctx.cfg.empty())
        return;
    checkInitialized(ctx, diags);
    if (ctx.opts.warnDeadStores)
        checkDeadStores(ctx, diags);
}

} // namespace analysis
} // namespace paradox
