/**
 * @file
 * Decoded-image consistency pass ("decoded").
 *
 * The production engine executes the pre-decoded micro-op image
 * (isa::DecodedProgram), and the static cost model's paradox-cost/1
 * bounds are derived from the CFG over the same program.  Superblock
 * execution retires straight-line runs without re-checking control
 * flow, so the two representations must agree: every resolved branch
 * target has to land on a CFG block leader along a CFG edge, every
 * run length has to stop at the next control transfer, and the
 * per-class instruction counts the cost model consumes have to match
 * an independent walk of the instruction words.  This pass
 * re-derives all three from isa::InstInfo and the CFG and reports
 * any drift as an error, so a decode bug fails `isa_lint --all
 * --Werror` in CI instead of silently invalidating the cost bounds.
 */

#include "analysis/passes.hh"

#include <algorithm>

#include "isa/decoded.hh"
#include "isa/instruction.hh"

namespace paradox
{
namespace analysis
{

void
checkDecoded(const Context &ctx, std::vector<Diagnostic> &diags)
{
    const isa::Program &prog = ctx.prog;
    const auto dp = isa::DecodedProgram::get(prog);
    const std::vector<isa::Instruction> &code = prog.code();
    const std::size_t n = code.size();

    if (dp->size() != n) {
        diags.push_back({Severity::Error, "decoded", "decoded-size",
                         Diagnostic::noIndex, "", "",
                         "decoded image has " +
                             std::to_string(dp->size()) +
                             " micro-ops for " + std::to_string(n) +
                             " instructions"});
        return;
    }
    if (n == 0)
        return;

    // Expected superblock run lengths, re-derived backward from the
    // instruction words (the decoder must stop every run at the next
    // control transfer, HALT, or image end).
    std::vector<std::uint32_t> runLen(n, 1);
    for (std::size_t i = n; i-- > 0;) {
        const isa::InstInfo &ii = code[i].info();
        const bool ends = ii.isBranch || ii.isJump ||
                          code[i].op == isa::Opcode::HALT;
        if (!ends && i + 1 < n)
            runLen[i] = runLen[i + 1] + 1;
    }

    std::vector<std::uint64_t> classCounts(
        unsigned(isa::InstClass::NumClasses), 0);

    for (std::size_t i = 0; i < n; ++i) {
        const isa::MicroOp &u = dp->at(i);
        const isa::InstInfo &ii = code[i].info();
        ++classCounts[unsigned(ii.cls)];

        if (u.cls != ii.cls || u.isLoad != ii.isLoad ||
            u.isStore != ii.isStore || u.isBranch != ii.isBranch ||
            u.isJump != ii.isJump || u.writesInt != ii.writesIntReg ||
            u.writesFp != ii.writesFpReg) {
            diags.push_back(
                {Severity::Error, "decoded", "decoded-class", i, "",
                 "",
                 "micro-op classification disagrees with the "
                 "instruction table"});
            continue;
        }

        if (u.runLen != runLen[i])
            diags.push_back(
                {Severity::Error, "decoded", "decoded-runlen", i, "",
                 "",
                 "superblock run length " + std::to_string(u.runLen) +
                     " does not stop at the next control transfer "
                     "(expected " +
                     std::to_string(runLen[i]) + ")"});

        // Resolved taken targets must be CFG block leaders reached
        // along a CFG edge from this instruction's block.
        if (u.target == isa::DecodedProgram::badTarget)
            continue;
        const std::size_t target = u.target;
        bool consistent = target < n;
        if (consistent) {
            const std::size_t sb = ctx.cfg.blockOf(i);
            const std::size_t tb = ctx.cfg.blockOf(target);
            const auto &succs = ctx.cfg.blocks()[sb].succs;
            consistent =
                ctx.cfg.blocks()[tb].first == target &&
                std::find(succs.begin(), succs.end(), tb) !=
                    succs.end();
        }
        if (!consistent)
            diags.push_back(
                {Severity::Error, "decoded", "decoded-target", i, "",
                 "",
                 "resolved branch target " + std::to_string(target) +
                     " is not a CFG successor block leader"});
    }

    // The per-class counts the cost model consumes must match an
    // independent count over the instruction words.
    const std::vector<std::uint64_t> decodedCounts = dp->classCounts();
    for (unsigned k = 0; k < unsigned(isa::InstClass::NumClasses); ++k)
        if (decodedCounts[k] != classCounts[k]) {
            diags.push_back(
                {Severity::Error, "decoded", "decoded-mix",
                 Diagnostic::noIndex, "", "",
                 std::string("decoded class count for ") +
                     isa::className(isa::InstClass(k)) + " is " +
                     std::to_string(decodedCounts[k]) + ", expected " +
                     std::to_string(classCounts[k])});
        }
}

} // namespace analysis
} // namespace paradox
