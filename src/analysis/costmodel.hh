/**
 * @file
 * Static segment-cost model.
 *
 * Combines the interval engine's trip bounds with each block's
 * instruction mix to predict, per workload: how many instructions a
 * complete run commits (min/max), how many checkpoint segments that
 * makes at a given segment length, and how many checker-core cycles
 * verifying those segments costs.  The latency table mirrors
 * cpu::CheckerParams (src/cpu/checker_timing.hh) but is duplicated
 * here because the analysis library deliberately links only
 * paradox_isa.
 *
 * min/maxDynInsts are *sound bounds*, cross-validated against
 * paradox-trace/1 seg-insts events by `trace_report --cost`; the
 * cycle and segment figures are estimates (the AIMD controller
 * adapts segment length at run time).
 */

#ifndef PARADOX_ANALYSIS_COSTMODEL_HH
#define PARADOX_ANALYSIS_COSTMODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/opcode.hh"
#include "isa/program.hh"

namespace paradox
{
namespace analysis
{

/** Latencies (checker cycles) and model knobs. */
struct CostParams
{
    unsigned intAluLat = 1;
    unsigned intMultLat = 4;
    unsigned intDivLat = 24;
    unsigned fpAluLat = 2;
    unsigned fpMultLat = 3;
    unsigned fpDivLat = 32;
    unsigned logAccessLat = 1;
    unsigned branchExtraLat = 2;

    /** Checkpoint-segment length (insts); AIMD initial by default. */
    std::uint64_t segmentLength = 1000;

    /** Extra footprint regions (e.g. the ABI result cell). */
    std::vector<isa::MemRegion> extraRegions;
};

/** The model's output for one program. */
struct WorkloadCost
{
    static constexpr std::size_t numClasses =
        std::size_t(isa::InstClass::NumClasses);

    std::string program;

    bool converged = false;   //!< interval fixpoint terminated
    std::uint64_t sweeps = 0; //!< fixpoint RPO sweeps used
    std::uint64_t loops = 0;
    std::uint64_t boundedLoops = 0;

    /**
     * Sound bounds on committed instructions in any complete
     * fault-free run.  @c maxDynInsts is only valid when @c bounded
     * (reducible CFG, every loop bounded, no indirect jumps);
     * @c minDynInsts only claims progress up to the first HALT or
     * indirect jump and is always valid.
     */
    bool bounded = false;
    std::uint64_t minDynInsts = 0;
    std::uint64_t maxDynInsts = 0;

    std::uint64_t footprintBytes = 0;  //!< merged declared+data+extra

    /**
     * @{ Identity of the decoded micro-op image the mix was counted
     * over: micro-op count and isa::DecodedProgram content hash.
     * `trace_report --cost` re-decodes the workload and verifies
     * both, so a stale cost file (workload changed after the model
     * was emitted) fails the cross-validation instead of silently
     * comparing against the wrong program.
     */
    std::uint64_t decodedUops = 0;
    std::uint64_t decodedHash = 0;
    /** @} */

    /**
     * Instruction mix by InstClass, weighted by per-block trip
     * products when @c bounded (so it over-approximates the dynamic
     * mix), else plain static counts.
     */
    std::uint64_t mix[numClasses] = {};
    std::uint64_t mixTotal = 0;

    double cyclesPerInst = 0.0;             //!< mix-weighted CPI
    std::uint64_t segmentLength = 0;        //!< params.segmentLength
    std::uint64_t checkerCyclesPerSegment = 0;
    /** Upper bounds, valid only when @c bounded. */
    std::uint64_t checkerCyclesTotal = 0;
    std::uint64_t predictedSegments = 0;
};

class CostModel
{
  public:
    static WorkloadCost compute(const isa::Program &prog,
                                const CostParams &params = {});

    /** Checker cycles one instruction of @p cls costs. */
    static unsigned classLatency(const CostParams &params,
                                 isa::InstClass cls);
};

/** paradox-cost/1 JSONL header line (flat, obs::jsonField-parsable). */
std::string costJsonHeader();

/** One flat paradox-cost/1 record line for @p c at @p scale. */
std::string costJsonLine(const WorkloadCost &c, unsigned scale);

} // namespace analysis
} // namespace paradox

#endif // PARADOX_ANALYSIS_COSTMODEL_HH
