/**
 * @file
 * Static memory-dependence analysis over access addresses.
 *
 * On top of the interval fixpoint (ai.hh) this derives one
 * MemAccess descriptor per load/store: the syntactic base register
 * and immediate offset, a block-local symbolic epoch of the base
 * (so two accesses off the same unmodified register provably share
 * a base even when its interval is wide), and the value-set
 * interval of the effective address.  The descriptors feed
 *
 *  - an alias oracle (must / may / no) for access pairs,
 *  - the "memdep" lint pass: redundant-load, dead-memory-store and
 *    always-overlapping-access diagnostics, and
 *  - the `isa_lint --memdep` JSONL export, which pairs the oracle's
 *    pair census with the per-run effect summaries (effects.hh)
 *    consumed by System::stepSuperblock and trace_report --memdep.
 */

#ifndef PARADOX_ANALYSIS_MEMDEP_HH
#define PARADOX_ANALYSIS_MEMDEP_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/ai.hh"
#include "analysis/effects.hh"
#include "analysis/passes.hh"

namespace paradox
{
namespace analysis
{

/** Value-set descriptor of one static load or store. */
struct MemAccess
{
    std::size_t index = 0;    //!< instruction index
    std::size_t block = 0;    //!< owning CFG block id
    bool isStore = false;
    unsigned size = 0;        //!< access bytes
    std::uint8_t baseReg = 0; //!< syntactic base (rs1)
    /**
     * Block-local definition count of baseReg before this access.
     * Two accesses in the same block with equal (baseReg, baseEpoch)
     * compute their addresses from the very same base value, whatever
     * its interval; epochs are meaningless across blocks.
     */
    std::uint32_t baseEpoch = 0;
    std::int64_t offset = 0;  //!< immediate displacement
    Interval addr;            //!< interval of base + offset
};

/** Alias verdict for a pair of accesses. */
enum class AliasKind : std::uint8_t
{
    NoAlias,   //!< byte extents provably never overlap
    MayAlias,  //!< neither separation nor coincidence provable
    MustAlias, //!< byte extents overlap on every execution
};

const char *aliasKindName(AliasKind k);

/** The alias oracle: every reachable access, queryable pairwise. */
class MemDep
{
  public:
    static MemDep run(const Context &ctx, const IntervalAnalysis &ai);

    const std::vector<MemAccess> &accesses() const { return accesses_; }

    /** Classify the pair; symmetric. */
    AliasKind alias(const MemAccess &a, const MemAccess &b) const;

    struct PairCounts
    {
        std::uint64_t no = 0;
        std::uint64_t may = 0;
        std::uint64_t must = 0;
    };

    /** Census over all unordered access pairs. */
    PairCounts pairCounts() const;

  private:
    std::vector<MemAccess> accesses_;
};

/**
 * The "memdep" lint pass (requires a converged interval analysis):
 *
 *  - redundant-load (info): a load provably re-reads exactly the
 *    bytes an earlier load in the same block fetched, with no
 *    possibly-overlapping store in between.
 *  - dead-memory-store (warning): a store whose bytes are fully
 *    overwritten by a later store in the same block before any
 *    possibly-overlapping load.
 *  - always-overlapping-access (warning): two accesses that provably
 *    overlap on every execution but with different byte extents --
 *    mixed-granularity traffic to the same memory.
 */
void checkMemDep(const Context &ctx, const IntervalAnalysis &ai,
                 std::vector<Diagnostic> &diags);

/** @{ `paradox-memdep/1` JSONL model (isa_lint --memdep). */
std::string memdepJsonHeader();
std::string memdepJsonLine(const std::string &workload, unsigned scale,
                           const EffectSummary &es,
                           const MemDep::PairCounts &pairs,
                           std::size_t staticAccesses);
/** @} */

} // namespace analysis
} // namespace paradox

#endif // PARADOX_ANALYSIS_MEMDEP_HH
