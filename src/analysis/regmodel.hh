/**
 * @file
 * Register use/def model of every PDX64 opcode, shared by the
 * dataflow passes.
 *
 * The 32 integer and 32 FP registers are flattened into 64 "slots"
 * (0..31 = x0..x31, 32..63 = f0..f31) so a whole register file state
 * fits one std::uint64_t bitmask.  x0 occupies slot 0 but is never a
 * def (writes are discarded) and is always considered initialized.
 */

#ifndef PARADOX_ANALYSIS_REGMODEL_HH
#define PARADOX_ANALYSIS_REGMODEL_HH

#include <cstdint>
#include <string>

#include "isa/instruction.hh"

namespace paradox
{
namespace analysis
{

/** Total register slots: integer file then FP file. */
constexpr unsigned numRegSlots = isa::numIntRegs + isa::numFpRegs;

/** Slot of integer register @p r. */
constexpr unsigned xslot(unsigned r) { return r; }

/** Slot of FP register @p r. */
constexpr unsigned fslot(unsigned r) { return isa::numIntRegs + r; }

/** Bit for slot @p s in a register-set mask. */
constexpr std::uint64_t slotBit(unsigned s)
{ return std::uint64_t(1) << s; }

/** "x12" / "f3" for diagnostics. */
std::string slotName(unsigned slot);

/**
 * The registers one instruction reads and writes.  @c def is -1 for
 * instructions with no register destination and for writes to x0.
 */
struct UseDef
{
    std::uint8_t uses[3] = {0, 0, 0};
    unsigned nUses = 0;
    int def = -1;

    /** Register-set mask of all used slots. */
    std::uint64_t
    useMask() const
    {
        std::uint64_t m = 0;
        for (unsigned i = 0; i < nUses; ++i)
            m |= slotBit(uses[i]);
        return m;
    }
};

/** Classify @p inst's register accesses. */
UseDef useDef(const isa::Instruction &inst);

} // namespace analysis
} // namespace paradox

#endif // PARADOX_ANALYSIS_REGMODEL_HH
