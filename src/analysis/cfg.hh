/**
 * @file
 * Control-flow graph over an isa::Program.
 *
 * Basic blocks are split at labels, at branch/jump targets, and after
 * every control transfer; edges are recovered from the absolute byte
 * targets the ProgramBuilder resolved at build() time.  JALR is an
 * indirect jump whose targets are unknown statically: its block is
 * flagged @c indirect and gets no successor edges, and the passes
 * treat everything downstream of it conservatively.  The instruction
 * after a linking jump (jal/jalr with rd != x0) is flagged a
 * @c callReturnPoint so callee code reached only via "ret" is not
 * reported unreachable.
 */

#ifndef PARADOX_ANALYSIS_CFG_HH
#define PARADOX_ANALYSIS_CFG_HH

#include <cstddef>
#include <vector>

#include "analysis/diagnostic.hh"
#include "isa/program.hh"

namespace paradox
{
namespace analysis
{

/** One maximal straight-line run of instructions. */
struct BasicBlock
{
    std::size_t first = 0;  //!< first instruction index
    std::size_t last = 0;   //!< last instruction index (inclusive)

    std::vector<std::size_t> succs;  //!< successor block ids
    std::vector<std::size_t> preds;  //!< predecessor block ids

    bool indirect = false;         //!< ends in jalr: successors unknown
    bool fallsOffEnd = false;      //!< can run past the end of the image
    bool callReturnPoint = false;  //!< first inst follows a linking jump

    std::size_t size() const { return last - first + 1; }
};

/** The CFG plus the instruction -> block mapping. */
class Cfg
{
  public:
    /**
     * Build the CFG of @p prog.  Structural problems found during
     * construction (branch targets outside the image, conditional
     * fallthrough past the last instruction) are appended to
     * @p diags when it is non-null.
     */
    static Cfg build(const isa::Program &prog,
                     std::vector<Diagnostic> *diags = nullptr);

    const std::vector<BasicBlock> &blocks() const { return blocks_; }

    /** Block containing instruction @p instIdx. */
    std::size_t blockOf(std::size_t instIdx) const
    { return blockOf_[instIdx]; }

    /** Entry block id (the block holding instruction 0). */
    std::size_t entry() const { return 0; }

    bool empty() const { return blocks_.empty(); }

    /**
     * Blocks reachable from the entry, including blocks only
     * reachable as the return point of a linking jump.
     */
    std::vector<bool> reachableBlocks() const;

  private:
    std::vector<BasicBlock> blocks_;
    std::vector<std::size_t> blockOf_;
};

} // namespace analysis
} // namespace paradox

#endif // PARADOX_ANALYSIS_CFG_HH
