/**
 * @file
 * The individual analysis passes run by analysis::Linter.
 *
 * Every pass reads a shared immutable Context (program, CFG,
 * reachability) and appends Diagnostics; passes never mutate the
 * program.  Pass names double as the @c pass field of the
 * diagnostics they emit:
 *
 *  - "reach":       unreachable blocks, no reachable halt
 *  - "dataflow":    def-before-use, maybe-uninitialized, dead stores
 *  - "footprint":   out-of-footprint and misaligned constant accesses
 *  - "termination": infinite and likely-infinite loops
 *
 * ("cfg" diagnostics — invalid branch targets, fallthrough off the
 * end of the image — are emitted during Cfg::build itself.)
 */

#ifndef PARADOX_ANALYSIS_PASSES_HH
#define PARADOX_ANALYSIS_PASSES_HH

#include <vector>

#include "analysis/cfg.hh"
#include "analysis/diagnostic.hh"
#include "isa/program.hh"

namespace paradox
{
namespace analysis
{

/** Tuning knobs and environment facts for the passes. */
struct Options
{
    /**
     * Regions that are part of the footprint but not declared by the
     * program itself, e.g. the ABI result cell every workload stores
     * its checksum to.
     */
    std::vector<isa::MemRegion> extraRegions;

    bool warnDeadStores = true;    //!< report never-read register defs
    bool warnMaybeUninit = true;   //!< report path-dependent init
};

/** Shared read-only state handed to each pass. */
struct Context
{
    const isa::Program &prog;
    const Cfg &cfg;
    const std::vector<bool> &reachable;  //!< per block id
    const Options &opts;
};

/** Unreachable blocks and absence of a reachable halt. */
void checkReachability(const Context &ctx,
                       std::vector<Diagnostic> &diags);

/**
 * Forward may/must-initialized analysis (def-before-use,
 * maybe-uninitialized) plus backward liveness (dead stores).
 */
void checkDataflow(const Context &ctx, std::vector<Diagnostic> &diags);

/**
 * Constant propagation over integer registers; every load/store
 * whose address resolves to a constant is checked for alignment and
 * membership in the declared + data-derived footprint.
 */
void checkFootprint(const Context &ctx, std::vector<Diagnostic> &diags);

/**
 * Back-edge detection and loop termination heuristics: a loop with
 * no exit path is an error; a loop none of whose exit-condition
 * registers is updated inside the loop is a likely-infinite warning.
 */
void checkTermination(const Context &ctx,
                      std::vector<Diagnostic> &diags);

} // namespace analysis
} // namespace paradox

#endif // PARADOX_ANALYSIS_PASSES_HH
