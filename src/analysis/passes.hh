/**
 * @file
 * The individual analysis passes run by analysis::Linter.
 *
 * Every pass reads a shared immutable Context (program, CFG,
 * reachability) and appends Diagnostics; passes never mutate the
 * program.  Pass names double as the @c pass field of the
 * diagnostics they emit:
 *
 *  - "reach":       unreachable blocks, no reachable halt
 *  - "dataflow":    def-before-use, maybe-uninitialized, dead stores
 *  - "footprint":   out-of-footprint and misaligned constant accesses
 *  - "termination": infinite and likely-infinite loops
 *  - "memdep":      redundant / dead / always-overlapping memory
 *                   accesses (memdep.hh, needs the interval AI)
 *
 * ("cfg" diagnostics — invalid branch targets, fallthrough off the
 * end of the image — are emitted during Cfg::build itself.)
 */

#ifndef PARADOX_ANALYSIS_PASSES_HH
#define PARADOX_ANALYSIS_PASSES_HH

#include <vector>

#include "analysis/cfg.hh"
#include "analysis/diagnostic.hh"
#include "isa/program.hh"

namespace paradox
{
namespace analysis
{

class IntervalAnalysis;

/** Tuning knobs and environment facts for the passes. */
struct Options
{
    /**
     * Regions that are part of the footprint but not declared by the
     * program itself, e.g. the ABI result cell every workload stores
     * its checksum to.
     */
    std::vector<isa::MemRegion> extraRegions;

    bool warnDeadStores = true;    //!< report never-read register defs
    bool warnMaybeUninit = true;   //!< report path-dependent init

    /**
     * Run the interval abstract interpretation and the passes built
     * on it: range-based footprint checks, dead branches, division /
     * shift range checks, and loop trip bounds.  Off by default; the
     * interval fixpoint costs more than every other pass combined.
     */
    bool ranges = false;

    /**
     * Run the fault-vulnerability (live-bit/ACE) analysis and report
     * its aggregate live fractions.  Pair with ranges=true to let
     * interval facts prune provably-masked bits.
     */
    bool vuln = false;

    /**
     * Run the memory-dependence pass (redundant-load,
     * dead-memory-store, always-overlapping-access).  Requires
     * ranges=true; silently skipped when the interval fixpoint did
     * not converge.
     */
    bool memdep = false;
};

/** Shared read-only state handed to each pass. */
struct Context
{
    const isa::Program &prog;
    const Cfg &cfg;
    const std::vector<bool> &reachable;  //!< per block id
    const Options &opts;
};

/** Unreachable blocks and absence of a reachable halt. */
void checkReachability(const Context &ctx,
                       std::vector<Diagnostic> &diags);

/**
 * Forward may/must-initialized analysis (def-before-use,
 * maybe-uninitialized) plus backward liveness (dead stores).
 */
void checkDataflow(const Context &ctx, std::vector<Diagnostic> &diags);

/**
 * Constant propagation over integer registers; every load/store
 * whose address resolves to a constant is checked for alignment and
 * membership in the declared + data-derived footprint.
 */
void checkFootprint(const Context &ctx, std::vector<Diagnostic> &diags);

/**
 * Back-edge detection and loop termination heuristics: a loop with
 * no exit path is an error; a loop none of whose exit-condition
 * registers is updated inside the loop is a likely-infinite warning.
 * When @p ai is non-null, loops it proved bounded are exempt from
 * the likely-infinite heuristic.
 */
void checkTermination(const Context &ctx,
                      std::vector<Diagnostic> &diags,
                      const IntervalAnalysis *ai = nullptr);

/**
 * Interval-based checks over @p ai: range-based footprint membership
 * (constant-pass codes for definite violations so deduplication
 * collapses double reports, "possible-*" warnings for finite ranges
 * that straddle a region edge), provably dead branches, possible
 * division by zero, and out-of-range register shift amounts.
 */
void checkRanges(const Context &ctx, const IntervalAnalysis &ai,
                 std::vector<Diagnostic> &diags);

/**
 * Decoded-image consistency: the pre-decoded micro-op image
 * (isa::DecodedProgram) must agree with the CFG and the instruction
 * table -- resolved branch targets on CFG edges, superblock run
 * lengths stopping at control transfers, and the per-class counts
 * the cost model consumes matching an independent instruction walk.
 */
void checkDecoded(const Context &ctx, std::vector<Diagnostic> &diags);

/**
 * The program's full footprint: declared regions, runs derived from
 * the initial data image, and @p extras.  Unmerged.
 */
std::vector<isa::MemRegion>
footprintRegions(const isa::Program &prog,
                 const std::vector<isa::MemRegion> &extras);

/** Merge @p regions into sorted, disjoint, maximal runs. */
std::vector<isa::MemRegion>
mergeRegions(std::vector<isa::MemRegion> regions);

} // namespace analysis
} // namespace paradox

#endif // PARADOX_ANALYSIS_PASSES_HH
