/**
 * @file
 * analysis::Linter — the static-analysis pass pipeline over
 * isa::Program, and its Report.
 *
 * The linter runs CFG construction, reachability, register dataflow,
 * memory-footprint and termination passes in order -- plus the
 * interval-based range passes when Options::ranges is set -- resolves
 * every diagnostic to the nearest label plus the disassembled
 * instruction, deduplicates reports that different paths raised for
 * the same (pass, code, instruction), and returns a Report that
 * renders either as human-readable text or as a machine-readable
 * JSON object (schema "paradox-lint/1").
 *
 * A malformed workload therefore fails at lint time -- in
 * tests/test_analysis and in the `isa_lint --all --Werror` CI step --
 * instead of silently corrupting fault-injection ground truth.
 */

#ifndef PARADOX_ANALYSIS_LINTER_HH
#define PARADOX_ANALYSIS_LINTER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostic.hh"
#include "analysis/passes.hh"
#include "isa/program.hh"

namespace paradox
{
namespace analysis
{

/** Diagnostic count and wall-clock cost of one pass. */
struct PassStat
{
    std::string name;
    std::size_t diagnostics = 0;
    std::uint64_t micros = 0;
};

/** Everything one lint run found about one program. */
struct Report
{
    /** JSON schema identifier emitted in every report. */
    static constexpr const char *schema = "paradox-lint/1";

    std::string program;          //!< program name
    std::size_t instructions = 0; //!< code size in instructions
    std::size_t blocks = 0;       //!< CFG basic blocks
    std::vector<Diagnostic> diags;
    std::vector<PassStat> passes; //!< per-pass stats, pipeline order

    std::size_t errors() const
    { return countSeverity(diags, Severity::Error); }
    std::size_t warnings() const
    { return countSeverity(diags, Severity::Warning); }

    /** True when the program passes: no errors, and under
     *  @p warnAsError also no warnings. */
    bool
    clean(bool warnAsError = false) const
    {
        return errors() == 0 && (!warnAsError || warnings() == 0);
    }

    /** Multi-line human-readable rendering; @p withStats appends the
     *  per-pass table. */
    std::string toText(bool withStats = false) const;

    /** One JSON object (single line). */
    std::string toJson() const;
};

/** The pass pipeline.  Construct once, lint many programs. */
class Linter
{
  public:
    explicit Linter(Options opts = {}) : opts_(std::move(opts)) {}

    /** Run all passes over @p prog. */
    Report lint(const isa::Program &prog) const;

    const Options &options() const { return opts_; }

  private:
    Options opts_;
};

} // namespace analysis
} // namespace paradox

#endif // PARADOX_ANALYSIS_LINTER_HH
