#include "analysis/passes.hh"

namespace paradox
{
namespace analysis
{

void
checkReachability(const Context &ctx, std::vector<Diagnostic> &diags)
{
    const auto &blocks = ctx.cfg.blocks();
    bool reachableHalt = false;

    for (std::size_t b = 0; b < blocks.size(); ++b) {
        const BasicBlock &block = blocks[b];
        if (!ctx.reachable[b]) {
            diags.push_back(
                {Severity::Warning, "reach", "unreachable-block",
                 block.first, "", "",
                 "basic block [" + std::to_string(block.first) + ", " +
                     std::to_string(block.last) +
                     "] is unreachable from the entry"});
            continue;
        }
        for (std::size_t i = block.first; i <= block.last; ++i)
            if (ctx.prog.code()[i].op == isa::Opcode::HALT)
                reachableHalt = true;
    }

    if (!reachableHalt)
        diags.push_back({Severity::Error, "reach", "no-halt",
                         Diagnostic::noIndex, "", "",
                         "no halt instruction is reachable from the "
                         "entry; the program cannot terminate cleanly"});
}

} // namespace analysis
} // namespace paradox
