#include "analysis/linter.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <sstream>

#include "analysis/ai.hh"
#include "analysis/cfg.hh"
#include "analysis/memdep.hh"
#include "analysis/vuln.hh"

namespace paradox
{
namespace analysis
{

Report
Linter::lint(const isa::Program &prog) const
{
    Report report;
    report.program = prog.name();
    report.instructions = prog.size();

    if (prog.size() == 0) {
        report.diags.push_back(
            {Severity::Error, "cfg", "empty-program",
             Diagnostic::noIndex, "", "",
             "program contains no instructions"});
        return report;
    }

    // Problems the ProgramBuilder recorded but did not reject.
    for (const std::string &w : prog.buildWarnings())
        report.diags.push_back({Severity::Warning, "build",
                                "overlapping-regions",
                                Diagnostic::noIndex, "", "", w});

    auto timed = [&](const char *name, auto &&fn) {
        const auto t0 = std::chrono::steady_clock::now();
        const std::size_t before = report.diags.size();
        fn();
        const auto us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
        report.passes.push_back({name,
                                 report.diags.size() - before,
                                 std::uint64_t(us)});
    };

    Cfg cfg;
    timed("cfg", [&] { cfg = Cfg::build(prog, &report.diags); });
    report.blocks = cfg.blocks().size();
    const std::vector<bool> reachable = cfg.reachableBlocks();

    const Context ctx{prog, cfg, reachable, opts_};
    timed("reach", [&] { checkReachability(ctx, report.diags); });
    timed("dataflow", [&] { checkDataflow(ctx, report.diags); });
    timed("footprint", [&] { checkFootprint(ctx, report.diags); });
    timed("decoded", [&] { checkDecoded(ctx, report.diags); });

    std::optional<IntervalAnalysis> ai;
    if (opts_.ranges)
        timed("ranges", [&] {
            ai = IntervalAnalysis::run(prog, cfg, reachable);
            if (!ai->converged())
                report.diags.push_back(
                    {Severity::Warning, "ranges", "no-fixpoint",
                     Diagnostic::noIndex, "", "",
                     "interval analysis hit its sweep cap without "
                     "converging; range diagnostics and trip bounds "
                     "were skipped"});
            else
                checkRanges(ctx, *ai, report.diags);
        });

    if (opts_.memdep && ai && ai->converged())
        timed("memdep",
              [&] { checkMemDep(ctx, *ai, report.diags); });

    timed("termination", [&] {
        checkTermination(ctx, report.diags,
                         ai && ai->converged() ? &*ai : nullptr);
    });

    if (opts_.vuln)
        timed("vuln", [&] {
            VulnOptions vo;
            vo.extraRegions = opts_.extraRegions;
            vo.intervals = ai && ai->converged() ? &*ai : nullptr;
            const VulnAnalysis va =
                VulnAnalysis::run(prog, cfg, reachable, vo);
            const VulnAnalysis::Stats &st = va.stats();
            std::ostringstream msg;
            msg << "vulnerability: " << st.regBitsLive << "/"
                << st.regBitsTotal << " register bits live-into-output";
            char pct[16];
            std::snprintf(pct, sizeof pct, " (%.1f%%)",
                          100.0 * st.liveFraction);
            msg << pct << ", " << st.prunedEdges
                << " interval-pruned edge(s)";
            if (st.footprintAnalyzed)
                msg << ", " << st.footprintLiveAtEntry << "/"
                    << st.footprintBytes
                    << " footprint bytes live at entry";
            report.diags.push_back({Severity::Info, "vuln",
                                    "live-bit-summary",
                                    Diagnostic::noIndex, "", "",
                                    msg.str()});
        });

    // Resolve source locations: nearest label and disassembly.
    for (auto &d : report.diags) {
        if (d.index == Diagnostic::noIndex || d.index >= prog.size())
            continue;
        d.context = prog.labelAt(d.index);
        d.inst = prog.code()[d.index].toString();
    }

    // Stable order: by instruction, then severity (worst first).
    std::stable_sort(
        report.diags.begin(), report.diags.end(),
        [](const Diagnostic &a, const Diagnostic &b) {
            if (a.index != b.index)
                return a.index < b.index;
            return static_cast<int>(a.severity) >
                   static_cast<int>(b.severity);
        });

    // Different paths (e.g. the constant and range footprint checks)
    // may report the same finding at the same instruction; keep the
    // first (most severe at that index).  For the per-access passes
    // the (pass, code, pc) key alone identifies the finding even when
    // the wording differs; elsewhere (e.g. one def-before-use per
    // operand register) same-key diagnostics are distinct unless the
    // message matches too.  Program-level diagnostics (noIndex, e.g.
    // every overlapping-region pair) are never collapsed.
    report.diags.erase(
        std::unique(report.diags.begin(), report.diags.end(),
                    [](const Diagnostic &a, const Diagnostic &b) {
                        if (a.index != b.index ||
                            a.index == Diagnostic::noIndex ||
                            a.pass != b.pass || a.code != b.code)
                            return false;
                        return a.pass == "footprint" ||
                               a.pass == "ranges" ||
                               a.pass == "memdep" ||
                               a.message == b.message;
                    }),
        report.diags.end());
    return report;
}

std::string
Report::toText(bool withStats) const
{
    std::ostringstream os;
    os << "program '" << program << "': " << instructions
       << " instructions, " << blocks << " blocks, " << errors()
       << " error(s), " << warnings() << " warning(s)\n";
    for (const auto &d : diags)
        os << "  " << d.toString() << "\n";
    if (withStats) {
        os << "  pass stats:\n";
        for (const auto &p : passes)
            os << "    " << p.name << ": " << p.diagnostics
               << " diagnostic(s), " << p.micros << " us\n";
    }
    return os.str();
}

std::string
Report::toJson() const
{
    std::ostringstream os;
    os << "{\"schema\":\"" << schema << "\""
       << ",\"program\":\"" << jsonEscape(program) << "\""
       << ",\"instructions\":" << instructions
       << ",\"blocks\":" << blocks
       << ",\"errors\":" << errors()
       << ",\"warnings\":" << warnings()
       << ",\"infos\":" << countSeverity(diags, Severity::Info)
       << ",\"passes\":[";
    for (std::size_t i = 0; i < passes.size(); ++i) {
        if (i)
            os << ",";
        os << "{\"name\":\"" << jsonEscape(passes[i].name)
           << "\",\"diagnostics\":" << passes[i].diagnostics
           << ",\"micros\":" << passes[i].micros << "}";
    }
    os << "],\"diagnostics\":[";
    for (std::size_t i = 0; i < diags.size(); ++i) {
        if (i)
            os << ",";
        os << diags[i].toJson();
    }
    os << "]}";
    return os.str();
}

} // namespace analysis
} // namespace paradox
