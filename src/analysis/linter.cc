#include "analysis/linter.hh"

#include <algorithm>
#include <sstream>

#include "analysis/cfg.hh"

namespace paradox
{
namespace analysis
{

Report
Linter::lint(const isa::Program &prog) const
{
    Report report;
    report.program = prog.name();
    report.instructions = prog.size();

    if (prog.size() == 0) {
        report.diags.push_back(
            {Severity::Error, "cfg", "empty-program",
             Diagnostic::noIndex, "", "",
             "program contains no instructions"});
        return report;
    }

    Cfg cfg = Cfg::build(prog, &report.diags);
    report.blocks = cfg.blocks().size();
    const std::vector<bool> reachable = cfg.reachableBlocks();

    const Context ctx{prog, cfg, reachable, opts_};
    checkReachability(ctx, report.diags);
    checkDataflow(ctx, report.diags);
    checkFootprint(ctx, report.diags);
    checkTermination(ctx, report.diags);

    // Resolve source locations: nearest label and disassembly.
    for (auto &d : report.diags) {
        if (d.index == Diagnostic::noIndex || d.index >= prog.size())
            continue;
        d.context = prog.labelAt(d.index);
        d.inst = prog.code()[d.index].toString();
    }

    // Stable order: by instruction, then severity (worst first).
    std::stable_sort(
        report.diags.begin(), report.diags.end(),
        [](const Diagnostic &a, const Diagnostic &b) {
            if (a.index != b.index)
                return a.index < b.index;
            return static_cast<int>(a.severity) >
                   static_cast<int>(b.severity);
        });
    return report;
}

std::string
Report::toText() const
{
    std::ostringstream os;
    os << "program '" << program << "': " << instructions
       << " instructions, " << blocks << " blocks, " << errors()
       << " error(s), " << warnings() << " warning(s)\n";
    for (const auto &d : diags)
        os << "  " << d.toString() << "\n";
    return os.str();
}

std::string
Report::toJson() const
{
    std::ostringstream os;
    os << "{\"schema\":\"" << schema << "\""
       << ",\"program\":\"" << jsonEscape(program) << "\""
       << ",\"instructions\":" << instructions
       << ",\"blocks\":" << blocks
       << ",\"errors\":" << errors()
       << ",\"warnings\":" << warnings()
       << ",\"infos\":" << countSeverity(diags, Severity::Info)
       << ",\"diagnostics\":[";
    for (std::size_t i = 0; i < diags.size(); ++i) {
        if (i)
            os << ",";
        os << diags[i].toJson();
    }
    os << "]}";
    return os.str();
}

} // namespace analysis
} // namespace paradox
