/**
 * @file
 * Loop-termination heuristics.
 *
 * Natural loops are discovered via analysis::findLoops (shared with
 * the interval engine) and classified:
 *
 *  - no exit edge, no halt, no indirect jump in the body: the loop
 *    provably never terminates (error);
 *  - exits exist, but every exit is a conditional branch none of
 *    whose condition registers is ever written inside the loop: the
 *    exit condition is loop-invariant, so the trip decision never
 *    changes (likely-infinite warning).
 *
 * These are heuristics, not proofs of termination -- a loop that
 * passes both checks can still diverge -- but they catch the classic
 * hand-assembly mistakes (forgotten induction update, branch on the
 * wrong register) cheaply and with no false alarms on the suite.
 * When the caller ran the interval engine, loops it bounded (a
 * finite trip count is a termination proof) are exempt from the
 * heuristic warning.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/ai.hh"
#include "analysis/passes.hh"
#include "analysis/regmodel.hh"

namespace paradox
{
namespace analysis
{

void
checkTermination(const Context &ctx, std::vector<Diagnostic> &diags,
                 const IntervalAnalysis *ai)
{
    const auto &blocks = ctx.cfg.blocks();
    const auto &code = ctx.prog.code();

    const std::vector<Loop> localLoops =
        ai ? std::vector<Loop>{} : findLoops(ctx.cfg, ctx.reachable);
    const std::vector<Loop> &loops = ai ? ai->loops() : localLoops;

    for (const Loop &loop : loops) {
        bool hasEscape = false;       // halt or indirect jump inside
        bool hasExitEdge = false;
        std::uint64_t condRegs = 0;   // exit-branch condition slots
        std::uint64_t defsInLoop = 0;

        for (std::size_t b : loop.bodyBlocks) {
            if (blocks[b].indirect)
                hasEscape = true;
            bool exits = false;
            for (std::size_t s : blocks[b].succs)
                if (!loop.inBody[s]) {
                    exits = true;
                    hasExitEdge = true;
                }
            for (std::size_t i = blocks[b].first; i <= blocks[b].last;
                 ++i) {
                const auto &inst = code[i];
                if (inst.op == isa::Opcode::HALT)
                    hasEscape = true;
                const UseDef ud = useDef(inst);
                if (ud.def >= 0)
                    defsInLoop |= slotBit(unsigned(ud.def));
                if (exits && i == blocks[b].last &&
                    inst.info().isBranch)
                    condRegs |= ud.useMask() & ~slotBit(0);
            }
        }

        const std::size_t at = blocks[loop.header].first;
        if (!hasExitEdge && !hasEscape) {
            diags.push_back(
                {Severity::Error, "termination", "infinite-loop", at,
                 "", "",
                 "loop headed at instruction " + std::to_string(at) +
                     " has no exit path, halt, or indirect jump"});
        } else if (hasExitEdge && !hasEscape && !loop.bounded() &&
                   condRegs != 0 && (condRegs & defsInLoop) == 0) {
            std::string regs;
            for (unsigned slot = 0; slot < numRegSlots; ++slot)
                if (condRegs & slotBit(slot))
                    regs += (regs.empty() ? "" : ", ") + slotName(slot);
            diags.push_back(
                {Severity::Warning, "termination",
                 "likely-infinite-loop", at, "", "",
                 "no exit-condition register (" + regs +
                     ") is written inside the loop; the exit "
                     "decision can never change"});
        }
    }
}

} // namespace analysis
} // namespace paradox
