/**
 * @file
 * Loop-termination heuristics.
 *
 * Back edges are found with a DFS over the reachable CFG; each back
 * edge's natural loop is recovered and classified:
 *
 *  - no exit edge, no halt, no indirect jump in the body: the loop
 *    provably never terminates (error);
 *  - exits exist, but every exit is a conditional branch none of
 *    whose condition registers is ever written inside the loop: the
 *    exit condition is loop-invariant, so the trip decision never
 *    changes (likely-infinite warning).
 *
 * These are heuristics, not proofs of termination -- a loop that
 * passes both checks can still diverge -- but they catch the classic
 * hand-assembly mistakes (forgotten induction update, branch on the
 * wrong register) cheaply and with no false alarms on the suite.
 */

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "analysis/passes.hh"
#include "analysis/regmodel.hh"

namespace paradox
{
namespace analysis
{

namespace
{

/** DFS back-edge detection: returns (from, to) block-id pairs. */
std::vector<std::pair<std::size_t, std::size_t>>
findBackEdges(const Cfg &cfg, const std::vector<bool> &reachable)
{
    enum class Mark : std::uint8_t { White, Grey, Black };
    const auto &blocks = cfg.blocks();
    std::vector<Mark> mark(blocks.size(), Mark::White);
    std::vector<std::pair<std::size_t, std::size_t>> backEdges;

    // Iterative DFS with an explicit (block, next-successor) stack.
    std::vector<std::pair<std::size_t, std::size_t>> stack;
    auto visit = [&](std::size_t root) {
        if (mark[root] != Mark::White)
            return;
        mark[root] = Mark::Grey;
        stack.push_back({root, 0});
        while (!stack.empty()) {
            auto &[b, next] = stack.back();
            if (next < blocks[b].succs.size()) {
                std::size_t s = blocks[b].succs[next++];
                if (mark[s] == Mark::Grey)
                    backEdges.push_back({b, s});
                else if (mark[s] == Mark::White) {
                    mark[s] = Mark::Grey;
                    stack.push_back({s, 0});
                }
            } else {
                mark[b] = Mark::Black;
                stack.pop_back();
            }
        }
    };

    for (std::size_t b = 0; b < blocks.size(); ++b)
        if (reachable[b])
            visit(b);
    return backEdges;
}

/** Natural loop of back edge @p tail -> @p header. */
std::set<std::size_t>
naturalLoop(const Cfg &cfg, const std::vector<bool> &reachable,
            std::size_t tail, std::size_t header)
{
    std::set<std::size_t> body = {header, tail};
    std::vector<std::size_t> work;
    if (tail != header)
        work.push_back(tail);
    while (!work.empty()) {
        std::size_t b = work.back();
        work.pop_back();
        for (std::size_t p : cfg.blocks()[b].preds)
            if (reachable[p] && body.insert(p).second)
                work.push_back(p);
    }
    return body;
}

} // namespace

void
checkTermination(const Context &ctx, std::vector<Diagnostic> &diags)
{
    const auto &blocks = ctx.cfg.blocks();
    const auto &code = ctx.prog.code();

    const auto backEdges = findBackEdges(ctx.cfg, ctx.reachable);

    std::set<std::size_t> reportedHeaders;
    for (const auto &[tail, header] : backEdges) {
        if (!reportedHeaders.insert(header).second)
            continue;  // one report per loop header
        const auto body =
            naturalLoop(ctx.cfg, ctx.reachable, tail, header);

        bool hasEscape = false;       // halt or indirect jump inside
        bool hasExitEdge = false;
        std::uint64_t condRegs = 0;   // exit-branch condition slots
        std::uint64_t defsInLoop = 0;

        for (std::size_t b : body) {
            if (blocks[b].indirect)
                hasEscape = true;
            bool exits = false;
            for (std::size_t s : blocks[b].succs)
                if (!body.count(s)) {
                    exits = true;
                    hasExitEdge = true;
                }
            for (std::size_t i = blocks[b].first; i <= blocks[b].last;
                 ++i) {
                const auto &inst = code[i];
                if (inst.op == isa::Opcode::HALT)
                    hasEscape = true;
                const UseDef ud = useDef(inst);
                if (ud.def >= 0)
                    defsInLoop |= slotBit(unsigned(ud.def));
                if (exits && i == blocks[b].last &&
                    inst.info().isBranch)
                    condRegs |= ud.useMask() & ~slotBit(0);
            }
        }

        const std::size_t at = blocks[header].first;
        if (!hasExitEdge && !hasEscape) {
            diags.push_back(
                {Severity::Error, "termination", "infinite-loop", at,
                 "", "",
                 "loop headed at instruction " + std::to_string(at) +
                     " has no exit path, halt, or indirect jump"});
        } else if (hasExitEdge && !hasEscape && condRegs != 0 &&
                   (condRegs & defsInLoop) == 0) {
            std::string regs;
            for (unsigned slot = 0; slot < numRegSlots; ++slot)
                if (condRegs & slotBit(slot))
                    regs += (regs.empty() ? "" : ", ") + slotName(slot);
            diags.push_back(
                {Severity::Warning, "termination",
                 "likely-infinite-loop", at, "", "",
                 "no exit-condition register (" + regs +
                     ") is written inside the loop; the exit "
                     "decision can never change"});
        }
    }
}

} // namespace analysis
} // namespace paradox
