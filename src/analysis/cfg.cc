#include "analysis/cfg.hh"

#include <algorithm>
#include <set>

namespace paradox
{
namespace analysis
{

namespace
{

/**
 * Decode the target instruction index of a resolved branch/jal.
 * Returns false when the byte target is outside the image or not
 * instruction-aligned.
 */
bool
decodeTarget(const isa::Instruction &inst, std::size_t codeSize,
             std::size_t &target)
{
    if (inst.imm < 0)
        return false;
    const auto byte = static_cast<std::uint64_t>(inst.imm);
    if (byte % isa::instBytes != 0)
        return false;
    target = byte / isa::instBytes;
    return target < codeSize;
}

bool
isControlTransfer(const isa::Instruction &inst)
{
    const auto &ii = inst.info();
    return ii.isBranch || ii.isJump || inst.op == isa::Opcode::HALT;
}

} // namespace

Cfg
Cfg::build(const isa::Program &prog, std::vector<Diagnostic> *diags)
{
    Cfg cfg;
    const auto &code = prog.code();
    const std::size_t n = code.size();
    if (n == 0)
        return cfg;

    auto report = [&](Severity sev, const std::string &dcode,
                      std::size_t idx, const std::string &msg) {
        if (diags)
            diags->push_back({sev, "cfg", dcode, idx, "", "", msg});
    };

    // Pass 1: find leaders.
    std::set<std::size_t> leaders;
    std::set<std::size_t> returnPoints;
    leaders.insert(0);
    for (const auto &[name, pos] : prog.labels())
        if (pos < n)
            leaders.insert(pos);
    for (std::size_t i = 0; i < n; ++i) {
        const auto &inst = code[i];
        const auto &ii = inst.info();
        if (ii.isBranch || inst.op == isa::Opcode::JAL) {
            std::size_t target;
            if (decodeTarget(inst, n, target))
                leaders.insert(target);
        }
        if (isControlTransfer(inst) && i + 1 < n)
            leaders.insert(i + 1);
        if (ii.isJump && inst.rd != 0 && i + 1 < n) {
            // Return point of a linking call: a reachability root.
            leaders.insert(i + 1);
            returnPoints.insert(i + 1);
        }
    }

    // Pass 2: materialise blocks.
    std::vector<std::size_t> starts(leaders.begin(), leaders.end());
    cfg.blockOf_.assign(n, 0);
    for (std::size_t b = 0; b < starts.size(); ++b) {
        BasicBlock block;
        block.first = starts[b];
        block.last = (b + 1 < starts.size() ? starts[b + 1] : n) - 1;
        block.callReturnPoint = returnPoints.count(block.first) > 0;
        for (std::size_t i = block.first; i <= block.last; ++i)
            cfg.blockOf_[i] = b;
        cfg.blocks_.push_back(std::move(block));
    }

    // Pass 3: recover edges.
    for (std::size_t b = 0; b < cfg.blocks_.size(); ++b) {
        BasicBlock &block = cfg.blocks_[b];
        const auto &inst = code[block.last];
        const auto &ii = inst.info();

        auto addEdge = [&](std::size_t target) {
            block.succs.push_back(cfg.blockOf_[target]);
        };
        auto addTargetEdge = [&]() {
            std::size_t target;
            if (decodeTarget(inst, n, target)) {
                addEdge(target);
            } else {
                report(Severity::Error, "invalid-branch-target",
                       block.last,
                       "control transfer to byte " +
                           std::to_string(inst.imm) +
                           ", outside the code image");
            }
        };
        auto addFallthrough = [&]() {
            if (block.last + 1 < n) {
                addEdge(block.last + 1);
            } else {
                block.fallsOffEnd = true;
                report(Severity::Error, "fall-off-end", block.last,
                       "execution can fall through past the last "
                       "instruction (no halt on this path)");
            }
        };

        if (ii.isBranch) {
            addTargetEdge();
            addFallthrough();
        } else if (inst.op == isa::Opcode::JAL) {
            addTargetEdge();
        } else if (inst.op == isa::Opcode::JALR) {
            block.indirect = true;  // targets unknown statically
        } else if (inst.op != isa::Opcode::HALT) {
            addFallthrough();
        }

        // Dedup the two-way branch-to-next case.
        std::sort(block.succs.begin(), block.succs.end());
        block.succs.erase(
            std::unique(block.succs.begin(), block.succs.end()),
            block.succs.end());
    }

    for (std::size_t b = 0; b < cfg.blocks_.size(); ++b)
        for (std::size_t s : cfg.blocks_[b].succs)
            cfg.blocks_[s].preds.push_back(b);

    return cfg;
}

std::vector<bool>
Cfg::reachableBlocks() const
{
    std::vector<bool> seen(blocks_.size(), false);
    std::vector<std::size_t> stack;
    auto push = [&](std::size_t b) {
        if (!seen[b]) {
            seen[b] = true;
            stack.push_back(b);
        }
    };
    if (!blocks_.empty())
        push(entry());
    for (std::size_t b = 0; b < blocks_.size(); ++b)
        if (blocks_[b].callReturnPoint)
            push(b);
    while (!stack.empty()) {
        std::size_t b = stack.back();
        stack.pop_back();
        for (std::size_t s : blocks_[b].succs)
            push(s);
    }
    return seen;
}

} // namespace analysis
} // namespace paradox
