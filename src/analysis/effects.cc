#include "analysis/effects.hh"

namespace paradox
{
namespace analysis
{

EffectSummary
EffectSummary::build(const isa::DecodedProgram &dp, const EffectParams &params)
{
    EffectSummary es;
    es.params_ = params;
    es.decodedUops_ = dp.size();
    es.decodedHash_ = dp.contentHash();

    const std::size_t n = dp.size();
    es.uop_.resize(n, 0);
    es.tail_.resize(n, 0);

    // Tail bounds compose backwards: uop idx's run continues into the
    // run tail at idx+1 exactly when runLen > 1.
    for (std::size_t i = n; i-- > 0;) {
        const isa::MicroOp &u = dp.at(i);
        const std::uint64_t self = uopLogBound(u, params);
        es.uop_[i] = static_cast<std::uint32_t>(self);
        es.tail_[i] = self + (u.runLen > 1 ? es.tail_[i + 1] : 0);
        if (self > es.maxUopBytes_)
            es.maxUopBytes_ = self;
        if (u.isLoad)
            ++es.staticLoads_;
        else if (u.isStore)
            ++es.staticStores_;
    }

    // A run starts at index 0 and after every run end.
    std::size_t start = 0;
    while (start < n) {
        RunSummary rs;
        rs.start = static_cast<std::uint32_t>(start);
        rs.len = dp.at(start).runLen;
        if (rs.len == 0)
            rs.len = 1; // defensive: decode guarantees runLen >= 1
        rs.logBoundBytes = es.tail_[start];
        for (std::size_t i = start; i < start + rs.len && i < n; ++i) {
            const isa::MicroOp &u = dp.at(i);
            if (u.isLoad)
                ++rs.loads;
            else if (u.isStore)
                ++rs.stores;
        }
        if (rs.logBoundBytes > es.maxRunBytes_)
            es.maxRunBytes_ = rs.logBoundBytes;
        es.runs_.push_back(rs);
        start += rs.len;
    }
    return es;
}

} // namespace analysis
} // namespace paradox
