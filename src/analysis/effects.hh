/**
 * @file
 * Per-run memory effect summaries over a decoded micro-op image.
 *
 * A "run" is a superblock: the maximal straight-line micro-op
 * sequence from some index through the next control transfer or HALT
 * (isa::MicroOp::runLen).  For every run the summary records the
 * exact number of load and store micro-ops and a *sound* worst-case
 * bound on the log bytes executing the run once can append to the
 * open checkpoint segment; per-uop tail bounds (bytes from a given
 * index through the end of its run) let a consumer positioned
 * mid-run -- e.g. System::stepSuperblock resuming after a capacity
 * cut -- admit the rest of the run against the open segment's
 * headroom in one check.
 *
 * Log byte sizes are inputs (EffectParams), not core/ constants: the
 * analysis library deliberately links only paradox_isa, so the
 * shared core-side helper (core/logbytes.hh) mirrors the same
 * arithmetic and tests pin the two together.
 */

#ifndef PARADOX_ANALYSIS_EFFECTS_HH
#define PARADOX_ANALYSIS_EFFECTS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "isa/decoded.hh"

namespace paradox
{
namespace analysis
{

/** Log-geometry inputs (mirrors core::LogParams + rollback mode). */
struct EffectParams
{
    unsigned loadEntryBytes = 16;
    unsigned storeEntryBytes = 16;
    unsigned storeOldValueBytes = 8;
    unsigned lineCopyBytes = 80;
    unsigned lineBytes = 64;              //!< rollback copy granule
    bool lineGranularityRollback = true;  //!< ParaDox line copies
    bool rollbackSupported = true;        //!< false = DetectionOnly
};

/**
 * Most cache lines a @p memSize -byte access can span: misaligned
 * accesses straddle one boundary, so two lines for any multi-byte
 * access narrower than a line, one for a single byte.
 */
inline unsigned
worstLinesSpanned(unsigned memSize, unsigned lineBytes)
{
    if (memSize <= 1)
        return memSize;
    return (memSize - 2) / lineBytes + 2;
}

/**
 * Sound worst-case log bytes one store of @p memSize bytes appends:
 * the entry itself plus, under line-granularity rollback, one line
 * copy per spanned line (assuming no line was copied earlier in the
 * checkpoint), or the old-value word under word-granularity undo.
 */
inline std::size_t
storeLogBound(unsigned memSize, const EffectParams &p)
{
    std::size_t bytes = p.storeEntryBytes;
    if (p.lineGranularityRollback)
        bytes += std::size_t(worstLinesSpanned(memSize, p.lineBytes)) *
                 p.lineCopyBytes;
    else if (p.rollbackSupported)
        bytes += p.storeOldValueBytes;
    return bytes;
}

/** Sound worst-case log bytes one micro-op appends (0 if not memory). */
inline std::size_t
uopLogBound(const isa::MicroOp &u, const EffectParams &p)
{
    if (u.isLoad)
        return p.loadEntryBytes;
    if (u.isStore)
        return storeLogBound(u.memSize, p);
    return 0;
}

/** Static memory effects of one superblock run. */
struct RunSummary
{
    std::uint32_t start = 0;  //!< first micro-op index
    std::uint32_t len = 0;    //!< micro-ops in the run
    std::uint32_t loads = 0;  //!< exact load micro-op count
    std::uint32_t stores = 0; //!< exact store micro-op count
    std::uint64_t logBoundBytes = 0; //!< sound worst-case log bytes
};

/**
 * The per-run effect summaries of one decoded image, keyed to its
 * content hash so consumers (trace_report --memdep, the superblock
 * gate) can reject a stale model.
 */
class EffectSummary
{
  public:
    static EffectSummary build(const isa::DecodedProgram &dp,
                               const EffectParams &params);

    /** Runs in start order; every run start has exactly one entry. */
    const std::vector<RunSummary> &runs() const { return runs_; }

    /**
     * Sound worst-case log bytes from micro-op @p idx (inclusive)
     * through the end of its straight-line run.  For a run start
     * this equals the run's logBoundBytes.
     */
    std::uint64_t
    tailBound(std::size_t idx) const
    {
        return idx < tail_.size() ? tail_[idx] : 0;
    }

    /** Worst-case bytes of the single micro-op @p idx. */
    std::uint64_t
    uopBound(std::size_t idx) const
    {
        return idx < uop_.size() ? uop_[idx] : 0;
    }

    std::uint64_t maxRunBytes() const { return maxRunBytes_; }
    std::uint64_t maxUopBytes() const { return maxUopBytes_; }
    std::uint64_t staticLoads() const { return staticLoads_; }
    std::uint64_t staticStores() const { return staticStores_; }

    /** @{ Identity of the decoded image the summary was built over. */
    std::uint64_t decodedUops() const { return decodedUops_; }
    std::uint64_t decodedHash() const { return decodedHash_; }
    /** @} */

    const EffectParams &params() const { return params_; }

  private:
    std::vector<RunSummary> runs_;
    std::vector<std::uint64_t> tail_;
    std::vector<std::uint32_t> uop_;
    std::uint64_t maxRunBytes_ = 0;
    std::uint64_t maxUopBytes_ = 0;
    std::uint64_t staticLoads_ = 0;
    std::uint64_t staticStores_ = 0;
    std::uint64_t decodedUops_ = 0;
    std::uint64_t decodedHash_ = 0;
    EffectParams params_;
};

} // namespace analysis
} // namespace paradox

#endif // PARADOX_ANALYSIS_EFFECTS_HH
