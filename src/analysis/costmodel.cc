#include "analysis/costmodel.hh"

#include <algorithm>
#include <cstdio>
#include <queue>

#include "analysis/ai.hh"
#include "analysis/diagnostic.hh"
#include "analysis/passes.hh"
#include "isa/decoded.hh"

namespace paradox
{
namespace analysis
{

namespace
{

using I128 = __int128;

constexpr std::uint64_t kCycleCap = std::uint64_t(1) << 62;

std::uint64_t
satAdd(std::uint64_t a, std::uint64_t b)
{
    return a > kCycleCap - std::min(b, kCycleCap) ? kCycleCap : a + b;
}

std::uint64_t
satMul(std::uint64_t a, std::uint64_t b)
{
    const I128 p = I128(a) * b;
    return p > I128(kCycleCap) ? kCycleCap : std::uint64_t(p);
}

} // namespace

unsigned
CostModel::classLatency(const CostParams &p, isa::InstClass cls)
{
    using isa::InstClass;
    switch (cls) {
    case InstClass::IntAlu: return p.intAluLat;
    case InstClass::IntMult: return p.intMultLat;
    case InstClass::IntDiv: return p.intDivLat;
    case InstClass::FpAlu: return p.fpAluLat;
    case InstClass::FpMult: return p.fpMultLat;
    case InstClass::FpDiv: return p.fpDivLat;
    case InstClass::Load:
    case InstClass::Store: return p.logAccessLat;
    case InstClass::Branch:
    case InstClass::Jump: return p.intAluLat + p.branchExtraLat;
    default: return p.intAluLat;
    }
}

WorkloadCost
CostModel::compute(const isa::Program &prog, const CostParams &params)
{
    WorkloadCost c;
    c.program = prog.name();

    const Cfg cfg = Cfg::build(prog);
    const auto &blocks = cfg.blocks();
    const std::size_t nb = blocks.size();
    if (nb == 0)
        return c;
    const auto reachable = cfg.reachableBlocks();
    const auto ai = IntervalAnalysis::run(prog, cfg, reachable);

    c.converged = ai.converged();
    c.sweeps = ai.sweeps();
    c.loops = ai.loops().size();
    for (const auto &l : ai.loops())
        if (l.bounded())
            ++c.boundedLoops;

    for (const auto &r :
         mergeRegions(footprintRegions(prog, params.extraRegions)))
        c.footprintBytes = satAdd(c.footprintBytes, r.size);

    // An execution-count bound per block needs a reducible CFG with
    // every loop bounded and no statically-invisible control flow.
    c.bounded = ai.reducible() && c.converged;
    for (std::size_t b = 0; b < nb && c.bounded; ++b) {
        if (!reachable[b])
            continue;
        if (blocks[b].indirect || blocks[b].callReturnPoint ||
            blocks[b].fallsOffEnd ||
            ai.tripProduct(b) == unboundedTrips)
            c.bounded = false;
    }

    // Weighted instruction mix and the total-instruction bound.  The
    // per-instruction classes come from the decoded micro-op image --
    // the same pre-classified representation the production engine
    // executes -- so the cost bounds describe exactly what superblock
    // execution retires (the "decoded" lint pass cross-checks the
    // image against the instruction table and the CFG).
    const auto &code = prog.code();
    const auto dp = isa::DecodedProgram::get(prog);
    c.decodedUops = dp->size();
    c.decodedHash = dp->contentHash();
    for (std::size_t b = 0; b < nb; ++b) {
        if (!reachable[b])
            continue;
        const std::uint64_t weight =
            c.bounded ? ai.tripProduct(b) : 1;
        for (std::size_t i = blocks[b].first; i <= blocks[b].last;
             ++i)
            c.mix[std::size_t(dp->at(i).cls)] =
                satAdd(c.mix[std::size_t(dp->at(i).cls)], weight);
        if (c.bounded)
            c.maxDynInsts = satAdd(
                c.maxDynInsts, satMul(blocks[b].size(), weight));
    }

    std::uint64_t weightedCycles = 0;
    for (std::size_t k = 0; k < WorkloadCost::numClasses; ++k) {
        c.mixTotal = satAdd(c.mixTotal, c.mix[k]);
        weightedCycles = satAdd(
            weightedCycles,
            satMul(c.mix[k],
                   classLatency(params, isa::InstClass(k))));
    }
    if (c.mixTotal)
        c.cyclesPerInst = double(weightedCycles) / double(c.mixTotal);
    c.segmentLength = params.segmentLength;
    c.checkerCyclesPerSegment = std::uint64_t(
        double(params.segmentLength) * c.cyclesPerInst + 0.5);
    if (c.bounded) {
        c.checkerCyclesTotal = weightedCycles;
        c.predictedSegments =
            params.segmentLength
                ? (c.maxDynInsts + params.segmentLength - 1) /
                      params.segmentLength
                : 0;
    }

    // Shortest committed-instruction path from the entry to a HALT
    // (or to an indirect jump / image end, past which no progress can
    // be claimed): Dijkstra over blocks, cost = instructions retired.
    {
        constexpr std::uint64_t inf = ~std::uint64_t(0);
        std::vector<std::uint64_t> dist(nb, inf);
        using QE = std::pair<std::uint64_t, std::size_t>;
        std::priority_queue<QE, std::vector<QE>, std::greater<QE>> q;
        dist[cfg.entry()] = 0;
        q.push({0, cfg.entry()});
        std::uint64_t best = inf;
        while (!q.empty()) {
            const auto [d, b] = q.top();
            q.pop();
            if (d != dist[b])
                continue;
            const bool terminal =
                code[blocks[b].last].op == isa::Opcode::HALT ||
                blocks[b].indirect || blocks[b].fallsOffEnd;
            if (terminal)
                best = std::min(best, d + blocks[b].size());
            for (std::size_t s : blocks[b].succs) {
                const std::uint64_t nd = d + blocks[b].size();
                if (nd < dist[s]) {
                    dist[s] = nd;
                    q.push({nd, s});
                }
            }
        }
        c.minDynInsts = best == inf ? 0 : best;
    }

    return c;
}

std::string
costJsonHeader()
{
    // Compact form (no space after ':' or ','): obs::jsonField only
    // recognizes keys immediately preceded by '{' or ','.
    return "{\"record\":\"header\",\"schema\":\"paradox-cost/1\"}";
}

std::string
costJsonLine(const WorkloadCost &c, unsigned scale)
{
    char cpi[32];
    std::snprintf(cpi, sizeof cpi, "%.4f", c.cyclesPerInst);
    std::string s = "{\"record\":\"cost\",\"program\":\"" +
                    jsonEscape(c.program) + "\"";
    auto num = [&](const char *key, std::uint64_t v) {
        s += ",\"" + std::string(key) +
             "\":" + std::to_string(v);
    };
    num("scale", scale);
    num("converged", c.converged ? 1 : 0);
    num("sweeps", c.sweeps);
    num("loops", c.loops);
    num("bounded_loops", c.boundedLoops);
    num("bounded", c.bounded ? 1 : 0);
    num("min_dyn_insts", c.minDynInsts);
    num("max_dyn_insts", c.maxDynInsts);
    num("footprint_bytes", c.footprintBytes);
    num("decoded_uops", c.decodedUops);
    num("decoded_hash", c.decodedHash);
    for (std::size_t k = 0; k < WorkloadCost::numClasses; ++k) {
        // "IntAlu" -> "mix_int_alu"
        std::string key = "mix_";
        for (const char *p = isa::className(isa::InstClass(k)); *p;
             ++p) {
            if (*p >= 'A' && *p <= 'Z') {
                if (key.back() != '_')
                    key += '_';
                key += char(*p - 'A' + 'a');
            } else {
                key += *p;
            }
        }
        num(key.c_str(), c.mix[k]);
    }
    num("mix_total", c.mixTotal);
    s += ",\"cycles_per_inst\":" + std::string(cpi);
    num("segment_length", c.segmentLength);
    num("checker_cycles_per_segment", c.checkerCyclesPerSegment);
    num("checker_cycles_total", c.checkerCyclesTotal);
    num("predicted_segments", c.predictedSegments);
    s += "}";
    return s;
}

} // namespace analysis
} // namespace paradox
