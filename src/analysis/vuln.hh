/**
 * @file
 * Static fault-vulnerability analysis: bit-granular ACE masks.
 *
 * A backward liveness fixpoint over the CFG computes, for every
 * instruction and every one of the 64 register slots (32 integer +
 * 32 floating point), the mask of bits whose value immediately after
 * that instruction commits can still reach *architectural output*.
 * Architectural output is what the ParaDox checker compares besides
 * the final register file: store values and addresses in the segment
 * log, load addresses, control flow (which governs the entry count
 * and the watchdog), and the memory image the campaign fingerprints.
 *
 * A (instruction, slot, bit) site whose bit is NOT in the mask is
 * *statically dead* (un-ACE): flipping it after the instruction
 * commits cannot change the program's memory image or result word,
 * and cannot be detected by the checker as anything other than a
 * FinalStateMismatch (the register files are compared at segment end
 * whether or not the difference matters).  That is exactly the class
 * of fault ParaDox pays a rollback for without needing to: the
 * masked-fault rollback fraction reported by fault_campaign --vuln.
 *
 * Soundness contract (the dynamic oracle in core::System checks it):
 * if every fault injected into a segment hits a statically-dead
 * site, the replay may detect FinalStateMismatch but never
 * StoreMismatch, LoadEntryMismatch, InvalidBehavior,
 * EntryCountMismatch, or Timeout, and the architectural output is
 * byte-identical to the fault-free run.  The transfer functions are
 * therefore *value independent*: branch operands, load/store base
 * registers, and store values (to their access width) are always
 * live, so control flow and the log stream cannot be steered by a
 * "dead" corruption.  Interval facts (PR 5) are only used to prune
 * bits that some *live* (hence uncorrupted) operand provably masks.
 */

#ifndef PARADOX_ANALYSIS_VULN_HH
#define PARADOX_ANALYSIS_VULN_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/regmodel.hh"
#include "faults/chip_model.hh"
#include "isa/instruction.hh"
#include "isa/program.hh"

namespace paradox
{
namespace analysis
{

class IntervalAnalysis;

/** Static verdict for one fault site. */
enum class SiteVerdict : std::uint8_t
{
    Unknown = 0,  //!< analysis has no claim (treated as live)
    Live = 1,     //!< may reach architectural output
    Dead = 2,     //!< provably masked: at worst a FinalStateMismatch
};

const char *toString(SiteVerdict v);

/** Tuning knobs for VulnAnalysis::run(). */
struct VulnOptions
{
    /** Extra footprint regions (e.g. the ABI result cell). */
    std::vector<isa::MemRegion> extraRegions;

    /**
     * Converged interval results used to prune provably-masked bits
     * (AND/OR with a bounded operand, infeasible CFG edges) and to
     * resolve load/store addresses for the byte-liveness pass.  May
     * be null: the analysis stays sound, just less precise.
     */
    const IntervalAnalysis *intervals = nullptr;

    /** Skip the byte-granular footprint pass above this size. */
    std::size_t footprintByteCap = std::size_t(1) << 16;
};

/** Bit-granular register + byte-granular memory ACE analysis. */
class VulnAnalysis
{
  public:
    /** One live mask per register slot. */
    using SlotMasks = std::array<std::uint64_t, numRegSlots>;

    /** Aggregate statistics for reports and the JSONL model. */
    struct Stats
    {
        std::uint64_t regBitsTotal = 0;  //!< reachable insts * 64 * 64
        std::uint64_t regBitsLive = 0;   //!< thereof live-out bits
        double liveFraction = 0.0;       //!< regBitsLive/regBitsTotal
        /** Per basic block: live fraction over its instructions. */
        std::vector<double> blockLiveFraction;
        std::uint64_t prunedEdges = 0;   //!< interval-infeasible edges
        bool intervalsUsed = false;

        bool footprintAnalyzed = false;  //!< false if over the cap
        std::uint64_t footprintBytes = 0;
        std::uint64_t footprintLiveAtEntry = 0;
    };

    /** Run the fixpoint; @p reachable is Cfg::reachableBlocks(). */
    static VulnAnalysis run(const isa::Program &prog, const Cfg &cfg,
                            const std::vector<bool> &reachable,
                            const VulnOptions &opts = {});

    /**
     * Convenience for runtime consumers (exp::runOne, tools): build
     * the CFG and the interval fixpoint internally and run with them.
     * Shared so one model serves every checker of a core::System.
     */
    static std::shared_ptr<const VulnAnalysis>
    build(const isa::Program &prog,
          const std::vector<isa::MemRegion> &extraRegions = {});

    /**
     * Mask of live bits of @p slot immediately after instruction
     * @p instIdx commits; 0 for unreachable instructions (they never
     * execute while the contract holds).
     */
    std::uint64_t liveOutMask(std::size_t instIdx, unsigned slot) const;

    /** Verdict for flipping @p bit of @p slot after @p instIdx. */
    SiteVerdict regBitVerdict(std::size_t instIdx, unsigned slot,
                              unsigned bit) const;

    /** Union of liveOutMask(i, slot) over all reachable i. */
    std::uint64_t everLiveMask(unsigned slot) const
    { return everLive_[slot]; }

    /**
     * Union of destination live-out masks over reachable instructions
     * of @p cls -- the ACE mask of that functional unit's result bus.
     */
    std::uint64_t classDestLiveMask(isa::InstClass cls) const
    { return classDestLive_[std::size_t(cls)]; }

    /**
     * Verdict for one physical weak cell of a faults::ChipModel,
     * mirroring how FaultInjector applies its hits (LogRow cells stay
     * Live: store rows always matter and load rows depend on the
     * consuming instruction, judged per hit at runtime).
     */
    SiteVerdict cellVerdict(const faults::WeakCell &cell) const;

    /**
     * Verdict for flipping @p bit of the value carried by a *load*
     * log entry consumed by @p inst at @p instIdx.  Bits at or above
     * the access width are re-extended away by the executor; below
     * it the flip lands in the destination register (store entries
     * are always live -- any value flip is a StoreMismatch).
     */
    SiteVerdict loadEntryVerdict(const isa::Instruction &inst,
                                 std::size_t instIdx,
                                 unsigned bit) const;

    const Stats &stats() const { return stats_; }

    /** FNV-1a over the instruction stream; keys model staleness. */
    std::uint64_t programHash() const { return hash_; }

    std::size_t instructionCount() const { return liveOut_.size(); }

  private:
    std::vector<SlotMasks> liveOut_;  //!< per instruction
    SlotMasks everLive_{};
    std::array<std::uint64_t, std::size_t(isa::InstClass::NumClasses)>
        classDestLive_{};
    Stats stats_;
    std::uint64_t hash_ = 0;
};

/** @{ paradox-vuln/1 JSONL rendering (consumed by fault_campaign). */
std::string vulnJsonHeader();
std::string vulnJsonLine(const VulnAnalysis &va,
                         const std::string &program, unsigned scale);
/** Per-cell ACE verdicts for one chip's weak-cell map. */
std::string vulnChipJsonLine(const VulnAnalysis &va,
                             const faults::ChipModel &chip,
                             const std::string &program);
/** @} */

} // namespace analysis
} // namespace paradox

#endif // PARADOX_ANALYSIS_VULN_HH
