/**
 * @file
 * SPEC CPU2006 403.gcc proxy: an IR constant-propagation pass.
 * A DAG of expression nodes is repeatedly evaluated with per-opcode
 * dispatch through a compare chain -- gcc's irregular, branch-heavy
 * integer behaviour with data-dependent control flow and scattered
 * node accesses.
 */

#include "workloads/common.hh"

namespace paradox
{
namespace workloads
{

namespace
{

struct Node
{
    std::uint64_t op;   // 0..7
    std::uint64_t lhs;  // node index
    std::uint64_t rhs;  // node index
    std::uint64_t value;
};

std::vector<Node>
makeGraph(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Node> nodes(n);
    for (std::size_t i = 0; i < n; ++i) {
        nodes[i].op = rng.nextBounded(8);
        nodes[i].lhs = i == 0 ? 0 : rng.nextBounded(i);
        nodes[i].rhs = i == 0 ? 0 : rng.nextBounded(i);
        nodes[i].value = rng.next() & 0xffff;
    }
    return nodes;
}

std::uint64_t
evalOp(std::uint64_t op, std::uint64_t a, std::uint64_t b,
       std::uint64_t old)
{
    switch (op) {
      case 0: return a + b;
      case 1: return a - b;
      case 2: return a ^ b;
      case 3: return a & b;
      case 4: return a | b;
      case 5: return (a << (b & 15)) + old;
      case 6: return a < b ? a : b;
      default: return a * 3 + b;
    }
}

std::uint64_t
reference(std::vector<Node> nodes, unsigned passes)
{
    std::uint64_t acc = 0;
    for (unsigned p = 0; p < passes; ++p) {
        for (std::size_t i = 1; i < nodes.size(); ++i) {
            Node &node = nodes[i];
            std::uint64_t a = nodes[node.lhs].value;
            std::uint64_t b = nodes[node.rhs].value;
            node.value = evalOp(node.op, a, b, node.value);
            acc = mixInt(acc, node.value);
        }
    }
    return acc;
}

} // namespace

Workload
buildGcc(unsigned scale)
{
    const std::size_t n = 1024;
    const unsigned passes = 6 * scale;
    const auto nodes = makeGraph(n, 0x9cc);
    const Addr base = dataBase;  // node i at base + 32*i

    isa::ProgramBuilder b("gcc");
    for (std::size_t i = 0; i < n; ++i) {
        b.data64(base + 32 * i + 0, nodes[i].op);
        b.data64(base + 32 * i + 8, nodes[i].lhs);
        b.data64(base + 32 * i + 16, nodes[i].rhs);
        b.data64(base + 32 * i + 24, nodes[i].value);
    }

    b.ldi(x31, 0);
    b.ldi(x20, 1099511628211ULL);
    b.ldi(x21, base);
    b.ldi(x22, passes);

    b.label("pass");
    b.ldi(x2, 1);                       // node index i
    b.ldi(x3, n);
    b.label("node");
    // x4 = &node[i]
    b.slli(x4, x2, 5);
    b.add(x4, x4, x21);
    b.ld(x5, x4, 0);                    // op
    b.ld(x6, x4, 8);                    // lhs index
    b.ld(x7, x4, 16);                   // rhs index
    // a = node[lhs].value, b = node[rhs].value
    b.slli(x6, x6, 5);
    b.add(x6, x6, x21);
    b.ld(x8, x6, 24);
    b.slli(x7, x7, 5);
    b.add(x7, x7, x21);
    b.ld(x9, x7, 24);
    b.ld(x10, x4, 24);                  // old value

    // Dispatch on op through a compare chain.
    b.ldi(x11, 0);
    b.beq(x5, x11, "op_add");
    b.ldi(x11, 1);
    b.beq(x5, x11, "op_sub");
    b.ldi(x11, 2);
    b.beq(x5, x11, "op_xor");
    b.ldi(x11, 3);
    b.beq(x5, x11, "op_and");
    b.ldi(x11, 4);
    b.beq(x5, x11, "op_or");
    b.ldi(x11, 5);
    b.beq(x5, x11, "op_shl");
    b.ldi(x11, 6);
    b.beq(x5, x11, "op_min");
    // default: a * 3 + b
    b.slli(x12, x8, 1);
    b.add(x12, x12, x8);
    b.add(x12, x12, x9);
    b.j("write");
    b.label("op_add");
    b.add(x12, x8, x9);
    b.j("write");
    b.label("op_sub");
    b.sub(x12, x8, x9);
    b.j("write");
    b.label("op_xor");
    b.xor_(x12, x8, x9);
    b.j("write");
    b.label("op_and");
    b.and_(x12, x8, x9);
    b.j("write");
    b.label("op_or");
    b.or_(x12, x8, x9);
    b.j("write");
    b.label("op_shl");
    b.andi(x13, x9, 15);
    b.sll(x12, x8, x13);
    b.add(x12, x12, x10);
    b.j("write");
    b.label("op_min");
    b.bltu(x8, x9, "min_a");
    b.mv(x12, x9);
    b.j("write");
    b.label("min_a");
    b.mv(x12, x8);

    b.label("write");
    b.sd(x12, x4, 24);
    b.mul(x31, x31, x20);
    b.add(x31, x31, x12);

    b.addi(x2, x2, 1);
    b.bne(x2, x3, "node");
    b.addi(x22, x22, -1);
    b.bne(x22, x0, "pass");

    storeResultAndHalt(b, x31);

    Workload w;
    w.name = "gcc";
    w.description = "gcc proxy: IR constant propagation with opcode "
                    "dispatch";
    w.program = b.build();
    w.expectedResult = reference(nodes, passes);
    return w;
}

} // namespace workloads
} // namespace paradox
