/**
 * @file
 * The workload suite: MiBench bitcount, HPCC stream, and nineteen
 * SPEC CPU2006 proxy kernels.
 *
 * The paper evaluates on SPEC CPU2006 plus bitcount (compute-bound,
 * worst case for long checkpoints) and stream (memory-bound, best
 * case).  SPEC itself is not redistributable, so each benchmark is
 * represented by a proxy kernel matching its documented character:
 * integer vs floating point, compute- vs memory-bound, and -- for
 * gobmk, povray, h264ref, omnetpp and xalancbmk -- a hot code
 * footprint exceeding the checker cores' 8 KiB L0 I-cache (the
 * workloads figure 10 singles out for checker I-cache misses).
 *
 * Every workload carries a golden checksum computed by an independent
 * C++ reference implementation of the same algorithm; the PDX64
 * program must reproduce it exactly, which is how the test suite
 * pins functional correctness of the ISA, executor and system.
 */

#ifndef PARADOX_WORKLOADS_WORKLOAD_HH
#define PARADOX_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"
#include "sim/types.hh"

namespace paradox
{
namespace workloads
{

/** Address every workload stores its final checksum to. */
constexpr Addr resultAddr = 0x80000;

/** A ready-to-run workload. */
struct Workload
{
    std::string name;
    std::string description;
    isa::Program program;
    std::uint64_t expectedResult; //!< golden checksum (C++ reference)
    bool fpHeavy = false;
    bool memoryBound = false;
    bool largeCode = false;       //!< hot footprint > checker L0
};

/** All workload names (bitcount, stream, then SPEC in paper order). */
const std::vector<std::string> &allNames();

/** The nineteen SPEC proxies, in figure 10's left-to-right order. */
const std::vector<std::string> &specNames();

/**
 * Build @p name at @p scale (1 = benchmark size; tests use smaller).
 * Calls fatal() for unknown names.
 */
Workload build(const std::string &name, unsigned scale = 1);

} // namespace workloads
} // namespace paradox

#endif // PARADOX_WORKLOADS_WORKLOAD_HH
