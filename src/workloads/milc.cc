/**
 * @file
 * SPEC CPU2006 433.milc proxy: SU(3)-style complex 3x3 matrix times
 * 3-vector products, chained site to site -- the dense FP multiply/
 * add mix of lattice QCD.
 */

#include "workloads/common.hh"

namespace paradox
{
namespace workloads
{

namespace
{

constexpr std::size_t numMatrices = 256;

std::uint64_t
reference(const std::vector<double> &mats, std::uint64_t sites)
{
    // Vector v: 3 complex components (re, im).
    double v[6] = {1.0, 0.0, 0.5, -0.5, 0.25, 0.75};
    std::uint64_t acc = 0;
    for (std::uint64_t s = 0; s < sites; ++s) {
        const double *m = &mats[(s % numMatrices) * 18];
        double r[6];
        for (int i = 0; i < 3; ++i) {
            double re = 0.0, im = 0.0;
            for (int j = 0; j < 3; ++j) {
                double ar = m[(i * 3 + j) * 2];
                double ai = m[(i * 3 + j) * 2 + 1];
                double br = v[j * 2];
                double bi = v[j * 2 + 1];
                re = re + (ar * br - ai * bi);
                im = im + (ar * bi + ai * br);
            }
            r[i * 2] = re;
            r[i * 2 + 1] = im;
        }
        double norm = 0.0;
        for (int i = 0; i < 6; ++i)
            norm = norm + r[i] * r[i];
        norm = norm + 1.0;
        for (int i = 0; i < 6; ++i)
            v[i] = r[i] / norm;
        acc = mixDouble(acc, v[0]);
        acc = mixDouble(acc, v[5]);
    }
    return acc;
}

} // namespace

Workload
buildMilc(unsigned scale)
{
    const std::uint64_t sites = 1500 * std::uint64_t(scale);
    const auto mats = randomDoubles(numMatrices * 18, 0x317c);
    const Addr matBase = dataBase;
    const Addr vBase = dataBase + mats.size() * 8 + 64;

    isa::ProgramBuilder b("milc");
    emitDataF(b, matBase, mats);
    const double v0[6] = {1.0, 0.0, 0.5, -0.5, 0.25, 0.75};
    for (int i = 0; i < 6; ++i)
        b.dataF64(vBase + 8 * i, v0[i]);
    b.dataF64(vBase + 64, 1.0);

    b.ldi(x31, 0);
    b.ldi(x20, 1099511628211ULL);
    b.fmvDX(f0, x0);               // f0 = +0.0, the FP zero below
    b.ldi(x2, sites);
    b.ldi(x3, 0);                  // site counter s
    b.ldi(x4, vBase);
    b.ldi(x21, numMatrices - 1);   // mask (power of two count)
    // v in f1..f6.
    for (int i = 0; i < 6; ++i)
        b.fld(isa::FReg(1 + i), x4, 8 * i);
    b.fld(f15, x4, 64);            // 1.0

    b.label("site");
    // m = matBase + (s & mask) * 144.
    b.and_(x5, x3, x21);
    b.ldi(x6, 144);
    b.mul(x5, x5, x6);
    b.ldi(x6, matBase);
    b.add(x5, x5, x6);

    // r_i = sum_j M_ij * v_j (complex), r in f20..f25.
    for (int i = 0; i < 3; ++i) {
        isa::FReg re{20u + unsigned(i) * 2};
        isa::FReg im{21u + unsigned(i) * 2};
        b.fsub(re, f0, f0);        // 0.0
        b.fsub(im, f0, f0);
        for (int j = 0; j < 3; ++j) {
            const long off = (long(i) * 3 + j) * 16;
            b.fld(f7, x5, off);        // ar
            b.fld(f8, x5, off + 8);    // ai
            isa::FReg br{1u + unsigned(j) * 2};
            isa::FReg bi{2u + unsigned(j) * 2};
            b.fmul(f9, f7, br);        // ar*br
            b.fmul(f10, f8, bi);       // ai*bi
            b.fsub(f9, f9, f10);
            b.fadd(re, re, f9);
            b.fmul(f9, f7, bi);        // ar*bi
            b.fmul(f10, f8, br);       // ai*br
            b.fadd(f9, f9, f10);
            b.fadd(im, im, f9);
        }
    }
    // norm = 1 + sum r_i^2; v = r / norm.
    b.fsub(f11, f0, f0);
    for (int i = 0; i < 6; ++i) {
        isa::FReg r{20u + unsigned(i)};
        b.fmul(f9, r, r);
        b.fadd(f11, f11, f9);
    }
    b.fadd(f11, f11, f15);
    for (int i = 0; i < 6; ++i) {
        isa::FReg r{20u + unsigned(i)};
        isa::FReg v{1u + unsigned(i)};
        b.fdiv(v, r, f11);
    }
    b.fmvXD(x7, f1);
    b.mul(x31, x31, x20);
    b.add(x31, x31, x7);
    b.fmvXD(x7, f6);
    b.mul(x31, x31, x20);
    b.add(x31, x31, x7);

    b.addi(x3, x3, 1);
    b.bne(x3, x2, "site");

    storeResultAndHalt(b, x31);

    Workload w;
    w.name = "milc";
    w.description = "milc proxy: chained complex 3x3 matrix-vector "
                    "products";
    w.program = b.build();
    w.expectedResult = reference(mats, sites);
    w.fpHeavy = true;
    return w;
}

} // namespace workloads
} // namespace paradox
