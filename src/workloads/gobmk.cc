/**
 * @file
 * SPEC CPU2006 445.gobmk proxy: Go-board pattern evaluation with a
 * fully unrolled pattern library.  128 distinct pattern blocks give a
 * hot code footprint well past the checker cores' 8 KiB L0 I-cache
 * (gobmk leads figure 10's checker-I-cache-miss group) with a data-
 * dependent branch per pattern.
 */

#include "workloads/common.hh"

namespace paradox
{
namespace workloads
{

namespace
{

constexpr unsigned numPatterns = 144;
constexpr long boardDim = 19;
constexpr std::size_t boardCells = std::size_t(boardDim * boardDim);

struct Pattern
{
    long o0, o1, o2;      //!< neighbour byte offsets
    std::uint64_t k;      //!< multiplier
    std::uint64_t w;      //!< weight
};

std::vector<Pattern>
makePatterns(std::uint64_t seed)
{
    const long neigh[8] = {-boardDim - 1, -boardDim, -boardDim + 1,
                           -1, 1, boardDim - 1, boardDim,
                           boardDim + 1};
    Rng rng(seed);
    std::vector<Pattern> pats(numPatterns);
    for (auto &p : pats) {
        p.o0 = neigh[rng.nextBounded(8)];
        p.o1 = neigh[rng.nextBounded(8)];
        p.o2 = neigh[rng.nextBounded(8)];
        p.k = 3 + rng.nextBounded(5);
        p.w = rng.nextBounded(65536);
    }
    return pats;
}

std::vector<std::uint64_t>
makeBoard(std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint64_t> words((boardCells + 7) / 8, 0);
    for (std::size_t i = 0; i < boardCells; ++i)
        words[i / 8] |= rng.nextBounded(3) << (8 * (i % 8));
    return words;
}

std::uint64_t
reference(const std::vector<std::uint64_t> &board,
          const std::vector<Pattern> &pats, unsigned iters)
{
    auto byteAt = [&board](long idx) {
        return (board[std::size_t(idx) / 8] >>
                (8 * (std::size_t(idx) % 8))) & 0xff;
    };
    std::uint64_t acc = 0;
    for (unsigned it = 0; it < iters; ++it) {
        long pos = 40 + long((std::uint64_t(it) * 31 + 17) % 240);
        for (const Pattern &p : pats) {
            std::uint64_t a = byteAt(pos + p.o0);
            std::uint64_t b = byteAt(pos + p.o1);
            std::uint64_t c = byteAt(pos + p.o2);
            std::uint64_t t = a * p.k + b;
            if (t & 1)
                acc = acc + t * p.w;
            else
                acc = acc ^ (p.w + c);
        }
    }
    return acc;
}

} // namespace

Workload
buildGobmk(unsigned scale)
{
    const unsigned iters = 200 * scale;
    const auto board = makeBoard(0x60b3);
    const auto pats = makePatterns(0x60b4);
    const Addr boardBase = dataBase;

    isa::ProgramBuilder b("gobmk");
    emitData(b, boardBase, board);

    b.ldi(x31, 0);
    b.ldi(x15, 0);                   // iteration counter
    b.ldi(x16, iters);
    b.ldi(x17, 240);
    b.ldi(x18, boardBase);

    b.label("iter");
    // pos = 40 + (it*31 + 17) % 240.
    b.ldi(x5, 31);
    b.mul(x6, x15, x5);
    b.addi(x6, x6, 17);
    b.remu(x6, x6, x17);
    b.addi(x6, x6, 40);
    b.add(x10, x6, x18);             // &board[pos]

    for (unsigned p = 0; p < numPatterns; ++p) {
        const Pattern &pat = pats[p];
        const std::string els = "else_" + std::to_string(p);
        const std::string end = "end_" + std::to_string(p);
        b.lbu(x11, x10, pat.o0);
        b.lbu(x12, x10, pat.o1);
        b.lbu(x13, x10, pat.o2);
        b.ldi(x14, pat.k);
        b.mul(x11, x11, x14);
        b.add(x11, x11, x12);
        b.andi(x14, x11, 1);
        b.beq(x14, x0, els);
        b.ldi(x14, pat.w);
        b.mul(x11, x11, x14);
        b.add(x31, x31, x11);
        b.j(end);
        b.label(els);
        b.ldi(x14, pat.w);
        b.add(x14, x14, x13);
        b.xor_(x31, x31, x14);
        b.label(end);
    }

    b.addi(x15, x15, 1);
    b.bne(x15, x16, "iter");

    storeResultAndHalt(b, x31);

    Workload w;
    w.name = "gobmk";
    w.description = "gobmk proxy: unrolled Go pattern evaluation";
    w.program = b.build();
    w.expectedResult = reference(board, pats, iters);
    w.largeCode = true;
    return w;
}

} // namespace workloads
} // namespace paradox
