/**
 * @file
 * SPEC CPU2006 470.lbm proxy: D2Q5 lattice-Boltzmann collide-and-
 * stream over a ping-pong cell array -- wide loads/stores with
 * scattered neighbour writes, lbm's bandwidth-bound FP profile.
 */

#include "workloads/common.hh"

namespace paradox
{
namespace workloads
{

namespace
{

constexpr long NX = 48, NY = 48;
constexpr std::size_t cells = std::size_t(NX * NY);
constexpr unsigned Q = 5;  // center, +x, -x, +y, -y
constexpr double omega = 0.6;
const double weights[Q] = {0.4, 0.15, 0.15, 0.15, 0.15};

std::uint64_t
reference(std::vector<double> f, unsigned steps)
{
    std::vector<double> g(cells * Q, 0.0);
    auto at = [](long x, long y, unsigned q) {
        return std::size_t((y * NX + x) * Q + q);
    };
    const long dx[Q] = {0, 1, -1, 0, 0};
    const long dy[Q] = {0, 0, 0, 1, -1};
    std::vector<double> *src = &f, *dst = &g;
    for (unsigned s = 0; s < steps; ++s) {
        for (long y = 1; y < NY - 1; ++y) {
            for (long x = 1; x < NX - 1; ++x) {
                double rho = 0.0;
                for (unsigned q = 0; q < Q; ++q)
                    rho = rho + (*src)[at(x, y, q)];
                for (unsigned q = 0; q < Q; ++q) {
                    double fq = (*src)[at(x, y, q)];
                    double eq = weights[q] * rho;
                    double nq = fq + omega * (eq - fq);
                    (*dst)[at(x + dx[q], y + dy[q], q)] = nq;
                }
            }
        }
        std::swap(src, dst);
    }
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < cells * Q; i += 11)
        acc = mixDouble(acc, (*src)[i]);
    return acc;
}

} // namespace

Workload
buildLbm(unsigned scale)
{
    const unsigned steps = 4 * scale;
    const auto f0v = randomDoubles(cells * Q, 0x1b3);
    const Addr fBase = dataBase;
    const Addr gBase = dataBase + f0v.size() * 8 + 64;
    const Addr cBase = gBase + f0v.size() * 8 + 64;

    isa::ProgramBuilder b("lbm");
    emitDataF(b, fBase, f0v);
    b.footprint(gBase, f0v.size() * 8, "g-grid");
    b.dataF64(cBase, omega);
    for (unsigned q = 0; q < Q; ++q)
        b.dataF64(cBase + 8 + 8 * q, weights[q]);

    constexpr long cellBytes = Q * 8;
    constexpr long rowBytes = NX * cellBytes;
    // Per-direction destination byte offsets relative to the cell.
    const long dOff[Q] = {0, cellBytes, -cellBytes, rowBytes,
                          -rowBytes};

    b.ldi(x1, cBase);
    b.fld(f10, x1, 0);                 // omega
    for (unsigned q = 0; q < Q; ++q)
        b.fld(isa::FReg(11 + q), x1, 8 + 8 * q);  // weights
    b.ldi(x21, fBase);
    b.ldi(x22, gBase);
    b.ldi(x15, steps);
    b.fmvDX(f0, x0);                   // f0 = +0.0, the FP zero below

    b.label("step");
    b.ldi(x3, 1);                      // y
    b.label("yloop");
    b.ldi(x5, NX);
    b.mul(x6, x3, x5);
    b.addi(x6, x6, 1);
    b.ldi(x5, cellBytes);
    b.mul(x6, x6, x5);
    b.add(x7, x6, x21);                // src cell
    b.add(x8, x6, x22);                // dst cell
    b.ldi(x4, NX - 2);
    b.label("xloop");
    // rho = sum f_q.
    b.fld(f1, x7, 0);
    b.fld(f2, x7, 8);
    b.fld(f3, x7, 16);
    b.fld(f4, x7, 24);
    b.fld(f5, x7, 32);
    b.fsub(f6, f0, f0);
    b.fadd(f6, f6, f1);
    b.fadd(f6, f6, f2);
    b.fadd(f6, f6, f3);
    b.fadd(f6, f6, f4);
    b.fadd(f6, f6, f5);
    // Collide + stream each direction.
    for (unsigned q = 0; q < Q; ++q) {
        isa::FReg fq{1 + q};
        b.fmul(f7, isa::FReg(11 + q), f6);  // eq
        b.fsub(f7, f7, fq);
        b.fmul(f7, f10, f7);
        b.fadd(f7, fq, f7);                 // nq
        b.fsd(f7, x8, dOff[q] + 8 * long(q));
    }
    b.addi(x7, x7, cellBytes);
    b.addi(x8, x8, cellBytes);
    b.addi(x4, x4, -1);
    b.bne(x4, x0, "xloop");
    b.addi(x3, x3, 1);
    b.ldi(x5, NY - 1);
    b.bne(x3, x5, "yloop");
    // swap
    b.mv(x5, x21);
    b.mv(x21, x22);
    b.mv(x22, x5);
    b.addi(x15, x15, -1);
    b.bne(x15, x0, "step");

    // Strided checksum over src.
    b.ldi(x31, 0);
    b.ldi(x20, 1099511628211ULL);
    b.mv(x7, x21);
    b.ldi(x2, 0);
    b.ldi(x3, cells * Q);
    b.label("sum");
    b.fld(f1, x7, 0);
    b.fmvXD(x9, f1);
    b.mul(x31, x31, x20);
    b.add(x31, x31, x9);
    b.addi(x7, x7, 88);
    b.addi(x2, x2, 11);
    b.blt(x2, x3, "sum");

    storeResultAndHalt(b, x31);

    Workload w;
    w.name = "lbm";
    w.description = "lbm proxy: D2Q5 collide-and-stream ping-pong";
    w.program = b.build();
    w.expectedResult = reference(f0v, steps);
    w.fpHeavy = true;
    w.memoryBound = true;
    return w;
}

} // namespace workloads
} // namespace paradox
