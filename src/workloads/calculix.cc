/**
 * @file
 * SPEC CPU2006 454.calculix proxy: repeated dense LU-style forward
 * elimination on a small matrix -- pivot divides feeding multiply-
 * subtract row updates, the solver kernel of finite-element codes.
 */

#include "workloads/common.hh"

#include <cmath>

namespace paradox
{
namespace workloads
{

namespace
{

constexpr long M = 20;

std::uint64_t
reference(const std::vector<double> &a0, unsigned rounds)
{
    std::uint64_t acc = 0;
    std::vector<double> a(a0);
    for (unsigned r = 0; r < rounds; ++r) {
        // Re-perturb so every round does fresh work.
        for (long i = 0; i < M; ++i)
            a[std::size_t(i * M + i)] =
                a[std::size_t(i * M + i)] + 4.0;
        for (long k = 0; k < M - 1; ++k) {
            double pivot = a[std::size_t(k * M + k)];
            for (long i = k + 1; i < M; ++i) {
                double factor = a[std::size_t(i * M + k)] / pivot;
                a[std::size_t(i * M + k)] = factor;
                for (long j = k + 1; j < M; ++j) {
                    a[std::size_t(i * M + j)] =
                        a[std::size_t(i * M + j)] -
                        factor * a[std::size_t(k * M + j)];
                }
            }
        }
        for (long i = 0; i < M; ++i)
            acc = mixDouble(acc, a[std::size_t(i * M + i)]);
    }
    return acc;
}

} // namespace

Workload
buildCalculix(unsigned scale)
{
    const unsigned rounds = 24 * scale;
    const auto a0 = randomDoubles(std::size_t(M * M), 0xca1c);
    const Addr base = dataBase;
    const Addr cBase = dataBase + a0.size() * 8 + 64;

    isa::ProgramBuilder b("calculix");
    emitDataF(b, base, a0);
    b.dataF64(cBase, 4.0);

    constexpr long rowBytes = M * 8;

    b.ldi(x1, cBase);
    b.fld(f10, x1, 0);    // 4.0
    b.ldi(x21, base);
    b.ldi(x15, rounds);
    b.ldi(x20, 1099511628211ULL);
    b.ldi(x31, 0);
    b.ldi(x18, M);

    b.label("round");
    // Diagonal perturbation.
    b.mv(x2, x21);
    b.ldi(x3, M);
    b.label("diag");
    b.fld(f1, x2, 0);
    b.fadd(f1, f1, f10);
    b.fsd(f1, x2, 0);
    b.addi(x2, x2, rowBytes + 8);
    b.addi(x3, x3, -1);
    b.bne(x3, x0, "diag");

    // Forward elimination.
    b.ldi(x2, 0);                    // k
    b.label("kloop");
    // pivot = a[k][k]
    b.ldi(x5, rowBytes + 8);
    b.mul(x6, x2, x5);
    b.add(x6, x6, x21);              // &a[k][k]
    b.fld(f1, x6, 0);                // pivot
    b.addi(x3, x2, 1);               // i
    b.label("iloop");
    // &a[i][k]
    b.ldi(x5, rowBytes);
    b.mul(x7, x3, x5);
    b.add(x7, x7, x21);
    b.slli(x8, x2, 3);
    b.add(x7, x7, x8);               // &a[i][k]
    b.fld(f2, x7, 0);
    b.fdiv(f2, f2, f1);              // factor
    b.fsd(f2, x7, 0);
    // j loop: a[i][j] -= factor * a[k][j], j = k+1..M-1
    b.addi(x9, x7, 8);               // &a[i][j]
    b.ldi(x5, rowBytes + 8);
    b.mul(x10, x2, x5);
    b.add(x10, x10, x21);
    b.addi(x10, x10, 8);             // &a[k][k+1]
    b.sub(x11, x18, x2);
    b.addi(x11, x11, -1);            // M - 1 - k iterations
    b.beq(x11, x0, "jdone");
    b.label("jloop");
    b.fld(f3, x10, 0);
    b.fmul(f3, f2, f3);
    b.fld(f4, x9, 0);
    b.fsub(f4, f4, f3);
    b.fsd(f4, x9, 0);
    b.addi(x9, x9, 8);
    b.addi(x10, x10, 8);
    b.addi(x11, x11, -1);
    b.bne(x11, x0, "jloop");
    b.label("jdone");
    b.addi(x3, x3, 1);
    b.blt(x3, x18, "iloop");
    b.addi(x2, x2, 1);
    b.ldi(x5, M - 1);
    b.blt(x2, x5, "kloop");

    // Fold the diagonal.
    b.mv(x2, x21);
    b.ldi(x3, M);
    b.label("fold");
    b.fld(f1, x2, 0);
    b.fmvXD(x9, f1);
    b.mul(x31, x31, x20);
    b.add(x31, x31, x9);
    b.addi(x2, x2, rowBytes + 8);
    b.addi(x3, x3, -1);
    b.bne(x3, x0, "fold");

    b.addi(x15, x15, -1);
    b.bne(x15, x0, "round");

    storeResultAndHalt(b, x31);

    Workload w;
    w.name = "calculix";
    w.description = "calculix proxy: dense LU forward elimination";
    w.program = b.build();
    w.expectedResult = reference(a0, rounds);
    w.fpHeavy = true;
    return w;
}

} // namespace workloads
} // namespace paradox
