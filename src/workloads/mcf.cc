/**
 * @file
 * SPEC CPU2006 429.mcf proxy: network-simplex-style pointer chasing.
 * A random Hamiltonian cycle of arc nodes is walked while updating
 * node potentials -- dependent loads over a working set far larger
 * than the L1, the latency-bound memory behaviour mcf is known for.
 */

#include "workloads/common.hh"

#include <numeric>

namespace paradox
{
namespace workloads
{

namespace
{

constexpr std::size_t numNodes = 4096;
constexpr unsigned nodeBytes = 32;

std::vector<std::size_t>
makeCycle(std::uint64_t seed)
{
    // Fisher-Yates shuffle, then link i -> perm[i+1] in a cycle.
    Rng rng(seed);
    std::vector<std::size_t> perm(numNodes);
    std::iota(perm.begin(), perm.end(), 0);
    for (std::size_t i = numNodes - 1; i > 0; --i) {
        std::size_t j = rng.nextBounded(i + 1);
        std::swap(perm[i], perm[j]);
    }
    std::vector<std::size_t> next(numNodes);
    for (std::size_t i = 0; i < numNodes; ++i)
        next[perm[i]] = perm[(i + 1) % numNodes];
    return next;
}

std::uint64_t
reference(const std::vector<std::size_t> &next,
          const std::vector<std::uint64_t> &costs, std::uint64_t steps)
{
    std::vector<std::uint64_t> potential(numNodes, 0);
    std::uint64_t acc = 0;
    std::size_t cur = 0;
    std::uint64_t carry = 1;
    for (std::uint64_t s = 0; s < steps; ++s) {
        std::uint64_t cost = costs[cur];
        std::uint64_t pot = potential[cur] + cost + carry;
        // Sparse write-back: only "improving" arcs update the node,
        // as in network simplex where most arcs just get priced.
        if ((pot & 15) == 0)
            potential[cur] = pot;
        if (pot & 1)
            acc = mixInt(acc, pot);
        carry = pot >> 63;
        cur = next[cur];
    }
    return mixInt(acc, potential[0]);
}

} // namespace

Workload
buildMcf(unsigned scale)
{
    const std::uint64_t steps = 24000 * std::uint64_t(scale);
    const auto next = makeCycle(0x3cf);
    const auto costs = randomWords(numNodes, 0x3cf0c057);
    const Addr base = dataBase;  // node i: {next addr, cost, potential}

    isa::ProgramBuilder b("mcf");
    for (std::size_t i = 0; i < numNodes; ++i) {
        b.data64(base + nodeBytes * i + 0,
                 base + nodeBytes * next[i]);
        b.data64(base + nodeBytes * i + 8, costs[i]);
        b.data64(base + nodeBytes * i + 16, 0);
    }

    b.ldi(x31, 0);
    b.ldi(x20, 1099511628211ULL);
    b.ldi(x1, base);            // current node pointer
    b.ldi(x2, steps);
    b.ldi(x21, 1);              // carry

    b.label("step");
    b.ld(x5, x1, 8);            // cost
    b.ld(x6, x1, 16);           // potential
    b.add(x6, x6, x5);
    b.add(x6, x6, x21);
    b.andi(x7, x6, 15);
    b.bne(x7, x0, "nowrite");
    b.sd(x6, x1, 16);
    b.label("nowrite");
    b.andi(x7, x6, 1);
    b.beq(x7, x0, "even");
    b.mul(x31, x31, x20);
    b.add(x31, x31, x6);
    b.label("even");
    b.srli(x21, x6, 63);
    b.ld(x1, x1, 0);            // chase
    b.addi(x2, x2, -1);
    b.bne(x2, x0, "step");

    b.ldi(x1, base);
    b.ld(x5, x1, 16);
    b.mul(x31, x31, x20);
    b.add(x31, x31, x5);
    storeResultAndHalt(b, x31);

    Workload w;
    w.name = "mcf";
    w.description = "mcf proxy: random-cycle pointer chase with "
                    "potential updates";
    w.program = b.build();
    w.expectedResult = reference(next, costs, steps);
    w.memoryBound = true;
    return w;
}

} // namespace workloads
} // namespace paradox
