/**
 * @file
 * SPEC CPU2006 464.h264ref proxy: sum-of-absolute-differences motion
 * estimation.  All 25 candidate positions are unrolled with the
 * 16-byte row SAD expanded inline, giving the >8 KiB hot code
 * footprint that makes h264ref miss in the checker L0 I-cache
 * (figure 10) -- integer-dominated with short dependent chains.
 */

#include "workloads/common.hh"

namespace paradox
{
namespace workloads
{

namespace
{

constexpr long frameDim = 64;
constexpr long blockDim = 16;
constexpr long searchDim = 5;  // 5x5 candidate grid

std::uint64_t
byteAt(const std::vector<std::uint64_t> &img, long idx)
{
    return (img[std::size_t(idx) / 8] >> (8 * (std::size_t(idx) % 8))) &
           0xff;
}

std::uint64_t
reference(const std::vector<std::uint64_t> &frame,
          const std::vector<std::uint64_t> &block, unsigned iters)
{
    std::uint64_t acc = 0;
    for (unsigned it = 0; it < iters; ++it) {
        long bx = long((std::uint64_t(it) * 3) % 40);
        long by = long((std::uint64_t(it) * 5) % 40);
        std::uint64_t best = ~std::uint64_t(0);
        for (long c = 0; c < searchDim * searchDim; ++c) {
            long cx = bx + c % searchDim;
            long cy = by + c / searchDim;
            std::uint64_t sad = 0;
            for (long r = 0; r < blockDim; ++r) {
                long cur = r * blockDim;
                long ref = (cy + r) * frameDim + cx;
                for (long k = 0; k < blockDim; ++k) {
                    std::int64_t d =
                        std::int64_t(byteAt(block, cur + k)) -
                        std::int64_t(byteAt(frame, ref + k));
                    sad += std::uint64_t(d < 0 ? -d : d);
                }
            }
            if (sad < best)
                best = sad;
        }
        acc = mixInt(acc, best);
    }
    return acc;
}

} // namespace

Workload
buildH264ref(unsigned scale)
{
    const unsigned iters = 8 * scale;
    const auto frame =
        randomWords(std::size_t(frameDim * frameDim) / 8, 0x264);
    const auto block =
        randomWords(std::size_t(blockDim * blockDim) / 8, 0x265);
    const Addr frameBase = dataBase;
    const Addr blockBase = dataBase + frame.size() * 8 + 64;

    isa::ProgramBuilder b("h264ref");
    emitData(b, frameBase, frame);
    emitData(b, blockBase, block);

    b.ldi(x31, 0);
    b.ldi(x20, 1099511628211ULL);
    b.ldi(x15, 0);                 // it
    b.ldi(x16, iters);
    b.ldi(x17, 40);
    b.ldi(x18, frameBase);
    b.ldi(x19, blockBase);

    b.label("iter");
    b.ldi(x5, 3);
    b.mul(x1, x15, x5);
    b.remu(x1, x1, x17);           // bx
    b.ldi(x5, 5);
    b.mul(x2, x15, x5);
    b.remu(x2, x2, x17);           // by
    b.ldi(x21, -1);                // best (max u64)

    for (long c = 0; c < searchDim * searchDim; ++c) {
        const long cxo = c % searchDim;
        const long cyo = c / searchDim;
        const std::string row = "row_" + std::to_string(c);
        const std::string keep = "keep_" + std::to_string(c);
        // x6 = &frame[(by+cyo)*64 + bx + cxo]; x7 = &block[0].
        b.addi(x5, x2, cyo);
        b.slli(x5, x5, 6);
        b.add(x5, x5, x1);
        b.addi(x5, x5, cxo);
        b.add(x6, x5, x18);
        b.mv(x7, x19);
        b.ldi(x8, 0);              // sad
        b.ldi(x9, blockDim);       // row counter
        b.label(row);
        for (long k = 0; k < blockDim; ++k) {
            b.lbu(x10, x7, k);
            b.lbu(x11, x6, k);
            b.sub(x10, x10, x11);
            b.srai(x11, x10, 63);
            b.xor_(x10, x10, x11);
            b.sub(x10, x10, x11);  // |d|
            b.add(x8, x8, x10);
        }
        b.addi(x7, x7, blockDim);
        b.addi(x6, x6, frameDim);
        b.addi(x9, x9, -1);
        b.bne(x9, x0, row);
        b.bgeu(x8, x21, keep);
        b.mv(x21, x8);
        b.label(keep);
    }

    b.mul(x31, x31, x20);
    b.add(x31, x31, x21);
    b.addi(x15, x15, 1);
    b.bne(x15, x16, "iter");

    storeResultAndHalt(b, x31);

    Workload w;
    w.name = "h264ref";
    w.description = "h264ref proxy: unrolled SAD motion search";
    w.program = b.build();
    w.expectedResult = reference(frame, block, iters);
    w.largeCode = true;
    return w;
}

} // namespace workloads
} // namespace paradox
