/**
 * @file
 * SPEC CPU2006 465.tonto proxy: quantum-chemistry-flavoured mix of
 * polynomial (exponential-series) evaluations and small symmetric
 * matrix-vector products.
 */

#include "workloads/common.hh"

namespace paradox
{
namespace workloads
{

namespace
{

constexpr long M = 12;
constexpr unsigned polyTerms = 8;

std::uint64_t
reference(const std::vector<double> &mat, const std::vector<double> &xs,
          unsigned rounds)
{
    std::uint64_t acc = 0;
    std::vector<double> v(std::size_t(M), 0.0);
    for (std::size_t i = 0; i < std::size_t(M); ++i)
        v[i] = xs[i];
    for (unsigned r = 0; r < rounds; ++r) {
        // Horner series per element: p(x) = sum x^k / k! -ish.
        for (std::size_t i = 0; i < std::size_t(M); ++i) {
            double x = v[i] * 0.25;
            double p = 1.0;
            for (unsigned k = polyTerms; k > 0; --k)
                p = p * (x / double(k)) + 1.0;
            v[i] = p;
        }
        // w = A v (A symmetric M x M), then renormalize-ish.
        std::vector<double> w(std::size_t(M), 0.0);
        for (long i = 0; i < M; ++i) {
            double sum = 0.0;
            for (long j = 0; j < M; ++j)
                sum = sum + mat[std::size_t(i * M + j)] *
                                v[std::size_t(j)];
            w[std::size_t(i)] = sum;
        }
        for (long i = 0; i < M; ++i) {
            v[std::size_t(i)] = w[std::size_t(i)] /
                                (1.0 + w[std::size_t(i)] *
                                           w[std::size_t(i)]);
            acc = mixDouble(acc, v[std::size_t(i)]);
        }
    }
    return acc;
}

} // namespace

Workload
buildTonto(unsigned scale)
{
    const unsigned rounds = 400 * scale;
    const auto mat = randomDoubles(std::size_t(M * M), 0x707070);
    const auto xs = randomDoubles(std::size_t(M), 0x707071);
    const Addr matBase = dataBase;
    const Addr vBase = matBase + mat.size() * 8 + 64;
    const Addr wBase = vBase + std::size_t(M) * 8 + 64;
    const Addr cBase = wBase + std::size_t(M) * 8 + 64;

    isa::ProgramBuilder b("tonto");
    emitDataF(b, matBase, mat);
    emitDataF(b, vBase, xs);
    // w is written before it is read, so it has no initial data --
    // declare the scratch range explicitly.
    b.footprint(wBase, std::size_t(M) * 8, "w");
    b.dataF64(cBase, 0.25);
    b.dataF64(cBase + 8, 1.0);
    // Reciprocal-of-k table for the Horner loop (k = 1..polyTerms).
    for (unsigned k = 1; k <= polyTerms; ++k)
        b.dataF64(cBase + 16 + 8 * (k - 1), double(k));

    b.ldi(x1, cBase);
    b.fld(f10, x1, 0);    // 0.25
    b.fld(f11, x1, 8);    // 1.0
    b.ldi(x21, matBase);
    b.ldi(x22, vBase);
    b.ldi(x19, wBase);
    b.ldi(x15, rounds);
    b.ldi(x20, 1099511628211ULL);
    b.ldi(x31, 0);
    b.ldi(x18, M);
    b.fmvDX(f0, x0);      // f0 = +0.0, the FP zero below

    b.label("round");
    // Polynomial pass over v.
    b.mv(x2, x22);
    b.ldi(x3, M);
    b.label("poly");
    b.fld(f1, x2, 0);
    b.fmul(f1, f1, f10);           // x
    b.fadd(f2, f11, f0);           // p = 1.0
    b.ldi(x5, polyTerms);
    b.ldi(x6, cBase + 16 + 8 * (polyTerms - 1));  // &k table top
    b.label("horner");
    b.fld(f3, x6, 0);              // k
    b.fdiv(f4, f1, f3);            // x / k
    b.fmul(f2, f2, f4);
    b.fadd(f2, f2, f11);           // p = p*(x/k) + 1
    b.addi(x6, x6, -8);
    b.addi(x5, x5, -1);
    b.bne(x5, x0, "horner");
    b.fsd(f2, x2, 0);
    b.addi(x2, x2, 8);
    b.addi(x3, x3, -1);
    b.bne(x3, x0, "poly");

    // w = A v.
    b.ldi(x2, 0);                  // i
    b.label("mrow");
    b.ldi(x5, M * 8);
    b.mul(x6, x2, x5);
    b.add(x6, x6, x21);            // &A[i][0]
    b.mv(x7, x22);                 // &v[0]
    b.fsub(f1, f0, f0);            // sum = 0
    b.ldi(x4, M);
    b.label("mcol");
    b.fld(f2, x6, 0);
    b.fld(f3, x7, 0);
    b.fmul(f2, f2, f3);
    b.fadd(f1, f1, f2);
    b.addi(x6, x6, 8);
    b.addi(x7, x7, 8);
    b.addi(x4, x4, -1);
    b.bne(x4, x0, "mcol");
    b.slli(x5, x2, 3);
    b.add(x5, x5, x19);
    b.fsd(f1, x5, 0);
    b.addi(x2, x2, 1);
    b.blt(x2, x18, "mrow");

    // v = w / (1 + w^2), fold.
    b.ldi(x2, 0);
    b.label("norm");
    b.slli(x5, x2, 3);
    b.add(x6, x5, x19);
    b.fld(f1, x6, 0);              // w
    b.fmul(f2, f1, f1);
    b.fadd(f2, f11, f2);           // 1 + w^2
    b.fdiv(f1, f1, f2);
    b.add(x6, x5, x22);
    b.fsd(f1, x6, 0);
    b.fmvXD(x9, f1);
    b.mul(x31, x31, x20);
    b.add(x31, x31, x9);
    b.addi(x2, x2, 1);
    b.blt(x2, x18, "norm");

    b.addi(x15, x15, -1);
    b.bne(x15, x0, "round");

    storeResultAndHalt(b, x31);

    Workload w;
    w.name = "tonto";
    w.description = "tonto proxy: exponential series + small matvec";
    w.program = b.build();
    w.expectedResult = reference(mat, xs, rounds);
    w.fpHeavy = true;
    return w;
}

} // namespace workloads
} // namespace paradox
