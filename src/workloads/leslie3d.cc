/**
 * @file
 * SPEC CPU2006 437.leslie3d proxy: upwind-biased asymmetric 3D
 * stencil (eddy/LES convection flavour) updated in place plane by
 * plane.
 */

#include "workloads/common.hh"

namespace paradox
{
namespace workloads
{

namespace
{

constexpr long NX = 32, NY = 32, NZ = 8;
constexpr std::size_t cells = std::size_t(NX * NY * NZ);
constexpr double dt = 0.05, ax = 0.7, ay = 0.2, az = 0.1;

std::uint64_t
reference(std::vector<double> grid, unsigned iters)
{
    auto idx = [](long x, long y, long z) {
        return std::size_t((z * NY + y) * NX + x);
    };
    for (unsigned it = 0; it < iters; ++it) {
        for (long z = 1; z < NZ - 1; ++z) {
            for (long y = 1; y < NY - 1; ++y) {
                for (long x = 1; x < NX - 1; ++x) {
                    double c = grid[idx(x, y, z)];
                    double fx = ax * (grid[idx(x + 1, y, z)] - c);
                    double fy = ay * (grid[idx(x, y + 1, z)] - c);
                    double fz = az * (grid[idx(x, y, z + 1)] - c);
                    grid[idx(x, y, z)] = c + dt * (fx + fy + fz);
                }
            }
        }
    }
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < cells; i += 7)
        acc = mixDouble(acc, grid[i]);
    return acc;
}

} // namespace

Workload
buildLeslie3d(unsigned scale)
{
    const unsigned iters = 5 * scale;
    const auto grid = randomDoubles(cells, 0x1e511e);
    const Addr base = dataBase;
    const Addr cBase = dataBase + cells * 8 + 64;

    isa::ProgramBuilder b("leslie3d");
    emitDataF(b, base, grid);
    b.dataF64(cBase, dt);
    b.dataF64(cBase + 8, ax);
    b.dataF64(cBase + 16, ay);
    b.dataF64(cBase + 24, az);

    constexpr long sx = 8, sy = NX * 8, sz = NX * NY * 8;

    b.ldi(x1, cBase);
    b.fld(f10, x1, 0);
    b.fld(f11, x1, 8);
    b.fld(f12, x1, 16);
    b.fld(f13, x1, 24);
    b.ldi(x21, base);
    b.ldi(x15, iters);

    b.label("iter");
    b.ldi(x2, 1);
    b.label("zloop");
    b.ldi(x3, 1);
    b.label("yloop");
    b.ldi(x5, NX);
    b.mul(x6, x2, x5);
    b.add(x6, x6, x3);
    b.mul(x6, x6, x5);
    b.addi(x6, x6, 1);
    b.slli(x6, x6, 3);
    b.add(x7, x6, x21);
    b.ldi(x4, NX - 2);
    b.label("xloop");
    b.fld(f1, x7, 0);            // c
    b.fld(f2, x7, sx);
    b.fld(f3, x7, sy);
    b.fld(f4, x7, sz);
    b.fsub(f2, f2, f1);
    b.fmul(f2, f11, f2);
    b.fsub(f3, f3, f1);
    b.fmul(f3, f12, f3);
    b.fsub(f4, f4, f1);
    b.fmul(f4, f13, f4);
    b.fadd(f2, f2, f3);
    b.fadd(f2, f2, f4);
    b.fmul(f2, f10, f2);
    b.fadd(f1, f1, f2);
    b.fsd(f1, x7, 0);
    b.addi(x7, x7, 8);
    b.addi(x4, x4, -1);
    b.bne(x4, x0, "xloop");
    b.addi(x3, x3, 1);
    b.ldi(x5, NY - 1);
    b.bne(x3, x5, "yloop");
    b.addi(x2, x2, 1);
    b.ldi(x5, NZ - 1);
    b.bne(x2, x5, "zloop");
    b.addi(x15, x15, -1);
    b.bne(x15, x0, "iter");

    // Strided checksum.
    b.ldi(x31, 0);
    b.ldi(x20, 1099511628211ULL);
    b.ldi(x7, base);
    b.ldi(x2, 0);
    b.ldi(x3, cells);
    b.label("sum");
    b.fld(f1, x7, 0);
    b.fmvXD(x9, f1);
    b.mul(x31, x31, x20);
    b.add(x31, x31, x9);
    b.addi(x7, x7, 56);
    b.addi(x2, x2, 7);
    b.blt(x2, x3, "sum");

    storeResultAndHalt(b, x31);

    Workload w;
    w.name = "leslie3d";
    w.description = "leslie3d proxy: upwind asymmetric in-place 3D "
                    "stencil";
    w.program = b.build();
    w.expectedResult = reference(grid, iters);
    w.fpHeavy = true;
    w.memoryBound = true;
    return w;
}

} // namespace workloads
} // namespace paradox
