#include "workloads/workload.hh"

#include <map>

#include "sim/logging.hh"
#include "workloads/common.hh"

namespace paradox
{
namespace workloads
{

namespace
{

using Factory = Workload (*)(unsigned);

// SPEC proxies in figure 10's left-to-right order.
const std::vector<std::string> specOrder = {
    "bzip2", "bwaves", "gcc", "mcf", "milc", "cactusADM", "leslie3d",
    "namd", "gobmk", "povray", "calculix", "sjeng", "GemsFDTD",
    "h264ref", "tonto", "lbm", "omnetpp", "astar", "xalancbmk",
};

const std::map<std::string, Factory> factories = {
    {"bitcount", buildBitcount},
    {"stream", buildStream},
    {"bzip2", buildBzip2},
    {"bwaves", buildBwaves},
    {"gcc", buildGcc},
    {"mcf", buildMcf},
    {"milc", buildMilc},
    {"cactusADM", buildCactusADM},
    {"leslie3d", buildLeslie3d},
    {"namd", buildNamd},
    {"gobmk", buildGobmk},
    {"povray", buildPovray},
    {"calculix", buildCalculix},
    {"sjeng", buildSjeng},
    {"GemsFDTD", buildGemsFDTD},
    {"h264ref", buildH264ref},
    {"tonto", buildTonto},
    {"lbm", buildLbm},
    {"omnetpp", buildOmnetpp},
    {"astar", buildAstar},
    {"xalancbmk", buildXalancbmk},
};

} // namespace

const std::vector<std::string> &
allNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v = {"bitcount", "stream"};
        v.insert(v.end(), specOrder.begin(), specOrder.end());
        return v;
    }();
    return names;
}

const std::vector<std::string> &
specNames()
{
    return specOrder;
}

Workload
build(const std::string &name, unsigned scale)
{
    auto it = factories.find(name);
    if (it == factories.end())
        fatal("unknown workload '" + name + "'");
    if (scale == 0)
        scale = 1;
    return it->second(scale);
}

} // namespace workloads
} // namespace paradox
