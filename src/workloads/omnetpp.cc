/**
 * @file
 * SPEC CPU2006 471.omnetpp proxy: discrete-event simulation over a
 * binary-heap future-event set.  Pop-min / handler-dispatch /
 * push-replacement with 64 distinct unrolled handlers -- the
 * pointer-heavy, branchy, large-code profile of omnetpp (a figure 10
 * checker-I-cache-miss workload).
 */

#include "workloads/common.hh"

namespace paradox
{
namespace workloads
{

namespace
{

constexpr std::size_t heapSize = 256;
constexpr unsigned numHandlers = 64;

/** Eight mix rounds per handler keep each one ~34 instructions,
 * pushing the unrolled handler library past the 8 KiB checker L0. */
constexpr unsigned mixRounds = 8;

struct Handler
{
    std::uint64_t mult[mixRounds];
    std::uint64_t add[mixRounds];
    unsigned shift[mixRounds];
};

std::vector<Handler>
makeHandlers(std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Handler> handlers(numHandlers);
    for (auto &h : handlers) {
        for (unsigned r = 0; r < mixRounds; ++r) {
            h.mult[r] = 3 + 2 * rng.nextBounded(8);  // odd multipliers
            h.add[r] = 1 + rng.nextBounded(1U << 20);
            h.shift[r] = 7 + unsigned(rng.nextBounded(40));
        }
    }
    return handlers;
}

std::uint64_t
runHandler(const Handler &h, std::uint64_t t)
{
    std::uint64_t x = t;
    for (unsigned r = 0; r < mixRounds; ++r) {
        x = x * h.mult[r] + h.add[r];
        x = x ^ (x >> h.shift[r]);
    }
    return x;
}

std::uint64_t
reference(std::vector<std::uint64_t> heap,
          const std::vector<Handler> &handlers, unsigned steps)
{
    // heap is already a valid min-heap on entry.
    std::uint64_t acc = 0;
    for (unsigned s = 0; s < steps; ++s) {
        std::uint64_t t = heap[0];
        const Handler &h = handlers[t % numHandlers];
        acc = mixInt(acc, t);
        std::uint64_t next = runHandler(h, t);
        // Replace the root and sift down.
        heap[0] = next;
        std::size_t i = 0;
        for (;;) {
            std::size_t l = 2 * i + 1;
            if (l >= heapSize)
                break;
            std::size_t m = l;
            std::size_t r = l + 1;
            if (r < heapSize && heap[r] < heap[l])
                m = r;
            if (heap[m] >= heap[i])
                break;
            std::swap(heap[m], heap[i]);
            i = m;
        }
    }
    return acc;
}

std::vector<std::uint64_t>
makeHeap(std::uint64_t seed)
{
    auto heap = randomWords(heapSize, seed);
    // Heapify (sift-down from the last parent).
    for (std::size_t start = heapSize / 2; start-- > 0;) {
        std::size_t i = start;
        for (;;) {
            std::size_t l = 2 * i + 1;
            if (l >= heapSize)
                break;
            std::size_t m = l;
            if (l + 1 < heapSize && heap[l + 1] < heap[l])
                m = l + 1;
            if (heap[m] >= heap[i])
                break;
            std::swap(heap[m], heap[i]);
            i = m;
        }
    }
    return heap;
}

} // namespace

Workload
buildOmnetpp(unsigned scale)
{
    const unsigned steps = 1500 * scale;
    const auto heap0 = makeHeap(0x03e7);
    const auto handlers = makeHandlers(0x03e8);
    const Addr heapBase = dataBase;

    isa::ProgramBuilder b("omnetpp");
    emitData(b, heapBase, heap0);

    b.ldi(x31, 0);
    b.ldi(x20, 1099511628211ULL);
    b.ldi(x21, heapBase);
    b.ldi(x15, steps);
    b.ldi(x18, heapSize);
    b.ldi(x19, numHandlers - 1);   // mask (power of two)

    b.label("step");
    b.ld(x5, x21, 0);              // t = heap[0]
    b.mul(x31, x31, x20);
    b.add(x31, x31, x5);
    b.and_(x6, x5, x19);           // handler index

    // Dispatch through a compare chain of unrolled handlers.  The
    // index is masked to [0, numHandlers), so after the first
    // numHandlers-1 tests miss only the last handler remains -- its
    // dispatch is an unconditional jump, not a 64th compare that
    // could never fall through.
    for (unsigned h = 0; h + 1 < numHandlers; ++h) {
        const std::string lbl = "h_" + std::to_string(h);
        b.ldi(x7, h);
        b.beq(x6, x7, lbl);
    }
    b.j("h_" + std::to_string(numHandlers - 1));
    for (unsigned h = 0; h < numHandlers; ++h) {
        b.label("h_" + std::to_string(h));
        b.mv(x8, x5);
        for (unsigned r = 0; r < mixRounds; ++r) {
            b.ldi(x7, handlers[h].mult[r]);
            b.mul(x8, x8, x7);
            b.ldi(x7, handlers[h].add[r]);
            b.add(x8, x8, x7);
            b.srli(x7, x8, handlers[h].shift[r]);
            b.xor_(x8, x8, x7);
        }
        b.j("dispatched");
    }
    b.label("dispatched");

    // heap[0] = next; sift down.
    b.sd(x8, x21, 0);
    b.ldi(x2, 0);                  // i
    b.label("sift");
    b.slli(x3, x2, 1);
    b.addi(x3, x3, 1);             // l
    b.bge(x3, x18, "sift_done");
    b.mv(x4, x3);                  // m = l
    b.addi(x5, x3, 1);             // r
    b.bge(x5, x18, "no_right");
    b.slli(x6, x3, 3);
    b.add(x6, x6, x21);
    b.ld(x7, x6, 0);               // heap[l]
    b.ld(x9, x6, 8);               // heap[r]
    b.bgeu(x9, x7, "no_right");
    b.mv(x4, x5);                  // m = r
    b.label("no_right");
    b.slli(x6, x4, 3);
    b.add(x6, x6, x21);
    b.ld(x7, x6, 0);               // heap[m]
    b.slli(x9, x2, 3);
    b.add(x9, x9, x21);
    b.ld(x10, x9, 0);              // heap[i]
    b.bgeu(x7, x10, "sift_done");
    b.sd(x10, x6, 0);
    b.sd(x7, x9, 0);
    b.mv(x2, x4);
    b.j("sift");
    b.label("sift_done");

    b.addi(x15, x15, -1);
    b.bne(x15, x0, "step");

    storeResultAndHalt(b, x31);

    Workload w;
    w.name = "omnetpp";
    w.description = "omnetpp proxy: heap-based event simulation with "
                    "unrolled handlers";
    w.program = b.build();
    w.expectedResult = reference(heap0, handlers, steps);
    w.largeCode = true;
    return w;
}

} // namespace workloads
} // namespace paradox
