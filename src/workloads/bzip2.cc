/**
 * @file
 * SPEC CPU2006 401.bzip2 proxy: move-to-front transform plus run-
 * length folding over a byte stream with realistic run structure --
 * the branchy, table-shuffling integer character of bzip2's entropy
 * stages.
 */

#include "workloads/common.hh"

namespace paradox
{
namespace workloads
{

namespace
{

std::vector<std::uint64_t>
makeInput(std::size_t n_bytes, std::uint64_t seed)
{
    // Byte stream with runs (70% chance of repeating), packed into
    // 64-bit little-endian words for the data image.
    Rng rng(seed);
    std::vector<std::uint64_t> words((n_bytes + 7) / 8, 0);
    std::uint8_t prev = 0;
    for (std::size_t i = 0; i < n_bytes; ++i) {
        std::uint8_t byte =
            rng.chance(0.7) ? prev : std::uint8_t(rng.nextBounded(64));
        prev = byte;
        words[i / 8] |= std::uint64_t(byte) << (8 * (i % 8));
    }
    return words;
}

std::uint64_t
reference(const std::vector<std::uint64_t> &words, std::size_t n_bytes)
{
    std::uint8_t table[256];
    for (unsigned i = 0; i < 256; ++i)
        table[i] = std::uint8_t(i);

    std::uint64_t acc = 0;
    std::uint64_t prev_j = 257, run = 0;
    for (std::size_t i = 0; i < n_bytes; ++i) {
        std::uint8_t byte =
            std::uint8_t(words[i / 8] >> (8 * (i % 8)));
        unsigned j = 0;
        while (table[j] != byte)
            ++j;
        for (unsigned k = j; k > 0; --k)
            table[k] = table[k - 1];
        table[0] = byte;
        acc = mixInt(acc, j);
        if (j == prev_j) {
            ++run;
        } else {
            acc = mixInt(acc, run);
            prev_j = j;
            run = 1;
        }
    }
    return mixInt(acc, run);
}

} // namespace

Workload
buildBzip2(unsigned scale)
{
    const std::size_t n_bytes = 2048 * scale;
    const auto words = makeInput(n_bytes, 0xb21b2);
    const Addr inBase = dataBase;
    const Addr tableBase = dataBase + words.size() * 8 + 64;

    isa::ProgramBuilder b("bzip2");
    emitData(b, inBase, words);
    // MTF table initialized 0..255, packed bytes.
    for (unsigned w = 0; w < 32; ++w) {
        std::uint64_t word = 0;
        for (unsigned k = 0; k < 8; ++k)
            word |= std::uint64_t(w * 8 + k) << (8 * k);
        b.data64(tableBase + w * 8, word);
    }

    b.ldi(x1, inBase);
    b.ldi(x2, n_bytes);
    b.ldi(x3, tableBase);
    b.ldi(x31, 0);
    b.ldi(x20, 1099511628211ULL);
    b.ldi(x21, 257);                 // prev MTF index (none)
    b.ldi(x22, 0);                   // run length

    b.label("byte");
    b.lbu(x5, x1, 0);
    // Linear MTF scan for x5.
    b.mv(x6, x3);
    b.ldi(x7, 0);
    b.label("scan");
    b.lbu(x8, x6, 0);
    b.beq(x8, x5, "found");
    b.addi(x6, x6, 1);
    b.addi(x7, x7, 1);
    b.j("scan");
    b.label("found");
    // Shift table[0..j-1] up one place.
    b.label("shift");
    b.beq(x6, x3, "shift_done");
    b.lbu(x9, x6, -1);
    b.sb(x9, x6, 0);
    b.addi(x6, x6, -1);
    b.j("shift");
    b.label("shift_done");
    b.sb(x5, x3, 0);
    // acc = acc * prime + j.
    b.mul(x31, x31, x20);
    b.add(x31, x31, x7);
    // Run-length fold on the MTF index stream.
    b.beq(x7, x21, "same_run");
    b.mul(x31, x31, x20);
    b.add(x31, x31, x22);
    b.mv(x21, x7);
    b.ldi(x22, 1);
    b.j("run_done");
    b.label("same_run");
    b.addi(x22, x22, 1);
    b.label("run_done");

    b.addi(x1, x1, 1);
    b.addi(x2, x2, -1);
    b.bne(x2, x0, "byte");

    b.mul(x31, x31, x20);
    b.add(x31, x31, x22);
    storeResultAndHalt(b, x31);

    Workload w;
    w.name = "bzip2";
    w.description = "bzip2 proxy: move-to-front + run-length folding";
    w.program = b.build();
    w.expectedResult = reference(words, n_bytes);
    return w;
}

} // namespace workloads
} // namespace paradox
