/**
 * @file
 * SPEC CPU2006 458.sjeng proxy: chess-engine bitboard manipulation --
 * De Bruijn bit scans over occupancy boards, table-driven attack mask
 * accumulation, SWAR popcounts and data-dependent board updates.
 */

#include "workloads/common.hh"

#include <bit>

namespace paradox
{
namespace workloads
{

namespace
{

constexpr std::uint64_t debruijn = 0x03f79d71b4cb0a89ULL;

/** Index table such that table[(lsb * debruijn) >> 58] == ctz. */
std::vector<std::uint64_t>
makeDebruijnTable()
{
    std::vector<std::uint64_t> table(64, 0);
    for (unsigned i = 0; i < 64; ++i)
        table[std::size_t(((std::uint64_t(1) << i) * debruijn) >> 58)] =
            i;
    return table;
}

std::uint64_t
swarPopcount(std::uint64_t x)
{
    x = x - ((x >> 1) & 0x5555555555555555ULL);
    x = (x & 0x3333333333333333ULL) +
        ((x >> 2) & 0x3333333333333333ULL);
    x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0fULL;
    return (x * 0x0101010101010101ULL) >> 56;
}

std::uint64_t
reference(const std::vector<std::uint64_t> &masks, std::uint64_t occ0,
          unsigned iters)
{
    std::uint64_t acc = 0;
    std::uint64_t occ = occ0;
    for (unsigned it = 0; it < iters; ++it) {
        std::uint64_t attacks = 0;
        for (std::uint64_t bb = occ; bb != 0; bb &= bb - 1) {
            unsigned sq = unsigned(std::countr_zero(bb));
            attacks |= masks[sq];
        }
        std::uint64_t score = swarPopcount(attacks ^ occ);
        acc = mixInt(acc, score);
        if (score & 1)
            occ = ((occ << 7) | (occ >> 57)) ^ attacks;
        else
            occ = occ + 0x9e3779b97f4a7c15ULL;
        if (occ == 0)
            occ = occ0;
    }
    return acc;
}

} // namespace

Workload
buildSjeng(unsigned scale)
{
    const unsigned iters = 1200 * scale;
    const auto masks = randomWords(64, 0x53e46);
    const auto dbTable = makeDebruijnTable();
    const std::uint64_t occ0 = 0x123456789abcdef5ULL;
    const Addr maskBase = dataBase;
    const Addr dbBase = dataBase + 64 * 8;

    isa::ProgramBuilder b("sjeng");
    emitData(b, maskBase, masks);
    emitData(b, dbBase, dbTable);

    b.ldi(x31, 0);
    b.ldi(x20, 1099511628211ULL);
    b.ldi(x21, occ0);
    b.ldi(x15, iters);
    b.ldi(x16, 0x5555555555555555ULL);
    b.ldi(x17, 0x3333333333333333ULL);
    b.ldi(x18, 0x0f0f0f0f0f0f0f0fULL);
    b.ldi(x19, 0x0101010101010101ULL);
    b.ldi(x22, debruijn);
    b.ldi(x1, maskBase);
    b.ldi(x2, dbBase);

    b.label("iter");
    b.ldi(x5, 0);                  // attacks
    b.mv(x6, x21);                 // bb
    b.label("scan");
    b.beq(x6, x0, "scan_done");
    // sq = dbTable[((bb & -bb) * debruijn) >> 58].
    b.sub(x7, x0, x6);
    b.and_(x7, x7, x6);            // lsb
    b.mul(x7, x7, x22);
    b.srli(x7, x7, 58);
    b.slli(x7, x7, 3);
    b.add(x7, x7, x2);
    b.ld(x7, x7, 0);               // sq
    b.slli(x7, x7, 3);
    b.add(x7, x7, x1);
    b.ld(x7, x7, 0);               // mask
    b.or_(x5, x5, x7);
    b.addi(x8, x6, -1);
    b.and_(x6, x6, x8);
    b.j("scan");
    b.label("scan_done");

    // score = popcount(attacks ^ occ).
    b.xor_(x9, x5, x21);
    b.srli(x10, x9, 1);
    b.and_(x10, x10, x16);
    b.sub(x9, x9, x10);
    b.and_(x10, x9, x17);
    b.srli(x9, x9, 2);
    b.and_(x9, x9, x17);
    b.add(x9, x9, x10);
    b.srli(x10, x9, 4);
    b.add(x9, x9, x10);
    b.and_(x9, x9, x18);
    b.mul(x9, x9, x19);
    b.srli(x9, x9, 56);            // score

    b.mul(x31, x31, x20);
    b.add(x31, x31, x9);

    b.andi(x10, x9, 1);
    b.beq(x10, x0, "even_path");
    b.slli(x10, x21, 7);
    b.srli(x11, x21, 57);
    b.or_(x10, x10, x11);
    b.xor_(x21, x10, x5);
    b.j("next");
    b.label("even_path");
    b.ldi(x10, 0x9e3779b97f4a7c15ULL);
    b.add(x21, x21, x10);
    b.label("next");
    b.bne(x21, x0, "nonzero");
    b.ldi(x21, occ0);
    b.label("nonzero");

    b.addi(x15, x15, -1);
    b.bne(x15, x0, "iter");

    storeResultAndHalt(b, x31);

    Workload w;
    w.name = "sjeng";
    w.description = "sjeng proxy: bitboard scans and attack masks";
    w.program = b.build();
    w.expectedResult = reference(masks, occ0, iters);
    return w;
}

} // namespace workloads
} // namespace paradox
