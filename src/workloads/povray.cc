/**
 * @file
 * SPEC CPU2006 453.povray proxy: ray-sphere intersection over a
 * fully unrolled sphere list.  The unrolled hot loop exceeds the
 * checker cores' 8 KiB L0 I-cache -- povray is one of the workloads
 * figure 10 attributes overhead to checker I-cache misses.
 */

#include "workloads/common.hh"

#include <cmath>

namespace paradox
{
namespace workloads
{

namespace
{

constexpr std::size_t numSpheres = 112;  // unrolled: ~2.4k instructions

std::uint64_t
reference(const std::vector<double> &spheres, unsigned rays)
{
    std::uint64_t acc = 0;
    double u = 0.1, v = 0.2;
    for (unsigned r = 0; r < rays; ++r) {
        u = u * 0.9 + 0.17;
        v = v * 0.8 + 0.3;
        double tmin = 1.0e9;
        for (std::size_t s = 0; s < numSpheres; ++s) {
            const double *sp = &spheres[s * 4];
            double bq = (sp[0] * u + sp[1] * v) + sp[2];
            double disc = bq * bq - sp[3];
            if (disc > 0.0) {
                double t = bq - std::sqrt(disc);
                if (t > 0.0 && t < tmin)
                    tmin = t;
            }
        }
        acc = mixDouble(acc, tmin);
    }
    return acc;
}

} // namespace

Workload
buildPovray(unsigned scale)
{
    const unsigned rays = 160 * scale;
    // Sphere record: cx, cy, cz, k = |c|^2 - radius^2.
    auto raw = randomDoubles(numSpheres * 4, 0x9047a);
    for (std::size_t s = 0; s < numSpheres; ++s) {
        double cx = raw[s * 4], cy = raw[s * 4 + 1],
               cz = raw[s * 4 + 2];
        double radius = 0.3 + 0.5 * std::fabs(raw[s * 4 + 3]);
        raw[s * 4 + 3] =
            ((cx * cx + cy * cy) + cz * cz) - radius * radius;
    }
    const Addr sBase = dataBase;
    const Addr cBase = dataBase + raw.size() * 8 + 64;

    isa::ProgramBuilder b("povray");
    emitDataF(b, sBase, raw);
    b.dataF64(cBase, 0.9);
    b.dataF64(cBase + 8, 0.17);
    b.dataF64(cBase + 16, 0.8);
    b.dataF64(cBase + 24, 0.3);
    b.dataF64(cBase + 32, 1.0e9);
    b.dataF64(cBase + 40, 0.1);   // u0
    b.dataF64(cBase + 48, 0.2);   // v0

    b.ldi(x1, cBase);
    b.fld(f10, x1, 0);
    b.fld(f11, x1, 8);
    b.fld(f12, x1, 16);
    b.fld(f13, x1, 24);
    b.fld(f14, x1, 32);   // big tmin seed
    b.fld(f1, x1, 40);    // u
    b.fld(f2, x1, 48);    // v
    b.ldi(x21, sBase);
    b.ldi(x15, rays);
    b.ldi(x20, 1099511628211ULL);
    b.ldi(x31, 0);
    b.fmvDX(f0, x0);      // f0 = +0.0, the FP zero below

    b.label("ray");
    b.fmul(f1, f1, f10);
    b.fadd(f1, f1, f11);  // u
    b.fmul(f2, f2, f12);
    b.fadd(f2, f2, f13);  // v
    b.fadd(f3, f14, f0);  // tmin = 1e9 (f0 == 0)

    // Fully unrolled sphere tests (large code footprint).
    for (std::size_t s = 0; s < numSpheres; ++s) {
        const long off = long(s) * 32;
        const std::string hit = "miss_" + std::to_string(s);
        const std::string skip = "skip_" + std::to_string(s);
        b.fld(f4, x21, off);          // cx
        b.fld(f5, x21, off + 8);      // cy
        b.fld(f6, x21, off + 16);     // cz
        b.fld(f7, x21, off + 24);     // k
        b.fmul(f4, f4, f1);
        b.fmul(f5, f5, f2);
        b.fadd(f4, f4, f5);
        b.fadd(f4, f4, f6);           // bq
        b.fmul(f5, f4, f4);
        b.fsub(f5, f5, f7);           // disc
        b.fle(x5, f5, f0);            // disc <= 0 ?
        b.bne(x5, x0, hit);
        b.fsqrt(f5, f5);
        b.fsub(f5, f4, f5);           // t
        b.fle(x5, f5, f0);
        b.bne(x5, x0, hit);
        b.flt(x5, f5, f3);
        b.beq(x5, x0, skip);
        b.fadd(f3, f5, f0);           // tmin = t
        b.label(skip);
        b.label(hit);
    }

    b.fmvXD(x9, f3);
    b.mul(x31, x31, x20);
    b.add(x31, x31, x9);
    b.addi(x15, x15, -1);
    b.bne(x15, x0, "ray");

    storeResultAndHalt(b, x31);

    Workload w;
    w.name = "povray";
    w.description = "povray proxy: unrolled ray-sphere intersections";
    w.program = b.build();
    w.expectedResult = reference(raw, rays);
    w.fpHeavy = true;
    w.largeCode = true;
    return w;
}

} // namespace workloads
} // namespace paradox
